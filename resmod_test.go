package resmod_test

import (
	"math"
	"testing"

	"resmod"
)

func TestFacadeLookupAndNames(t *testing.T) {
	names := resmod.AppNames()
	want := map[string]bool{"CG": true, "FT": true, "MG": true, "LU": true,
		"MiniFE": true, "PENNANT": true}
	found := 0
	for _, n := range names {
		if want[n] {
			found++
		}
	}
	if found != len(want) {
		t.Fatalf("registered apps %v missing some of %v", names, want)
	}
	if _, err := resmod.LookupApp("nope"); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestFacadeCampaignEndToEnd(t *testing.T) {
	app, err := resmod.LookupApp("PENNANT")
	if err != nil {
		t.Fatal(err)
	}
	sum, err := resmod.RunCampaign(resmod.Campaign{
		App: app, Procs: 4, Trials: 20, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Rates.N != 20 {
		t.Fatalf("N = %d", sum.Rates.N)
	}
	if math.Abs(sum.Rates.Success+sum.Rates.SDC+sum.Rates.Failure-1) > 1e-12 {
		t.Fatalf("rates = %+v", sum.Rates)
	}
	if sum.Hist.P() != 4 {
		t.Fatalf("hist over %d ranks", sum.Hist.P())
	}
}

func TestFacadeGolden(t *testing.T) {
	app, err := resmod.LookupApp("LU")
	if err != nil {
		t.Fatal(err)
	}
	g, err := resmod.ComputeGolden(app, "", 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.TotalCounts().Total() == 0 {
		t.Fatal("golden has no ops")
	}
}

func TestFacadeModelRoundTrip(t *testing.T) {
	xs, err := resmod.SampleXs(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	rates := make([]resmod.Rates, 4)
	for i := range rates {
		rates[i] = resmod.Rates{Success: 1 - 0.1*float64(i), SDC: 0.1 * float64(i), N: 100}
	}
	curve, err := resmod.NewSerialCurve(16, xs, rates)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := resmod.Predict(resmod.ModelInputs{
		P: 16, Serial: curve,
		SmallProfile:     []float64{0.25, 0.25, 0.25, 0.25},
		SmallConditional: map[int]resmod.Rates{},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := (1.0 + 0.9 + 0.8 + 0.7) / 4
	if math.Abs(pred.Rates.Success-want) > 1e-12 {
		t.Fatalf("success = %g, want %g", pred.Rates.Success, want)
	}
}

func TestFacadePredictScale(t *testing.T) {
	s := resmod.NewSession(resmod.SessionConfig{Trials: 10, Seed: 4})
	row, err := resmod.PredictScale(s, "PENNANT", "", 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if row.Large != 8 || row.Small != 4 {
		t.Fatalf("row = %+v", row)
	}
}

func TestFacadeFlipBit(t *testing.T) {
	if resmod.FlipBit(2.0, 63) != -2.0 {
		t.Fatal("FlipBit sign flip broken")
	}
}

func TestFacadePatternCampaign(t *testing.T) {
	app, err := resmod.LookupApp("PENNANT")
	if err != nil {
		t.Fatal(err)
	}
	sum, err := resmod.RunCampaign(resmod.Campaign{
		App: app, Procs: 2, Trials: 10, Seed: 2,
		Pattern: resmod.PatternWordRandom, KindMask: resmod.KindMul,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Rates.N != 10 {
		t.Fatalf("N = %d", sum.Rates.N)
	}
}
