//go:build race

// Package race reports whether the race detector is compiled in, so
// tests asserting exact allocation counts (testing.AllocsPerRun) can
// skip themselves under -race, where the detector's shadow allocations
// would fail them spuriously.
package race

// Enabled is true when the build has the race detector compiled in.
const Enabled = true
