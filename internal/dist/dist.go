// Package dist is the distributed trial-execution tier: a coordinator
// Pool that shards a campaign's trial range [0, Trials) across
// registered Worker nodes over HTTP JSON, health-checks them via
// heartbeats, re-shards the unfinished ranges of dead workers onto
// survivors, and merges the returned shard tallies into a Summary
// bit-identical to a single-node run.
//
// Determinism across processes rests on two invariants the faultsim
// layer already provides: every trial's RNG stream is split from the
// campaign seed by the *global* trial index (never shard index or
// worker identity), and all shard tallies are commutative integer
// counts carried as PR 1 Checkpoints — so any disjoint cover of the
// trial range, in any dispatch order, with any re-shard history, merges
// to the same SummaryRecord bytes.
package dist

import (
	"fmt"
	"time"

	"resmod/internal/apps"
	"resmod/internal/faultsim"
	"resmod/internal/fpe"
	"resmod/internal/telemetry"
)

// Correlation headers on coordinator→worker dispatch requests.  The
// request ID is the server middleware's X-Request-ID, echoed back on the
// response and folded into worker slog fields so one grep reconstructs a
// request's hop-by-hop story; the parent span ID names the coordinator's
// dispatch span so returned shard spans graft under it.
const (
	RequestIDHeader  = "X-Request-ID"
	ParentSpanHeader = "X-Parent-Span-ID"
)

// CampaignSpec is the JSON wire form of a faultsim.Campaign: exactly
// the identity-affecting fields plus the per-trial timeout.  Execution
// knobs that never enter cid:v2 (Workers, Pool, Budget, checkpoint and
// progress settings) deliberately do not cross the wire — each worker
// chooses its own trial concurrency, and the coordinator owns
// checkpointing of the merged result.
type CampaignSpec struct {
	App              string      `json:"app"`
	Class            string      `json:"class,omitempty"`
	Procs            int         `json:"procs"`
	Trials           int         `json:"trials"`
	Errors           int         `json:"errors"`
	Region           int         `json:"region"`
	Seed             uint64      `json:"seed"`
	TimeoutNS        int64       `json:"timeout_ns,omitempty"`
	SpreadErrors     bool        `json:"spread_errors,omitempty"`
	ContaminationTol float64     `json:"contamination_tol,omitempty"`
	Pattern          int         `json:"pattern,omitempty"`
	KindMask         uint8       `json:"kind_mask,omitempty"`
	FixedBit         *uint       `json:"fixed_bit,omitempty"`
	Window           *[2]float64 `json:"window,omitempty"`
	MaxAbnormal      int         `json:"max_abnormal,omitempty"`
	AbnormalRetries  int         `json:"abnormal_retries,omitempty"`
}

// SpecOf captures a campaign's wire form.  The campaign is normalized
// first so both sides derive the same cid:v2 identity from the spec.
func SpecOf(c faultsim.Campaign) CampaignSpec {
	c = c.Normalized()
	s := CampaignSpec{
		App:              c.App.Name(),
		Class:            c.Class,
		Procs:            c.Procs,
		Trials:           c.Trials,
		Errors:           c.Errors,
		Region:           int(c.Region),
		Seed:             c.Seed,
		TimeoutNS:        int64(c.Timeout),
		SpreadErrors:     c.SpreadErrors,
		ContaminationTol: c.ContaminationTol,
		Pattern:          int(c.Pattern),
		KindMask:         c.KindMask,
		MaxAbnormal:      c.MaxAbnormal,
		AbnormalRetries:  c.AbnormalRetries,
	}
	if c.FixedBit != nil {
		b := *c.FixedBit
		s.FixedBit = &b
	}
	if c.Window != nil {
		w := *c.Window
		s.Window = &w
	}
	return s
}

// Campaign reconstructs the executable campaign from the wire form,
// resolving the app by name in the receiving process's registry.
func (s CampaignSpec) Campaign() (faultsim.Campaign, error) {
	app, err := apps.Lookup(s.App)
	if err != nil {
		return faultsim.Campaign{}, fmt.Errorf("dist: %w", err)
	}
	c := faultsim.Campaign{
		App:              app,
		Class:            s.Class,
		Procs:            s.Procs,
		Trials:           s.Trials,
		Errors:           s.Errors,
		Region:           faultsim.RegionMode(s.Region),
		Seed:             s.Seed,
		Timeout:          time.Duration(s.TimeoutNS),
		SpreadErrors:     s.SpreadErrors,
		ContaminationTol: s.ContaminationTol,
		Pattern:          fpe.Pattern(s.Pattern),
		KindMask:         s.KindMask,
		MaxAbnormal:      s.MaxAbnormal,
		AbnormalRetries:  s.AbnormalRetries,
	}
	if s.FixedBit != nil {
		b := *s.FixedBit
		c.FixedBit = &b
	}
	if s.Window != nil {
		w := *s.Window
		c.Window = &w
	}
	return c, nil
}

// ShardRequest is the coordinator→worker dispatch payload: one
// contiguous trial range of one campaign, plus the observability the
// coordinator wants back.  Trace and Progress are observation-only —
// they never reach the campaign identity or the RNG streams.
type ShardRequest struct {
	Campaign CampaignSpec `json:"campaign"`
	Start    int          `json:"start"`
	End      int          `json:"end"`
	// Trace asks the worker to run the shard under its own tracer and
	// return the serialized spans in ShardResponse.Trace.
	Trace bool `json:"trace,omitempty"`
	// Progress, when set, asks the worker to stream live shard tallies
	// back to the coordinator while the shard runs.
	Progress *ProgressSpec `json:"progress,omitempty"`
}

// ProgressSpec tells a worker where and how often to report live shard
// progress: POST ShardProgressReports carrying Token to the
// coordinator's /v1/shards/progress at most every EveryNS nanoseconds.
// The token scopes reports to one dispatch attempt, so a retired
// chunk's stale reports can be recognized and dropped.
type ProgressSpec struct {
	Token   string `json:"token"`
	EveryNS int64  `json:"every_ns,omitempty"`
}

// ShardProgressReport is the worker→coordinator live-progress payload:
// the latest faultsim.ShardStatus of one in-flight shard.
type ShardProgressReport struct {
	Token  string               `json:"token"`
	Worker string               `json:"worker,omitempty"`
	Status faultsim.ShardStatus `json:"status"`
}

// ShardResponse is the worker's reply: the shard's partial tallies,
// plus (when the request asked for it) the worker-side spans recorded
// while executing the shard — the coordinator grafts them under its
// dispatch span so the job trace shows the true cross-fleet timeline.
type ShardResponse struct {
	Worker    string                `json:"worker"`
	Result    *faultsim.ShardResult `json:"result"`
	ElapsedNS int64                 `json:"elapsed_ns"`
	Trace     []telemetry.SpanView  `json:"trace,omitempty"`
}

// WorkerStats is the self-reported counter snapshot a worker piggybacks
// on every heartbeat; the coordinator aggregates these into the
// resmod_fleet_* metric families and /v1/cluster.
type WorkerStats struct {
	ShardsDone     uint64 `json:"shards_done"`
	ShardsFailed   uint64 `json:"shards_failed"`
	ShardsInflight uint64 `json:"shards_inflight"`
	TrialsDone     uint64 `json:"trials_done"`
	GoldenHits     uint64 `json:"golden_hits"`
	GoldenMisses   uint64 `json:"golden_misses"`
}

// registerRequest / registerResponse / heartbeatRequest are the worker
// control-plane payloads.
type registerRequest struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

type registerResponse struct {
	ID string `json:"id"`
}

type heartbeatRequest struct {
	ID string `json:"id"`
	// Stats piggybacks the worker's counter snapshot (nil from pre-PR 8
	// workers — the coordinator then has liveness but no detail).
	Stats *WorkerStats `json:"stats,omitempty"`
}

// errorResponse mirrors the server package's error envelope.
type errorResponse struct {
	Error string `json:"error"`
}
