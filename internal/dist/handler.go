package dist

import (
	"encoding/json"
	"io"
	"net/http"
)

// HandleRegister is the POST /v1/workers/register endpoint: a worker
// announces its callback URL and receives its id.
func (p *Pool) HandleRegister(rw http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		writeJSON(rw, http.StatusBadRequest, errorResponse{Error: "bad register request: " + err.Error()})
		return
	}
	if req.URL == "" {
		writeJSON(rw, http.StatusBadRequest, errorResponse{Error: "register needs a worker url"})
		return
	}
	if req.Name == "" {
		req.Name = req.URL
	}
	writeJSON(rw, http.StatusOK, registerResponse{ID: p.Register(req.Name, req.URL)})
}

// HandleHeartbeat is the POST /v1/workers/heartbeat endpoint.  An
// unknown id (e.g. after a coordinator restart) answers 404 — the
// worker's cue to re-register.
func (p *Pool) HandleHeartbeat(rw http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		writeJSON(rw, http.StatusBadRequest, errorResponse{Error: "bad heartbeat request: " + err.Error()})
		return
	}
	if !p.Heartbeat(req.ID) {
		writeJSON(rw, http.StatusNotFound, errorResponse{Error: "unknown worker id " + req.ID})
		return
	}
	writeJSON(rw, http.StatusOK, map[string]bool{"ok": true})
}

// HandleWorkers is the GET /v1/workers endpoint: the registry view.
func (p *Pool) HandleWorkers(rw http.ResponseWriter, _ *http.Request) {
	ws := p.Workers()
	alive := 0
	for _, w := range ws {
		if w.Alive {
			alive++
		}
	}
	writeJSON(rw, http.StatusOK, map[string]any{
		"coordinator": true,
		"alive":       alive,
		"workers":     ws,
	})
}

// Handler mounts the coordinator's worker-facing endpoints on a bare
// mux — the form tests and the bench harness embed; the prediction
// service mounts the same methods behind its instrumented mux.
func (p *Pool) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/workers/register", p.HandleRegister)
	mux.HandleFunc("POST /v1/workers/heartbeat", p.HandleHeartbeat)
	mux.HandleFunc("GET /v1/workers", p.HandleWorkers)
	return mux
}
