package dist

import (
	"encoding/json"
	"io"
	"net/http"
)

// HandleRegister is the POST /v1/workers/register endpoint: a worker
// announces its callback URL and receives its id.
func (p *Pool) HandleRegister(rw http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		writeJSON(rw, http.StatusBadRequest, errorResponse{Error: "bad register request: " + err.Error()})
		return
	}
	if req.URL == "" {
		writeJSON(rw, http.StatusBadRequest, errorResponse{Error: "register needs a worker url"})
		return
	}
	if req.Name == "" {
		req.Name = req.URL
	}
	writeJSON(rw, http.StatusOK, registerResponse{ID: p.Register(req.Name, req.URL)})
}

// HandleHeartbeat is the POST /v1/workers/heartbeat endpoint.  An
// unknown id (e.g. after a coordinator restart) answers 404 — the
// worker's cue to re-register.
func (p *Pool) HandleHeartbeat(rw http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		writeJSON(rw, http.StatusBadRequest, errorResponse{Error: "bad heartbeat request: " + err.Error()})
		return
	}
	if !p.Heartbeat(req.ID, req.Stats) {
		writeJSON(rw, http.StatusNotFound, errorResponse{Error: "unknown worker id " + req.ID})
		return
	}
	writeJSON(rw, http.StatusOK, map[string]bool{"ok": true})
}

// HandleShardProgress is the POST /v1/shards/progress endpoint: a worker
// streams the latest tallies of an in-flight shard.  Reports with a
// retired token answer ok:false (not an error — the chunk was merged or
// requeued while the report was in flight).
func (p *Pool) HandleShardProgress(rw http.ResponseWriter, r *http.Request) {
	var rep ShardProgressReport
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&rep); err != nil {
		writeJSON(rw, http.StatusBadRequest, errorResponse{Error: "bad progress report: " + err.Error()})
		return
	}
	if rep.Token == "" {
		writeJSON(rw, http.StatusBadRequest, errorResponse{Error: "progress report needs a token"})
		return
	}
	writeJSON(rw, http.StatusOK, map[string]bool{"ok": p.ReportProgress(rep)})
}

// HandleCluster is the GET /v1/cluster endpoint: the coordinator's
// fleet view — pool counters plus per-worker detail (self-reported
// stats, derived trials/sec, heartbeat age).
func (p *Pool) HandleCluster(rw http.ResponseWriter, _ *http.Request) {
	st := p.Stats()
	writeJSON(rw, http.StatusOK, map[string]any{
		"coordinator":       true,
		"workers_known":     st.WorkersKnown,
		"workers_alive":     st.WorkersAlive,
		"heartbeats":        st.Heartbeats,
		"campaigns":         st.Campaigns,
		"shards_dispatched": st.ShardsDispatched,
		"shards_completed":  st.ShardsCompleted,
		"shards_requeued":   st.ShardsRequeued,
		"shards_local":      st.ShardsLocal,
		"progress_reports":  st.ProgressReports,
		"progress_stale":    st.ProgressStale,
		"workers":           p.Workers(),
	})
}

// HandleWorkers is the GET /v1/workers endpoint: the registry view.
func (p *Pool) HandleWorkers(rw http.ResponseWriter, _ *http.Request) {
	ws := p.Workers()
	alive := 0
	for _, w := range ws {
		if w.Alive {
			alive++
		}
	}
	writeJSON(rw, http.StatusOK, map[string]any{
		"coordinator": true,
		"alive":       alive,
		"workers":     ws,
	})
}

// Handler mounts the coordinator's worker-facing endpoints on a bare
// mux — the form tests and the bench harness embed; the prediction
// service mounts the same methods behind its instrumented mux.
func (p *Pool) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/workers/register", p.HandleRegister)
	mux.HandleFunc("POST /v1/workers/heartbeat", p.HandleHeartbeat)
	mux.HandleFunc("GET /v1/workers", p.HandleWorkers)
	mux.HandleFunc("POST /v1/shards/progress", p.HandleShardProgress)
	mux.HandleFunc("GET /v1/cluster", p.HandleCluster)
	return mux
}
