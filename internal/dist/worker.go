package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"resmod/internal/apps"
	"resmod/internal/faultsim"
	"resmod/internal/telemetry"
)

// Worker execution-node defaults.
const (
	// DefaultHeartbeatEvery is the worker→coordinator heartbeat period.
	DefaultHeartbeatEvery = 1 * time.Second
	// registerBackoffMax caps the re-registration retry backoff.
	registerBackoffMax = 5 * time.Second
	// defaultProgressEvery is the shard progress-report period used when
	// the dispatch request names none.
	defaultProgressEvery = 500 * time.Millisecond
)

// WorkerConfig configures one execution node.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL (e.g. http://host:8080).
	Coordinator string
	// Listen is the worker's own listen address (host:port, port 0 ok).
	Listen string
	// Advertise is the URL the coordinator should dial back; empty
	// derives http://<bound address> from the listener.
	Advertise string
	// Name labels the worker in /v1/workers output (default: the bound
	// address).
	Name string
	// Workers is the per-shard trial concurrency on this node (default
	// GOMAXPROCS).  Trial concurrency never affects outcomes, so each
	// node is free to size it to its own hardware.
	Workers int
	// HeartbeatEvery is the heartbeat period (default
	// DefaultHeartbeatEvery).
	HeartbeatEvery time.Duration
}

// Worker is an execution node: it registers with a coordinator,
// heartbeats, and executes trial-range shards POSTed to /v1/shards
// through the local faultsim engine, caching golden runs per
// (app, class, procs).
type Worker struct {
	cfg    WorkerConfig
	tel    *telemetry.Telemetry
	client *http.Client

	// series retains this node's own sampled counters; the sampler is
	// ticked from the heartbeat loop (no extra goroutine, and retention
	// stops exactly when the node stops announcing itself).
	series  *telemetry.SeriesStore
	sampler *telemetry.Sampler

	id atomic.Value // string: coordinator-assigned worker id

	mu      sync.Mutex
	goldens map[goldenKey]*goldenFlight

	shardsDone     atomic.Uint64
	shardsFailed   atomic.Uint64
	shardsInflight atomic.Int64
	trialsDone     atomic.Uint64
	goldenHits     atomic.Uint64
	goldenMisses   atomic.Uint64

	start time.Time
}

type goldenKey struct {
	app   string
	class string
	procs int
}

type goldenFlight struct {
	done chan struct{}
	g    *faultsim.Golden
	err  error
}

// NewWorker validates the config and returns a runnable worker.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Coordinator == "" {
		return nil, errors.New("dist: worker needs a coordinator URL")
	}
	if cfg.Listen == "" {
		cfg.Listen = "127.0.0.1:0"
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = DefaultHeartbeatEvery
	}
	w := &Worker{
		cfg:     cfg,
		client:  &http.Client{Timeout: 10 * time.Second},
		goldens: make(map[goldenKey]*goldenFlight),
		start:   time.Now(),
	}
	w.series = telemetry.NewSeriesStore()
	w.sampler = telemetry.NewSampler(w.series, w.sample, cfg.HeartbeatEvery)
	return w, nil
}

// sample is the worker's retention source: the same self-reported
// counters that piggyback on heartbeats, so /v1/series on a worker node
// answers the history behind its instantaneous /metrics.
func (w *Worker) sample() telemetry.Samples {
	st := w.stats()
	return telemetry.Samples{
		Gauges: map[string]float64{
			"shards_inflight": float64(st.ShardsInflight),
		},
		Counters: map[string]float64{
			"trials_done_total":         float64(st.TrialsDone),
			"shards_done_total":         float64(st.ShardsDone),
			"shards_failed_total":       float64(st.ShardsFailed),
			"golden_cache_hits_total":   float64(st.GoldenHits),
			"golden_cache_misses_total": float64(st.GoldenMisses),
		},
	}
}

// stats snapshots the worker's self-reported counters — the payload
// piggybacked on every heartbeat and served on the worker's /metrics.
func (w *Worker) stats() WorkerStats {
	inflight := w.shardsInflight.Load()
	if inflight < 0 {
		inflight = 0
	}
	return WorkerStats{
		ShardsDone:     w.shardsDone.Load(),
		ShardsFailed:   w.shardsFailed.Load(),
		ShardsInflight: uint64(inflight),
		TrialsDone:     w.trialsDone.Load(),
		GoldenHits:     w.goldenHits.Load(),
		GoldenMisses:   w.goldenMisses.Load(),
	}
}

// Handler returns the worker's HTTP surface: POST /v1/shards executes a
// shard synchronously; GET /healthz reports liveness and tallies; GET
// /metrics exposes the worker's own Prometheus families so a standalone
// node is scrapeable without going through the coordinator.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/shards", w.handleShard)
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, _ *http.Request) {
		writeJSON(rw, http.StatusOK, map[string]any{
			"ok":            true,
			"shards_done":   w.shardsDone.Load(),
			"shards_failed": w.shardsFailed.Load(),
		})
	})
	mux.HandleFunc("GET /metrics", w.handleMetrics)
	mux.HandleFunc("GET /v1/series", func(rw http.ResponseWriter, r *http.Request) {
		telemetry.ServeSeries(w.series, rw, r)
	})
	return mux
}

// handleMetrics serves the worker-node metric families in Prometheus
// text exposition format: shard/trial counters plus, when the worker's
// telemetry sink is a Recorder, the engine outcome counters.
func (w *Worker) handleMetrics(rw http.ResponseWriter, _ *http.Request) {
	rw.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	st := w.stats()
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(rw, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(rw, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter("resmod_worker_shards_done_total", "Shards executed and returned.", st.ShardsDone)
	counter("resmod_worker_shards_failed_total", "Shards that ended in an error.", st.ShardsFailed)
	counter("resmod_worker_trials_done_total", "Trials completed across all shards.", st.TrialsDone)
	counter("resmod_worker_golden_cache_hits_total",
		"Shard requests answered from the golden-run cache.", st.GoldenHits)
	counter("resmod_worker_golden_cache_misses_total",
		"Golden-run computations triggered by shard requests.", st.GoldenMisses)
	gauge("resmod_worker_shards_inflight", "Shards currently executing.", float64(st.ShardsInflight))
	gauge("resmod_worker_uptime_seconds", "Seconds since the worker process started.",
		time.Since(w.start).Seconds())
	if rec, ok := w.tel.Sink().(*telemetry.Recorder); ok {
		engine := rec.Snapshot()
		fmt.Fprintf(rw, "# HELP resmod_trial_total Fault-injection trials executed, by outcome.\n")
		fmt.Fprintf(rw, "# TYPE resmod_trial_total counter\n")
		for _, oc := range []struct {
			label string
			v     uint64
		}{
			{"success", engine.TrialSuccess},
			{"sdc", engine.TrialSDC},
			{"failure", engine.TrialFailure},
			{"other", engine.TrialOther},
		} {
			fmt.Fprintf(rw, "resmod_trial_total{outcome=%q} %d\n", oc.label, oc.v)
		}
		counter("resmod_trial_abnormal_total",
			"Trials abandoned after repeated harness errors.", engine.TrialsAbnormal)
		counter("resmod_trial_retried_total", "Retries of abnormal trials.", engine.TrialsRetried)
		counter("resmod_golden_runs_total",
			"Fault-free reference executions computed.", engine.GoldenRuns)
	}
}

// Run serves shards until the context ends: bind, register (retrying
// until the coordinator answers), heartbeat, serve.  Returns nil on a
// clean context-driven shutdown.
func (w *Worker) Run(ctx context.Context) error {
	w.tel = telemetry.From(ctx)
	ln, err := net.Listen("tcp", w.cfg.Listen)
	if err != nil {
		return fmt.Errorf("dist: worker listen: %w", err)
	}
	advertise := w.cfg.Advertise
	if advertise == "" {
		advertise = "http://" + ln.Addr().String()
	}
	name := w.cfg.Name
	if name == "" {
		name = ln.Addr().String()
	}
	log := w.tel.Logger()
	log.Info("worker up", "listen", ln.Addr().String(),
		"advertise", advertise, "coordinator", w.cfg.Coordinator)

	srv := &http.Server{
		Handler: w.Handler(),
		BaseContext: func(net.Listener) context.Context {
			// Shard executions inherit the worker's lifetime (and its
			// telemetry), not just the request's.
			return ctx
		},
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		w.heartbeatLoop(ctx, name, advertise)
	}()

	select {
	case <-ctx.Done():
	case err := <-serveErr:
		return fmt.Errorf("dist: worker serve: %w", err)
	}
	shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = srv.Shutdown(shctx)
	<-hbDone
	log.Info("worker down", "shards_done", w.shardsDone.Load())
	return nil
}

// heartbeatLoop registers and then heartbeats until ctx ends,
// re-registering (with capped backoff) whenever the coordinator stops
// recognizing the worker — e.g. after a coordinator restart.
func (w *Worker) heartbeatLoop(ctx context.Context, name, advertise string) {
	log := w.tel.Logger()
	backoff := w.cfg.HeartbeatEvery
	for ctx.Err() == nil {
		id, err := w.register(ctx, name, advertise)
		if err != nil {
			log.Warn("worker register failed", "err", err)
			if !sleepCtx(ctx, backoff) {
				return
			}
			if backoff *= 2; backoff > registerBackoffMax {
				backoff = registerBackoffMax
			}
			continue
		}
		backoff = w.cfg.HeartbeatEvery
		w.id.Store(id)
		log.Info("worker registered", "id", id)
		ticker := time.NewTicker(w.cfg.HeartbeatEvery)
		for ctx.Err() == nil {
			select {
			case <-ctx.Done():
				ticker.Stop()
				return
			case now := <-ticker.C:
				// Retention piggybacks on the heartbeat cadence: one
				// sampler tick per announce, no dedicated timer.
				w.sampler.SampleNow(now)
			}
			if err := w.heartbeat(ctx, id); err != nil {
				log.Warn("worker heartbeat rejected, re-registering", "err", err)
				break
			}
		}
		ticker.Stop()
	}
}

func (w *Worker) register(ctx context.Context, name, advertise string) (string, error) {
	var resp registerResponse
	err := w.postJSON(ctx, w.cfg.Coordinator+"/v1/workers/register",
		registerRequest{Name: name, URL: advertise}, &resp)
	if err != nil {
		return "", err
	}
	if resp.ID == "" {
		return "", errors.New("dist: coordinator returned empty worker id")
	}
	return resp.ID, nil
}

func (w *Worker) heartbeat(ctx context.Context, id string) error {
	st := w.stats()
	return w.postJSON(ctx, w.cfg.Coordinator+"/v1/workers/heartbeat",
		heartbeatRequest{ID: id, Stats: &st}, nil)
}

func (w *Worker) postJSON(ctx context.Context, url string, body, out any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(b))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("dist: %s: %s: %s", url, resp.Status, bytes.TrimSpace(msg))
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

// handleShard executes one dispatched trial range.  The request context
// is the cancellation lever: a coordinator that abandons the dispatch
// (worker presumed dead, campaign canceled) tears down the shard's
// trials through the same plumbing as a local SIGINT.
//
// Observability rides the request: the coordinator's X-Request-ID lands
// in this worker's slog fields and is echoed on the response, a
// per-request tracer captures the shard's spans for the reply when the
// dispatch asked for them, and a progress spec makes the shard stream
// live tallies back while it runs.  None of it can perturb the result.
func (w *Worker) handleShard(rw http.ResponseWriter, r *http.Request) {
	var req ShardRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeJSON(rw, http.StatusBadRequest, errorResponse{Error: "bad shard request: " + err.Error()})
		return
	}
	c, err := req.Campaign.Campaign()
	if err != nil {
		writeJSON(rw, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	c.Workers = w.cfg.Workers

	ctx := r.Context()
	log := w.tel.Logger().With("shard", fmt.Sprintf("[%d,%d)", req.Start, req.End))
	if reqID := r.Header.Get(RequestIDHeader); reqID != "" {
		rw.Header().Set(RequestIDHeader, reqID)
		log = log.With("request_id", reqID)
		ctx = telemetry.WithRequestID(ctx, reqID)
	}
	if ps := r.Header.Get(ParentSpanHeader); ps != "" {
		log = log.With("parent_span", ps)
	}
	stel := w.tel.WithLogger(log)
	var tr *telemetry.Tracer
	if req.Trace {
		tr = telemetry.NewTracer()
		stel = stel.WithTracer(tr)
	}
	ctx = telemetry.With(ctx, stel)
	ctx, stopProgress := w.shardProgress(ctx, req.Progress)
	defer stopProgress()

	w.shardsInflight.Add(1)
	defer w.shardsInflight.Add(-1)
	log.Info("shard accepted", "app", req.Campaign.App, "trials", req.End-req.Start)

	golden, err := w.golden(ctx, c.App, c.Class, c.Procs, c.Timeout)
	if err != nil {
		w.shardsFailed.Add(1)
		log.Warn("shard failed", "stage", "golden", "err", err)
		writeJSON(rw, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	t0 := time.Now()
	res, err := faultsim.RunShardCtx(ctx, c, golden, req.Start, req.End)
	if err != nil {
		w.shardsFailed.Add(1)
		log.Warn("shard failed", "stage", "run", "err", err)
		writeJSON(rw, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	w.shardsDone.Add(1)
	w.trialsDone.Add(res.Checkpoint.Completed)
	id := ""
	if v := w.id.Load(); v != nil {
		id = v.(string)
	}
	resp := ShardResponse{
		Worker:    id,
		Result:    res,
		ElapsedNS: time.Since(t0).Nanoseconds(),
	}
	if tr != nil {
		// Ship the shard's spans back, and keep a copy in the worker's own
		// tracer (when it has one) so a worker-side -trace file still shows
		// the work this node did.
		resp.Trace = tr.Spans()
		w.tel.Tracer().Merge(tr)
	}
	log.Info("shard done", "trials_done", res.Checkpoint.Completed,
		"elapsed_ms", time.Since(t0).Milliseconds())
	writeJSON(rw, http.StatusOK, resp)
}

// shardProgress arranges live progress streaming for one shard: it
// installs a faultsim.ShardObserver on the context and starts a pusher
// goroutine that POSTs the latest tallies to the coordinator at the
// requested cadence (latest-wins, never blocking the trial loop).  The
// returned stop function must be called before the shard response is
// written.  A nil spec is a no-op.
func (w *Worker) shardProgress(ctx context.Context, spec *ProgressSpec) (context.Context, func()) {
	if spec == nil || spec.Token == "" || w.cfg.Coordinator == "" {
		return ctx, func() {}
	}
	every := time.Duration(spec.EveryNS)
	if every <= 0 {
		every = defaultProgressEvery
	}
	updates := make(chan faultsim.ShardStatus, 1)
	obsCtx := faultsim.WithShardObserver(ctx, func(st faultsim.ShardStatus) {
		for {
			select {
			case updates <- st:
				return
			default:
				// Stale snapshot still queued: drop it, then retry the send.
				select {
				case <-updates:
				default:
				}
			}
		}
	})
	done := make(chan struct{})
	stopped := make(chan struct{})
	go func() {
		defer close(stopped)
		t := time.NewTicker(every)
		defer t.Stop()
		var latest *faultsim.ShardStatus
		for {
			select {
			case <-done:
				return
			case st := <-updates:
				latest = &st
			case <-t.C:
				if latest == nil {
					continue
				}
				st := *latest
				latest = nil
				id := ""
				if v := w.id.Load(); v != nil {
					id = v.(string)
				}
				pctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				_ = w.postJSON(pctx, w.cfg.Coordinator+"/v1/shards/progress",
					ShardProgressReport{Token: spec.Token, Worker: id, Status: st}, nil)
				cancel()
			}
		}
	}()
	return obsCtx, func() { close(done); <-stopped }
}

// golden returns the (app, class, procs) reference run, computing it at
// most once per key even under concurrent shard requests.
func (w *Worker) golden(ctx context.Context, app apps.App, class string, procs int, timeout time.Duration) (*faultsim.Golden, error) {
	if class == "" {
		class = app.DefaultClass()
	}
	key := goldenKey{app: app.Name(), class: class, procs: procs}
	w.mu.Lock()
	f := w.goldens[key]
	if f == nil {
		w.goldenMisses.Add(1)
		f = &goldenFlight{done: make(chan struct{})}
		w.goldens[key] = f
		w.mu.Unlock()
		f.g, f.err = faultsim.ComputeGoldenCtx(ctx, app, class, procs, timeout)
		if f.err != nil {
			// Clear the slot so a later shard can retry.
			w.mu.Lock()
			delete(w.goldens, key)
			w.mu.Unlock()
		}
		close(f.done)
	} else {
		w.goldenHits.Add(1)
		w.mu.Unlock()
		select {
		case <-f.done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return f.g, f.err
}

// writeJSON writes a JSON response body with the given status.
func writeJSON(rw http.ResponseWriter, status int, v any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	_ = json.NewEncoder(rw).Encode(v)
}

// sleepCtx sleeps d or until ctx ends; reports whether ctx is still
// live.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
