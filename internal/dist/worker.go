package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"resmod/internal/apps"
	"resmod/internal/faultsim"
	"resmod/internal/telemetry"
)

// Worker execution-node defaults.
const (
	// DefaultHeartbeatEvery is the worker→coordinator heartbeat period.
	DefaultHeartbeatEvery = 1 * time.Second
	// registerBackoffMax caps the re-registration retry backoff.
	registerBackoffMax = 5 * time.Second
)

// WorkerConfig configures one execution node.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL (e.g. http://host:8080).
	Coordinator string
	// Listen is the worker's own listen address (host:port, port 0 ok).
	Listen string
	// Advertise is the URL the coordinator should dial back; empty
	// derives http://<bound address> from the listener.
	Advertise string
	// Name labels the worker in /v1/workers output (default: the bound
	// address).
	Name string
	// Workers is the per-shard trial concurrency on this node (default
	// GOMAXPROCS).  Trial concurrency never affects outcomes, so each
	// node is free to size it to its own hardware.
	Workers int
	// HeartbeatEvery is the heartbeat period (default
	// DefaultHeartbeatEvery).
	HeartbeatEvery time.Duration
}

// Worker is an execution node: it registers with a coordinator,
// heartbeats, and executes trial-range shards POSTed to /v1/shards
// through the local faultsim engine, caching golden runs per
// (app, class, procs).
type Worker struct {
	cfg    WorkerConfig
	tel    *telemetry.Telemetry
	client *http.Client

	id atomic.Value // string: coordinator-assigned worker id

	mu      sync.Mutex
	goldens map[goldenKey]*goldenFlight

	shardsDone   atomic.Uint64
	shardsFailed atomic.Uint64
}

type goldenKey struct {
	app   string
	class string
	procs int
}

type goldenFlight struct {
	done chan struct{}
	g    *faultsim.Golden
	err  error
}

// NewWorker validates the config and returns a runnable worker.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Coordinator == "" {
		return nil, errors.New("dist: worker needs a coordinator URL")
	}
	if cfg.Listen == "" {
		cfg.Listen = "127.0.0.1:0"
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = DefaultHeartbeatEvery
	}
	return &Worker{
		cfg:     cfg,
		client:  &http.Client{Timeout: 10 * time.Second},
		goldens: make(map[goldenKey]*goldenFlight),
	}, nil
}

// Handler returns the worker's HTTP surface: POST /v1/shards executes a
// shard synchronously; GET /healthz reports liveness and tallies.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/shards", w.handleShard)
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, _ *http.Request) {
		writeJSON(rw, http.StatusOK, map[string]any{
			"ok":            true,
			"shards_done":   w.shardsDone.Load(),
			"shards_failed": w.shardsFailed.Load(),
		})
	})
	return mux
}

// Run serves shards until the context ends: bind, register (retrying
// until the coordinator answers), heartbeat, serve.  Returns nil on a
// clean context-driven shutdown.
func (w *Worker) Run(ctx context.Context) error {
	w.tel = telemetry.From(ctx)
	ln, err := net.Listen("tcp", w.cfg.Listen)
	if err != nil {
		return fmt.Errorf("dist: worker listen: %w", err)
	}
	advertise := w.cfg.Advertise
	if advertise == "" {
		advertise = "http://" + ln.Addr().String()
	}
	name := w.cfg.Name
	if name == "" {
		name = ln.Addr().String()
	}
	log := w.tel.Logger()
	log.Info("worker up", "listen", ln.Addr().String(),
		"advertise", advertise, "coordinator", w.cfg.Coordinator)

	srv := &http.Server{
		Handler: w.Handler(),
		BaseContext: func(net.Listener) context.Context {
			// Shard executions inherit the worker's lifetime (and its
			// telemetry), not just the request's.
			return ctx
		},
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		w.heartbeatLoop(ctx, name, advertise)
	}()

	select {
	case <-ctx.Done():
	case err := <-serveErr:
		return fmt.Errorf("dist: worker serve: %w", err)
	}
	shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = srv.Shutdown(shctx)
	<-hbDone
	log.Info("worker down", "shards_done", w.shardsDone.Load())
	return nil
}

// heartbeatLoop registers and then heartbeats until ctx ends,
// re-registering (with capped backoff) whenever the coordinator stops
// recognizing the worker — e.g. after a coordinator restart.
func (w *Worker) heartbeatLoop(ctx context.Context, name, advertise string) {
	log := w.tel.Logger()
	backoff := w.cfg.HeartbeatEvery
	for ctx.Err() == nil {
		id, err := w.register(ctx, name, advertise)
		if err != nil {
			log.Warn("worker register failed", "err", err)
			if !sleepCtx(ctx, backoff) {
				return
			}
			if backoff *= 2; backoff > registerBackoffMax {
				backoff = registerBackoffMax
			}
			continue
		}
		backoff = w.cfg.HeartbeatEvery
		w.id.Store(id)
		log.Info("worker registered", "id", id)
		ticker := time.NewTicker(w.cfg.HeartbeatEvery)
		for ctx.Err() == nil {
			select {
			case <-ctx.Done():
				ticker.Stop()
				return
			case <-ticker.C:
			}
			if err := w.heartbeat(ctx, id); err != nil {
				log.Warn("worker heartbeat rejected, re-registering", "err", err)
				break
			}
		}
		ticker.Stop()
	}
}

func (w *Worker) register(ctx context.Context, name, advertise string) (string, error) {
	var resp registerResponse
	err := w.postJSON(ctx, w.cfg.Coordinator+"/v1/workers/register",
		registerRequest{Name: name, URL: advertise}, &resp)
	if err != nil {
		return "", err
	}
	if resp.ID == "" {
		return "", errors.New("dist: coordinator returned empty worker id")
	}
	return resp.ID, nil
}

func (w *Worker) heartbeat(ctx context.Context, id string) error {
	return w.postJSON(ctx, w.cfg.Coordinator+"/v1/workers/heartbeat",
		heartbeatRequest{ID: id}, nil)
}

func (w *Worker) postJSON(ctx context.Context, url string, body, out any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(b))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("dist: %s: %s: %s", url, resp.Status, bytes.TrimSpace(msg))
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

// handleShard executes one dispatched trial range.  The request context
// is the cancellation lever: a coordinator that abandons the dispatch
// (worker presumed dead, campaign canceled) tears down the shard's
// trials through the same plumbing as a local SIGINT.
func (w *Worker) handleShard(rw http.ResponseWriter, r *http.Request) {
	var req ShardRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeJSON(rw, http.StatusBadRequest, errorResponse{Error: "bad shard request: " + err.Error()})
		return
	}
	c, err := req.Campaign.Campaign()
	if err != nil {
		writeJSON(rw, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	c.Workers = w.cfg.Workers
	golden, err := w.golden(r.Context(), c.App, c.Class, c.Procs, c.Timeout)
	if err != nil {
		w.shardsFailed.Add(1)
		writeJSON(rw, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	t0 := time.Now()
	res, err := faultsim.RunShardCtx(r.Context(), c, golden, req.Start, req.End)
	if err != nil {
		w.shardsFailed.Add(1)
		writeJSON(rw, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	w.shardsDone.Add(1)
	id := ""
	if v := w.id.Load(); v != nil {
		id = v.(string)
	}
	writeJSON(rw, http.StatusOK, ShardResponse{
		Worker:    id,
		Result:    res,
		ElapsedNS: time.Since(t0).Nanoseconds(),
	})
}

// golden returns the (app, class, procs) reference run, computing it at
// most once per key even under concurrent shard requests.
func (w *Worker) golden(ctx context.Context, app apps.App, class string, procs int, timeout time.Duration) (*faultsim.Golden, error) {
	if class == "" {
		class = app.DefaultClass()
	}
	key := goldenKey{app: app.Name(), class: class, procs: procs}
	w.mu.Lock()
	f := w.goldens[key]
	if f == nil {
		f = &goldenFlight{done: make(chan struct{})}
		w.goldens[key] = f
		w.mu.Unlock()
		f.g, f.err = faultsim.ComputeGoldenCtx(ctx, app, class, procs, timeout)
		if f.err != nil {
			// Clear the slot so a later shard can retry.
			w.mu.Lock()
			delete(w.goldens, key)
			w.mu.Unlock()
		}
		close(f.done)
	} else {
		w.mu.Unlock()
		select {
		case <-f.done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return f.g, f.err
}

// writeJSON writes a JSON response body with the given status.
func writeJSON(rw http.ResponseWriter, status int, v any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	_ = json.NewEncoder(rw).Encode(v)
}

// sleepCtx sleeps d or until ctx ends; reports whether ctx is still
// live.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
