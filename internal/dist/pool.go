package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"resmod/internal/faultsim"
	"resmod/internal/telemetry"
)

// Coordinator defaults.
const (
	// DefaultHeartbeatTimeout is how long a worker may go without a
	// heartbeat before the coordinator declares it dead.
	DefaultHeartbeatTimeout = 5 * time.Second
	// DefaultShardsPerWorker is how many chunks per alive worker the
	// trial range is cut into — over-decomposition, so that losing a
	// worker forfeits only a fraction of its assignment and faster
	// workers naturally steal more chunks.
	DefaultShardsPerWorker = 4
	// DefaultMinShard is the smallest chunk worth a network round trip.
	DefaultMinShard = 8
	// DefaultRetireMultiple sets the default roster-retirement horizon as
	// a multiple of the heartbeat timeout: a worker silent this long is
	// not "briefly partitioned", it is gone, and keeping it would grow
	// the /v1/workers roster and the per-worker /metrics series without
	// bound as workers churn.
	DefaultRetireMultiple = 12
)

// PoolConfig configures the coordinator's worker pool.
type PoolConfig struct {
	// HeartbeatTimeout declares a silent worker dead (default
	// DefaultHeartbeatTimeout).
	HeartbeatTimeout time.Duration
	// ShardsPerWorker is the over-decomposition factor (default
	// DefaultShardsPerWorker).
	ShardsPerWorker int
	// MinShard is the minimum trials per chunk (default DefaultMinShard).
	MinShard int
	// ProgressEvery is the live shard-progress report cadence requested
	// from workers (default defaultProgressEvery).
	ProgressEvery time.Duration
	// RetireAfter removes a worker from the roster entirely once its
	// heartbeat has been stale this long (default DefaultRetireMultiple ×
	// HeartbeatTimeout) — its labeled /metrics series and /v1/workers
	// entry disappear instead of accumulating forever.  A retired worker
	// that comes back simply re-registers.
	RetireAfter time.Duration
}

// Pool is the coordinator's worker registry and shard dispatcher.  It
// implements the exper.Config.Distribute contract: given a campaign and
// its golden, cut [0, Trials) into chunks, dispatch them to alive
// workers over HTTP, requeue the chunks of workers that die mid-flight
// onto survivors, and finish any remainder locally so a campaign
// admitted to the distributed path always completes (or fails
// deterministically).
type Pool struct {
	cfg    PoolConfig
	client *http.Client

	mu      sync.Mutex
	seq     int
	workers map[string]*poolWorker

	campaigns        atomic.Uint64
	heartbeats       atomic.Uint64
	shardsDispatched atomic.Uint64
	shardsCompleted  atomic.Uint64
	shardsRequeued   atomic.Uint64
	shardsLocal      atomic.Uint64
	progressReports  atomic.Uint64
	progressStale    atomic.Uint64

	// progSinks routes in-flight shard progress reports by token (see
	// progress.go).
	progMu    sync.Mutex
	progSeq   uint64
	progSinks map[string]func(ShardProgressReport)
}

// poolWorker is one registered execution node.
type poolWorker struct {
	id         string
	name       string
	url        string
	registered time.Time

	mu       sync.Mutex
	lastSeen time.Time
	done     uint64
	failed   uint64
	// stats is the worker's self-reported snapshot from its latest
	// heartbeat (nil until one arrives); rate is trials/sec derived from
	// consecutive snapshots.
	stats      *WorkerStats
	statsAt    time.Time
	prevTrials uint64
	rate       float64
}

func (w *poolWorker) seen(now time.Time) {
	w.mu.Lock()
	w.lastSeen = now
	w.mu.Unlock()
}

func (w *poolWorker) aliveAt(now time.Time, timeout time.Duration) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return now.Sub(w.lastSeen) <= timeout
}

// NewPool returns an empty coordinator pool.
func NewPool(cfg PoolConfig) *Pool {
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = DefaultHeartbeatTimeout
	}
	if cfg.ShardsPerWorker <= 0 {
		cfg.ShardsPerWorker = DefaultShardsPerWorker
	}
	if cfg.MinShard <= 0 {
		cfg.MinShard = DefaultMinShard
	}
	if cfg.RetireAfter <= 0 {
		cfg.RetireAfter = DefaultRetireMultiple * cfg.HeartbeatTimeout
	}
	return &Pool{
		cfg: cfg,
		// Shards run for as long as their trials take: the dispatch
		// request must not carry a client-side timeout — cancellation is
		// the context's (and the heartbeat watchdog's) job.
		client:  &http.Client{},
		workers: make(map[string]*poolWorker),
	}
}

// Register adds (or replaces, keyed by callback URL) a worker and
// returns its assigned id.  A fresh registration counts as a heartbeat.
func (p *Pool) Register(name, url string) string {
	now := time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	for id, wk := range p.workers {
		if wk.url == url {
			// A restarted worker re-registers at the same URL; the stale
			// entry would otherwise linger as a phantom until timeout.
			delete(p.workers, id)
		}
	}
	p.seq++
	id := fmt.Sprintf("w%d", p.seq)
	wk := &poolWorker{id: id, name: name, url: url, registered: now, lastSeen: now}
	p.workers[id] = wk
	return id
}

// Heartbeat refreshes a worker's liveness and folds in its piggybacked
// counter snapshot (nil from workers that report none); false means the
// id is unknown (e.g. the coordinator restarted) and the worker must
// re-register.
func (p *Pool) Heartbeat(id string, st *WorkerStats) bool {
	p.mu.Lock()
	wk := p.workers[id]
	p.mu.Unlock()
	if wk == nil {
		return false
	}
	now := time.Now()
	wk.mu.Lock()
	wk.lastSeen = now
	if st != nil {
		if !wk.statsAt.IsZero() && st.TrialsDone >= wk.prevTrials {
			if dt := now.Sub(wk.statsAt).Seconds(); dt > 0 {
				wk.rate = float64(st.TrialsDone-wk.prevTrials) / dt
			}
		}
		wk.prevTrials = st.TrialsDone
		wk.statsAt = now
		cp := *st
		wk.stats = &cp
	}
	wk.mu.Unlock()
	p.heartbeats.Add(1)
	return true
}

// pruneLocked retires workers whose heartbeat has been stale past
// RetireAfter, so long-dead nodes stop occupying the roster (and their
// labeled metric series stop being emitted).  Callers hold p.mu.
func (p *Pool) pruneLocked(now time.Time) {
	for id, wk := range p.workers {
		wk.mu.Lock()
		stale := now.Sub(wk.lastSeen) > p.cfg.RetireAfter
		wk.mu.Unlock()
		if stale {
			delete(p.workers, id)
		}
	}
}

// alive snapshots the workers whose heartbeat is fresh.
func (p *Pool) alive() []*poolWorker {
	now := time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	p.pruneLocked(now)
	var out []*poolWorker
	for _, wk := range p.workers {
		if wk.aliveAt(now, p.cfg.HeartbeatTimeout) {
			out = append(out, wk)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// WorkerInfo is the /v1/workers and /v1/cluster JSON view of one
// registered worker.  ShardsDone/ShardsFailed are this coordinator's
// view of its own dispatches; Stats is the worker's self-reported
// lifetime snapshot from its latest heartbeat.
type WorkerInfo struct {
	ID           string `json:"id"`
	Name         string `json:"name"`
	URL          string `json:"url"`
	Alive        bool   `json:"alive"`
	LastSeenMS   int64  `json:"last_seen_ms"`
	ShardsDone   uint64 `json:"shards_done"`
	ShardsFailed uint64 `json:"shards_failed"`
	// TrialsPerSec is derived from consecutive heartbeat snapshots (0
	// until two arrive).
	TrialsPerSec float64 `json:"trials_per_sec"`
	// Stats is nil until the worker's first stats-bearing heartbeat.
	Stats *WorkerStats `json:"worker_stats,omitempty"`
}

// Workers lists every registered worker, alive or not, id-ordered.
func (p *Pool) Workers() []WorkerInfo {
	now := time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	p.pruneLocked(now)
	out := make([]WorkerInfo, 0, len(p.workers))
	for _, wk := range p.workers {
		wk.mu.Lock()
		info := WorkerInfo{
			ID:           wk.id,
			Name:         wk.name,
			URL:          wk.url,
			Alive:        now.Sub(wk.lastSeen) <= p.cfg.HeartbeatTimeout,
			LastSeenMS:   now.Sub(wk.lastSeen).Milliseconds(),
			ShardsDone:   wk.done,
			ShardsFailed: wk.failed,
			TrialsPerSec: wk.rate,
		}
		if wk.stats != nil {
			cp := *wk.stats
			info.Stats = &cp
		}
		wk.mu.Unlock()
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// PoolStats is the coordinator's /metrics view.
type PoolStats struct {
	WorkersKnown     int
	WorkersAlive     int
	Heartbeats       uint64
	Campaigns        uint64
	ShardsDispatched uint64
	ShardsCompleted  uint64
	ShardsRequeued   uint64
	ShardsLocal      uint64
	// ProgressReports counts accepted live shard-progress reports;
	// ProgressStale counts reports dropped for carrying a retired token.
	ProgressReports uint64
	ProgressStale   uint64
}

// Stats snapshots the pool counters.
func (p *Pool) Stats() PoolStats {
	alive := len(p.alive())
	p.mu.Lock()
	known := len(p.workers)
	p.mu.Unlock()
	return PoolStats{
		WorkersKnown:     known,
		WorkersAlive:     alive,
		Heartbeats:       p.heartbeats.Load(),
		Campaigns:        p.campaigns.Load(),
		ShardsDispatched: p.shardsDispatched.Load(),
		ShardsCompleted:  p.shardsCompleted.Load(),
		ShardsRequeued:   p.shardsRequeued.Load(),
		ShardsLocal:      p.shardsLocal.Load(),
		ProgressReports:  p.progressReports.Load(),
		ProgressStale:    p.progressStale.Load(),
	}
}

// chunkQueue is the campaign's work list: chunks pop in range order,
// failed dispatches requeue, and an exceeded abnormal budget closes the
// queue so no further trials burn.
type chunkQueue struct {
	mu     sync.Mutex
	chunks [][2]int
	closed bool
}

func (q *chunkQueue) pop() ([2]int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || len(q.chunks) == 0 {
		return [2]int{}, false
	}
	r := q.chunks[0]
	q.chunks = q.chunks[1:]
	return r, true
}

func (q *chunkQueue) requeue(r [2]int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.chunks = append(q.chunks, r)
}

func (q *chunkQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
}

// shardRanges cuts [0, trials) into at most parts contiguous chunks of
// at least minShard trials each (the final chunk absorbs the
// remainder's tail).
func shardRanges(trials, parts, minShard int) [][2]int {
	if parts < 1 {
		parts = 1
	}
	size := (trials + parts - 1) / parts
	if size < minShard {
		size = minShard
	}
	var out [][2]int
	for start := 0; start < trials; start += size {
		end := start + size
		if end > trials {
			end = trials
		}
		out = append(out, [2]int{start, end})
	}
	return out
}

// Distribute runs the campaign across the registered workers.  The
// second return is false when no worker is alive — the caller's cue to
// fall back to plain local execution.  Once handled, the campaign
// always resolves here: chunks of workers that die re-dispatch to
// survivors, and whatever remains when the last worker is gone runs
// locally through the same shard engine, so the merged Summary is
// bit-identical to a single-node run regardless of the loss history.
func (p *Pool) Distribute(ctx context.Context, c faultsim.Campaign, golden *faultsim.Golden) (*faultsim.Summary, bool, error) {
	if c.Trials < 1 {
		return nil, false, nil
	}
	alive := p.alive()
	if len(alive) == 0 {
		return nil, false, nil
	}
	p.campaigns.Add(1)
	c = c.Normalized()
	tel := telemetry.From(ctx)
	reqID := telemetry.RequestID(ctx)
	ctx, span := tel.Tracer().Start(ctx, "distribute",
		telemetry.String("id", c.Identity()),
		telemetry.Int("workers", len(alive)))
	defer span.End()
	log := tel.Logger()

	m := faultsim.NewMerger(c, golden)
	spec := SpecOf(c)
	queue := &chunkQueue{chunks: shardRanges(c.Trials, len(alive)*p.cfg.ShardsPerWorker, p.cfg.MinShard)}
	log.Info("distributing campaign", "id", c.Identity(),
		"trials", c.Trials, "workers", len(alive), "chunks", len(queue.chunks))

	// Live progress (nil when the context carries no bus): workers stream
	// in-flight tallies back, merged chunks settle into the Merger, and
	// the combined view feeds the same events a local run publishes.
	dp := newDistProgress(p, tel.Progress(), c.Identity(), c.Trials, m)
	dp.publish(telemetry.StateRunning)

	var wg sync.WaitGroup
	for _, wk := range alive {
		wg.Add(1)
		go func(wk *poolWorker) {
			defer wg.Done()
			for {
				r, ok := queue.pop()
				if !ok {
					return
				}
				token := dp.attach()
				res, err := p.dispatch(ctx, tel, wk, spec, r, token, reqID)
				if err != nil {
					// The chunk goes back for survivors (or the local
					// tail); this worker sits out the rest of the
					// campaign until its heartbeats prove it back.  Its
					// token retires with it, so any straggler progress
					// reports cannot double-count the re-executed trials.
					dp.retire(token)
					queue.requeue(r)
					p.shardsRequeued.Add(1)
					wk.mu.Lock()
					wk.failed++
					wk.mu.Unlock()
					log.Warn("shard dispatch failed, requeued",
						"worker", wk.id, "start", r[0], "end", r[1], "err", err)
					return
				}
				if err := m.Merge(res); err != nil {
					// A result that does not merge is a protocol bug or a
					// hostile worker; treat like a dispatch failure.
					dp.retire(token)
					queue.requeue(r)
					p.shardsRequeued.Add(1)
					log.Warn("shard result rejected", "worker", wk.id, "err", err)
					return
				}
				dp.settle(token)
				p.shardsCompleted.Add(1)
				wk.mu.Lock()
				wk.done++
				wk.mu.Unlock()
				if m.AbnormalExceeded() {
					queue.close()
					return
				}
			}
		}(wk)
	}
	wg.Wait()

	// Whatever the dead left behind runs locally through the same shard
	// engine — same per-trial RNG streams, so still bit-identical.
	if !m.AbnormalExceeded() {
		for {
			r, ok := queue.pop()
			if !ok {
				break
			}
			runCtx := ctx
			token := dp.attach()
			if token != "" {
				runCtx = faultsim.WithShardObserver(ctx, func(st faultsim.ShardStatus) {
					dp.report(ShardProgressReport{Token: token, Status: st})
				})
			}
			res, err := faultsim.RunShardCtx(runCtx, c, golden, r[0], r[1])
			if err != nil {
				dp.finish(err, ctx.Err() != nil)
				return nil, true, fmt.Errorf("dist: local completion of [%d,%d): %w", r[0], r[1], err)
			}
			if err := m.Merge(res); err != nil {
				dp.finish(err, false)
				return nil, true, err
			}
			dp.settle(token)
			p.shardsLocal.Add(1)
			log.Info("completed shard locally", "start", r[0], "end", r[1])
			if m.AbnormalExceeded() {
				break
			}
		}
	}
	sum, err := m.Summary()
	if err != nil {
		dp.finish(err, false)
		return nil, true, err
	}
	dp.finish(nil, false)
	span.SetAttr(telemetry.Attr{Key: "trials_done", Value: m.Done()})
	return sum, true, nil
}

// dispatch POSTs one chunk to one worker and decodes the shard result.
// A watchdog cancels the in-flight request if the worker's heartbeat
// goes stale — a killed node whose TCP connection does not reset still
// only delays the campaign by the heartbeat timeout.
//
// Observability: the dispatch runs under its own span whose ID (and the
// job's request ID) travel as headers; when tracing is on, the worker's
// returned spans graft under that span tagged with the worker identity,
// anchored at the dispatch instant — the job trace then shows the true
// cross-fleet timeline.  A non-empty token asks the worker to stream
// live progress back to /v1/shards/progress.
func (p *Pool) dispatch(ctx context.Context, tel *telemetry.Telemetry, wk *poolWorker, spec CampaignSpec, r [2]int, token, reqID string) (*faultsim.ShardResult, error) {
	p.shardsDispatched.Add(1)
	tr := tel.Tracer()
	dispatchedAt := time.Now()
	_, dspan := tr.Start(ctx, "dispatch",
		telemetry.String("worker", wk.id),
		telemetry.String("worker_name", wk.name),
		telemetry.Int("start", r[0]), telemetry.Int("end", r[1]))
	defer dspan.End()
	sreq := ShardRequest{Campaign: spec, Start: r[0], End: r[1], Trace: tr != nil}
	if token != "" {
		every := p.cfg.ProgressEvery
		if every <= 0 {
			every = defaultProgressEvery
		}
		sreq.Progress = &ProgressSpec{Token: token, EveryNS: int64(every)}
	}
	body, err := json.Marshal(sreq)
	if err != nil {
		return nil, err
	}
	reqCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	watchStop := make(chan struct{})
	defer close(watchStop)
	go func() {
		tick := time.NewTicker(p.cfg.HeartbeatTimeout / 4)
		defer tick.Stop()
		for {
			select {
			case <-watchStop:
				return
			case <-reqCtx.Done():
				return
			case now := <-tick.C:
				if !wk.aliveAt(now, p.cfg.HeartbeatTimeout) {
					cancel()
					return
				}
			}
		}
	}()
	req, err := http.NewRequestWithContext(reqCtx, http.MethodPost, wk.url+"/v1/shards", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if reqID != "" {
		req.Header.Set(RequestIDHeader, reqID)
	}
	if id := dspan.ID(); id != 0 {
		req.Header.Set(ParentSpanHeader, strconv.FormatUint(id, 10))
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("dist: worker %s: %s: %s", wk.id, resp.Status, bytes.TrimSpace(msg))
	}
	var sr ShardResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, err
	}
	if sr.Result == nil {
		return nil, errors.New("dist: worker returned no shard result")
	}
	if len(sr.Trace) > 0 {
		tr.Graft(sr.Trace, dspan, dispatchedAt,
			telemetry.String("worker", wk.id),
			telemetry.String("worker_name", wk.name))
	}
	return sr.Result, nil
}
