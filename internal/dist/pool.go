package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"resmod/internal/faultsim"
	"resmod/internal/telemetry"
)

// Coordinator defaults.
const (
	// DefaultHeartbeatTimeout is how long a worker may go without a
	// heartbeat before the coordinator declares it dead.
	DefaultHeartbeatTimeout = 5 * time.Second
	// DefaultShardsPerWorker is how many chunks per alive worker the
	// trial range is cut into — over-decomposition, so that losing a
	// worker forfeits only a fraction of its assignment and faster
	// workers naturally steal more chunks.
	DefaultShardsPerWorker = 4
	// DefaultMinShard is the smallest chunk worth a network round trip.
	DefaultMinShard = 8
)

// PoolConfig configures the coordinator's worker pool.
type PoolConfig struct {
	// HeartbeatTimeout declares a silent worker dead (default
	// DefaultHeartbeatTimeout).
	HeartbeatTimeout time.Duration
	// ShardsPerWorker is the over-decomposition factor (default
	// DefaultShardsPerWorker).
	ShardsPerWorker int
	// MinShard is the minimum trials per chunk (default DefaultMinShard).
	MinShard int
}

// Pool is the coordinator's worker registry and shard dispatcher.  It
// implements the exper.Config.Distribute contract: given a campaign and
// its golden, cut [0, Trials) into chunks, dispatch them to alive
// workers over HTTP, requeue the chunks of workers that die mid-flight
// onto survivors, and finish any remainder locally so a campaign
// admitted to the distributed path always completes (or fails
// deterministically).
type Pool struct {
	cfg    PoolConfig
	client *http.Client

	mu      sync.Mutex
	seq     int
	workers map[string]*poolWorker

	campaigns        atomic.Uint64
	heartbeats       atomic.Uint64
	shardsDispatched atomic.Uint64
	shardsCompleted  atomic.Uint64
	shardsRequeued   atomic.Uint64
	shardsLocal      atomic.Uint64
}

// poolWorker is one registered execution node.
type poolWorker struct {
	id         string
	name       string
	url        string
	registered time.Time

	mu       sync.Mutex
	lastSeen time.Time
	done     uint64
	failed   uint64
}

func (w *poolWorker) seen(now time.Time) {
	w.mu.Lock()
	w.lastSeen = now
	w.mu.Unlock()
}

func (w *poolWorker) aliveAt(now time.Time, timeout time.Duration) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return now.Sub(w.lastSeen) <= timeout
}

// NewPool returns an empty coordinator pool.
func NewPool(cfg PoolConfig) *Pool {
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = DefaultHeartbeatTimeout
	}
	if cfg.ShardsPerWorker <= 0 {
		cfg.ShardsPerWorker = DefaultShardsPerWorker
	}
	if cfg.MinShard <= 0 {
		cfg.MinShard = DefaultMinShard
	}
	return &Pool{
		cfg: cfg,
		// Shards run for as long as their trials take: the dispatch
		// request must not carry a client-side timeout — cancellation is
		// the context's (and the heartbeat watchdog's) job.
		client:  &http.Client{},
		workers: make(map[string]*poolWorker),
	}
}

// Register adds (or replaces, keyed by callback URL) a worker and
// returns its assigned id.  A fresh registration counts as a heartbeat.
func (p *Pool) Register(name, url string) string {
	now := time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	for id, wk := range p.workers {
		if wk.url == url {
			// A restarted worker re-registers at the same URL; the stale
			// entry would otherwise linger as a phantom until timeout.
			delete(p.workers, id)
		}
	}
	p.seq++
	id := fmt.Sprintf("w%d", p.seq)
	wk := &poolWorker{id: id, name: name, url: url, registered: now, lastSeen: now}
	p.workers[id] = wk
	return id
}

// Heartbeat refreshes a worker's liveness; false means the id is
// unknown (e.g. the coordinator restarted) and the worker must
// re-register.
func (p *Pool) Heartbeat(id string) bool {
	p.mu.Lock()
	wk := p.workers[id]
	p.mu.Unlock()
	if wk == nil {
		return false
	}
	wk.seen(time.Now())
	p.heartbeats.Add(1)
	return true
}

// alive snapshots the workers whose heartbeat is fresh.
func (p *Pool) alive() []*poolWorker {
	now := time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []*poolWorker
	for _, wk := range p.workers {
		if wk.aliveAt(now, p.cfg.HeartbeatTimeout) {
			out = append(out, wk)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// WorkerInfo is the /v1/workers JSON view of one registered worker.
type WorkerInfo struct {
	ID           string `json:"id"`
	Name         string `json:"name"`
	URL          string `json:"url"`
	Alive        bool   `json:"alive"`
	LastSeenMS   int64  `json:"last_seen_ms"`
	ShardsDone   uint64 `json:"shards_done"`
	ShardsFailed uint64 `json:"shards_failed"`
}

// Workers lists every registered worker, alive or not, id-ordered.
func (p *Pool) Workers() []WorkerInfo {
	now := time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]WorkerInfo, 0, len(p.workers))
	for _, wk := range p.workers {
		wk.mu.Lock()
		out = append(out, WorkerInfo{
			ID:           wk.id,
			Name:         wk.name,
			URL:          wk.url,
			Alive:        now.Sub(wk.lastSeen) <= p.cfg.HeartbeatTimeout,
			LastSeenMS:   now.Sub(wk.lastSeen).Milliseconds(),
			ShardsDone:   wk.done,
			ShardsFailed: wk.failed,
		})
		wk.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// PoolStats is the coordinator's /metrics view.
type PoolStats struct {
	WorkersKnown     int
	WorkersAlive     int
	Heartbeats       uint64
	Campaigns        uint64
	ShardsDispatched uint64
	ShardsCompleted  uint64
	ShardsRequeued   uint64
	ShardsLocal      uint64
}

// Stats snapshots the pool counters.
func (p *Pool) Stats() PoolStats {
	alive := len(p.alive())
	p.mu.Lock()
	known := len(p.workers)
	p.mu.Unlock()
	return PoolStats{
		WorkersKnown:     known,
		WorkersAlive:     alive,
		Heartbeats:       p.heartbeats.Load(),
		Campaigns:        p.campaigns.Load(),
		ShardsDispatched: p.shardsDispatched.Load(),
		ShardsCompleted:  p.shardsCompleted.Load(),
		ShardsRequeued:   p.shardsRequeued.Load(),
		ShardsLocal:      p.shardsLocal.Load(),
	}
}

// chunkQueue is the campaign's work list: chunks pop in range order,
// failed dispatches requeue, and an exceeded abnormal budget closes the
// queue so no further trials burn.
type chunkQueue struct {
	mu     sync.Mutex
	chunks [][2]int
	closed bool
}

func (q *chunkQueue) pop() ([2]int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || len(q.chunks) == 0 {
		return [2]int{}, false
	}
	r := q.chunks[0]
	q.chunks = q.chunks[1:]
	return r, true
}

func (q *chunkQueue) requeue(r [2]int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.chunks = append(q.chunks, r)
}

func (q *chunkQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
}

// shardRanges cuts [0, trials) into at most parts contiguous chunks of
// at least minShard trials each (the final chunk absorbs the
// remainder's tail).
func shardRanges(trials, parts, minShard int) [][2]int {
	if parts < 1 {
		parts = 1
	}
	size := (trials + parts - 1) / parts
	if size < minShard {
		size = minShard
	}
	var out [][2]int
	for start := 0; start < trials; start += size {
		end := start + size
		if end > trials {
			end = trials
		}
		out = append(out, [2]int{start, end})
	}
	return out
}

// Distribute runs the campaign across the registered workers.  The
// second return is false when no worker is alive — the caller's cue to
// fall back to plain local execution.  Once handled, the campaign
// always resolves here: chunks of workers that die re-dispatch to
// survivors, and whatever remains when the last worker is gone runs
// locally through the same shard engine, so the merged Summary is
// bit-identical to a single-node run regardless of the loss history.
func (p *Pool) Distribute(ctx context.Context, c faultsim.Campaign, golden *faultsim.Golden) (*faultsim.Summary, bool, error) {
	if c.Trials < 1 {
		return nil, false, nil
	}
	alive := p.alive()
	if len(alive) == 0 {
		return nil, false, nil
	}
	p.campaigns.Add(1)
	c = c.Normalized()
	tel := telemetry.From(ctx)
	ctx, span := tel.Tracer().Start(ctx, "distribute",
		telemetry.String("id", c.Identity()),
		telemetry.Int("workers", len(alive)))
	defer span.End()
	log := tel.Logger()

	m := faultsim.NewMerger(c, golden)
	spec := SpecOf(c)
	queue := &chunkQueue{chunks: shardRanges(c.Trials, len(alive)*p.cfg.ShardsPerWorker, p.cfg.MinShard)}
	log.Info("distributing campaign", "id", c.Identity(),
		"trials", c.Trials, "workers", len(alive), "chunks", len(queue.chunks))

	var wg sync.WaitGroup
	for _, wk := range alive {
		wg.Add(1)
		go func(wk *poolWorker) {
			defer wg.Done()
			for {
				r, ok := queue.pop()
				if !ok {
					return
				}
				res, err := p.dispatch(ctx, wk, spec, r)
				if err != nil {
					// The chunk goes back for survivors (or the local
					// tail); this worker sits out the rest of the
					// campaign until its heartbeats prove it back.
					queue.requeue(r)
					p.shardsRequeued.Add(1)
					wk.mu.Lock()
					wk.failed++
					wk.mu.Unlock()
					log.Warn("shard dispatch failed, requeued",
						"worker", wk.id, "start", r[0], "end", r[1], "err", err)
					return
				}
				if err := m.Merge(res); err != nil {
					// A result that does not merge is a protocol bug or a
					// hostile worker; treat like a dispatch failure.
					queue.requeue(r)
					p.shardsRequeued.Add(1)
					log.Warn("shard result rejected", "worker", wk.id, "err", err)
					return
				}
				p.shardsCompleted.Add(1)
				wk.mu.Lock()
				wk.done++
				wk.mu.Unlock()
				if m.AbnormalExceeded() {
					queue.close()
					return
				}
			}
		}(wk)
	}
	wg.Wait()

	// Whatever the dead left behind runs locally through the same shard
	// engine — same per-trial RNG streams, so still bit-identical.
	if !m.AbnormalExceeded() {
		for {
			r, ok := queue.pop()
			if !ok {
				break
			}
			res, err := faultsim.RunShardCtx(ctx, c, golden, r[0], r[1])
			if err != nil {
				return nil, true, fmt.Errorf("dist: local completion of [%d,%d): %w", r[0], r[1], err)
			}
			if err := m.Merge(res); err != nil {
				return nil, true, err
			}
			p.shardsLocal.Add(1)
			log.Info("completed shard locally", "start", r[0], "end", r[1])
			if m.AbnormalExceeded() {
				break
			}
		}
	}
	sum, err := m.Summary()
	if err != nil {
		return nil, true, err
	}
	span.SetAttr(telemetry.Attr{Key: "trials_done", Value: m.Done()})
	return sum, true, nil
}

// dispatch POSTs one chunk to one worker and decodes the shard result.
// A watchdog cancels the in-flight request if the worker's heartbeat
// goes stale — a killed node whose TCP connection does not reset still
// only delays the campaign by the heartbeat timeout.
func (p *Pool) dispatch(ctx context.Context, wk *poolWorker, spec CampaignSpec, r [2]int) (*faultsim.ShardResult, error) {
	p.shardsDispatched.Add(1)
	body, err := json.Marshal(ShardRequest{Campaign: spec, Start: r[0], End: r[1]})
	if err != nil {
		return nil, err
	}
	reqCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	watchStop := make(chan struct{})
	defer close(watchStop)
	go func() {
		tick := time.NewTicker(p.cfg.HeartbeatTimeout / 4)
		defer tick.Stop()
		for {
			select {
			case <-watchStop:
				return
			case <-reqCtx.Done():
				return
			case now := <-tick.C:
				if !wk.aliveAt(now, p.cfg.HeartbeatTimeout) {
					cancel()
					return
				}
			}
		}
	}()
	req, err := http.NewRequestWithContext(reqCtx, http.MethodPost, wk.url+"/v1/shards", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("dist: worker %s: %s: %s", wk.id, resp.Status, bytes.TrimSpace(msg))
	}
	var sr ShardResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, err
	}
	if sr.Result == nil {
		return nil, errors.New("dist: worker returned no shard result")
	}
	return sr.Result, nil
}
