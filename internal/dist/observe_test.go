package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"resmod/internal/faultsim"
	"resmod/internal/telemetry"
)

// obsTelemetry builds a tracing + progress-bus bundle like the server
// attaches to a distributed job.
func obsTelemetry() (*telemetry.Telemetry, *telemetry.Tracer, *telemetry.Progress) {
	tr := telemetry.NewTracer()
	prog := telemetry.NewProgress()
	return telemetry.New(nil, tr, nil).WithProgress(prog), tr, prog
}

// attrOf returns the named attribute of a span view, or nil.
func attrOf(v telemetry.SpanView, key string) any {
	for _, a := range v.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return nil
}

// assertNoOrphans fails if any span's parent is neither 0 nor a span in
// the same trace — the invariant trace grafting must preserve under
// every loss scenario.
func assertNoOrphans(t *testing.T, views []telemetry.SpanView) {
	t.Helper()
	ids := make(map[uint64]bool, len(views))
	for _, v := range views {
		ids[v.ID] = true
	}
	for _, v := range views {
		if v.Parent != 0 && !ids[v.Parent] {
			t.Errorf("span %q (id %d) orphaned: parent %d not in trace", v.Name, v.ID, v.Parent)
		}
	}
}

// campaignEvents drains the subscription and returns the campaign-kind
// events for the given identity, in arrival order.
func campaignEvents(sub *telemetry.ProgressSub, identity string) []telemetry.ProgressEvent {
	var out []telemetry.ProgressEvent
	for {
		select {
		case ev := <-sub.Events():
			if ev.Kind == telemetry.KindCampaign && ev.Key == identity {
				out = append(out, ev)
			}
		default:
			return out
		}
	}
}

// TestDistributedTraceAndProgress is the observability acceptance core:
// a 2-worker campaign with tracing and a progress bus attached produces
// (a) a bit-identical result, (b) a job trace whose dispatch spans hang
// under the distribute span and whose grafted worker shard spans carry
// both workers' names with no orphaned parents, and (c) a monotonically
// advancing campaign progress stream that terminates in state done.
func TestDistributedTraceAndProgress(t *testing.T) {
	c, golden := testCampaign(t)
	identity := c.Normalized().Identity()
	local, err := faultsim.RunAgainst(c, golden)
	if err != nil {
		t.Fatal(err)
	}
	want := recordJSON(t, local, identity)

	cl := startCluster(t, 2, PoolConfig{
		HeartbeatTimeout: time.Second,
		ShardsPerWorker:  3,
		MinShard:         4,
		ProgressEvery:    10 * time.Millisecond,
	})
	tel, tr, prog := obsTelemetry()
	sub := prog.Subscribe(4096)
	defer sub.Close()
	ctx := telemetry.WithRequestID(telemetry.With(context.Background(), tel), "req-obs")

	sum, handled, err := cl.pool.Distribute(ctx, c, golden)
	if err != nil || !handled {
		t.Fatalf("Distribute = (%v, %v)", handled, err)
	}
	if got := recordJSON(t, sum, identity); got != want {
		t.Errorf("traced+observed run diverged from local:\n got %s\nwant %s", got, want)
	}

	// ---- trace shape ----
	views := tr.Spans()
	assertNoOrphans(t, views)
	var distribute telemetry.SpanView
	for _, v := range views {
		if v.Name == "distribute" {
			distribute = v
		}
	}
	if distribute.ID == 0 {
		t.Fatal("no distribute span recorded")
	}
	dispatchIDs := make(map[uint64]string) // span id -> worker name
	for _, v := range views {
		if v.Name != "dispatch" {
			continue
		}
		if v.Parent != distribute.ID {
			t.Errorf("dispatch span %d parented to %d, want distribute %d", v.ID, v.Parent, distribute.ID)
		}
		name, _ := attrOf(v, "worker_name").(string)
		if name == "" {
			t.Errorf("dispatch span %d carries no worker_name", v.ID)
		}
		dispatchIDs[v.ID] = name
	}
	if len(dispatchIDs) == 0 {
		t.Fatal("no dispatch spans recorded")
	}
	// Grafted worker shard spans: roots re-parented under dispatch spans,
	// tagged with the executing worker, in the job's lane.
	shardWorkers := make(map[string]int)
	for _, v := range views {
		if v.Name != "shard" {
			continue
		}
		wantName, ok := dispatchIDs[v.Parent]
		if !ok {
			t.Errorf("shard span %d not parented under a dispatch span (parent %d)", v.ID, v.Parent)
			continue
		}
		gotName, _ := attrOf(v, "worker_name").(string)
		if gotName != wantName {
			t.Errorf("shard span %d tagged %q, dispatch says %q", v.ID, gotName, wantName)
		}
		if v.TID != distribute.TID {
			t.Errorf("shard span %d in lane %d, want job lane %d", v.ID, v.TID, distribute.TID)
		}
		shardWorkers[gotName]++
	}
	for _, name := range []string{"tw0", "tw1"} {
		if shardWorkers[name] == 0 {
			t.Errorf("no grafted shard spans from worker %s (got %v)", name, shardWorkers)
		}
	}

	// ---- progress stream ----
	evs := campaignEvents(sub, identity)
	if len(evs) < 2 {
		t.Fatalf("want a progress stream, got %d events", len(evs))
	}
	var prev uint64
	for i, ev := range evs {
		if ev.Done < prev {
			t.Fatalf("progress event %d regressed: Done %d after %d", i, ev.Done, prev)
		}
		if ev.Total != uint64(c.Trials) {
			t.Fatalf("progress event %d Total = %d, want %d", i, ev.Total, c.Trials)
		}
		prev = ev.Done
	}
	last := evs[len(evs)-1]
	if last.State != telemetry.StateDone || last.Done != uint64(c.Trials) {
		t.Fatalf("terminal event = {state %s, done %d}, want {done, %d}", last.State, last.Done, c.Trials)
	}
	// At least one mid-flight event advanced before completion — the
	// stream is live, not a single final report.
	if evs[0].Done == last.Done {
		t.Error("progress stream never showed an intermediate state")
	}
	if st := cl.pool.Stats(); st.ProgressReports == 0 {
		t.Errorf("coordinator accepted no worker progress reports (stats %+v)", st)
	}
}

// TestDeadWorkerLeavesNoOrphanSpans: dispatches to a dead-on-arrival
// worker fail and requeue; the trace must contain no spans attributed to
// the corpse and no dangling parent references.
func TestDeadWorkerLeavesNoOrphanSpans(t *testing.T) {
	c, golden := testCampaign(t)
	identity := c.Normalized().Identity()
	local, err := faultsim.RunAgainst(c, golden)
	if err != nil {
		t.Fatal(err)
	}
	want := recordJSON(t, local, identity)

	cl := startCluster(t, 1, PoolConfig{
		HeartbeatTimeout: 30 * time.Second, // keep the corpse "alive": dispatches must hit it
		ShardsPerWorker:  3,
		MinShard:         4,
	})
	corpse := httptest.NewServer(nil)
	corpseURL := corpse.URL
	corpse.Close()
	cl.pool.Register("corpse", corpseURL)

	tel, tr, _ := obsTelemetry()
	ctx := telemetry.With(context.Background(), tel)
	sum, handled, err := cl.pool.Distribute(ctx, c, golden)
	if err != nil || !handled {
		t.Fatalf("Distribute = (%v, %v)", handled, err)
	}
	if got := recordJSON(t, sum, identity); got != want {
		t.Errorf("run diverged from local:\n got %s\nwant %s", got, want)
	}
	if st := cl.pool.Stats(); st.ShardsRequeued == 0 {
		t.Fatalf("corpse absorbed no dispatches (stats %+v)", st)
	}

	views := tr.Spans()
	assertNoOrphans(t, views)
	for _, v := range views {
		if v.Name == "shard" {
			if name, _ := attrOf(v, "worker_name").(string); name == "corpse" {
				t.Errorf("dead worker left a grafted shard span: %+v", v)
			}
		}
	}
}

// TestLocalFallbackObservability: with only phantom workers the
// coordinator finishes everything locally — the progress stream still
// advances monotonically to done, and the trace contains local shard
// spans but no grafted (worker-tagged) ones.
func TestLocalFallbackObservability(t *testing.T) {
	c, golden := testCampaign(t)
	identity := c.Normalized().Identity()
	local, err := faultsim.RunAgainst(c, golden)
	if err != nil {
		t.Fatal(err)
	}
	want := recordJSON(t, local, identity)

	pool := NewPool(PoolConfig{
		HeartbeatTimeout: 30 * time.Second,
		ShardsPerWorker:  4,
		MinShard:         4,
	})
	srv := httptest.NewServer(nil)
	url := srv.URL
	srv.Close()
	pool.Register("ghost", url)

	tel, tr, prog := obsTelemetry()
	sub := prog.Subscribe(4096)
	defer sub.Close()
	ctx := telemetry.With(context.Background(), tel)
	sum, handled, err := pool.Distribute(ctx, c, golden)
	if err != nil || !handled {
		t.Fatalf("Distribute = (%v, %v)", handled, err)
	}
	if got := recordJSON(t, sum, identity); got != want {
		t.Errorf("local-fallback run diverged:\n got %s\nwant %s", got, want)
	}

	views := tr.Spans()
	assertNoOrphans(t, views)
	for _, v := range views {
		if v.Name == "shard" {
			if name := attrOf(v, "worker_name"); name != nil {
				t.Errorf("local shard span tagged with worker %v", name)
			}
		}
	}

	evs := campaignEvents(sub, identity)
	if len(evs) == 0 {
		t.Fatal("no progress events from the local fallback")
	}
	var prev uint64
	for i, ev := range evs {
		if ev.Done < prev {
			t.Fatalf("event %d regressed: Done %d after %d", i, ev.Done, prev)
		}
		prev = ev.Done
	}
	last := evs[len(evs)-1]
	if last.State != telemetry.StateDone || last.Done != uint64(c.Trials) {
		t.Fatalf("terminal event = {state %s, done %d}, want {done, %d}", last.State, last.Done, c.Trials)
	}
}

// TestRetiredTokenDropsStaleReports pins the no-double-count rule: once
// a dispatch attempt's token is retired (its chunk requeued), further
// reports carrying it are rejected, counted as stale, and its previously
// reported tallies leave the published view.
func TestRetiredTokenDropsStaleReports(t *testing.T) {
	c, golden := testCampaign(t)
	pool := NewPool(PoolConfig{})
	prog := telemetry.NewProgress()
	m := faultsim.NewMerger(c, golden)
	dp := newDistProgress(pool, prog, "cid:test", c.Trials, m)

	token := dp.attach()
	if token == "" {
		t.Fatal("attach returned no token")
	}
	rep := ShardProgressReport{Token: token, Worker: "w1",
		Status: faultsim.ShardStatus{Start: 0, End: 30, Done: 10, Success: 10}}
	if !pool.ReportProgress(rep) {
		t.Fatal("live token rejected")
	}
	lastEvent := func() telemetry.ProgressEvent {
		t.Helper()
		for _, ev := range prog.Latest() {
			if ev.Kind == telemetry.KindCampaign && ev.Key == "cid:test" {
				return ev
			}
		}
		t.Fatal("no campaign event on the bus")
		return telemetry.ProgressEvent{}
	}
	if ev := lastEvent(); ev.Done != 10 {
		t.Fatalf("in-flight report not reflected: Done = %d, want 10", ev.Done)
	}

	// The chunk requeues: the worker's trials will re-execute elsewhere,
	// so its reported tallies must vanish, not linger to double-count.
	dp.retire(token)
	if pool.ReportProgress(rep) {
		t.Fatal("retired token accepted")
	}
	if st := pool.Stats(); st.ProgressStale != 1 || st.ProgressReports != 1 {
		t.Fatalf("stale accounting = %+v, want 1 stale / 1 accepted", st)
	}
	dp.finish(nil, false)
	if ev := lastEvent(); ev.Done != 0 || ev.State != telemetry.StateDone {
		t.Fatalf("after retire+finish, event = {state %s, done %d}, want {done, 0}", ev.State, ev.Done)
	}

	// Reports for a token the pool never issued are stale too.
	if pool.ReportProgress(ShardProgressReport{Token: "t999"}) {
		t.Fatal("unknown token accepted")
	}
}

// TestWorkerEchoesRequestID: the dispatch request's X-Request-ID comes
// back on the shard response — the cross-node log-correlation contract.
func TestWorkerEchoesRequestID(t *testing.T) {
	c, _ := testCampaign(t)
	cl := startCluster(t, 1, PoolConfig{HeartbeatTimeout: time.Second})
	workerURL := cl.pool.Workers()[0].URL

	body, err := json.Marshal(ShardRequest{Campaign: SpecOf(c.Normalized()), Start: 0, End: 4})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, workerURL+"/v1/shards", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(RequestIDHeader, "req-echo-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("shard request failed: %s", resp.Status)
	}
	if got := resp.Header.Get(RequestIDHeader); got != "req-echo-1" {
		t.Fatalf("request id echo = %q, want req-echo-1", got)
	}
	var sr ShardResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.Result == nil || sr.Result.Checkpoint.Completed != 4 {
		t.Fatalf("shard response %+v, want 4 completed trials", sr.Result)
	}
	// No Trace flag in the request: no spans in the response.
	if len(sr.Trace) != 0 {
		t.Fatalf("untraced shard returned %d spans", len(sr.Trace))
	}
}

// TestHeartbeatStatsDeriveRate: the coordinator derives trials/sec from
// consecutive stats-bearing heartbeats and surfaces the latest snapshot
// in the workers view.
func TestHeartbeatStatsDeriveRate(t *testing.T) {
	pool := NewPool(PoolConfig{HeartbeatTimeout: time.Minute})
	id := pool.Register("w", "http://127.0.0.1:1")

	if !pool.Heartbeat(id, &WorkerStats{TrialsDone: 100}) {
		t.Fatal("heartbeat rejected")
	}
	ws := pool.Workers()
	if ws[0].Stats == nil || ws[0].Stats.TrialsDone != 100 {
		t.Fatalf("stats snapshot = %+v, want TrialsDone 100", ws[0].Stats)
	}
	if ws[0].TrialsPerSec != 0 {
		t.Fatalf("rate after one heartbeat = %g, want 0", ws[0].TrialsPerSec)
	}
	time.Sleep(50 * time.Millisecond)
	if !pool.Heartbeat(id, &WorkerStats{TrialsDone: 600}) {
		t.Fatal("heartbeat rejected")
	}
	rate := pool.Workers()[0].TrialsPerSec
	if rate <= 0 {
		t.Fatalf("rate after two heartbeats = %g, want > 0", rate)
	}
	// 500 trials over >=50ms: the rate cannot exceed 10000/s.
	if rate > 500/0.05 {
		t.Fatalf("rate %g implausible for 500 trials over >=50ms", rate)
	}
	// A stats-free heartbeat refreshes liveness without clobbering stats.
	if !pool.Heartbeat(id, nil) {
		t.Fatal("stats-free heartbeat rejected")
	}
	if ws := pool.Workers(); ws[0].Stats == nil || ws[0].Stats.TrialsDone != 600 {
		t.Fatalf("stats clobbered by nil heartbeat: %+v", ws[0].Stats)
	}
}

// TestClusterEndpoint: /v1/cluster reports pool counters and per-worker
// detail through the coordinator's bare handler.
func TestClusterEndpoint(t *testing.T) {
	pool := NewPool(PoolConfig{HeartbeatTimeout: time.Minute})
	id := pool.Register("w-alpha", "http://127.0.0.1:1")
	pool.Heartbeat(id, &WorkerStats{TrialsDone: 42, ShardsDone: 3})
	srv := httptest.NewServer(pool.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Coordinator  bool         `json:"coordinator"`
		WorkersKnown int          `json:"workers_known"`
		WorkersAlive int          `json:"workers_alive"`
		Workers      []WorkerInfo `json:"workers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if !doc.Coordinator || doc.WorkersKnown != 1 || doc.WorkersAlive != 1 {
		t.Fatalf("cluster view = %+v", doc)
	}
	if len(doc.Workers) != 1 || doc.Workers[0].Name != "w-alpha" ||
		doc.Workers[0].Stats == nil || doc.Workers[0].Stats.TrialsDone != 42 {
		t.Fatalf("cluster workers = %+v", doc.Workers)
	}
}

// TestWorkerMetricsEndpoint: a worker's own /metrics is scrapeable and
// reflects executed shards.
func TestWorkerMetricsEndpoint(t *testing.T) {
	c, golden := testCampaign(t)
	cl := startCluster(t, 1, PoolConfig{HeartbeatTimeout: time.Second, ShardsPerWorker: 1})
	if _, handled, err := cl.pool.Distribute(context.Background(), c, golden); err != nil || !handled {
		t.Fatalf("Distribute = (%v, %v)", handled, err)
	}
	resp, err := http.Get(cl.pool.Workers()[0].URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"resmod_worker_shards_done_total 1",
		"resmod_worker_trials_done_total 90",
		"resmod_worker_golden_cache_misses_total 1",
		"resmod_worker_shards_inflight 0",
		"resmod_worker_uptime_seconds",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("worker /metrics missing %q:\n%s", want, out)
		}
	}
}
