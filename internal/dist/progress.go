package dist

import (
	"fmt"
	"sync"
	"time"

	"resmod/internal/faultsim"
	"resmod/internal/telemetry"
)

// Coordinator-side live progress for distributed campaigns.  Each
// dispatch attempt gets a single-use token; the worker streams
// ShardProgressReports carrying that token to POST /v1/shards/progress,
// and the coordinator folds the latest in-flight tallies together with
// everything already merged into the same campaign-kind ProgressEvents a
// local run publishes — so SSE streams, /v1/status and TTY bars keep
// moving while the trials run on other machines.  Tokens are retired
// when their chunk merges or is requeued, so a report from a dead
// worker's abandoned attempt can never double-count trials that a
// survivor re-executes.

// registerProgress allocates a dispatch-attempt token routing reports to
// fn.
func (p *Pool) registerProgress(fn func(ShardProgressReport)) string {
	p.progMu.Lock()
	defer p.progMu.Unlock()
	p.progSeq++
	token := fmt.Sprintf("t%d", p.progSeq)
	if p.progSinks == nil {
		p.progSinks = make(map[string]func(ShardProgressReport))
	}
	p.progSinks[token] = fn
	return token
}

// unregisterProgress retires a token; later reports carrying it count as
// stale and are dropped.
func (p *Pool) unregisterProgress(token string) {
	if token == "" {
		return
	}
	p.progMu.Lock()
	delete(p.progSinks, token)
	p.progMu.Unlock()
}

// ReportProgress routes one worker report to its campaign's tracker.
// False means the token is unknown — the dispatch attempt was already
// merged, requeued, or belongs to a previous coordinator life.
func (p *Pool) ReportProgress(rep ShardProgressReport) bool {
	p.progMu.Lock()
	fn := p.progSinks[rep.Token]
	p.progMu.Unlock()
	if fn == nil {
		p.progressStale.Add(1)
		return false
	}
	p.progressReports.Add(1)
	fn(rep)
	return true
}

// distProgress publishes one distributed campaign's progress: merged
// tallies from the Merger plus the latest report of every in-flight
// dispatch attempt.  All methods are nil-safe; newDistProgress returns
// nil when no bus is listening, and the whole apparatus costs nothing.
type distProgress struct {
	pool     *Pool
	prog     *telemetry.Progress
	identity string
	trials   int
	m        *faultsim.Merger
	start    time.Time

	mu       sync.Mutex
	inflight map[string]faultsim.ShardStatus
}

func newDistProgress(pool *Pool, prog *telemetry.Progress, identity string, trials int, m *faultsim.Merger) *distProgress {
	if prog == nil {
		return nil
	}
	return &distProgress{
		pool: pool, prog: prog, identity: identity, trials: trials, m: m,
		start:    time.Now(),
		inflight: make(map[string]faultsim.ShardStatus),
	}
}

// attach opens one dispatch attempt and returns its token ("" when
// progress is off).
func (dp *distProgress) attach() string {
	if dp == nil {
		return ""
	}
	token := dp.pool.registerProgress(dp.report)
	dp.mu.Lock()
	dp.inflight[token] = faultsim.ShardStatus{}
	dp.mu.Unlock()
	return token
}

// report folds one live report into the in-flight view and publishes.
// Reports for attempts no longer in flight are dropped — the
// no-double-count guarantee after a chunk is requeued.
func (dp *distProgress) report(rep ShardProgressReport) {
	if dp == nil {
		return
	}
	dp.mu.Lock()
	if _, ok := dp.inflight[rep.Token]; !ok {
		dp.mu.Unlock()
		return
	}
	dp.inflight[rep.Token] = rep.Status
	dp.mu.Unlock()
	dp.publish(telemetry.StateRunning)
}

// retire abandons a dispatch attempt whose chunk was requeued: its
// reported tallies leave the combined view before a survivor re-executes
// the same trials.
func (dp *distProgress) retire(token string) {
	if dp == nil || token == "" {
		return
	}
	dp.pool.unregisterProgress(token)
	dp.mu.Lock()
	delete(dp.inflight, token)
	dp.mu.Unlock()
}

// settle resolves a dispatch attempt whose result just merged, and
// publishes — the merged tallies now cover the chunk exactly.
func (dp *distProgress) settle(token string) {
	if dp == nil {
		return
	}
	if token != "" {
		dp.pool.unregisterProgress(token)
		dp.mu.Lock()
		delete(dp.inflight, token)
		dp.mu.Unlock()
	}
	dp.publish(telemetry.StateRunning)
}

// publish posts the combined (merged + in-flight) tallies in the given
// state.
func (dp *distProgress) publish(state string) {
	if dp == nil {
		return
	}
	st := dp.m.Tallies()
	dp.mu.Lock()
	for _, s := range dp.inflight {
		st.Done += s.Done
		st.Success += s.Success
		st.SDC += s.SDC
		st.Failure += s.Failure
		st.Abnormal += s.Abnormal
		st.Retried += s.Retried
	}
	dp.mu.Unlock()
	// Distributed campaigns never resume from a checkpoint, so every done
	// trial ran this run and the rate/ETA cover the whole count.
	dp.prog.Publish(faultsim.BuildProgressEvent(dp.identity, state, dp.trials, st, time.Since(dp.start), st.Done))
}

// finish retires every remaining token and publishes the terminal state.
func (dp *distProgress) finish(err error, canceled bool) {
	if dp == nil {
		return
	}
	dp.mu.Lock()
	for token := range dp.inflight {
		dp.pool.unregisterProgress(token)
		delete(dp.inflight, token)
	}
	dp.mu.Unlock()
	state := telemetry.StateDone
	switch {
	case canceled:
		state = telemetry.StateInterrupted
	case err != nil:
		state = telemetry.StateFailed
	}
	dp.publish(state)
}
