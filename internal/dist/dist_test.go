package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"resmod/internal/apps"
	"resmod/internal/faultsim"

	_ "resmod/internal/apps/pennant"
)

// testCampaign is small enough for -race yet large enough to cut into
// many shards.
func testCampaign(t *testing.T) (faultsim.Campaign, *faultsim.Golden) {
	t.Helper()
	app, err := apps.Lookup("PENNANT")
	if err != nil {
		t.Fatal(err)
	}
	c := faultsim.Campaign{App: app, Procs: 4, Trials: 90, Errors: 1,
		Region: faultsim.AnyRegion, Seed: 20180707, Workers: 2}
	golden, err := faultsim.ComputeGolden(app, app.DefaultClass(), c.Procs, 0)
	if err != nil {
		t.Fatal(err)
	}
	return c, golden
}

// recordJSON renders the summary's stable record with wall time zeroed.
func recordJSON(t *testing.T, sum *faultsim.Summary, identity string) string {
	t.Helper()
	rec := sum.Record(identity)
	if rec == nil {
		t.Fatal("nil SummaryRecord")
	}
	rec.ElapsedNS = 0
	b, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// cluster is a coordinator pool with n live in-process workers.
type cluster struct {
	pool    *Pool
	coord   *httptest.Server
	cancels []context.CancelFunc
}

// startCluster boots a pool (behind its Handler, like a real
// coordinator) and n workers that register with it, waiting until all
// heartbeats landed.
func startCluster(t *testing.T, n int, cfg PoolConfig) *cluster {
	t.Helper()
	cl := &cluster{pool: NewPool(cfg)}
	cl.coord = httptest.NewServer(cl.pool.Handler())
	t.Cleanup(cl.coord.Close)
	for i := 0; i < n; i++ {
		w, err := NewWorker(WorkerConfig{
			Coordinator:    cl.coord.URL,
			Listen:         "127.0.0.1:0",
			Name:           fmt.Sprintf("tw%d", i),
			Workers:        2,
			HeartbeatEvery: 25 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cl.cancels = append(cl.cancels, cancel)
		t.Cleanup(cancel)
		go func() { _ = w.Run(ctx) }()
	}
	deadline := time.Now().Add(10 * time.Second)
	for cl.pool.Stats().WorkersAlive < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d workers registered in time", cl.pool.Stats().WorkersAlive, n)
		}
		time.Sleep(10 * time.Millisecond)
	}
	return cl
}

// TestSpecRoundTrip: the wire form survives JSON and reconstructs a
// campaign with the same cid:v2 identity.
func TestSpecRoundTrip(t *testing.T) {
	c, _ := testCampaign(t)
	spec := SpecOf(c)
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back CampaignSpec
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	rc, err := back.Campaign()
	if err != nil {
		t.Fatal(err)
	}
	want := c.Normalized().Identity()
	if got := rc.Normalized().Identity(); got != want {
		t.Fatalf("round-tripped identity %q, want %q", got, want)
	}
}

// TestSpecUnknownApp: a spec naming an unregistered app fails cleanly.
func TestSpecUnknownApp(t *testing.T) {
	if _, err := (CampaignSpec{App: "NOPE", Procs: 4, Trials: 10}).Campaign(); err == nil {
		t.Fatal("unknown app accepted")
	}
}

// TestShardRanges pins the chunking: full cover, in order, respecting
// the minimum chunk size.
func TestShardRanges(t *testing.T) {
	for _, tc := range []struct {
		trials, parts, minShard int
		want                    int // expected chunk count
	}{
		{90, 12, 8, 12},
		{90, 200, 8, 12}, // min shard caps the split: ceil(90/8)
		{90, 1, 8, 1},
		{5, 12, 8, 1}, // tiny campaign: one chunk
	} {
		got := shardRanges(tc.trials, tc.parts, tc.minShard)
		if len(got) != tc.want {
			t.Errorf("shardRanges(%d,%d,%d) = %d chunks %v, want %d",
				tc.trials, tc.parts, tc.minShard, len(got), got, tc.want)
		}
		next := 0
		for _, r := range got {
			if r[0] != next || r[1] <= r[0] {
				t.Fatalf("shardRanges(%d,%d,%d) = %v: not a contiguous cover",
					tc.trials, tc.parts, tc.minShard, got)
			}
			next = r[1]
		}
		if next != tc.trials {
			t.Fatalf("shardRanges(%d,%d,%d) = %v: covers %d trials",
				tc.trials, tc.parts, tc.minShard, got, next)
		}
	}
}

// TestDistributeNoWorkers: an empty pool declines (handled=false) so the
// scheduler falls back to plain local execution.
func TestDistributeNoWorkers(t *testing.T) {
	c, golden := testCampaign(t)
	sum, handled, err := NewPool(PoolConfig{}).Distribute(context.Background(), c, golden)
	if handled || err != nil || sum != nil {
		t.Fatalf("empty pool returned (%v, %v, %v), want (nil, false, nil)", sum, handled, err)
	}
}

// TestDistributedBitIdentical is the acceptance core: the same campaign
// run locally, on a 1-worker pool, and on a 3-worker pool produces
// byte-identical SummaryRecords.
func TestDistributedBitIdentical(t *testing.T) {
	c, golden := testCampaign(t)
	identity := c.Normalized().Identity()
	local, err := faultsim.RunAgainst(c, golden)
	if err != nil {
		t.Fatal(err)
	}
	want := recordJSON(t, local, identity)

	for _, n := range []int{1, 3} {
		cl := startCluster(t, n, PoolConfig{
			HeartbeatTimeout: time.Second,
			ShardsPerWorker:  3,
			MinShard:         4,
		})
		sum, handled, err := cl.pool.Distribute(context.Background(), c, golden)
		if err != nil || !handled {
			t.Fatalf("%d workers: Distribute = (%v, %v)", n, handled, err)
		}
		if got := recordJSON(t, sum, identity); got != want {
			t.Errorf("%d workers diverged from local run:\n got %s\nwant %s", n, got, want)
		}
		st := cl.pool.Stats()
		if st.ShardsCompleted == 0 {
			t.Errorf("%d workers: no shards completed remotely (stats %+v)", n, st)
		}
	}
}

// TestDistributedReshardOnLoss: a worker that is dead on arrival (its
// listener is closed right after registration) forces every chunk sent
// to it to requeue onto the survivors — and the merged record is still
// byte-identical to the local run.  A second phase cancels a live
// worker mid-campaign for the graceful-loss path.
func TestDistributedReshardOnLoss(t *testing.T) {
	c, golden := testCampaign(t)
	identity := c.Normalized().Identity()
	local, err := faultsim.RunAgainst(c, golden)
	if err != nil {
		t.Fatal(err)
	}
	want := recordJSON(t, local, identity)

	cl := startCluster(t, 2, PoolConfig{
		HeartbeatTimeout: 30 * time.Second, // keep the corpse "alive": dispatches must hit it
		ShardsPerWorker:  3,
		MinShard:         4,
	})
	// A phantom worker: registered, heartbeat-fresh, but its socket is
	// already closed — every dispatch to it fails at connect time.
	corpse := httptest.NewServer(nil)
	corpseURL := corpse.URL
	corpse.Close()
	cl.pool.Register("corpse", corpseURL)

	sum, handled, err := cl.pool.Distribute(context.Background(), c, golden)
	if err != nil || !handled {
		t.Fatalf("Distribute = (%v, %v)", handled, err)
	}
	if got := recordJSON(t, sum, identity); got != want {
		t.Errorf("re-sharded run diverged from local:\n got %s\nwant %s", got, want)
	}
	st := cl.pool.Stats()
	if st.ShardsRequeued == 0 {
		t.Errorf("no shards were requeued despite a dead worker (stats %+v)", st)
	}
}

// TestDistributedAllWorkersDie: when every worker dies mid-campaign the
// coordinator finishes the remaining ranges locally, still bit-identical.
func TestDistributedAllWorkersDie(t *testing.T) {
	c, golden := testCampaign(t)
	identity := c.Normalized().Identity()
	local, err := faultsim.RunAgainst(c, golden)
	if err != nil {
		t.Fatal(err)
	}
	want := recordJSON(t, local, identity)

	pool := NewPool(PoolConfig{
		HeartbeatTimeout: 30 * time.Second,
		ShardsPerWorker:  4,
		MinShard:         4,
	})
	// Two phantoms: alive by heartbeat, dead on the wire.  Every chunk
	// requeues until the dispatchers give up, then the local tail runs
	// the whole campaign.
	for _, name := range []string{"ghost1", "ghost2"} {
		srv := httptest.NewServer(nil)
		url := srv.URL
		srv.Close()
		pool.Register(name, url)
	}
	sum, handled, err := pool.Distribute(context.Background(), c, golden)
	if err != nil || !handled {
		t.Fatalf("Distribute = (%v, %v)", handled, err)
	}
	if got := recordJSON(t, sum, identity); got != want {
		t.Errorf("locally-completed run diverged:\n got %s\nwant %s", got, want)
	}
	st := pool.Stats()
	if st.ShardsLocal == 0 {
		t.Errorf("expected local completion shards (stats %+v)", st)
	}
	if st.ShardsCompleted != 0 {
		t.Errorf("phantom workers completed %d shards", st.ShardsCompleted)
	}
}

// TestWorkerKilledMidCampaign cancels one of three workers while the
// campaign is in flight; survivors absorb its chunks and the result is
// still byte-identical.
func TestWorkerKilledMidCampaign(t *testing.T) {
	c, golden := testCampaign(t)
	identity := c.Normalized().Identity()
	local, err := faultsim.RunAgainst(c, golden)
	if err != nil {
		t.Fatal(err)
	}
	want := recordJSON(t, local, identity)

	cl := startCluster(t, 3, PoolConfig{
		HeartbeatTimeout: 500 * time.Millisecond,
		ShardsPerWorker:  4,
		MinShard:         2,
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Kill worker 0 as soon as the campaign has visibly started.
		deadline := time.Now().Add(10 * time.Second)
		for cl.pool.Stats().ShardsDispatched == 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		cl.cancels[0]()
	}()
	sum, handled, err := cl.pool.Distribute(context.Background(), c, golden)
	<-done
	if err != nil || !handled {
		t.Fatalf("Distribute = (%v, %v)", handled, err)
	}
	if got := recordJSON(t, sum, identity); got != want {
		t.Errorf("post-kill run diverged from local:\n got %s\nwant %s", got, want)
	}
}

// TestHeartbeatExpiry: a worker that stops heartbeating drops out of the
// alive set but stays visible (alive=false) in the registry view.
func TestHeartbeatExpiry(t *testing.T) {
	pool := NewPool(PoolConfig{HeartbeatTimeout: 50 * time.Millisecond})
	id := pool.Register("w", "http://127.0.0.1:1")
	if !pool.Heartbeat(id, nil) {
		t.Fatal("heartbeat for a registered worker rejected")
	}
	if got := pool.Stats().WorkersAlive; got != 1 {
		t.Fatalf("workers alive = %d, want 1", got)
	}
	time.Sleep(120 * time.Millisecond)
	if got := pool.Stats().WorkersAlive; got != 0 {
		t.Fatalf("workers alive after expiry = %d, want 0", got)
	}
	ws := pool.Workers()
	if len(ws) != 1 || ws[0].Alive {
		t.Fatalf("registry view = %+v, want one dead worker", ws)
	}
	if pool.Heartbeat("nope", nil) {
		t.Fatal("heartbeat for an unknown id accepted")
	}
	// Re-registration at the same URL replaces the stale entry.
	pool.Register("w", "http://127.0.0.1:1")
	if ws := pool.Workers(); len(ws) != 1 || !ws[0].Alive {
		t.Fatalf("after re-register, registry view = %+v, want one live worker", ws)
	}
}
