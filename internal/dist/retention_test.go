package dist

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"
)

// TestWorkerRetirement: a worker that stays silent past RetireAfter is
// removed from the roster entirely — not just marked dead — so its
// labeled metric series stop being exported.
func TestWorkerRetirement(t *testing.T) {
	pool := NewPool(PoolConfig{
		HeartbeatTimeout: 20 * time.Millisecond,
		RetireAfter:      80 * time.Millisecond,
	})
	id := pool.Register("w", "http://127.0.0.1:1")
	if !pool.Heartbeat(id, nil) {
		t.Fatal("heartbeat for a registered worker rejected")
	}

	// Dead but not yet retired: still visible for the operator to see.
	time.Sleep(40 * time.Millisecond)
	if ws := pool.Workers(); len(ws) != 1 || ws[0].Alive {
		t.Fatalf("registry view before retirement = %+v, want one dead worker", ws)
	}

	// Past RetireAfter: gone from the roster and the counters.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if len(pool.Workers()) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker still in roster after RetireAfter: %+v", pool.Workers())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st := pool.Stats(); st.WorkersKnown != 0 || st.WorkersAlive != 0 {
		t.Fatalf("stats after retirement = %+v, want empty roster", st)
	}

	// A retired id cannot heartbeat back in; re-registration can.
	if pool.Heartbeat(id, nil) {
		t.Fatal("heartbeat for a retired worker accepted")
	}
	pool.Register("w", "http://127.0.0.1:1")
	if ws := pool.Workers(); len(ws) != 1 || !ws[0].Alive {
		t.Fatalf("after re-register, registry view = %+v, want one live worker", ws)
	}
}

// TestRetireAfterDefault: leaving RetireAfter unset derives it from the
// heartbeat timeout, so short-lived blips never evict a worker.
func TestRetireAfterDefault(t *testing.T) {
	pool := NewPool(PoolConfig{HeartbeatTimeout: 50 * time.Millisecond})
	pool.Register("w", "http://127.0.0.1:1")
	time.Sleep(120 * time.Millisecond) // well past the timeout, well short of 12x
	if ws := pool.Workers(); len(ws) != 1 || ws[0].Alive {
		t.Fatalf("dead-but-recent worker = %+v, want still rostered", ws)
	}
}

// TestWorkerSeriesEndpoint: a worker retains its own sampled series
// (piggybacked on the heartbeat ticker) and serves them at /v1/series.
func TestWorkerSeriesEndpoint(t *testing.T) {
	cl := startCluster(t, 1, PoolConfig{HeartbeatTimeout: time.Second})

	url := cl.pool.Workers()[0].URL
	// The sampler ticks with the 25ms heartbeat; wait until the gauge
	// series has points.
	deadline := time.Now().Add(5 * time.Second)
	var series struct {
		Name   string `json:"name"`
		Points []struct {
			T int64   `json:"t"`
			V float64 `json:"v"`
		} `json:"points"`
	}
	for {
		resp, err := http.Get(url + "/v1/series?name=shards_inflight")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/series = %s", resp.Status)
		}
		err = json.NewDecoder(resp.Body).Decode(&series)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(series.Points) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker series never accumulated points")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if series.Name != "shards_inflight" {
		t.Fatalf("series name = %q", series.Name)
	}

	// The bare endpoint is the index: names plus retention windows.
	resp, err := http.Get(url + "/v1/series")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var index struct {
		Series  []string `json:"series"`
		Windows []struct {
			Step int64 `json:"step_ns"`
			Cap  int   `json:"cap"`
		} `json:"windows"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&index); err != nil {
		t.Fatal(err)
	}
	if len(index.Windows) == 0 {
		t.Fatalf("series index has no windows: %+v", index)
	}
	found := false
	for _, n := range index.Series {
		if n == "shards_inflight" {
			found = true
		}
	}
	if !found {
		t.Fatalf("series index %v missing shards_inflight", index.Series)
	}
}
