package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCosineIdentical(t *testing.T) {
	v := []float64{0.77, 0.01, 0.0, 0.22}
	c, err := Cosine(v, v)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-1) > 1e-12 {
		t.Fatalf("cosine of identical vectors = %g, want 1", c)
	}
}

func TestCosineOrthogonal(t *testing.T) {
	c, err := Cosine([]float64{1, 0}, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if c != 0 {
		t.Fatalf("cosine of orthogonal vectors = %g, want 0", c)
	}
}

func TestCosineScaleInvariance(t *testing.T) {
	a := []float64{0.2, 0.3, 0.5}
	b := []float64{2, 3, 5}
	c, err := Cosine(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-1) > 1e-12 {
		t.Fatalf("cosine of scaled vectors = %g, want 1", c)
	}
}

func TestCosineZeroVectors(t *testing.T) {
	if c, _ := Cosine([]float64{0, 0}, []float64{0, 0}); c != 1 {
		t.Fatalf("cosine(0,0) = %g, want 1", c)
	}
	if c, _ := Cosine([]float64{0, 0}, []float64{1, 0}); c != 0 {
		t.Fatalf("cosine(0,v) = %g, want 0", c)
	}
}

func TestCosineDimensionErrors(t *testing.T) {
	if _, err := Cosine(nil, nil); err == nil {
		t.Fatal("empty vectors accepted")
	}
	if _, err := Cosine([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
}

// Property: cosine of non-negative vectors lies in [0, 1] (the bound the
// paper states for its histogram vectors).
func TestCosineBoundsNonNegative(t *testing.T) {
	f := func(raw [6]uint8, raw2 [6]uint8) bool {
		a := make([]float64, 6)
		b := make([]float64, 6)
		for i := range a {
			a[i] = float64(raw[i])
			b[i] = float64(raw2[i])
		}
		c, err := Cosine(a, b)
		if err != nil {
			return false
		}
		return c >= -1e-12 && c <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCosineSymmetry(t *testing.T) {
	f := func(raw, raw2 [5]int8) bool {
		a := make([]float64, 5)
		b := make([]float64, 5)
		for i := range a {
			a[i] = float64(raw[i])
			b[i] = float64(raw2[i])
		}
		c1, err1 := Cosine(a, b)
		c2, err2 := Cosine(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(c1-c2) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRMSEKnown(t *testing.T) {
	// Paper Eq. 9 with two benchmarks: errors 0.3 and 0.4 -> sqrt(0.125).
	got, err := RMSE([]float64{0.5, 0.9}, []float64{0.2, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt((0.09 + 0.16) / 2)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("RMSE = %g, want %g", got, want)
	}
}

func TestRMSEZeroForExact(t *testing.T) {
	v := []float64{0.1, 0.2, 0.3}
	got, err := RMSE(v, v)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("RMSE of identical vectors = %g", got)
	}
}

func TestRMSEBounds(t *testing.T) {
	// Property: MeanAbs <= RMSE <= MaxAbs.
	f := func(raw, raw2 [4]uint8) bool {
		a := make([]float64, 4)
		b := make([]float64, 4)
		for i := range a {
			a[i] = float64(raw[i]) / 255
			b[i] = float64(raw2[i]) / 255
		}
		r, _ := RMSE(a, b)
		m, _ := MeanAbs(a, b)
		x, _ := MaxAbs(a, b)
		return m <= r+1e-12 && r <= x+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanAbsMaxAbs(t *testing.T) {
	a := []float64{0.0, 0.5, 1.0}
	b := []float64{0.1, 0.2, 1.0}
	m, err := MeanAbs(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m-(0.1+0.3+0)/3) > 1e-12 {
		t.Fatalf("MeanAbs = %g", m)
	}
	x, err := MaxAbs(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-0.3) > 1e-12 {
		t.Fatalf("MaxAbs = %g", x)
	}
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if m := Mean(xs); m != 2.5 {
		t.Fatalf("Mean = %g", m)
	}
	if v := Variance(xs); math.Abs(v-1.25) > 1e-12 {
		t.Fatalf("Variance = %g", v)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 || Variance([]float64{5}) != 0 {
		t.Fatal("degenerate inputs not zero")
	}
}
