package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounterRates(t *testing.T) {
	var c Counter
	for i := 0; i < 20; i++ {
		c.AddSuccess()
	}
	for i := 0; i < 70; i++ {
		c.AddSDC()
	}
	for i := 0; i < 10; i++ {
		c.AddFailure()
	}
	r := c.Rates()
	if r.Success != 0.2 || r.SDC != 0.7 || r.Failure != 0.1 || r.N != 100 {
		t.Fatalf("rates = %+v", r)
	}
}

func TestCounterMerge(t *testing.T) {
	var a, b Counter
	a.AddSuccess()
	a.AddSDC()
	b.AddFailure()
	b.AddFailure()
	a.Merge(b)
	if a.Total() != 4 || a.Failure != 2 {
		t.Fatalf("merged = %+v", a)
	}
}

func TestEmptyCounterRates(t *testing.T) {
	var c Counter
	r := c.Rates()
	if r.Success != 0 || r.SDC != 0 || r.Failure != 0 || r.N != 0 {
		t.Fatalf("empty rates = %+v", r)
	}
}

// Property: rates always sum to 1 for any non-empty counter.
func TestRatesSumToOne(t *testing.T) {
	f := func(s, d, fl uint8) bool {
		c := Counter{Success: uint64(s), SDC: uint64(d), Failure: uint64(fl)}
		if c.Total() == 0 {
			return true
		}
		r := c.Rates()
		return math.Abs(r.Success+r.SDC+r.Failure-1) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRatesScalePlus(t *testing.T) {
	a := Rates{Success: 0.5, SDC: 0.3, Failure: 0.2}
	b := Rates{Success: 0.1, SDC: 0.1, Failure: 0.8}
	mix := a.Scale(0.75).Plus(b.Scale(0.25))
	if math.Abs(mix.Success-0.4) > 1e-12 || math.Abs(mix.Failure-0.35) > 1e-12 {
		t.Fatalf("mix = %+v", mix)
	}
	if math.Abs(mix.Success+mix.SDC+mix.Failure-1) > 1e-12 {
		t.Fatal("convex combination does not sum to 1")
	}
}

func TestRatesString(t *testing.T) {
	r := Rates{Success: 0.2, SDC: 0.7, Failure: 0.1, N: 100}
	s := r.String()
	if !strings.Contains(s, "success=20.0%") || !strings.Contains(s, "n=100") {
		t.Fatalf("String() = %q", s)
	}
}
