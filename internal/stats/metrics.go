package stats

import (
	"errors"
	"math"
)

// ErrDimension is returned when two vectors passed to a metric differ in
// length or are empty.
var ErrDimension = errors.New("stats: vectors must be non-empty and of equal length")

// Cosine returns the cosine similarity of a and b, the metric the paper
// uses (Table 2) to quantify how well a small-scale error-propagation
// histogram matches the grouped large-scale one.  For the non-negative
// histogram vectors used in the paper the value lies in [0, 1], with 1
// meaning identical direction.
//
// If either vector has zero magnitude the similarity is defined as 0
// (no correlation), except that two zero vectors compare as 1.
func Cosine(a, b []float64) (float64, error) {
	if len(a) == 0 || len(a) != len(b) {
		return 0, ErrDimension
	}
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	switch {
	case na == 0 && nb == 0:
		return 1, nil
	case na == 0 || nb == 0:
		return 0, nil
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb)), nil
}

// RMSE returns the root mean square error between measured and predicted
// values (paper Eq. 9).  The two slices pair element-wise, one element per
// benchmark.
func RMSE(measured, predicted []float64) (float64, error) {
	if len(measured) == 0 || len(measured) != len(predicted) {
		return 0, ErrDimension
	}
	var sum float64
	for i := range measured {
		d := measured[i] - predicted[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(measured))), nil
}

// MeanAbs returns the mean of |a[i]-b[i]| — the "average prediction error"
// the paper's abstract reports.
func MeanAbs(a, b []float64) (float64, error) {
	if len(a) == 0 || len(a) != len(b) {
		return 0, ErrDimension
	}
	var sum float64
	for i := range a {
		sum += math.Abs(a[i] - b[i])
	}
	return sum / float64(len(a)), nil
}

// MaxAbs returns the maximum of |a[i]-b[i]| — the "at most" prediction
// error the paper reports alongside the average.
func MaxAbs(a, b []float64) (float64, error) {
	if len(a) == 0 || len(a) != len(b) {
		return 0, ErrDimension
	}
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m, nil
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than two
// samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}
