package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHistAddAndProbabilities(t *testing.T) {
	h := NewHist(8)
	for i := 0; i < 77; i++ {
		h.Add(1)
	}
	for i := 0; i < 22; i++ {
		h.Add(8)
	}
	h.Add(3)
	probs := h.Probabilities()
	if math.Abs(probs[0]-0.77) > 1e-12 || math.Abs(probs[7]-0.22) > 1e-12 {
		t.Fatalf("probabilities wrong: %v", probs)
	}
	if h.Total() != 100 {
		t.Fatalf("total = %d", h.Total())
	}
}

func TestHistClamping(t *testing.T) {
	h := NewHist(4)
	h.Add(0)  // clamps to 1
	h.Add(-3) // clamps to 1
	h.Add(9)  // clamps to 4
	if h.Counts[0] != 2 || h.Counts[3] != 1 {
		t.Fatalf("clamping failed: %v", h.Counts)
	}
}

func TestHistGroupExample(t *testing.T) {
	// The paper's Figure 1b->1c transformation: 64 cases into 8 groups.
	h := NewHist(64)
	for i := 0; i < 70; i++ {
		h.Add(1)
	}
	for i := 0; i < 25; i++ {
		h.Add(64)
	}
	for i := 0; i < 5; i++ {
		h.Add(33) // lands in group 5 (bins 33..40)
	}
	g, err := h.Group(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(g) != 8 {
		t.Fatalf("group count = %d", len(g))
	}
	if math.Abs(g[0]-0.70) > 1e-12 || math.Abs(g[7]-0.25) > 1e-12 || math.Abs(g[4]-0.05) > 1e-12 {
		t.Fatalf("grouped = %v", g)
	}
}

func TestHistGroupErrors(t *testing.T) {
	h := NewHist(10)
	if _, err := h.Group(3); err == nil {
		t.Fatal("10 bins into 3 groups accepted")
	}
	if _, err := h.Group(0); err == nil {
		t.Fatal("0 groups accepted")
	}
}

// Property: grouping conserves total probability mass.
func TestHistGroupConservesMass(t *testing.T) {
	f := func(seed uint64, trialsRaw uint16) bool {
		r := NewRNG(seed)
		h := NewHist(64)
		trials := int(trialsRaw%1000) + 1
		for i := 0; i < trials; i++ {
			h.Add(r.Intn(64) + 1)
		}
		for _, g := range []int{1, 2, 4, 8, 16, 32, 64} {
			gr, err := h.Group(g)
			if err != nil {
				return false
			}
			var sum float64
			for _, v := range gr {
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: grouping into p groups is the identity on probabilities.
func TestHistGroupIdentity(t *testing.T) {
	r := NewRNG(1)
	h := NewHist(16)
	for i := 0; i < 500; i++ {
		h.Add(r.Intn(16) + 1)
	}
	g, err := h.Group(16)
	if err != nil {
		t.Fatal(err)
	}
	probs := h.Probabilities()
	for i := range g {
		if math.Abs(g[i]-probs[i]) > 1e-12 {
			t.Fatalf("identity grouping differs at %d", i)
		}
	}
}

func TestNewHistPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHist(0) did not panic")
		}
	}()
	NewHist(0)
}
