package stats

import "math"

// WilsonInterval returns the Wilson score interval for a binomial
// proportion: successes/n observed, at approximately the given z quantile
// (z = 1.96 for 95% confidence).  The paper's protocol keeps injecting
// until the fault injection result stabilizes; the interval makes that
// precision explicit for any trial count.
func WilsonInterval(successes, n uint64, z float64) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	nf := float64(n)
	p := float64(successes) / nf
	z2 := z * z
	denom := 1 + z2/nf
	center := (p + z2/(2*nf)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/nf+z2/(4*nf*nf))
	lo = center - half
	hi = center + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// Interval is a confidence interval over a rate.
type Interval struct {
	Lo float64
	Hi float64
}

// Width returns the interval width — the convergence measure the paper's
// "inject until stable" protocol makes implicit.
func (i Interval) Width() float64 { return i.Hi - i.Lo }

// RateIntervals bundles the Wilson 95% intervals of all three outcome
// rates — the convergence report attached to campaign summaries and
// streamed in live-progress snapshots.
type RateIntervals struct {
	Success Interval
	SDC     Interval
	Failure Interval
}

// interval95 returns the 95% Wilson interval of one outcome rate,
// recovering the raw tally from the normalized rate and N.
func (r Rates) interval95(rate float64) Interval {
	lo, hi := WilsonInterval(uint64(rate*float64(r.N)+0.5), r.N, 1.96)
	return Interval{Lo: lo, Hi: hi}
}

// SuccessInterval returns the 95% Wilson interval of a Rates value's
// success rate.
func (r Rates) SuccessInterval() (lo, hi float64) {
	i := r.interval95(r.Success)
	return i.Lo, i.Hi
}

// SDCInterval returns the 95% Wilson interval of the SDC rate.
func (r Rates) SDCInterval() (lo, hi float64) {
	i := r.interval95(r.SDC)
	return i.Lo, i.Hi
}

// FailureInterval returns the 95% Wilson interval of the failure rate.
func (r Rates) FailureInterval() (lo, hi float64) {
	i := r.interval95(r.Failure)
	return i.Lo, i.Hi
}

// Intervals95 returns the Wilson 95% intervals of all three outcome
// rates at once.
func (r Rates) Intervals95() RateIntervals {
	return RateIntervals{
		Success: r.interval95(r.Success),
		SDC:     r.interval95(r.SDC),
		Failure: r.interval95(r.Failure),
	}
}

// StableAfter reports the paper's stability criterion: whether the running
// success rate over the outcome sequence changes by less than tol after
// the first warmup trials.  outcomes[i] is true for success.
func StableAfter(outcomes []bool, warmup int, tol float64) bool {
	if len(outcomes) <= warmup || warmup <= 0 {
		return false
	}
	succ := 0
	for i := 0; i < warmup; i++ {
		if outcomes[i] {
			succ++
		}
	}
	ref := float64(succ) / float64(warmup)
	for i := warmup; i < len(outcomes); i++ {
		if outcomes[i] {
			succ++
		}
		run := float64(succ) / float64(i+1)
		if math.Abs(run-ref) > tol {
			return false
		}
	}
	return true
}
