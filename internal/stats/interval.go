package stats

import "math"

// WilsonInterval returns the Wilson score interval for a binomial
// proportion: successes/n observed, at approximately the given z quantile
// (z = 1.96 for 95% confidence).  The paper's protocol keeps injecting
// until the fault injection result stabilizes; the interval makes that
// precision explicit for any trial count.
func WilsonInterval(successes, n uint64, z float64) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	nf := float64(n)
	p := float64(successes) / nf
	z2 := z * z
	denom := 1 + z2/nf
	center := (p + z2/(2*nf)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/nf+z2/(4*nf*nf))
	lo = center - half
	hi = center + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// SuccessInterval returns the 95% Wilson interval of a Rates value's
// success rate.
func (r Rates) SuccessInterval() (lo, hi float64) {
	return WilsonInterval(uint64(r.Success*float64(r.N)+0.5), r.N, 1.96)
}

// StableAfter reports the paper's stability criterion: whether the running
// success rate over the outcome sequence changes by less than tol after
// the first warmup trials.  outcomes[i] is true for success.
func StableAfter(outcomes []bool, warmup int, tol float64) bool {
	if len(outcomes) <= warmup || warmup <= 0 {
		return false
	}
	succ := 0
	for i := 0; i < warmup; i++ {
		if outcomes[i] {
			succ++
		}
	}
	ref := float64(succ) / float64(warmup)
	for i := warmup; i < len(outcomes); i++ {
		if outcomes[i] {
			succ++
		}
		run := float64(succ) / float64(i+1)
		if math.Abs(run-ref) > tol {
			return false
		}
	}
	return true
}
