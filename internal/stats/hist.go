package stats

import (
	"errors"
	"fmt"
)

// Hist is a histogram over "number of contaminated MPI processes": bin x
// (1-based) counts the fault injection tests in which exactly x ranks were
// contaminated.  It is the data structure behind the paper's Figures 1–2
// and the r_x probabilities of the model (Eq. 3).
type Hist struct {
	// Counts[x-1] is the number of trials with x contaminated ranks.
	Counts []uint64
}

// NewHist returns an empty histogram for executions with p ranks.
func NewHist(p int) *Hist {
	if p <= 0 {
		panic("stats: NewHist requires p > 0")
	}
	return &Hist{Counts: make([]uint64, p)}
}

// Add records one trial with x contaminated ranks.  Trials with zero
// contaminated ranks (fully masked errors that also left the injected rank's
// final state intact) are recorded in bin 1, matching the paper's profiling
// which attributes every test to at least the injected rank.
func (h *Hist) Add(x int) {
	if x < 1 {
		x = 1
	}
	if x > len(h.Counts) {
		x = len(h.Counts)
	}
	h.Counts[x-1]++
}

// P returns the number of ranks the histogram covers.
func (h *Hist) P() int { return len(h.Counts) }

// Total returns the number of recorded trials.
func (h *Hist) Total() uint64 {
	var t uint64
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Probabilities returns r_x for x = 1..p as a vector of length p
// (paper Eq. 3): the fraction of trials with exactly x contaminated ranks.
// For an empty histogram it returns all zeros.
func (h *Hist) Probabilities() []float64 {
	p := make([]float64, len(h.Counts))
	t := h.Total()
	if t == 0 {
		return p
	}
	for i, c := range h.Counts {
		p[i] = float64(c) / float64(t)
	}
	return p
}

// ErrGroup is returned by Group when the histogram length is not divisible
// by the requested number of groups.
var ErrGroup = errors.New("stats: histogram length not divisible by group count")

// Group aggregates the histogram's p bins into g equal consecutive groups
// and returns the g aggregated probabilities.  This is the transformation
// of paper Figures 1c/2c: 64 propagation cases split into 8 groups so they
// can be compared against an 8-rank histogram.
func (h *Hist) Group(g int) ([]float64, error) {
	p := len(h.Counts)
	if g <= 0 || p%g != 0 {
		return nil, fmt.Errorf("%w: p=%d groups=%d", ErrGroup, p, g)
	}
	probs := h.Probabilities()
	width := p / g
	out := make([]float64, g)
	for i := 0; i < g; i++ {
		for j := 0; j < width; j++ {
			out[i] += probs[i*width+j]
		}
	}
	return out, nil
}
