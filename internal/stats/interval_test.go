package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWilsonIntervalKnown(t *testing.T) {
	// 50/100 at z=1.96: the Wilson interval is approximately [0.404, 0.596].
	lo, hi := WilsonInterval(50, 100, 1.96)
	if math.Abs(lo-0.404) > 0.005 || math.Abs(hi-0.596) > 0.005 {
		t.Fatalf("interval = [%g, %g]", lo, hi)
	}
}

func TestWilsonIntervalEdges(t *testing.T) {
	lo, hi := WilsonInterval(0, 0, 1.96)
	if lo != 0 || hi != 1 {
		t.Fatalf("empty interval = [%g, %g]", lo, hi)
	}
	lo, hi = WilsonInterval(0, 50, 1.96)
	if lo != 0 || hi <= 0 || hi > 0.15 {
		t.Fatalf("all-failure interval = [%g, %g]", lo, hi)
	}
	lo, hi = WilsonInterval(50, 50, 1.96)
	if hi != 1 || lo < 0.85 {
		t.Fatalf("all-success interval = [%g, %g]", lo, hi)
	}
}

// Properties: the interval is ordered, bounded, contains the point
// estimate, and narrows as n grows.
func TestWilsonIntervalProperties(t *testing.T) {
	f := func(sRaw, nRaw uint16) bool {
		n := uint64(nRaw%2000) + 1
		s := uint64(sRaw) % (n + 1)
		lo, hi := WilsonInterval(s, n, 1.96)
		p := float64(s) / float64(n)
		if !(0 <= lo && lo <= hi && hi <= 1) {
			return false
		}
		if p < lo-1e-12 || p > hi+1e-12 {
			return false
		}
		lo2, hi2 := WilsonInterval(s*10, n*10, 1.96)
		return hi2-lo2 <= hi-lo+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSuccessInterval(t *testing.T) {
	r := Rates{Success: 0.5, SDC: 0.5, N: 100}
	lo, hi := r.SuccessInterval()
	if lo >= 0.5 || hi <= 0.5 {
		t.Fatalf("interval [%g, %g] does not contain the estimate", lo, hi)
	}
}

func TestIntervals95AllOutcomes(t *testing.T) {
	c := Counter{Success: 60, SDC: 30, Failure: 10}
	r := c.Rates()
	iv := r.Intervals95()
	for _, tc := range []struct {
		name string
		rate float64
		iv   Interval
	}{
		{"success", r.Success, iv.Success},
		{"sdc", r.SDC, iv.SDC},
		{"failure", r.Failure, iv.Failure},
	} {
		if !(0 <= tc.iv.Lo && tc.iv.Lo < tc.rate && tc.rate < tc.iv.Hi && tc.iv.Hi <= 1) {
			t.Errorf("%s: interval [%g, %g] does not bracket rate %g",
				tc.name, tc.iv.Lo, tc.iv.Hi, tc.rate)
		}
		if w := tc.iv.Width(); math.Abs(w-(tc.iv.Hi-tc.iv.Lo)) > 1e-15 {
			t.Errorf("%s: Width() = %g, want %g", tc.name, w, tc.iv.Hi-tc.iv.Lo)
		}
	}
	// The per-outcome accessors agree with the bundle.
	if lo, hi := r.SDCInterval(); lo != iv.SDC.Lo || hi != iv.SDC.Hi {
		t.Errorf("SDCInterval = [%g, %g], want [%g, %g]", lo, hi, iv.SDC.Lo, iv.SDC.Hi)
	}
	if lo, hi := r.FailureInterval(); lo != iv.Failure.Lo || hi != iv.Failure.Hi {
		t.Errorf("FailureInterval = [%g, %g], want [%g, %g]", lo, hi, iv.Failure.Lo, iv.Failure.Hi)
	}
	if lo, hi := r.SuccessInterval(); lo != iv.Success.Lo || hi != iv.Success.Hi {
		t.Errorf("SuccessInterval = [%g, %g], want [%g, %g]", lo, hi, iv.Success.Lo, iv.Success.Hi)
	}
}

func TestIntervals95MatchesWilsonOnRawTallies(t *testing.T) {
	// interval95 reconstructs the tally from the normalized rate; for
	// exact tallies the round-trip must land on the same Wilson bounds.
	c := Counter{Success: 123, SDC: 45, Failure: 232}
	iv := c.Rates().Intervals95()
	lo, hi := WilsonInterval(123, 400, 1.96)
	if math.Abs(iv.Success.Lo-lo) > 1e-12 || math.Abs(iv.Success.Hi-hi) > 1e-12 {
		t.Fatalf("success interval [%g, %g], want [%g, %g]", iv.Success.Lo, iv.Success.Hi, lo, hi)
	}
	lo, hi = WilsonInterval(232, 400, 1.96)
	if math.Abs(iv.Failure.Lo-lo) > 1e-12 || math.Abs(iv.Failure.Hi-hi) > 1e-12 {
		t.Fatalf("failure interval [%g, %g], want [%g, %g]", iv.Failure.Lo, iv.Failure.Hi, lo, hi)
	}
}

func TestStableAfter(t *testing.T) {
	// A constant success sequence is stable.
	stable := make([]bool, 2000)
	for i := range stable {
		stable[i] = i%2 == 0
	}
	if !StableAfter(stable, 1000, 0.05) {
		t.Fatal("alternating sequence reported unstable")
	}
	// A drifting sequence is not: all successes first, then all failures.
	drift := make([]bool, 2000)
	for i := 0; i < 1000; i++ {
		drift[i] = true
	}
	if StableAfter(drift, 1000, 0.05) {
		t.Fatal("drifting sequence reported stable")
	}
	// Degenerate inputs.
	if StableAfter(nil, 10, 0.1) || StableAfter(stable, 0, 0.1) {
		t.Fatal("degenerate inputs reported stable")
	}
}
