package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("sequence diverged at step %d: %d != %d", i, av, bv)
		}
	}
}

func TestRNGSeedSensitivity(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical outputs", same)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	base := NewRNG(7)
	s1 := base.Split(0)
	s2 := base.Split(1)
	if s1.Uint64() == s2.Uint64() {
		t.Fatal("split streams 0 and 1 start identically")
	}
	// Split must not advance the base generator.
	c1 := NewRNG(7)
	if base.Uint64() != c1.Uint64() {
		t.Fatal("Split advanced the base generator")
	}
}

func TestRNGSplitDeterminism(t *testing.T) {
	a := NewRNG(9).Split(5)
	b := NewRNG(9).Split(5)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same split stream is not deterministic")
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(3)
	for n := 1; n <= 17; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	// Chi-square-lite check: 10 buckets, 100k draws, each bucket within
	// 5% relative of expected.
	r := NewRNG(11)
	const buckets, draws = 10, 100000
	var counts [buckets]int
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(buckets)]++
	}
	exp := float64(draws) / buckets
	for i, c := range counts {
		if math.Abs(float64(c)-exp) > 0.05*exp {
			t.Fatalf("bucket %d count %d deviates >5%% from %g", i, c, exp)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(13)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %g too far from 0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(17)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	varc := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %g too far from 0", mean)
	}
	if math.Abs(varc-1) > 0.03 {
		t.Fatalf("normal variance %g too far from 1", varc)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(19)
	for n := 0; n <= 20; n++ {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSampleDistinctProperties(t *testing.T) {
	f := func(seed uint64, kRaw, nRaw uint16) bool {
		n := uint64(nRaw%500) + 1
		k := int(uint64(kRaw) % (n + 1))
		out := NewRNG(seed).SampleDistinct(k, n)
		if len(out) != k {
			return false
		}
		for i, v := range out {
			if v >= n {
				return false
			}
			if i > 0 && out[i-1] >= v { // strictly ascending => distinct
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleDistinctFull(t *testing.T) {
	// k == n must return every value exactly once.
	out := NewRNG(5).SampleDistinct(8, 8)
	for i, v := range out {
		if v != uint64(i) {
			t.Fatalf("full sample not a sorted permutation: %v", out)
		}
	}
}

func TestMul128AgainstBig(t *testing.T) {
	f := func(a, b uint64) bool {
		hi, lo := mul128(a, b)
		// Verify via 4x32 decomposition independently.
		wantLo := a * b
		// Karatsuba-free reference for the high word.
		aLo, aHi := a&0xffffffff, a>>32
		bLo, bHi := b&0xffffffff, b>>32
		carry := ((aLo*bLo)>>32 + (aHi*bLo)&0xffffffff + (aLo*bHi)&0xffffffff) >> 32
		wantHi := aHi*bHi + (aHi*bLo)>>32 + (aLo*bHi)>>32 + carry
		return lo == wantLo && hi == wantHi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
