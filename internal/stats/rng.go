// Package stats provides the statistical utilities used throughout resmod:
// deterministic pseudo-random number generation, similarity and error
// metrics, histograms of error-propagation cases, and rate summaries.
//
// Everything in this package is purely computational and allocation-light;
// it has no dependencies outside the standard library.
package stats

import "math"

// RNG is a small, fast, deterministic pseudo-random number generator built
// from splitmix64 (for seeding and stream splitting) and xoshiro256**
// (for bulk generation).  Campaigns derive one independent RNG per fault
// injection trial so that trials can run concurrently yet reproducibly.
//
// The zero value is NOT usable; construct with NewRNG.
type RNG struct {
	s [4]uint64
}

// splitmix64 advances *x and returns the next splitmix64 output.
// It is the standard seeding function recommended for xoshiro.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a generator whose entire sequence is determined by seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	// xoshiro256** must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Split returns a new generator that is statistically independent of r for
// the given stream index.  It does not advance r.
func (r *RNG) Split(stream uint64) *RNG {
	x := r.s[0] ^ (stream+1)*0xd1342543de82ef95
	return NewRNG(splitmix64(&x))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform value in [0, n).  It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform value in [0, n) using Lemire's multiply-shift
// rejection method.  It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("stats: Uint64n called with n == 0")
	}
	for {
		v := r.Uint64()
		hi, lo := mul128(v, n)
		if lo >= n || lo >= -n%n { // -n%n == (2^64 - n) % n
			return hi
		}
	}
}

// mul128 returns the 128-bit product of a and b as (hi, lo).
func mul128(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	lo = t & mask
	c := t >> 32
	t = aHi*bLo + c
	mid := t & mask
	hiPart := t >> 32
	t = aLo*bHi + mid
	lo |= (t & mask) << 32
	hi = aHi*bHi + hiPart + t>>32
	return hi, lo
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate using the polar
// Box–Muller method.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// SampleDistinct returns k distinct uniform values from [0, n), sorted
// ascending.  It panics if k > n or k < 0.
func (r *RNG) SampleDistinct(k int, n uint64) []uint64 {
	if k < 0 || uint64(k) > n {
		panic("stats: SampleDistinct: k out of range")
	}
	seen := make(map[uint64]struct{}, k)
	out := make([]uint64, 0, k)
	for len(out) < k {
		v := r.Uint64n(n)
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	// insertion sort: k is tiny (number of injected errors).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
