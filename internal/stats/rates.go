package stats

import "fmt"

// Rates is a fault injection result in the paper's sense: the fractions of
// fault injection tests whose outcome was Success, SDC, or Failure.
// The three fields sum to 1 for any non-empty sample.
type Rates struct {
	Success float64
	SDC     float64
	Failure float64
	// N is the number of trials the rates summarize.
	N uint64
}

// Counter accumulates trial outcomes and produces Rates.
// It is not safe for concurrent use; campaigns merge per-worker counters.
type Counter struct {
	Success uint64
	SDC     uint64
	Failure uint64
}

// AddSuccess, AddSDC and AddFailure record one trial each.
func (c *Counter) AddSuccess() { c.Success++ }

// AddSDC records one silent-data-corruption trial.
func (c *Counter) AddSDC() { c.SDC++ }

// AddFailure records one crash/hang trial.
func (c *Counter) AddFailure() { c.Failure++ }

// Merge adds other's counts into c.
func (c *Counter) Merge(other Counter) {
	c.Success += other.Success
	c.SDC += other.SDC
	c.Failure += other.Failure
}

// Total returns the number of recorded trials.
func (c *Counter) Total() uint64 { return c.Success + c.SDC + c.Failure }

// Rates converts the counter into normalized Rates.  For an empty counter
// all rates are zero.
func (c *Counter) Rates() Rates {
	t := c.Total()
	if t == 0 {
		return Rates{}
	}
	f := float64(t)
	return Rates{
		Success: float64(c.Success) / f,
		SDC:     float64(c.SDC) / f,
		Failure: float64(c.Failure) / f,
		N:       t,
	}
}

// String renders the rates in the percentage form the paper uses.
func (r Rates) String() string {
	return fmt.Sprintf("success=%.1f%% sdc=%.1f%% failure=%.1f%% (n=%d)",
		100*r.Success, 100*r.SDC, 100*r.Failure, r.N)
}

// Scale returns the rates multiplied by w (used for the weighted sums of
// Eqs. 1 and 4).
func (r Rates) Scale(w float64) Rates {
	return Rates{Success: r.Success * w, SDC: r.SDC * w, Failure: r.Failure * w, N: r.N}
}

// Plus returns the element-wise sum of two rate vectors.
func (r Rates) Plus(o Rates) Rates {
	return Rates{
		Success: r.Success + o.Success,
		SDC:     r.SDC + o.SDC,
		Failure: r.Failure + o.Failure,
		N:       r.N + o.N,
	}
}
