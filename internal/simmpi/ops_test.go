package simmpi

import "testing"

func TestOpStrings(t *testing.T) {
	cases := map[Op]string{
		OpSum: "sum", OpMax: "max", OpMin: "min", OpProd: "prod", Op(99): "Op(99)",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Fatalf("%d.String() = %q, want %q", int(op), got, want)
		}
	}
}

func TestOpProdApply(t *testing.T) {
	dst := []float64{2, 3}
	(OpProd).apply(dst, []float64{4, 5})
	if dst[0] != 8 || dst[1] != 15 {
		t.Fatalf("prod = %v", dst)
	}
}

func TestApplyLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched reduction lengths")
		}
	}()
	(OpSum).apply([]float64{1}, []float64{1, 2})
}

func TestUnknownOpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on unknown op")
		}
	}()
	Op(42).apply([]float64{1}, []float64{1})
}

func TestAllreduceProd(t *testing.T) {
	runOrFatal(t, 4, func(c *Comm) error {
		got := c.AllreduceValue(OpProd, float64(c.Rank()+1))
		if got != 24 {
			t.Errorf("prod allreduce = %g", got)
		}
		return nil
	})
}

func TestScatterIndivisiblePanicsToFailure(t *testing.T) {
	_, err := Run(Config{Procs: 2}, func(c *Comm) error {
		var data []float64
		if c.Rank() == 0 {
			data = []float64{1, 2, 3} // not divisible by 2
		}
		c.Scatter(0, data)
		return nil
	})
	if err == nil {
		t.Fatal("indivisible scatter succeeded")
	}
}

func TestRecvValueWrongShapePanics(t *testing.T) {
	_, err := Run(Config{Procs: 2}, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 1, []float64{1, 2})
		} else {
			c.RecvValue(0, 1)
		}
		return nil
	})
	if err == nil {
		t.Fatal("RecvValue accepted a 2-element message")
	}
}

func TestBadPeerPanicsToFailure(t *testing.T) {
	_, err := Run(Config{Procs: 2}, func(c *Comm) error {
		c.Send(5, 1, nil) // out of range
		return nil
	})
	if err == nil {
		t.Fatal("out-of-range peer accepted")
	}
}
