package simmpi

import "fmt"

// Collective tags live in a reserved space far above application tags so
// user point-to-point traffic can never be confused with collective
// traffic.  Each collective call site uses a distinct base tag; repeated
// collectives of the same kind are disambiguated by the per-source FIFO
// ordering that the transport guarantees.
const (
	tagBarrier = 1 << 20
	tagBcast   = 2 << 20
	tagReduce  = 3 << 20
	tagGather  = 4 << 20
	tagScatter = 5 << 20
	tagA2A     = 6 << 20
	tagAllgat  = 7 << 20
)

// Barrier blocks until every rank has entered it (dissemination algorithm,
// ceil(log2 p) rounds).
func (c *Comm) Barrier() {
	for k, round := 1, 0; k < c.size; k, round = k<<1, round+1 {
		dst := (c.rank + k) % c.size
		src := (c.rank - k + c.size) % c.size
		c.Send(dst, tagBarrier+round, nil)
		c.Recv(src, tagBarrier+round)
	}
}

// Bcast distributes root's data to every rank along a binomial tree and
// returns each rank's copy.  Non-root callers pass their (ignored) local
// slice or nil; the broadcast payload is returned.
func (c *Comm) Bcast(root int, data []float64) []float64 {
	c.checkPeer(root, "Bcast")
	if c.size == 1 {
		cp := make([]float64, len(data))
		copy(cp, data)
		return cp
	}
	// Work in the rotated space where root is virtual rank 0.
	vrank := (c.rank - root + c.size) % c.size
	var buf []float64
	if vrank == 0 {
		buf = make([]float64, len(data))
		copy(buf, data)
	} else {
		// Parent: clear the lowest set bit of vrank.
		parent := (vrank&(vrank-1) + root) % c.size
		buf = c.Recv(parent, tagBcast)
	}
	for _, child := range bcastChildren(vrank, c.size) {
		c.Send((child+root)%c.size, tagBcast, buf)
	}
	return buf
}

// bcastChildren enumerates the binomial-tree children of a virtual rank:
// vrank | 1<<k for every k below the position of vrank's lowest set bit
// (all k for the root).  The enumeration order fixes the deterministic
// reduction order used by Reduce.
func bcastChildren(vrank, size int) []int {
	var kids []int
	limit := 0
	if vrank != 0 {
		for vrank&(1<<limit) == 0 {
			limit++
		}
	} else {
		limit = 31
	}
	for k := 0; k < limit; k++ {
		child := vrank | (1 << k)
		if child != vrank && child < size {
			kids = append(kids, child)
		}
	}
	return kids
}

// Reduce folds every rank's data element-wise with op into root and returns
// the result on root (nil elsewhere).  The fold order is fixed by the
// binomial tree, so results are bit-for-bit deterministic for a given size.
func (c *Comm) Reduce(root int, op Op, data []float64) []float64 {
	c.checkPeer(root, "Reduce")
	acc := make([]float64, len(data))
	copy(acc, data)
	if c.size == 1 {
		return acc
	}
	vrank := (c.rank - root + c.size) % c.size
	// Receive from children in ascending bit order, fold, then send to parent.
	for _, child := range bcastChildren(vrank, c.size) {
		msg := c.Recv((child+root)%c.size, tagReduce)
		op.apply(acc, msg)
	}
	if vrank != 0 {
		parent := (vrank&(vrank-1) + root) % c.size
		c.Send(parent, tagReduce, acc)
		return nil
	}
	return acc
}

// Allreduce is Reduce to rank 0 followed by Bcast, guaranteeing that every
// rank observes the identical (bit-for-bit) reduced vector.
func (c *Comm) Allreduce(op Op, data []float64) []float64 {
	red := c.Reduce(0, op, data)
	return c.Bcast(0, red)
}

// AllreduceValue reduces a single scalar.
func (c *Comm) AllreduceValue(op Op, v float64) float64 {
	return c.Allreduce(op, []float64{v})[0]
}

// Gather collects each rank's equal-length contribution on root, ordered by
// rank.  It returns the concatenation on root and nil elsewhere.
func (c *Comm) Gather(root int, data []float64) []float64 {
	c.checkPeer(root, "Gather")
	if c.rank != root {
		c.Send(root, tagGather, data)
		return nil
	}
	out := make([]float64, 0, len(data)*c.size)
	for r := 0; r < c.size; r++ {
		if r == root {
			out = append(out, data...)
		} else {
			out = append(out, c.Recv(r, tagGather)...)
		}
	}
	return out
}

// Allgather is Gather to rank 0 followed by Bcast.
func (c *Comm) Allgather(data []float64) []float64 {
	g := c.Gather(0, data)
	return c.Bcast(0, g)
}

// Scatter splits root's data into size equal chunks and delivers chunk r to
// rank r.  It panics if len(data) on root is not divisible by size.
func (c *Comm) Scatter(root int, data []float64) []float64 {
	c.checkPeer(root, "Scatter")
	if c.rank == root {
		if len(data)%c.size != 0 {
			panic(fmt.Sprintf("simmpi: Scatter: %d values not divisible by %d ranks",
				len(data), c.size))
		}
		n := len(data) / c.size
		for r := 0; r < c.size; r++ {
			if r == root {
				continue
			}
			c.Send(r, tagScatter, data[r*n:(r+1)*n])
		}
		out := make([]float64, n)
		copy(out, data[root*n:(root+1)*n])
		return out
	}
	return c.Recv(root, tagScatter)
}

// Alltoall performs a complete exchange: send[r] goes to rank r, and the
// returned slice holds recv[r] from each rank r.  The shifted-pairwise
// schedule (step k pairs rank with rank±k) avoids hot spots and is
// deterministic.
func (c *Comm) Alltoall(send [][]float64) [][]float64 {
	if len(send) != c.size {
		panic(fmt.Sprintf("simmpi: Alltoall: %d buffers for %d ranks", len(send), c.size))
	}
	recv := make([][]float64, c.size)
	// Self-exchange without touching the network.
	self := make([]float64, len(send[c.rank]))
	copy(self, send[c.rank])
	recv[c.rank] = self
	for k := 1; k < c.size; k++ {
		dst := (c.rank + k) % c.size
		src := (c.rank - k + c.size) % c.size
		recv[src] = c.Sendrecv(dst, tagA2A+k, send[dst], src, tagA2A+k)
	}
	return recv
}
