package simmpi

import (
	"errors"
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// sizes exercised by most collective tests: powers of two and odd sizes.
var testSizes = []int{1, 2, 3, 4, 5, 7, 8, 13, 16}

func runOrFatal(t *testing.T, procs int, fn func(c *Comm) error) Stats {
	t.Helper()
	st, err := Run(Config{Procs: procs, Timeout: 10 * time.Second}, fn)
	if err != nil {
		t.Fatalf("Run(p=%d): %v", procs, err)
	}
	return st
}

func TestSendRecvBasic(t *testing.T) {
	runOrFatal(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 7, []float64{1, 2, 3})
		} else {
			got := c.Recv(0, 7)
			if len(got) != 3 || got[0] != 1 || got[2] != 3 {
				t.Errorf("recv = %v", got)
			}
		}
		return nil
	})
}

func TestSendCopiesData(t *testing.T) {
	runOrFatal(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []float64{42}
			c.Send(1, 1, buf)
			buf[0] = -1 // mutate after send; receiver must still see 42
		} else {
			if got := c.RecvValue(0, 1); got != 42 {
				t.Errorf("recv = %v, want 42", got)
			}
		}
		return nil
	})
}

func TestTagMatchingOutOfOrder(t *testing.T) {
	runOrFatal(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.SendValue(1, 100, 1)
			c.SendValue(1, 200, 2)
		} else {
			// Receive in reverse tag order; buffering must hold tag 100.
			if v := c.RecvValue(0, 200); v != 2 {
				t.Errorf("tag 200 = %v", v)
			}
			if v := c.RecvValue(0, 100); v != 1 {
				t.Errorf("tag 100 = %v", v)
			}
		}
		return nil
	})
}

func TestSameTagFIFO(t *testing.T) {
	runOrFatal(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < 10; i++ {
				c.SendValue(1, 5, float64(i))
			}
		} else {
			for i := 0; i < 10; i++ {
				if v := c.RecvValue(0, 5); v != float64(i) {
					t.Errorf("message %d = %v", i, v)
				}
			}
		}
		return nil
	})
}

func TestSelfSend(t *testing.T) {
	runOrFatal(t, 1, func(c *Comm) error {
		c.SendValue(0, 9, 3.5)
		if v := c.RecvValue(0, 9); v != 3.5 {
			t.Errorf("self recv = %v", v)
		}
		return nil
	})
}

func TestBarrierAllSizes(t *testing.T) {
	for _, p := range testSizes {
		var mu sync.Mutex
		phase := make(map[int]int)
		runOrFatal(t, p, func(c *Comm) error {
			for round := 0; round < 3; round++ {
				mu.Lock()
				phase[c.Rank()] = round
				// After a barrier, no rank may still be in an older round.
				mu.Unlock()
				c.Barrier()
				mu.Lock()
				for r, ph := range phase {
					if ph < round {
						t.Errorf("p=%d: rank %d in phase %d after barrier of round %d",
							p, r, ph, round)
					}
				}
				mu.Unlock()
				c.Barrier()
			}
			return nil
		})
	}
}

func TestBcastAllRootsAllSizes(t *testing.T) {
	for _, p := range testSizes {
		for root := 0; root < p; root++ {
			runOrFatal(t, p, func(c *Comm) error {
				var payload []float64
				if c.Rank() == root {
					payload = []float64{float64(root), 3.14, -1}
				}
				got := c.Bcast(root, payload)
				if len(got) != 3 || got[0] != float64(root) || got[1] != 3.14 {
					t.Errorf("p=%d root=%d rank=%d: bcast = %v", p, root, c.Rank(), got)
				}
				return nil
			})
		}
	}
}

func TestReduceSumMatchesSerialFold(t *testing.T) {
	for _, p := range testSizes {
		for root := 0; root < p; root += max(1, p/3) {
			runOrFatal(t, p, func(c *Comm) error {
				data := []float64{float64(c.Rank() + 1), float64(c.Rank() * c.Rank())}
				got := c.Reduce(root, OpSum, data)
				if c.Rank() == root {
					wantA := float64(p*(p+1)) / 2
					var wantB float64
					for r := 0; r < p; r++ {
						wantB += float64(r * r)
					}
					if math.Abs(got[0]-wantA) > 1e-9 || math.Abs(got[1]-wantB) > 1e-9 {
						t.Errorf("p=%d root=%d: reduce = %v, want [%g %g]", p, root, got, wantA, wantB)
					}
				} else if got != nil {
					t.Errorf("non-root got %v", got)
				}
				return nil
			})
		}
	}
}

func TestAllreduceMaxMin(t *testing.T) {
	for _, p := range testSizes {
		runOrFatal(t, p, func(c *Comm) error {
			v := float64(c.Rank())
			if got := c.AllreduceValue(OpMax, v); got != float64(p-1) {
				t.Errorf("p=%d rank=%d: max = %v", p, c.Rank(), got)
			}
			if got := c.AllreduceValue(OpMin, v); got != 0 {
				t.Errorf("p=%d rank=%d: min = %v", p, c.Rank(), got)
			}
			return nil
		})
	}
}

func TestAllreduceIdenticalBitsOnAllRanks(t *testing.T) {
	// The key determinism property: every rank sees the *identical* float,
	// even for ill-conditioned sums.
	const p = 8
	results := make([]uint64, p)
	runOrFatal(t, p, func(c *Comm) error {
		v := math.Pow(10, float64(c.Rank()-4)) // wildly varying magnitudes
		got := c.AllreduceValue(OpSum, v)
		results[c.Rank()] = math.Float64bits(got)
		return nil
	})
	for r := 1; r < p; r++ {
		if results[r] != results[0] {
			t.Fatalf("rank %d allreduce bits differ from rank 0", r)
		}
	}
}

func TestAllreduceDeterministicAcrossRuns(t *testing.T) {
	run := func() uint64 {
		var bits uint64
		runOrFatal(t, 8, func(c *Comm) error {
			v := 1.0 / float64(c.Rank()+3)
			got := c.AllreduceValue(OpSum, v)
			if c.Rank() == 0 {
				bits = math.Float64bits(got)
			}
			return nil
		})
		return bits
	}
	a, b := run(), run()
	if a != b {
		t.Fatal("allreduce result differs across identical runs")
	}
}

func TestGatherScatterRoundTrip(t *testing.T) {
	for _, p := range testSizes {
		runOrFatal(t, p, func(c *Comm) error {
			mine := []float64{float64(c.Rank()), float64(c.Rank() * 10)}
			g := c.Gather(0, mine)
			if c.Rank() == 0 {
				for r := 0; r < p; r++ {
					if g[2*r] != float64(r) || g[2*r+1] != float64(r*10) {
						t.Errorf("p=%d: gather = %v", p, g)
					}
				}
			}
			back := c.Scatter(0, g)
			if len(back) != 2 || back[0] != mine[0] || back[1] != mine[1] {
				t.Errorf("p=%d rank=%d: scatter = %v, want %v", p, c.Rank(), back, mine)
			}
			return nil
		})
	}
}

func TestAllgather(t *testing.T) {
	runOrFatal(t, 5, func(c *Comm) error {
		got := c.Allgather([]float64{float64(c.Rank() + 1)})
		for r := 0; r < 5; r++ {
			if got[r] != float64(r+1) {
				t.Errorf("rank %d: allgather = %v", c.Rank(), got)
			}
		}
		return nil
	})
}

func TestAlltoallTransposes(t *testing.T) {
	for _, p := range testSizes {
		runOrFatal(t, p, func(c *Comm) error {
			send := make([][]float64, p)
			for r := 0; r < p; r++ {
				send[r] = []float64{float64(c.Rank()*100 + r)}
			}
			recv := c.Alltoall(send)
			for r := 0; r < p; r++ {
				want := float64(r*100 + c.Rank())
				if len(recv[r]) != 1 || recv[r][0] != want {
					t.Errorf("p=%d rank=%d from=%d: %v, want [%g]", p, c.Rank(), r, recv[r], want)
				}
			}
			return nil
		})
	}
}

func TestAlltoallBackToBack(t *testing.T) {
	// Two successive alltoalls must not cross-contaminate (FIFO matching).
	runOrFatal(t, 4, func(c *Comm) error {
		for iter := 0; iter < 5; iter++ {
			send := make([][]float64, 4)
			for r := 0; r < 4; r++ {
				send[r] = []float64{float64(iter*1000 + c.Rank()*10 + r)}
			}
			recv := c.Alltoall(send)
			for r := 0; r < 4; r++ {
				want := float64(iter*1000 + r*10 + c.Rank())
				if recv[r][0] != want {
					t.Errorf("iter %d rank %d: got %v want %g", iter, c.Rank(), recv[r][0], want)
				}
			}
		}
		return nil
	})
}

func TestRankErrorPropagates(t *testing.T) {
	sentinel := errors.New("boom")
	_, err := Run(Config{Procs: 4, Timeout: 5 * time.Second}, func(c *Comm) error {
		if c.Rank() == 2 {
			return sentinel
		}
		c.Barrier() // blocks; must be released by the abort
		return nil
	})
	var re *RankError
	if !errors.As(err, &re) || re.Rank != 2 || !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
}

func TestPanicBecomesPanicError(t *testing.T) {
	_, err := Run(Config{Procs: 3, Timeout: 5 * time.Second}, func(c *Comm) error {
		if c.Rank() == 1 {
			panic("corrupted index")
		}
		c.Barrier()
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Rank != 1 {
		t.Fatalf("err = %v", err)
	}
}

func TestHangDetection(t *testing.T) {
	start := time.Now()
	_, err := Run(Config{Procs: 2, Timeout: 100 * time.Millisecond}, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Recv(1, 99) // never sent: hang
		}
		return nil
	})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("hang detection took too long")
	}
}

func TestInvalidConfig(t *testing.T) {
	if _, err := Run(Config{Procs: 0}, func(c *Comm) error { return nil }); err == nil {
		t.Fatal("Procs=0 accepted")
	}
}

func TestStatsCountMessages(t *testing.T) {
	st := runOrFatal(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 1, []float64{1, 2, 3, 4})
		} else {
			c.Recv(0, 1)
		}
		return nil
	})
	if st.Messages != 1 || st.Floats != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

// Property: Allreduce(sum) equals the serial left fold over rank order of
// the binomial tree — and in particular equals the exact sum for integers.
func TestAllreduceSumPropertyIntegers(t *testing.T) {
	f := func(seedRaw uint16, pRaw uint8) bool {
		p := int(pRaw%12) + 1
		vals := make([]float64, p)
		want := 0.0
		for i := range vals {
			vals[i] = float64(int(seedRaw)%97 + i*i)
			want += vals[i]
		}
		ok := true
		_, err := Run(Config{Procs: p, Timeout: 10 * time.Second}, func(c *Comm) error {
			got := c.AllreduceValue(OpSum, vals[c.Rank()])
			if got != want { // integer-valued: exact
				ok = false
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Bcast delivers bit-identical payloads of arbitrary size.
func TestBcastPayloadProperty(t *testing.T) {
	f := func(vals []float64, pRaw, rootRaw uint8) bool {
		p := int(pRaw%9) + 1
		root := int(rootRaw) % p
		ok := true
		_, err := Run(Config{Procs: p, Timeout: 10 * time.Second}, func(c *Comm) error {
			var in []float64
			if c.Rank() == root {
				in = vals
			}
			out := c.Bcast(root, in)
			if len(out) != len(vals) {
				ok = false
				return nil
			}
			for i := range vals {
				if math.Float64bits(out[i]) != math.Float64bits(vals[i]) {
					ok = false
				}
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallVariableSizes(t *testing.T) {
	// Payload sizes may differ per (src,dst) pair.
	runOrFatal(t, 4, func(c *Comm) error {
		send := make([][]float64, 4)
		for d := 0; d < 4; d++ {
			n := c.Rank() + d + 1 // distinct per pair
			buf := make([]float64, n)
			for i := range buf {
				buf[i] = float64(c.Rank()*100 + d*10 + i)
			}
			send[d] = buf
		}
		recv := c.Alltoall(send)
		for s := 0; s < 4; s++ {
			wantLen := s + c.Rank() + 1
			if len(recv[s]) != wantLen {
				t.Errorf("rank %d from %d: len %d, want %d", c.Rank(), s, len(recv[s]), wantLen)
				continue
			}
			for i, v := range recv[s] {
				if v != float64(s*100+c.Rank()*10+i) {
					t.Errorf("rank %d from %d at %d: %g", c.Rank(), s, i, v)
				}
			}
		}
		return nil
	})
}

func TestReduceMaxMinMatchFold(t *testing.T) {
	f := func(raw [6]int8, pRaw uint8) bool {
		p := int(pRaw%6) + 1
		vals := make([]float64, p)
		maxW, minW := math.Inf(-1), math.Inf(1)
		for i := 0; i < p; i++ {
			vals[i] = float64(raw[i%6]) / 3
			if vals[i] > maxW {
				maxW = vals[i]
			}
			if vals[i] < minW {
				minW = vals[i]
			}
		}
		ok := true
		_, err := Run(Config{Procs: p, Timeout: 10 * time.Second}, func(c *Comm) error {
			if c.AllreduceValue(OpMax, vals[c.Rank()]) != maxW {
				ok = false
			}
			if c.AllreduceValue(OpMin, vals[c.Rank()]) != minW {
				ok = false
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestManyWorldsSequentially(t *testing.T) {
	// Worlds are independent: running many in sequence must not leak state.
	for i := 0; i < 20; i++ {
		runOrFatal(t, 3, func(c *Comm) error {
			v := c.AllreduceValue(OpSum, 1)
			if v != 3 {
				t.Errorf("iteration %d: sum = %g", i, v)
			}
			return nil
		})
	}
}
