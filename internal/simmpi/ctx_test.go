package simmpi

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestRunCtxCancellationReleasesBlockedRanks(t *testing.T) {
	// Both ranks block in Recv on messages that never arrive; only the
	// context cancellation can release them.
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := RunCtx(ctx, Config{Procs: 2, Timeout: 30 * time.Second}, func(c *Comm) error {
		c.Recv(1-c.Rank(), 99)
		return nil
	})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v to release blocked ranks", elapsed)
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, does not wrap context.Canceled", err)
	}
}

func TestRunCtxCompletesNormallyUnderLiveContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	st, err := RunCtx(ctx, Config{Procs: 4, Timeout: 10 * time.Second}, func(c *Comm) error {
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Messages == 0 {
		t.Fatal("barrier exchanged no messages")
	}
}

func TestRunCtxDeadlineClassifiedAsCancellation(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := RunCtx(ctx, Config{Procs: 2, Timeout: 30 * time.Second}, func(c *Comm) error {
		c.Recv(1-c.Rank(), 99)
		return nil
	})
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrCanceled wrapping DeadlineExceeded", err)
	}
	// The world's own Timeout must remain a distinct classification.
	if errors.Is(err, ErrTimeout) {
		t.Fatalf("context deadline misclassified as world timeout: %v", err)
	}
}
