package simmpi

import "fmt"

// Op is an element-wise reduction operator for Reduce/Allreduce.
type Op int

// The supported reduction operators.
const (
	OpSum Op = iota
	OpMax
	OpMin
	OpProd
)

// String returns the operator name.
func (o Op) String() string {
	switch o {
	case OpSum:
		return "sum"
	case OpMax:
		return "max"
	case OpMin:
		return "min"
	case OpProd:
		return "prod"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// apply folds src into dst element-wise: dst = dst (op) src.
// Reduction arithmetic happens inside the "network" and is therefore not an
// injection target, matching the paper's rule that errors are injected into
// application computation, never into MPI communication.
func (o Op) apply(dst, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("simmpi: reduction length mismatch %d vs %d", len(dst), len(src)))
	}
	switch o {
	case OpSum:
		for i := range dst {
			dst[i] += src[i]
		}
	case OpMax:
		for i := range dst {
			if src[i] > dst[i] {
				dst[i] = src[i]
			}
		}
	case OpMin:
		for i := range dst {
			if src[i] < dst[i] {
				dst[i] = src[i]
			}
		}
	case OpProd:
		for i := range dst {
			dst[i] *= src[i]
		}
	default:
		panic(fmt.Sprintf("simmpi: unknown reduction op %d", int(o)))
	}
}
