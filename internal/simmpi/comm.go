package simmpi

import "fmt"

// Comm is a rank's handle on a communicator — the analog of an MPI
// communicator handle.  The root communicator spans the world
// (MPI_COMM_WORLD); Split derives sub-communicators that renumber ranks
// and isolate their traffic in a private tag space.  A Comm is owned by
// its rank goroutine and must not be shared between goroutines.
type Comm struct {
	w    *world
	rank int
	size int
	// pending[worldSrc] buffers messages whose tag did not match an
	// in-flight Recv.  The store is shared between a rank's root
	// communicator and all its Split-derived communicators: tags are
	// disjoint per communicator, so sharing preserves isolation while
	// letting interleaved parent/child traffic buffer correctly.
	pending *[][]message

	// Sub-communicator state (nil/zero on the root communicator).
	parent   *Comm
	members  []int // world... parent ranks of this group, by new rank
	tagShift int
}

// Rank returns this rank's id in [0, Size) within this communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in this communicator.
func (c *Comm) Size() int { return c.size }

// checkPeer panics (via the world abort path) on an invalid peer rank;
// this is a programming error in the application, reported eagerly.
func (c *Comm) checkPeer(peer int, op string) {
	if peer < 0 || peer >= c.size {
		panic(fmt.Sprintf("simmpi: %s: peer rank %d out of range [0,%d)", op, peer, c.size))
	}
}

// checkAbort raises the abort sentinel if the world has failed.
func (c *Comm) checkAbort() {
	select {
	case <-c.w.abort:
		panic(abortPanic{})
	default:
	}
}

// worldRank returns this rank's id in the world communicator.
func (c *Comm) worldRank() int {
	r, _ := c.translate(c.rank, 0)
	return r
}

// Send delivers a copy of data to dst with the given tag.  It blocks only
// when the destination's channel buffer is full (backpressure).  Sending to
// oneself is allowed (buffered).
func (c *Comm) Send(dst, tag int, data []float64) {
	c.checkPeer(dst, "Send")
	c.checkAbort()
	wdst, wtag := c.translate(dst, tag)
	cp := make([]float64, len(data))
	copy(cp, data)
	ch := c.w.chans[wdst*c.w.size+c.worldRank()]
	m := message{tag: wtag, data: cp}
	// Fast path: a non-blocking send avoids the full two-case select
	// (runtime.selectgo) whenever the destination buffer has room — the
	// overwhelmingly common case.  The abort channel only matters once
	// the world is failing, and then only to unblock a full buffer.
	select {
	case ch <- m:
	default:
		select {
		case ch <- m:
		case <-c.w.abort:
			panic(abortPanic{})
		}
	}
	c.w.msgCount.Add(1)
	c.w.msgFloats.Add(uint64(len(cp)))
}

// Recv blocks until a message with the given tag arrives from src and
// returns its payload.  Messages from the same source with other tags are
// buffered and stay available for later Recv calls (including on other
// communicators of this rank), preserving per-source order within each
// tag.
func (c *Comm) Recv(src, tag int) []float64 {
	c.checkPeer(src, "Recv")
	wsrc, wtag := c.translate(src, tag)
	// First look in the rank's shared pending buffer.
	buf := (*c.pending)[wsrc]
	for i, m := range buf {
		if m.tag == wtag {
			(*c.pending)[wsrc] = append(buf[:i], buf[i+1:]...)
			return m.data
		}
	}
	ch := c.w.chans[c.worldRank()*c.w.size+wsrc]
	for {
		// Fast path: drain already-delivered messages without the full
		// two-case select; fall back to blocking only on an empty buffer.
		var m message
		select {
		case m = <-ch:
		default:
			select {
			case m = <-ch:
			case <-c.w.abort:
				panic(abortPanic{})
			}
		}
		if m.tag == wtag {
			return m.data
		}
		(*c.pending)[wsrc] = append((*c.pending)[wsrc], m)
	}
}

// Sendrecv sends sendData to dst with sendTag and receives a message with
// recvTag from src, in a deadlock-free way (the send buffers).
func (c *Comm) Sendrecv(dst, sendTag int, sendData []float64, src, recvTag int) []float64 {
	c.Send(dst, sendTag, sendData)
	return c.Recv(src, recvTag)
}

// SendValue sends a single-scalar message.
func (c *Comm) SendValue(dst, tag int, v float64) { c.Send(dst, tag, []float64{v}) }

// RecvValue receives a single-scalar message.
func (c *Comm) RecvValue(src, tag int) float64 {
	d := c.Recv(src, tag)
	if len(d) != 1 {
		panic(fmt.Sprintf("simmpi: RecvValue: message has %d values", len(d)))
	}
	return d[0]
}
