package simmpi

import (
	"context"
	"fmt"
	"time"
)

// Engine is a reusable allocation arena for repeated executions of the
// same world shape.  Constructing a world is the expensive part of a
// run — procs² buffered channels plus per-rank pending-message stores —
// and a fault-injection campaign builds thousands of identically-shaped
// worlds, so an Engine keeps those allocations alive across runs: each
// RunCtx call reuses the channels and buffers after emptying whatever a
// previous (possibly aborted) run left behind.
//
// An Engine is owned by one trial-executing goroutine: RunCtx must not
// be called concurrently on the same Engine, and a new run may start
// only after the previous one returned (which RunCtx guarantees — it
// joins every rank goroutine on all exit paths, so no goroutine of an
// earlier run can still touch the pooled state).  Reuse is invisible to
// the program under execution: ranks, tags, message order and failure
// semantics are exactly those of a fresh world, so results are
// bit-identical with and without pooling.
type Engine struct {
	procs   int
	chanCap int
	timeout time.Duration
	chans   []chan message
	// pending[rank] is the rank's unmatched-message store, shared by the
	// rank's root communicator and its Split children.
	pending [][][]message
}

// NewEngine validates cfg and allocates the world arena once.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Procs < 1 {
		return nil, fmt.Errorf("simmpi: Procs must be >= 1, got %d", cfg.Procs)
	}
	chanCap := cfg.ChanCap
	if chanCap <= 0 {
		chanCap = 256
	}
	e := &Engine{
		procs:   cfg.Procs,
		chanCap: chanCap,
		timeout: cfg.Timeout,
		chans:   make([]chan message, cfg.Procs*cfg.Procs),
		pending: make([][][]message, cfg.Procs),
	}
	for i := range e.chans {
		e.chans[i] = make(chan message, chanCap)
	}
	for r := range e.pending {
		e.pending[r] = make([][]message, cfg.Procs)
	}
	return e, nil
}

// Procs returns the engine's world size.
func (e *Engine) Procs() int { return e.procs }

// RunCtx executes fn on every rank of a world drawn from the arena,
// with the same semantics as the package-level RunCtx.  It returns only
// after every rank goroutine has finished, so the arena is immediately
// reusable.
func (e *Engine) RunCtx(ctx context.Context, fn func(c *Comm) error) (Stats, error) {
	// Empty whatever an aborted previous run left behind.  No goroutine
	// of that run is alive (runWorld joins them all), so plain
	// non-blocking drains are race-free.
	for _, ch := range e.chans {
		for len(ch) > 0 {
			<-ch
		}
	}
	for r := range e.pending {
		p := e.pending[r]
		for i := range p {
			p[i] = p[i][:0]
		}
	}
	w := &world{size: e.procs, chans: e.chans, abort: make(chan struct{})}
	return runWorld(ctx, w, e.timeout, e.pending, fn)
}
