package simmpi

import (
	"math"
	"testing"
	"time"
)

func TestSplitRowsAndColumns(t *testing.T) {
	// 2x3 grid: split by row color and by column color; check ranks,
	// sizes, and independent allreduces.
	const rows, cols = 2, 3
	runOrFatal(t, rows*cols, func(c *Comm) error {
		myRow := c.Rank() / cols
		myCol := c.Rank() % cols
		rowComm := c.Split(myRow, myCol)
		colComm := c.Split(myCol, myRow)
		if rowComm.Size() != cols || rowComm.Rank() != myCol {
			t.Errorf("rank %d: rowComm rank/size = %d/%d", c.Rank(), rowComm.Rank(), rowComm.Size())
		}
		if colComm.Size() != rows || colComm.Rank() != myRow {
			t.Errorf("rank %d: colComm rank/size = %d/%d", c.Rank(), colComm.Rank(), colComm.Size())
		}
		// Row sum of world ranks: row 0 -> 0+1+2=3, row 1 -> 3+4+5=12.
		rowSum := rowComm.AllreduceValue(OpSum, float64(c.Rank()))
		wantRow := []float64{3, 12}[myRow]
		if rowSum != wantRow {
			t.Errorf("rank %d: row sum = %g, want %g", c.Rank(), rowSum, wantRow)
		}
		// Column sums: col j -> j + (j+3).
		colSum := colComm.AllreduceValue(OpSum, float64(c.Rank()))
		wantCol := float64(myCol + myCol + 3)
		if colSum != wantCol {
			t.Errorf("rank %d: col sum = %g, want %g", c.Rank(), colSum, wantCol)
		}
		return nil
	})
}

func TestSplitKeyOrdersRanks(t *testing.T) {
	// All ranks share one color; keys reverse the order.
	const p = 5
	runOrFatal(t, p, func(c *Comm) error {
		sub := c.Split(0, -c.Rank())
		if want := p - 1 - c.Rank(); sub.Rank() != want {
			t.Errorf("rank %d: sub rank = %d, want %d", c.Rank(), sub.Rank(), want)
		}
		// Broadcast from sub-rank 0 (= world rank p-1).
		var payload []float64
		if sub.Rank() == 0 {
			payload = []float64{42}
		}
		got := sub.Bcast(0, payload)
		if got[0] != 42 {
			t.Errorf("rank %d: bcast got %v", c.Rank(), got)
		}
		return nil
	})
}

func TestSplitIsolatesTraffic(t *testing.T) {
	// Point-to-point with identical (peer, tag) on the parent and a child
	// must not cross: the child's tag space is disjoint.
	runOrFatal(t, 2, func(c *Comm) error {
		sub := c.Split(0, c.Rank())
		if c.Rank() == 0 {
			c.SendValue(1, 7, 111)   // parent message
			sub.SendValue(1, 7, 222) // child message, same tag
		} else {
			// Receive in the opposite order to force buffering.
			if v := sub.RecvValue(0, 7); v != 222 {
				t.Errorf("sub recv = %v", v)
			}
			if v := c.RecvValue(0, 7); v != 111 {
				t.Errorf("parent recv = %v", v)
			}
		}
		return nil
	})
}

func TestNestedSplit(t *testing.T) {
	// Split 8 ranks into two halves, then each half into two pairs.
	runOrFatal(t, 8, func(c *Comm) error {
		half := c.Split(c.Rank()/4, c.Rank())
		pair := half.Split(half.Rank()/2, half.Rank())
		if pair.Size() != 2 {
			t.Errorf("pair size = %d", pair.Size())
		}
		sum := pair.AllreduceValue(OpSum, float64(c.Rank()))
		// Pairs are (0,1)(2,3)(4,5)(6,7): sum = 4*floor(rank/2)+1.
		want := float64(4*(c.Rank()/2) + 1)
		if sum != want {
			t.Errorf("rank %d: pair sum = %g, want %g", c.Rank(), sum, want)
		}
		return nil
	})
}

func TestSplitSingleton(t *testing.T) {
	// Every rank its own color: size-1 communicators.
	runOrFatal(t, 3, func(c *Comm) error {
		solo := c.Split(c.Rank(), 0)
		if solo.Size() != 1 || solo.Rank() != 0 {
			t.Errorf("solo = %d/%d", solo.Rank(), solo.Size())
		}
		if v := solo.AllreduceValue(OpSum, 5); v != 5 {
			t.Errorf("solo allreduce = %g", v)
		}
		return nil
	})
}

func TestSplitDeterministicReduction(t *testing.T) {
	// Sub-communicator reductions are bit-deterministic too.
	run := func() uint64 {
		var bits uint64
		_, err := Run(Config{Procs: 6, Timeout: 10 * time.Second}, func(c *Comm) error {
			sub := c.Split(c.Rank()%2, c.Rank())
			v := 1.0 / float64(c.Rank()+2)
			got := sub.AllreduceValue(OpSum, v)
			if c.Rank() == 0 {
				bits = math.Float64bits(got)
			}
			return nil
		})
		if err != nil {
			panic(err)
		}
		return bits
	}
	if run() != run() {
		t.Fatal("sub-communicator reduction not deterministic")
	}
}
