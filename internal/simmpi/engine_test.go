package simmpi

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"resmod/internal/race"
)

// ringProgram is a communication-heavy test program: a ring shift, a
// tag-mismatch exchange (exercising the pending store), and an
// allreduce, returning rank 0's final value through res.
func ringProgram(res []float64) func(c *Comm) error {
	return func(c *Comm) error {
		me, p := c.Rank(), c.Size()
		next, prev := (me+1)%p, (me+p-1)%p
		v := []float64{float64(me + 1)}
		c.Send(next, 1, v)
		got := c.Recv(prev, 1)
		// Out-of-order tags: send 3 then 2, receive 2 then 3, so one
		// message must park in the pending store.
		c.Send(next, 3, []float64{got[0] * 2})
		c.Send(next, 2, []float64{got[0] + 10})
		a := c.Recv(prev, 2)
		b := c.Recv(prev, 3)
		s := c.AllreduceValue(OpSum, a[0]+b[0])
		res[me] = s
		return nil
	}
}

// TestEngineReuseMatchesFresh runs the same program many times on one
// engine and asserts every run is bit-identical to a fresh world's.
func TestEngineReuseMatchesFresh(t *testing.T) {
	const p = 4
	want := make([]float64, p)
	if _, err := Run(Config{Procs: p}, ringProgram(want)); err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(Config{Procs: p})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		got := make([]float64, p)
		st, err := e.RunCtx(context.Background(), ringProgram(got))
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		for r := range got {
			if math.Float64bits(got[r]) != math.Float64bits(want[r]) {
				t.Fatalf("run %d rank %d: %g != fresh %g", i, r, got[r], want[r])
			}
		}
		if st.Messages == 0 {
			t.Fatalf("run %d: no messages counted", i)
		}
	}
}

// TestEngineReuseAfterAbort aborts a run mid-communication (stale
// messages left in channels and pending stores) and asserts the next
// run on the same engine is clean: correct values, per-run stats.
func TestEngineReuseAfterAbort(t *testing.T) {
	const p = 4
	e, err := NewEngine(Config{Procs: p})
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.RunCtx(context.Background(), func(c *Comm) error {
		// Every rank floods messages nobody receives (tag 9), parking
		// some in pending via a mismatched Recv, then rank 2 panics.
		for i := 0; i < 3; i++ {
			c.Send((c.Rank()+1)%p, 9, []float64{1, 2, 3})
		}
		if c.Rank() == 2 {
			panic("boom")
		}
		c.Barrier()
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want PanicError", err)
	}

	want := make([]float64, p)
	if _, err := Run(Config{Procs: p}, ringProgram(want)); err != nil {
		t.Fatal(err)
	}
	got := make([]float64, p)
	st, err := e.RunCtx(context.Background(), ringProgram(got))
	if err != nil {
		t.Fatalf("reuse after abort: %v", err)
	}
	for r := range got {
		if math.Float64bits(got[r]) != math.Float64bits(want[r]) {
			t.Fatalf("rank %d after abort: %g != fresh %g", r, got[r], want[r])
		}
	}
	fresh := make([]float64, p)
	stFresh, _ := Run(Config{Procs: p}, ringProgram(fresh))
	if st != stFresh {
		t.Fatalf("reused stats %+v != fresh stats %+v (stale traffic leaked)", st, stFresh)
	}
}

// TestEngineReuseAfterTimeout hangs a run until the watchdog fires,
// then reuses the engine for a clean run.
func TestEngineReuseAfterTimeout(t *testing.T) {
	const p = 2
	e, err := NewEngine(Config{Procs: p, Timeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.RunCtx(context.Background(), func(c *Comm) error {
		if c.Rank() == 0 {
			c.Recv(1, 99) // never sent: hang
		}
		return nil
	})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	got := make([]float64, p)
	if _, err := e.RunCtx(context.Background(), ringProgram(got)); err != nil {
		t.Fatalf("reuse after timeout: %v", err)
	}
}

func TestEngineRejectsBadConfig(t *testing.T) {
	if _, err := NewEngine(Config{Procs: 0}); err == nil {
		t.Fatal("Procs=0 accepted")
	}
}

// TestEnginePoolingBoundsAllocations pins the win pooling buys: a
// pooled run must not rebuild the procs² channel fabric, so its
// allocation count stays far below a fresh world's.
func TestEnginePoolingBoundsAllocations(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are not exact under -race")
	}
	const p = 8
	prog := func(c *Comm) error {
		c.Barrier()
		return nil
	}
	fresh := testing.AllocsPerRun(20, func() {
		if _, err := Run(Config{Procs: p}, prog); err != nil {
			t.Fatal(err)
		}
	})
	e, err := NewEngine(Config{Procs: p})
	if err != nil {
		t.Fatal(err)
	}
	pooled := testing.AllocsPerRun(20, func() {
		if _, err := e.RunCtx(context.Background(), prog); err != nil {
			t.Fatal(err)
		}
	})
	// A fresh p=8 world allocates 64 channels alone; the pooled run's
	// allocations are per-run bookkeeping (world header, abort/done
	// channels, goroutine stacks, message copies) and must stay well
	// under both the fresh count and an absolute ceiling.
	if pooled > fresh/2 {
		t.Fatalf("pooled run allocates %v/run, fresh %v/run — pooling is not reusing the fabric", pooled, fresh)
	}
	if pooled > 64 {
		t.Fatalf("pooled run allocates %v/run, want <= 64", pooled)
	}
}

// BenchmarkWorldFresh and BenchmarkWorldPooled measure world
// construction cost: the same tiny program on a fresh world per
// iteration versus an engine-pooled one.
func BenchmarkWorldFresh(b *testing.B) {
	prog := func(c *Comm) error {
		c.Barrier()
		return nil
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{Procs: 8}, prog); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWorldPooled(b *testing.B) {
	prog := func(c *Comm) error {
		c.Barrier()
		return nil
	}
	e, err := NewEngine(Config{Procs: 8})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.RunCtx(ctx, prog); err != nil {
			b.Fatal(err)
		}
	}
}
