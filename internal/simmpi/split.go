package simmpi

import (
	"fmt"
	"sort"
)

// Split partitions the communicator into disjoint sub-communicators, one
// per distinct color, like MPI_Comm_split: every rank calls Split with its
// color and key; ranks sharing a color form a new communicator whose ranks
// are ordered by (key, old rank).  The call is collective over the parent
// communicator.
//
// The returned Comm shares the parent's transport but renumbers ranks and
// remaps tags into a per-color tag space, so collectives on different
// sub-communicators cannot interfere with each other or with the parent
// (as long as the application keeps its own point-to-point tags below the
// collective tag space, as everywhere else in resmod).
func (c *Comm) Split(color, key int) *Comm {
	// Exchange (color, key) pairs via an allgather on the parent.
	mine := []float64{float64(color), float64(key), float64(c.rank)}
	all := c.Allgather(mine)

	type member struct{ color, key, rank int }
	var group []member
	for r := 0; r < c.size; r++ {
		m := member{
			color: int(all[3*r]),
			key:   int(all[3*r+1]),
			rank:  int(all[3*r+2]),
		}
		if m.color == color {
			group = append(group, m)
		}
	}
	sort.Slice(group, func(i, j int) bool {
		if group[i].key != group[j].key {
			return group[i].key < group[j].key
		}
		return group[i].rank < group[j].rank
	})
	newRank := -1
	members := make([]int, len(group))
	for i, m := range group {
		members[i] = m.rank
		if m.rank == c.rank {
			newRank = i
		}
	}
	if newRank < 0 {
		panic(fmt.Sprintf("simmpi: Split lost rank %d", c.rank))
	}
	return &Comm{
		w:       c.w,
		rank:    newRank,
		size:    len(group),
		pending: c.pending, // shared with the parent: tags are disjoint
		parent:  c,
		members: members,
		// Disambiguate same-shape sub-communicators by their lowest parent
		// member (colors partition the ranks, so it is unique per group).
		tagShift: (members[0] + 1) * subTagSpan,
	}
}

// subTagSpan is the tag-space slice granted to each sub-communicator.
const subTagSpan = 1 << 24

// translate maps a sub-communicator rank to the transport (world) rank and
// the sub-communicator's tag space.
func (c *Comm) translate(peer, tag int) (worldRank, worldTag int) {
	if c.parent == nil {
		return peer, tag
	}
	// Recurse in case of nested splits.
	return c.parent.translate(c.members[peer], tag+c.tagShift)
}
