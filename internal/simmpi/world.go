// Package simmpi is resmod's in-process message-passing runtime — the
// stand-in for MPI in the paper's testbed.  A parallel execution of p ranks
// is p goroutines, each holding a Comm handle.  Point-to-point messages are
// delivered over per-(source,destination) channels with tag matching;
// collectives (Barrier, Bcast, Reduce, Allreduce, Allgather, Alltoall,
// Gather, Scatter) are built from point-to-point messages using the classic
// binomial-tree and shifted-pairwise algorithms, giving a fixed, size-only-
// dependent reduction order so that every execution at a given scale is
// bit-for-bit deterministic.  Determinism is what makes the fault-injection
// harness able to detect rank contamination by exact state comparison.
//
// Fault containment: if any rank panics, returns an error, or the world's
// watchdog expires (a hang), the whole world aborts; every rank blocked in
// a communication call is released.  Communication calls signal the abort
// by panicking with an internal sentinel that Run translates back into an
// error, so application code can be written without per-call error plumbing
// — the style real MPI codes use (MPI_Abort semantics).
package simmpi

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Config configures a simulated world.
type Config struct {
	// Procs is the number of ranks (>= 1).
	Procs int
	// ChanCap is the per-(src,dst) channel buffer capacity; messages beyond
	// it apply backpressure like MPI's rendezvous protocol.  Defaults to 256.
	ChanCap int
	// Timeout aborts the world if the program has not finished in time — the
	// harness's hang detector.  Zero means no watchdog.
	Timeout time.Duration
}

// Common world errors.
var (
	// ErrTimeout reports that the watchdog fired: the execution hung.
	ErrTimeout = errors.New("simmpi: world timed out (hang)")
	// ErrAborted reports that a communication call was interrupted because
	// another rank failed first.
	ErrAborted = errors.New("simmpi: world aborted")
	// ErrCanceled reports that the caller's context canceled the world
	// before it finished.  The wrapped error also matches the context's own
	// cause (context.Canceled or context.DeadlineExceeded), so callers can
	// distinguish external interruption from an application hang
	// (ErrTimeout) or crash (*PanicError).
	ErrCanceled = errors.New("simmpi: world canceled")
)

// RankError wraps an error returned by a rank's function.
type RankError struct {
	Rank int
	Err  error
}

func (e *RankError) Error() string { return fmt.Sprintf("simmpi: rank %d: %v", e.Rank, e.Err) }

// Unwrap exposes the underlying rank error.
func (e *RankError) Unwrap() error { return e.Err }

// PanicError wraps a panic raised inside a rank's function — the harness
// classifies it as an application crash (the paper's "Failure" outcome).
type PanicError struct {
	Rank  int
	Value any
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("simmpi: rank %d panicked: %v", e.Rank, e.Value)
}

// message is one point-to-point payload.
type message struct {
	tag  int
	data []float64
}

// world is the shared state of one simulated execution.
type world struct {
	size    int
	chans   []chan message // chans[dst*size+src]
	abort   chan struct{}
	once    sync.Once
	failure atomic.Pointer[worldFailure]

	// msgCount and msgFloats are communication-volume statistics.
	msgCount  atomic.Uint64
	msgFloats atomic.Uint64
}

type worldFailure struct{ err error }

// fail records the first failure and releases every blocked rank.
func (w *world) fail(err error) {
	w.once.Do(func() {
		w.failure.Store(&worldFailure{err: err})
		close(w.abort)
	})
}

// err returns the recorded failure, if any.
func (w *world) err() error {
	if f := w.failure.Load(); f != nil {
		return f.err
	}
	return nil
}

// abortPanic is the sentinel communication calls raise when the world has
// aborted; Run translates it into ErrAborted for the affected rank.
type abortPanic struct{}

// Stats reports communication volume for a finished world.
type Stats struct {
	// Messages is the number of point-to-point messages delivered
	// (collectives included, since they are built from point-to-point).
	Messages uint64
	// Floats is the total number of float64 values carried.
	Floats uint64
}

// Run executes fn on every rank of a freshly created world and waits for
// all ranks to finish.  It returns the first failure: a *PanicError if a
// rank panicked, ErrTimeout if the watchdog fired, or a *RankError wrapping
// the first non-nil error returned by fn.  On success it returns nil.
func Run(cfg Config, fn func(c *Comm) error) (Stats, error) {
	return RunCtx(context.Background(), cfg, fn)
}

// RunCtx is Run under a context: when ctx is canceled (or its deadline
// passes) the world aborts promptly — every rank blocked in a communication
// call is released — and the error wraps both ErrCanceled and ctx.Err().
// Ranks not blocked in communication finish their current compute section
// before observing the abort.
func RunCtx(ctx context.Context, cfg Config, fn func(c *Comm) error) (Stats, error) {
	e, err := NewEngine(cfg)
	if err != nil {
		return Stats{}, err
	}
	return e.RunCtx(ctx, fn)
}

// runWorld executes fn on every rank of a prepared world.  pending holds
// the per-rank unmatched-message stores (engine-owned, already emptied).
func runWorld(ctx context.Context, w *world, timeout time.Duration, pending [][][]message, fn func(c *Comm) error) (Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var wg sync.WaitGroup
	wg.Add(w.size)
	for r := 0; r < w.size; r++ {
		go func(rank int) {
			defer wg.Done()
			comm := &Comm{w: w, rank: rank, size: w.size, pending: &pending[rank]}
			defer func() {
				if v := recover(); v != nil {
					if _, isAbort := v.(abortPanic); isAbort {
						return // world already failed; nothing to add
					}
					w.fail(&PanicError{Rank: rank, Value: v})
				}
			}()
			if err := fn(comm); err != nil {
				w.fail(&RankError{Rank: rank, Err: err})
			}
		}(r)
	}

	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()

	var timerC <-chan time.Time
	if timeout > 0 {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		timerC = timer.C
	}
	select {
	case <-done:
	case <-timerC:
		w.fail(ErrTimeout)
		<-done
	case <-ctx.Done():
		w.fail(fmt.Errorf("%w: %w", ErrCanceled, ctx.Err()))
		<-done
	}

	stats := Stats{Messages: w.msgCount.Load(), Floats: w.msgFloats.Load()}
	return stats, w.err()
}
