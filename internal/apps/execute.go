package apps

import (
	"context"
	"time"

	"resmod/internal/fpe"
	"resmod/internal/simmpi"
)

// ExecResult is the outcome of one full (serial or parallel) execution.
type ExecResult struct {
	// Outputs holds each rank's RankOutput, indexed by rank.  On failure
	// entries may be zero-valued.
	Outputs []RankOutput
	// Ctxs holds each rank's floating point context (op counts, fired
	// injection records), indexed by rank.
	Ctxs []*fpe.Ctx
	// Comm holds communication-volume statistics.
	Comm simmpi.Stats
	// Err is the execution failure, if any: a *simmpi.PanicError for an
	// application crash, simmpi.ErrTimeout for a hang, or a *simmpi.RankError
	// for an application-reported error.
	Err error
}

// Execute runs app on procs ranks.  plans maps rank -> injection plan; ranks
// without an entry run clean.  timeout bounds the execution (hang detection);
// zero disables the watchdog.
func Execute(app App, class string, procs int, plans map[int][]fpe.Injection, timeout time.Duration) ExecResult {
	return ExecuteCtx(context.Background(), app, class, procs, plans, timeout)
}

// ExecuteCtx is Execute under a context: cancellation aborts the simulated
// world promptly and surfaces as an Err wrapping simmpi.ErrCanceled —
// distinct from the application outcomes (*simmpi.PanicError, ErrTimeout).
// Every call builds fresh execution state; callers that execute many
// same-shaped runs should hold an Arena instead.
func ExecuteCtx(ctx context.Context, app App, class string, procs int, plans map[int][]fpe.Injection, timeout time.Duration) ExecResult {
	return (*Arena)(nil).ExecuteCtx(ctx, app, class, procs, plans, timeout)
}

// Arena is a reuse pool for repeated executions: the simulated world's
// channel fabric (simmpi.Engine), the per-rank instrumented fpe contexts,
// and the output slice are built once and reset per run, so steady-state
// trial execution allocates only what the application itself allocates.
//
// An Arena is owned by a single goroutine (one campaign worker) and must
// not be used concurrently.  The ExecResult's Ctxs and Outputs slices are
// arena-owned: they are valid until the next ExecuteCtx call on the same
// arena and must not be retained across it.  Reuse never changes results:
// a pooled execution is bit-identical to a fresh one (the fpe reset and
// engine reuse contracts), which is what keeps campaign determinism
// intact.  A nil *Arena is valid and falls back to fresh allocations.
type Arena struct {
	procs   int
	timeout time.Duration
	engine  *simmpi.Engine
	ctxs    []*fpe.Ctx
	outputs []RankOutput
}

// NewArena returns an empty arena; the pooled state is built lazily from
// the first execution's shape and rebuilt if the shape changes.
func NewArena() *Arena { return &Arena{} }

// Discard drops the pooled state, forcing the next execution to rebuild
// it.  Callers use it when an execution ended in a state they no longer
// trust (e.g. after containing a harness panic).
func (a *Arena) Discard() {
	if a == nil {
		return
	}
	a.procs, a.engine, a.ctxs, a.outputs = 0, nil, nil, nil
}

// ExecuteCtx is the pooled equivalent of the package-level ExecuteCtx.
func (a *Arena) ExecuteCtx(ctx context.Context, app App, class string, procs int, plans map[int][]fpe.Injection, timeout time.Duration) ExecResult {
	var engine *simmpi.Engine
	var ctxs []*fpe.Ctx
	var outputs []RankOutput
	if a != nil && a.procs == procs && a.timeout == timeout && a.engine != nil {
		engine, ctxs, outputs = a.engine, a.ctxs, a.outputs
		for r := 0; r < procs; r++ {
			ctxs[r].ResetPlan(plans[r])
			outputs[r] = RankOutput{}
		}
	} else {
		eng, err := simmpi.NewEngine(simmpi.Config{Procs: procs, Timeout: timeout})
		if err != nil {
			return ExecResult{Err: err}
		}
		engine = eng
		ctxs = make([]*fpe.Ctx, procs)
		outputs = make([]RankOutput, procs)
		for r := 0; r < procs; r++ {
			ctxs[r] = fpe.NewWithPlan(plans[r])
		}
		if a != nil {
			a.procs, a.timeout = procs, timeout
			a.engine, a.ctxs, a.outputs = engine, ctxs, outputs
		}
	}
	st, err := engine.RunCtx(ctx, func(c *simmpi.Comm) error {
		out, rerr := app.Run(ctxs[c.Rank()], c, class)
		if rerr != nil {
			return rerr
		}
		outputs[c.Rank()] = out
		return nil
	})
	return ExecResult{Outputs: outputs, Ctxs: ctxs, Comm: st, Err: err}
}

// DefaultTimeout is the hang-detection budget used by the harness for one
// execution when the caller does not specify one.
const DefaultTimeout = 30 * time.Second
