package apps

import (
	"context"
	"time"

	"resmod/internal/fpe"
	"resmod/internal/simmpi"
)

// ExecResult is the outcome of one full (serial or parallel) execution.
type ExecResult struct {
	// Outputs holds each rank's RankOutput, indexed by rank.  On failure
	// entries may be zero-valued.
	Outputs []RankOutput
	// Ctxs holds each rank's floating point context (op counts, fired
	// injection records), indexed by rank.
	Ctxs []*fpe.Ctx
	// Comm holds communication-volume statistics.
	Comm simmpi.Stats
	// Err is the execution failure, if any: a *simmpi.PanicError for an
	// application crash, simmpi.ErrTimeout for a hang, or a *simmpi.RankError
	// for an application-reported error.
	Err error
}

// Execute runs app on procs ranks.  plans maps rank -> injection plan; ranks
// without an entry run clean.  timeout bounds the execution (hang detection);
// zero disables the watchdog.
func Execute(app App, class string, procs int, plans map[int][]fpe.Injection, timeout time.Duration) ExecResult {
	return ExecuteCtx(context.Background(), app, class, procs, plans, timeout)
}

// ExecuteCtx is Execute under a context: cancellation aborts the simulated
// world promptly and surfaces as an Err wrapping simmpi.ErrCanceled —
// distinct from the application outcomes (*simmpi.PanicError, ErrTimeout).
func ExecuteCtx(ctx context.Context, app App, class string, procs int, plans map[int][]fpe.Injection, timeout time.Duration) ExecResult {
	outputs := make([]RankOutput, procs)
	ctxs := make([]*fpe.Ctx, procs)
	for r := 0; r < procs; r++ {
		if plan, ok := plans[r]; ok {
			ctxs[r] = fpe.NewWithPlan(plan)
		} else {
			ctxs[r] = fpe.New()
		}
	}
	st, err := simmpi.RunCtx(ctx, simmpi.Config{Procs: procs, Timeout: timeout}, func(c *simmpi.Comm) error {
		out, rerr := app.Run(ctxs[c.Rank()], c, class)
		if rerr != nil {
			return rerr
		}
		outputs[c.Rank()] = out
		return nil
	})
	return ExecResult{Outputs: outputs, Ctxs: ctxs, Comm: st, Err: err}
}

// DefaultTimeout is the hang-detection budget used by the harness for one
// execution when the caller does not specify one.
const DefaultTimeout = 30 * time.Second
