// Package apptest provides a shared conformance suite that every resmod
// benchmark application must pass.  It verifies the properties the paper's
// model assumes (§2): identical numerical algorithm across scales,
// deterministic execution, correct region accounting, and sane behaviour
// under injection.
package apptest

import (
	"math"
	"testing"

	"resmod/internal/apps"
	"resmod/internal/fpe"
)

// Options tunes the conformance suite for one application.
type Options struct {
	// Class is the problem class to test (empty = default class).
	Class string
	// Procs are the parallel sizes to exercise (must not include 1).
	Procs []int
	// WantUnique states whether the app has parallel-unique computation in
	// parallel mode.
	WantUnique bool
	// MaxUniqueFraction bounds the parallel-unique fraction when present.
	MaxUniqueFraction float64
}

// Conformance runs the suite.
func Conformance(t *testing.T, app apps.App, opt Options) {
	t.Helper()
	class := opt.Class
	if class == "" {
		class = app.DefaultClass()
	}

	// --- Serial execution -------------------------------------------------
	serial := apps.Execute(app, class, 1, nil, apps.DefaultTimeout)
	if serial.Err != nil {
		t.Fatalf("serial run failed: %v", serial.Err)
	}
	serialCheck := serial.Outputs[0].Check
	if len(serialCheck) == 0 {
		t.Fatal("serial run produced no check values")
	}
	if !apps.AllFinite(serialCheck) {
		t.Fatalf("serial check not finite: %v", serialCheck)
	}
	if !app.Verify(serialCheck, serialCheck) {
		t.Fatal("checker rejects the golden values themselves")
	}
	if len(serial.Outputs[0].State) == 0 {
		t.Fatal("serial run produced no state")
	}
	if c := serial.Ctxs[0].Counts(); c.Unique != 0 {
		t.Fatalf("serial execution has %d parallel-unique ops; want 0", c.Unique)
	} else if c.Common == 0 {
		t.Fatal("serial execution performed no instrumented ops")
	}

	// Serial determinism.
	serial2 := apps.Execute(app, class, 1, nil, apps.DefaultTimeout)
	if serial2.Err != nil {
		t.Fatalf("second serial run failed: %v", serial2.Err)
	}
	if !bitEqual(serial.Outputs[0].State, serial2.Outputs[0].State) {
		t.Fatal("serial execution is not deterministic")
	}
	if serial.Ctxs[0].Counts() != serial2.Ctxs[0].Counts() {
		t.Fatal("serial op counts are not deterministic")
	}

	// --- Parallel executions ----------------------------------------------
	for _, p := range opt.Procs {
		par := apps.Execute(app, class, p, nil, apps.DefaultTimeout)
		if par.Err != nil {
			t.Fatalf("p=%d run failed: %v", p, par.Err)
		}
		check := par.Outputs[0].Check
		// Cross-scale algorithm agreement: the parallel result must pass
		// the checker against the serial golden values (Observation 1: the
		// executions use the same numerical algorithm).
		if !app.Verify(serialCheck, check) {
			t.Fatalf("p=%d check %v fails checker against serial golden %v", p, check, serialCheck)
		}

		// Parallel determinism: bit-identical states and counts across runs.
		par2 := apps.Execute(app, class, p, nil, apps.DefaultTimeout)
		if par2.Err != nil {
			t.Fatalf("p=%d second run failed: %v", p, par2.Err)
		}
		for r := 0; r < p; r++ {
			if !bitEqual(par.Outputs[r].State, par2.Outputs[r].State) {
				t.Fatalf("p=%d rank %d state not deterministic", p, r)
			}
			if par.Ctxs[r].Counts() != par2.Ctxs[r].Counts() {
				t.Fatalf("p=%d rank %d op counts not deterministic", p, r)
			}
		}

		// Region accounting.
		var total fpe.Counts
		for r := 0; r < p; r++ {
			c := par.Ctxs[r].Counts()
			total.Common += c.Common
			total.Unique += c.Unique
			if c.Common == 0 {
				t.Fatalf("p=%d rank %d performed no common ops", p, r)
			}
		}
		if opt.WantUnique {
			if total.Unique == 0 {
				t.Fatalf("p=%d: expected parallel-unique computation, found none", p)
			}
			if f := total.UniqueFraction(); f > opt.MaxUniqueFraction {
				t.Fatalf("p=%d: unique fraction %.3f exceeds bound %.3f",
					p, f, opt.MaxUniqueFraction)
			}
		} else if total.Unique != 0 {
			t.Fatalf("p=%d: app declared no parallel-unique computation but has %d unique ops",
				p, total.Unique)
		}

		// Assumption 2: ranks do comparable work (within 2x of each other).
		minOps, maxOps := total.Total(), uint64(0)
		for r := 0; r < p; r++ {
			ops := par.Ctxs[r].Counts().Total()
			if ops < minOps {
				minOps = ops
			}
			if ops > maxOps {
				maxOps = ops
			}
		}
		if maxOps > 2*minOps {
			t.Fatalf("p=%d: rank work imbalance: min=%d max=%d ops", p, minOps, maxOps)
		}
	}

	// --- Injection smoke test ----------------------------------------------
	// A sign flip in the middle of rank 0's common stream must either
	// complete (possibly with corrupt output) or fail through the harness's
	// error paths — never wedge the suite.
	mid := serial.Ctxs[0].Counts().Common / 2
	inj := apps.Execute(app, class, 1, map[int][]fpe.Injection{
		0: {{Class: fpe.Common, Index: mid, Bit: 63, Operand: 0}},
	}, apps.DefaultTimeout)
	if inj.Err == nil && inj.Ctxs[0].Fired() != 1 {
		t.Fatalf("planned injection did not fire (fired=%d)", inj.Ctxs[0].Fired())
	}
}

func bitEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}
