package apps

import (
	"strings"
	"testing"
)

type namedFake struct {
	fakeApp
	name string
}

func (n namedFake) Name() string { return n.name }

func TestRegistryLookupAndNames(t *testing.T) {
	Register(namedFake{name: "zz-test-app"})
	a, err := Lookup("zz-test-app")
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "zz-test-app" {
		t.Fatalf("looked up %q", a.Name())
	}
	found := false
	for _, n := range Names() {
		if n == "zz-test-app" {
			found = true
		}
	}
	if !found {
		t.Fatal("registered app missing from Names()")
	}
	if len(All()) != len(Names()) {
		t.Fatal("All() and Names() disagree")
	}
}

func TestRegistryUnknown(t *testing.T) {
	_, err := Lookup("definitely-not-registered")
	if err == nil || !strings.Contains(err.Error(), "unknown application") {
		t.Fatalf("err = %v", err)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	Register(namedFake{name: "zz-dup-app"})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	Register(namedFake{name: "zz-dup-app"})
}
