package sp

import (
	"math"
	"testing"

	"resmod/internal/apps"
	"resmod/internal/apps/apptest"
	"resmod/internal/fpe"
)

func TestConformance(t *testing.T) {
	apptest.Conformance(t, App{}, apptest.Options{
		Procs:             []int{2, 4, 8},
		WantUnique:        true,
		MaxUniqueFraction: 0.35,
	})
}

func TestThomasSolvesTridiagonal(t *testing.T) {
	// Solve, then verify A x = d by applying the operator.
	const n = 16
	lambda := 0.4
	d := make([]float64, n)
	orig := make([]float64, n)
	for i := range d {
		d[i] = math.Sin(float64(i)*0.9) + 0.3
		orig[i] = d[i]
	}
	cp := make([]float64, n)
	thomas(fpe.New(), d, 0, 1, n, lambda, cp)
	b := 1 + 2*lambda
	a := -lambda
	for i := 0; i < n; i++ {
		got := b * d[i]
		if i > 0 {
			got += a * d[i-1]
		}
		if i < n-1 {
			got += a * d[i+1]
		}
		if math.Abs(got-orig[i]) > 1e-10 {
			t.Fatalf("A x != d at %d: %g vs %g", i, got, orig[i])
		}
	}
}

func TestThomasStridedMatchesContiguous(t *testing.T) {
	const n, stride = 8, 3
	lambda := 0.25
	c := make([]float64, n)
	s := make([]float64, n*stride)
	for i := 0; i < n; i++ {
		v := float64(i*i%7) - 2
		c[i] = v
		s[i*stride] = v
	}
	cp1 := make([]float64, n)
	cp2 := make([]float64, n)
	thomas(fpe.New(), c, 0, 1, n, lambda, cp1)
	thomas(fpe.New(), s, 0, stride, n, lambda, cp2)
	for i := 0; i < n; i++ {
		if math.Float64bits(c[i]) != math.Float64bits(s[i*stride]) {
			t.Fatalf("strided Thomas differs at %d", i)
		}
	}
}

func TestADIDiffusesTowardMean(t *testing.T) {
	// Implicit diffusion damps the oscillatory part: the RMS after the run
	// must be below the initial RMS, and the field must stay finite.
	res := apps.Execute(App{}, "S", 1, nil, apps.DefaultTimeout)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	rms := res.Outputs[0].Check[0]
	if rms <= 0 || rms >= 0.7 {
		t.Fatalf("rms = %g", rms)
	}
	if !apps.AllFinite(res.Outputs[0].State) {
		t.Fatal("state not finite")
	}
}

func TestSerialParallelAgreement(t *testing.T) {
	ser := apps.Execute(App{}, "S", 1, nil, apps.DefaultTimeout)
	if ser.Err != nil {
		t.Fatal(ser.Err)
	}
	par := apps.Execute(App{}, "S", 8, nil, apps.DefaultTimeout)
	if par.Err != nil {
		t.Fatal(par.Err)
	}
	for i, want := range ser.Outputs[0].Check {
		if apps.RelErr(want, par.Outputs[0].Check[i], 1e-30) > 1e-10 {
			t.Fatalf("check %d: %g vs %g", i, want, par.Outputs[0].Check[i])
		}
	}
}

func TestLineSolveSpreadsInjection(t *testing.T) {
	// An implicit solve propagates a corrupted value along the entire
	// line: a mid-run exponent flip should corrupt the checker values.
	clean := apps.Execute(App{}, "S", 1, nil, apps.DefaultTimeout)
	if clean.Err != nil {
		t.Fatal(clean.Err)
	}
	total := clean.Ctxs[0].Counts().Common
	caught := false
	for _, frac := range []uint64{2, 3, 4} {
		bad := apps.Execute(App{}, "S", 1, map[int][]fpe.Injection{
			0: {{Class: fpe.Common, Index: total * frac / 6, Bit: 62, Operand: 0}},
		}, apps.DefaultTimeout)
		if bad.Err != nil || !(App{}).Verify(clean.Outputs[0].Check, bad.Outputs[0].Check) {
			caught = true
			break
		}
	}
	if !caught {
		t.Fatal("no mid-run corruption caught")
	}
}
