// Package sp implements resmod's analog of the NPB SP benchmark: an
// alternating-direction-implicit (ADI) time stepper that each cycle solves
// tridiagonal systems along x, y and z with the Thomas algorithm (NAS
// Parallel Benchmarks 3.3, application SP, reduced from its five-variable
// pentadiagonal system to scalar diffusion).
//
// Parallel decomposition: 1-D slabs along z.  The x and y line solves are
// local; the z line solves become local after a global transpose
// (alltoall), and the array is transposed back afterwards — the same data
// redistribution family as FT but wrapped around *implicit* solves, whose
// forward/backward substitution smears an injected error along entire
// lines.  SP is an extension benchmark beyond the paper's six
// applications.
//
// The transpose pack/unpack stages are parallel-unique computation, as in
// FT.
package sp

import (
	"math"

	"resmod/internal/apps"
	"resmod/internal/fpe"
	"resmod/internal/simmpi"
)

// params describes one problem class.
type params struct {
	nx, ny, nz int
	steps      int
	lambda     float64 // implicit diffusion number per direction
}

var classes = map[string]params{
	"S": {nx: 64, ny: 4, nz: 64, steps: 3, lambda: 0.4},
}

// App is the SP benchmark.
type App struct{}

func init() { apps.Register(App{}) }

// Name returns "SP".
func (App) Name() string { return "SP" }

// Classes returns the supported problem classes.
func (App) Classes() []string { return []string{"S"} }

// DefaultClass returns "S".
func (App) DefaultClass() string { return "S" }

// MaxProcs returns the largest supported rank count (both x and z must
// divide among the ranks for the transpose).
func (App) MaxProcs(class string) int {
	p, ok := classes[class]
	if !ok {
		return 0
	}
	if p.nx < p.nz {
		return p.nx
	}
	return p.nz
}

// thomas solves the constant-coefficient tridiagonal system
// (-lambda, 1+2*lambda, -lambda) x = d in place over the n elements at
// offset, offset+stride, ... of d, with Dirichlet-zero boundaries.
// All arithmetic is instrumented.
func thomas(fc *fpe.Ctx, d []float64, offset, stride, n int, lambda float64, cp []float64) {
	b := 1 + 2*lambda
	a := -lambda
	// Forward elimination.
	cp[0] = fc.Div(a, b)
	d[offset] = fc.Div(d[offset], b)
	for i := 1; i < n; i++ {
		m := fc.Sub(b, fc.Mul(a, cp[i-1]))
		cp[i] = fc.Div(a, m)
		di := offset + i*stride
		d[di] = fc.Div(fc.Sub(d[di], fc.Mul(a, d[di-stride])), m)
	}
	// Back substitution.
	for i := n - 2; i >= 0; i-- {
		di := offset + i*stride
		d[di] = fc.Sub(d[di], fc.Mul(cp[i], d[di+stride]))
	}
}

// stage moves one float through the instrumented transpose datapath (see
// package ft for the rationale).
func stage(fc *fpe.Ctx, v float64) float64 { return fc.Add(v, 0) }

// Run executes the benchmark on this rank.
func (a App) Run(fc *fpe.Ctx, comm *simmpi.Comm, class string) (apps.RankOutput, error) {
	pr, ok := classes[class]
	if !ok {
		return apps.RankOutput{}, &apps.ErrBadProcs{App: "SP", Class: class,
			Procs: comm.Size(), Reason: "unknown class"}
	}
	if err := apps.CheckProcs(a, class, comm.Size()); err != nil {
		return apps.RankOutput{}, err
	}
	p := comm.Size()
	nx, ny, nz := pr.nx, pr.ny, pr.nz
	zlo, zhi := apps.Block1D(nz, p, comm.Rank())
	xlo, xhi := apps.Block1D(nx, p, comm.Rank())
	nzLoc, nxLoc := zhi-zlo, xhi-xlo

	// Initial condition: a smooth multi-bump field (setup, uninstrumented,
	// identical at every scale).
	u := make([]float64, nzLoc*ny*nx)
	for z := zlo; z < zhi; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				v := math.Sin(math.Pi*float64(x+1)/float64(nx+1)) *
					math.Cos(2*math.Pi*float64(y)/float64(ny)) *
					math.Sin(math.Pi*float64(z+1)/float64(nz+1))
				u[((z-zlo)*ny+y)*nx+x] = v + 0.25
			}
		}
	}

	cp := make([]float64, max(nx, max(ny, nz))) // Thomas scratch
	for step := 0; step < pr.steps; step++ {
		// x-direction implicit solve: lines are contiguous.
		for z := 0; z < nzLoc; z++ {
			for y := 0; y < ny; y++ {
				thomas(fc, u, (z*ny+y)*nx, 1, nx, pr.lambda, cp)
			}
		}
		// y-direction: stride nx.
		for z := 0; z < nzLoc; z++ {
			for x := 0; x < nx; x++ {
				thomas(fc, u, z*ny*nx+x, nx, ny, pr.lambda, cp)
			}
		}
		// z-direction: strided in serial, transposed in parallel.
		if p == 1 {
			for y := 0; y < ny; y++ {
				for x := 0; x < nx; x++ {
					thomas(fc, u, y*nx+x, ny*nx, nz, pr.lambda, cp)
				}
			}
		} else {
			xd := transposeZX(fc, comm, pr, u, zlo, zhi, xlo, xhi)
			for x := 0; x < nxLoc; x++ {
				for y := 0; y < ny; y++ {
					thomas(fc, xd, (x*ny+y)*nz, 1, nz, pr.lambda, cp)
				}
			}
			u = transposeXZ(fc, comm, pr, xd, zlo, zhi, xlo, xhi)
		}
	}

	// Verification: global RMS and the field value nearest the domain
	// centre.
	rms := comm.AllreduceValue(simmpi.OpSum, fc.Dot(u, u))
	rms = math.Sqrt(rms / (float64(nx) * float64(ny) * float64(nz)))
	var center float64
	cz := nz / 2
	if cz >= zlo && cz < zhi {
		center = u[((cz-zlo)*ny+ny/2)*nx+nx/2]
	}
	center = comm.AllreduceValue(simmpi.OpSum, center)

	state := make([]float64, len(u))
	copy(state, u)
	return apps.RankOutput{State: state, Check: []float64{rms, center}}, nil
}

// transposeZX redistributes from z-slabs ((z,y,x), x contiguous) to
// x-slabs ((x,y,z), z contiguous).  Pack/unpack are parallel-unique.
func transposeZX(fc *fpe.Ctx, comm *simmpi.Comm, pr params, in []float64, zlo, zhi, xlo, xhi int) []float64 {
	p := comm.Size()
	nx, ny, nz := pr.nx, pr.ny, pr.nz
	nzLoc, nxLoc := zhi-zlo, xhi-xlo
	nxb := nx / p
	end := fc.Begin("transpose-pack", fpe.Unique)
	send := make([][]float64, p)
	for d := 0; d < p; d++ {
		buf := make([]float64, 0, nzLoc*ny*nxb)
		for z := 0; z < nzLoc; z++ {
			for y := 0; y < ny; y++ {
				base := (z*ny + y) * nx
				for x := d * nxb; x < (d+1)*nxb; x++ {
					buf = append(buf, stage(fc, in[base+x]))
				}
			}
		}
		send[d] = buf
	}
	end()
	recv := comm.Alltoall(send)
	end = fc.Begin("transpose-unpack", fpe.Unique)
	out := make([]float64, nxLoc*ny*nz)
	nzb := nz / p
	for s := 0; s < p; s++ {
		buf := recv[s]
		k := 0
		for z := s * nzb; z < (s+1)*nzb; z++ {
			for y := 0; y < ny; y++ {
				for x := 0; x < nxLoc; x++ {
					out[(x*ny+y)*nz+z] = stage(fc, buf[k])
					k++
				}
			}
		}
	}
	end()
	return out
}

// transposeXZ is the inverse redistribution.
func transposeXZ(fc *fpe.Ctx, comm *simmpi.Comm, pr params, in []float64, zlo, zhi, xlo, xhi int) []float64 {
	p := comm.Size()
	nx, ny, nz := pr.nx, pr.ny, pr.nz
	nzLoc, nxLoc := zhi-zlo, xhi-xlo
	nzb := nz / p
	end := fc.Begin("transpose-pack", fpe.Unique)
	send := make([][]float64, p)
	for d := 0; d < p; d++ {
		buf := make([]float64, 0, nxLoc*ny*nzb)
		for z := d * nzb; z < (d+1)*nzb; z++ {
			for y := 0; y < ny; y++ {
				for x := 0; x < nxLoc; x++ {
					buf = append(buf, stage(fc, in[(x*ny+y)*nz+z]))
				}
			}
		}
		send[d] = buf
	}
	end()
	recv := comm.Alltoall(send)
	end = fc.Begin("transpose-unpack", fpe.Unique)
	out := make([]float64, nzLoc*ny*nx)
	nxb := nx / p
	for s := 0; s < p; s++ {
		buf := recv[s]
		k := 0
		for z := 0; z < nzLoc; z++ {
			for y := 0; y < ny; y++ {
				base := (z*ny + y) * nx
				for x := s * nxb; x < (s+1)*nxb; x++ {
					out[base+x] = stage(fc, buf[k])
					k++
				}
			}
		}
	}
	end()
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Verify implements the SP checker: RMS and centre value within tolerance.
func (App) Verify(golden, check []float64) bool {
	return apps.VerifyRel(golden, check, 1e-8)
}
