package mg

import (
	"math"
	"testing"

	"resmod/internal/apps"
	"resmod/internal/apps/apptest"
	"resmod/internal/fpe"
	"resmod/internal/simmpi"
)

func TestConformance(t *testing.T) {
	apptest.Conformance(t, App{}, apptest.Options{
		Procs:      []int{2, 4, 8},
		WantUnique: false,
	})
}

func TestVCyclesReduceResidual(t *testing.T) {
	// The residual after the final V-cycle must be far below the initial
	// residual norm ||v|| (sqrt(20 charges / n3) in RMS terms).
	res := apps.Execute(App{}, "S", 1, nil, apps.DefaultTimeout)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	pr := classes["S"]
	n3 := float64(pr.nx * pr.ny * pr.nz)
	initial := math.Sqrt(float64(2*pr.charges) / n3) // upper bound, pre-cancellation
	final := res.Outputs[0].Check[0]
	if final <= 0 || final > initial/2 {
		t.Fatalf("residual norm %g did not drop well below initial %g", final, initial)
	}
}

func TestSerialParallelBitIdenticalState(t *testing.T) {
	// MG's reductions never feed back into the iteration, so the parallel
	// state must equal the serial state bit-for-bit when reassembled.
	ser := apps.Execute(App{}, "S", 1, nil, apps.DefaultTimeout)
	if ser.Err != nil {
		t.Fatal(ser.Err)
	}
	const p = 4
	par := apps.Execute(App{}, "S", p, nil, apps.DefaultTimeout)
	if par.Err != nil {
		t.Fatal(par.Err)
	}
	var joined []float64
	for r := 0; r < p; r++ {
		joined = append(joined, par.Outputs[r].State...)
	}
	if len(joined) != len(ser.Outputs[0].State) {
		t.Fatalf("state sizes: %d vs %d", len(joined), len(ser.Outputs[0].State))
	}
	for i := range joined {
		if math.Float64bits(joined[i]) != math.Float64bits(ser.Outputs[0].State[i]) {
			t.Fatalf("state differs at %d: %g vs %g", i, joined[i], ser.Outputs[0].State[i])
		}
	}
}

func TestResidualOfExactSolutionIsRHS(t *testing.T) {
	// residual(u=0, v) must equal v.
	l := &level{nx: 4, ny: 4, nz: 4, zlo: 0, zhi: 4}
	n := 64
	u := make([]float64, n)
	v := make([]float64, n)
	for i := range v {
		v[i] = float64(i%5) - 2
	}
	ghLo := make([]float64, 16)
	ghHi := make([]float64, 16)
	r := residual(fpe.New(), l, u, v, ghLo, ghHi)
	for i := range r {
		if r[i] != v[i] {
			t.Fatalf("residual[%d] = %g, want %g", i, r[i], v[i])
		}
	}
}

func TestOperatorAnnihilatesConstants(t *testing.T) {
	// A applied to a constant field is zero (periodic Laplacian nullspace).
	l := &level{nx: 4, ny: 4, nz: 4, zlo: 0, zhi: 4}
	n := 64
	u := make([]float64, n)
	for i := range u {
		u[i] = 7.5
	}
	ghost := make([]float64, 16)
	for i := range ghost {
		ghost[i] = 7.5
	}
	v := make([]float64, n)
	r := residual(fpe.New(), l, u, v, ghost, ghost)
	for i := range r {
		if math.Abs(r[i]) > 1e-12 {
			t.Fatalf("residual[%d] = %g for constant field", i, r[i])
		}
	}
}

func TestGhostsPeriodicWrapSerial(t *testing.T) {
	l := &level{nx: 2, ny: 2, nz: 3, zlo: 0, zhi: 3}
	a := make([]float64, 12)
	for i := range a {
		a[i] = float64(i)
	}
	var comm *simmpi.Comm // not used on the replicated path
	lo, hi := l.ghosts(comm, 0, a)
	// ghostLo = top plane (8..11), ghostHi = bottom plane (0..3).
	if lo[0] != 8 || lo[3] != 11 || hi[0] != 0 || hi[3] != 3 {
		t.Fatalf("ghosts: lo=%v hi=%v", lo, hi)
	}
}

func TestGhostExchangeDistributed(t *testing.T) {
	// 4 ranks, 8 planes of 1x1: rank r owns planes 2r, 2r+1 holding their
	// global index as value.
	_, err := simmpi.Run(simmpi.Config{Procs: 4}, func(c *simmpi.Comm) error {
		l := &level{nx: 1, ny: 1, nz: 8, distributed: true,
			zlo: 2 * c.Rank(), zhi: 2*c.Rank() + 2}
		a := []float64{float64(2 * c.Rank()), float64(2*c.Rank() + 1)}
		lo, hi := l.ghosts(c, 10, a)
		wantLo := float64((2*c.Rank() - 1 + 8) % 8)
		wantHi := float64((2*c.Rank() + 2) % 8)
		if lo[0] != wantLo || hi[0] != wantHi {
			t.Errorf("rank %d: lo=%v (want %g) hi=%v (want %g)",
				c.Rank(), lo, wantLo, hi, wantHi)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExponentInjectionCorruptsResidual(t *testing.T) {
	clean := apps.Execute(App{}, "S", 1, nil, apps.DefaultTimeout)
	if clean.Err != nil {
		t.Fatal(clean.Err)
	}
	bad := apps.Execute(App{}, "S", 1, map[int][]fpe.Injection{
		0: {{Class: fpe.Common, Index: 5000, Bit: 62, Operand: 0}},
	}, apps.DefaultTimeout)
	if bad.Err != nil {
		return // crash/hang acceptable
	}
	if (App{}).Verify(clean.Outputs[0].Check, bad.Outputs[0].Check) {
		t.Fatalf("huge corruption passed checker: %v vs %v",
			clean.Outputs[0].Check, bad.Outputs[0].Check)
	}
}

func TestConformanceClassA(t *testing.T) {
	if testing.Short() {
		t.Skip("larger class skipped in -short mode")
	}
	apptest.Conformance(t, App{}, apptest.Options{
		Class:      "A",
		Procs:      []int{4},
		WantUnique: false,
	})
}
