// Package mg implements the NPB MG benchmark: V-cycle multigrid applied to
// the 3-D Poisson equation -lap(u) = v on a periodic grid, where v is a set
// of balanced +1/-1 point charges, run for a fixed number of cycles with
// the L2 residual norm as the verification value (NAS Parallel Benchmarks
// 3.3, kernel MG).
//
// Parallel decomposition: planes of the grid are block-distributed along z
// with periodic ring halo exchange at every smoothing, residual and
// restriction step.  Grid levels coarser than the rank count are replicated:
// each rank redundantly computes the identical coarse-grid work (a standard
// coarse-level agglomeration strategy), entered through an allgather at the
// cutover level.  Errors therefore propagate both locally plane-by-plane
// through halos and globally through the coarse levels — the mixed
// propagation profile the paper observes for MG.
//
// MG has no parallel-unique computation (paper Table 1): the halo planes
// are sent directly from the working arrays with no staging arithmetic.
package mg

import (
	"math"

	"resmod/internal/apps"
	"resmod/internal/fpe"
	"resmod/internal/simmpi"
)

// params describes one problem class.
type params struct {
	nx, ny, nz int // finest grid
	levels     int
	niter      int // V-cycles
	charges    int // +1 charges (same number of -1 charges)
	seed       uint64
	coarseIter int // smoothing sweeps on the coarsest level
	weight     float64
}

var classes = map[string]params{
	"S": {nx: 8, ny: 8, nz: 128, levels: 3, niter: 3, charges: 10,
		seed: 0x36_5, coarseIter: 4, weight: 0.8},
	// A larger class with one more grid level, for scaling studies.
	"A": {nx: 16, ny: 16, nz: 256, levels: 4, niter: 3, charges: 20,
		seed: 0x36_A, coarseIter: 4, weight: 0.8},
}

// App is the MG benchmark.
type App struct{}

func init() { apps.Register(App{}) }

// Name returns "MG".
func (App) Name() string { return "MG" }

// Classes returns the supported problem classes.
func (App) Classes() []string { return []string{"S", "A"} }

// DefaultClass returns "S".
func (App) DefaultClass() string { return "S" }

// MaxProcs returns the largest supported rank count: each rank must own at
// least two planes of the finest grid so that restriction stays local.
func (App) MaxProcs(class string) int {
	p, ok := classes[class]
	if !ok {
		return 0
	}
	return p.nz / 2
}

// level describes one grid level's geometry and distribution on this rank.
type level struct {
	nx, ny, nz  int
	distributed bool
	zlo, zhi    int // owned global planes; [0, nz) when replicated
}

// nzLoc returns the number of locally stored planes.
func (l *level) nzLoc() int { return l.zhi - l.zlo }

// plane returns a copy of local plane zl (local index).
func (l *level) plane(a []float64, zl int) []float64 {
	sz := l.nx * l.ny
	out := make([]float64, sz)
	copy(out, a[zl*sz:(zl+1)*sz])
	return out
}

// ghosts returns the periodic ghost planes below and above this rank's
// slab of array a, exchanging with ring neighbours when the level is
// distributed.
func (l *level) ghosts(comm *simmpi.Comm, tag int, a []float64) (lo, hi []float64) {
	if !l.distributed {
		// Replicated (or serial): wrap locally.
		return l.plane(a, l.nz-1), l.plane(a, 0)
	}
	p := comm.Size()
	r := comm.Rank()
	down := (r - 1 + p) % p
	up := (r + 1) % p
	comm.Send(down, tag, l.plane(a, 0))
	comm.Send(up, tag+1, l.plane(a, l.nzLoc()-1))
	hi = comm.Recv(up, tag)
	lo = comm.Recv(down, tag+1)
	return lo, hi
}

// at reads a(x, y, zl) with periodic wrap in x and y; zl is a local plane
// index and must be in range.
func at(a []float64, nx, ny, x, y, zl int) float64 {
	if x < 0 {
		x += nx
	} else if x >= nx {
		x -= nx
	}
	if y < 0 {
		y += ny
	} else if y >= ny {
		y -= ny
	}
	return a[(zl*ny+y)*nx+x]
}

// stencilSum returns the sum of the six face neighbours of (x, y, zl),
// using ghost planes for z neighbours that fall outside the slab.
func stencilSum(fc *fpe.Ctx, a []float64, nx, ny, nzLoc, x, y, zl int, ghLo, ghHi []float64) float64 {
	s := fc.Add(at(a, nx, ny, x-1, y, zl), at(a, nx, ny, x+1, y, zl))
	s = fc.Add(s, at(a, nx, ny, x, y-1, zl))
	s = fc.Add(s, at(a, nx, ny, x, y+1, zl))
	var below, above float64
	if zl == 0 {
		below = at(ghLo, nx, ny, x, y, 0)
	} else {
		below = at(a, nx, ny, x, y, zl-1)
	}
	if zl == nzLoc-1 {
		above = at(ghHi, nx, ny, x, y, 0)
	} else {
		above = at(a, nx, ny, x, y, zl+1)
	}
	s = fc.Add(s, below)
	return fc.Add(s, above)
}

// residual computes r = v - A u over the slab, where A is the 7-point
// periodic Laplacian (Au = 6u - sum of neighbours).
func residual(fc *fpe.Ctx, l *level, u, v, ghLo, ghHi []float64) []float64 {
	r := make([]float64, len(u))
	for zl := 0; zl < l.nzLoc(); zl++ {
		for y := 0; y < l.ny; y++ {
			for x := 0; x < l.nx; x++ {
				i := (zl*l.ny+y)*l.nx + x
				au := fc.Sub(fc.Mul(6, u[i]),
					stencilSum(fc, u, l.nx, l.ny, l.nzLoc(), x, y, zl, ghLo, ghHi))
				r[i] = fc.Sub(v[i], au)
			}
		}
	}
	return r
}

// smooth applies one weighted-Jacobi sweep: z += w/6 * (r - A z).
func smooth(fc *fpe.Ctx, comm *simmpi.Comm, tag int, l *level, z, r []float64, w float64) {
	ghLo, ghHi := l.ghosts(comm, tag, z)
	upd := make([]float64, len(z))
	w6 := w / 6
	for zl := 0; zl < l.nzLoc(); zl++ {
		for y := 0; y < l.ny; y++ {
			for x := 0; x < l.nx; x++ {
				i := (zl*l.ny+y)*l.nx + x
				az := fc.Sub(fc.Mul(6, z[i]),
					stencilSum(fc, z, l.nx, l.ny, l.nzLoc(), x, y, zl, ghLo, ghHi))
				upd[i] = fc.Mul(w6, fc.Sub(r[i], az))
			}
		}
	}
	for i := range z {
		z[i] = fc.Add(z[i], upd[i])
	}
}

// restrictTo projects the fine residual rf onto the coarse level:
// c = 1/2 * fine(center) + 1/12 * (six fine face neighbours).
// When the coarse level is replicated but the fine level is distributed,
// each rank computes its plane block and the blocks are allgathered.
func restrictTo(fc *fpe.Ctx, comm *simmpi.Comm, tag int, fine, coarse *level, rf []float64) []float64 {
	ghLo, _ := fine.ghosts(comm, tag, rf)
	// Coarse planes derived from this rank's fine slab.
	cklo, ckhi := fine.zlo/2, fine.zhi/2
	local := make([]float64, (ckhi-cklo)*coarse.ny*coarse.nx)
	const wC, wF = 0.5, 1.0 / 12.0
	for ck := cklo; ck < ckhi; ck++ {
		fz := 2*ck - fine.zlo // local fine plane of the coarse centre
		for cy := 0; cy < coarse.ny; cy++ {
			for cx := 0; cx < coarse.nx; cx++ {
				fx, fy := 2*cx, 2*cy
				center := at(rf, fine.nx, fine.ny, fx, fy, fz)
				faces := stencilSum(fc, rf, fine.nx, fine.ny, fine.nzLoc(), fx, fy, fz, ghLo, nil)
				i := ((ck-cklo)*coarse.ny+cy)*coarse.nx + cx
				local[i] = fc.Add(fc.Mul(wC, center), fc.Mul(wF, faces))
			}
		}
	}
	if coarse.distributed || comm.Size() == 1 || !fine.distributed {
		return local
	}
	// Cutover: fine distributed, coarse replicated -> gather everywhere.
	return comm.Allgather(local)
}

// interpAdd adds the trilinear interpolation of the coarse correction zc
// into the fine array zf.
func interpAdd(fc *fpe.Ctx, comm *simmpi.Comm, tag int, coarse, fine *level, zc, zf []float64) {
	var ghHi []float64
	if coarse.distributed {
		_, ghHi = coarse.ghosts(comm, tag, zc)
	}
	// coarseAt reads coarse plane k (global), using the ghost when k is
	// just above the slab.
	coarseAt := func(cx, cy, ck int) float64 {
		if ck >= coarse.nz {
			ck -= coarse.nz
		}
		if ck >= coarse.zlo && ck < coarse.zhi {
			return at(zc, coarse.nx, coarse.ny, cx, cy, ck-coarse.zlo)
		}
		// Must be the plane directly above a distributed slab.
		return at(ghHi, coarse.nx, coarse.ny, cx, cy, 0)
	}
	for fz := fine.zlo; fz < fine.zhi; fz++ {
		ck := fz / 2
		zOdd := fz%2 == 1
		for fy := 0; fy < fine.ny; fy++ {
			cy := fy / 2
			yOdd := fy%2 == 1
			for fx := 0; fx < fine.nx; fx++ {
				cx := fx / 2
				xOdd := fx%2 == 1
				// Trilinear: average the 2^odd corner values.
				var sum float64
				terms := 0
				for dx := 0; dx <= btoi(xOdd); dx++ {
					for dy := 0; dy <= btoi(yOdd); dy++ {
						for dz := 0; dz <= btoi(zOdd); dz++ {
							sum = fc.Add(sum, coarseAt(cx+dx, cy+dy, ck+dz))
							terms++
						}
					}
				}
				v := fc.Mul(sum, 1/float64(terms))
				i := ((fz-fine.zlo)*fine.ny+fy)*fine.nx + fx
				zf[i] = fc.Add(zf[i], v)
			}
		}
	}
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Run executes the benchmark on this rank.
func (a App) Run(fc *fpe.Ctx, comm *simmpi.Comm, class string) (apps.RankOutput, error) {
	pr, ok := classes[class]
	if !ok {
		return apps.RankOutput{}, &apps.ErrBadProcs{App: "MG", Class: class, Procs: comm.Size(),
			Reason: "unknown class"}
	}
	if err := apps.CheckProcs(a, class, comm.Size()); err != nil {
		return apps.RankOutput{}, err
	}
	p := comm.Size()

	// Build the level geometry, finest first.
	levels := make([]*level, pr.levels)
	for li := 0; li < pr.levels; li++ {
		sh := 1 << li
		l := &level{nx: pr.nx / sh, ny: pr.ny / sh, nz: pr.nz / sh}
		// A distributed level needs at least two planes per rank so the
		// restriction of every owned coarse plane's fine centre is local.
		l.distributed = p > 1 && l.nz >= 2*p
		if l.distributed {
			l.zlo, l.zhi = apps.Block1D(l.nz, p, comm.Rank())
		} else {
			l.zlo, l.zhi = 0, l.nz
		}
		levels[li] = l
	}
	fine := levels[0]

	// The right-hand side: balanced point charges at hashed positions
	// (setup, uninstrumented, identical at every scale).
	n3 := pr.nx * pr.ny * pr.nz
	v := make([]float64, fine.nzLoc()*fine.ny*fine.nx)
	place := func(h uint64, val float64) {
		g := int(h % uint64(n3))
		z := g / (pr.nx * pr.ny)
		if z >= fine.zlo && z < fine.zhi {
			// Accumulate so colliding +1/-1 charges cancel and the RHS
			// stays zero-mean (the periodic operator's compatibility
			// condition).
			v[g-fine.zlo*pr.nx*pr.ny] += val
		}
	}
	x := pr.seed
	for c := 0; c < pr.charges; c++ {
		place(splitmix(&x), 1)
		place(splitmix(&x), -1)
	}

	u := make([]float64, len(v))
	r := make([]float64, len(v))
	copy(r, v)

	var rnorm float64
	tag := 100
	for it := 0; it < pr.niter; it++ {
		z := vcycle(fc, comm, pr, levels, r, &tag)
		for i := range u {
			u[i] = fc.Add(u[i], z[i])
		}
		ghLo, ghHi := fine.ghosts(comm, tag, u)
		tag += 2
		r = residual(fc, fine, u, v, ghLo, ghHi)
		local := fc.Dot(r, r)
		rnorm = math.Sqrt(comm.AllreduceValue(simmpi.OpSum, local) / float64(n3))
	}

	state := make([]float64, len(u))
	copy(state, u)
	return apps.RankOutput{State: state, Check: []float64{rnorm}}, nil
}

// vcycle runs one multigrid V-cycle on residual r at the finest level and
// returns the correction.
func vcycle(fc *fpe.Ctx, comm *simmpi.Comm, pr params, levels []*level, r []float64, tag *int) []float64 {
	L := len(levels)
	rs := make([][]float64, L)
	rs[0] = r
	// Down: restrict residuals to the coarsest level.
	for li := 1; li < L; li++ {
		rs[li] = restrictTo(fc, comm, *tag, levels[li-1], levels[li], rs[li-1])
		*tag += 2
	}
	// Coarsest: several smoothing sweeps from zero.
	zs := make([][]float64, L)
	zs[L-1] = make([]float64, len(rs[L-1]))
	for s := 0; s < pr.coarseIter; s++ {
		smooth(fc, comm, *tag, levels[L-1], zs[L-1], rs[L-1], pr.weight)
		*tag += 2
	}
	// Up: interpolate the correction and post-smooth against this level's
	// residual equation A z = r.
	for li := L - 2; li >= 0; li-- {
		l := levels[li]
		zs[li] = make([]float64, l.nzLoc()*l.ny*l.nx)
		interpAdd(fc, comm, *tag, levels[li+1], l, zs[li+1], zs[li])
		*tag += 2
		smooth(fc, comm, *tag, l, zs[li], rs[li], pr.weight)
		*tag += 2
	}
	return zs[0]
}

func splitmix(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Verify implements the MG checker: the final residual norm must match the
// fault-free value within tolerance.
func (App) Verify(golden, check []float64) bool {
	return apps.VerifyRel(golden, check, 1e-8)
}
