// Package minife implements resmod's analog of the MiniFE proxy
// application: finite-element assembly of a variable-coefficient diffusion
// operator on a 3-D node grid followed by a fixed-iteration conjugate
// gradient solve (Mantevo MiniFE, Heroux et al. 2009).
//
// Assembly is edge-based lowest-order FEM: for every grid edge a
// conductivity coefficient is evaluated and accumulated into the two
// incident nodes' stencil coefficients — instrumented arithmetic that runs
// identically in serial and parallel (common computation).  Edges to the
// Dirichlet boundary contribute only to the interior diagonal.
//
// The CG solve distributes node planes along z; the matvec needs only the
// two neighbour planes (halo exchange), while the inner products are
// allreduced, so — like NPB CG — a surviving error reaches every rank
// through the very next global scalar (alpha/beta).  The parallel-unique
// computation is the checksum guard each rank accumulates over the halo
// planes it is about to send (paper Table 1 shows MiniFE's unique fraction
// is small and shrinks with problem size).
package minife

import (
	"math"

	"resmod/internal/apps"
	"resmod/internal/fpe"
	"resmod/internal/simmpi"
)

// params describes one problem class (named after MiniFE's nx=ny=nz input
// convention).
type params struct {
	nx, ny, nz int // interior node grid
	cgIters    int
	seed       uint64
}

var classes = map[string]params{
	"30":  {nx: 8, ny: 8, nz: 64, cgIters: 18, seed: 0x3F_30},
	"300": {nx: 8, ny: 8, nz: 128, cgIters: 18, seed: 0x3F_300},
}

// App is the MiniFE benchmark.
type App struct{}

func init() { apps.Register(App{}) }

// Name returns "MiniFE".
func (App) Name() string { return "MiniFE" }

// Classes returns the supported problem classes.
func (App) Classes() []string { return []string{"30", "300"} }

// DefaultClass returns "30".
func (App) DefaultClass() string { return "30" }

// MaxProcs returns the largest supported rank count (one node plane per
// rank).
func (App) MaxProcs(class string) int {
	p, ok := classes[class]
	if !ok {
		return 0
	}
	return p.nz
}

// stencil holds the assembled 7-point operator coefficients for the local
// slab: for node i, center[i] and the six directional couplings.
type stencil struct {
	nx, ny, nzLoc int
	zlo           int
	center        []float64
	w, e, s, n    []float64 // x-/x+/y-/y+ couplings
	b, t          []float64 // z-/z+ couplings
}

func (st *stencil) idx(x, y, zl int) int { return (zl*st.ny+y)*st.nx + x }

// conductivity returns the deterministic edge coefficient for the edge
// leaving global node (x,y,z) in direction dir (0=x,1=y,2=z): a smooth,
// strictly positive field, identical at every scale.
func conductivity(pr params, x, y, z, dir int) float64 {
	h := pr.seed + uint64(((z*pr.ny+y)*pr.nx+x)*3+dir)*0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h ^= h >> 31
	return 1 + 0.5*float64(h>>11)/(1<<53)
}

// assemble builds the local stencil by edge assembly.  Every edge incident
// to a local node is assembled; edges crossing the slab boundary are
// evaluated redundantly by both ranks (each accumulates its own side), so
// the assembled operator is identical at every scale.
func assemble(fc *fpe.Ctx, pr params, zlo, zhi int) *stencil {
	nzLoc := zhi - zlo
	n := pr.nx * pr.ny * nzLoc
	st := &stencil{
		nx: pr.nx, ny: pr.ny, nzLoc: nzLoc, zlo: zlo,
		center: make([]float64, n),
		w:      make([]float64, n), e: make([]float64, n),
		s: make([]float64, n), n: make([]float64, n),
		b: make([]float64, n), t: make([]float64, n),
	}
	for zl := 0; zl < nzLoc; zl++ {
		z := zlo + zl
		for y := 0; y < pr.ny; y++ {
			for x := 0; x < pr.nx; x++ {
				i := st.idx(x, y, zl)
				// Edge in +x (to x+1 or the Dirichlet boundary).
				k := conductivity(pr, x, y, z, 0)
				st.center[i] = fc.Add(st.center[i], k)
				if x+1 < pr.nx {
					st.e[i] = fc.Sub(st.e[i], k)
				}
				// Edge in -x (assembled from the left node's +x edge).
				if x > 0 {
					kl := conductivity(pr, x-1, y, z, 0)
					st.center[i] = fc.Add(st.center[i], kl)
					st.w[i] = fc.Sub(st.w[i], kl)
				} else {
					// Boundary edge into the wall at x=-1.
					st.center[i] = fc.Add(st.center[i], conductivity(pr, x-1+pr.nx, y, z, 0))
				}
				// Same pattern in y.
				k = conductivity(pr, x, y, z, 1)
				st.center[i] = fc.Add(st.center[i], k)
				if y+1 < pr.ny {
					st.n[i] = fc.Sub(st.n[i], k)
				}
				if y > 0 {
					kl := conductivity(pr, x, y-1, z, 1)
					st.center[i] = fc.Add(st.center[i], kl)
					st.s[i] = fc.Sub(st.s[i], kl)
				} else {
					st.center[i] = fc.Add(st.center[i], conductivity(pr, x, y-1+pr.ny, z, 1))
				}
				// And in z (global coordinates; couplings may cross ranks).
				k = conductivity(pr, x, y, z, 2)
				st.center[i] = fc.Add(st.center[i], k)
				if z+1 < pr.nz {
					st.t[i] = fc.Sub(st.t[i], k)
				}
				if z > 0 {
					kl := conductivity(pr, x, y, z-1, 2)
					st.center[i] = fc.Add(st.center[i], kl)
					st.b[i] = fc.Sub(st.b[i], kl)
				} else {
					st.center[i] = fc.Add(st.center[i], conductivity(pr, x, y, z-1+pr.nz, 2))
				}
			}
		}
	}
	return st
}

const (
	tagHaloDown = 200
	tagHaloUp   = 201
)

// haloPlanes exchanges the boundary planes of u with the z neighbours,
// accumulating the parallel-unique checksum guard over each plane sent.
func haloPlanes(fc *fpe.Ctx, comm *simmpi.Comm, st *stencil, u []float64) (ghLo, ghHi []float64) {
	r, p := comm.Rank(), comm.Size()
	if p == 1 {
		return nil, nil
	}
	sz := st.nx * st.ny
	plane := func(zl int) []float64 {
		out := make([]float64, sz)
		copy(out, u[zl*sz:(zl+1)*sz])
		return out
	}
	end := fc.Begin("halo-guard", fpe.Unique)
	guard := 0.0
	if r > 0 {
		for _, v := range u[:sz] {
			guard = fc.Add(guard, v)
		}
	}
	if r < p-1 {
		for _, v := range u[(st.nzLoc-1)*sz:] {
			guard = fc.Add(guard, v)
		}
	}
	end()
	_ = guard // models MiniFE's exchange-preparation arithmetic
	if r > 0 {
		comm.Send(r-1, tagHaloDown, plane(0))
	}
	if r < p-1 {
		comm.Send(r+1, tagHaloUp, plane(st.nzLoc-1))
	}
	if r > 0 {
		ghLo = comm.Recv(r-1, tagHaloUp)
	}
	if r < p-1 {
		ghHi = comm.Recv(r+1, tagHaloDown)
	}
	return ghLo, ghHi
}

// matvec computes w = A u with the assembled stencil (Dirichlet-zero
// outside the box; slab boundaries through ghosts).
func matvec(fc *fpe.Ctx, st *stencil, u, w, ghLo, ghHi []float64) {
	get := func(x, y, zl int) float64 {
		if x < 0 || x >= st.nx || y < 0 || y >= st.ny {
			return 0
		}
		switch {
		case zl < 0:
			if ghLo == nil {
				return 0
			}
			return ghLo[y*st.nx+x]
		case zl >= st.nzLoc:
			if ghHi == nil {
				return 0
			}
			return ghHi[y*st.nx+x]
		}
		return u[(zl*st.ny+y)*st.nx+x]
	}
	for zl := 0; zl < st.nzLoc; zl++ {
		for y := 0; y < st.ny; y++ {
			for x := 0; x < st.nx; x++ {
				i := st.idx(x, y, zl)
				acc := fc.Mul(st.center[i], u[i])
				acc = fc.Add(acc, fc.Mul(st.w[i], get(x-1, y, zl)))
				acc = fc.Add(acc, fc.Mul(st.e[i], get(x+1, y, zl)))
				acc = fc.Add(acc, fc.Mul(st.s[i], get(x, y-1, zl)))
				acc = fc.Add(acc, fc.Mul(st.n[i], get(x, y+1, zl)))
				acc = fc.Add(acc, fc.Mul(st.b[i], get(x, y, zl-1)))
				acc = fc.Add(acc, fc.Mul(st.t[i], get(x, y, zl+1)))
				w[i] = acc
			}
		}
	}
}

// Run executes the benchmark on this rank.
func (a App) Run(fc *fpe.Ctx, comm *simmpi.Comm, class string) (apps.RankOutput, error) {
	pr, ok := classes[class]
	if !ok {
		return apps.RankOutput{}, &apps.ErrBadProcs{App: "MiniFE", Class: class,
			Procs: comm.Size(), Reason: "unknown class"}
	}
	if err := apps.CheckProcs(a, class, comm.Size()); err != nil {
		return apps.RankOutput{}, err
	}
	zlo, zhi := apps.Block1D(pr.nz, comm.Size(), comm.Rank())
	st := assemble(fc, pr, zlo, zhi)
	n := pr.nx * pr.ny * (zhi - zlo)

	// Load vector: unit heat source in the middle of the box (setup).
	f := make([]float64, n)
	for zl := 0; zl < zhi-zlo; zl++ {
		z := zlo + zl
		if z >= pr.nz/4 && z < 3*pr.nz/4 {
			for y := pr.ny / 4; y < 3*pr.ny/4; y++ {
				for x := pr.nx / 4; x < 3*pr.nx/4; x++ {
					f[st.idx(x, y, zl)] = 1
				}
			}
		}
	}

	// Conjugate gradients with a fixed iteration budget.
	u := make([]float64, n)
	r := make([]float64, n)
	copy(r, f)
	p := make([]float64, n)
	copy(p, f)
	q := make([]float64, n)
	rho := comm.AllreduceValue(simmpi.OpSum, fc.Dot(r, r))
	for it := 0; it < pr.cgIters; it++ {
		ghLo, ghHi := haloPlanes(fc, comm, st, p)
		matvec(fc, st, p, q, ghLo, ghHi)
		d := comm.AllreduceValue(simmpi.OpSum, fc.Dot(p, q))
		alpha := fc.Div(rho, d)
		fc.Axpy(alpha, p, u)
		fc.Axpy(-alpha, q, r)
		rho0 := rho
		rho = comm.AllreduceValue(simmpi.OpSum, fc.Dot(r, r))
		beta := fc.Div(rho, rho0)
		for i := range p {
			p[i] = fc.Add(r[i], fc.Mul(beta, p[i]))
		}
	}
	rnorm := math.Sqrt(rho)
	// Verification energy: u . f.
	energy := comm.AllreduceValue(simmpi.OpSum, fc.Dot(u, f))

	state := make([]float64, n)
	copy(state, u)
	return apps.RankOutput{State: state, Check: []float64{rnorm, energy}}, nil
}

// Verify implements the MiniFE checker: the final residual norm and the
// solution energy must match the fault-free values within tolerance.
func (App) Verify(golden, check []float64) bool {
	return apps.VerifyRel(golden, check, 1e-8)
}
