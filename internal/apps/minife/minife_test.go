package minife

import (
	"math"
	"testing"

	"resmod/internal/apps"
	"resmod/internal/apps/apptest"
	"resmod/internal/fpe"
)

func TestConformance(t *testing.T) {
	apptest.Conformance(t, App{}, apptest.Options{
		Procs:             []int{2, 4, 8},
		WantUnique:        true,
		MaxUniqueFraction: 0.05,
	})
}

func TestConformanceClass300(t *testing.T) {
	if testing.Short() {
		t.Skip("larger class skipped in -short mode")
	}
	apptest.Conformance(t, App{}, apptest.Options{
		Class:             "300",
		Procs:             []int{4},
		WantUnique:        true,
		MaxUniqueFraction: 0.05,
	})
}

func TestAssembledOperatorIsSymmetric(t *testing.T) {
	pr := classes["30"]
	st := assemble(fpe.New(), pr, 0, pr.nz)
	// Coupling symmetry: e at (x,y,z) equals w at (x+1,y,z), etc.
	for zl := 0; zl < pr.nz; zl += 11 {
		for y := 0; y < pr.ny; y++ {
			for x := 0; x < pr.nx-1; x++ {
				if st.e[st.idx(x, y, zl)] != st.w[st.idx(x+1, y, zl)] {
					t.Fatalf("x-coupling asymmetric at (%d,%d,%d)", x, y, zl)
				}
			}
		}
	}
	for zl := 0; zl < pr.nz-1; zl += 7 {
		for y := 0; y < pr.ny; y++ {
			for x := 0; x < pr.nx; x++ {
				if st.t[st.idx(x, y, zl)] != st.b[st.idx(x, y, zl+1)] {
					t.Fatalf("z-coupling asymmetric at (%d,%d,%d)", x, y, zl)
				}
			}
		}
	}
}

func TestAssembledOperatorDiagonallyDominant(t *testing.T) {
	pr := classes["30"]
	st := assemble(fpe.New(), pr, 0, pr.nz)
	for i := 0; i < len(st.center); i += 13 {
		off := math.Abs(st.w[i]) + math.Abs(st.e[i]) + math.Abs(st.s[i]) +
			math.Abs(st.n[i]) + math.Abs(st.b[i]) + math.Abs(st.t[i])
		// Interior nodes are weakly dominant up to assembly rounding.
		if st.center[i] < off-1e-9 {
			t.Fatalf("node %d: center %g < off-diagonal sum %g", i, st.center[i], off)
		}
	}
}

func TestAssemblySliceMatchesFull(t *testing.T) {
	// A rank's assembled slab must equal the same rows of the full
	// assembly (scale-invariant operator).
	pr := classes["30"]
	full := assemble(fpe.New(), pr, 0, pr.nz)
	part := assemble(fpe.New(), pr, 16, 32)
	sz := pr.nx * pr.ny
	for i := 0; i < 16*sz; i++ {
		gi := 16*sz + i
		if full.center[gi] != part.center[i] || full.t[gi] != part.t[i] || full.b[gi] != part.b[i] {
			t.Fatalf("assembled slab differs from full assembly at local %d", i)
		}
	}
}

func TestCGReducesResidual(t *testing.T) {
	res := apps.Execute(App{}, "30", 1, nil, apps.DefaultTimeout)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	rnorm, energy := res.Outputs[0].Check[0], res.Outputs[0].Check[1]
	// ||f|| = sqrt(#loaded nodes); residual must have dropped well below.
	f0 := math.Sqrt(float64(4 * 4 * 32))
	if rnorm <= 0 || rnorm > f0/10 {
		t.Fatalf("rnorm = %g, initial %g: CG barely converged", rnorm, f0)
	}
	if energy <= 0 {
		t.Fatalf("energy = %g, want positive (SPD operator)", energy)
	}
}

func TestExponentInjectionCaught(t *testing.T) {
	clean := apps.Execute(App{}, "30", 1, nil, apps.DefaultTimeout)
	if clean.Err != nil {
		t.Fatal(clean.Err)
	}
	total := clean.Ctxs[0].Counts().Common
	caught := false
	// Bit 62 turns any value whose top exponent bit is clear into a
	// ~2^512-scale monster; scan several dynamic indices because a flip of
	// an operand that is (or is later multiplied by) zero is masked.
	for _, frac := range []uint64{2, 3, 4, 5} {
		bad := apps.Execute(App{}, "30", 1, map[int][]fpe.Injection{
			0: {{Class: fpe.Common, Index: total * frac / 6, Bit: 62, Operand: 1}},
		}, apps.DefaultTimeout)
		if bad.Err != nil || !(App{}).Verify(clean.Outputs[0].Check, bad.Outputs[0].Check) {
			caught = true
			break
		}
	}
	if !caught {
		t.Fatal("no mid-run exponent corruption caught by the checker")
	}
}
