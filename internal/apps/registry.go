package apps

import (
	"fmt"
	"sort"
	"sync"
)

var (
	regMu    sync.RWMutex
	registry = make(map[string]App)
)

// Register adds an application to the global registry.  It panics on
// duplicate names; registration happens from package init functions.
func Register(a App) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[a.Name()]; dup {
		panic(fmt.Sprintf("apps: duplicate registration of %q", a.Name()))
	}
	registry[a.Name()] = a
}

// Lookup returns the registered application with the given name.
func Lookup(name string) (App, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	a, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("apps: unknown application %q (have %v)", name, namesLocked())
	}
	return a, nil
}

// Names returns the registered application names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns every registered application, sorted by name.
func All() []App {
	names := Names()
	out := make([]App, len(names))
	for i, n := range names {
		out[i], _ = Lookup(n)
	}
	return out
}
