package apps

import (
	"math"
	"testing"
	"testing/quick"

	"resmod/internal/fpe"
	"resmod/internal/simmpi"
)

func TestBlock1D(t *testing.T) {
	cases := []struct{ n, p, r, lo, hi int }{
		{64, 4, 0, 0, 16},
		{64, 4, 3, 48, 64},
		{64, 1, 0, 0, 64},
		{128, 64, 63, 126, 128},
	}
	for _, c := range cases {
		lo, hi := Block1D(c.n, c.p, c.r)
		if lo != c.lo || hi != c.hi {
			t.Fatalf("Block1D(%d,%d,%d) = (%d,%d), want (%d,%d)",
				c.n, c.p, c.r, lo, hi, c.lo, c.hi)
		}
	}
}

func TestBlock1DPanicsOnIndivisible(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Block1D(10, 3, 0)
}

// Property: blocks tile [0, n) exactly.
func TestBlock1DTiles(t *testing.T) {
	f := func(pRaw, szRaw uint8) bool {
		p := int(pRaw%16) + 1
		n := p * (int(szRaw%20) + 1)
		prev := 0
		for r := 0; r < p; r++ {
			lo, hi := Block1D(n, p, r)
			if lo != prev || hi <= lo {
				return false
			}
			prev = hi
		}
		return prev == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRelErr(t *testing.T) {
	if RelErr(100, 101, 1e-30) != 0.01 {
		t.Fatalf("RelErr = %g", RelErr(100, 101, 1e-30))
	}
	// Near zero, the floor takes over (absolute comparison).
	if got := RelErr(0, 1e-6, 1e-3); got != 1e-3 {
		t.Fatalf("floored RelErr = %g", got)
	}
}

func TestAllFinite(t *testing.T) {
	if !AllFinite([]float64{1, -2, 0}) {
		t.Fatal("finite slice rejected")
	}
	if AllFinite([]float64{1, math.NaN()}) || AllFinite([]float64{math.Inf(1)}) {
		t.Fatal("non-finite slice accepted")
	}
	if !AllFinite(nil) {
		t.Fatal("empty slice rejected")
	}
}

func TestVerifyRel(t *testing.T) {
	golden := []float64{1, 2, 3}
	if !VerifyRel(golden, []float64{1, 2, 3}, 1e-12) {
		t.Fatal("identical rejected")
	}
	if !VerifyRel(golden, []float64{1 + 1e-10, 2, 3}, 1e-8) {
		t.Fatal("tiny deviation rejected")
	}
	if VerifyRel(golden, []float64{1.1, 2, 3}, 1e-8) {
		t.Fatal("large deviation accepted")
	}
	if VerifyRel(golden, []float64{1, 2}, 1e-8) {
		t.Fatal("length mismatch accepted")
	}
	if VerifyRel(golden, []float64{math.NaN(), 2, 3}, 1e-8) {
		t.Fatal("NaN accepted")
	}
}

func TestHaloExchange1D(t *testing.T) {
	const p = 4
	_, err := simmpi.Run(simmpi.Config{Procs: p}, func(c *simmpi.Comm) error {
		r := c.Rank()
		lo := []float64{float64(10 * r)}
		hi := []float64{float64(10*r + 1)}
		ghLo, ghHi := HaloExchange1D(c, 50, lo, hi)
		if r == 0 && ghLo != nil {
			t.Errorf("rank 0 has a lower ghost")
		}
		if r > 0 && (ghLo == nil || ghLo[0] != float64(10*(r-1)+1)) {
			t.Errorf("rank %d ghLo = %v", r, ghLo)
		}
		if r == p-1 && ghHi != nil {
			t.Errorf("last rank has an upper ghost")
		}
		if r < p-1 && (ghHi == nil || ghHi[0] != float64(10*(r+1))) {
			t.Errorf("rank %d ghHi = %v", r, ghHi)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHaloExchange1DSerial(t *testing.T) {
	_, err := simmpi.Run(simmpi.Config{Procs: 1}, func(c *simmpi.Comm) error {
		lo, hi := HaloExchange1D(c, 50, []float64{1}, []float64{2})
		if lo != nil || hi != nil {
			t.Error("serial halos not nil")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCheckProcsErrors(t *testing.T) {
	a := fakeApp{}
	if err := CheckProcs(a, "x", 3); err == nil {
		t.Fatal("non-power-of-two accepted")
	}
	if err := CheckProcs(a, "x", 16); err == nil {
		t.Fatal("over max accepted")
	}
	if err := CheckProcs(a, "x", 0); err == nil {
		t.Fatal("zero accepted")
	}
	if err := CheckProcs(a, "x", 8); err != nil {
		t.Fatalf("valid procs rejected: %v", err)
	}
}

type fakeApp struct{}

func (fakeApp) Name() string               { return "fake" }
func (fakeApp) Classes() []string          { return []string{"x"} }
func (fakeApp) DefaultClass() string       { return "x" }
func (fakeApp) MaxProcs(string) int        { return 8 }
func (fakeApp) Verify(_, _ []float64) bool { return true }
func (fakeApp) Run(_ *fpe.Ctx, _ *simmpi.Comm, _ string) (RankOutput, error) {
	return RankOutput{}, nil
}
