// Package pennant implements resmod's analog of the PENNANT proxy
// application (LANL): staggered-grid compressible Lagrangian hydrodynamics
// with artificial viscosity, run on the "leblanc" shock-tube problem.
// PENNANT proper is 2-D unstructured; the resmod analog keeps its
// computational pattern — a predictor of zone pressures and viscosities, a
// nodal force/acceleration update, a zone thermodynamic update, and a
// globally reduced CFL time step — on a 1-D staggered mesh, which preserves
// the communication structure that matters for error propagation: halo
// exchange of boundary zones/nodes every cycle plus one allreduce(min) for
// dt that every subsequent computation depends on.
//
// PENNANT has no parallel-unique computation (paper Table 1): boundary
// values are sent directly from the working arrays.
package pennant

import (
	"math"

	"resmod/internal/apps"
	"resmod/internal/fpe"
	"resmod/internal/simmpi"
)

// params describes one problem (PENNANT input-deck analog).
type params struct {
	zones  int     // number of zones (cells)
	steps  int     // fixed cycle count
	gamma  float64 // ideal-gas ratio of specific heats
	cfl    float64
	q1     float64 // quadratic artificial viscosity coefficient
	xmax   float64 // domain [0, xmax]
	xif    float64 // interface position
	rhoL   float64 // left state density
	eL     float64 // left state specific internal energy
	rhoR   float64 // right state density
	eR     float64 // right state specific internal energy
	dtInit float64
	dtGrow float64 // max dt growth per cycle (PENNANT's dtfac)
}

var classes = map[string]params{
	// The leblanc extreme shock tube, PENNANT's hardest standard deck.
	"leblanc": {
		zones: 256, steps: 120, gamma: 5.0 / 3.0, cfl: 0.3, q1: 2.0,
		xmax: 9, xif: 3, rhoL: 1, eL: 0.1, rhoR: 1e-3, eR: 1e-7,
		dtInit: 1e-4, dtGrow: 1.1,
	},
	// The classic Sod shock tube (PENNANT's sodstr deck analog): a milder
	// 1:8 pressure ratio.
	"sod": {
		zones: 256, steps: 100, gamma: 1.4, cfl: 0.3, q1: 2.0,
		xmax: 1, xif: 0.5, rhoL: 1, eL: 2.5, rhoR: 0.125, eR: 2.0,
		dtInit: 1e-5, dtGrow: 1.1,
	},
}

// App is the PENNANT benchmark.
type App struct{}

func init() { apps.Register(App{}) }

// Name returns "PENNANT".
func (App) Name() string { return "PENNANT" }

// Classes returns the supported problem decks.
func (App) Classes() []string { return []string{"leblanc", "sod"} }

// DefaultClass returns "leblanc".
func (App) DefaultClass() string { return "leblanc" }

// MaxProcs returns the largest supported rank count (at least two zones
// per rank).
func (App) MaxProcs(class string) int {
	p, ok := classes[class]
	if !ok {
		return 0
	}
	return p.zones / 2
}

const (
	tagZoneRight = 300 // last zone state sent to the right neighbour
	tagNodeLeft  = 301 // first node state sent to the left neighbour
)

// Run executes the benchmark on this rank.
//
// Mesh ownership: rank r owns zones [zlo, zhi) and nodes [zlo, zhi); the
// global end node (index zones) is the right wall, handled by the last
// rank.  Each cycle exchanges the rank's last zone (P, m) rightward and its
// first node (u, x) leftward.
func (a App) Run(fc *fpe.Ctx, comm *simmpi.Comm, class string) (apps.RankOutput, error) {
	pr, ok := classes[class]
	if !ok {
		return apps.RankOutput{}, &apps.ErrBadProcs{App: "PENNANT", Class: class,
			Procs: comm.Size(), Reason: "unknown class"}
	}
	if err := apps.CheckProcs(a, class, comm.Size()); err != nil {
		return apps.RankOutput{}, err
	}
	rank, p := comm.Rank(), comm.Size()
	zlo, zhi := apps.Block1D(pr.zones, p, rank)
	nz := zhi - zlo

	// Initial mesh and states (setup, uninstrumented, scale-invariant).
	dx0 := pr.xmax / float64(pr.zones)
	x := make([]float64, nz+1) // node positions zlo..zhi (local copy of zhi)
	u := make([]float64, nz+1) // node velocities
	for i := 0; i <= nz; i++ {
		x[i] = float64(zlo+i) * dx0
	}
	rho := make([]float64, nz)
	e := make([]float64, nz)
	m := make([]float64, nz) // fixed Lagrangian zone masses
	for j := 0; j < nz; j++ {
		center := (float64(zlo+j) + 0.5) * dx0
		if center < pr.xif {
			rho[j], e[j] = pr.rhoL, pr.eL
		} else {
			rho[j], e[j] = pr.rhoR, pr.eR
		}
		m[j] = rho[j] * dx0
	}

	// exchangeNode refreshes the ghost node (u, x) at local index nz from
	// the right neighbour's first owned node.
	exchangeNode := func() {
		if rank > 0 {
			comm.Send(rank-1, tagNodeLeft, []float64{u[0], x[0]})
		}
		if rank < p-1 {
			g := comm.Recv(rank+1, tagNodeLeft)
			u[nz], x[nz] = g[0], g[1]
		}
	}
	exchangeNode() // establish the initial ghost

	press := make([]float64, nz) // p + q per zone
	dt := pr.dtInit
	for step := 0; step < pr.steps; step++ {
		// --- zone pressures and artificial viscosity --------------------
		var dtLocal float64 = math.Inf(1)
		for j := 0; j < nz; j++ {
			dxj := fc.Sub(x[j+1], x[j])
			rho[j] = fc.Div(m[j], dxj)
			pj := fc.Mul(fc.Mul(pr.gamma-1, rho[j]), e[j])
			du := fc.Sub(u[j+1], u[j])
			var qj float64
			if du < 0 { // compression: quadratic von Neumann-Richtmyer q
				qj = fc.Mul(fc.Mul(pr.q1, rho[j]), fc.Mul(du, du))
			}
			press[j] = fc.Add(pj, qj)
			cs := math.Sqrt(fc.Div(fc.Mul(pr.gamma, pj), rho[j]))
			rate := fc.Add(cs, math.Abs(du))
			if rate > 0 {
				cand := fc.Div(fc.Mul(pr.cfl, dxj), rate)
				if cand < dtLocal {
					dtLocal = cand
				}
			}
		}
		// --- global time step -------------------------------------------
		grown := fc.Mul(dt, pr.dtGrow)
		if grown < dtLocal {
			dtLocal = grown
		}
		dt = comm.AllreduceValue(simmpi.OpMin, dtLocal)

		// --- nodal acceleration and motion -------------------------------
		// Needs the ghost zone (P, m) at zlo-1 from the left neighbour.
		var ghZoneP, ghZoneM float64
		if rank < p-1 {
			comm.Send(rank+1, tagZoneRight, []float64{press[nz-1], m[nz-1]})
		}
		if rank > 0 {
			g := comm.Recv(rank-1, tagZoneRight)
			ghZoneP, ghZoneM = g[0], g[1]
		}
		for i := 0; i < nz; i++ {
			gi := zlo + i
			if gi == 0 {
				u[0] = 0 // left wall
				continue
			}
			var pL, mL float64
			if i == 0 {
				pL, mL = ghZoneP, ghZoneM
			} else {
				pL, mL = press[i-1], m[i-1]
			}
			nodalMass := fc.Mul(0.5, fc.Add(mL, m[i]))
			accel := fc.Div(fc.Sub(pL, press[i]), nodalMass)
			u[i] = fc.Add(u[i], fc.Mul(dt, accel))
		}
		// Right wall: the last rank pins the global end node (which it
		// stores as its ghost slot) and moves it (a no-op for u=0).
		if rank == p-1 {
			u[nz] = 0
		}
		// Move the owned nodes; the last rank also moves the wall node.
		top := nz - 1
		if rank == p-1 {
			top = nz
		}
		for i := 0; i <= top; i++ {
			x[i] = fc.Add(x[i], fc.Mul(dt, u[i]))
		}
		// Refresh the ghost node with the owner's post-motion state so this
		// cycle's zone update (and the next cycle's pressures) see it.
		exchangeNode()

		// --- zone thermodynamic update ------------------------------------
		for j := 0; j < nz; j++ {
			dvol := fc.Mul(dt, fc.Sub(u[j+1], u[j])) // d(dx) = du*dt
			// de = -P dV / m (work done by total pressure).
			de := fc.Div(fc.Mul(press[j], dvol), m[j])
			e[j] = fc.Sub(e[j], de)
			if e[j] < 1e-12 {
				e[j] = 1e-12 // floor against viscosity overshoot
			}
		}
	}

	// Verification: total internal and kinetic energy (conserved up to
	// viscous transfer and wall work), reduced globally.  The nodal mass of
	// a rank's first node needs the left neighbour's last zone mass so the
	// energy accounting is identical at every scale.
	var ghMass float64
	if rank < p-1 {
		comm.SendValue(rank+1, tagZoneRight, m[nz-1])
	}
	if rank > 0 {
		ghMass = comm.RecvValue(rank-1, tagZoneRight)
	}
	var eint, ekin float64
	for j := 0; j < nz; j++ {
		eint = fc.Add(eint, fc.Mul(m[j], e[j]))
	}
	for i := 0; i < nz; i++ {
		gi := zlo + i
		var mn float64
		switch {
		case gi == 0:
			mn = m[0] // the wall node owns only its right zone's half... kept as m[0] since u=0 there anyway
		case i == 0:
			mn = fc.Mul(0.5, fc.Add(ghMass, m[0]))
		default:
			mn = fc.Mul(0.5, fc.Add(m[i-1], m[i]))
		}
		ekin = fc.Add(ekin, fc.Mul(fc.Mul(0.5, mn), fc.Mul(u[i], u[i])))
	}
	tot := comm.Allreduce(simmpi.OpSum, []float64{eint, ekin})

	state := make([]float64, 0, 2*nz+nz+1)
	state = append(state, rho...)
	state = append(state, e...)
	state = append(state, u[:nz]...)
	return apps.RankOutput{State: state, Check: []float64{tot[0], tot[1]}}, nil
}

// Verify implements the PENNANT checker: the final energy accounting must
// match the fault-free run within tolerance.
func (App) Verify(golden, check []float64) bool {
	return apps.VerifyRel(golden, check, 1e-8)
}
