package pennant

import (
	"math"
	"testing"

	"resmod/internal/apps"
	"resmod/internal/apps/apptest"
	"resmod/internal/fpe"
)

func TestConformance(t *testing.T) {
	apptest.Conformance(t, App{}, apptest.Options{
		Procs:      []int{2, 4, 8},
		WantUnique: false,
	})
}

func TestShockDevelops(t *testing.T) {
	res := apps.Execute(App{}, "leblanc", 1, nil, apps.DefaultTimeout)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	pr := classes["leblanc"]
	state := res.Outputs[0].State
	rho := state[:pr.zones]
	e := state[pr.zones : 2*pr.zones]
	u := state[2*pr.zones:]
	if !apps.AllFinite(state) {
		t.Fatal("state contains NaN/Inf")
	}
	// The rarefaction must have lowered the density somewhere on the left.
	minRhoLeft := math.Inf(1)
	for j := 0; j < pr.zones/3; j++ {
		if rho[j] < minRhoLeft {
			minRhoLeft = rho[j]
		}
	}
	if minRhoLeft >= pr.rhoL {
		t.Fatalf("no rarefaction: min left density %g", minRhoLeft)
	}
	// Material must be moving rightward somewhere (the shock/contact).
	maxU := 0.0
	for _, v := range u {
		if v > maxU {
			maxU = v
		}
	}
	if maxU <= 0.01 {
		t.Fatalf("no rightward motion: max u = %g", maxU)
	}
	// Energies positive everywhere.
	for j, ej := range e {
		if ej <= 0 {
			t.Fatalf("zone %d has non-positive energy %g", j, ej)
		}
	}
}

func TestEnergyAccountingSane(t *testing.T) {
	// Total energy (internal + kinetic) must stay within a factor of the
	// initial internal energy (the scheme adds viscous dissipation but no
	// spurious energy source).
	res := apps.Execute(App{}, "leblanc", 1, nil, apps.DefaultTimeout)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	pr := classes["leblanc"]
	dx0 := pr.xmax / float64(pr.zones)
	var e0 float64
	for j := 0; j < pr.zones; j++ {
		center := (float64(j) + 0.5) * dx0
		if center < pr.xif {
			e0 += pr.rhoL * dx0 * pr.eL
		} else {
			e0 += pr.rhoR * dx0 * pr.eR
		}
	}
	eint, ekin := res.Outputs[0].Check[0], res.Outputs[0].Check[1]
	tot := eint + ekin
	if tot <= 0 || tot > 1.2*e0 || tot < 0.5*e0 {
		t.Fatalf("total energy %g vs initial %g: accounting broken", tot, e0)
	}
	if ekin <= 0 {
		t.Fatalf("kinetic energy %g: nothing moved", ekin)
	}
}

func TestSerialParallelBitIdenticalState(t *testing.T) {
	// The min-reduction for dt is exact and per-point updates use the same
	// inputs in the same order, so parallel state reassembles to the serial
	// state bit-for-bit.
	ser := apps.Execute(App{}, "leblanc", 1, nil, apps.DefaultTimeout)
	if ser.Err != nil {
		t.Fatal(ser.Err)
	}
	const p = 4
	par := apps.Execute(App{}, "leblanc", p, nil, apps.DefaultTimeout)
	if par.Err != nil {
		t.Fatal(par.Err)
	}
	pr := classes["leblanc"]
	nzLoc := pr.zones / p
	// Reassemble each field from the per-rank layouts.
	for r := 0; r < p; r++ {
		st := par.Outputs[r].State
		for j := 0; j < nzLoc; j++ {
			gj := r*nzLoc + j
			if math.Float64bits(st[j]) != math.Float64bits(ser.Outputs[0].State[gj]) {
				t.Fatalf("rho differs at zone %d (rank %d)", gj, r)
			}
			if math.Float64bits(st[nzLoc+j]) != math.Float64bits(ser.Outputs[0].State[pr.zones+gj]) {
				t.Fatalf("e differs at zone %d (rank %d)", gj, r)
			}
			if math.Float64bits(st[2*nzLoc+j]) != math.Float64bits(ser.Outputs[0].State[2*pr.zones+gj]) {
				t.Fatalf("u differs at node %d (rank %d)", gj, r)
			}
		}
	}
}

func TestInjectionIntoDtPropagatesEverywhere(t *testing.T) {
	// dt is a global value: corrupting computation that feeds it (early,
	// catastrophically) must corrupt the checker values.
	clean := apps.Execute(App{}, "leblanc", 1, nil, apps.DefaultTimeout)
	if clean.Err != nil {
		t.Fatal(clean.Err)
	}
	total := clean.Ctxs[0].Counts().Common
	caught := false
	for _, frac := range []uint64{1, 2, 3} {
		bad := apps.Execute(App{}, "leblanc", 1, map[int][]fpe.Injection{
			0: {{Class: fpe.Common, Index: total * frac / 8, Bit: 62, Operand: 0}},
		}, apps.DefaultTimeout)
		if bad.Err != nil || !(App{}).Verify(clean.Outputs[0].Check, bad.Outputs[0].Check) {
			caught = true
			break
		}
	}
	if !caught {
		t.Fatal("no early exponent corruption caught")
	}
}

func TestConformanceSod(t *testing.T) {
	if testing.Short() {
		t.Skip("extra deck skipped in -short mode")
	}
	apptest.Conformance(t, App{}, apptest.Options{
		Class:      "sod",
		Procs:      []int{4},
		WantUnique: false,
	})
}
