// Package apps defines the benchmark application interface of resmod and
// shared numerical helpers.  The six applications the paper evaluates —
// NPB CG, FT, MG and LU, plus the MiniFE and PENNANT proxy apps — live in
// subpackages and register themselves here.
//
// Every application obeys the paper's assumptions on "common HPC
// applications" (§2): serial and parallel executions of a given problem
// class run the same numerical algorithm on the same input (strong
// scaling), and all ranks perform the same computation.  Applications
// route every floating-point operation through the per-rank *fpe.Ctx so
// the harness can inject single-bit faults, and annotate parallel-unique
// computation (paper Observation 1) with fpe regions.
package apps

import (
	"fmt"
	"math"

	"resmod/internal/fpe"
	"resmod/internal/simmpi"
)

// RankOutput is what one rank produces at the end of a run.
type RankOutput struct {
	// State is the rank's final local state vector.  The harness compares
	// it bit-for-bit against the golden run's to decide whether this rank
	// was contaminated (paper §3.2).
	State []float64
	// Check holds the application's verification values (residual norms,
	// checksums, ...).  Only rank 0's Check is meaningful; it feeds the
	// application "checker" that separates Success from SDC (paper §2).
	Check []float64
}

// App is one benchmark application.
type App interface {
	// Name returns the benchmark's short name ("CG", "FT", ...).
	Name() string
	// Classes returns the supported problem classes, smallest first.
	Classes() []string
	// DefaultClass returns the class used when none is specified.
	DefaultClass() string
	// MaxProcs returns the largest rank count the class's decomposition
	// supports.  Valid rank counts are the powers of two up to it.
	MaxProcs(class string) int
	// Run executes the rank's share of the computation.  comm.Size()==1 is
	// the serial execution.  All floating point math must flow through fc.
	Run(fc *fpe.Ctx, comm *simmpi.Comm, class string) (RankOutput, error)
	// Verify implements the application checker: it reports whether the
	// verification values of a (possibly faulty) run are acceptable
	// relative to the fault-free golden values.
	Verify(golden, check []float64) bool
}

// ErrBadProcs reports an unsupported rank count for a class.
type ErrBadProcs struct {
	App    string
	Class  string
	Procs  int
	Max    int
	Reason string
}

func (e *ErrBadProcs) Error() string {
	return fmt.Sprintf("apps: %s class %s cannot run on %d ranks (max %d): %s",
		e.App, e.Class, e.Procs, e.Max, e.Reason)
}

// CheckProcs validates that procs is a power of two between 1 and
// app.MaxProcs(class).
func CheckProcs(app App, class string, procs int) error {
	max := app.MaxProcs(class)
	if procs < 1 || procs > max {
		return &ErrBadProcs{App: app.Name(), Class: class, Procs: procs, Max: max,
			Reason: "out of range"}
	}
	if procs&(procs-1) != 0 {
		return &ErrBadProcs{App: app.Name(), Class: class, Procs: procs, Max: max,
			Reason: "not a power of two"}
	}
	return nil
}

// Block1D returns the [lo, hi) row range of rank r in an equal 1-D block
// decomposition of n items over p ranks.  It panics if n is not divisible
// by p — applications size their grids so every supported rank count
// divides them (strong scaling with identical per-rank computation).
func Block1D(n, p, r int) (lo, hi int) {
	if p <= 0 || n%p != 0 {
		panic(fmt.Sprintf("apps: Block1D: n=%d not divisible by p=%d", n, p))
	}
	sz := n / p
	return r * sz, (r + 1) * sz
}

// RelErr returns |got-want| / max(|want|, floor): a relative error that
// degrades gracefully to absolute near zero.
func RelErr(want, got, floor float64) float64 {
	d := math.Abs(got - want)
	m := math.Abs(want)
	if m < floor {
		m = floor
	}
	return d / m
}

// AllFinite reports whether every value is neither NaN nor Inf.
func AllFinite(xs []float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// VerifyRel is the common checker shape: every check value must be finite
// and within relative tolerance tol of the golden value.
func VerifyRel(golden, check []float64, tol float64) bool {
	if len(golden) != len(check) {
		return false
	}
	if !AllFinite(check) {
		return false
	}
	for i := range golden {
		if RelErr(golden[i], check[i], 1e-30) > tol {
			return false
		}
	}
	return true
}

// HaloExchange1D exchanges boundary planes with the ring neighbours in a
// 1-D decomposition: sendLo goes to rank-1, sendHi to rank+1; the returned
// slices are the planes received from rank-1 (ghostLo) and rank+1
// (ghostHi).  At the domain ends the corresponding ghost is nil.
// Tags must be below the collective tag space.
func HaloExchange1D(comm *simmpi.Comm, tag int, sendLo, sendHi []float64) (ghostLo, ghostHi []float64) {
	r, p := comm.Rank(), comm.Size()
	if p == 1 {
		return nil, nil
	}
	// Send both directions first (buffered), then receive: deadlock-free.
	if r > 0 {
		comm.Send(r-1, tag, sendLo)
	}
	if r < p-1 {
		comm.Send(r+1, tag+1, sendHi)
	}
	if r > 0 {
		ghostLo = comm.Recv(r-1, tag+1)
	}
	if r < p-1 {
		ghostHi = comm.Recv(r+1, tag)
	}
	return ghostLo, ghostHi
}
