// Package ep implements the NPB EP benchmark: generating pairs of
// Gaussian deviates by the Marsaglia polar method from NPB's linear
// congruential sequence (a = 5^13, modulus 2^46) and tallying them into
// square annuli, with a single allreduce at the very end (NAS Parallel
// Benchmarks 3.3, kernel EP).
//
// EP is resmod's extension benchmark beyond the paper's six applications:
// it is *embarrassingly parallel* — ranks never communicate until the
// terminal reduction — so an injected error can contaminate only the rank
// it strikes.  Its propagation histogram is a single spike at one rank at
// every scale, the degenerate case of the paper's Observation 3, and a
// useful calibration point for the model (r'_1 = 1, so the prediction
// reduces to the serial single-error result).
package ep

import (
	"math"

	"resmod/internal/apps"
	"resmod/internal/fpe"
	"resmod/internal/simmpi"
)

// params describes one problem class.
type params struct {
	pairs int    // number of random pairs (NPB: 2^M)
	seed  uint64 // LCG seed (NPB: 271828183)
}

var classes = map[string]params{
	"S": {pairs: 1 << 14, seed: 271828183},
}

// NPB's multiplicative congruential generator: x_{k+1} = a*x_k mod 2^46.
const (
	lcgA   uint64 = 1220703125 // 5^13
	lcgMod uint64 = 1 << 46
	lcgMsk uint64 = lcgMod - 1
)

// App is the EP benchmark.
type App struct{}

func init() { apps.Register(App{}) }

// Name returns "EP".
func (App) Name() string { return "EP" }

// Classes returns the supported problem classes.
func (App) Classes() []string { return []string{"S"} }

// DefaultClass returns "S".
func (App) DefaultClass() string { return "S" }

// MaxProcs returns the largest supported rank count.
func (App) MaxProcs(class string) int { return 128 }

// lcgPow returns a^e mod 2^46 by binary exponentiation — NPB EP's log-time
// jump-ahead that lets every rank start its block of the global sequence
// without generating its predecessors.
func lcgPow(a uint64, e uint64) uint64 {
	result := uint64(1)
	base := a & lcgMsk
	for e > 0 {
		if e&1 == 1 {
			result = (result * base) & lcgMsk
		}
		base = (base * base) & lcgMsk
		e >>= 1
	}
	return result
}

// lcgAt returns the k-th element of the sequence starting from seed.
func lcgAt(seed, k uint64) uint64 {
	return (lcgPow(lcgA, k) * seed) & lcgMsk
}

// Run executes the benchmark on this rank.
func (a App) Run(fc *fpe.Ctx, comm *simmpi.Comm, class string) (apps.RankOutput, error) {
	pr, ok := classes[class]
	if !ok {
		return apps.RankOutput{}, &apps.ErrBadProcs{App: "EP", Class: class,
			Procs: comm.Size(), Reason: "unknown class"}
	}
	if err := apps.CheckProcs(a, class, comm.Size()); err != nil {
		return apps.RankOutput{}, err
	}
	lo, hi := apps.Block1D(pr.pairs, comm.Size(), comm.Rank())

	// Jump the generator to this rank's block (setup, uninstrumented —
	// integer arithmetic, like NPB's vranlc bookkeeping).
	x := lcgAt(pr.seed, uint64(2*lo))
	next := func() float64 {
		x = (x * lcgA) & lcgMsk
		return float64(x) / float64(lcgMod)
	}

	var sx, sy float64
	var q [10]float64
	for k := lo; k < hi; k++ {
		// Two uniforms in (-1, 1).
		u1 := fc.Sub(fc.Mul(2, next()), 1)
		u2 := fc.Sub(fc.Mul(2, next()), 1)
		t := fc.Add(fc.Mul(u1, u1), fc.Mul(u2, u2))
		if t > 1 || t == 0 {
			continue // rejected pair
		}
		f := math.Sqrt(fc.Div(fc.Mul(-2, math.Log(t)), t))
		gx := fc.Mul(u1, f)
		gy := fc.Mul(u2, f)
		sx = fc.Add(sx, gx)
		sy = fc.Add(sy, gy)
		l := int(math.Max(math.Abs(gx), math.Abs(gy)))
		if l > 9 {
			l = 9
		}
		q[l] = fc.Add(q[l], 1)
	}

	// The only communication EP performs: the terminal reductions.
	local := append([]float64{sx, sy}, q[:]...)
	global := comm.Allreduce(simmpi.OpSum, local)

	state := make([]float64, len(local))
	copy(state, local)
	return apps.RankOutput{State: state, Check: global}, nil
}

// Verify implements the NPB EP checker: the Gaussian sums and annulus
// counts must match the fault-free values within tolerance.
func (App) Verify(golden, check []float64) bool {
	return apps.VerifyRel(golden, check, 1e-8)
}
