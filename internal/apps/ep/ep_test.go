package ep

import (
	"math"
	"testing"

	"resmod/internal/apps"
	"resmod/internal/apps/apptest"
	"resmod/internal/faultsim"
)

func TestConformance(t *testing.T) {
	apptest.Conformance(t, App{}, apptest.Options{
		Procs:      []int{2, 4, 8},
		WantUnique: false,
	})
}

func TestLCGJumpMatchesSequential(t *testing.T) {
	// lcgAt must equal stepping the generator k times.
	x := uint64(271828183)
	for k := uint64(0); k < 200; k++ {
		if got := lcgAt(271828183, k); got != x {
			t.Fatalf("lcgAt(%d) = %d, want %d", k, got, x)
		}
		x = (x * lcgA) & lcgMsk
	}
}

func TestLcgPowIdentities(t *testing.T) {
	if lcgPow(lcgA, 0) != 1 {
		t.Fatal("a^0 != 1")
	}
	if lcgPow(lcgA, 1) != lcgA {
		t.Fatal("a^1 != a")
	}
	// a^(m+n) == a^m * a^n mod 2^46.
	m, n := uint64(12345), uint64(6789)
	lhs := lcgPow(lcgA, m+n)
	rhs := (lcgPow(lcgA, m) * lcgPow(lcgA, n)) & lcgMsk
	if lhs != rhs {
		t.Fatalf("exponent law violated: %d vs %d", lhs, rhs)
	}
}

func TestGaussianMoments(t *testing.T) {
	// The accepted deviates are standard normal: the sums over ~10k pairs
	// divided by the count should be near zero, and nearly all samples in
	// the first few annuli.
	res := apps.Execute(App{}, "S", 1, nil, apps.DefaultTimeout)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	check := res.Outputs[0].Check
	sx, sy := check[0], check[1]
	var total float64
	for _, c := range check[2:] {
		total += c
	}
	if total < float64(classes["S"].pairs)/2 {
		t.Fatalf("acceptance too low: %g of %d", total, classes["S"].pairs)
	}
	if math.Abs(sx)/total > 0.05 || math.Abs(sy)/total > 0.05 {
		t.Fatalf("sample means too large: %g %g over %g", sx, sy, total)
	}
	// max(|X|,|Y|) < 1 with probability ~0.68^2 ~ 0.47.
	if check[2] < 0.4*total || check[2] > 0.55*total {
		t.Fatalf("annulus 0 has %g of %g", check[2], total)
	}
}

func TestNoPropagationBeyondInjectedRank(t *testing.T) {
	// EP's defining property: every completed test contaminates exactly
	// one rank (or zero, recorded as one).
	sum, err := faultsim.Run(faultsim.Campaign{
		App: App{}, Procs: 8, Trials: 40, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	probs := sum.Hist.Probabilities()
	if probs[0] < 0.999 {
		t.Fatalf("EP propagation profile not a single spike: %v", probs)
	}
}
