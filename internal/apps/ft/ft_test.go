package ft

import (
	"math"
	"testing"
	"testing/quick"

	"resmod/internal/apps"
	"resmod/internal/apps/apptest"
	"resmod/internal/fpe"
)

func TestConformance(t *testing.T) {
	apptest.Conformance(t, App{}, apptest.Options{
		Procs:             []int{2, 4, 8},
		WantUnique:        true,
		MaxUniqueFraction: 0.25,
	})
}

// naiveDFT is the O(n^2) reference transform.
func naiveDFT(re, im []float64, inverse bool) ([]float64, []float64) {
	n := len(re)
	outRe := make([]float64, n)
	outIm := make([]float64, n)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			ang := sign * 2 * math.Pi * float64(k*j) / float64(n)
			c, s := math.Cos(ang), math.Sin(ang)
			outRe[k] += re[j]*c - im[j]*s
			outIm[k] += re[j]*s + im[j]*c
		}
	}
	return outRe, outIm
}

func TestFFT1DMatchesNaiveDFT(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16, 64} {
		re := make([]float64, n)
		im := make([]float64, n)
		for i := range re {
			re[i] = math.Sin(float64(i)*1.3) + 0.2
			im[i] = math.Cos(float64(i) * 0.7)
		}
		wantRe, wantIm := naiveDFT(re, im, false)
		tw := makeTwiddles(n)
		fft1d(fpe.New(), tw, re, im, 0, 1, n, false)
		for i := 0; i < n; i++ {
			if math.Abs(re[i]-wantRe[i]) > 1e-9 || math.Abs(im[i]-wantIm[i]) > 1e-9 {
				t.Fatalf("n=%d: fft[%d] = (%g,%g), want (%g,%g)",
					n, i, re[i], im[i], wantRe[i], wantIm[i])
			}
		}
	}
}

func TestFFTRoundTripProperty(t *testing.T) {
	f := func(raw [16]int8) bool {
		n := 16
		re := make([]float64, n)
		im := make([]float64, n)
		orig := make([]float64, n)
		for i := range re {
			re[i] = float64(raw[i]) / 16
			orig[i] = re[i]
		}
		fc := fpe.New()
		tw := makeTwiddles(n)
		fft1d(fc, tw, re, im, 0, 1, n, false)
		fft1d(fc, tw, re, im, 0, 1, n, true)
		for i := range re {
			if math.Abs(re[i]/float64(n)-orig[i]) > 1e-9 || math.Abs(im[i]/float64(n)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFFTStridedEqualsContiguous(t *testing.T) {
	// The serial z-FFT runs strided; it must compute exactly what a
	// contiguous FFT computes (this is what makes serial and parallel
	// common computation identical).
	const n, stride = 8, 5
	reS := make([]float64, n*stride)
	imS := make([]float64, n*stride)
	reC := make([]float64, n)
	imC := make([]float64, n)
	for i := 0; i < n; i++ {
		v := math.Sin(float64(i) * 2.1)
		w := math.Cos(float64(i) * 1.1)
		reS[i*stride], imS[i*stride] = v, w
		reC[i], imC[i] = v, w
	}
	tw := makeTwiddles(n)
	fft1d(fpe.New(), tw, reS, imS, 0, stride, n, false)
	fft1d(fpe.New(), tw, reC, imC, 0, 1, n, false)
	for i := 0; i < n; i++ {
		if math.Float64bits(reS[i*stride]) != math.Float64bits(reC[i]) ||
			math.Float64bits(imS[i*stride]) != math.Float64bits(imC[i]) {
			t.Fatalf("strided and contiguous FFT differ at %d", i)
		}
	}
}

func TestParsevalEnergyConservation(t *testing.T) {
	const n = 64
	re := make([]float64, n)
	im := make([]float64, n)
	var spatial float64
	for i := range re {
		re[i] = math.Sin(float64(i))
		spatial += re[i] * re[i]
	}
	tw := makeTwiddles(n)
	fft1d(fpe.New(), tw, re, im, 0, 1, n, false)
	var spectral float64
	for i := range re {
		spectral += re[i]*re[i] + im[i]*im[i]
	}
	if math.Abs(spectral/float64(n)-spatial) > 1e-9 {
		t.Fatalf("Parseval violated: spatial=%g spectral/n=%g", spatial, spectral/float64(n))
	}
}

func TestHashInitScaleIndependent(t *testing.T) {
	// The same global index must give the same value regardless of which
	// rank computes it (same input at every scale).
	a1, b1 := hashInit(7, 12345)
	a2, b2 := hashInit(7, 12345)
	if a1 != a2 || b1 != b2 {
		t.Fatal("hashInit not deterministic")
	}
	a3, _ := hashInit(7, 12346)
	if a1 == a3 {
		t.Fatal("hashInit ignores index")
	}
	if a1 < 0 || a1 >= 1 || b1 < 0 || b1 >= 1 {
		t.Fatalf("hashInit out of range: %g %g", a1, b1)
	}
}

func TestKbar2Folding(t *testing.T) {
	// kbar2 folds frequencies above n/2 to negative wavenumbers.
	if kbar2(0, 64) != 0 || kbar2(1, 64) != 1 || kbar2(63, 64) != 1 || kbar2(32, 64) != 1024 {
		t.Fatalf("kbar2 folding wrong: %g %g %g %g",
			kbar2(0, 64), kbar2(1, 64), kbar2(63, 64), kbar2(32, 64))
	}
}

func TestSerialParallelChecksumAgreement(t *testing.T) {
	ser := apps.Execute(App{}, "S", 1, nil, apps.DefaultTimeout)
	if ser.Err != nil {
		t.Fatal(ser.Err)
	}
	par := apps.Execute(App{}, "S", 4, nil, apps.DefaultTimeout)
	if par.Err != nil {
		t.Fatal(par.Err)
	}
	sc, pc := ser.Outputs[0].Check, par.Outputs[0].Check
	if len(sc) != len(pc) || len(sc) != 2*classes["S"].iters {
		t.Fatalf("check lengths: %d vs %d", len(sc), len(pc))
	}
	for i := range sc {
		if apps.RelErr(sc[i], pc[i], 1e-30) > 1e-12 {
			t.Fatalf("checksum %d: serial %g vs parallel %g", i, sc[i], pc[i])
		}
	}
}

func TestUniqueFractionInPaperRange(t *testing.T) {
	// Table 1 shows FT's parallel-unique computation is large (roughly
	// 10-18% of the execution).  Our op-count proxy should land near that.
	par := apps.Execute(App{}, "S", 4, nil, apps.DefaultTimeout)
	if par.Err != nil {
		t.Fatal(par.Err)
	}
	var total fpe.Counts
	for _, c := range par.Ctxs {
		cc := c.Counts()
		total.Common += cc.Common
		total.Unique += cc.Unique
	}
	f := total.UniqueFraction()
	if f < 0.05 || f > 0.25 {
		t.Fatalf("FT unique fraction = %.3f, want within [0.05, 0.25]", f)
	}
}

func TestEvolveDampsChecksum(t *testing.T) {
	// The Gaussian evolution damps high frequencies, so successive
	// checksums change monotonically in magnitude trendwise; at minimum
	// they must differ between iterations (the run is actually evolving).
	res := apps.Execute(App{}, "S", 1, nil, apps.DefaultTimeout)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	c := res.Outputs[0].Check
	if c[0] == c[2] && c[1] == c[3] {
		t.Fatal("checksums identical across iterations; evolution not applied")
	}
}
