// Package ft implements the NPB FT benchmark: the time evolution of a 3-D
// partial differential equation solved spectrally.  The initial state is
// transformed once with a forward 3-D FFT; each time step scales the
// spectrum by Gaussian evolution factors and applies an inverse 3-D FFT,
// after which a strided checksum of the spatial field is accumulated
// (NAS Parallel Benchmarks 3.3, kernel FT).
//
// Parallel decomposition: 1-D slab.  Spatial data is distributed along z;
// the x- and y-direction FFTs are local, and a global transpose (alltoall)
// redistributes the array along x so the z-direction FFT becomes local —
// exactly the NPB FT transpose algorithm.  The transpose's pack and unpack
// stages are the benchmark's parallel-unique computation, which the paper's
// Table 1 shows is FT's distinguishing feature (10-18% of the execution):
// resmod instruments each staged element move so that, like a load/store
// operand in the binary-level injector, it can be struck by a bit flip.
//
// The serial execution performs the identical FFT arithmetic but runs the
// z-direction FFTs strided in place, with no transpose — the common
// computation is bit-comparable across scales while the parallel-unique
// computation exists only in parallel runs (paper Observation 1).
package ft

import (
	"math"

	"resmod/internal/apps"
	"resmod/internal/fpe"
	"resmod/internal/simmpi"
)

// params describes one problem class.
type params struct {
	nx, ny, nz int
	iters      int
	alpha      float64
	seed       uint64
	checkN     int // checksum sample count
}

var classes = map[string]params{
	"S": {nx: 64, ny: 2, nz: 64, iters: 3, alpha: 1e-6, seed: 0xF7_5, checkN: 512},
	"B": {nx: 128, ny: 2, nz: 128, iters: 2, alpha: 1e-6, seed: 0xF7_B, checkN: 512},
}

// App is the FT benchmark.
type App struct{}

func init() { apps.Register(App{}) }

// Name returns "FT".
func (App) Name() string { return "FT" }

// Classes returns the supported problem classes.
func (App) Classes() []string { return []string{"S", "B"} }

// DefaultClass returns "S".
func (App) DefaultClass() string { return "S" }

// MaxProcs returns the largest supported rank count: both the z and x
// dimensions must divide evenly among the ranks for the slab transpose.
func (App) MaxProcs(class string) int {
	p, ok := classes[class]
	if !ok {
		return 0
	}
	if p.nx < p.nz {
		return p.nx
	}
	return p.nz
}

// twiddles holds the per-stage twiddle factor tables for one FFT length:
// tw[s][j] is exp(-2*pi*i * j / 2^(s+1)) for j < 2^s.
type twiddles struct {
	re, im [][]float64
}

func makeTwiddles(n int) *twiddles {
	t := &twiddles{}
	for half := 1; half < n; half <<= 1 {
		re := make([]float64, half)
		im := make([]float64, half)
		for j := 0; j < half; j++ {
			ang := -math.Pi * float64(j) / float64(half)
			re[j] = math.Cos(ang)
			im[j] = math.Sin(ang)
		}
		t.re = append(t.re, re)
		t.im = append(t.im, im)
	}
	return t
}

// fft1d runs an in-place radix-2 FFT over the n elements at
// offset, offset+stride, ... of (re, im).  inverse selects the conjugate
// transform (without the 1/n scaling, applied separately).
// All butterfly arithmetic is instrumented.
func fft1d(fc *fpe.Ctx, tw *twiddles, re, im []float64, offset, stride, n int, inverse bool) {
	// Bit-reversal permutation (data movement inside the FFT kernel is part
	// of the common computation; it has no FP arithmetic).
	for i, j := 0, 0; i < n; i++ {
		if i < j {
			a, b := offset+i*stride, offset+j*stride
			re[a], re[b] = re[b], re[a]
			im[a], im[b] = im[b], im[a]
		}
		mask := n >> 1
		for j&mask != 0 {
			j &^= mask
			mask >>= 1
		}
		j |= mask
	}
	stage := 0
	for half := 1; half < n; half <<= 1 {
		twRe, twIm := tw.re[stage], tw.im[stage]
		for start := 0; start < n; start += half << 1 {
			for j := 0; j < half; j++ {
				wr, wi := twRe[j], twIm[j]
				if inverse {
					wi = -wi
				}
				a := offset + (start+j)*stride
				b := offset + (start+j+half)*stride
				// v = w * x[b]
				vr := fc.Sub(fc.Mul(wr, re[b]), fc.Mul(wi, im[b]))
				vi := fc.Add(fc.Mul(wr, im[b]), fc.Mul(wi, re[b]))
				// butterfly
				re[b] = fc.Sub(re[a], vr)
				im[b] = fc.Sub(im[a], vi)
				re[a] = fc.Add(re[a], vr)
				im[a] = fc.Add(im[a], vi)
			}
		}
		stage++
	}
}

// hashInit returns the deterministic initial value pair for global element
// index gidx — identical at every scale (strong scaling: same input).
func hashInit(seed, gidx uint64) (float64, float64) {
	x := seed + gidx*0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	a := float64(z>>11) / (1 << 53)
	z = (z ^ (z >> 29)) * 0xff51afd7ed558ccd
	z ^= z >> 32
	b := float64(z>>11) / (1 << 53)
	return a, b
}

// field is a rank's share of the complex 3-D array in one of two layouts.
type field struct {
	re, im []float64
}

// Run executes the benchmark on this rank.
func (a App) Run(fc *fpe.Ctx, comm *simmpi.Comm, class string) (apps.RankOutput, error) {
	pr, ok := classes[class]
	if !ok {
		return apps.RankOutput{}, &apps.ErrBadProcs{App: "FT", Class: class, Procs: comm.Size(),
			Reason: "unknown class"}
	}
	if err := apps.CheckProcs(a, class, comm.Size()); err != nil {
		return apps.RankOutput{}, err
	}
	p := comm.Size()
	nx, ny, nz := pr.nx, pr.ny, pr.nz
	zlo, zhi := apps.Block1D(nz, p, comm.Rank())
	xlo, xhi := apps.Block1D(nx, p, comm.Rank())
	nzLoc, nxLoc := zhi-zlo, xhi-xlo

	twX := makeTwiddles(nx)
	twY := makeTwiddles(ny)
	twZ := makeTwiddles(nz)

	// Spatial layout (z-distributed): idx = (z-zlo)*ny*nx + y*nx + x.
	spatial := field{re: make([]float64, nzLoc*ny*nx), im: make([]float64, nzLoc*ny*nx)}
	for z := zlo; z < zhi; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				g := uint64((z*ny+y)*nx + x)
				r, i := hashInit(pr.seed, g)
				l := ((z-zlo)*ny+y)*nx + x
				spatial.re[l] = r
				spatial.im[l] = i
			}
		}
	}

	serial := p == 1

	// ---- forward 3-D FFT --------------------------------------------------
	// x and y direction FFTs are always local to the z-distributed layout.
	for z := 0; z < nzLoc; z++ {
		for y := 0; y < ny; y++ {
			fft1d(fc, twX, spatial.re, spatial.im, (z*ny+y)*nx, 1, nx, false)
		}
		for x := 0; x < nx; x++ {
			fft1d(fc, twY, spatial.re, spatial.im, z*ny*nx+x, nx, ny, false)
		}
	}
	var spec field // spectral data
	if serial {
		// z-direction FFT strided in place.
		spec = spatial
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				fft1d(fc, twZ, spec.re, spec.im, y*nx+x, ny*nx, nz, false)
			}
		}
	} else {
		// Transpose to the x-distributed layout, then local z FFTs.
		xd := transposeZX(fc, comm, pr, spatial, zlo, zhi, xlo, xhi)
		for x := 0; x < nxLoc; x++ {
			for y := 0; y < ny; y++ {
				fft1d(fc, twZ, xd.re, xd.im, (x*ny+y)*nz, 1, nz, false)
			}
		}
		spec = xd
	}

	// Evolution exponents: kbar^2 summed over the three dimensions,
	// for the elements this rank owns in its spectral layout.
	ksq := make([]float64, len(spec.re))
	if serial {
		for z := 0; z < nz; z++ {
			for y := 0; y < ny; y++ {
				for x := 0; x < nx; x++ {
					ksq[(z*ny+y)*nx+x] = kbar2(x, nx) + kbar2(y, ny) + kbar2(z, nz)
				}
			}
		}
	} else {
		for x := xlo; x < xhi; x++ {
			for y := 0; y < ny; y++ {
				for z := 0; z < nz; z++ {
					ksq[((x-xlo)*ny+y)*nz+z] = kbar2(x, nx) + kbar2(y, ny) + kbar2(z, nz)
				}
			}
		}
	}

	// ---- time stepping -----------------------------------------------------
	n3 := float64(nx) * float64(ny) * float64(nz)
	invN3 := 1 / n3
	work := field{re: make([]float64, len(spec.re)), im: make([]float64, len(spec.im))}
	check := make([]float64, 0, 2*pr.iters)
	var lastSpatial field
	for t := 1; t <= pr.iters; t++ {
		// Evolve: work = spec * exp(-4 alpha pi^2 ksq t).
		tf := -4 * pr.alpha * math.Pi * math.Pi * float64(t)
		for i := range spec.re {
			f := math.Exp(tf * ksq[i])
			work.re[i] = fc.Mul(spec.re[i], f)
			work.im[i] = fc.Mul(spec.im[i], f)
		}
		// Inverse 3-D FFT of work back to spatial, z-distributed layout.
		var spat field
		if serial {
			spat = work
			for y := 0; y < ny; y++ {
				for x := 0; x < nx; x++ {
					fft1d(fc, twZ, spat.re, spat.im, y*nx+x, ny*nx, nz, true)
				}
			}
		} else {
			for x := 0; x < nxLoc; x++ {
				for y := 0; y < ny; y++ {
					fft1d(fc, twZ, work.re, work.im, (x*ny+y)*nz, 1, nz, true)
				}
			}
			spat = transposeXZ(fc, comm, pr, work, zlo, zhi, xlo, xhi)
		}
		for z := 0; z < nzLoc; z++ {
			for x := 0; x < nx; x++ {
				fft1d(fc, twY, spat.re, spat.im, z*ny*nx+x, nx, ny, true)
			}
			for y := 0; y < ny; y++ {
				fft1d(fc, twX, spat.re, spat.im, (z*ny+y)*nx, 1, nx, true)
			}
		}
		// Normalize.
		for i := range spat.re {
			spat.re[i] = fc.Mul(spat.re[i], invN3)
			spat.im[i] = fc.Mul(spat.im[i], invN3)
		}
		// Strided checksum (NPB style): sum of checkN scattered elements.
		var csRe, csIm float64
		for j := 1; j <= pr.checkN; j++ {
			x := j % nx
			y := (3 * j) % ny
			z := (5 * j) % nz
			if z < zlo || z >= zhi {
				continue
			}
			l := ((z-zlo)*ny+y)*nx + x
			csRe = fc.Add(csRe, spat.re[l])
			csIm = fc.Add(csIm, spat.im[l])
		}
		sum := comm.Allreduce(simmpi.OpSum, []float64{csRe, csIm})
		check = append(check, sum[0], sum[1])
		lastSpatial = spat
	}

	state := make([]float64, 0, 2*len(lastSpatial.re))
	state = append(state, lastSpatial.re...)
	state = append(state, lastSpatial.im...)
	return apps.RankOutput{State: state, Check: check}, nil
}

// kbar2 returns the squared folded wavenumber for index k of dimension n.
func kbar2(k, n int) float64 {
	if k > n/2 {
		k -= n
	}
	return float64(k * k)
}

// stage moves one float through the instrumented transpose datapath: at the
// instruction level this is a load/store whose operand a fault can strike,
// so resmod models it as an injectable identity add in the Unique region.
func stage(fc *fpe.Ctx, v float64) float64 { return fc.Add(v, 0) }

// transposeZX redistributes from the z-distributed spatial layout
// ((z,y,x), x contiguous) to the x-distributed layout ((x,y,z), z
// contiguous).  Pack and unpack are parallel-unique computation.
func transposeZX(fc *fpe.Ctx, comm *simmpi.Comm, pr params, in field, zlo, zhi, xlo, xhi int) field {
	p := comm.Size()
	nx, ny, nz := pr.nx, pr.ny, pr.nz
	nzLoc := zhi - zlo
	nxLoc := xhi - xlo
	nxb := nx / p

	end := fc.Begin("transpose-pack", fpe.Unique)
	send := make([][]float64, p)
	for d := 0; d < p; d++ {
		buf := make([]float64, 0, nzLoc*ny*nxb*2)
		for z := 0; z < nzLoc; z++ {
			for y := 0; y < ny; y++ {
				base := (z*ny + y) * nx
				for x := d * nxb; x < (d+1)*nxb; x++ {
					buf = append(buf, stage(fc, in.re[base+x]), stage(fc, in.im[base+x]))
				}
			}
		}
		send[d] = buf
	}
	end()

	recv := comm.Alltoall(send)

	end = fc.Begin("transpose-unpack", fpe.Unique)
	out := field{re: make([]float64, nxLoc*ny*nz), im: make([]float64, nxLoc*ny*nz)}
	nzb := nz / p
	for s := 0; s < p; s++ {
		buf := recv[s]
		k := 0
		for z := s * nzb; z < (s+1)*nzb; z++ {
			for y := 0; y < ny; y++ {
				for x := 0; x < nxLoc; x++ {
					l := (x*ny+y)*nz + z
					out.re[l] = stage(fc, buf[k])
					out.im[l] = stage(fc, buf[k+1])
					k += 2
				}
			}
		}
	}
	end()
	return out
}

// transposeXZ is the inverse redistribution: x-distributed back to
// z-distributed.
func transposeXZ(fc *fpe.Ctx, comm *simmpi.Comm, pr params, in field, zlo, zhi, xlo, xhi int) field {
	p := comm.Size()
	nx, ny, nz := pr.nx, pr.ny, pr.nz
	nzLoc := zhi - zlo
	nxLoc := xhi - xlo
	nzb := nz / p

	end := fc.Begin("transpose-pack", fpe.Unique)
	send := make([][]float64, p)
	for d := 0; d < p; d++ {
		buf := make([]float64, 0, nxLoc*ny*nzb*2)
		for z := d * nzb; z < (d+1)*nzb; z++ {
			for y := 0; y < ny; y++ {
				for x := 0; x < nxLoc; x++ {
					l := (x*ny+y)*nz + z
					buf = append(buf, stage(fc, in.re[l]), stage(fc, in.im[l]))
				}
			}
		}
		send[d] = buf
	}
	end()

	recv := comm.Alltoall(send)

	end = fc.Begin("transpose-unpack", fpe.Unique)
	out := field{re: make([]float64, nzLoc*ny*nx), im: make([]float64, nzLoc*ny*nx)}
	nxb := nx / p
	for s := 0; s < p; s++ {
		buf := recv[s]
		k := 0
		for z := 0; z < nzLoc; z++ {
			for y := 0; y < ny; y++ {
				base := (z*ny + y) * nx
				for x := s * nxb; x < (s+1)*nxb; x++ {
					out.re[base+x] = stage(fc, buf[k])
					out.im[base+x] = stage(fc, buf[k+1])
					k += 2
				}
			}
		}
	}
	end()
	return out
}

// Verify implements the NPB FT checker: every per-iteration checksum
// component must match the fault-free value within the verification
// tolerance.
func (App) Verify(golden, check []float64) bool {
	return apps.VerifyRel(golden, check, 1e-10)
}
