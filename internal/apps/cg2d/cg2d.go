// Package cg2d implements the NPB CG benchmark in its authentic 2-D
// parallelization: the sparse matrix is partitioned over a sqrt(p) x
// sqrt(p) process grid, the matrix-vector product reduces partial results
// across each process row (a row-communicator allreduce), and the reduced
// segment is exchanged with the transpose process so it becomes the next
// iteration's vector segment — NPB CG's reduce/transpose communication
// structure, built on simmpi.Comm.Split.
//
// cg2d is an extension benchmark (the paper's evaluation used the 1-D
// variant in package cg): its error propagation is *staged* — an injected
// error first contaminates the victim's process row, then jumps through
// the transpose to another row, reaching full contamination only after a
// few inner iterations — a propagation profile between CG's all-at-once
// and LU's neighbour-by-neighbour.
//
// Supported rank counts are perfect squares that are powers of two:
// 1, 4, 16, 64.
package cg2d

import (
	"math"

	"resmod/internal/apps"
	"resmod/internal/apps/cg"
	"resmod/internal/fpe"
	"resmod/internal/simmpi"
)

// params describes one problem class (sharing cg's matrix classes).
type params struct {
	class string // underlying cg matrix class
	outer int
	inner int
	shift float64
}

var classes = map[string]params{
	"S": {class: "S", outer: 4, inner: 10, shift: 12.0},
	"B": {class: "B", outer: 4, inner: 10, shift: 22.0},
}

// transposeTag is the point-to-point tag of the transpose exchange.
const transposeTag = 400

// App is the 2-D decomposed CG benchmark.
type App struct{}

func init() { apps.Register(App{}) }

// Name returns "CG2D".
func (App) Name() string { return "CG2D" }

// Classes returns the supported problem classes.
func (App) Classes() []string { return []string{"S", "B"} }

// DefaultClass returns "S".
func (App) DefaultClass() string { return "S" }

// MaxProcs returns the largest supported rank count.
func (App) MaxProcs(class string) int { return 64 }

// gridSide returns the process grid side for p ranks, or 0 if p is not a
// perfect square.
func gridSide(p int) int {
	s := int(math.Round(math.Sqrt(float64(p))))
	if s*s != p {
		return 0
	}
	return s
}

// blockCSR is one rank's matrix block with columns rebased to the block.
type blockCSR struct {
	rows   int
	rowPtr []int
	colIdx []int
	vals   []float64
}

// spmv computes w = A_block * x with instrumented arithmetic.
func (m *blockCSR) spmv(fc *fpe.Ctx, x, w []float64) {
	for i := 0; i < m.rows; i++ {
		var s float64
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			s = fc.Add(s, fc.Mul(m.vals[k], x[m.colIdx[k]]))
		}
		w[i] = s
	}
}

// Run executes the benchmark on this rank.
func (a App) Run(fc *fpe.Ctx, comm *simmpi.Comm, class string) (apps.RankOutput, error) {
	pr, ok := classes[class]
	if !ok {
		return apps.RankOutput{}, &apps.ErrBadProcs{App: "CG2D", Class: class,
			Procs: comm.Size(), Reason: "unknown class"}
	}
	if err := apps.CheckProcs(a, class, comm.Size()); err != nil {
		return apps.RankOutput{}, err
	}
	side := gridSide(comm.Size())
	if side == 0 {
		return apps.RankOutput{}, &apps.ErrBadProcs{App: "CG2D", Class: class,
			Procs: comm.Size(), Max: 64, Reason: "rank count must be a perfect square (1, 4, 16, 64)"}
	}
	n, _ := cg.Order(pr.class)
	if n%side != 0 {
		return apps.RankOutput{}, &apps.ErrBadProcs{App: "CG2D", Class: class,
			Procs: comm.Size(), Max: 64, Reason: "grid side must divide the matrix order"}
	}
	b := n / side // block size
	row := comm.Rank() / side
	col := comm.Rank() % side
	rowComm := comm.Split(row, col)
	// The transpose partner holds the grid-mirrored block.
	partner := col*side + row

	rowPtr, colIdx, vals, _ := cg.BlockCSR(pr.class, row*b, (row+1)*b, col*b, (col+1)*b)
	m := &blockCSR{rows: b, rowPtr: rowPtr, colIdx: make([]int, len(colIdx)), vals: vals}
	for k, j := range colIdx {
		m.colIdx[k] = j - col*b // rebase to the local segment
	}

	// matvec computes the q segment this rank's column block contributes
	// to, reduced across the process row and transposed into the rank's
	// column segment.
	matvec := func(x []float64) []float64 {
		partial := make([]float64, b)
		m.spmv(fc, x, partial)
		if comm.Size() > 1 {
			// The exchange-preparation guard models NPB CG's partial-sum
			// staging arithmetic (parallel-unique computation).
			end := fc.Begin("reduce-guard", fpe.Unique)
			var guard float64
			for _, v := range partial {
				guard = fc.Add(guard, v)
			}
			end()
			_ = guard
		}
		qi := rowComm.Allreduce(simmpi.OpSum, partial)
		if comm.Rank() == partner {
			return qi
		}
		return comm.Sendrecv(partner, transposeTag, qi, partner, transposeTag)
	}
	// dot computes a global inner product from this rank's segments: the
	// row communicator spans all column blocks exactly once.
	dot := func(x, y []float64) float64 {
		return rowComm.AllreduceValue(simmpi.OpSum, fc.Dot(x, y))
	}

	x := make([]float64, b)
	for i := range x {
		x[i] = 1
	}
	z := make([]float64, b)
	r := make([]float64, b)
	p := make([]float64, b)

	var zeta float64
	for it := 0; it < pr.outer; it++ {
		for i := range z {
			z[i] = 0
			r[i] = x[i]
			p[i] = r[i]
		}
		rho := dot(r, r)
		for cgit := 0; cgit < pr.inner; cgit++ {
			q := matvec(p)
			d := dot(p, q)
			alpha := fc.Div(rho, d)
			fc.Axpy(alpha, p, z)
			fc.Axpy(-alpha, q, r)
			rho0 := rho
			rho = dot(r, r)
			beta := fc.Div(rho, rho0)
			for i := range p {
				p[i] = fc.Add(r[i], fc.Mul(beta, p[i]))
			}
		}
		xz := dot(x, z)
		zeta = fc.Add(pr.shift, fc.Div(1, xz))
		zz := dot(z, z)
		inv := fc.Div(1, math.Sqrt(zz))
		for i := range x {
			x[i] = fc.Mul(z[i], inv)
		}
	}

	state := make([]float64, b)
	copy(state, x)
	return apps.RankOutput{State: state, Check: []float64{zeta}}, nil
}

// Verify implements the NPB CG checker on the eigenvalue estimate.
func (App) Verify(golden, check []float64) bool {
	return apps.VerifyRel(golden, check, 1e-10)
}
