package cg2d

import (
	"math"
	"testing"

	"resmod/internal/apps"
	"resmod/internal/apps/apptest"
	"resmod/internal/apps/cg"
	"resmod/internal/faultsim"
)

func TestConformance(t *testing.T) {
	apptest.Conformance(t, App{}, apptest.Options{
		Procs:             []int{4, 16},
		WantUnique:        true,
		MaxUniqueFraction: 0.10,
	})
}

func TestGridSide(t *testing.T) {
	cases := map[int]int{1: 1, 4: 2, 16: 4, 64: 8, 2: 0, 8: 0, 32: 0, 15: 0}
	for p, want := range cases {
		if got := gridSide(p); got != want {
			t.Fatalf("gridSide(%d) = %d, want %d", p, got, want)
		}
	}
}

func TestRejectsNonSquareProcs(t *testing.T) {
	res := apps.Execute(App{}, "S", 8, nil, apps.DefaultTimeout)
	if res.Err == nil {
		t.Fatal("8 ranks accepted by the 2-D grid")
	}
}

func TestMatchesOneDimensionalCG(t *testing.T) {
	// The 2-D variant runs the same numerical algorithm on the same matrix
	// as package cg, so the serial eigenvalue estimates must agree to the
	// checker tolerance (they differ only in reduction grouping at p>1 and
	// are identical serially up to instruction order).
	oneD, err := apps.Lookup("CG")
	if err != nil {
		t.Fatal(err)
	}
	r1 := apps.Execute(oneD, "S", 1, nil, apps.DefaultTimeout)
	if r1.Err != nil {
		t.Fatal(r1.Err)
	}
	r2 := apps.Execute(App{}, "S", 1, nil, apps.DefaultTimeout)
	if r2.Err != nil {
		t.Fatal(r2.Err)
	}
	z1, z2 := r1.Outputs[0].Check[0], r2.Outputs[0].Check[0]
	if apps.RelErr(z1, z2, 1e-30) > 1e-9 {
		t.Fatalf("zeta differs between decompositions: %v vs %v", z1, z2)
	}
}

func TestBlockCSRTilesFullMatrix(t *testing.T) {
	// The four blocks of a 2x2 grid must contain exactly the entries of
	// the full matrix.
	n, ok := cg.Order("S")
	if !ok {
		t.Fatal("class S missing")
	}
	b := n / 2
	fullPtr, fullIdx, fullVals, _ := cg.BlockCSR("S", 0, n, 0, n)
	total := 0
	for bi := 0; bi < 2; bi++ {
		for bj := 0; bj < 2; bj++ {
			ptr, _, _, ok := cg.BlockCSR("S", bi*b, (bi+1)*b, bj*b, (bj+1)*b)
			if !ok {
				t.Fatal("block build failed")
			}
			total += ptr[len(ptr)-1]
		}
	}
	if total != fullPtr[len(fullPtr)-1] {
		t.Fatalf("blocks have %d entries, full matrix %d", total, fullPtr[len(fullPtr)-1])
	}
	_ = fullIdx
	_ = fullVals
}

func TestStagedPropagation(t *testing.T) {
	// 2-D CG contaminates either a few ranks (error dies before jumping
	// rows) or everyone; the histogram should put most mass at 1..side and
	// at p.
	sum, err := faultsim.Run(faultsim.Campaign{
		App: App{}, Procs: 16, Trials: 30, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	probs := sum.Hist.Probabilities()
	var lowOrFull float64
	for x := 1; x <= 4; x++ {
		lowOrFull += probs[x-1]
	}
	lowOrFull += probs[15]
	if lowOrFull < 0.5 {
		t.Fatalf("propagation mass neither local nor global: %v", probs)
	}
	if math.Abs(sum.Rates.Success+sum.Rates.SDC+sum.Rates.Failure-1) > 1e-12 {
		t.Fatalf("rates = %+v", sum.Rates)
	}
}
