// Package cg implements the NPB CG benchmark: estimating the largest
// eigenvalue of a sparse symmetric positive-definite matrix with inverse
// power iteration, using a fixed number of conjugate-gradient iterations as
// the inner solver (NAS Parallel Benchmarks 3.3, kernel CG).
//
// Parallel decomposition: matrix rows are block-distributed.  Each CG
// iteration gathers the full direction vector with an allgather before the
// local sparse matrix-vector product, and combines inner products with
// allreduce — so an error injected into one rank reaches every rank through
// the very next inner product or matvec, unless rounding masks it first.
// This is the communication structure that gives CG its characteristic
// "one rank or all ranks" error-propagation histogram (paper Figure 1).
//
// The parallel-unique computation (paper Observation 1) is the segment
// checksum each rank accumulates over its allgather contribution — a
// lightweight communication guard standing in for the partial-sum exchange
// arithmetic of the 2-D NPB CG; it does not exist in the serial execution.
package cg

import (
	"math"
	"sync"

	"resmod/internal/apps"
	"resmod/internal/fpe"
	"resmod/internal/simmpi"
	"resmod/internal/stats"
)

// params describes one problem class.
type params struct {
	n       int     // matrix order
	nnzHalf int     // sampled symmetric pairs per row
	outer   int     // power-iteration (outer) iterations
	inner   int     // CG (inner) iterations
	shift   float64 // diagonal shift (ensures SPD, sets eigenvalue scale)
	seed    uint64  // matrix generation seed
}

var classes = map[string]params{
	"S": {n: 1024, nnzHalf: 5, outer: 4, inner: 10, shift: 12.0, seed: 0xC6_5},
	"B": {n: 2048, nnzHalf: 8, outer: 4, inner: 10, shift: 22.0, seed: 0xC6_B},
}

// App is the CG benchmark.
type App struct{}

func init() { apps.Register(App{}) }

// Name returns "CG".
func (App) Name() string { return "CG" }

// Classes returns the supported problem classes.
func (App) Classes() []string { return []string{"S", "B"} }

// DefaultClass returns "S".
func (App) DefaultClass() string { return "S" }

// MaxProcs returns the largest supported rank count.
func (App) MaxProcs(class string) int { return 128 }

// csr is a compressed-sparse-row matrix slice holding rows [rowLo, rowHi).
type csr struct {
	rowLo, rowHi int
	rowPtr       []int
	colIdx       []int
	vals         []float64
}

// Order returns the matrix order of a problem class.
func Order(class string) (int, bool) {
	p, ok := classes[class]
	if !ok {
		return 0, false
	}
	return p.n, true
}

// BlockCSR deterministically generates the sparse SPD matrix of the given
// class and returns the CSR of rows [rowLo, rowHi) restricted to columns
// [colLo, colHi), with column indices kept global.  The 2-D decomposed
// variant (package cg2d) builds its blocks through this.
func BlockCSR(class string, rowLo, rowHi, colLo, colHi int) (rowPtr, colIdx []int, vals []float64, ok bool) {
	p, found := classes[class]
	if !found {
		return nil, nil, nil, false
	}
	m := buildBlock(p, rowLo, rowHi, colLo, colHi)
	return m.rowPtr, m.colIdx, m.vals, true
}

// fullMatrices caches the generated full matrix per class seed.  Matrix
// generation is fault-free setup (like NPB's makea), deterministic, and
// read-only once built, so sharing it across the thousands of runs of a
// campaign is safe and removes the dominant per-run setup cost.
var fullMatrices sync.Map // uint64 (class seed) -> *csr over all rows/cols

// buildMatrix returns the CSR slice for rows [lo, hi) over all columns.
func buildMatrix(p params, lo, hi int) *csr {
	return buildBlock(p, lo, hi, 0, p.n)
}

// buildBlock returns the CSR of rows [rowLo, rowHi) restricted to columns
// [colLo, colHi), extracted from the cached full matrix.
func buildBlock(p params, lo, hi, colLo, colHi int) *csr {
	fullAny, ok := fullMatrices.Load(p.seed)
	if !ok {
		fullAny, _ = fullMatrices.LoadOrStore(p.seed, generate(p))
	}
	full := fullAny.(*csr)
	if lo == 0 && hi == p.n && colLo == 0 && colHi == p.n {
		return full
	}
	m := &csr{rowLo: lo, rowHi: hi, rowPtr: make([]int, hi-lo+1)}
	for i := lo; i < hi; i++ {
		for k := full.rowPtr[i]; k < full.rowPtr[i+1]; k++ {
			j := full.colIdx[k]
			if j < colLo || j >= colHi {
				continue
			}
			m.colIdx = append(m.colIdx, j)
			m.vals = append(m.vals, full.vals[k])
		}
		m.rowPtr[i-lo+1] = len(m.colIdx)
	}
	return m
}

// generate deterministically builds the full sparse SPD matrix.
// Generation is identical on every rank and is not instrumented: like
// NPB's makea it is setup code, outside the main computation loop that
// fault injection targets.
func generate(p params) *csr {
	lo, hi := 0, p.n
	colLo, colHi := 0, p.n
	rng := stats.NewRNG(p.seed)
	entries := make([]map[int]float64, p.n)
	for i := range entries {
		entries[i] = make(map[int]float64, 2*p.nnzHalf+1)
	}
	for i := 0; i < p.n; i++ {
		for t := 0; t < p.nnzHalf; t++ {
			j := rng.Intn(p.n)
			if j == i {
				continue
			}
			v := rng.Float64() - 0.5
			entries[i][j] += v
			entries[j][i] += v
		}
	}
	// Deterministic column order per row (map iteration order is random).
	sortedCols := func(row map[int]float64) []int {
		cols := make([]int, 0, len(row))
		for j := range row {
			cols = append(cols, j)
		}
		insertionSortInts(cols)
		return cols
	}
	// Diagonal dominance makes the matrix SPD; sum in sorted order so the
	// generated matrix is bit-for-bit deterministic.
	for i := 0; i < p.n; i++ {
		var sum float64
		for _, j := range sortedCols(entries[i]) {
			sum += math.Abs(entries[i][j])
		}
		entries[i][i] = sum + p.shift
	}
	m := &csr{rowLo: lo, rowHi: hi, rowPtr: make([]int, hi-lo+1)}
	for i := lo; i < hi; i++ {
		row := entries[i]
		cols := sortedCols(row)
		for _, j := range cols {
			if j < colLo || j >= colHi {
				continue
			}
			m.colIdx = append(m.colIdx, j)
			m.vals = append(m.vals, row[j])
		}
		m.rowPtr[i-lo+1] = len(m.colIdx)
	}
	return m
}

func insertionSortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// spmv computes w = A_local * x (x is the full vector) with instrumented
// arithmetic.
func (m *csr) spmv(fc *fpe.Ctx, x, w []float64) {
	for i := 0; i < m.rowHi-m.rowLo; i++ {
		var s float64
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			s = fc.Add(s, fc.Mul(m.vals[k], x[m.colIdx[k]]))
		}
		w[i] = s
	}
}

// gatherVector assembles the full vector from per-rank segments.  In
// parallel mode each rank first accumulates a checksum guard over its
// segment — the parallel-unique computation.
func gatherVector(fc *fpe.Ctx, comm *simmpi.Comm, local []float64) []float64 {
	if comm.Size() == 1 {
		out := make([]float64, len(local))
		copy(out, local)
		return out
	}
	end := fc.Begin("gather-guard", fpe.Unique)
	var guard float64
	for _, v := range local {
		guard = fc.Add(guard, v)
	}
	end()
	_ = guard // the guard models NPB CG's exchange-preparation arithmetic
	return comm.Allgather(local)
}

// Run executes the benchmark on this rank.
func (a App) Run(fc *fpe.Ctx, comm *simmpi.Comm, class string) (apps.RankOutput, error) {
	pr, ok := classes[class]
	if !ok {
		return apps.RankOutput{}, &apps.ErrBadProcs{App: "CG", Class: class, Procs: comm.Size(),
			Reason: "unknown class"}
	}
	if err := apps.CheckProcs(a, class, comm.Size()); err != nil {
		return apps.RankOutput{}, err
	}
	lo, hi := apps.Block1D(pr.n, comm.Size(), comm.Rank())
	m := buildMatrix(pr, lo, hi)
	nloc := hi - lo

	x := make([]float64, nloc)
	for i := range x {
		x[i] = 1
	}
	z := make([]float64, nloc)
	r := make([]float64, nloc)
	pvec := make([]float64, nloc)
	q := make([]float64, nloc)

	var zeta float64
	for it := 0; it < pr.outer; it++ {
		// Inner solver: fixed-iteration CG for A z = x.
		for i := range z {
			z[i] = 0
			r[i] = x[i]
			pvec[i] = r[i]
		}
		rho := comm.AllreduceValue(simmpi.OpSum, fc.Dot(r, r))
		for cgit := 0; cgit < pr.inner; cgit++ {
			pfull := gatherVector(fc, comm, pvec)
			m.spmv(fc, pfull, q)
			d := comm.AllreduceValue(simmpi.OpSum, fc.Dot(pvec, q))
			alpha := fc.Div(rho, d)
			fc.Axpy(alpha, pvec, z)
			fc.Axpy(-alpha, q, r)
			rho0 := rho
			rho = comm.AllreduceValue(simmpi.OpSum, fc.Dot(r, r))
			beta := fc.Div(rho, rho0)
			for i := range pvec {
				pvec[i] = fc.Add(r[i], fc.Mul(beta, pvec[i]))
			}
		}
		// zeta = shift + 1 / (x . z)
		xz := comm.AllreduceValue(simmpi.OpSum, fc.Dot(x, z))
		zeta = fc.Add(pr.shift, fc.Div(1, xz))
		// x = z / ||z||
		zz := comm.AllreduceValue(simmpi.OpSum, fc.Dot(z, z))
		inv := fc.Div(1, math.Sqrt(zz))
		for i := range x {
			x[i] = fc.Mul(z[i], inv)
		}
	}

	state := make([]float64, nloc)
	copy(state, x)
	return apps.RankOutput{State: state, Check: []float64{zeta}}, nil
}

// Verify implements the NPB CG checker: the eigenvalue estimate zeta must
// match the fault-free value to the NPB verification tolerance.
func (App) Verify(golden, check []float64) bool {
	return apps.VerifyRel(golden, check, 1e-10)
}
