package cg

import (
	"math"
	"testing"

	"resmod/internal/apps"
	"resmod/internal/apps/apptest"
	"resmod/internal/fpe"
)

func TestConformance(t *testing.T) {
	apptest.Conformance(t, App{}, apptest.Options{
		Procs:             []int{2, 4, 8},
		WantUnique:        true,
		MaxUniqueFraction: 0.10,
	})
}

func TestMatrixIsSymmetricDiagonallyDominant(t *testing.T) {
	pr := classes["S"]
	full := buildMatrix(pr, 0, pr.n)
	// Reconstruct a dense map for symmetry checking.
	get := func(i, j int) float64 {
		for k := full.rowPtr[i]; k < full.rowPtr[i+1]; k++ {
			if full.colIdx[k] == j {
				return full.vals[k]
			}
		}
		return 0
	}
	for i := 0; i < pr.n; i += 37 { // sampled rows
		var off float64
		for k := full.rowPtr[i]; k < full.rowPtr[i+1]; k++ {
			j := full.colIdx[k]
			if j == i {
				continue
			}
			off += math.Abs(full.vals[k])
			if got := get(j, i); got != full.vals[k] {
				t.Fatalf("A[%d,%d]=%g but A[%d,%d]=%g", i, j, full.vals[k], j, i, got)
			}
		}
		if diag := get(i, i); diag <= off {
			t.Fatalf("row %d not diagonally dominant: diag=%g off=%g", i, diag, off)
		}
	}
}

func TestMatrixSliceMatchesFull(t *testing.T) {
	pr := classes["S"]
	full := buildMatrix(pr, 0, pr.n)
	part := buildMatrix(pr, 256, 512)
	for i := 256; i < 512; i += 17 {
		fLo, fHi := full.rowPtr[i], full.rowPtr[i+1]
		pLo, pHi := part.rowPtr[i-256], part.rowPtr[i-256+1]
		if fHi-fLo != pHi-pLo {
			t.Fatalf("row %d nnz differs: %d vs %d", i, fHi-fLo, pHi-pLo)
		}
		for k := 0; k < fHi-fLo; k++ {
			if full.colIdx[fLo+k] != part.colIdx[pLo+k] || full.vals[fLo+k] != part.vals[pLo+k] {
				t.Fatalf("row %d entry %d differs", i, k)
			}
		}
	}
}

func TestZetaConvergesToEigenvalueScale(t *testing.T) {
	// zeta estimates shift + 1/lambda_min-ish; sanity: it is finite, above
	// the shift, and stable across runs.
	res := apps.Execute(App{}, "S", 1, nil, apps.DefaultTimeout)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	zeta := res.Outputs[0].Check[0]
	if math.IsNaN(zeta) || zeta <= classes["S"].shift {
		t.Fatalf("zeta = %g", zeta)
	}
}

func TestSpmvAgainstDense(t *testing.T) {
	pr := params{n: 32, nnzHalf: 3, outer: 1, inner: 1, shift: 5, seed: 9}
	m := buildMatrix(pr, 0, pr.n)
	x := make([]float64, pr.n)
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	w := make([]float64, pr.n)
	m.spmv(fpe.New(), x, w)
	// Dense reference.
	for i := 0; i < pr.n; i++ {
		var want float64
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			want += m.vals[k] * x[m.colIdx[k]]
		}
		if math.Abs(w[i]-want) > 1e-12*math.Abs(want)+1e-15 {
			t.Fatalf("spmv row %d = %g, want %g", i, w[i], want)
		}
	}
}

func TestInjectionCanChangeZeta(t *testing.T) {
	// A high-exponent-bit flip early in the run should corrupt zeta (SDC).
	clean := apps.Execute(App{}, "S", 1, nil, apps.DefaultTimeout)
	if clean.Err != nil {
		t.Fatal(clean.Err)
	}
	bad := apps.Execute(App{}, "S", 1, map[int][]fpe.Injection{
		0: {{Class: fpe.Common, Index: 1000, Bit: 62, Operand: 0}},
	}, apps.DefaultTimeout)
	if bad.Err != nil {
		return // a crash/hang is an acceptable severe outcome
	}
	if (App{}).Verify(clean.Outputs[0].Check, bad.Outputs[0].Check) {
		t.Fatalf("exponent-bit corruption passed the checker: golden=%v got=%v",
			clean.Outputs[0].Check, bad.Outputs[0].Check)
	}
}

func TestLowBitInjectionOftenMasked(t *testing.T) {
	// A low-mantissa-bit flip late in the run usually passes the checker —
	// the masking behaviour behind the paper's high success rates.
	clean := apps.Execute(App{}, "S", 1, nil, apps.DefaultTimeout)
	if clean.Err != nil {
		t.Fatal(clean.Err)
	}
	total := clean.Ctxs[0].Counts().Common
	masked := 0
	const trials = 8
	for i := 0; i < trials; i++ {
		res := apps.Execute(App{}, "S", 1, map[int][]fpe.Injection{
			0: {{Class: fpe.Common, Index: total - 50 - uint64(i)*13, Bit: 2, Operand: 0}},
		}, apps.DefaultTimeout)
		if res.Err == nil && (App{}).Verify(clean.Outputs[0].Check, res.Outputs[0].Check) {
			masked++
		}
	}
	if masked == 0 {
		t.Fatal("no low-bit late injection was masked; masking behaviour broken")
	}
}

func TestUnknownClass(t *testing.T) {
	res := apps.Execute(App{}, "Z", 1, nil, apps.DefaultTimeout)
	if res.Err == nil {
		t.Fatal("unknown class accepted")
	}
}

func TestBadProcs(t *testing.T) {
	res := apps.Execute(App{}, "S", 3, nil, apps.DefaultTimeout)
	if res.Err == nil {
		t.Fatal("non-power-of-two procs accepted")
	}
}
