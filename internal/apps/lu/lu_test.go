package lu

import (
	"math"
	"testing"

	"resmod/internal/apps"
	"resmod/internal/apps/apptest"
	"resmod/internal/fpe"
	"resmod/internal/simmpi"
)

func TestConformance(t *testing.T) {
	apptest.Conformance(t, App{}, apptest.Options{
		Procs:      []int{2, 4, 8},
		WantUnique: false,
	})
}

func TestSSORReducesResidual(t *testing.T) {
	res := apps.Execute(App{}, "W", 1, nil, apps.DefaultTimeout)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	rnorm := res.Outputs[0].Check[0]
	unorm := res.Outputs[0].Check[1]
	// The RMS of the rhs field is O(0.5); after niter sweeps the residual
	// must be well below it, and the solution must be non-trivial.
	if rnorm <= 0 || rnorm > 0.05 {
		t.Fatalf("rnorm = %g, want well below the rhs scale", rnorm)
	}
	if unorm <= 0.01 {
		t.Fatalf("unorm = %g, solution looks trivial", unorm)
	}
}

func TestSerialParallelBitIdenticalState(t *testing.T) {
	// The sweeps compute every point from the same inputs in the same
	// order at every scale, so reassembled parallel state is bit-identical
	// to serial state.
	ser := apps.Execute(App{}, "W", 1, nil, apps.DefaultTimeout)
	if ser.Err != nil {
		t.Fatal(ser.Err)
	}
	const p = 8
	par := apps.Execute(App{}, "W", p, nil, apps.DefaultTimeout)
	if par.Err != nil {
		t.Fatal(par.Err)
	}
	var joined []float64
	for r := 0; r < p; r++ {
		joined = append(joined, par.Outputs[r].State...)
	}
	for i := range joined {
		if math.Float64bits(joined[i]) != math.Float64bits(ser.Outputs[0].State[i]) {
			t.Fatalf("state differs at %d", i)
		}
	}
}

func TestForwardSweepSolvesLowerSystem(t *testing.T) {
	// forwardSweep computes v with (D + wL) v = r; reconstruct r from v.
	pr := classes["W"]
	cf := makeCoeffs(pr)
	s := &slab{nx: 4, ny: 4, nzLoc: 4, zlo: 0, nz: 4}
	r := make([]float64, 64)
	for i := range r {
		r[i] = float64(i%7) - 3
	}
	var v []float64
	if _, err := simmpi.Run(simmpi.Config{Procs: 1}, func(c *simmpi.Comm) error {
		v = forwardSweep(fpe.New(), c, s, cf, pr.omega, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for zl := 0; zl < 4; zl++ {
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				lsum := cf.aW*s.get(v, x-1, y, zl, nil, nil) +
					cf.aS*s.get(v, x, y-1, zl, nil, nil) +
					cf.aB*s.get(v, x, y, zl-1, nil, nil)
				got := cf.d*v[s.idx(x, y, zl)] + pr.omega*lsum
				if math.Abs(got-r[s.idx(x, y, zl)]) > 1e-10 {
					t.Fatalf("(D+wL)v != r at (%d,%d,%d): %g vs %g",
						x, y, zl, got, r[s.idx(x, y, zl)])
				}
			}
		}
	}
}

func TestBackwardSweepSolvesUpperSystem(t *testing.T) {
	// backwardSweep computes w with (D + wU) w = D v; reconstruct D v.
	pr := classes["W"]
	cf := makeCoeffs(pr)
	s := &slab{nx: 3, ny: 3, nzLoc: 3, zlo: 0, nz: 3}
	v := make([]float64, 27)
	for i := range v {
		v[i] = math.Sin(float64(i))
	}
	var w []float64
	if _, err := simmpi.Run(simmpi.Config{Procs: 1}, func(c *simmpi.Comm) error {
		w = backwardSweep(fpe.New(), c, s, cf, pr.omega, v)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for zl := 2; zl >= 0; zl-- {
		for y := 2; y >= 0; y-- {
			for x := 2; x >= 0; x-- {
				usum := cf.aE*s.get(w, x+1, y, zl, nil, nil) +
					cf.aN*s.get(w, x, y+1, zl, nil, nil) +
					cf.aT*s.get(w, x, y, zl+1, nil, nil)
				got := cf.d*w[s.idx(x, y, zl)] + pr.omega*usum
				want := cf.d * v[s.idx(x, y, zl)]
				if math.Abs(got-want) > 1e-10 {
					t.Fatalf("(D+wU)w != Dv at (%d,%d,%d): %g vs %g", x, y, zl, got, want)
				}
			}
		}
	}
}

func TestApplyADiagonalDominance(t *testing.T) {
	cf := makeCoeffs(classes["W"])
	off := math.Abs(cf.aW) + math.Abs(cf.aE) + math.Abs(cf.aS) +
		math.Abs(cf.aN) + math.Abs(cf.aB) + math.Abs(cf.aT)
	if cf.d <= off {
		t.Fatalf("operator not strictly diagonally dominant: d=%g off=%g", cf.d, off)
	}
}

func TestExponentInjectionCorruptsNorms(t *testing.T) {
	clean := apps.Execute(App{}, "W", 1, nil, apps.DefaultTimeout)
	if clean.Err != nil {
		t.Fatal(clean.Err)
	}
	// Try several late dynamic indices: at least one exponent flip in live
	// data must be caught by the checker.
	total := clean.Ctxs[0].Counts().Common
	for _, frac := range []uint64{2, 3, 4, 5} {
		bad := apps.Execute(App{}, "W", 1, map[int][]fpe.Injection{
			0: {{Class: fpe.Common, Index: total * frac / 6, Bit: 62, Operand: 1}},
		}, apps.DefaultTimeout)
		if bad.Err != nil {
			return // crash/hang is a sufficiently severe outcome
		}
		if !(App{}).Verify(clean.Outputs[0].Check, bad.Outputs[0].Check) {
			return // detected as SDC
		}
	}
	t.Fatal("no late exponent-bit corruption was caught by the checker")
}

func TestConformanceClassA(t *testing.T) {
	if testing.Short() {
		t.Skip("larger class skipped in -short mode")
	}
	apptest.Conformance(t, App{}, apptest.Options{
		Class:      "A",
		Procs:      []int{4},
		WantUnique: false,
	})
}
