// Package lu implements the NPB LU benchmark in resmod's reduced form: a
// symmetric successive over-relaxation (SSOR) solver applied to a strictly
// diagonally dominant, non-symmetric 7-point convection–diffusion operator
// on a 3-D box with homogeneous Dirichlet boundaries (NAS Parallel
// Benchmarks 3.3, application LU, scalar analog of its five-variable
// system).
//
// Parallel decomposition: planes are block-distributed along z.  The
// forward (lower-triangular) substitution sweeps ascending z and the
// backward (upper-triangular) sweep descending z, so each rank must wait
// for its neighbour's boundary plane before sweeping — the classic NPB LU
// software pipeline (wavefront).  An injected error therefore propagates
// downstream rank-by-rank within a sweep and back upstream in the next —
// the gradual propagation pattern that distinguishes LU from CG/FT in the
// paper's characterization.
//
// LU has no parallel-unique computation (paper Table 1): boundary planes
// are sent directly from the working arrays.
package lu

import (
	"math"

	"resmod/internal/apps"
	"resmod/internal/fpe"
	"resmod/internal/simmpi"
)

// params describes one problem class.
type params struct {
	nx, ny, nz int
	niter      int
	omega      float64 // relaxation factor
	diag       float64 // operator diagonal (> 6 for strict dominance)
	delta      float64 // convective asymmetry of the off-diagonals
}

var classes = map[string]params{
	// The paper runs LU with NPB class W; this is its laptop-scale analog.
	"W": {nx: 12, ny: 12, nz: 64, niter: 6, omega: 1.0, diag: 9.0, delta: 0.2},
	// A larger class with a longer pipeline, for scaling studies.
	"A": {nx: 16, ny: 16, nz: 128, niter: 6, omega: 1.0, diag: 9.0, delta: 0.2},
}

// App is the LU benchmark.
type App struct{}

func init() { apps.Register(App{}) }

// Name returns "LU".
func (App) Name() string { return "LU" }

// Classes returns the supported problem classes.
func (App) Classes() []string { return []string{"W", "A"} }

// DefaultClass returns "W".
func (App) DefaultClass() string { return "W" }

// MaxProcs returns the largest supported rank count (one plane per rank).
func (App) MaxProcs(class string) int {
	p, ok := classes[class]
	if !ok {
		return 0
	}
	return p.nz
}

// coeffs are the seven stencil coefficients of the operator.
type coeffs struct {
	d                      float64 // diagonal
	aW, aE, aS, aN, aB, aT float64 // west/east (x), south/north (y), bottom/top (z)
}

func makeCoeffs(pr params) coeffs {
	return coeffs{
		d:  pr.diag,
		aW: -(1 + pr.delta), aE: -(1 - pr.delta),
		aS: -(1 + pr.delta), aN: -(1 - pr.delta),
		aB: -(1 + pr.delta), aT: -(1 - pr.delta),
	}
}

// slab is a rank's block of planes with Dirichlet-zero virtual boundaries.
type slab struct {
	nx, ny, nzLoc int
	zlo, nz       int // global plane offset and global extent
}

func (s *slab) idx(x, y, zl int) int { return (zl*s.ny+y)*s.nx + x }

// get reads a(x,y,zl) treating out-of-range x/y as the zero boundary and
// out-of-slab z through the given ghost planes (nil ghost = domain edge).
func (s *slab) get(a []float64, x, y, zl int, ghLo, ghHi []float64) float64 {
	if x < 0 || x >= s.nx || y < 0 || y >= s.ny {
		return 0
	}
	switch {
	case zl < 0:
		if ghLo == nil {
			return 0
		}
		return ghLo[y*s.nx+x]
	case zl >= s.nzLoc:
		if ghHi == nil {
			return 0
		}
		return ghHi[y*s.nx+x]
	default:
		return a[s.idx(x, y, zl)]
	}
}

// applyA computes w = A u over the slab (ghosts supply z neighbours).
func applyA(fc *fpe.Ctx, s *slab, cf coeffs, u []float64, ghLo, ghHi []float64) []float64 {
	w := make([]float64, len(u))
	for zl := 0; zl < s.nzLoc; zl++ {
		for y := 0; y < s.ny; y++ {
			for x := 0; x < s.nx; x++ {
				acc := fc.Mul(cf.d, u[s.idx(x, y, zl)])
				acc = fc.Add(acc, fc.Mul(cf.aW, s.get(u, x-1, y, zl, ghLo, ghHi)))
				acc = fc.Add(acc, fc.Mul(cf.aE, s.get(u, x+1, y, zl, ghLo, ghHi)))
				acc = fc.Add(acc, fc.Mul(cf.aS, s.get(u, x, y-1, zl, ghLo, ghHi)))
				acc = fc.Add(acc, fc.Mul(cf.aN, s.get(u, x, y+1, zl, ghLo, ghHi)))
				acc = fc.Add(acc, fc.Mul(cf.aB, s.get(u, x, y, zl-1, ghLo, ghHi)))
				acc = fc.Add(acc, fc.Mul(cf.aT, s.get(u, x, y, zl+1, ghLo, ghHi)))
				w[s.idx(x, y, zl)] = acc
			}
		}
	}
	return w
}

// haloTag values; LU reuses tags freely thanks to per-source FIFO matching.
const (
	tagHaloLo = 100 // plane sent downward (to rank-1)
	tagHaloHi = 101 // plane sent upward (to rank+1)
	tagFwd    = 102 // forward-sweep pipeline plane
	tagBwd    = 103 // backward-sweep pipeline plane
)

// exchangeHalos returns the non-periodic ghost planes of a (nil at domain
// edges).
func exchangeHalos(comm *simmpi.Comm, s *slab, a []float64) (ghLo, ghHi []float64) {
	r, p := comm.Rank(), comm.Size()
	if p == 1 {
		return nil, nil
	}
	plane := func(zl int) []float64 {
		out := make([]float64, s.nx*s.ny)
		copy(out, a[zl*s.nx*s.ny:(zl+1)*s.nx*s.ny])
		return out
	}
	if r > 0 {
		comm.Send(r-1, tagHaloLo, plane(0))
	}
	if r < p-1 {
		comm.Send(r+1, tagHaloHi, plane(s.nzLoc-1))
	}
	if r > 0 {
		ghLo = comm.Recv(r-1, tagHaloHi)
	}
	if r < p-1 {
		ghHi = comm.Recv(r+1, tagHaloLo)
	}
	return ghLo, ghHi
}

// forwardSweep solves (D + omega*L) v = r by substitution ascending x, y, z.
// The z dependency pipelines across ranks: wait for the rank below, then
// send the top plane to the rank above.
func forwardSweep(fc *fpe.Ctx, comm *simmpi.Comm, s *slab, cf coeffs, omega float64, r []float64) []float64 {
	rank, p := comm.Rank(), comm.Size()
	var ghLo []float64
	if rank > 0 {
		ghLo = comm.Recv(rank-1, tagFwd)
	}
	v := make([]float64, len(r))
	for zl := 0; zl < s.nzLoc; zl++ {
		for y := 0; y < s.ny; y++ {
			for x := 0; x < s.nx; x++ {
				lsum := fc.Mul(cf.aW, s.get(v, x-1, y, zl, ghLo, nil))
				lsum = fc.Add(lsum, fc.Mul(cf.aS, s.get(v, x, y-1, zl, ghLo, nil)))
				lsum = fc.Add(lsum, fc.Mul(cf.aB, s.get(v, x, y, zl-1, ghLo, nil)))
				num := fc.Sub(r[s.idx(x, y, zl)], fc.Mul(omega, lsum))
				v[s.idx(x, y, zl)] = fc.Div(num, cf.d)
			}
		}
	}
	if rank < p-1 {
		top := make([]float64, s.nx*s.ny)
		copy(top, v[(s.nzLoc-1)*s.nx*s.ny:])
		comm.Send(rank+1, tagFwd, top)
	}
	return v
}

// backwardSweep solves (D + omega*U) w = D v by substitution descending
// x, y, z, pipelining downward across ranks.
func backwardSweep(fc *fpe.Ctx, comm *simmpi.Comm, s *slab, cf coeffs, omega float64, v []float64) []float64 {
	rank, p := comm.Rank(), comm.Size()
	var ghHi []float64
	if rank < p-1 {
		ghHi = comm.Recv(rank+1, tagBwd)
	}
	w := make([]float64, len(v))
	for zl := s.nzLoc - 1; zl >= 0; zl-- {
		for y := s.ny - 1; y >= 0; y-- {
			for x := s.nx - 1; x >= 0; x-- {
				usum := fc.Mul(cf.aE, s.get(w, x+1, y, zl, nil, ghHi))
				usum = fc.Add(usum, fc.Mul(cf.aN, s.get(w, x, y+1, zl, nil, ghHi)))
				usum = fc.Add(usum, fc.Mul(cf.aT, s.get(w, x, y, zl+1, nil, ghHi)))
				num := fc.Sub(fc.Mul(cf.d, v[s.idx(x, y, zl)]), fc.Mul(omega, usum))
				w[s.idx(x, y, zl)] = fc.Div(num, cf.d)
			}
		}
	}
	if rank > 0 {
		bottom := make([]float64, s.nx*s.ny)
		copy(bottom, w[:s.nx*s.ny])
		comm.Send(rank-1, tagBwd, bottom)
	}
	return w
}

// rhsAt returns the manufactured right-hand side at a global grid point —
// a smooth separable field, identical at every scale (setup,
// uninstrumented).
func rhsAt(pr params, x, y, z int) float64 {
	fx := math.Sin(math.Pi * float64(x+1) / float64(pr.nx+1))
	fy := math.Sin(2 * math.Pi * float64(y+1) / float64(pr.ny+1))
	fz := math.Cos(math.Pi * float64(z+1) / float64(pr.nz+1))
	return fx*fy + fz*0.5
}

// Run executes the benchmark on this rank.
func (a App) Run(fc *fpe.Ctx, comm *simmpi.Comm, class string) (apps.RankOutput, error) {
	pr, ok := classes[class]
	if !ok {
		return apps.RankOutput{}, &apps.ErrBadProcs{App: "LU", Class: class, Procs: comm.Size(),
			Reason: "unknown class"}
	}
	if err := apps.CheckProcs(a, class, comm.Size()); err != nil {
		return apps.RankOutput{}, err
	}
	zlo, zhi := apps.Block1D(pr.nz, comm.Size(), comm.Rank())
	s := &slab{nx: pr.nx, ny: pr.ny, nzLoc: zhi - zlo, zlo: zlo, nz: pr.nz}
	cf := makeCoeffs(pr)

	n := s.nx * s.ny * s.nzLoc
	rhs := make([]float64, n)
	for zl := 0; zl < s.nzLoc; zl++ {
		for y := 0; y < s.ny; y++ {
			for x := 0; x < s.nx; x++ {
				rhs[s.idx(x, y, zl)] = rhsAt(pr, x, y, zlo+zl)
			}
		}
	}
	u := make([]float64, n)

	n3 := float64(pr.nx) * float64(pr.ny) * float64(pr.nz)
	var rnorm float64
	for it := 0; it < pr.niter; it++ {
		ghLo, ghHi := exchangeHalos(comm, s, u)
		au := applyA(fc, s, cf, u, ghLo, ghHi)
		r := make([]float64, n)
		for i := range r {
			r[i] = fc.Sub(rhs[i], au[i])
		}
		v := forwardSweep(fc, comm, s, cf, pr.omega, r)
		w := backwardSweep(fc, comm, s, cf, pr.omega, v)
		for i := range u {
			u[i] = fc.Add(u[i], w[i])
		}
		rnorm = math.Sqrt(comm.AllreduceValue(simmpi.OpSum, fc.Dot(r, r)) / n3)
	}
	// Solution RMS norm, the second verification value.
	unorm := math.Sqrt(comm.AllreduceValue(simmpi.OpSum, fc.Dot(u, u)) / n3)

	state := make([]float64, n)
	copy(state, u)
	return apps.RankOutput{State: state, Check: []float64{rnorm, unorm}}, nil
}

// Verify implements the LU checker: the residual and solution norms must
// match the fault-free values within tolerance.
func (App) Verify(golden, check []float64) bool {
	return apps.VerifyRel(golden, check, 1e-8)
}
