// Package store implements the prediction service's durable result
// store: a content-addressed key/value store of JSON documents with a
// bounded in-memory LRU front and atomic-rename persistence.
//
// Keys are arbitrary strings — in practice faultsim campaign identities
// ("cid:v2/...") and prediction-request keys ("pred:v1/...").  Each entry
// lives at <dir>/<sha256(key)>.json inside an envelope that repeats the
// full key, so a (vanishingly unlikely) hash collision or a file copied
// between stores is detected and treated as a miss rather than served as
// a wrong result.  Writes go through a temp file and an atomic rename; a
// crash mid-write can therefore truncate only the temp file, never a
// committed entry, and a corrupt or partial file on disk is skipped (and
// counted) instead of failing the caller.
package store

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// DefaultMaxEntries is the LRU capacity used when Config.MaxEntries is
// zero.
const DefaultMaxEntries = 256

// Config tunes a Store.
type Config struct {
	// Dir is the persistence directory.  Empty means memory-only: entries
	// live solely in the LRU and die with the process.
	Dir string
	// MaxEntries bounds the in-memory LRU (default DefaultMaxEntries).
	// Eviction drops an entry from memory only; its file, when Dir is
	// set, remains and re-populates the LRU on the next Get.
	MaxEntries int
}

// Stats are the store's monotonic operation counters, exported through
// the service's /metrics endpoint.
type Stats struct {
	// Hits and Misses count Get results (a disk hit is a hit).
	Hits   uint64
	Misses uint64
	// MemHits counts the subset of Hits served by the LRU alone.
	MemHits uint64
	// Puts counts successful writes, Evictions LRU drops, and Corrupt the
	// unreadable disk entries that were skipped.
	Puts      uint64
	Evictions uint64
	Corrupt   uint64
}

// entry is one LRU slot.
type entry struct {
	key  string
	data []byte
}

// Store is a content-addressed result store.  It is safe for concurrent
// use.
type Store struct {
	dir string
	max int

	mu    sync.Mutex
	lru   *list.List // front = most recent; values are *entry
	index map[string]*list.Element
	stats Stats
}

// Open creates a store.  When cfg.Dir is non-empty the directory is
// created; existing entries in it are served lazily on Get.
func Open(cfg Config) (*Store, error) {
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = DefaultMaxEntries
	}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: creating %s: %w", cfg.Dir, err)
		}
	}
	return &Store{
		dir:   cfg.Dir,
		max:   cfg.MaxEntries,
		lru:   list.New(),
		index: make(map[string]*list.Element),
	}, nil
}

// Dir returns the persistence directory ("" for memory-only stores).
func (s *Store) Dir() string { return s.dir }

// path returns the content address of key: sha256 over the key bytes.
func (s *Store) path(key string) string {
	h := sha256.Sum256([]byte(key))
	return filepath.Join(s.dir, hex.EncodeToString(h[:])+".json")
}

// envelope is the on-disk record shape.
type envelope struct {
	Key  string          `json:"key"`
	Data json.RawMessage `json:"data"`
}

// Get returns the document stored under key.  The returned slice is
// shared — callers must not modify it.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	if el, ok := s.index[key]; ok {
		s.lru.MoveToFront(el)
		s.stats.Hits++
		s.stats.MemHits++
		data := el.Value.(*entry).data
		s.mu.Unlock()
		return data, true
	}
	s.mu.Unlock()

	if s.dir == "" {
		s.miss()
		return nil, false
	}
	raw, err := os.ReadFile(s.path(key))
	if errors.Is(err, os.ErrNotExist) {
		s.miss()
		return nil, false
	}
	if err != nil {
		s.corrupt()
		return nil, false
	}
	var env envelope
	// A partial or damaged file (failed unmarshal), or an envelope whose
	// key differs (hash collision, file copied from another store), is a
	// skip — never a fatal error and never a wrong answer.
	if err := json.Unmarshal(raw, &env); err != nil || env.Key != key || env.Data == nil {
		s.corrupt()
		return nil, false
	}

	s.mu.Lock()
	s.stats.Hits++
	s.insertLocked(key, env.Data)
	s.mu.Unlock()
	return env.Data, true
}

// Put stores data (a JSON document) under key, replacing any previous
// entry, and persists it when the store has a directory.
func (s *Store) Put(key string, data []byte) error {
	if s.dir != "" {
		env, err := json.Marshal(envelope{Key: key, Data: data})
		if err != nil {
			return fmt.Errorf("store: marshaling %q: %w", key, err)
		}
		path := s.path(key)
		tmp, err := os.CreateTemp(s.dir, filepath.Base(path)+".tmp*")
		if err != nil {
			return fmt.Errorf("store: creating temp file: %w", err)
		}
		_, werr := tmp.Write(env)
		cerr := tmp.Close()
		if werr != nil || cerr != nil {
			os.Remove(tmp.Name())
			if werr == nil {
				werr = cerr
			}
			return fmt.Errorf("store: writing %q: %w", key, werr)
		}
		if err := os.Rename(tmp.Name(), path); err != nil {
			os.Remove(tmp.Name())
			return fmt.Errorf("store: committing %q: %w", key, err)
		}
	}
	s.mu.Lock()
	s.stats.Puts++
	s.insertLocked(key, append([]byte(nil), data...))
	s.mu.Unlock()
	return nil
}

// insertLocked adds or refreshes an LRU entry and evicts past capacity.
func (s *Store) insertLocked(key string, data []byte) {
	if el, ok := s.index[key]; ok {
		el.Value.(*entry).data = data
		s.lru.MoveToFront(el)
		return
	}
	s.index[key] = s.lru.PushFront(&entry{key: key, data: data})
	for s.lru.Len() > s.max {
		last := s.lru.Back()
		s.lru.Remove(last)
		delete(s.index, last.Value.(*entry).key)
		s.stats.Evictions++
	}
}

// GetJSON unmarshals the document under key into v.
func (s *Store) GetJSON(key string, v any) bool {
	data, ok := s.Get(key)
	if !ok {
		return false
	}
	if err := json.Unmarshal(data, v); err != nil {
		s.corrupt()
		return false
	}
	return true
}

// PutJSON marshals v and stores it under key.
func (s *Store) PutJSON(key string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("store: marshaling %q: %w", key, err)
	}
	return s.Put(key, data)
}

// Len returns the number of in-memory entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}

// Stats returns a snapshot of the operation counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

func (s *Store) miss() {
	s.mu.Lock()
	s.stats.Misses++
	s.mu.Unlock()
}

func (s *Store) corrupt() {
	s.mu.Lock()
	s.stats.Misses++
	s.stats.Corrupt++
	s.mu.Unlock()
}
