package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"resmod/internal/faultsim"
	"resmod/internal/stats"
)

func open(t *testing.T, cfg Config) *Store {
	t.Helper()
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRoundTripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s := open(t, Config{Dir: dir})
	if err := s.Put("k1", []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get("k1"); !ok || !bytes.Equal(got, []byte(`{"v":1}`)) {
		t.Fatalf("Get = %q, %v", got, ok)
	}

	// A fresh store over the same directory (a restarted process) serves
	// the entry from disk.
	s2 := open(t, Config{Dir: dir})
	got, ok := s2.Get("k1")
	if !ok || !bytes.Equal(got, []byte(`{"v":1}`)) {
		t.Fatalf("reopened Get = %q, %v", got, ok)
	}
	st := s2.Stats()
	if st.Hits != 1 || st.MemHits != 0 {
		t.Fatalf("disk hit miscounted: %+v", st)
	}
	if _, ok := s2.Get("absent"); ok {
		t.Fatal("absent key found")
	}
	if s2.Stats().Misses != 1 {
		t.Fatalf("miss not counted: %+v", s2.Stats())
	}
}

func TestLRUEviction(t *testing.T) {
	// Memory-only store: eviction is loss.
	mem := open(t, Config{MaxEntries: 2})
	for i := 1; i <= 3; i++ {
		if err := mem.Put(fmt.Sprintf("k%d", i), []byte(`{}`)); err != nil {
			t.Fatal(err)
		}
	}
	if mem.Len() != 2 {
		t.Fatalf("LRU holds %d entries, want 2", mem.Len())
	}
	if _, ok := mem.Get("k1"); ok {
		t.Fatal("oldest entry survived eviction in a memory-only store")
	}
	if _, ok := mem.Get("k3"); !ok {
		t.Fatal("newest entry evicted")
	}
	if mem.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", mem.Stats().Evictions)
	}

	// Disk-backed store: eviction drops memory only; Get re-reads disk.
	disk := open(t, Config{Dir: t.TempDir(), MaxEntries: 2})
	for i := 1; i <= 3; i++ {
		if err := disk.Put(fmt.Sprintf("k%d", i), []byte(`{}`)); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := disk.Get("k1"); !ok {
		t.Fatal("evicted entry not recovered from disk")
	}
	// Recovery re-inserts k1, evicting the LRU tail again.
	if disk.Len() != 2 {
		t.Fatalf("LRU grew past capacity: %d", disk.Len())
	}

	// Accessing an entry refreshes its recency: k1 stays, k3 goes.
	lru := open(t, Config{MaxEntries: 2})
	_ = lru.Put("k1", []byte(`{}`))
	_ = lru.Put("k3", []byte(`{}`))
	lru.Get("k1")
	_ = lru.Put("k4", []byte(`{}`))
	if _, ok := lru.Get("k1"); !ok {
		t.Fatal("recently used entry evicted")
	}
}

func TestCorruptAndPartialFilesAreSkipped(t *testing.T) {
	dir := t.TempDir()
	s := open(t, Config{Dir: dir})
	if err := s.Put("k", []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	path := s.path("k")

	for name, garbage := range map[string][]byte{
		"truncated": []byte(`{"key":"k","da`),
		"not-json":  []byte("\x00\x01garbage"),
		"empty":     nil,
	} {
		if err := os.WriteFile(path, garbage, 0o644); err != nil {
			t.Fatal(err)
		}
		fresh := open(t, Config{Dir: dir})
		if _, ok := fresh.Get("k"); ok {
			t.Fatalf("%s file served as a hit", name)
		}
		st := fresh.Stats()
		if st.Corrupt != 1 || st.Misses != 1 {
			t.Fatalf("%s file miscounted: %+v", name, st)
		}
	}

	// An envelope whose embedded key disagrees (copied from elsewhere,
	// or a hash collision) is also a miss.
	if err := os.WriteFile(path, []byte(`{"key":"other","data":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	fresh := open(t, Config{Dir: dir})
	if _, ok := fresh.Get("k"); ok {
		t.Fatal("foreign envelope served as a hit")
	}

	// A corrupt entry is repaired by the next Put.
	if err := fresh.Put("k", []byte(`{"v":2}`)); err != nil {
		t.Fatal(err)
	}
	again := open(t, Config{Dir: dir})
	if got, ok := again.Get("k"); !ok || string(got) != `{"v":2}` {
		t.Fatalf("repaired entry = %q, %v", got, ok)
	}
}

func TestAtomicWriteLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	s := open(t, Config{Dir: dir})
	for i := 0; i < 10; i++ {
		if err := s.PutJSON("k", map[string]int{"v": i}); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("directory holds %d files, want 1", len(ents))
	}
	if !strings.HasSuffix(ents[0].Name(), ".json") {
		t.Fatalf("unexpected file %s", ents[0].Name())
	}
	if filepath.Base(s.path("k")) != ents[0].Name() {
		t.Fatal("entry not at its content address")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := open(t, Config{Dir: t.TempDir(), MaxEntries: 8})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("k%d", i%16)
				if i%2 == 0 {
					if err := s.PutJSON(key, i); err != nil {
						t.Error(err)
						return
					}
				} else {
					var v int
					s.GetJSON(key, &v)
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestCampaignCache(t *testing.T) {
	st := open(t, Config{Dir: t.TempDir()})
	cache := CampaignCache{Store: st}

	id := "cid:v2/test/X/p1/t5/e1/r0/s1/pat0/tol1e-10"
	sum := &faultsim.Summary{
		Counts:          stats.Counter{Success: 4, SDC: 1},
		Hist:            &stats.Hist{Counts: []uint64{5}},
		ByContamination: map[int]*stats.Counter{1: {Success: 4, SDC: 1}},
		TrialsDone:      5,
	}
	sum.Rates = sum.Counts.Rates()

	if _, ok := cache.GetSummary(id); ok {
		t.Fatal("empty cache hit")
	}
	cache.PutSummary(id, sum)
	got, ok := cache.GetSummary(id)
	if !ok {
		t.Fatal("stored summary not found")
	}
	if got.Rates != sum.Rates || got.TrialsDone != 5 {
		t.Fatalf("restored %+v, want %+v", got.Rates, sum.Rates)
	}

	// Interrupted summaries must never be cached.
	interrupted := *sum
	interrupted.Interrupted = true
	cache.PutSummary("cid:v2/other", &interrupted)
	if _, ok := cache.GetSummary("cid:v2/other"); ok {
		t.Fatal("interrupted summary was cached")
	}
}
