package store

import (
	"resmod/internal/faultsim"
)

// CampaignCache adapts a Store to exper.Config.Cache: campaign summaries
// serialized as versioned faultsim.SummaryRecord documents, keyed by the
// campaign's Identity.  With it wired into a session, an identical
// campaign is computed once ever — later processes restore the summary
// bit-identically from disk.
type CampaignCache struct {
	Store *Store
}

// GetSummary restores the summary cached under the campaign identity.
// Records that fail to decode, carry a different identity, or fail
// Restore's consistency checks are misses.
func (c CampaignCache) GetSummary(identity string) (*faultsim.Summary, bool) {
	rec := &faultsim.SummaryRecord{}
	if !c.Store.GetJSON(identity, rec) {
		return nil, false
	}
	if rec.Identity != identity {
		return nil, false
	}
	sum, err := rec.Restore()
	if err != nil {
		return nil, false
	}
	return sum, true
}

// PutSummary stores the summary under the campaign identity.  Summaries
// with no stable record (interrupted) and write errors are ignored — the
// cache accelerates, it is never the source of truth.
func (c CampaignCache) PutSummary(identity string, sum *faultsim.Summary) {
	rec := sum.Record(identity)
	if rec == nil {
		return
	}
	_ = c.Store.PutJSON(identity, rec)
}
