package telemetry

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"
)

// SeriesResponse is the GET /v1/series JSON document with a name: the
// selected points plus the query echo.
type SeriesResponse struct {
	Name      string        `json:"name"`
	SinceUnix int64         `json:"since_unix"`
	Points    []SamplePoint `json:"points"`
}

// SeriesIndexResponse is the GET /v1/series document without a name:
// what can be queried.
type SeriesIndexResponse struct {
	Series  []string `json:"series"`
	Windows []Window `json:"windows"`
}

// defaultSeriesSpan is how far back a /v1/series query reaches when no
// since parameter is given.
const defaultSeriesSpan = time.Hour

// ServeSeries answers a GET /v1/series request from the store: no
// ?name= lists the known series and retention windows; with one, the
// points since ?since= (unix seconds, or a relative duration like
// "5m"), optionally downsampled to ?max= points.  Both the prediction
// server and the standalone worker mount this, so the query surface is
// identical fleet-wide.  Nil-safe: a nil store serves an empty index.
func ServeSeries(store *SeriesStore, w http.ResponseWriter, r *http.Request) {
	writeJSON := func(code int, v any) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(v)
	}
	name := r.URL.Query().Get("name")
	if name == "" {
		names := store.Names()
		if names == nil {
			names = []string{}
		}
		windows := store.Windows()
		if windows == nil {
			windows = []Window{}
		}
		writeJSON(http.StatusOK, SeriesIndexResponse{Series: names, Windows: windows})
		return
	}
	since := time.Now().Add(-defaultSeriesSpan)
	if raw := r.URL.Query().Get("since"); raw != "" {
		if unix, err := strconv.ParseInt(raw, 10, 64); err == nil {
			since = time.Unix(unix, 0)
		} else if d, err := time.ParseDuration(raw); err == nil {
			if d < 0 {
				d = -d
			}
			since = time.Now().Add(-d)
		} else {
			writeJSON(http.StatusBadRequest, map[string]string{
				"error": "since must be unix seconds or a duration like 5m",
			})
			return
		}
	}
	maxPoints := 0
	if raw := r.URL.Query().Get("max"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			writeJSON(http.StatusBadRequest, map[string]string{
				"error": "max must be a non-negative integer",
			})
			return
		}
		maxPoints = n
	}
	pts := store.Query(name, since, maxPoints)
	if pts == nil {
		pts = []SamplePoint{}
	}
	writeJSON(http.StatusOK, SeriesResponse{
		Name: name, SinceUnix: since.Unix(), Points: pts,
	})
}
