package telemetry

import (
	"sync"
	"testing"
)

func campaignEvent(key string, done, total uint64) ProgressEvent {
	return ProgressEvent{Kind: KindCampaign, Key: key, State: StateRunning,
		Done: done, Total: total}
}

func TestProgressNilSafety(t *testing.T) {
	var p *Progress
	p.Publish(campaignEvent("c", 1, 2)) // must not panic
	if sub := p.Subscribe(8); sub != nil {
		t.Fatal("nil bus returned a non-nil subscription")
	}
	if evs := p.Latest(); evs != nil {
		t.Fatalf("nil bus Latest = %v", evs)
	}
	p.ForwardTo(NewProgress()) // must not panic

	var sub *ProgressSub
	if sub.Events() != nil {
		t.Fatal("nil subscription has a non-nil channel")
	}
	if sub.Dropped() != 0 {
		t.Fatal("nil subscription reports drops")
	}
	sub.Close() // must not panic
}

func TestProgressPublishSubscribe(t *testing.T) {
	p := NewProgress()
	sub := p.Subscribe(8)
	defer sub.Close()
	p.Publish(campaignEvent("a", 1, 10))
	p.Publish(campaignEvent("a", 2, 10))
	ev1 := <-sub.Events()
	ev2 := <-sub.Events()
	if ev1.Done != 1 || ev2.Done != 2 {
		t.Fatalf("events out of order: %+v then %+v", ev1, ev2)
	}
	if ev1.Seq >= ev2.Seq {
		t.Fatalf("sequence numbers not monotone: %d then %d", ev1.Seq, ev2.Seq)
	}
}

func TestProgressReplayOnSubscribe(t *testing.T) {
	p := NewProgress()
	p.Publish(campaignEvent("a", 5, 10))
	p.Publish(campaignEvent("b", 1, 10))
	p.Publish(campaignEvent("a", 7, 10)) // supersedes the first "a"

	sub := p.Subscribe(8)
	defer sub.Close()
	// Replay: the latest snapshot of each key, in publication order.
	ev1 := <-sub.Events()
	ev2 := <-sub.Events()
	if ev1.Key != "b" || ev1.Done != 1 {
		t.Fatalf("first replayed event = %+v, want b@1", ev1)
	}
	if ev2.Key != "a" || ev2.Done != 7 {
		t.Fatalf("second replayed event = %+v, want a@7", ev2)
	}
	select {
	case ev := <-sub.Events():
		t.Fatalf("unexpected extra replay event %+v", ev)
	default:
	}
}

func TestProgressLatest(t *testing.T) {
	p := NewProgress()
	p.Publish(campaignEvent("a", 1, 10))
	p.Publish(ProgressEvent{Kind: KindPrediction, Key: "a", State: StateRunning})
	p.Publish(campaignEvent("a", 3, 10))
	evs := p.Latest()
	if len(evs) != 2 {
		t.Fatalf("Latest returned %d events, want 2 (campaign and prediction kinds keyed separately)", len(evs))
	}
	for _, ev := range evs {
		if ev.Kind == KindCampaign && ev.Done != 3 {
			t.Fatalf("campaign snapshot = %+v, want latest (done=3)", ev)
		}
	}
}

func TestProgressDropOldestNeverBlocks(t *testing.T) {
	p := NewProgress()
	sub := p.Subscribe(16) // minimum buffer is 16
	defer sub.Close()
	// Publish far more than the buffer without reading: must not block.
	for i := uint64(1); i <= 200; i++ {
		p.Publish(campaignEvent("a", i, 200))
	}
	if sub.Dropped() == 0 {
		t.Fatal("expected drops on an unread full subscription")
	}
	// The retained tail ends at the newest event.
	var last ProgressEvent
	for {
		select {
		case last = <-sub.Events():
			continue
		default:
		}
		break
	}
	if last.Done != 200 {
		t.Fatalf("newest retained event done=%d, want 200 (drop-oldest)", last.Done)
	}
}

func TestProgressForwardTo(t *testing.T) {
	parent := NewProgress()
	child := NewProgress()
	child.ForwardTo(parent)
	psub := parent.Subscribe(8)
	defer psub.Close()
	child.Publish(campaignEvent("a", 1, 2))
	ev := <-psub.Events()
	if ev.Key != "a" || ev.Done != 1 {
		t.Fatalf("forwarded event = %+v", ev)
	}
	if len(parent.Latest()) != 1 {
		t.Fatal("parent bus did not record the forwarded snapshot")
	}
}

func TestProgressConcurrentPublishers(t *testing.T) {
	p := NewProgress()
	sub := p.Subscribe(16) // small: force the drop path under contention
	defer sub.Close()
	var drain sync.WaitGroup
	stop := make(chan struct{})
	drain.Add(1)
	go func() {
		defer drain.Done()
		for {
			select {
			case <-sub.Events():
			case <-stop:
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := uint64(0); i < 200; i++ {
				p.Publish(campaignEvent("k", i, 200))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	drain.Wait()
	if got := len(p.Latest()); got != 1 {
		t.Fatalf("Latest tracked %d keys, want 1", got)
	}
}

func TestProgressEventHelpers(t *testing.T) {
	ev := campaignEvent("a", 25, 100)
	if ev.Ratio() != 0.25 {
		t.Fatalf("Ratio = %g", ev.Ratio())
	}
	if (ProgressEvent{}).Ratio() != 0 {
		t.Fatal("zero-total ratio must be 0")
	}
	if ev.Terminal() {
		t.Fatal("running event reported terminal")
	}
	for _, st := range []string{StateDone, StateInterrupted, StateFailed} {
		ev.State = st
		if !ev.Terminal() {
			t.Fatalf("state %q not terminal", st)
		}
	}
	ci := CI{Lo: 0.4, Hi: 0.6}
	if w := ci.Width(); w < 0.199 || w > 0.201 {
		t.Fatalf("CI width = %g", w)
	}
}

func TestTelemetryWithProgress(t *testing.T) {
	var nilTel *Telemetry
	if nilTel.Progress() != nil {
		t.Fatal("nil bundle returned a bus")
	}
	p := NewProgress()
	tel := New(nil, nil, nil).WithProgress(p)
	if tel.Progress() != p {
		t.Fatal("WithProgress did not carry the bus")
	}
	// WithTracer keeps the bus; WithProgress keeps the tracer.
	tr := NewTracer()
	tel2 := tel.WithTracer(tr)
	if tel2.Progress() != p || tel2.Tracer() != tr {
		t.Fatal("WithTracer dropped the progress bus")
	}
}
