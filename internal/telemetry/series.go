package telemetry

import (
	"sort"
	"sync"
	"time"
)

// Time-series retention: a bounded in-process store of sampled metric
// values, so an operator can ask "what was the shed rate over the last
// five minutes" without an external Prometheus.  The store is
// observation-only — it is fed by a Sampler that snapshots counters and
// gauges on a timer; nothing on the campaign hot path ever writes here.
//
// Memory is bounded by construction: each named series keeps one
// fixed-capacity ring per retention window (default 10s×360 ≈ 1h fine
// plus 1m×720 = 12h coarse, ~17KB per series), and the store caps the
// number of distinct series names.

// Window describes one retention ring: samples bucketed at Step
// resolution, keeping the newest Cap buckets.
type Window struct {
	Step time.Duration `json:"step_ns"`
	Cap  int           `json:"cap"`
}

// DefaultWindows is the standard two-tier retention: an hour at 10s
// resolution and twelve hours at 1m.
var DefaultWindows = []Window{
	{Step: 10 * time.Second, Cap: 360},
	{Step: time.Minute, Cap: 720},
}

// DefaultMaxSeries bounds the number of distinct series names a store
// accepts; beyond it new names are dropped (existing ones keep
// recording), so a label explosion cannot grow memory without bound.
const DefaultMaxSeries = 512

// SamplePoint is one retained observation: a unix-seconds timestamp and
// the (bucket-averaged) value.
type SamplePoint struct {
	Unix  int64   `json:"t"`
	Value float64 `json:"v"`
}

// slot is one ring bucket: the bucket's start time plus a running
// sum/count so multiple observations within a bucket average.
type slot struct {
	bucket int64 // unix seconds, truncated to the ring step
	sum    float64
	n      uint32
}

// ring is a fixed-capacity circular buffer of slots.
type ring struct {
	step int64 // seconds
	buf  []slot
	head int // index of the newest slot (valid when n > 0)
	n    int
}

func newRing(w Window) *ring {
	step := int64(w.Step / time.Second)
	if step < 1 {
		step = 1
	}
	cap := w.Cap
	if cap < 1 {
		cap = 1
	}
	return &ring{step: step, buf: make([]slot, cap)}
}

// observe folds one sample into the ring.  Samples landing in the
// current newest bucket average into it; a newer bucket rotates the
// ring (dropping the oldest when full); older-than-newest samples are
// dropped — the sampler only ever moves forward.
func (r *ring) observe(unix int64, v float64) {
	bucket := unix - unix%r.step
	if r.n > 0 {
		newest := &r.buf[r.head]
		if bucket == newest.bucket {
			newest.sum += v
			newest.n++
			return
		}
		if bucket < newest.bucket {
			return
		}
	}
	r.head = (r.head + 1) % len(r.buf)
	r.buf[r.head] = slot{bucket: bucket, sum: v, n: 1}
	if r.n < len(r.buf) {
		r.n++
	}
}

// points appends the ring's samples at or after since (unix seconds),
// oldest first.
func (r *ring) points(since int64, out []SamplePoint) []SamplePoint {
	for i := 0; i < r.n; i++ {
		s := r.buf[(r.head-r.n+1+i+len(r.buf))%len(r.buf)]
		if s.bucket < since || s.n == 0 {
			continue
		}
		out = append(out, SamplePoint{Unix: s.bucket, Value: s.sum / float64(s.n)})
	}
	return out
}

// oldest returns the ring's oldest retained bucket (0 when empty).
func (r *ring) oldest() int64 {
	if r.n == 0 {
		return 0
	}
	return r.buf[(r.head-r.n+1+len(r.buf))%len(r.buf)].bucket
}

// series is one named metric's retention: one ring per window.
type series struct {
	rings []*ring
}

// SeriesStore retains sampled values for a bounded set of named series.
// A nil *SeriesStore is valid and inert, mirroring *Progress: call
// sites need no nil checks.
type SeriesStore struct {
	windows   []Window
	maxSeries int

	mu     sync.Mutex
	series map[string]*series
}

// NewSeriesStore builds a store over the given retention windows
// (DefaultWindows when none are given).
func NewSeriesStore(windows ...Window) *SeriesStore {
	if len(windows) == 0 {
		windows = DefaultWindows
	}
	return &SeriesStore{
		windows:   windows,
		maxSeries: DefaultMaxSeries,
		series:    make(map[string]*series),
	}
}

// Windows returns the store's retention tiers.
func (s *SeriesStore) Windows() []Window {
	if s == nil {
		return nil
	}
	return s.windows
}

// Observe records one sample into every retention ring of the named
// series, creating the series on first touch (unless the store is at
// its name cap).  Nil-safe no-op.
func (s *SeriesStore) Observe(name string, now time.Time, v float64) {
	if s == nil {
		return
	}
	unix := now.Unix()
	s.mu.Lock()
	defer s.mu.Unlock()
	sr, ok := s.series[name]
	if !ok {
		if len(s.series) >= s.maxSeries {
			return
		}
		sr = &series{rings: make([]*ring, len(s.windows))}
		for i, w := range s.windows {
			sr.rings[i] = newRing(w)
		}
		s.series[name] = sr
	}
	for _, r := range sr.rings {
		r.observe(unix, v)
	}
}

// Names lists the known series, sorted.  Nil-safe.
func (s *SeriesStore) Names() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	names := make([]string, 0, len(s.series))
	for n := range s.series {
		names = append(names, n)
	}
	s.mu.Unlock()
	sort.Strings(names)
	return names
}

// Latest returns the newest retained point of the named series.
// Nil-safe; ok is false when the series is unknown or empty.
func (s *SeriesStore) Latest(name string) (SamplePoint, bool) {
	if s == nil {
		return SamplePoint{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sr := s.series[name]
	if sr == nil {
		return SamplePoint{}, false
	}
	r := sr.rings[0]
	if r.n == 0 {
		return SamplePoint{}, false
	}
	newest := r.buf[r.head]
	return SamplePoint{Unix: newest.bucket, Value: newest.sum / float64(newest.n)}, true
}

// MeanSince returns the mean of the named series' points at or after
// since, with the number of points averaged.  Nil-safe.
func (s *SeriesStore) MeanSince(name string, since time.Time) (float64, int) {
	pts := s.Query(name, since, 0)
	if len(pts) == 0 {
		return 0, 0
	}
	var sum float64
	for _, p := range pts {
		sum += p.Value
	}
	return sum / float64(len(pts)), len(pts)
}

// Query returns the named series' points at or after since, oldest
// first, from the finest window that still covers since (a query
// reaching past the fine ring's horizon answers from the coarse one).
// When maxPoints > 0 and the selection is larger, adjacent points are
// averaged down to at most maxPoints — the dashboard's sparkline
// downsampler.  Nil-safe.
func (s *SeriesStore) Query(name string, since time.Time, maxPoints int) []SamplePoint {
	if s == nil {
		return nil
	}
	sinceUnix := since.Unix()
	s.mu.Lock()
	sr := s.series[name]
	var pts []SamplePoint
	if sr != nil {
		r := sr.rings[0]
		for _, cand := range sr.rings {
			if old := cand.oldest(); old != 0 && old <= sinceUnix {
				r = cand
				break
			}
			// Coarser rings reach further back; fall through to the
			// coarsest when none covers since.
			r = cand
		}
		pts = r.points(sinceUnix, make([]SamplePoint, 0, r.n))
	}
	s.mu.Unlock()
	return Downsample(pts, maxPoints)
}

// Downsample reduces pts to at most maxPoints by averaging adjacent
// groups (each group keeps its last timestamp).  maxPoints <= 0 returns
// pts unchanged.
func Downsample(pts []SamplePoint, maxPoints int) []SamplePoint {
	if maxPoints <= 0 || len(pts) <= maxPoints {
		return pts
	}
	out := make([]SamplePoint, 0, maxPoints)
	group := (len(pts) + maxPoints - 1) / maxPoints
	for i := 0; i < len(pts); i += group {
		end := i + group
		if end > len(pts) {
			end = len(pts)
		}
		var sum float64
		for _, p := range pts[i:end] {
			sum += p.Value
		}
		out = append(out, SamplePoint{
			Unix:  pts[end-1].Unix,
			Value: sum / float64(end-i),
		})
	}
	return out
}

// Samples is one sampling tick's raw readings, split by semantics:
// Gauges are stored as-is; Counters are monotone totals the sampler
// differentiates into per-second rates before storing (so the retained
// series for a counter name reads as a rate).
type Samples struct {
	Gauges   map[string]float64
	Counters map[string]float64
}

// SampleSource produces one tick's readings.  Sources must be cheap and
// safe to call from the sampler goroutine; they run outside any engine
// lock (they read atomic counters and snapshots only).
type SampleSource func() Samples

// Sampler periodically reads a SampleSource into a SeriesStore,
// converting counters into rates via consecutive-tick deltas.  Drive it
// either with Run (own ticker goroutine) or by calling SampleNow from
// an existing loop — the worker piggybacks sampling on its heartbeat
// ticks that way.
type Sampler struct {
	store *SeriesStore
	src   SampleSource
	every time.Duration

	// onSample, when set, runs after each tick lands in the store — the
	// alert engine's evaluation hook, so alerts always judge fresh data.
	onSample func(now time.Time)

	mu    sync.Mutex
	prev  map[string]float64
	prevT time.Time
}

// NewSampler builds a sampler over store reading src every period
// (default 10s when every <= 0).
func NewSampler(store *SeriesStore, src SampleSource, every time.Duration) *Sampler {
	if every <= 0 {
		every = 10 * time.Second
	}
	return &Sampler{store: store, src: src, every: every}
}

// Every returns the sampling period.
func (s *Sampler) Every() time.Duration {
	if s == nil {
		return 0
	}
	return s.every
}

// OnSample registers the post-tick hook.  Call before the sampler is
// shared between goroutines.
func (s *Sampler) OnSample(fn func(now time.Time)) {
	if s != nil {
		s.onSample = fn
	}
}

// SampleNow executes one tick at the given instant: read the source,
// store gauges verbatim, differentiate counters into rates.  A counter
// that decreased (process restart, source reset) records no rate for
// that interval and re-bases.  Nil-safe.
func (s *Sampler) SampleNow(now time.Time) {
	if s == nil {
		return
	}
	smp := s.src()
	for name, v := range smp.Gauges {
		s.store.Observe(name, now, v)
	}
	s.mu.Lock()
	dt := now.Sub(s.prevT).Seconds()
	for name, v := range smp.Counters {
		prev, seen := s.prev[name]
		if seen && dt > 0 && v >= prev {
			s.store.Observe(name, now, (v-prev)/dt)
		}
		if s.prev == nil {
			s.prev = make(map[string]float64, len(smp.Counters))
		}
		s.prev[name] = v
	}
	s.prevT = now
	s.mu.Unlock()
	if s.onSample != nil {
		s.onSample(now)
	}
}

// Run ticks until done is closed (or the channel is nil and the
// goroutine leaks — pass a real channel).  One immediate tick seeds the
// counter baselines so the first real interval yields rates.
func (s *Sampler) Run(done <-chan struct{}) {
	if s == nil {
		return
	}
	s.SampleNow(time.Now())
	t := time.NewTicker(s.every)
	defer t.Stop()
	for {
		select {
		case <-done:
			return
		case now := <-t.C:
			s.SampleNow(now)
		}
	}
}
