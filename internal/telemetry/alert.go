package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Alerting over the retained series: declarative rules evaluated after
// every sampling tick, each driving a small state machine with
// hysteresis so operators see "firing" only after a condition holds for
// a while and "resolved" only after it clearly stops.  Like the rest of
// telemetry, the engine is observation-only: it reads the SeriesStore
// and publishes transitions onto the Progress bus; it never touches
// campaign execution.

// Alert states.
const (
	// AlertInactive: the condition does not hold (steady state).
	AlertInactive = "inactive"
	// AlertPending: the condition holds but not yet for the rule's For
	// duration.
	AlertPending = "pending"
	// AlertFiring: the condition has held for For — page the operator.
	AlertFiring = "firing"
	// AlertResolved: the alert fired and the condition has since cleared
	// for ClearFor; retained so operators see recent incidents.
	AlertResolved = "resolved"
)

// Rule is one declarative alert condition over a retained series.
//
// The grammar is deliberately small: a rule watches one series (exact
// name, or a trailing "/*" prefix wildcard that tracks each matching
// instance independently), compares its latest value against Threshold
// with Op, and fires after the comparison has held for For.  Two
// refinements cover real SLO practice:
//
//   - Hysteresis: Clear, when set, is a separate threshold the value
//     must cross back over (for ClearFor) before the alert resolves, so
//     a series oscillating around Threshold does not flap.
//   - Burn rate: when Budget > 0, the rule compares the series' mean
//     over BurnWindow divided by Budget — "we are consuming our error
//     budget N× too fast" — instead of the instantaneous value.
type Rule struct {
	// Name identifies the rule in /v1/alerts, metrics, and bus events.
	Name string `json:"name"`
	// Series is the watched series name; a trailing "/*" matches every
	// series with the prefix, with independent alert state per instance.
	Series string `json:"series"`
	// Op is ">" (default) or "<".
	Op string `json:"op,omitempty"`
	// Threshold is the trip level for the comparison.
	Threshold float64 `json:"threshold"`
	// For is how long the condition must hold before pending→firing
	// (0: fire on first breach).
	For time.Duration `json:"for_ns,omitempty"`
	// Clear, when non-nil, is the hysteresis level the value must cross
	// back over before the alert resolves (default: Threshold).
	Clear *float64 `json:"clear,omitempty"`
	// ClearFor is how long the cleared condition must hold before
	// firing→resolved (0: resolve on first clear reading).
	ClearFor time.Duration `json:"clear_for_ns,omitempty"`
	// Budget and BurnWindow switch the rule to burn-rate mode: the
	// compared value becomes mean(series over BurnWindow) / Budget.
	Budget     float64       `json:"budget,omitempty"`
	BurnWindow time.Duration `json:"burn_window_ns,omitempty"`
	// MaxAge drops stale inputs: a latest point older than MaxAge is
	// treated as "no data" and leaves the alert state unchanged
	// (0: accept any age).
	MaxAge time.Duration `json:"max_age_ns,omitempty"`
	// Help is the operator-facing one-liner shown in /v1/alerts.
	Help string `json:"help,omitempty"`
}

// wildcard reports whether the rule tracks per-instance series, and the
// prefix it matches.
func (r Rule) wildcard() (prefix string, ok bool) {
	if strings.HasSuffix(r.Series, "/*") {
		return strings.TrimSuffix(r.Series, "*"), true
	}
	return "", false
}

// breached reports whether v trips the rule's threshold.
func (r Rule) breached(v float64) bool {
	if r.Op == "<" {
		return v < r.Threshold
	}
	return v > r.Threshold
}

// cleared reports whether v is back on the safe side of the hysteresis
// level.
func (r Rule) cleared(v float64) bool {
	level := r.Threshold
	if r.Clear != nil {
		level = *r.Clear
	}
	if r.Op == "<" {
		return v >= level
	}
	return v <= level
}

// Alert is one rule instance's current status, JSON-ready for
// /v1/alerts.
type Alert struct {
	Rule string `json:"rule"`
	// Instance is the concrete series name for wildcard rules ("" for
	// exact rules).
	Instance string  `json:"instance,omitempty"`
	Series   string  `json:"series"`
	State    string  `json:"state"`
	Value    float64 `json:"value"`
	// Threshold echoes the rule's trip level (burn-rate rules report the
	// burn multiple, so Threshold is the allowed multiple).
	Threshold float64 `json:"threshold"`
	// SinceUnix is when the alert entered its current state.
	SinceUnix int64  `json:"since_unix,omitempty"`
	Help      string `json:"help,omitempty"`
}

// alertState is the per-(rule,instance) state machine.
type alertState struct {
	state     string
	since     time.Time // entered current state
	breachAt  time.Time // first consecutive breached reading (pending timer)
	clearAt   time.Time // first consecutive cleared reading (resolve timer)
	lastValue float64
}

// AlertEngine evaluates rules against a SeriesStore after each sampling
// tick.  Transitions publish KindAlert events onto the bus; the full
// current set is available via Alerts.  Nil-safe.
type AlertEngine struct {
	store *SeriesStore
	bus   *Progress

	mu     sync.Mutex
	rules  []Rule
	states map[string]*alertState // key: rule + "\x00" + instance
}

// NewAlertEngine builds an engine over the store publishing transitions
// to bus (either may be nil; a nil store yields no data and no alerts).
func NewAlertEngine(store *SeriesStore, bus *Progress, rules []Rule) *AlertEngine {
	return &AlertEngine{
		store:  store,
		bus:    bus,
		rules:  rules,
		states: make(map[string]*alertState),
	}
}

// Rules returns the engine's rule set.  Nil-safe.
func (e *AlertEngine) Rules() []Rule {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Rule(nil), e.rules...)
}

// Evaluate runs every rule against the store's current data and returns
// the alerts that changed state, publishing each transition onto the
// bus.  Call it from the sampler's OnSample hook so rules always judge
// fresh points.  Nil-safe.
func (e *AlertEngine) Evaluate(now time.Time) []Alert {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	var changed []Alert
	for _, r := range e.rules {
		for _, inst := range e.instancesLocked(r) {
			v, ok := e.ruleValue(r, inst.series, now)
			if !ok {
				continue
			}
			key := r.Name + "\x00" + inst.instance
			st := e.states[key]
			if st == nil {
				st = &alertState{state: AlertInactive, since: now}
				e.states[key] = st
			}
			prev := st.state
			e.step(r, st, v, now)
			st.lastValue = v
			if st.state != prev {
				st.since = now
				a := e.alertLocked(r, inst.instance, inst.series, st)
				changed = append(changed, a)
				e.bus.Publish(ProgressEvent{
					Kind:  KindAlert,
					Key:   a.Rule + keySep(a.Instance),
					State: a.State,
				})
			}
		}
	}
	return changed
}

// keySep renders the bus-event key suffix for an instance.
func keySep(instance string) string {
	if instance == "" {
		return ""
	}
	return "/" + instance
}

// ruleInstance pairs a wildcard match's display name with its concrete
// series.
type ruleInstance struct{ instance, series string }

// instancesLocked resolves the rule's concrete series: itself for exact
// rules, every matching store series for wildcard rules — plus any
// instance that already has alert state, so an alert on a series that
// stopped reporting can still resolve or stay visible.
func (e *AlertEngine) instancesLocked(r Rule) []ruleInstance {
	prefix, wild := r.wildcard()
	if !wild {
		return []ruleInstance{{instance: "", series: r.Series}}
	}
	seen := make(map[string]bool)
	var out []ruleInstance
	for _, name := range e.store.Names() {
		if strings.HasPrefix(name, prefix) {
			inst := strings.TrimPrefix(name, prefix)
			seen[inst] = true
			out = append(out, ruleInstance{instance: inst, series: name})
		}
	}
	for key := range e.states {
		rule, inst, _ := strings.Cut(key, "\x00")
		if rule == r.Name && inst != "" && !seen[inst] {
			out = append(out, ruleInstance{instance: inst, series: prefix + inst})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].instance < out[j].instance })
	return out
}

// ruleValue computes the compared value for one rule instance: the
// latest point (threshold mode) or the windowed mean over the budget
// (burn-rate mode).  ok is false on no/stale data.
func (e *AlertEngine) ruleValue(r Rule, series string, now time.Time) (float64, bool) {
	if r.Budget > 0 && r.BurnWindow > 0 {
		mean, n := e.store.MeanSince(series, now.Add(-r.BurnWindow))
		if n == 0 {
			return 0, false
		}
		return mean / r.Budget, true
	}
	p, ok := e.store.Latest(series)
	if !ok {
		return 0, false
	}
	if r.MaxAge > 0 && now.Unix()-p.Unix > int64(r.MaxAge/time.Second) {
		return 0, false
	}
	return p.Value, true
}

// step advances one state machine by one reading.
func (e *AlertEngine) step(r Rule, st *alertState, v float64, now time.Time) {
	breached := r.breached(v)
	cleared := r.cleared(v)
	switch st.state {
	case AlertInactive, AlertResolved:
		if breached {
			st.breachAt = now
			st.state = AlertPending
			if r.For <= 0 {
				st.state = AlertFiring
			}
		}
	case AlertPending:
		if !breached {
			st.state = AlertInactive
		} else if now.Sub(st.breachAt) >= r.For {
			st.state = AlertFiring
		}
	case AlertFiring:
		if cleared {
			if st.clearAt.IsZero() {
				st.clearAt = now
			}
			if now.Sub(st.clearAt) >= r.ClearFor {
				st.state = AlertResolved
			}
		} else {
			// Between Clear and Threshold (hysteresis band) or breached
			// again: stay firing, reset the resolve timer.
			st.clearAt = time.Time{}
		}
	}
	if st.state != AlertFiring {
		st.clearAt = time.Time{}
	}
}

// alertLocked renders one state as an Alert.
func (e *AlertEngine) alertLocked(r Rule, instance, series string, st *alertState) Alert {
	return Alert{
		Rule:      r.Name,
		Instance:  instance,
		Series:    series,
		State:     st.state,
		Value:     st.lastValue,
		Threshold: r.Threshold,
		SinceUnix: st.since.Unix(),
		Help:      r.Help,
	}
}

// Alerts returns every rule instance's current status (including
// inactive rules, so /v1/alerts documents what is watched), sorted by
// rule then instance.  Nil-safe.
func (e *AlertEngine) Alerts() []Alert {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []Alert
	for _, r := range e.rules {
		insts := e.instancesLocked(r)
		if _, wild := r.wildcard(); wild && len(insts) == 0 {
			continue
		}
		for _, inst := range insts {
			st := e.states[r.Name+"\x00"+inst.instance]
			if st == nil {
				st = &alertState{state: AlertInactive}
			}
			out = append(out, e.alertLocked(r, inst.instance, inst.series, st))
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rule != out[j].Rule {
			return out[i].Rule < out[j].Rule
		}
		return out[i].Instance < out[j].Instance
	})
	return out
}

// Validate rejects malformed rules before an engine is built from
// operator input.
func (r Rule) Validate() error {
	if r.Name == "" {
		return fmt.Errorf("alert rule: name is required")
	}
	if r.Series == "" {
		return fmt.Errorf("alert rule %s: series is required", r.Name)
	}
	if r.Op != "" && r.Op != ">" && r.Op != "<" {
		return fmt.Errorf("alert rule %s: op must be \">\" or \"<\", got %q", r.Name, r.Op)
	}
	if (r.Budget > 0) != (r.BurnWindow > 0) {
		return fmt.Errorf("alert rule %s: budget and burn_window must be set together", r.Name)
	}
	return nil
}
