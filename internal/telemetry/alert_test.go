package telemetry

import (
	"testing"
	"time"
)

// feed writes one gauge point per second into the store and evaluates
// the engine after each, returning the final state of the named rule.
func feed(t *testing.T, store *SeriesStore, eng *AlertEngine, series string, base time.Time, values []float64) {
	t.Helper()
	for i, v := range values {
		now := base.Add(time.Duration(i) * time.Second)
		store.Observe(series, now, v)
		eng.Evaluate(now)
	}
}

func ruleState(t *testing.T, eng *AlertEngine, rule, instance string) string {
	t.Helper()
	for _, a := range eng.Alerts() {
		if a.Rule == rule && a.Instance == instance {
			return a.State
		}
	}
	t.Fatalf("rule %s instance %q not in Alerts()", rule, instance)
	return ""
}

func TestAlertLifecycleTable(t *testing.T) {
	clear := 5.0
	cases := []struct {
		name   string
		rule   Rule
		values []float64
		want   string
	}{
		{
			name:   "inactive below threshold",
			rule:   Rule{Name: "r", Series: "x", Threshold: 10},
			values: []float64{1, 2, 3},
			want:   AlertInactive,
		},
		{
			name:   "fires immediately with no for-duration",
			rule:   Rule{Name: "r", Series: "x", Threshold: 10},
			values: []float64{11},
			want:   AlertFiring,
		},
		{
			name:   "pending until for-duration elapses",
			rule:   Rule{Name: "r", Series: "x", Threshold: 10, For: 5 * time.Second},
			values: []float64{11, 12},
			want:   AlertPending,
		},
		{
			name:   "firing after for-duration",
			rule:   Rule{Name: "r", Series: "x", Threshold: 10, For: 2 * time.Second},
			values: []float64{11, 12, 13},
			want:   AlertFiring,
		},
		{
			name:   "pending cancels when condition stops",
			rule:   Rule{Name: "r", Series: "x", Threshold: 10, For: 10 * time.Second},
			values: []float64{11, 12, 3},
			want:   AlertInactive,
		},
		{
			name:   "resolves when cleared",
			rule:   Rule{Name: "r", Series: "x", Threshold: 10},
			values: []float64{11, 12, 3},
			want:   AlertResolved,
		},
		{
			name:   "hysteresis band keeps firing",
			rule:   Rule{Name: "r", Series: "x", Threshold: 10, Clear: &clear},
			values: []float64{11, 7, 7, 7}, // 7 is below Threshold but above Clear
			want:   AlertFiring,
		},
		{
			name:   "hysteresis resolves below clear level",
			rule:   Rule{Name: "r", Series: "x", Threshold: 10, Clear: &clear},
			values: []float64{11, 7, 4},
			want:   AlertResolved,
		},
		{
			name:   "clear-for delays resolve",
			rule:   Rule{Name: "r", Series: "x", Threshold: 10, ClearFor: 5 * time.Second},
			values: []float64{11, 3, 3},
			want:   AlertFiring,
		},
		{
			name:   "clear-for elapses then resolves",
			rule:   Rule{Name: "r", Series: "x", Threshold: 10, ClearFor: 2 * time.Second},
			values: []float64{11, 3, 3, 3, 3},
			want:   AlertResolved,
		},
		{
			name:   "re-breach after resolve goes pending again",
			rule:   Rule{Name: "r", Series: "x", Threshold: 10, For: 5 * time.Second},
			values: []float64{11, 11, 11, 11, 11, 11, 11, 3, 12},
			want:   AlertPending,
		},
		{
			name:   "less-than operator",
			rule:   Rule{Name: "r", Series: "x", Op: "<", Threshold: 2},
			values: []float64{5, 1},
			want:   AlertFiring,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			store := NewSeriesStore(Window{Step: time.Second, Cap: 128})
			eng := NewAlertEngine(store, nil, []Rule{tc.rule})
			feed(t, store, eng, "x", time.Unix(10000, 0), tc.values)
			if got := ruleState(t, eng, "r", ""); got != tc.want {
				t.Fatalf("state = %s, want %s", got, tc.want)
			}
		})
	}
}

func TestAlertBurnRate(t *testing.T) {
	store := NewSeriesStore(Window{Step: time.Second, Cap: 128})
	// Error budget 0.01 (1% errors allowed); fire when the 10s mean
	// burns it more than 2× fast.
	eng := NewAlertEngine(store, nil, []Rule{{
		Name: "burn", Series: "err_rate",
		Threshold: 2, Budget: 0.01, BurnWindow: 10 * time.Second,
	}})
	base := time.Unix(20000, 0)
	// 1.5% errors: burn multiple 1.5 < 2 — inactive.
	feed(t, store, eng, "err_rate", base, []float64{0.015, 0.015, 0.015})
	if got := ruleState(t, eng, "burn", ""); got != AlertInactive {
		t.Fatalf("burn 1.5x: state = %s, want inactive", got)
	}
	// 5% errors: the window mean climbs past 2x the budget.
	feed(t, store, eng, "err_rate", base.Add(3*time.Second),
		[]float64{0.05, 0.05, 0.05, 0.05, 0.05, 0.05, 0.05})
	if got := ruleState(t, eng, "burn", ""); got != AlertFiring {
		t.Fatalf("burn 5x: state = %s, want firing", got)
	}
}

func TestAlertWildcardInstances(t *testing.T) {
	store := NewSeriesStore(Window{Step: time.Second, Cap: 128})
	eng := NewAlertEngine(store, nil, []Rule{{
		Name: "stale", Series: "hb_age/*", Threshold: 30,
	}})
	base := time.Unix(30000, 0)
	store.Observe("hb_age/w1", base, 5)
	store.Observe("hb_age/w2", base, 99)
	eng.Evaluate(base)
	if got := ruleState(t, eng, "stale", "w1"); got != AlertInactive {
		t.Fatalf("w1 state = %s, want inactive", got)
	}
	if got := ruleState(t, eng, "stale", "w2"); got != AlertFiring {
		t.Fatalf("w2 state = %s, want firing", got)
	}
	// w2 recovers; w1 unaffected.
	store.Observe("hb_age/w2", base.Add(time.Second), 3)
	eng.Evaluate(base.Add(time.Second))
	if got := ruleState(t, eng, "stale", "w2"); got != AlertResolved {
		t.Fatalf("w2 state after recovery = %s, want resolved", got)
	}
}

func TestAlertTransitionsPublishOnBus(t *testing.T) {
	store := NewSeriesStore(Window{Step: time.Second, Cap: 128})
	bus := NewProgress()
	sub := bus.Subscribe(16)
	defer sub.Close()
	eng := NewAlertEngine(store, bus, []Rule{{
		Name: "shed", Series: "sheds", Threshold: 1, For: time.Second,
	}})
	base := time.Unix(40000, 0)
	feed(t, store, eng, "sheds", base, []float64{5, 5, 5, 0})

	var states []string
	for len(states) < 3 {
		select {
		case ev := <-sub.Events():
			if ev.Kind != KindAlert {
				t.Fatalf("unexpected event kind %q", ev.Kind)
			}
			if ev.Key != "shed" {
				t.Fatalf("event key = %q, want shed", ev.Key)
			}
			states = append(states, ev.State)
		case <-time.After(time.Second):
			t.Fatalf("bus events missing; got %v", states)
		}
	}
	want := []string{AlertPending, AlertFiring, AlertResolved}
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("bus transitions = %v, want %v", states, want)
		}
	}
}

func TestAlertStaleDataFreezesState(t *testing.T) {
	store := NewSeriesStore(Window{Step: time.Second, Cap: 128})
	eng := NewAlertEngine(store, nil, []Rule{{
		Name: "r", Series: "x", Threshold: 10, MaxAge: 5 * time.Second,
	}})
	base := time.Unix(50000, 0)
	store.Observe("x", base, 50)
	eng.Evaluate(base)
	if got := ruleState(t, eng, "r", ""); got != AlertFiring {
		t.Fatalf("state = %s, want firing", got)
	}
	// The series stops reporting: evaluation far past MaxAge must not
	// invent a resolve.
	eng.Evaluate(base.Add(time.Minute))
	if got := ruleState(t, eng, "r", ""); got != AlertFiring {
		t.Fatalf("stale data changed state to %s", got)
	}
}

func TestAlertEngineNilSafe(t *testing.T) {
	var eng *AlertEngine
	if eng.Evaluate(time.Now()) != nil || eng.Alerts() != nil || eng.Rules() != nil {
		t.Fatal("nil engine must report nothing")
	}
	// Engine over a nil store: no data, no transitions, no panic.
	live := NewAlertEngine(nil, nil, []Rule{{Name: "r", Series: "x", Threshold: 1}})
	if got := live.Evaluate(time.Now()); got != nil {
		t.Fatalf("nil-store engine produced transitions: %+v", got)
	}
}

func TestRuleValidate(t *testing.T) {
	good := Rule{Name: "r", Series: "x", Threshold: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid rule rejected: %v", err)
	}
	bad := []Rule{
		{Series: "x"},
		{Name: "r"},
		{Name: "r", Series: "x", Op: ">="},
		{Name: "r", Series: "x", Budget: 0.1},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Fatalf("bad rule %d accepted", i)
		}
	}
}
