package telemetry

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestSeriesRingBoundedAndOrdered(t *testing.T) {
	s := NewSeriesStore(Window{Step: time.Second, Cap: 4})
	base := time.Unix(1000, 0)
	for i := 0; i < 10; i++ {
		s.Observe("x", base.Add(time.Duration(i)*time.Second), float64(i))
	}
	pts := s.Query("x", time.Unix(0, 0), 0)
	if len(pts) != 4 {
		t.Fatalf("ring kept %d points, want cap 4", len(pts))
	}
	for i, p := range pts {
		wantT := int64(1006 + i)
		wantV := float64(6 + i)
		if p.Unix != wantT || p.Value != wantV {
			t.Fatalf("point %d = {%d %v}, want {%d %v}", i, p.Unix, p.Value, wantT, wantV)
		}
	}
}

func TestSeriesBucketAveraging(t *testing.T) {
	s := NewSeriesStore(Window{Step: 10 * time.Second, Cap: 8})
	base := time.Unix(2000, 0)
	// Three samples in the same 10s bucket average.
	s.Observe("x", base, 1)
	s.Observe("x", base.Add(3*time.Second), 2)
	s.Observe("x", base.Add(6*time.Second), 6)
	pts := s.Query("x", time.Unix(0, 0), 0)
	if len(pts) != 1 {
		t.Fatalf("got %d points, want 1", len(pts))
	}
	if pts[0].Value != 3 {
		t.Fatalf("bucket mean = %v, want 3", pts[0].Value)
	}
	// Out-of-order (older than newest bucket) samples are dropped.
	s.Observe("x", base.Add(20*time.Second), 9)
	s.Observe("x", base, 100)
	pts = s.Query("x", time.Unix(0, 0), 0)
	if len(pts) != 2 || pts[0].Value != 3 || pts[1].Value != 9 {
		t.Fatalf("after stale write: %+v", pts)
	}
}

func TestSeriesQuerySinceAndCoarseFallback(t *testing.T) {
	// Fine ring holds 4×1s, coarse holds 100×10s: a query reaching past
	// the fine horizon must answer from the coarse ring.
	s := NewSeriesStore(Window{Step: time.Second, Cap: 4}, Window{Step: 10 * time.Second, Cap: 100})
	base := time.Unix(5000, 0)
	for i := 0; i < 60; i++ {
		s.Observe("x", base.Add(time.Duration(i)*time.Second), float64(i))
	}
	// Recent query: served at 1s resolution.
	fine := s.Query("x", base.Add(57*time.Second), 0)
	if len(fine) != 3 {
		t.Fatalf("fine query returned %d points, want 3", len(fine))
	}
	// Query from the start: fine ring lost it, coarse ring covers it.
	coarse := s.Query("x", base, 0)
	if len(coarse) != 6 {
		t.Fatalf("coarse query returned %d points, want 6 (10s buckets over 60s)", len(coarse))
	}
	if coarse[0].Unix != 5000 {
		t.Fatalf("coarse first bucket at %d, want 5000", coarse[0].Unix)
	}
}

func TestDownsample(t *testing.T) {
	pts := make([]SamplePoint, 10)
	for i := range pts {
		pts[i] = SamplePoint{Unix: int64(i), Value: float64(i)}
	}
	down := Downsample(pts, 5)
	if len(down) != 5 {
		t.Fatalf("downsampled to %d, want 5", len(down))
	}
	if down[0].Value != 0.5 || down[0].Unix != 1 {
		t.Fatalf("first group = %+v, want mean 0.5 at t=1", down[0])
	}
	if got := Downsample(pts, 0); len(got) != 10 {
		t.Fatalf("maxPoints=0 must be a no-op, got %d points", len(got))
	}
	if got := Downsample(pts, 100); len(got) != 10 {
		t.Fatalf("maxPoints>len must be a no-op, got %d points", len(got))
	}
}

func TestSeriesStoreNilSafe(t *testing.T) {
	var s *SeriesStore
	s.Observe("x", time.Now(), 1)
	if s.Names() != nil || s.Windows() != nil {
		t.Fatal("nil store must report nothing")
	}
	if pts := s.Query("x", time.Time{}, 0); pts != nil {
		t.Fatal("nil store query must return nil")
	}
	if _, ok := s.Latest("x"); ok {
		t.Fatal("nil store has no latest point")
	}
	var sm *Sampler
	sm.SampleNow(time.Now()) // must not panic
	sm.Run(nil)              // nil sampler returns immediately
	if sm.Every() != 0 {
		t.Fatal("nil sampler period must be 0")
	}
}

func TestSeriesMaxNames(t *testing.T) {
	s := NewSeriesStore(Window{Step: time.Second, Cap: 2})
	s.maxSeries = 3
	now := time.Unix(100, 0)
	for i := 0; i < 10; i++ {
		s.Observe(fmt.Sprintf("s%d", i), now, 1)
	}
	if got := len(s.Names()); got != 3 {
		t.Fatalf("store accepted %d series, want cap 3", got)
	}
	// Existing series keep recording past the cap.
	s.Observe("s0", now.Add(time.Second), 2)
	if pts := s.Query("s0", time.Unix(0, 0), 0); len(pts) != 2 {
		t.Fatalf("capped store dropped writes to existing series: %+v", pts)
	}
}

// TestSeriesConcurrentObserveQuery is the ring race test: writers and
// readers hammer the store under -race.
func TestSeriesConcurrentObserveQuery(t *testing.T) {
	s := NewSeriesStore(Window{Step: time.Second, Cap: 16})
	base := time.Unix(1000, 0)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("s%d", g%2)
			for i := 0; i < 500; i++ {
				s.Observe(name, base.Add(time.Duration(i)*time.Millisecond*40), float64(i))
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s.Query(fmt.Sprintf("s%d", g%2), base, 8)
				s.Names()
				s.Latest("s0")
			}
		}(g)
	}
	wg.Wait()
}

func TestSamplerRates(t *testing.T) {
	store := NewSeriesStore(Window{Step: time.Second, Cap: 64})
	var counter, gauge float64
	src := func() Samples {
		return Samples{
			Gauges:   map[string]float64{"g": gauge},
			Counters: map[string]float64{"c": counter},
		}
	}
	sm := NewSampler(store, src, time.Second)
	base := time.Unix(3000, 0)

	counter, gauge = 100, 7
	sm.SampleNow(base) // seeds the counter baseline; no rate yet
	if pts := store.Query("c", time.Unix(0, 0), 0); len(pts) != 0 {
		t.Fatalf("first tick must not record a rate, got %+v", pts)
	}
	if p, ok := store.Latest("g"); !ok || p.Value != 7 {
		t.Fatalf("gauge not stored verbatim: %+v ok=%v", p, ok)
	}

	counter = 150 // +50 over 5s → 10/s
	sm.SampleNow(base.Add(5 * time.Second))
	if p, ok := store.Latest("c"); !ok || p.Value != 10 {
		t.Fatalf("rate = %+v ok=%v, want 10/s", p, ok)
	}

	// A counter reset (process restart) records nothing and re-bases.
	counter = 20
	sm.SampleNow(base.Add(10 * time.Second))
	if p, _ := store.Latest("c"); p.Unix != base.Add(5*time.Second).Unix() {
		t.Fatalf("reset interval recorded a point: %+v", p)
	}
	counter = 30 // +10 over 5s → 2/s from the new base
	sm.SampleNow(base.Add(15 * time.Second))
	if p, ok := store.Latest("c"); !ok || p.Value != 2 {
		t.Fatalf("post-reset rate = %+v ok=%v, want 2/s", p, ok)
	}
}

func TestSamplerOnSampleHook(t *testing.T) {
	store := NewSeriesStore(Window{Step: time.Second, Cap: 4})
	sm := NewSampler(store, func() Samples {
		return Samples{Gauges: map[string]float64{"g": 1}}
	}, time.Second)
	var calls int
	sm.OnSample(func(time.Time) { calls++ })
	sm.SampleNow(time.Unix(1, 0))
	sm.SampleNow(time.Unix(2, 0))
	if calls != 2 {
		t.Fatalf("hook ran %d times, want 2", calls)
	}
}

func TestSamplerRunStops(t *testing.T) {
	store := NewSeriesStore(Window{Step: time.Second, Cap: 4})
	sm := NewSampler(store, func() Samples {
		return Samples{Gauges: map[string]float64{"g": 1}}
	}, time.Millisecond)
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() { sm.Run(done); close(finished) }()
	time.Sleep(20 * time.Millisecond)
	close(done)
	select {
	case <-finished:
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not stop after done closed")
	}
	if _, ok := store.Latest("g"); !ok {
		t.Fatal("Run recorded no samples")
	}
}
