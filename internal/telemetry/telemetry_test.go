package telemetry

import (
	"bytes"
	"context"
	"log/slog"
	"strings"
	"testing"
	"time"
)

func TestContextRoundTrip(t *testing.T) {
	tel := New(nil, NewTracer(), NewRecorder())
	ctx := With(context.Background(), tel)
	if got := From(ctx); got != tel {
		t.Fatalf("From returned %p, want %p", got, tel)
	}
	if got, ok := FromContext(ctx); !ok || got != tel {
		t.Fatalf("FromContext = (%p, %v), want (%p, true)", got, ok, tel)
	}
}

func TestFromEmptyContextIsNop(t *testing.T) {
	tel := From(context.Background())
	if tel == nil {
		t.Fatal("From returned nil")
	}
	if _, ok := FromContext(context.Background()); ok {
		t.Fatal("FromContext reported presence on an empty context")
	}
	// The nop bundle must be safe to exercise end to end.
	tel.Logger().Info("discarded")
	_, span := tel.Tracer().Start(context.Background(), "x")
	span.SetAttr(String("k", "v"))
	span.End()
	tel.Sink().TrialDone("success", time.Millisecond)
	tel.Sink().CampaignDone(time.Second)
}

func TestNilTelemetryAccessors(t *testing.T) {
	var tel *Telemetry
	if tel.Logger() == nil {
		t.Fatal("nil Telemetry Logger() returned nil")
	}
	if tel.Sink() == nil {
		t.Fatal("nil Telemetry Sink() returned nil")
	}
	if tel.Tracer() != nil {
		t.Fatal("nil Telemetry Tracer() should be nil (nil-safe off switch)")
	}
}

func TestWithTracerSharesLoggerAndSink(t *testing.T) {
	rec := NewRecorder()
	base := New(nil, nil, rec)
	tr := NewTracer()
	forked := base.WithTracer(tr)
	if forked.Tracer() != tr {
		t.Fatal("WithTracer did not install the tracer")
	}
	if forked.Sink() != base.Sink() {
		t.Fatal("WithTracer forked the sink")
	}
	if forked.Logger() != base.Logger() {
		t.Fatal("WithTracer forked the logger")
	}
}

func TestWithLoggerSharesTracerAndSink(t *testing.T) {
	rec := NewRecorder()
	tr := NewTracer()
	base := New(nil, tr, rec)
	log := NewLogger(&bytes.Buffer{}, slog.LevelInfo)
	forked := base.WithLogger(log)
	if forked.Logger() != log {
		t.Fatal("WithLogger did not install the logger")
	}
	if forked.Tracer() != tr || forked.Sink() != rec {
		t.Fatal("WithLogger forked the tracer or sink")
	}
	if nop := base.WithLogger(nil).Logger(); nop == nil {
		t.Fatal("WithLogger(nil) returned a nil logger")
	}
}

func TestRequestIDRoundTrip(t *testing.T) {
	ctx := context.Background()
	if got := RequestID(ctx); got != "" {
		t.Fatalf("empty context request id = %q", got)
	}
	with := WithRequestID(ctx, "req-42")
	if got := RequestID(with); got != "req-42" {
		t.Fatalf("request id = %q, want req-42", got)
	}
	// An empty id never shadows an inherited one.
	if got := RequestID(WithRequestID(with, "")); got != "req-42" {
		t.Fatalf("empty WithRequestID overwrote the id: %q", got)
	}
}

func TestLevelMapping(t *testing.T) {
	cases := []struct {
		quiet, verbose bool
		want           slog.Level
	}{
		{false, false, slog.LevelInfo},
		{true, false, slog.LevelWarn},
		{false, true, slog.LevelDebug},
		{true, true, slog.LevelDebug}, // -v wins
	}
	for _, c := range cases {
		if got := Level(c.quiet, c.verbose); got != c.want {
			t.Errorf("Level(quiet=%v, verbose=%v) = %v, want %v",
				c.quiet, c.verbose, got, c.want)
		}
	}
}

func TestLoggerGatingAndFormat(t *testing.T) {
	var buf bytes.Buffer
	log := NewLogger(&buf, slog.LevelWarn)
	log.Info("hidden")
	log.Warn("shown", "key", "value", "n", 7)
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Fatalf("info event leaked through a warn-level logger:\n%s", out)
	}
	if !strings.Contains(out, "WARN  shown key=value n=7") {
		t.Fatalf("unexpected line format:\n%s", out)
	}
	if n := strings.Count(out, "\n"); n != 1 {
		t.Fatalf("want exactly one line, got %d:\n%s", n, out)
	}
}

func TestLoggerQuotesAndGroups(t *testing.T) {
	var buf bytes.Buffer
	log := NewLogger(&buf, slog.LevelInfo)
	log.With("app", "CG").WithGroup("job").Info("msg", "id", "two words")
	out := buf.String()
	if !strings.Contains(out, `app=CG`) {
		t.Fatalf("WithAttrs prefix missing:\n%s", out)
	}
	if !strings.Contains(out, `job.id="two words"`) {
		t.Fatalf("group-dotted quoted attr missing:\n%s", out)
	}
}
