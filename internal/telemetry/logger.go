package telemetry

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync"
	"time"
)

// Level maps the CLI's unified verbosity flags onto slog levels:
// -quiet = warn (suppression never drops error-level diagnostics),
// default = info, -v = debug.  -v wins when both are set.
func Level(quiet, verbose bool) slog.Level {
	switch {
	case verbose:
		return slog.LevelDebug
	case quiet:
		return slog.LevelWarn
	default:
		return slog.LevelInfo
	}
}

// NewLogger returns a structured logger writing compact single-line
// events — "15:04:05.000 LEVEL message key=value ..." — suitable for a
// terminal's stderr and for grepping server logs.  It is safe for
// concurrent use.
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(&compactHandler{out: &lockedWriter{w: w}, level: level})
}

// nopLogger discards everything; its handler reports every level
// disabled, so call sites pay only the Enabled check.
var nopLogger = slog.New(nopHandler{})

type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (h nopHandler) WithAttrs([]slog.Attr) slog.Handler      { return h }
func (h nopHandler) WithGroup(string) slog.Handler           { return h }

// lockedWriter serializes whole-line writes; it is shared by every
// WithAttrs/WithGroup clone of a handler so lines never interleave.
type lockedWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (l *lockedWriter) writeLine(b []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, err := l.w.Write(b)
	return err
}

// compactHandler is a minimal slog.Handler: one line per record, short
// timestamps, key=value attrs, dotted group prefixes.
type compactHandler struct {
	out    *lockedWriter
	level  slog.Level
	prefix string // preformatted " key=value" attrs from WithAttrs
	groups string // "grp1.grp2." key prefix from WithGroup
}

func (h *compactHandler) Enabled(_ context.Context, l slog.Level) bool {
	return l >= h.level
}

func (h *compactHandler) Handle(_ context.Context, r slog.Record) error {
	buf := make([]byte, 0, 128)
	if !r.Time.IsZero() {
		buf = r.Time.AppendFormat(buf, "15:04:05.000")
		buf = append(buf, ' ')
	}
	buf = append(buf, levelTag(r.Level)...)
	buf = append(buf, ' ')
	buf = append(buf, r.Message...)
	buf = append(buf, h.prefix...)
	r.Attrs(func(a slog.Attr) bool {
		buf = appendAttr(buf, h.groups, a)
		return true
	})
	buf = append(buf, '\n')
	return h.out.writeLine(buf)
}

func (h *compactHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	nh := *h
	buf := []byte(h.prefix)
	for _, a := range attrs {
		buf = appendAttr(buf, h.groups, a)
	}
	nh.prefix = string(buf)
	return &nh
}

func (h *compactHandler) WithGroup(name string) slog.Handler {
	if name == "" {
		return h
	}
	nh := *h
	nh.groups = h.groups + name + "."
	return &nh
}

// levelTag renders the level as a fixed-width tag so messages align.
func levelTag(l slog.Level) string {
	switch {
	case l >= slog.LevelError:
		return "ERROR"
	case l >= slog.LevelWarn:
		return "WARN "
	case l >= slog.LevelInfo:
		return "INFO "
	default:
		return "DEBUG"
	}
}

// appendAttr renders one attribute as " key=value", quoting values that
// would break the one-token-per-attr reading, and flattening groups with
// dotted keys.
func appendAttr(buf []byte, groups string, a slog.Attr) []byte {
	if a.Equal(slog.Attr{}) {
		return buf
	}
	v := a.Value.Resolve()
	if v.Kind() == slog.KindGroup {
		for _, ga := range v.Group() {
			buf = appendAttr(buf, groups+a.Key+".", ga)
		}
		return buf
	}
	buf = append(buf, ' ')
	buf = append(buf, groups...)
	buf = append(buf, a.Key...)
	buf = append(buf, '=')
	s := valueString(v)
	if strings.ContainsAny(s, " \t\n\"") {
		s = fmt.Sprintf("%q", s)
	}
	return append(buf, s...)
}

// valueString formats a resolved slog value compactly (durations rounded,
// times short).
func valueString(v slog.Value) string {
	switch v.Kind() {
	case slog.KindDuration:
		return v.Duration().Round(time.Microsecond).String()
	case slog.KindTime:
		return v.Time().Format("15:04:05.000")
	default:
		return fmt.Sprintf("%v", v.Any())
	}
}
