package telemetry

import (
	"sort"
	"sync"
)

// Progress event kinds.
const (
	// KindCampaign events snapshot one fault-injection deployment's
	// in-flight tallies (key: the campaign identity).
	KindCampaign = "campaign"
	// KindPrediction events aggregate one prediction's campaign DAG
	// across the concurrent scheduler (key: the prediction label).
	KindPrediction = "prediction"
	// KindAlert events announce alert-rule transitions (key: the rule
	// name, or rule/instance for wildcard rules); State carries the
	// alert state (pending/firing/resolved), not a lifecycle state.
	KindAlert = "alert"
)

// Progress event states.
const (
	StateRunning     = "running"
	StateDone        = "done"
	StateInterrupted = "interrupted"
	StateFailed      = "failed"
)

// CI is a confidence interval over a rate, JSON-ready for event streams.
type CI struct {
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
}

// Width returns the interval width — the convergence measure operators
// watch (the paper's protocol keeps injecting until rates stabilize).
func (c CI) Width() float64 { return c.Hi - c.Lo }

// ProgressEvent is one live snapshot on the Progress bus.  Campaign
// events carry trial tallies and convergence; prediction events carry
// campaign-DAG occupancy.  Events are observations only: publishing one
// never changes campaign results, RNG streams, or identities.
type ProgressEvent struct {
	// Seq is the bus-assigned publication sequence number (monotone per
	// bus; reassigned when an event is forwarded to a parent bus).
	Seq  uint64 `json:"seq"`
	Kind string `json:"kind"`
	// Key identifies the tracked unit: a campaign identity (cid:v2/…)
	// or a prediction label.
	Key string `json:"key"`
	// State is one of StateRunning/StateDone/StateInterrupted/StateFailed.
	State string `json:"state"`

	// Done and Total count trials for campaign events and campaign
	// stages for prediction events.
	Done  uint64 `json:"done"`
	Total uint64 `json:"total"`

	// Campaign-kind fields: per-outcome tallies and resilience counters.
	Success  uint64 `json:"success,omitempty"`
	SDC      uint64 `json:"sdc,omitempty"`
	Failure  uint64 `json:"failure,omitempty"`
	Abnormal uint64 `json:"abnormal,omitempty"`
	Retried  uint64 `json:"retried,omitempty"`

	// ElapsedSeconds is the wall time since this run started (excluding
	// any prior checkpointed run); TrialsPerSec and ETASeconds derive
	// from it and the trials completed in this run.
	ElapsedSeconds float64 `json:"elapsed_seconds,omitempty"`
	TrialsPerSec   float64 `json:"trials_per_sec,omitempty"`
	ETASeconds     float64 `json:"eta_seconds,omitempty"`

	// SuccessCI/SDCCI/FailureCI are Wilson 95% intervals over the rates
	// observed so far (nil until at least one trial is tallied).
	SuccessCI *CI `json:"success_ci,omitempty"`
	SDCCI     *CI `json:"sdc_ci,omitempty"`
	FailureCI *CI `json:"failure_ci,omitempty"`

	// Prediction-kind fields: the campaign DAG's scheduler occupancy.
	CampaignsRunning int `json:"campaigns_running,omitempty"`
	CampaignsQueued  int `json:"campaigns_queued,omitempty"`
	// WorkerBudgetInUse/Size sample the session's shared trial-worker
	// budget at publication time.
	WorkerBudgetInUse int `json:"worker_budget_in_use,omitempty"`
	WorkerBudgetSize  int `json:"worker_budget_size,omitempty"`
}

// Ratio returns Done/Total (0 when Total is 0).
func (e ProgressEvent) Ratio() float64 {
	if e.Total == 0 {
		return 0
	}
	return float64(e.Done) / float64(e.Total)
}

// Terminal reports whether the event closes its key's lifecycle.
func (e ProgressEvent) Terminal() bool { return e.State != StateRunning }

// Progress is the live-progress event bus: publishers (campaign loops,
// prediction drivers) post snapshots; subscribers (the SSE endpoint, the
// CLI renderer) receive them over bounded channels.  A full subscriber
// drops its oldest buffered event rather than blocking the publisher, so
// a stalled consumer can never slow a campaign.  The bus keeps the last
// event per key for replay-on-subscribe and for gauge exposition.
//
// A nil *Progress is valid everywhere and inert, mirroring *Tracer: the
// instrumented hot path pays one nil check when progress is off.
type Progress struct {
	parent *Progress // set before concurrent use; events are re-published there

	mu   sync.Mutex
	seq  uint64
	last map[string]ProgressEvent
	subs map[*ProgressSub]struct{}
}

// NewProgress creates an empty bus.
func NewProgress() *Progress {
	return &Progress{
		last: make(map[string]ProgressEvent),
		subs: make(map[*ProgressSub]struct{}),
	}
}

// ForwardTo re-publishes every event onto parent as well — how the
// prediction service gives each job its own bus (scoped SSE streams)
// while a process-wide bus keeps the aggregate view for /metrics.  Call
// before the bus is shared between goroutines.
func (p *Progress) ForwardTo(parent *Progress) {
	if p != nil {
		p.parent = parent
	}
}

// Publish posts one event: assigns its sequence number, records it as
// the key's latest snapshot, and offers it to every subscriber without
// ever blocking.  Nil-safe no-op.
func (p *Progress) Publish(ev ProgressEvent) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.seq++
	ev.Seq = p.seq
	p.last[ev.Kind+"\x00"+ev.Key] = ev
	for s := range p.subs {
		s.push(ev)
	}
	parent := p.parent
	p.mu.Unlock()
	parent.Publish(ev)
}

// Subscribe registers a consumer with the given channel capacity (a
// minimum is enforced) and replays the latest snapshot of every known
// key, oldest first, so a late subscriber — an SSE client connecting
// mid-job — starts from current state instead of silence.  Nil-safe: a
// nil bus returns a nil subscription whose Events channel is nil (blocks
// forever in select) and whose Close is a no-op.
func (p *Progress) Subscribe(buf int) *ProgressSub {
	if p == nil {
		return nil
	}
	if buf < 16 {
		buf = 16
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	s := &ProgressSub{p: p, ch: make(chan ProgressEvent, buf+len(p.last))}
	for _, ev := range p.sortedLastLocked() {
		s.ch <- ev
	}
	p.subs[s] = struct{}{}
	return s
}

// Latest returns the newest event of every key, ordered by publication
// sequence — the replay set, also used for gauge exposition.  Nil-safe.
func (p *Progress) Latest() []ProgressEvent {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sortedLastLocked()
}

// sortedLastLocked copies the last-event map in sequence order; callers
// hold p.mu.
func (p *Progress) sortedLastLocked() []ProgressEvent {
	evs := make([]ProgressEvent, 0, len(p.last))
	for _, ev := range p.last {
		evs = append(evs, ev)
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].Seq < evs[j].Seq })
	return evs
}

// ProgressSub is one subscription.  Read events from Events(); call
// Close when done.
type ProgressSub struct {
	p  *Progress
	ch chan ProgressEvent

	mu      sync.Mutex
	dropped uint64
}

// Events returns the subscription's channel (nil for a nil subscription,
// which blocks forever in a select — the caller's other cases still
// fire).
func (s *ProgressSub) Events() <-chan ProgressEvent {
	if s == nil {
		return nil
	}
	return s.ch
}

// Dropped returns how many events were discarded because the buffer was
// full — a consumer-side lag indicator, never a publisher-side stall.
func (s *ProgressSub) Dropped() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Close detaches the subscription from the bus.  Nil-safe; idempotent.
func (s *ProgressSub) Close() {
	if s == nil {
		return
	}
	s.p.mu.Lock()
	delete(s.p.subs, s)
	s.p.mu.Unlock()
}

// push offers ev without blocking: when the buffer is full the oldest
// buffered event is dropped to make room.  Called with the bus lock
// held, so there is exactly one concurrent pusher.
func (s *ProgressSub) push(ev ProgressEvent) {
	for {
		select {
		case s.ch <- ev:
			return
		default:
		}
		select {
		case <-s.ch:
			s.mu.Lock()
			s.dropped++
			s.mu.Unlock()
		default:
			// A concurrent reader emptied the channel between the two
			// selects; the send will succeed on the next loop.
		}
	}
}
