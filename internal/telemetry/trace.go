package telemetry

import (
	"context"
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one span attribute.  The JSON tags pin the wire form used when
// spans cross the coordinator/worker HTTP boundary (dist.ShardResponse).
type Attr struct {
	Key   string `json:"k"`
	Value any    `json:"v"`
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: v} }

// Tracer records spans.  A nil *Tracer is the off switch: Start returns a
// nil span, and every Span method is nil-safe, so instrumented code never
// branches on whether tracing is enabled.
type Tracer struct {
	epoch time.Time
	ids   atomic.Uint64

	mu    sync.Mutex
	spans []*Span // appended at End
}

// NewTracer creates an empty tracer; its epoch (creation time) is the
// zero point of exported timestamps.
func NewTracer() *Tracer { return &Tracer{epoch: time.Now()} }

// Span is one recorded interval.  Spans parent through the context
// returned by Start, and inherit their root ancestor's lane (tid) so a
// Chrome/Perfetto view shows each top-level unit of work — a campaign, a
// server job — as its own nested track.
type Span struct {
	tr     *Tracer
	id     uint64
	parent uint64
	tid    uint64
	name   string
	start  time.Time

	mu    sync.Mutex
	attrs []Attr
	ended bool
	dur   time.Duration
}

// spanKey carries the current span in a context for parenting.
type spanKey struct{}

// Start begins a span named name, parented to the context's current span
// (when that span belongs to the same tracer), and returns a context
// carrying the new span.  On a nil tracer it returns (ctx, nil).
func (t *Tracer) Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	s := &Span{tr: t, id: t.ids.Add(1), name: name, start: time.Now()}
	if len(attrs) > 0 {
		s.attrs = append(s.attrs, attrs...)
	}
	if p, ok := ctx.Value(spanKey{}).(*Span); ok && p != nil && p.tr == t {
		s.parent = p.id
		s.tid = p.tid
	} else {
		s.tid = s.id // new root: its own lane
	}
	return context.WithValue(ctx, spanKey{}, s), s
}

// ID returns the span's tracer-assigned identifier (0 on a nil span) —
// what the coordinator stamps into dispatch headers so workers can report
// which span their shard ran under.
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// SetAttr adds attributes to the span (nil-safe).
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.mu.Unlock()
}

// End finishes the span and records it in its tracer (nil-safe,
// idempotent).
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.dur = time.Since(s.start)
	s.mu.Unlock()
	s.tr.mu.Lock()
	s.tr.spans = append(s.tr.spans, s)
	s.tr.mu.Unlock()
}

// SpanView is an exported snapshot of one finished span.  It is also the
// JSON wire form workers use to ship their shard spans back to the
// coordinator (durations travel as integer nanoseconds).
type SpanView struct {
	ID       uint64        `json:"id"`
	Parent   uint64        `json:"parent,omitempty"` // 0 = root
	TID      uint64        `json:"tid"`              // lane: the root ancestor's span ID
	Name     string        `json:"name"`
	Start    time.Duration `json:"start"` // offset from the tracer's epoch
	Duration time.Duration `json:"dur"`
	Attrs    []Attr        `json:"attrs,omitempty"`
}

// Spans returns the finished spans sorted by start time (nil-safe).
func (t *Tracer) Spans() []SpanView {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	views := make([]SpanView, 0, len(t.spans))
	for _, s := range t.spans {
		s.mu.Lock()
		views = append(views, SpanView{
			ID: s.id, Parent: s.parent, TID: s.tid, Name: s.name,
			Start:    s.start.Sub(t.epoch),
			Duration: s.dur,
			Attrs:    append([]Attr(nil), s.attrs...),
		})
		s.mu.Unlock()
	}
	t.mu.Unlock()
	sort.Slice(views, func(i, j int) bool { return views[i].Start < views[j].Start })
	return views
}

// Merge copies every finished span of other into t, remapping IDs (and
// the lanes derived from them) so they cannot collide with t's own — how
// the server folds per-job tracers into its process-wide trace.
func (t *Tracer) Merge(other *Tracer) {
	if t == nil || other == nil || t == other {
		return
	}
	views := other.Spans()
	var maxID uint64
	for _, v := range views {
		if v.ID > maxID {
			maxID = v.ID
		}
	}
	if maxID == 0 {
		return
	}
	off := t.ids.Add(maxID) - maxID
	t.mu.Lock()
	for _, v := range views {
		s := &Span{
			tr: t, id: v.ID + off, tid: v.TID + off, name: v.Name,
			start: other.epoch.Add(v.Start), dur: v.Duration,
			attrs: v.Attrs, ended: true,
		}
		if v.Parent != 0 {
			s.parent = v.Parent + off
		}
		t.spans = append(t.spans, s)
	}
	t.mu.Unlock()
}

// Graft folds spans recorded by another process into t: IDs are remapped
// like Merge, but spans whose parent is not part of the batch (the remote
// roots) are re-parented under the given span and tagged with the extra
// attributes, and all timestamps are re-anchored at the local wall-clock
// instant `at` — the remote epoch means nothing here, but the coordinator
// knows when it dispatched the work.  The whole subtree lands in under's
// lane so the cross-fleet trace reads as one nested timeline.  Nil-safe;
// a nil or empty batch is a no-op.
func (t *Tracer) Graft(views []SpanView, under *Span, at time.Time, extra ...Attr) {
	if t == nil || len(views) == 0 {
		return
	}
	var maxID uint64
	present := make(map[uint64]bool, len(views))
	for _, v := range views {
		present[v.ID] = true
		if v.ID > maxID {
			maxID = v.ID
		}
	}
	if maxID == 0 {
		return
	}
	off := t.ids.Add(maxID) - maxID
	t.mu.Lock()
	for _, v := range views {
		s := &Span{
			tr: t, id: v.ID + off, name: v.Name,
			start: at.Add(v.Start), dur: v.Duration,
			attrs: v.Attrs, ended: true,
		}
		if present[v.Parent] {
			s.parent = v.Parent + off
		} else if under != nil {
			// Remote root: hang it off the dispatch span and stamp the
			// worker identity on it.
			s.parent = under.id
			if len(extra) > 0 {
				s.attrs = append(append([]Attr(nil), v.Attrs...), extra...)
			}
		}
		if under != nil {
			s.tid = under.tid
		} else {
			s.tid = v.TID + off
		}
		t.spans = append(t.spans, s)
	}
	t.mu.Unlock()
}

// chromeEvent is one Chrome trace-event ("X" = complete event with
// duration).  The format is the chrome://tracing / Perfetto JSON array.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`  // microseconds from the epoch
	Dur  float64        `json:"dur"` // microseconds
	Pid  int            `json:"pid"`
	Tid  uint64         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object form of the trace file, which Perfetto
// and chrome://tracing both load.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes the finished spans as Chrome trace-event JSON.
// Load the file in chrome://tracing or https://ui.perfetto.dev.  A nil
// tracer writes an empty (but valid) trace.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	doc := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	for _, v := range t.Spans() {
		ev := chromeEvent{
			Name: v.Name, Cat: "resmod", Ph: "X",
			Ts:  float64(v.Start.Microseconds()),
			Dur: float64(v.Duration.Microseconds()),
			Pid: 1, Tid: v.TID,
		}
		if len(v.Attrs) > 0 {
			ev.Args = make(map[string]any, len(v.Attrs)+1)
			for _, a := range v.Attrs {
				ev.Args[a.Key] = a.Value
			}
		}
		if v.Parent != 0 {
			if ev.Args == nil {
				ev.Args = make(map[string]any, 1)
			}
			ev.Args["parent_span"] = v.Parent
		}
		doc.TraceEvents = append(doc.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
