package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"
)

func TestTracerParentingAndLanes(t *testing.T) {
	tr := NewTracer()
	ctx := context.Background()
	ctx, root := tr.Start(ctx, "root", String("k", "v"))
	cctx, child := tr.Start(ctx, "child")
	_, grand := tr.Start(cctx, "grandchild")
	grand.End()
	child.End()
	_, sibling := tr.Start(ctx, "sibling")
	sibling.End()
	root.End()

	views := tr.Spans()
	if len(views) != 4 {
		t.Fatalf("want 4 spans, got %d", len(views))
	}
	byName := map[string]SpanView{}
	for _, v := range views {
		byName[v.Name] = v
	}
	r := byName["root"]
	if r.Parent != 0 {
		t.Fatalf("root parent = %d, want 0", r.Parent)
	}
	if byName["child"].Parent != r.ID || byName["sibling"].Parent != r.ID {
		t.Fatal("children not parented to root")
	}
	if byName["grandchild"].Parent != byName["child"].ID {
		t.Fatal("grandchild not parented to child")
	}
	// Every descendant shares the root's lane.
	for _, name := range []string{"child", "grandchild", "sibling"} {
		if byName[name].TID != r.TID {
			t.Fatalf("%s tid = %d, want root lane %d", name, byName[name].TID, r.TID)
		}
	}
}

func TestSeparateRootsGetSeparateLanes(t *testing.T) {
	tr := NewTracer()
	_, a := tr.Start(context.Background(), "a")
	a.End()
	_, b := tr.Start(context.Background(), "b")
	b.End()
	views := tr.Spans()
	if views[0].TID == views[1].TID {
		t.Fatalf("independent roots share lane %d", views[0].TID)
	}
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	ctx, span := tr.Start(context.Background(), "x", Int("n", 1))
	if span != nil {
		t.Fatal("nil tracer returned a live span")
	}
	span.SetAttr(String("k", "v"))
	span.End()
	span.End()
	if got := tr.Spans(); got != nil {
		t.Fatalf("nil tracer has spans: %v", got)
	}
	if ctx == nil {
		t.Fatal("nil tracer dropped the context")
	}
}

func TestEndIdempotent(t *testing.T) {
	tr := NewTracer()
	_, s := tr.Start(context.Background(), "once")
	s.End()
	s.End()
	if n := len(tr.Spans()); n != 1 {
		t.Fatalf("double End recorded %d spans", n)
	}
}

func TestChromeTraceJSON(t *testing.T) {
	tr := NewTracer()
	ctx, root := tr.Start(context.Background(), "campaign", String("id", "c1"), Int("trials", 4))
	_, child := tr.Start(ctx, "trial-batch")
	child.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  uint64         `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("want 2 events, got %d", len(doc.TraceEvents))
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event %s ph = %q, want X", ev.Name, ev.Ph)
		}
	}
	var sawCampaign, sawParent bool
	for _, ev := range doc.TraceEvents {
		if ev.Name == "campaign" {
			sawCampaign = true
			if ev.Args["id"] != "c1" {
				t.Fatalf("campaign args = %v", ev.Args)
			}
		}
		if _, ok := ev.Args["parent_span"]; ok {
			sawParent = true
		}
	}
	if !sawCampaign || !sawParent {
		t.Fatalf("campaign=%v parent_span=%v in %s", sawCampaign, sawParent, buf.String())
	}
}

func TestNilTracerWritesValidEmptyTrace(t *testing.T) {
	var tr *Tracer
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid empty trace: %v", err)
	}
	if evs, ok := doc["traceEvents"].([]any); !ok || len(evs) != 0 {
		t.Fatalf("empty trace events = %v", doc["traceEvents"])
	}
}

func TestMergeRemapsIDs(t *testing.T) {
	dst := NewTracer()
	_, d := dst.Start(context.Background(), "dst-root")
	d.End()

	src := NewTracer()
	sctx, sroot := src.Start(context.Background(), "src-root")
	_, schild := src.Start(sctx, "src-child")
	schild.End()
	sroot.End()

	dst.Merge(src)
	views := dst.Spans()
	if len(views) != 3 {
		t.Fatalf("want 3 spans after merge, got %d", len(views))
	}
	ids := map[uint64]bool{}
	byName := map[string]SpanView{}
	for _, v := range views {
		if ids[v.ID] {
			t.Fatalf("duplicate span id %d after merge", v.ID)
		}
		ids[v.ID] = true
		byName[v.Name] = v
	}
	if byName["src-child"].Parent != byName["src-root"].ID {
		t.Fatal("merge broke the src parent link")
	}
	if byName["src-root"].TID == byName["dst-root"].TID {
		t.Fatal("merge collided lanes")
	}
	// Merging nil or self is a no-op.
	dst.Merge(nil)
	dst.Merge(dst)
	if n := len(dst.Spans()); n != 3 {
		t.Fatalf("no-op merges changed span count to %d", n)
	}
}

func TestGraftReparentsRemoteRoots(t *testing.T) {
	dst := NewTracer()
	ctx, job := dst.Start(context.Background(), "job")
	_, dispatch := dst.Start(ctx, "dispatch")

	// A worker-side trace: a shard root with one child, shipped as views.
	remote := NewTracer()
	rctx, rroot := remote.Start(context.Background(), "shard")
	_, rchild := remote.Start(rctx, "golden")
	rchild.End()
	rroot.End()
	remoteViews := remote.Spans()

	at := time.Now()
	dst.Graft(remoteViews, dispatch, at, String("worker", "w1"))
	dispatch.End()
	job.End()

	views := dst.Spans()
	if len(views) != 4 {
		t.Fatalf("want 4 spans after graft, got %d", len(views))
	}
	ids := map[uint64]bool{}
	byName := map[string]SpanView{}
	for _, v := range views {
		if ids[v.ID] {
			t.Fatalf("duplicate span id %d after graft", v.ID)
		}
		ids[v.ID] = true
		byName[v.Name] = v
	}
	shard, golden := byName["shard"], byName["golden"]
	if shard.Parent != dispatch.ID() {
		t.Fatalf("remote root parent = %d, want dispatch %d", shard.Parent, dispatch.ID())
	}
	if golden.Parent != shard.ID {
		t.Fatalf("graft broke the remote parent link: golden parent %d, shard %d",
			golden.Parent, shard.ID)
	}
	// The whole subtree lands in the dispatch span's lane...
	if shard.TID != byName["job"].TID || golden.TID != byName["job"].TID {
		t.Fatalf("grafted lanes (%d, %d) != job lane %d", shard.TID, golden.TID, byName["job"].TID)
	}
	// ...the root carries the extra worker attrs, its descendants do not...
	attrOf := func(v SpanView, key string) any {
		for _, a := range v.Attrs {
			if a.Key == key {
				return a.Value
			}
		}
		return nil
	}
	if got := attrOf(shard, "worker"); got != "w1" {
		t.Fatalf("remote root worker attr = %v, want w1", got)
	}
	if got := attrOf(golden, "worker"); got != nil {
		t.Fatalf("remote child gained worker attr %v", got)
	}
	// ...and timestamps are re-anchored at the dispatch instant, not the
	// remote epoch.
	wantStart := at.Sub(dst.epoch) + remoteViews[0].Start
	if d := shard.Start - wantStart; d < -time.Millisecond || d > time.Millisecond {
		t.Fatalf("grafted start %v, want ~%v", shard.Start, wantStart)
	}
}

func TestGraftNilAndEmptyAreNoOps(t *testing.T) {
	var nilTr *Tracer
	nilTr.Graft([]SpanView{{ID: 1, Name: "x"}}, nil, time.Now())

	dst := NewTracer()
	dst.Graft(nil, nil, time.Now())
	dst.Graft([]SpanView{}, nil, time.Now())
	if n := len(dst.Spans()); n != 0 {
		t.Fatalf("no-op grafts recorded %d spans", n)
	}
	// Grafting without an anchor span keeps the batch's own lanes.
	dst.Graft([]SpanView{{ID: 1, TID: 1, Name: "loose"}}, nil, time.Now())
	views := dst.Spans()
	if len(views) != 1 || views[0].Parent != 0 || views[0].TID != views[0].ID {
		t.Fatalf("anchorless graft = %+v, want a root in its own lane", views)
	}
}
