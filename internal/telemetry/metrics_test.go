package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRecorderCounts(t *testing.T) {
	r := NewRecorder()
	r.TrialDone("success", time.Millisecond)
	r.TrialDone("success", 2*time.Millisecond)
	r.TrialDone("sdc", time.Millisecond)
	r.TrialDone("failure", time.Millisecond)
	r.TrialDone("weird", time.Millisecond)
	r.TrialAbnormal()
	r.TrialRetried()
	r.TrialRetried()
	r.GoldenRun(10 * time.Millisecond)
	r.CheckpointWrite()
	r.CampaignDone(time.Second)

	s := r.Snapshot()
	if s.TrialSuccess != 2 || s.TrialSDC != 1 || s.TrialFailure != 1 || s.TrialOther != 1 {
		t.Fatalf("outcomes = %d/%d/%d/%d", s.TrialSuccess, s.TrialSDC, s.TrialFailure, s.TrialOther)
	}
	if got := s.TrialsTotal(); got != 5 {
		t.Fatalf("TrialsTotal = %d, want 5", got)
	}
	if s.TrialsAbnormal != 1 || s.TrialsRetried != 2 {
		t.Fatalf("abnormal/retried = %d/%d", s.TrialsAbnormal, s.TrialsRetried)
	}
	if s.GoldenRuns != 1 || s.CheckpointWrites != 1 || s.Campaigns != 1 {
		t.Fatalf("goldens/checkpoints/campaigns = %d/%d/%d",
			s.GoldenRuns, s.CheckpointWrites, s.Campaigns)
	}
	if s.TrialLatency.Count != 5 || s.CampaignDuration.Count != 1 {
		t.Fatalf("histogram counts = %d/%d", s.TrialLatency.Count, s.CampaignDuration.Count)
	}
	if s.Empty() {
		t.Fatal("populated snapshot reported Empty")
	}
	if !NewRecorder().Snapshot().Empty() {
		t.Fatal("fresh recorder not Empty")
	}
}

func TestHistogramBucketsAndMean(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d", s.Count)
	}
	// SearchFloat64s puts v on the first bound >= v: 0.5,1 -> le=1; 5 ->
	// le=10; 50 -> le=100; 500 -> overflow.
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if got := s.Mean(); got != (0.5+1+5+50+500)/5 {
		t.Fatalf("mean = %g", got)
	}
	if (HistSnapshot{}).Mean() != 0 {
		t.Fatal("empty mean not 0")
	}
}

func TestRecorderConcurrentUse(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.TrialDone("success", time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := r.Snapshot().TrialsTotal(); got != 800 {
		t.Fatalf("TrialsTotal = %d, want 800", got)
	}
}

func TestWriteSummary(t *testing.T) {
	r := NewRecorder()
	r.TrialDone("success", time.Millisecond)
	r.TrialDone("sdc", time.Millisecond)
	r.TrialAbnormal()
	r.GoldenRun(5 * time.Millisecond)
	r.CheckpointWrite()
	r.CampaignDone(100 * time.Millisecond)

	var buf bytes.Buffer
	WriteSummary(&buf, r.Snapshot())
	out := buf.String()
	for _, want := range []string{
		"== telemetry ==",
		"campaigns:   1 executed",
		"trials:      2 (success 1, sdc 1, failure 0)",
		"abnormal:    1 trials abandoned",
		"goldens:     1 runs",
		"checkpoints: 1 writes",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

// TestHistogramQuantile pins the interpolated estimator: uniform mass in
// one bucket interpolates linearly; overflow clamps to the last bound.
func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	if got := h.Snapshot().Quantile(0.5); got != 0 {
		t.Fatalf("empty Quantile = %v, want 0", got)
	}
	// 10 samples in (1,2]: the median interpolates to the bucket middle.
	for i := 0; i < 10; i++ {
		h.Observe(1.5)
	}
	s := h.Snapshot()
	if got := s.Quantile(0.5); got != 1.5 {
		t.Fatalf("Quantile(0.5) = %v, want 1.5", got)
	}
	if got := s.Quantile(1); got != 2 {
		t.Fatalf("Quantile(1) = %v, want the bucket's upper edge 2", got)
	}
	// An overflow sample clamps to the last finite bound.
	h.Observe(100)
	if got := h.Snapshot().Quantile(0.999); got != 4 {
		t.Fatalf("overflow Quantile = %v, want last bound 4", got)
	}
	// Split across buckets: 5 in (0,1], 5 in (1,2] -> p25 inside bucket 1.
	h2 := NewHistogram([]float64{1, 2})
	for i := 0; i < 5; i++ {
		h2.Observe(0.5)
		h2.Observe(1.5)
	}
	if got := h2.Snapshot().Quantile(0.25); got != 0.5 {
		t.Fatalf("Quantile(0.25) = %v, want 0.5", got)
	}
}
