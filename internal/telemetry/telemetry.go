// Package telemetry is resmod's zero-dependency observability spine:
// structured events on log/slog, lightweight trace spans exportable as
// Chrome trace-event JSON, and an engine-metrics Sink — bundled into one
// value that travels down the call stack on context.Context, so the CLI,
// the prediction service and library callers share a single
// instrumentation surface through exper → faultsim → the simulated
// applications.
//
// The package is allocation-conscious: a nil *Tracer and the nop Sink
// short-circuit every recording call, so an instrumented hot path (the
// campaign trial loop) costs nothing when telemetry is off.
package telemetry

import (
	"context"
	"log/slog"
)

// Telemetry bundles the three observability channels.  Build one with New;
// the accessors never return a value whose methods are unsafe to call, so
// instrumentation sites need no nil checks.
type Telemetry struct {
	logger   *slog.Logger
	tracer   *Tracer // nil = tracing off (*Tracer methods are nil-safe)
	sink     Sink
	progress *Progress // nil = live progress off (*Progress methods are nil-safe)
}

// New assembles a bundle.  Any argument may be nil: a nil logger discards
// events, a nil tracer records no spans, a nil sink drops metrics.
func New(logger *slog.Logger, tracer *Tracer, sink Sink) *Telemetry {
	if logger == nil {
		logger = nopLogger
	}
	if sink == nil {
		sink = NopSink
	}
	return &Telemetry{logger: logger, tracer: tracer, sink: sink}
}

// nop is the shared inert bundle returned by Nop and From on contexts
// carrying no telemetry.
var nop = &Telemetry{logger: nopLogger, sink: NopSink}

// Nop returns the inert bundle: events discarded, spans off, metrics
// dropped.
func Nop() *Telemetry { return nop }

// Logger returns the event logger (never nil).
func (t *Telemetry) Logger() *slog.Logger {
	if t == nil {
		return nopLogger
	}
	return t.logger
}

// Tracer returns the span recorder; it may be nil, but every *Tracer
// method is nil-safe, so call sites use it unconditionally.
func (t *Telemetry) Tracer() *Tracer {
	if t == nil {
		return nil
	}
	return t.tracer
}

// Sink returns the metrics sink (never nil).
func (t *Telemetry) Sink() Sink {
	if t == nil {
		return NopSink
	}
	return t.sink
}

// Progress returns the live-progress bus; it may be nil, but every
// *Progress method is nil-safe, so call sites use it unconditionally.
func (t *Telemetry) Progress() *Progress {
	if t == nil {
		return nil
	}
	return t.progress
}

// WithTracer returns a copy of the bundle recording spans into tr while
// sharing the logger, sink and progress bus — how the prediction service
// gives every job its own trace without forking the metric registry.
func (t *Telemetry) WithTracer(tr *Tracer) *Telemetry {
	return &Telemetry{logger: t.Logger(), tracer: tr, sink: t.Sink(), progress: t.Progress()}
}

// WithLogger returns a copy of the bundle logging through l while sharing
// the tracer, sink and progress bus — how a worker scopes request-level
// slog fields (request_id, shard range) without forking the rest of its
// telemetry.  A nil l falls back to the discarding logger.
func (t *Telemetry) WithLogger(l *slog.Logger) *Telemetry {
	if l == nil {
		l = nopLogger
	}
	return &Telemetry{logger: l, tracer: t.Tracer(), sink: t.Sink(), progress: t.Progress()}
}

// WithProgress returns a copy of the bundle publishing live progress
// onto p while sharing the logger, tracer and sink — the progress twin
// of WithTracer (the service scopes a bus per job; the CLI attaches one
// per invocation).
func (t *Telemetry) WithProgress(p *Progress) *Telemetry {
	return &Telemetry{logger: t.Logger(), tracer: t.Tracer(), sink: t.Sink(), progress: p}
}

// ctxKey keys the bundle in a context.
type ctxKey struct{}

// With attaches the bundle to the context.  Everything downstream that
// calls From — exper sessions, faultsim campaigns, the server's job
// runner — then logs, traces and counts through it.
func With(ctx context.Context, t *Telemetry) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// From returns the context's bundle, or the nop bundle when the context
// carries none (or is nil).  The result is never nil.
func From(ctx context.Context) *Telemetry {
	if t, ok := FromContext(ctx); ok {
		return t
	}
	return nop
}

// reqIDKey keys the request correlation ID in a context.
type reqIDKey struct{}

// WithRequestID attaches a request correlation ID to the context.  The
// server stamps its per-request X-Request-ID here so the ID survives the
// hop into job goroutines and outbound shard dispatches; an empty id
// returns ctx unchanged.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, reqIDKey{}, id)
}

// RequestID returns the context's request correlation ID, or "" when none
// was attached (or ctx is nil).
func RequestID(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(reqIDKey{}).(string)
	return id
}

// FromContext is From with an explicit presence report, for callers that
// bridge legacy configuration (e.g. exper.Config.Log) only when the
// context carries no telemetry of its own.
func FromContext(ctx context.Context) (*Telemetry, bool) {
	if ctx == nil {
		return nil, false
	}
	t, ok := ctx.Value(ctxKey{}).(*Telemetry)
	if !ok || t == nil {
		return nil, false
	}
	return t, true
}
