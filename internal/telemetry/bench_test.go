package telemetry

import (
	"testing"
	"time"

	"resmod/internal/race"
)

// benchSource mimics the server's sample source: a realistic mix of
// gauges and counters per tick.
func benchSource() Samples {
	return Samples{
		Gauges: map[string]float64{
			"queue_depth":         3,
			"queue_saturation":    0.2,
			"jobs_inflight":       2,
			"campaigns_running":   1,
			"fleet_workers_alive": 4,
		},
		Counters: map[string]float64{
			"trials_total":   123456,
			"sheds_total":    17,
			"http_5xx_total": 2,
		},
	}
}

// BenchmarkSamplerTick measures one full sampling tick (source read,
// gauge stores, counter differentiation) — the recurring cost of
// retention, paid every SampleEvery regardless of load.
func BenchmarkSamplerTick(b *testing.B) {
	store := NewSeriesStore()
	sm := NewSampler(store, benchSource, time.Second)
	now := time.Unix(1_000_000, 0)
	sm.SampleNow(now)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = now.Add(time.Second)
		sm.SampleNow(now)
	}
}

// BenchmarkSeriesQuery measures a dashboard-style read: an hour of 10s
// points downsampled to 60.
func BenchmarkSeriesQuery(b *testing.B) {
	store := NewSeriesStore()
	base := time.Unix(1_000_000, 0)
	for i := 0; i < 360; i++ {
		store.Observe("x", base.Add(time.Duration(i)*10*time.Second), float64(i))
	}
	since := base.Add(-time.Minute)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store.Query("x", since, 60)
	}
}

// TestSamplerTickAllocBounded pins the sampler's steady-state
// allocation footprint so retention stays cheap enough to leave on
// everywhere: the source map construction dominates; the store side
// must not allocate per tick once rings exist.
func TestSamplerTickAllocBounded(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts differ under the race detector")
	}
	store := NewSeriesStore()
	sm := NewSampler(store, benchSource, time.Second)
	now := time.Unix(1_000_000, 0)
	sm.SampleNow(now) // warm: create rings, seed baselines
	avg := testing.AllocsPerRun(200, func() {
		now = now.Add(time.Second)
		sm.SampleNow(now)
	})
	// benchSource itself builds two maps (~10+ allocs); the bound leaves
	// headroom for map internals but catches any per-tick ring growth.
	const bound = 32
	if avg > bound {
		t.Errorf("sampler tick allocates %.1f allocs/run; want <= %d", avg, bound)
	}
}
