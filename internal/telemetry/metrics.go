package telemetry

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Sink receives engine metrics from the campaign machinery.  The server
// wires a Recorder here and exposes it as Prometheus families; the CLI
// renders the same Recorder as an end-of-run summary block.  Methods must
// be safe for concurrent use and cheap: TrialDone sits on the campaign
// hot path (once per fault-injection test).
type Sink interface {
	// TrialDone records one tallied trial: its outcome ("success", "sdc",
	// "failure") and its wall time (including any abnormal retries).
	TrialDone(outcome string, d time.Duration)
	// TrialAbnormal records a trial abandoned after harness errors.
	TrialAbnormal()
	// TrialRetried records one retry of an abnormal trial.
	TrialRetried()
	// GoldenRun records one fault-free reference execution.
	GoldenRun(d time.Duration)
	// CheckpointWrite records one campaign checkpoint snapshot written.
	CheckpointWrite()
	// CampaignDone records one completed (or interrupted) campaign
	// execution and its wall time.
	CampaignDone(d time.Duration)
}

// NopSink discards every metric.
var NopSink Sink = nopSink{}

type nopSink struct{}

func (nopSink) TrialDone(string, time.Duration) {}
func (nopSink) TrialAbnormal()                  {}
func (nopSink) TrialRetried()                   {}
func (nopSink) GoldenRun(time.Duration)         {}
func (nopSink) CheckpointWrite()                {}
func (nopSink) CampaignDone(time.Duration)      {}

// Histogram bucket bounds, in seconds.  Trials range from microseconds
// (tiny classes, warm caches) to seconds (large ranks under -race);
// campaigns from milliseconds to tens of minutes at paper-scale trial
// counts.
var (
	TrialBuckets    = []float64{0.0001, 0.0005, 0.001, 0.005, 0.025, 0.1, 0.5, 1, 5}
	CampaignBuckets = []float64{0.01, 0.05, 0.25, 1, 5, 15, 60, 300, 1800}
)

// Histogram is a fixed-bucket histogram safe for concurrent observation.
type Histogram struct {
	bounds []float64

	mu     sync.Mutex
	counts []uint64 // one per bound, plus the +Inf overflow at the end
	sum    float64
	count  uint64
}

// NewHistogram builds a histogram over ascending upper bounds.
func NewHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// HistSnapshot is a point-in-time copy of a histogram.  Counts are
// per-bucket (not cumulative); Prometheus exposition accumulates them.
type HistSnapshot struct {
	Bounds []float64
	Counts []uint64
	Sum    float64
	Count  uint64
}

// Snapshot copies the histogram state.
func (h *Histogram) Snapshot() HistSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistSnapshot{
		Bounds: h.bounds,
		Counts: append([]uint64(nil), h.counts...),
		Sum:    h.sum,
		Count:  h.count,
	}
}

// Mean returns the average observed value (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-th quantile (0..1) by linear interpolation
// within the bucket holding the target rank — the standard
// fixed-bucket estimator (what PromQL's histogram_quantile computes).
// Samples in the +Inf overflow bucket are attributed to the last finite
// bound, since there is no upper edge to interpolate toward.  Returns 0
// for an empty histogram.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum uint64
	lower := 0.0
	for i, c := range s.Counts {
		if i >= len(s.Bounds) {
			// +Inf bucket: no finite upper edge.
			return s.Bounds[len(s.Bounds)-1]
		}
		upper := s.Bounds[i]
		if c > 0 && float64(cum)+float64(c) >= rank {
			frac := (rank - float64(cum)) / float64(c)
			return lower + (upper-lower)*frac
		}
		cum += c
		lower = upper
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Recorder is the built-in Sink: lock-free counters plus trial-latency
// and campaign-duration histograms.
type Recorder struct {
	trialSuccess atomic.Uint64
	trialSDC     atomic.Uint64
	trialFailure atomic.Uint64
	trialOther   atomic.Uint64
	abnormal     atomic.Uint64
	retried      atomic.Uint64
	goldens      atomic.Uint64
	goldenMicros atomic.Uint64
	checkpoints  atomic.Uint64
	campaigns    atomic.Uint64

	trialLat *Histogram
	campDur  *Histogram
}

// NewRecorder creates an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{
		trialLat: NewHistogram(TrialBuckets),
		campDur:  NewHistogram(CampaignBuckets),
	}
}

// TrialDone implements Sink.
func (r *Recorder) TrialDone(outcome string, d time.Duration) {
	switch outcome {
	case "success":
		r.trialSuccess.Add(1)
	case "sdc":
		r.trialSDC.Add(1)
	case "failure":
		r.trialFailure.Add(1)
	default:
		r.trialOther.Add(1)
	}
	r.trialLat.Observe(d.Seconds())
}

// TrialAbnormal implements Sink.
func (r *Recorder) TrialAbnormal() { r.abnormal.Add(1) }

// TrialRetried implements Sink.
func (r *Recorder) TrialRetried() { r.retried.Add(1) }

// GoldenRun implements Sink.
func (r *Recorder) GoldenRun(d time.Duration) {
	r.goldens.Add(1)
	r.goldenMicros.Add(uint64(d.Microseconds()))
}

// CheckpointWrite implements Sink.
func (r *Recorder) CheckpointWrite() { r.checkpoints.Add(1) }

// CampaignDone implements Sink.
func (r *Recorder) CampaignDone(d time.Duration) {
	r.campaigns.Add(1)
	r.campDur.Observe(d.Seconds())
}

// Snapshot is a consistent-enough copy of a Recorder for exposition (each
// counter is read atomically; cross-counter skew is bounded by in-flight
// trials).
type Snapshot struct {
	TrialSuccess     uint64
	TrialSDC         uint64
	TrialFailure     uint64
	TrialOther       uint64
	TrialsAbnormal   uint64
	TrialsRetried    uint64
	GoldenRuns       uint64
	GoldenSeconds    float64
	CheckpointWrites uint64
	Campaigns        uint64
	TrialLatency     HistSnapshot
	CampaignDuration HistSnapshot
}

// Snapshot copies the recorder's current state.
func (r *Recorder) Snapshot() Snapshot {
	return Snapshot{
		TrialSuccess:     r.trialSuccess.Load(),
		TrialSDC:         r.trialSDC.Load(),
		TrialFailure:     r.trialFailure.Load(),
		TrialOther:       r.trialOther.Load(),
		TrialsAbnormal:   r.abnormal.Load(),
		TrialsRetried:    r.retried.Load(),
		GoldenRuns:       r.goldens.Load(),
		GoldenSeconds:    float64(r.goldenMicros.Load()) / 1e6,
		CheckpointWrites: r.checkpoints.Load(),
		Campaigns:        r.campaigns.Load(),
		TrialLatency:     r.trialLat.Snapshot(),
		CampaignDuration: r.campDur.Snapshot(),
	}
}

// TrialsTotal is the number of tallied trials: the sum over the outcome
// counters.  The server's resmod_campaign_trials_total family is this
// value, which is what makes the outcome-labeled resmod_trial_total
// counters sum to it by construction.
func (s Snapshot) TrialsTotal() uint64 {
	return s.TrialSuccess + s.TrialSDC + s.TrialFailure + s.TrialOther
}

// Empty reports whether the snapshot recorded no engine work at all.
func (s Snapshot) Empty() bool {
	return s.TrialsTotal() == 0 && s.GoldenRuns == 0 && s.Campaigns == 0 &&
		s.TrialsAbnormal == 0
}

// WriteSummary renders the end-of-run telemetry block the CLI prints
// after experiments and campaigns.
func WriteSummary(w io.Writer, s Snapshot) {
	fmt.Fprintln(w, "== telemetry ==")
	fmt.Fprintf(w, "campaigns:   %d executed, %s total wall time (mean %s)\n",
		s.Campaigns, seconds(s.CampaignDuration.Sum), seconds(s.CampaignDuration.Mean()))
	fmt.Fprintf(w, "trials:      %d (success %d, sdc %d, failure %d), mean %s/trial\n",
		s.TrialsTotal(), s.TrialSuccess, s.TrialSDC, s.TrialFailure,
		seconds(s.TrialLatency.Mean()))
	if s.TrialsAbnormal > 0 || s.TrialsRetried > 0 {
		fmt.Fprintf(w, "abnormal:    %d trials abandoned, %d retries\n",
			s.TrialsAbnormal, s.TrialsRetried)
	}
	fmt.Fprintf(w, "goldens:     %d runs, %s\n", s.GoldenRuns, seconds(s.GoldenSeconds))
	if s.CheckpointWrites > 0 {
		fmt.Fprintf(w, "checkpoints: %d writes\n", s.CheckpointWrites)
	}
}

// seconds renders a float seconds value as a rounded duration.
func seconds(v float64) string {
	return time.Duration(v * float64(time.Second)).Round(time.Microsecond).String()
}
