package faultsim

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"resmod/internal/apps"
	"resmod/internal/fpe"
	"resmod/internal/simmpi"
	"resmod/internal/stats"
)

// Outcome is a fault injection test's result (paper §2).
type Outcome int

// The three test outcomes.
const (
	// Success: the output is identical to the fault-free run or passes the
	// application checker.
	Success Outcome = iota
	// SDC: silent data corruption — the output differs and fails the
	// checker.
	SDC
	// Failure: the application crashed or hung.
	Failure
)

// String returns the outcome name.
func (o Outcome) String() string {
	switch o {
	case Success:
		return "success"
	case SDC:
		return "sdc"
	case Failure:
		return "failure"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// RegionMode selects which computation an injection may strike.
type RegionMode int

// The region modes.
const (
	// AnyRegion draws uniformly over the whole injectable stream (common
	// and parallel-unique weighted by their dynamic operation counts) —
	// the paper's parallel fault injection deployments.
	AnyRegion RegionMode = iota
	// CommonOnly restricts injections to the common computation — the
	// paper's serial multi-error deployments.
	CommonOnly
	// UniqueOnly restricts injections to the parallel-unique computation —
	// used to measure FI_par_unique.
	UniqueOnly
)

// Campaign is one fault injection deployment: a specific configuration
// (scale, error count, region, fault pattern) run for Trials randomized
// tests (paper §2).
type Campaign struct {
	App   apps.App
	Class string // empty = app default
	Procs int
	// Trials is the number of fault injection tests (the paper uses 4000).
	Trials int
	// Errors is the number of simultaneous errors per test (>=1); the
	// paper's serial deployments sweep this from 1 to p.
	Errors int
	// Region selects the computation injections may strike.
	Region RegionMode
	// Seed makes the whole campaign deterministic.
	Seed uint64
	// Timeout is the per-test hang budget (default apps.DefaultTimeout).
	Timeout time.Duration
	// Workers is the trial-level concurrency (default GOMAXPROCS).
	Workers int

	// SpreadErrors distributes the Errors of a parallel test across that
	// many *distinct* ranks (one error each) instead of injecting them all
	// into one rank's stream — modelling spatially correlated fault events
	// (e.g. one particle strike affecting several boards).  An extension
	// beyond the paper, which always injects into a single rank.
	SpreadErrors bool

	// ContaminationTol is the relative per-element deviation above which a
	// rank's final state counts as contaminated (paper §3.2).  The paper's
	// testbed runs real MPI, where reduction-order noise makes only
	// above-noise divergence observable as contamination; resmod models
	// that significance threshold explicitly.  Zero selects
	// DefaultContaminationTol; a negative value selects bit-exact
	// comparison (every ULP of divergence counts).
	ContaminationTol float64

	// Pattern selects the fault shape (default single-bit flip, the
	// paper's configuration).
	Pattern fpe.Pattern
	// KindMask restricts injections to specific operation kinds
	// (bitmask of 1<<fpe.OpAdd etc.; zero = any injectable kind).
	KindMask uint8
	// FixedBit pins the flipped bit for bit-position sensitivity sweeps
	// (single-bit pattern only).
	FixedBit *uint
	// Window restricts the injected dynamic-index range to a fraction
	// [lo, hi) of the operation stream, for injection-time sweeps.
	Window *[2]float64
}

// drawOpts assembles the fpe drawing options from the campaign fields.
func (c Campaign) drawOpts() fpe.DrawOpts {
	return fpe.DrawOpts{
		Pattern:  c.Pattern,
		KindMask: c.KindMask,
		FixedBit: c.FixedBit,
		Window:   c.Window,
	}
}

// TrialRecord describes one completed test, for tracing.
type TrialRecord struct {
	Outcome      Outcome
	Contaminated int
	TargetRank   int
	Fired        int
	// Distances holds the ring distances of the contaminated ranks from
	// the target (empty for Failure outcomes).
	Distances []int
}

// Summary is a deployment's fault injection result (paper §2): outcome
// rates plus the contamination profile and conditional rates the model
// consumes.
type Summary struct {
	// Rates is the overall fault injection result.
	Rates stats.Rates
	// Counts holds the raw outcome tallies behind Rates.
	Counts stats.Counter
	// Hist profiles how many ranks each completed test contaminated
	// (Failure tests, having no final state, are not profiled).
	Hist *stats.Hist
	// ByContamination holds outcome counters conditioned on the number of
	// contaminated ranks — FI_small_par_x in the paper's notation.
	ByContamination map[int]*stats.Counter
	// SpreadByDistance[d] counts contaminated ranks at ring distance d
	// from the injected rank, over all completed tests (distance
	// min(|r-t|, p-|r-t|)).  It separates neighbour-wise spreaders (LU's
	// pipeline) from global spreaders (CG's reductions).
	SpreadByDistance []uint64
	// Golden is the reference execution the campaign ran against.
	Golden *Golden
	// Elapsed is the campaign's total wall time (the paper's "fault
	// injection time").
	Elapsed time.Duration
	// AvgFired is the mean number of planned injections that actually
	// executed per test (late plan indices can be skipped when corrupted
	// control flow shortens the operation stream).
	AvgFired float64
}

// ConditionalRates returns the fault injection result over tests that
// contaminated exactly x ranks, and whether any such tests exist.
func (s *Summary) ConditionalRates(x int) (stats.Rates, bool) {
	c, ok := s.ByContamination[x]
	if !ok || c.Total() == 0 {
		return stats.Rates{}, false
	}
	return c.Rates(), true
}

// Run executes the deployment.  The result is deterministic for a given
// Campaign value (including Seed), regardless of Workers.
func Run(c Campaign) (*Summary, error) {
	if c.App == nil {
		return nil, errors.New("faultsim: Campaign.App is nil")
	}
	if c.Class == "" {
		c.Class = c.App.DefaultClass()
	}
	if c.Procs < 1 {
		return nil, fmt.Errorf("faultsim: invalid Procs %d", c.Procs)
	}
	if c.Trials < 1 {
		return nil, fmt.Errorf("faultsim: invalid Trials %d", c.Trials)
	}
	if c.Errors < 1 {
		c.Errors = 1
	}
	if c.Timeout <= 0 {
		c.Timeout = apps.DefaultTimeout
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}

	golden, err := ComputeGolden(c.App, c.Class, c.Procs, c.Timeout)
	if err != nil {
		return nil, err
	}
	return RunAgainst(c, golden)
}

// RunAgainst executes the deployment against a precomputed golden run
// (letting callers share one golden across deployments).
func RunAgainst(c Campaign, golden *Golden) (*Summary, error) {
	if golden.Procs != c.Procs {
		return nil, fmt.Errorf("faultsim: golden has %d procs, campaign wants %d",
			golden.Procs, c.Procs)
	}
	if c.Trials < 1 {
		return nil, fmt.Errorf("faultsim: invalid Trials %d", c.Trials)
	}
	if c.Errors < 1 {
		c.Errors = 1
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Timeout <= 0 {
		c.Timeout = apps.DefaultTimeout
	}
	if c.ContaminationTol == 0 {
		c.ContaminationTol = DefaultContaminationTol
	}
	start := time.Now()
	base := stats.NewRNG(c.Seed)

	maxDist := c.Procs/2 + 1
	type partial struct {
		counter stats.Counter
		hist    *stats.Hist
		byCont  map[int]*stats.Counter
		spread  []uint64
		fired   uint64
		err     error
	}
	parts := make([]partial, c.Workers)
	var wg sync.WaitGroup
	for w := 0; w < c.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := &parts[w]
			p.hist = stats.NewHist(c.Procs)
			p.byCont = make(map[int]*stats.Counter)
			p.spread = make([]uint64, maxDist)
			for t := w; t < c.Trials; t += c.Workers {
				rec, err := runTrial(c, golden, base.Split(uint64(t)))
				if err != nil {
					p.err = err
					return
				}
				p.fired += uint64(rec.Fired)
				switch rec.Outcome {
				case Success:
					p.counter.AddSuccess()
				case SDC:
					p.counter.AddSDC()
				case Failure:
					p.counter.AddFailure()
				}
				if rec.Outcome != Failure {
					p.hist.Add(rec.Contaminated)
					for _, d := range rec.Distances {
						p.spread[d]++
					}
					bc := p.byCont[clampCont(rec.Contaminated, c.Procs)]
					if bc == nil {
						bc = &stats.Counter{}
						p.byCont[clampCont(rec.Contaminated, c.Procs)] = bc
					}
					switch rec.Outcome {
					case Success:
						bc.AddSuccess()
					case SDC:
						bc.AddSDC()
					}
				}
			}
		}(w)
	}
	wg.Wait()

	sum := &Summary{
		Hist:             stats.NewHist(c.Procs),
		ByContamination:  make(map[int]*stats.Counter),
		SpreadByDistance: make([]uint64, maxDist),
		Golden:           golden,
	}
	var counter stats.Counter
	var fired uint64
	for i := range parts {
		p := &parts[i]
		if p.err != nil {
			return nil, p.err
		}
		counter.Merge(p.counter)
		fired += p.fired
		for x, cnt := range p.hist.Counts {
			sum.Hist.Counts[x] += cnt
		}
		for d, cnt := range p.spread {
			sum.SpreadByDistance[d] += cnt
		}
		for x, bc := range p.byCont {
			dst := sum.ByContamination[x]
			if dst == nil {
				dst = &stats.Counter{}
				sum.ByContamination[x] = dst
			}
			dst.Merge(*bc)
		}
	}
	sum.Rates = counter.Rates()
	sum.Counts = counter
	sum.AvgFired = float64(fired) / float64(c.Trials)
	sum.Elapsed = time.Since(start)
	return sum, nil
}

// ringDistance returns min(|a-b|, p-|a-b|): the hop count between two
// ranks on a ring of p, the topology metric for 1-D decomposed apps.
func ringDistance(a, b, p int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if p-d < d {
		d = p - d
	}
	return d
}

// clampCont maps a contamination count into [1, p] the way the histogram
// does, so ByContamination keys line up with Hist bins.
func clampCont(x, p int) int {
	if x < 1 {
		return 1
	}
	if x > p {
		return p
	}
	return x
}

// drawFor draws a k-error plan for one rank under the campaign's region
// mode and options.
func drawFor(c Campaign, golden *Golden, rng *stats.RNG, rank, k int) ([]fpe.Injection, error) {
	opts := c.drawOpts()
	kc := golden.KindCounts[rank]
	switch c.Region {
	case AnyRegion:
		if k == 1 {
			return fpe.DrawAnyRegionWith(rng, kc, opts)
		}
		return fpe.DrawWith(rng, kc, fpe.Common, k, opts)
	case CommonOnly:
		return fpe.DrawWith(rng, kc, fpe.Common, k, opts)
	case UniqueOnly:
		return fpe.DrawWith(rng, kc, fpe.Unique, k, opts)
	default:
		return nil, fmt.Errorf("faultsim: unknown region mode %d", int(c.Region))
	}
}

// runTrial executes one fault injection test.
func runTrial(c Campaign, golden *Golden, rng *stats.RNG) (TrialRecord, error) {
	target := 0
	if c.Procs > 1 {
		target = rng.Intn(c.Procs)
	}
	plans := make(map[int][]fpe.Injection)
	if c.SpreadErrors && c.Procs > 1 && c.Errors > 1 {
		k := c.Errors
		if k > c.Procs {
			return TrialRecord{}, fmt.Errorf(
				"faultsim: SpreadErrors wants %d distinct ranks of %d", k, c.Procs)
		}
		ranks := rng.Perm(c.Procs)[:k]
		target = ranks[0]
		for _, r := range ranks {
			plan, err := drawFor(c, golden, rng, r, 1)
			if err != nil {
				return TrialRecord{}, err
			}
			plans[r] = plan
		}
	} else {
		plan, err := drawFor(c, golden, rng, target, c.Errors)
		if err != nil {
			return TrialRecord{}, err
		}
		plans[target] = plan
	}

	res := apps.Execute(golden.App, golden.Class, c.Procs, plans, c.Timeout)
	fired := 0
	for r := range plans {
		fired += res.Ctxs[r].Fired()
	}
	rec := TrialRecord{TargetRank: target, Fired: fired}
	if res.Err != nil {
		var pe *simmpi.PanicError
		if errors.As(res.Err, &pe) || errors.Is(res.Err, simmpi.ErrTimeout) {
			rec.Outcome = Failure
			return rec, nil
		}
		// Any other error is a harness problem, not an application outcome.
		return rec, fmt.Errorf("faultsim: trial failed abnormally: %w", res.Err)
	}
	for r := 0; r < c.Procs; r++ {
		if diverged(res.Outputs[r].State, golden.States[r], c.ContaminationTol) {
			rec.Contaminated++
			rec.Distances = append(rec.Distances, ringDistance(r, target, c.Procs))
		}
	}
	if golden.App.Verify(golden.Check, res.Outputs[0].Check) {
		rec.Outcome = Success
	} else {
		rec.Outcome = SDC
	}
	return rec, nil
}
