package faultsim

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"resmod/internal/apps"
	"resmod/internal/fpe"
	"resmod/internal/simmpi"
	"resmod/internal/stats"
	"resmod/internal/telemetry"
)

// Outcome is a fault injection test's result (paper §2).
type Outcome int

// The three test outcomes.
const (
	// Success: the output is identical to the fault-free run or passes the
	// application checker.
	Success Outcome = iota
	// SDC: silent data corruption — the output differs and fails the
	// checker.
	SDC
	// Failure: the application crashed or hung.
	Failure
)

// String returns the outcome name.
func (o Outcome) String() string {
	switch o {
	case Success:
		return "success"
	case SDC:
		return "sdc"
	case Failure:
		return "failure"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// RegionMode selects which computation an injection may strike.
type RegionMode int

// The region modes.
const (
	// AnyRegion draws uniformly over the whole injectable stream (common
	// and parallel-unique weighted by their dynamic operation counts) —
	// the paper's parallel fault injection deployments.
	AnyRegion RegionMode = iota
	// CommonOnly restricts injections to the common computation — the
	// paper's serial multi-error deployments.
	CommonOnly
	// UniqueOnly restricts injections to the parallel-unique computation —
	// used to measure FI_par_unique.
	UniqueOnly
)

// Resilience tuning defaults.
const (
	// DefaultAbnormalRetries is the number of times an abnormal trial is
	// retried before it counts against the campaign's MaxAbnormal budget.
	DefaultAbnormalRetries = 2
	// DefaultCheckpointEvery is the period between checkpoint snapshots
	// when Campaign.Checkpoint is set and no period is given.
	DefaultCheckpointEvery = 5 * time.Second
)

// Retry backoff bounds for abnormal trials (exponential, base doubling,
// capped).
const (
	retryBackoffBase = 10 * time.Millisecond
	retryBackoffMax  = 500 * time.Millisecond
)

// Campaign is one fault injection deployment: a specific configuration
// (scale, error count, region, fault pattern) run for Trials randomized
// tests (paper §2).
type Campaign struct {
	App   apps.App
	Class string // empty = app default
	Procs int
	// Trials is the number of fault injection tests (the paper uses 4000).
	Trials int
	// Errors is the number of simultaneous errors per test (>=1); the
	// paper's serial deployments sweep this from 1 to p.
	Errors int
	// Region selects the computation injections may strike.
	Region RegionMode
	// Seed makes the whole campaign deterministic.
	Seed uint64
	// Timeout is the per-test hang budget (default apps.DefaultTimeout).
	Timeout time.Duration
	// Workers is the trial-level concurrency (default GOMAXPROCS).
	Workers int
	// Pool, when non-nil, is a worker-token budget shared with other
	// concurrently executing campaigns: each in-flight trial holds one
	// token, so N concurrent campaigns with Workers each never run more
	// than Pool.Size() trials at once.  Nil (the default) leaves trial
	// concurrency bounded by Workers alone.  Like Workers, the pool does
	// not affect trial outcomes and never enters the campaign identity.
	Pool *WorkerBudget

	// SpreadErrors distributes the Errors of a parallel test across that
	// many *distinct* ranks (one error each) instead of injecting them all
	// into one rank's stream — modelling spatially correlated fault events
	// (e.g. one particle strike affecting several boards).  An extension
	// beyond the paper, which always injects into a single rank.
	SpreadErrors bool

	// ContaminationTol is the relative per-element deviation above which a
	// rank's final state counts as contaminated (paper §3.2).  The paper's
	// testbed runs real MPI, where reduction-order noise makes only
	// above-noise divergence observable as contamination; resmod models
	// that significance threshold explicitly.  Zero selects
	// DefaultContaminationTol; a negative value selects bit-exact
	// comparison (every ULP of divergence counts).
	ContaminationTol float64

	// Pattern selects the fault shape (default single-bit flip, the
	// paper's configuration).
	Pattern fpe.Pattern
	// KindMask restricts injections to specific operation kinds
	// (bitmask of 1<<fpe.OpAdd etc.; zero = any injectable kind).
	KindMask uint8
	// FixedBit pins the flipped bit for bit-position sensitivity sweeps
	// (single-bit pattern only).
	FixedBit *uint
	// Window restricts the injected dynamic-index range to a fraction
	// [lo, hi) of the operation stream, for injection-time sweeps.
	Window *[2]float64

	// Budget bounds the campaign's total wall time; zero means no budget.
	// A campaign that exhausts its budget stops promptly and returns a
	// partial Summary flagged Interrupted, exactly like an external
	// cancellation.
	Budget time.Duration
	// MaxAbnormal is the number of abnormal trials the campaign tolerates
	// before failing.  A trial is abnormal when the *harness* errors
	// (a panic escaping the injection machinery, an injection-plan drawing
	// error, an application-reported setup error) — as opposed to the
	// application crashing or hanging, which are Failure outcomes.
	// Abnormal trials are retried (see AbnormalRetries) and, if still
	// failing, excluded from the outcome tallies and counted in
	// Summary.Abnormal.  The default 0 fails the campaign on the first
	// unrecovered abnormal trial.
	MaxAbnormal int
	// AbnormalRetries is the number of times an abnormal trial is re-run
	// (with bounded exponential backoff) before being abandoned.  Each
	// retry replays the identical trial: the trial's RNG stream depends
	// only on (Seed, trial index).  Zero selects DefaultAbnormalRetries;
	// negative disables retries.
	AbnormalRetries int

	// Checkpoint is the path of a JSON snapshot of the campaign's partial
	// tallies, written every CheckpointEvery and at exit (including
	// interrupted exits).  Empty disables checkpointing.
	Checkpoint string
	// CheckpointEvery is the snapshot period (default
	// DefaultCheckpointEvery).
	CheckpointEvery time.Duration
	// Resume, when true and Checkpoint names an existing snapshot of this
	// exact campaign (same Identity), restores its tallies and runs only
	// the remaining trials.  Because each trial's RNG is an independent
	// stream split from Seed, a resumed campaign is bit-identical to an
	// uninterrupted one.  A missing checkpoint file starts fresh.
	Resume bool

	// ProgressEvery is the live-progress snapshot period in recorded
	// trials: when the campaign's context carries a telemetry.Progress
	// bus, a snapshot (tallies, trials/sec, ETA, Wilson CI widths) is
	// published every that many trials.  Zero selects roughly
	// DefaultProgressDivisor snapshots over the campaign's lifetime.
	// Snapshots are observations only — they never affect outcomes or
	// RNG streams — so, like Workers, the field never enters the
	// campaign identity.
	ProgressEvery int

	// hooks holds test seams; nil in production use.  A pointer keeps
	// Campaign comparable.
	hooks *campaignHooks
}

// campaignHooks are in-package test seams.
type campaignHooks struct {
	// trialDone is called under the aggregate lock after every recorded
	// trial with the completed-trial count — used by tests to interrupt a
	// campaign at an exact trial boundary.
	trialDone func(done uint64)
}

// drawOpts assembles the fpe drawing options from the campaign fields.
func (c Campaign) drawOpts() fpe.DrawOpts {
	return fpe.DrawOpts{
		Pattern:  c.Pattern,
		KindMask: c.KindMask,
		FixedBit: c.FixedBit,
		Window:   c.Window,
	}
}

// TrialRecord describes one completed test, for tracing.
type TrialRecord struct {
	Outcome      Outcome
	Contaminated int
	TargetRank   int
	Fired        int
	// Distances holds the ring distances of the contaminated ranks from
	// the target (empty for Failure outcomes).
	Distances []int
}

// Summary is a deployment's fault injection result (paper §2): outcome
// rates plus the contamination profile and conditional rates the model
// consumes.
type Summary struct {
	// Rates is the overall fault injection result.
	Rates stats.Rates
	// Counts holds the raw outcome tallies behind Rates.
	Counts stats.Counter
	// Hist profiles how many ranks each completed test contaminated
	// (Failure tests, having no final state, are not profiled).
	Hist *stats.Hist
	// ByContamination holds outcome counters conditioned on the number of
	// contaminated ranks — FI_small_par_x in the paper's notation.
	ByContamination map[int]*stats.Counter
	// SpreadByDistance[d] counts contaminated ranks at ring distance d
	// from the injected rank, over all completed tests (distance
	// min(|r-t|, p-|r-t|)).  It separates neighbour-wise spreaders (LU's
	// pipeline) from global spreaders (CG's reductions).
	SpreadByDistance []uint64
	// Golden is the reference execution the campaign ran against.
	Golden *Golden
	// Elapsed is the campaign's total wall time (the paper's "fault
	// injection time").
	Elapsed time.Duration
	// AvgFired is the mean number of planned injections that actually
	// executed per completed test (late plan indices can be skipped when
	// corrupted control flow shortens the operation stream).
	AvgFired float64

	// Interrupted reports that the campaign stopped early — an external
	// cancellation (e.g. SIGINT) or an exhausted Budget — so the tallies
	// cover only TrialsDone of the configured Trials.
	Interrupted bool
	// TrialsDone is the number of trials whose outcomes are in the
	// tallies.  For a complete campaign with no abnormal trials it equals
	// the configured Trials.
	TrialsDone uint64
	// Abnormal is the number of trials abandoned after harness errors
	// (panics escaping the injection machinery, plan-drawing errors);
	// they contribute to no outcome tally, so Rates.N < Trials.  A
	// non-zero Abnormal means degraded statistical confidence and should
	// be surfaced by reports.
	Abnormal uint64
}

// ConditionalRates returns the fault injection result over tests that
// contaminated exactly x ranks, and whether any such tests exist.
func (s *Summary) ConditionalRates(x int) (stats.Rates, bool) {
	c, ok := s.ByContamination[x]
	if !ok || c.Total() == 0 {
		return stats.Rates{}, false
	}
	return c.Rates(), true
}

// Run executes the deployment.  The result is deterministic for a given
// Campaign value (including Seed), regardless of Workers.
func Run(c Campaign) (*Summary, error) {
	return RunCtx(context.Background(), c)
}

// RunCtx is Run under a context: cancellation stops all trial workers
// promptly (within one trial timeout) and returns the partial Summary
// flagged Interrupted instead of discarding the completed work.
func RunCtx(ctx context.Context, c Campaign) (*Summary, error) {
	if c.App == nil {
		return nil, errors.New("faultsim: Campaign.App is nil")
	}
	if c.Class == "" {
		c.Class = c.App.DefaultClass()
	}
	if c.Procs < 1 {
		return nil, fmt.Errorf("faultsim: invalid Procs %d", c.Procs)
	}
	if c.Trials < 1 {
		return nil, fmt.Errorf("faultsim: invalid Trials %d", c.Trials)
	}
	if c.Timeout <= 0 {
		c.Timeout = apps.DefaultTimeout
	}

	golden, err := ComputeGoldenCtx(ctx, c.App, c.Class, c.Procs, c.Timeout)
	if err != nil {
		return nil, err
	}
	return RunAgainstCtx(ctx, c, golden)
}

// RunAgainst executes the deployment against a precomputed golden run
// (letting callers share one golden across deployments).
func RunAgainst(c Campaign, golden *Golden) (*Summary, error) {
	return RunAgainstCtx(context.Background(), c, golden)
}

// RunAgainstCtx is RunAgainst under a context.  On cancellation or an
// exhausted Budget it returns the partial Summary flagged Interrupted (and,
// when Checkpoint is set, persists a resumable snapshot first).  Campaign
// errors — invalid configuration, or more than MaxAbnormal abnormal trials
// — are returned as errors; the abnormal-overflow error cites the lowest
// failing trial index observed, independent of worker scheduling.
func RunAgainstCtx(ctx context.Context, c Campaign, golden *Golden) (*Summary, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if c.App == nil {
		c.App = golden.App
	}
	if c.Class == "" {
		c.Class = golden.Class
	}
	if golden.Procs != c.Procs {
		return nil, fmt.Errorf("faultsim: golden has %d procs, campaign wants %d",
			golden.Procs, c.Procs)
	}
	if c.Trials < 1 {
		return nil, fmt.Errorf("faultsim: invalid Trials %d", c.Trials)
	}
	if c.Errors < 1 {
		c.Errors = 1
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Timeout <= 0 {
		c.Timeout = apps.DefaultTimeout
	}
	if c.ContaminationTol == 0 {
		c.ContaminationTol = DefaultContaminationTol
	}
	if c.AbnormalRetries == 0 {
		c.AbnormalRetries = DefaultAbnormalRetries
	}

	if c.Budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.Budget)
		defer cancel()
	}
	// abort lets a worker that exhausts the abnormal budget stop the
	// others promptly instead of letting them burn through their remaining
	// trials.
	ctx, abort := context.WithCancel(ctx)
	defer abort()

	start := time.Now()
	agg := newAggregate(c.Procs, c.Trials)
	if c.hooks != nil {
		agg.hook = c.hooks.trialDone
	}
	identity := c.Identity()

	// Telemetry: one campaign span covering the whole deployment, trial
	// outcomes/latency into the sink, structured completion events.  The
	// bundle is resolved once here — not per trial — so the hot path pays
	// only the recording calls themselves (no-ops when telemetry is off).
	tel := telemetry.From(ctx)
	ctx, span := tel.Tracer().Start(ctx, "campaign",
		telemetry.String("id", identity),
		telemetry.Int("procs", c.Procs),
		telemetry.Int("trials", c.Trials),
		telemetry.Int("workers", c.Workers))
	defer span.End()

	if c.Resume && c.Checkpoint != "" {
		if err := agg.restoreFromFile(c.Checkpoint, identity); err != nil {
			return nil, err
		}
		tel.Logger().Debug("campaign resumed from checkpoint",
			"campaign", identity, "path", c.Checkpoint, "done", agg.doneCount())
	}
	// Live progress: an opening snapshot (a resumed campaign announces
	// its restored trial count), periodic snapshots from the trial loop,
	// and a terminal snapshot on every summary-producing exit.  nil when
	// the context carries no Progress bus.
	prog := newCampaignProgress(tel.Progress(), c, identity, agg.doneCount())
	prog.publish(agg, telemetry.StateRunning)
	// writeCheckpoint snapshots the tallies, tracing and counting each
	// write (the final write's error is the caller's to handle).
	writeCheckpoint := func() error {
		_, sp := tel.Tracer().Start(ctx, "checkpoint",
			telemetry.String("path", c.Checkpoint))
		err := SaveCheckpoint(c.Checkpoint, agg.snapshot(identity))
		sp.End()
		if err == nil {
			tel.Sink().CheckpointWrite()
		} else {
			tel.Logger().Warn("checkpoint write failed",
				"campaign", identity, "path", c.Checkpoint, "err", err)
		}
		return err
	}

	// Periodic checkpointing: a snapshot every CheckpointEvery, plus a
	// final one on every exit path so an interrupted campaign is always
	// resumable.
	ckptStop := make(chan struct{})
	var ckptWG sync.WaitGroup
	if c.Checkpoint != "" {
		every := c.CheckpointEvery
		if every <= 0 {
			every = DefaultCheckpointEvery
		}
		ckptWG.Add(1)
		go func() {
			defer ckptWG.Done()
			tick := time.NewTicker(every)
			defer tick.Stop()
			for {
				select {
				case <-ckptStop:
					return
				case <-tick.C:
					// Best effort: a failed periodic write only costs
					// resumability back to the previous snapshot.
					_ = writeCheckpoint()
				}
			}
		}()
	}

	base := stats.NewRNG(c.Seed)
	sink := tel.Sink()
	var wg sync.WaitGroup
	for w := 0; w < c.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			_, bspan := tel.Tracer().Start(ctx, "trial-batch", telemetry.Int("worker", w))
			done := 0
			defer func() {
				bspan.SetAttr(telemetry.Int("trials", done))
				bspan.End()
			}()
			// One arena per worker: trials reuse the simulated world's
			// channel fabric and the per-rank fpe contexts instead of
			// rebuilding them, cutting steady-state per-trial allocation
			// to what the application itself allocates.
			arena := apps.NewArena()
			for t := w; t < c.Trials; t += c.Workers {
				if ctx.Err() != nil {
					return
				}
				if agg.isDone(t) {
					continue // restored from the checkpoint
				}
				// Under a shared budget, hold one token per in-flight
				// trial.  Tokens are released before any other blocking
				// wait, so concurrent campaigns drain each other's
				// backlog instead of deadlocking.
				if err := c.Pool.Acquire(ctx); err != nil {
					return
				}
				t0 := time.Now()
				rec, err := runTrialResilient(ctx, c, golden, base, t, sink, agg, arena)
				c.Pool.Release()
				if err != nil {
					if isInterruption(err) {
						return
					}
					sink.TrialAbnormal()
					if agg.recordAbnormal(t, err) > c.MaxAbnormal {
						abort()
						return
					}
					continue
				}
				prog.trialRecorded(agg.record(t, rec), agg)
				sink.TrialDone(rec.Outcome.String(), time.Since(t0))
				done++
			}
		}(w)
	}
	wg.Wait()

	if c.Checkpoint != "" {
		close(ckptStop)
		ckptWG.Wait()
		if err := writeCheckpoint(); err != nil {
			return nil, fmt.Errorf("faultsim: writing checkpoint: %w", err)
		}
	}
	if err := agg.fatalError(c.MaxAbnormal); err != nil {
		prog.publish(agg, telemetry.StateFailed)
		return nil, err
	}

	sum := agg.summary(golden)
	sum.Elapsed = time.Since(start)
	if sum.TrialsDone+sum.Abnormal < uint64(c.Trials) && ctx.Err() != nil {
		sum.Interrupted = true
	}
	prog.finish(agg, sum.Interrupted)
	sink.CampaignDone(sum.Elapsed)
	span.SetAttr(telemetry.Attr{Key: "trials_done", Value: sum.TrialsDone},
		telemetry.Attr{Key: "interrupted", Value: sum.Interrupted})
	logCampaign(tel, identity, sum)
	return sum, nil
}

// logCampaign emits the structured completion event for one executed
// deployment: info for clean completions, warn for interruptions and
// campaigns with abnormal trials (so -quiet never hides them).
func logCampaign(tel *telemetry.Telemetry, identity string, sum *Summary) {
	args := []any{
		"campaign", identity, "rates", sum.Rates.String(),
		"trials", sum.TrialsDone,
		"elapsed", sum.Elapsed.Round(time.Millisecond),
	}
	switch {
	case sum.Interrupted:
		tel.Logger().Warn("campaign interrupted", args...)
	case sum.Abnormal > 0:
		tel.Logger().Warn("campaign done with abnormal trials",
			append(args, "abnormal", sum.Abnormal)...)
	default:
		tel.Logger().Info("campaign done", args...)
	}
}

// isInterruption reports whether a trial error is an external interruption
// (context cancellation or budget/deadline expiry) rather than a harness
// abnormality; interrupted trials are not outcomes and not abnormal.
func isInterruption(err error) bool {
	return errors.Is(err, simmpi.ErrCanceled) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded)
}

// runTrialResilient runs one trial with harness-fault containment: panics
// escaping the harness are recovered, and abnormal trials are retried with
// bounded exponential backoff (each retry counted into the sink and the
// aggregate's live-snapshot tally).  Retries replay the identical trial —
// the RNG stream is re-split from the base per attempt, and the worker's
// arena is discarded first so the replay runs on provably fresh state.
func runTrialResilient(ctx context.Context, c Campaign, golden *Golden, base *stats.RNG, t int, sink telemetry.Sink, agg *aggregate, arena *apps.Arena) (TrialRecord, error) {
	backoff := retryBackoffBase
	var rec TrialRecord
	var err error
	for attempt := 0; ; attempt++ {
		rec, err = runTrialContained(ctx, c, golden, base.Split(uint64(t)), arena)
		if err == nil || isInterruption(err) {
			return rec, err
		}
		arena.Discard()
		if attempt >= c.AbnormalRetries {
			return rec, fmt.Errorf("faultsim: trial %d failed abnormally after %d attempt(s): %w",
				t, attempt+1, err)
		}
		sink.TrialRetried()
		agg.noteRetried()
		select {
		case <-ctx.Done():
			return rec, fmt.Errorf("%w: %w", simmpi.ErrCanceled, ctx.Err())
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > retryBackoffMax {
			backoff = retryBackoffMax
		}
	}
}

// runTrialContained is runTrial with a recover fence: a panic escaping the
// harness (injection drawing, outcome classification, a panicking
// application Verify) is contained to this trial and reported as an
// abnormal error instead of killing the whole campaign.
func runTrialContained(ctx context.Context, c Campaign, golden *Golden, rng *stats.RNG, arena *apps.Arena) (rec TrialRecord, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("faultsim: harness panic: %v", v)
		}
	}()
	return runTrial(ctx, c, golden, rng, arena)
}

// aggregate is the shared, lock-protected campaign state: the done-trial
// bitmap plus every tally the Summary is built from.  Keeping one shared
// aggregate (rather than per-worker partials merged at the end) is what
// makes periodic checkpointing a plain snapshot; the per-trial lock is
// negligible next to a trial's full application execution.
type aggregate struct {
	mu        sync.Mutex
	procs     int
	trials    int
	done      []uint64 // bitmap; bit t set = trial t's outcome is tallied
	completed uint64
	counter   stats.Counter
	hist      []uint64
	byCont    map[int]*stats.Counter
	spread    []uint64
	fired     uint64
	retried   uint64 // abnormal-trial retries, for live snapshots
	abnormal  []trialError
	hook      func(done uint64)
}

// trialError is one abnormal trial's error, kept for deterministic
// (lowest-trial-index) campaign error reporting.
type trialError struct {
	trial int
	err   error
}

func newAggregate(procs, trials int) *aggregate {
	return &aggregate{
		procs:  procs,
		trials: trials,
		done:   make([]uint64, (trials+63)/64),
		hist:   make([]uint64, procs),
		byCont: make(map[int]*stats.Counter),
		spread: make([]uint64, procs/2+1),
	}
}

// doneCount returns the number of tallied trials so far.
func (a *aggregate) doneCount() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.completed
}

// isDone reports whether trial t's outcome is already tallied (restored
// from a checkpoint).
func (a *aggregate) isDone(t int) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.done[t/64]&(1<<(t%64)) != 0
}

// record tallies one completed trial and returns the completed-trial
// count after it — the progress publisher's cadence input.
func (a *aggregate) record(t int, rec TrialRecord) uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.done[t/64]&(1<<(t%64)) != 0 {
		return a.completed
	}
	a.done[t/64] |= 1 << (t % 64)
	a.completed++
	a.fired += uint64(rec.Fired)
	switch rec.Outcome {
	case Success:
		a.counter.AddSuccess()
	case SDC:
		a.counter.AddSDC()
	case Failure:
		a.counter.AddFailure()
	}
	if rec.Outcome != Failure {
		x := clampCont(rec.Contaminated, a.procs)
		a.hist[x-1]++
		for _, d := range rec.Distances {
			a.spread[d]++
		}
		bc := a.byCont[x]
		if bc == nil {
			bc = &stats.Counter{}
			a.byCont[x] = bc
		}
		switch rec.Outcome {
		case Success:
			bc.AddSuccess()
		case SDC:
			bc.AddSDC()
		}
	}
	if a.hook != nil {
		a.hook(a.completed)
	}
	return a.completed
}

// recordAbnormal records an abandoned trial and returns the new abnormal
// count.  Abnormal trials are never marked done: a resumed campaign
// re-attempts them.
func (a *aggregate) recordAbnormal(t int, err error) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.abnormal = append(a.abnormal, trialError{trial: t, err: err})
	return len(a.abnormal)
}

// fatalError returns the campaign error when the abnormal budget is
// exceeded: the lowest-trial-index abnormal error observed, so the result
// does not depend on which worker happened to be merged first.
func (a *aggregate) fatalError(maxAbnormal int) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.abnormal) <= maxAbnormal {
		return nil
	}
	first := a.abnormal[0]
	for _, te := range a.abnormal[1:] {
		if te.trial < first.trial {
			first = te
		}
	}
	if maxAbnormal == 0 && len(a.abnormal) == 1 {
		return first.err
	}
	return fmt.Errorf("faultsim: %d abnormal trial(s) exceed budget %d; first: %w",
		len(a.abnormal), maxAbnormal, first.err)
}

// summary builds the Summary from the tallies.
func (a *aggregate) summary(golden *Golden) *Summary {
	a.mu.Lock()
	defer a.mu.Unlock()
	sum := &Summary{
		Hist:             &stats.Hist{Counts: append([]uint64(nil), a.hist...)},
		ByContamination:  make(map[int]*stats.Counter, len(a.byCont)),
		SpreadByDistance: append([]uint64(nil), a.spread...),
		Golden:           golden,
		Rates:            a.counter.Rates(),
		Counts:           a.counter,
		TrialsDone:       a.completed,
		Abnormal:         uint64(len(a.abnormal)),
	}
	for x, bc := range a.byCont {
		cp := *bc
		sum.ByContamination[x] = &cp
	}
	if a.completed > 0 {
		sum.AvgFired = float64(a.fired) / float64(a.completed)
	}
	return sum
}

// ringDistance returns min(|a-b|, p-|a-b|): the hop count between two
// ranks on a ring of p, the topology metric for 1-D decomposed apps.
func ringDistance(a, b, p int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if p-d < d {
		d = p - d
	}
	return d
}

// clampCont maps a contamination count into [1, p] the way the histogram
// does, so ByContamination keys line up with Hist bins.
func clampCont(x, p int) int {
	if x < 1 {
		return 1
	}
	if x > p {
		return p
	}
	return x
}

// drawFor draws a k-error plan for one rank under the campaign's region
// mode and options.
func drawFor(c Campaign, golden *Golden, rng *stats.RNG, rank, k int) ([]fpe.Injection, error) {
	opts := c.drawOpts()
	kc := golden.KindCounts[rank]
	switch c.Region {
	case AnyRegion:
		// All k errors draw over the full injectable stream (common and
		// parallel-unique weighted by their dynamic op counts), matching
		// the documented AnyRegion semantics; restricting the k>1 case to
		// the common stream would make multi-error parallel deployments
		// blind to the parallel-unique computation.
		return fpe.DrawAnyRegionKWith(rng, kc, k, opts)
	case CommonOnly:
		return fpe.DrawWith(rng, kc, fpe.Common, k, opts)
	case UniqueOnly:
		return fpe.DrawWith(rng, kc, fpe.Unique, k, opts)
	default:
		return nil, fmt.Errorf("faultsim: unknown region mode %d", int(c.Region))
	}
}

// runTrial executes one fault injection test.  arena (nil-safe) pools
// the execution state across a worker's trials.
func runTrial(ctx context.Context, c Campaign, golden *Golden, rng *stats.RNG, arena *apps.Arena) (TrialRecord, error) {
	target := 0
	if c.Procs > 1 {
		target = rng.Intn(c.Procs)
	}
	plans := make(map[int][]fpe.Injection)
	if c.SpreadErrors && c.Procs > 1 && c.Errors > 1 {
		k := c.Errors
		if k > c.Procs {
			return TrialRecord{}, fmt.Errorf(
				"faultsim: SpreadErrors wants %d distinct ranks of %d", k, c.Procs)
		}
		ranks := rng.Perm(c.Procs)[:k]
		target = ranks[0]
		for _, r := range ranks {
			plan, err := drawFor(c, golden, rng, r, 1)
			if err != nil {
				return TrialRecord{}, err
			}
			plans[r] = plan
		}
	} else {
		plan, err := drawFor(c, golden, rng, target, c.Errors)
		if err != nil {
			return TrialRecord{}, err
		}
		plans[target] = plan
	}

	res := arena.ExecuteCtx(ctx, golden.App, golden.Class, c.Procs, plans, c.Timeout)
	fired := 0
	for r := range plans {
		fired += res.Ctxs[r].Fired()
	}
	rec := TrialRecord{TargetRank: target, Fired: fired}
	if res.Err != nil {
		var pe *simmpi.PanicError
		if errors.As(res.Err, &pe) || errors.Is(res.Err, simmpi.ErrTimeout) {
			rec.Outcome = Failure
			return rec, nil
		}
		// Cancellation and harness problems are not application outcomes.
		return rec, res.Err
	}
	// Hash-first contamination check: a rank whose state hash matches the
	// golden hash is bit-identical (so never diverged, whatever the
	// tolerance); only mismatching ranks — the contaminated few — pay the
	// element-wise comparison.
	hashes := golden.StateHashes()
	for r := 0; r < c.Procs; r++ {
		st := res.Outputs[r].State
		if hashState(st) == hashes[r] {
			continue
		}
		if diverged(st, golden.States[r], c.ContaminationTol) {
			rec.Contaminated++
			rec.Distances = append(rec.Distances, ringDistance(r, target, c.Procs))
		}
	}
	if golden.App.Verify(golden.Check, res.Outputs[0].Check) {
		rec.Outcome = Success
	} else {
		rec.Outcome = SDC
	}
	return rec, nil
}
