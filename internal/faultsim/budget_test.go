package faultsim

import (
	"context"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"resmod/internal/apps"
	"resmod/internal/fpe"
	"resmod/internal/simmpi"
)

// gaugeApp tracks the high-water mark of concurrently executing trials.
type gaugeApp struct {
	cur, max *int64
}

func (gaugeApp) Name() string               { return "gauge-test" }
func (gaugeApp) Classes() []string          { return []string{"X"} }
func (gaugeApp) DefaultClass() string       { return "X" }
func (gaugeApp) MaxProcs(string) int        { return 8 }
func (gaugeApp) Verify(g, c []float64) bool { return apps.VerifyRel(g, c, 1e-12) }

func (a gaugeApp) Run(fc *fpe.Ctx, comm *simmpi.Comm, class string) (apps.RankOutput, error) {
	// Count each trial once (rank 0), not once per rank goroutine.
	if comm.Rank() == 0 {
		n := atomic.AddInt64(a.cur, 1)
		for {
			old := atomic.LoadInt64(a.max)
			if n <= old || atomic.CompareAndSwapInt64(a.max, old, n) {
				break
			}
		}
		defer atomic.AddInt64(a.cur, -1)
		// Dwell long enough that concurrent trials overlap observably.
		time.Sleep(2 * time.Millisecond)
	}
	s := 0.0
	for i := 0; i < 50; i++ {
		s = fc.Add(s, float64(i))
	}
	return apps.RankOutput{State: []float64{s}, Check: []float64{s}}, nil
}

func TestNilWorkerBudgetIsNoop(t *testing.T) {
	var b *WorkerBudget
	if err := b.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	b.Release()
	if b.Size() != 0 || b.InUse() != 0 {
		t.Fatal("nil budget reports tokens")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := b.Acquire(ctx); err == nil {
		t.Fatal("nil budget ignored cancelled context")
	}
}

func TestWorkerBudgetBlocksAndCancels(t *testing.T) {
	b := NewWorkerBudget(1)
	if b.Size() != 1 {
		t.Fatalf("Size = %d", b.Size())
	}
	if err := b.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := b.Acquire(ctx); err == nil {
		t.Fatal("second acquire on a full budget succeeded")
	}
	b.Release()
	if err := b.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	b.Release()
}

func TestSharedBudgetBoundsConcurrentCampaigns(t *testing.T) {
	// Two campaigns, each wanting 4 trial workers, share a 2-token
	// budget: the high-water mark of in-flight trials must be <= 2, and
	// both campaigns must still complete every trial.
	var cur, max int64
	app := gaugeApp{cur: &cur, max: &max}
	pool := NewWorkerBudget(2)
	var wg sync.WaitGroup
	sums := make([]*Summary, 2)
	errs := make([]error, 2)
	for i := range sums {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sums[i], errs[i] = Run(Campaign{
				App: app, Procs: 2, Trials: 20, Seed: uint64(i + 1),
				Workers: 4, Pool: pool,
			})
		}(i)
	}
	wg.Wait()
	for i := range sums {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if sums[i].Rates.N != 20 {
			t.Fatalf("campaign %d: N = %d, want 20", i, sums[i].Rates.N)
		}
	}
	if hw := atomic.LoadInt64(&max); hw > 2 {
		t.Fatalf("high-water mark %d trials in flight, budget is 2", hw)
	}
	if pool.InUse() != 0 {
		t.Fatalf("%d tokens leaked", pool.InUse())
	}
}

func TestPooledCampaignMatchesUnpooled(t *testing.T) {
	// The pool throttles scheduling only; outcomes must be bit-identical
	// to an unpooled run of the same campaign.
	c := Campaign{App: lookup(t, "PENNANT"), Procs: 2, Trials: 24, Seed: 7, Workers: 4}
	plain, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	c.Pool = NewWorkerBudget(1)
	pooled, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Rates != pooled.Rates {
		t.Fatalf("pooled rates %+v != unpooled %+v", pooled.Rates, plain.Rates)
	}
	if !reflect.DeepEqual(plain.Hist.Counts, pooled.Hist.Counts) {
		t.Fatalf("pooled hist %+v != unpooled %+v", pooled.Hist.Counts, plain.Hist.Counts)
	}
}
