package faultsim

import "fmt"

// IdentityVersion is the schema version of the campaign identity string
// produced by Campaign.Identity.  The identity is a durable key: it names
// checkpoint snapshots on disk and addresses entries of the prediction
// service's result store, so its format is API.  Bump this constant (and
// the "cid:vN/" prefix it produces) whenever the set of outcome-affecting
// fields or their encoding changes; a bump deliberately orphans existing
// checkpoints and store entries rather than silently resuming them into a
// deployment with different semantics.
//
// Version history:
//
//	v1  unversioned "APP/CLASS/p8/..." strings (pre-service checkpoints).
//	v2  adds the "cid:v2/" prefix and defines the identity over the
//	    Normalized campaign, so callers and RunAgainstCtx agree on keys.
const IdentityVersion = 2

// Normalized returns a copy of the campaign with the outcome-affecting
// defaults applied: Class (the app's default), Errors (minimum 1) and
// ContaminationTol (DefaultContaminationTol).  Identity is defined over
// the normalized form — normalizing first is what makes a key computed by
// a caller (the session cache, the result store) equal to the key
// RunAgainstCtx embeds in checkpoints after it applies the same defaults.
// Fields that do not affect trial outcomes (Workers, Pool, Timeout,
// Budget, retry, checkpoint and ProgressEvery knobs) are left untouched
// and never enter the identity.
func (c Campaign) Normalized() Campaign {
	if c.Class == "" && c.App != nil {
		c.Class = c.App.DefaultClass()
	}
	if c.Errors < 1 {
		c.Errors = 1
	}
	if c.ContaminationTol == 0 {
		c.ContaminationTol = DefaultContaminationTol
	}
	return c
}

// Identity returns the campaign's deterministic identity string: a
// versioned key over every field that affects trial outcomes
// (app/class/procs/trials/errors/region/seed/pattern and the extension
// knobs).  Two campaigns with equal identities produce bit-identical
// Summaries; checkpoints and the prediction service's result store are
// both keyed by it, so a snapshot or cached summary can never be resumed
// into a different deployment.
//
// The format (pinned by TestIdentityFormat) is
//
//	cid:v2/APP/CLASS/p<procs>/t<trials>/e<errors>/r<region>/s<seed>/pat<pattern>
//
// followed by optional "/spread", "/tol<g>", "/k<mask>", "/b<bit>" and
// "/w<lo>-<hi>" segments for the non-default extension knobs.  Call on
// the Normalized campaign; RunAgainstCtx normalizes before computing it.
func (c Campaign) Identity() string {
	app := "?"
	if c.App != nil {
		app = c.App.Name()
	}
	id := fmt.Sprintf("cid:v%d/%s/%s/p%d/t%d/e%d/r%d/s%d/pat%d",
		IdentityVersion, app, c.Class, c.Procs, c.Trials, c.Errors,
		int(c.Region), c.Seed, int(c.Pattern))
	if c.SpreadErrors {
		id += "/spread"
	}
	if c.ContaminationTol != 0 {
		id += fmt.Sprintf("/tol%g", c.ContaminationTol)
	}
	if c.KindMask != 0 {
		id += fmt.Sprintf("/k%d", c.KindMask)
	}
	if c.FixedBit != nil {
		id += fmt.Sprintf("/b%d", *c.FixedBit)
	}
	if c.Window != nil {
		id += fmt.Sprintf("/w%g-%g", c.Window[0], c.Window[1])
	}
	return id
}
