package faultsim

import (
	"math"
	"testing"
)

func TestDivergedBitwiseMode(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{1, 2, 3 + 1e-15}
	if diverged(a, a, -1) {
		t.Fatal("identical states diverged bitwise")
	}
	if !diverged(b, a, -1) {
		t.Fatal("1-ulp-scale change invisible bitwise")
	}
}

func TestDivergedThreshold(t *testing.T) {
	golden := []float64{1, -2, 1e-20}
	cases := []struct {
		got  []float64
		tol  float64
		want bool
	}{
		// Below tolerance: not contaminated.
		{[]float64{1 + 1e-12, -2, 1e-20}, 1e-10, false},
		// Above tolerance.
		{[]float64{1 + 1e-8, -2, 1e-20}, 1e-10, true},
		// Near-zero elements compare on the absolute floor (scale 1).
		{[]float64{1, -2, 1e-12}, 1e-10, false},
		{[]float64{1, -2, 1e-9}, 1e-10, true},
		// Relative scaling for large elements.
		{[]float64{1, -2 - 1e-11, 1e-20}, 1e-10, false},
		{[]float64{1, -2 - 1e-9, 1e-20}, 1e-10, true},
	}
	for i, c := range cases {
		if got := diverged(c.got, golden, c.tol); got != c.want {
			t.Fatalf("case %d: diverged = %v, want %v", i, got, c.want)
		}
	}
}

func TestDivergedNonFiniteAndLength(t *testing.T) {
	golden := []float64{1, 2}
	if !diverged([]float64{1, math.NaN()}, golden, 1e-10) {
		t.Fatal("NaN state not contaminated")
	}
	if !diverged([]float64{1, math.Inf(1)}, golden, 1e-10) {
		t.Fatal("Inf state not contaminated")
	}
	if !diverged([]float64{1}, golden, 1e-10) {
		t.Fatal("length mismatch not contaminated")
	}
}

func TestContaminationTolAffectsProfile(t *testing.T) {
	// Bitwise contamination must count at least as many contaminated ranks
	// as threshold contamination for the same seed.
	a := lookup(t, "CG")
	golden, err := ComputeGolden(a, "S", 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	run := func(tol float64) float64 {
		sum, err := RunAgainst(Campaign{
			App: a, Class: "S", Procs: 4, Trials: 40, Seed: 12,
			ContaminationTol: tol,
		}, golden)
		if err != nil {
			t.Fatal(err)
		}
		// Mean contaminated count.
		var mean float64
		for x, c := range sum.Hist.Counts {
			mean += float64(x+1) * float64(c)
		}
		return mean / float64(sum.Hist.Total())
	}
	bitwise := run(-1)
	threshold := run(DefaultContaminationTol)
	if bitwise < threshold {
		t.Fatalf("bitwise mean contamination %.2f < threshold mean %.2f", bitwise, threshold)
	}
}
