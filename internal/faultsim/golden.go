// Package faultsim implements the paper's fault-injection methodology
// (§2): fault injection deployments made of many randomized fault
// injection tests against a golden (fault-free) execution, with the
// three-outcome classification (Success / SDC / Failure), contamination
// profiling across ranks (§3.2), and deterministic, seedable campaign
// execution over a worker pool.
package faultsim

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"resmod/internal/apps"
	"resmod/internal/fpe"
	"resmod/internal/simmpi"
	"resmod/internal/telemetry"
)

// Golden is the fault-free reference execution of one (app, class, procs)
// configuration.  Campaigns compare injected runs against it.
type Golden struct {
	App   apps.App
	Class string
	Procs int

	// Counts holds each rank's injectable-operation counts; injection
	// plans are drawn uniformly over these streams.
	Counts []fpe.Counts
	// KindCounts holds each rank's per-operation-kind breakdown, for
	// kind-restricted deployments.
	KindCounts []fpe.KindCounts
	// States holds each rank's fault-free final state for bit-exact
	// contamination detection.
	States [][]float64
	// Check holds the fault-free verification values (rank 0).
	Check []float64
	// Regions aggregates named-region operation counts over all ranks.
	Regions map[string]fpe.Counts
	// Comm reports the execution's communication volume.
	Comm simmpi.Stats
	// Elapsed is the wall time of the golden run.
	Elapsed time.Duration

	// hashOnce guards the lazy per-rank state hashes used by the
	// trial-comparison fast path; unexported so a Golden built by hand
	// (tests, JSON) still works.
	hashOnce    sync.Once
	stateHashes []uint64
}

// StateHashes returns the per-rank hashes of States, computed once per
// Golden.  Trials compare a rank's state hash first and fall back to the
// element-wise scan only on mismatch, so the common uncontaminated-rank
// case pays one cheap integer pass instead of a float comparison walk.
func (g *Golden) StateHashes() []uint64 {
	g.hashOnce.Do(func() {
		g.stateHashes = make([]uint64, len(g.States))
		for r, s := range g.States {
			g.stateHashes[r] = hashState(s)
		}
	})
	return g.stateHashes
}

// hashState hashes a state vector's exact bit pattern (FNV-1a folded
// over whole float64 words, length-seeded).  Hash equality is taken as
// bit-identity in the contamination fast path: with 64-bit state a
// masking collision needs ~2^-64 odds, far below the harness's
// statistical resolution, and the hash is a pure function of the data,
// so results stay deterministic across runs and worker schedules.
func hashState(s []float64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	h = (h ^ uint64(len(s))) * prime64
	for _, v := range s {
		h = (h ^ math.Float64bits(v)) * prime64
	}
	return h
}

// TotalCounts returns the injectable-operation counts summed over ranks.
func (g *Golden) TotalCounts() fpe.Counts {
	var t fpe.Counts
	for _, c := range g.Counts {
		t.Common += c.Common
		t.Unique += c.Unique
	}
	return t
}

// UniqueFraction returns the parallel-unique fraction of the execution —
// the prob2 weight of the paper's Eq. 1 (prob1 = 1 - prob2).
func (g *Golden) UniqueFraction() float64 { return g.TotalCounts().UniqueFraction() }

// ComputeGolden runs the fault-free execution and captures the reference
// data.  It fails if the execution errors — a golden run must be clean.
func ComputeGolden(app apps.App, class string, procs int, timeout time.Duration) (*Golden, error) {
	return ComputeGoldenCtx(context.Background(), app, class, procs, timeout)
}

// ComputeGoldenCtx is ComputeGolden under a context; cancellation aborts
// the reference run promptly.
func ComputeGoldenCtx(ctx context.Context, app apps.App, class string, procs int, timeout time.Duration) (*Golden, error) {
	if class == "" {
		class = app.DefaultClass()
	}
	tel := telemetry.From(ctx)
	ctx, span := tel.Tracer().Start(ctx, "golden",
		telemetry.String("app", app.Name()),
		telemetry.String("class", class),
		telemetry.Int("procs", procs))
	defer span.End()
	start := time.Now()
	res := apps.ExecuteCtx(ctx, app, class, procs, nil, timeout)
	if res.Err != nil {
		return nil, fmt.Errorf("faultsim: golden run of %s/%s p=%d failed: %w",
			app.Name(), class, procs, res.Err)
	}
	g := &Golden{
		App: app, Class: class, Procs: procs,
		Counts:     make([]fpe.Counts, procs),
		KindCounts: make([]fpe.KindCounts, procs),
		States:     make([][]float64, procs),
		Regions:    make(map[string]fpe.Counts),
		Comm:       res.Comm,
		Elapsed:    time.Since(start),
	}
	g.Check = append(g.Check, res.Outputs[0].Check...)
	for r := 0; r < procs; r++ {
		g.Counts[r] = res.Ctxs[r].Counts()
		g.KindCounts[r] = res.Ctxs[r].KindCounts()
		g.States[r] = res.Outputs[r].State
		for name, c := range res.Ctxs[r].RegionCounts() {
			t := g.Regions[name]
			t.Common += c.Common
			t.Unique += c.Unique
			g.Regions[name] = t
		}
	}
	if !apps.AllFinite(g.Check) {
		return nil, fmt.Errorf("faultsim: golden check of %s/%s p=%d not finite: %v",
			app.Name(), class, procs, g.Check)
	}
	tel.Sink().GoldenRun(g.Elapsed)
	tel.Logger().Debug("golden run complete",
		"app", app.Name(), "class", class, "procs", procs,
		"elapsed", g.Elapsed, "unique_frac", g.UniqueFraction())
	return g, nil
}

// bitEqual reports whether two vectors are identical bit-for-bit.
func bitEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// DefaultContaminationTol is the relative state deviation above which a
// rank counts as contaminated.  It sits at the verification checkers'
// sensitivity scale: divergence below it is indistinguishable from the
// run-to-run reduction noise of the paper's real-MPI testbed and is
// invisible to the application's checkers, so it does not constitute the
// contamination the model reasons about.
const DefaultContaminationTol = 1e-10

// diverged reports whether state b deviates from golden state a beyond the
// tolerance: relatively for O(1)-and-larger elements, absolutely near
// zero.  A negative tolerance selects bit-exact comparison.  Length
// mismatches and non-finite values always count as divergence.
func diverged(got, golden []float64, tol float64) bool {
	if tol < 0 {
		return !bitEqual(got, golden)
	}
	if len(got) != len(golden) {
		return true
	}
	for i := range got {
		g, w := got[i], golden[i]
		if math.IsNaN(g) || math.IsInf(g, 0) {
			return true
		}
		d := math.Abs(g - w)
		scale := math.Abs(w)
		if scale < 1 {
			scale = 1
		}
		if d > tol*scale {
			return true
		}
	}
	return false
}
