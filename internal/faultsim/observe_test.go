package faultsim

import (
	"context"
	"sync"
	"testing"
	"time"

	"resmod/internal/telemetry"
)

// TestShardObserverSeesMonotoneTallies: an observer installed on the
// context receives snapshots whose Done count never regresses, ends on
// the exact final tallies, and — the non-negotiable part — observing a
// shard leaves its result byte-identical to an unobserved run.
func TestShardObserverSeesMonotoneTallies(t *testing.T) {
	c, golden := shardTestCampaign(t)
	identity := c.Normalized().Identity()

	plain, err := RunShardCtx(context.Background(), c, golden, 0, c.Trials)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var seen []ShardStatus
	ctx := WithShardObserver(context.Background(), func(st ShardStatus) {
		mu.Lock()
		seen = append(seen, st)
		mu.Unlock()
	})
	observed, err := RunShardCtx(ctx, c, golden, 0, c.Trials)
	if err != nil {
		t.Fatal(err)
	}

	mo := NewMerger(c, golden)
	if err := mo.Merge(observed); err != nil {
		t.Fatal(err)
	}
	mp := NewMerger(c, golden)
	if err := mp.Merge(plain); err != nil {
		t.Fatal(err)
	}
	so, err := mo.Summary()
	if err != nil {
		t.Fatal(err)
	}
	sp, err := mp.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := recordJSON(t, so, identity), recordJSON(t, sp, identity); got != want {
		t.Fatalf("observer perturbed the shard result:\n got %s\nwant %s", got, want)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(seen) == 0 {
		t.Fatal("observer never called")
	}
	var prev uint64
	for i, st := range seen {
		if st.Start != 0 || st.End != c.Trials {
			t.Fatalf("snapshot %d range [%d,%d), want [0,%d)", i, st.Start, st.End, c.Trials)
		}
		if st.Done < prev {
			t.Fatalf("snapshot %d regressed: Done %d after %d", i, st.Done, prev)
		}
		if st.Success+st.SDC+st.Failure != st.Done {
			t.Fatalf("snapshot %d outcome sum %d != Done %d",
				i, st.Success+st.SDC+st.Failure, st.Done)
		}
		prev = st.Done
	}
	final := seen[len(seen)-1]
	if final.Done != uint64(c.Trials) {
		t.Fatalf("final snapshot Done = %d, want %d", final.Done, c.Trials)
	}
	if final.Success != observed.Checkpoint.Success || final.SDC != observed.Checkpoint.SDC ||
		final.Failure != observed.Checkpoint.Failure {
		t.Fatalf("final snapshot %+v disagrees with shard checkpoint %+v", final, observed.Checkpoint)
	}
}

// TestMergerTallies: Tallies tracks what merged, over the campaign range.
func TestMergerTallies(t *testing.T) {
	c, golden := shardTestCampaign(t)
	m := NewMerger(c, golden)
	if st := m.Tallies(); st.Done != 0 || st.Start != 0 || st.End != c.Trials {
		t.Fatalf("fresh merger tallies %+v", st)
	}
	res, err := RunShardCtx(context.Background(), c, golden, 0, 30)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Merge(res); err != nil {
		t.Fatal(err)
	}
	st := m.Tallies()
	if st.Done != 30 {
		t.Fatalf("after one 30-trial shard, Done = %d", st.Done)
	}
	if st.Success != res.Checkpoint.Success || st.SDC != res.Checkpoint.SDC || st.Failure != res.Checkpoint.Failure {
		t.Fatalf("tallies %+v disagree with shard checkpoint %+v", st, res.Checkpoint)
	}
}

// TestBuildProgressEvent pins the event assembly: tallies map through,
// rate and ETA derive from ran/elapsed, CIs appear once outcomes exist.
func TestBuildProgressEvent(t *testing.T) {
	st := ShardStatus{End: 100, Done: 40, Success: 30, SDC: 6, Failure: 4, Retried: 2}
	ev := BuildProgressEvent("cid:test", telemetry.StateRunning, 100, st, 2*time.Second, 40)
	if ev.Kind != telemetry.KindCampaign || ev.Key != "cid:test" || ev.State != telemetry.StateRunning {
		t.Fatalf("event header %+v", ev)
	}
	if ev.Done != 40 || ev.Total != 100 || ev.Success != 30 || ev.SDC != 6 || ev.Failure != 4 || ev.Retried != 2 {
		t.Fatalf("event tallies %+v", ev)
	}
	if ev.TrialsPerSec != 20 {
		t.Fatalf("rate = %g, want 20", ev.TrialsPerSec)
	}
	if ev.ETASeconds != 3 {
		t.Fatalf("eta = %g, want 3 (60 trials at 20/s)", ev.ETASeconds)
	}
	if ev.SuccessCI == nil || ev.SDCCI == nil || ev.FailureCI == nil {
		t.Fatal("missing confidence intervals with outcomes present")
	}
	// No outcomes yet: no rate without elapsed trials, no CIs.
	empty := BuildProgressEvent("cid:test", telemetry.StateRunning, 100, ShardStatus{End: 100}, time.Second, 0)
	if empty.TrialsPerSec != 0 || empty.ETASeconds != 0 || empty.SuccessCI != nil {
		t.Fatalf("empty event grew derived fields: %+v", empty)
	}
}
