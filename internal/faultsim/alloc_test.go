package faultsim

import (
	"context"
	"testing"

	"resmod/internal/apps"
	"resmod/internal/fpe"
	"resmod/internal/race"
	"resmod/internal/simmpi"
	"resmod/internal/stats"
)

// allocApp is a minimal benchmark application for allocation accounting:
// a short instrumented compute loop plus one collective, with small fixed
// outputs.  Real applications allocate internally (matrix assembly,
// message buffers), which would drown the harness's own footprint; this
// app keeps the measurement on the pooled trial machinery itself.
type allocApp struct{}

func (allocApp) Name() string         { return "alloctest" }
func (allocApp) Classes() []string    { return []string{"S"} }
func (allocApp) DefaultClass() string { return "S" }
func (allocApp) MaxProcs(string) int  { return 64 }
func (allocApp) Verify(golden, check []float64) bool {
	return apps.VerifyRel(golden, check, 1e-6)
}

func (allocApp) Run(fc *fpe.Ctx, comm *simmpi.Comm, _ string) (apps.RankOutput, error) {
	x := 1.0 + float64(comm.Rank())
	for i := 0; i < 512; i++ {
		x = fc.Add(fc.Mul(x, 1.0000001), 1e-6)
	}
	sum := comm.AllreduceValue(simmpi.OpSum, x)
	return apps.RankOutput{State: []float64{x, sum}, Check: []float64{sum}}, nil
}

// TestPooledTrialAllocBounded asserts that a steady-state pooled trial —
// plan draw, arena execution on a warmed arena, contamination comparison
// — stays under a fixed allocation bound, so a regression that reintroduces
// per-trial world or context construction fails the test rather than only
// shifting a benchmark number.
func TestPooledTrialAllocBounded(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts differ under the race detector")
	}
	golden, err := ComputeGolden(allocApp{}, "S", 4, apps.DefaultTimeout)
	if err != nil {
		t.Fatal(err)
	}
	c := Campaign{App: allocApp{}, Class: "S", Procs: 4, Trials: 1 << 30, Seed: 7}
	c = c.Normalized()
	base := stats.NewRNG(c.Seed)
	ctx := context.Background()
	arena := apps.NewArena()
	// Warm the arena so the measured runs are steady state.
	if _, err := runTrial(ctx, c, golden, base.Split(0), arena); err != nil {
		t.Fatal(err)
	}
	trial := uint64(0)
	avg := testing.AllocsPerRun(200, func() {
		trial++
		if _, err := runTrial(ctx, c, golden, base.Split(trial), arena); err != nil {
			t.Fatal(err)
		}
	})
	// The bound covers the per-trial constants: the plan draw, the trial
	// RNG split, the world's per-run goroutines and comms, and the app's
	// small outputs — but not any procs²-sized channel fabric or per-rank
	// context construction, which the arena amortizes away.
	const bound = 128
	if avg > bound {
		t.Errorf("pooled trial allocates %.1f allocs/run; want <= %d", avg, bound)
	}
}
