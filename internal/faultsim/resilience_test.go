package faultsim

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"resmod/internal/apps"
	"resmod/internal/fpe"
	"resmod/internal/simmpi"
)

// ---- cancellation and budget ---------------------------------------------

func TestCancellationReturnsPartialSummary(t *testing.T) {
	// Every injected hangApp trial blocks until the per-trial Timeout, so
	// without cancellation this campaign would take ~Trials/Workers x 2s.
	c := Campaign{
		App: hangApp{}, Procs: 2, Trials: 40, Seed: 2,
		Timeout: 2 * time.Second, Workers: 2,
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	sum, err := RunCtx(ctx, c)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	// Acceptance: cancellation returns within one trial timeout.
	if elapsed > c.Timeout {
		t.Fatalf("cancellation took %v, want < %v", elapsed, c.Timeout)
	}
	if !sum.Interrupted {
		t.Fatal("summary not flagged Interrupted")
	}
	if sum.TrialsDone >= uint64(c.Trials) {
		t.Fatalf("TrialsDone = %d, want partial (< %d)", sum.TrialsDone, c.Trials)
	}
	if sum.Rates.N != sum.TrialsDone {
		t.Fatalf("Rates.N = %d, TrialsDone = %d", sum.Rates.N, sum.TrialsDone)
	}
}

func TestBudgetInterruptsCampaign(t *testing.T) {
	c := Campaign{
		App: hangApp{}, Procs: 2, Trials: 40, Seed: 2,
		Timeout: 2 * time.Second, Workers: 2,
		Budget: 200 * time.Millisecond,
	}
	start := time.Now()
	sum, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > c.Timeout+time.Second {
		t.Fatalf("budget expiry took %v to stop the campaign", elapsed)
	}
	if !sum.Interrupted {
		t.Fatal("budget-exhausted summary not flagged Interrupted")
	}
	if sum.TrialsDone >= uint64(c.Trials) {
		t.Fatalf("TrialsDone = %d, want partial", sum.TrialsDone)
	}
}

func TestCompletedCampaignNotInterrupted(t *testing.T) {
	sum, err := Run(Campaign{App: lookup(t, "PENNANT"), Procs: 2, Trials: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Interrupted {
		t.Fatal("complete campaign flagged Interrupted")
	}
	if sum.TrialsDone != 10 || sum.Abnormal != 0 {
		t.Fatalf("TrialsDone = %d, Abnormal = %d", sum.TrialsDone, sum.Abnormal)
	}
}

// ---- outcome classification vs harness containment -----------------------

// verifyPanicApp's checker panics: a harness-side bug, not an application
// crash — it must be contained, retried, and reported as abnormal, never as
// a Failure outcome.
type verifyPanicApp struct{ verifies *atomic.Int64 }

func (verifyPanicApp) Name() string         { return "verify-panic-test" }
func (verifyPanicApp) Classes() []string    { return []string{"X"} }
func (verifyPanicApp) DefaultClass() string { return "X" }
func (verifyPanicApp) MaxProcs(string) int  { return 8 }

func (a verifyPanicApp) Verify(g, c []float64) bool {
	a.verifies.Add(1)
	panic("checker bug")
}

func (verifyPanicApp) Run(fc *fpe.Ctx, comm *simmpi.Comm, class string) (apps.RankOutput, error) {
	s := 0.0
	for i := 0; i < 100; i++ {
		s = fc.Add(s, float64(i))
	}
	return apps.RankOutput{State: []float64{s}, Check: []float64{s}}, nil
}

func TestFailureClassificationVsHarnessContainment(t *testing.T) {
	// A hang hitting a tiny per-trial Timeout is an application Failure.
	hung, err := Run(Campaign{
		App: hangApp{}, Procs: 2, Trials: 4, Seed: 2,
		Timeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if hung.Rates.Failure != 1 || hung.Abnormal != 0 {
		t.Fatalf("hang: rates = %+v abnormal = %d, want all Failure, none abnormal",
			hung.Rates, hung.Abnormal)
	}

	// An application panic inside a rank is also a Failure.
	crashed, err := Run(Campaign{App: crashApp{}, Procs: 2, Trials: 6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if crashed.Rates.Failure != 1 || crashed.Abnormal != 0 {
		t.Fatalf("crash: rates = %+v abnormal = %d, want all Failure, none abnormal",
			crashed.Rates, crashed.Abnormal)
	}

	// A panic escaping the harness (the checker) is contained, retried,
	// and surfaced as abnormal — it contributes to no outcome tally.
	var verifies atomic.Int64
	sum, err := Run(Campaign{
		App: verifyPanicApp{verifies: &verifies}, Procs: 1, Trials: 3, Seed: 2,
		MaxAbnormal: 3, AbnormalRetries: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Abnormal != 3 {
		t.Fatalf("Abnormal = %d, want 3", sum.Abnormal)
	}
	if sum.Rates.N != 0 || sum.TrialsDone != 0 {
		t.Fatalf("abnormal trials leaked into tallies: N=%d done=%d", sum.Rates.N, sum.TrialsDone)
	}
	if sum.Interrupted {
		t.Fatal("abnormal-tolerating campaign flagged Interrupted")
	}
	// 3 trials x (1 attempt + 1 retry) = 6 checker invocations.
	if got := verifies.Load(); got != 6 {
		t.Fatalf("checker invoked %d times, want 6 (retry per abnormal trial)", got)
	}
}

func TestHarnessPanicFailsCampaignWithoutBudget(t *testing.T) {
	var verifies atomic.Int64
	_, err := Run(Campaign{
		App: verifyPanicApp{verifies: &verifies}, Procs: 1, Trials: 3, Seed: 2,
		AbnormalRetries: -1, // MaxAbnormal defaults to 0
	})
	if err == nil {
		t.Fatal("harness panic with zero abnormal budget did not fail the campaign")
	}
	if !strings.Contains(err.Error(), "harness panic") {
		t.Fatalf("error does not identify the harness panic: %v", err)
	}
}

// ---- early-abort behaviour ------------------------------------------------

// abnormalApp reports a setup error on every injected trial: the trial is
// abnormal (a *simmpi.RankError, not a crash/hang outcome).
type abnormalApp struct{ runs *atomic.Int64 }

func (abnormalApp) Name() string               { return "abnormal-test" }
func (abnormalApp) Classes() []string          { return []string{"X"} }
func (abnormalApp) DefaultClass() string       { return "X" }
func (abnormalApp) MaxProcs(string) int        { return 8 }
func (abnormalApp) Verify(g, c []float64) bool { return apps.VerifyRel(g, c, 1e-12) }

func (a abnormalApp) Run(fc *fpe.Ctx, comm *simmpi.Comm, class string) (apps.RankOutput, error) {
	if a.runs != nil {
		a.runs.Add(1)
	}
	s := 0.0
	for i := 0; i < 100; i++ {
		s = fc.Add(s, float64(i))
	}
	if fc.Fired() > 0 {
		return apps.RankOutput{}, errors.New("application setup error")
	}
	return apps.RankOutput{State: []float64{s}, Check: []float64{s}}, nil
}

func TestAbnormalErrorCitesLowestTrialIndex(t *testing.T) {
	// With a single worker the trial order is exactly 0, 1, 2, ... — the
	// campaign error must cite trial 0, not an arbitrary later trial.
	_, err := Run(Campaign{
		App: abnormalApp{}, Procs: 1, Trials: 10, Seed: 5,
		Workers: 1, AbnormalRetries: -1,
	})
	if err == nil {
		t.Fatal("all-abnormal campaign succeeded")
	}
	if !strings.Contains(err.Error(), "trial 0 ") {
		t.Fatalf("error does not cite trial 0: %v", err)
	}
}

func TestAbnormalOverflowStopsOtherWorkersPromptly(t *testing.T) {
	// Before the resilience layer, one worker's error was only observed
	// after every other worker had run ALL its remaining trials.  Now the
	// overflow cancels the shared context: only in-flight trials finish.
	var runs atomic.Int64
	_, err := Run(Campaign{
		App: abnormalApp{runs: &runs}, Procs: 1, Trials: 200, Seed: 5,
		Workers: 4, AbnormalRetries: -1,
	})
	if err == nil {
		t.Fatal("all-abnormal campaign succeeded")
	}
	// Each of the 4 workers can finish at most a couple of in-flight
	// trials before observing the abort; 200 would mean no early abort.
	if got := runs.Load(); got > 50 {
		t.Fatalf("%d trials ran after the first abnormal error; early abort not propagated", got)
	}
}

func TestAbnormalToleratedUpToBudget(t *testing.T) {
	sum, err := Run(Campaign{
		App: abnormalApp{}, Procs: 1, Trials: 5, Seed: 5,
		MaxAbnormal: 5, AbnormalRetries: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Abnormal != 5 || sum.TrialsDone != 0 {
		t.Fatalf("Abnormal = %d TrialsDone = %d, want 5 and 0", sum.Abnormal, sum.TrialsDone)
	}
}
