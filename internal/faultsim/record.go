package faultsim

import (
	"fmt"
	"time"

	"resmod/internal/stats"
)

// SummaryRecordVersion is the schema version of SummaryRecord, the stable
// JSON form of a campaign Summary used by the prediction service's result
// store.  Bump it whenever fields change meaning; Restore rejects records
// of any other version, which turns stale store entries into cache misses
// instead of silently wrong results.
const SummaryRecordVersion = 1

// SummaryRecord is the durable, versioned serialization of a Summary.
// It carries the raw tallies rather than the derived Rates (which Restore
// recomputes) and deliberately omits the Golden pointer: golden runs are
// cheap to recompute and are cached separately by exper.Session, while a
// record must stay small and self-contained on disk.
type SummaryRecord struct {
	// Version is the schema version (SummaryRecordVersion).
	Version int
	// Identity is the owning campaign's Campaign.Identity().
	Identity string
	// Success, SDC and Failure are the outcome tallies.
	Success uint64
	SDC     uint64
	Failure uint64
	// Hist is the contamination histogram counts (bin x-1 = x ranks).
	Hist []uint64
	// ByContamination holds the outcome counters conditioned on
	// contamination count.
	ByContamination map[int]stats.Counter
	// Spread is the SpreadByDistance tally.
	Spread []uint64
	// TrialsDone and Abnormal mirror the Summary fields.
	TrialsDone uint64
	Abnormal   uint64
	// AvgFired is the mean executed-injection count per completed test.
	AvgFired float64
	// ElapsedNS is the campaign wall time in nanoseconds (kept so cached
	// summaries still report the paper's "fault injection time" axis).
	ElapsedNS int64
	// CI95 holds the Wilson 95% intervals of the three outcome rates —
	// the campaign's convergence report.  The field is additive (older
	// records decode with a zero value) and derived: Restore recomputes
	// rates from the raw tallies and never reads it.
	CI95 stats.RateIntervals
}

// Record captures the Summary as a SummaryRecord keyed by identity.
// Interrupted summaries have no stable record — their tallies cover an
// unspecified trial subset — so Record returns nil for them.
func (s *Summary) Record(identity string) *SummaryRecord {
	if s == nil || s.Interrupted {
		return nil
	}
	rec := &SummaryRecord{
		Version:         SummaryRecordVersion,
		Identity:        identity,
		Success:         s.Counts.Success,
		SDC:             s.Counts.SDC,
		Failure:         s.Counts.Failure,
		ByContamination: make(map[int]stats.Counter, len(s.ByContamination)),
		Spread:          append([]uint64(nil), s.SpreadByDistance...),
		TrialsDone:      s.TrialsDone,
		Abnormal:        s.Abnormal,
		AvgFired:        s.AvgFired,
		ElapsedNS:       int64(s.Elapsed),
		CI95:            s.Rates.Intervals95(),
	}
	if s.Hist != nil {
		rec.Hist = append([]uint64(nil), s.Hist.Counts...)
	}
	for x, bc := range s.ByContamination {
		if bc != nil {
			rec.ByContamination[x] = *bc
		}
	}
	return rec
}

// Restore rebuilds the Summary a record was captured from (with a nil
// Golden).  It validates the schema version and the internal consistency
// of the tallies so a corrupt or stale store entry surfaces as an error —
// callers treat that as a cache miss — never as a subtly wrong Summary.
func (r *SummaryRecord) Restore() (*Summary, error) {
	if r.Version != SummaryRecordVersion {
		return nil, fmt.Errorf("faultsim: summary record version %d, want %d",
			r.Version, SummaryRecordVersion)
	}
	counts := stats.Counter{Success: r.Success, SDC: r.SDC, Failure: r.Failure}
	if counts.Total() != r.TrialsDone {
		return nil, fmt.Errorf("faultsim: summary record tallies %d do not cover %d trials",
			counts.Total(), r.TrialsDone)
	}
	var histed uint64
	for _, n := range r.Hist {
		histed += n
	}
	if histed != r.Success+r.SDC {
		return nil, fmt.Errorf("faultsim: summary record histogram covers %d tests, want %d",
			histed, r.Success+r.SDC)
	}
	sum := &Summary{
		Rates:            counts.Rates(),
		Counts:           counts,
		Hist:             &stats.Hist{Counts: append([]uint64(nil), r.Hist...)},
		ByContamination:  make(map[int]*stats.Counter, len(r.ByContamination)),
		SpreadByDistance: append([]uint64(nil), r.Spread...),
		Elapsed:          time.Duration(r.ElapsedNS),
		AvgFired:         r.AvgFired,
		TrialsDone:       r.TrialsDone,
		Abnormal:         r.Abnormal,
	}
	for x, bc := range r.ByContamination {
		cp := bc
		sum.ByContamination[x] = &cp
	}
	return sum, nil
}
