package faultsim

import (
	"math"
	"testing"
	"time"

	"resmod/internal/apps"
	"resmod/internal/fpe"
	"resmod/internal/simmpi"
	"resmod/internal/stats"

	_ "resmod/internal/apps/cg"
	_ "resmod/internal/apps/lu"
	_ "resmod/internal/apps/pennant"
)

func lookup(t *testing.T, name string) apps.App {
	t.Helper()
	a, err := apps.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestComputeGolden(t *testing.T) {
	g, err := ComputeGolden(lookup(t, "CG"), "S", 4, apps.DefaultTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Counts) != 4 || len(g.States) != 4 {
		t.Fatalf("golden shape wrong: %d counts, %d states", len(g.Counts), len(g.States))
	}
	if g.TotalCounts().Total() == 0 {
		t.Fatal("golden has no ops")
	}
	if f := g.UniqueFraction(); f <= 0 || f > 0.2 {
		t.Fatalf("CG unique fraction = %g", f)
	}
	if _, ok := g.Regions["gather-guard"]; !ok {
		t.Fatalf("golden regions missing gather-guard: %v", g.Regions)
	}
}

func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) *Summary {
		s, err := Run(Campaign{
			App: lookup(t, "PENNANT"), Procs: 2, Trials: 24, Seed: 7,
			Workers: workers, Timeout: 20 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := run(1), run(4)
	if a.Rates != b.Rates {
		t.Fatalf("rates differ across worker counts: %+v vs %+v", a.Rates, b.Rates)
	}
	for i := range a.Hist.Counts {
		if a.Hist.Counts[i] != b.Hist.Counts[i] {
			t.Fatalf("histograms differ at bin %d", i)
		}
	}
}

func TestCampaignSeedSensitivity(t *testing.T) {
	run := func(seed uint64) stats64 {
		s, err := Run(Campaign{
			App: lookup(t, "PENNANT"), Procs: 1, Trials: 30, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats64{s.Rates.Success, s.Rates.SDC}
	}
	// Different seeds should (almost surely) give different outcome splits
	// at this trial count; identical seeds must agree exactly.
	if run(1) != run(1) {
		t.Fatal("same seed not reproducible")
	}
}

type stats64 struct{ a, b float64 }

func TestCampaignRatesSumToOne(t *testing.T) {
	s, err := Run(Campaign{App: lookup(t, "PENNANT"), Procs: 2, Trials: 40, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Rates.Success+s.Rates.SDC+s.Rates.Failure-1) > 1e-12 {
		t.Fatalf("rates = %+v", s.Rates)
	}
	if s.Rates.N != 40 {
		t.Fatalf("N = %d", s.Rates.N)
	}
}

func TestConditionalRatesConsistentWithHist(t *testing.T) {
	s, err := Run(Campaign{App: lookup(t, "PENNANT"), Procs: 4, Trials: 40, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var condTotal uint64
	for _, c := range s.ByContamination {
		condTotal += c.Total()
	}
	if condTotal != s.Hist.Total() {
		t.Fatalf("conditional totals %d != hist total %d", condTotal, s.Hist.Total())
	}
}

func TestSerialMultiErrorCampaign(t *testing.T) {
	s, err := Run(Campaign{
		App: lookup(t, "PENNANT"), Procs: 1, Trials: 20, Errors: 4,
		Region: CommonOnly, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	// With 4 catastrophic-or-not errors per test, fired injections should
	// average close to 4 (control-flow truncation can drop a few).
	if s.AvgFired < 2 || s.AvgFired > 4 {
		t.Fatalf("AvgFired = %g, want ~4", s.AvgFired)
	}
}

func TestUniqueOnlyRequiresUniqueOps(t *testing.T) {
	// PENNANT has no unique computation; a UniqueOnly campaign must fail.
	_, err := Run(Campaign{
		App: lookup(t, "PENNANT"), Procs: 2, Trials: 4, Region: UniqueOnly, Seed: 1,
	})
	if err == nil {
		t.Fatal("UniqueOnly campaign on an app without unique computation succeeded")
	}
	// CG has unique computation in parallel mode; it must work.
	s, err := Run(Campaign{
		App: lookup(t, "CG"), Procs: 2, Trials: 6, Region: UniqueOnly, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Rates.N != 6 {
		t.Fatalf("N = %d", s.Rates.N)
	}
}

func TestCampaignValidation(t *testing.T) {
	if _, err := Run(Campaign{}); err == nil {
		t.Fatal("nil app accepted")
	}
	if _, err := Run(Campaign{App: lookup(t, "CG"), Procs: 0, Trials: 1}); err == nil {
		t.Fatal("Procs=0 accepted")
	}
	if _, err := Run(Campaign{App: lookup(t, "CG"), Procs: 1, Trials: 0}); err == nil {
		t.Fatal("Trials=0 accepted")
	}
}

// ---- harness failure-injection: crashing and hanging applications --------

// crashApp panics mid-run when an injection plan is present.
type crashApp struct{}

func (crashApp) Name() string               { return "crash-test" }
func (crashApp) Classes() []string          { return []string{"X"} }
func (crashApp) DefaultClass() string       { return "X" }
func (crashApp) MaxProcs(string) int        { return 8 }
func (crashApp) Verify(g, c []float64) bool { return apps.VerifyRel(g, c, 1e-12) }

func (crashApp) Run(fc *fpe.Ctx, comm *simmpi.Comm, class string) (apps.RankOutput, error) {
	s := 0.0
	for i := 0; i < 100; i++ {
		s = fc.Add(s, float64(i))
	}
	if fc.Fired() > 0 {
		panic("corrupted state")
	}
	return apps.RankOutput{State: []float64{s}, Check: []float64{s}}, nil
}

func TestCrashClassifiedAsFailure(t *testing.T) {
	s, err := Run(Campaign{App: crashApp{}, Procs: 2, Trials: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.Rates.Failure != 1 {
		t.Fatalf("crash rates = %+v, want all failures", s.Rates)
	}
}

// hangApp blocks forever when an injection fires.
type hangApp struct{}

func (hangApp) Name() string               { return "hang-test" }
func (hangApp) Classes() []string          { return []string{"X"} }
func (hangApp) DefaultClass() string       { return "X" }
func (hangApp) MaxProcs(string) int        { return 8 }
func (hangApp) Verify(g, c []float64) bool { return apps.VerifyRel(g, c, 1e-12) }

func (hangApp) Run(fc *fpe.Ctx, comm *simmpi.Comm, class string) (apps.RankOutput, error) {
	s := 0.0
	for i := 0; i < 100; i++ {
		s = fc.Add(s, float64(i))
	}
	if fc.Fired() > 0 {
		// Wait for a message that never comes: a hang.
		comm.Recv((comm.Rank()+1)%comm.Size(), 999)
	}
	return apps.RankOutput{State: []float64{s}, Check: []float64{s}}, nil
}

func TestHangClassifiedAsFailure(t *testing.T) {
	s, err := Run(Campaign{
		App: hangApp{}, Procs: 2, Trials: 4, Seed: 2,
		Timeout: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Rates.Failure != 1 {
		t.Fatalf("hang rates = %+v, want all failures", s.Rates)
	}
}

// uniqueHeavyApp spends ~90% of its dynamic operations in a
// parallel-unique region — the regression fixture for the drawFor
// AnyRegion multi-error bug, where k>1 plans silently fell back to the
// common stream and could never strike the unique computation.
type uniqueHeavyApp struct{}

func (uniqueHeavyApp) Name() string               { return "unique-heavy-test" }
func (uniqueHeavyApp) Classes() []string          { return []string{"X"} }
func (uniqueHeavyApp) DefaultClass() string       { return "X" }
func (uniqueHeavyApp) MaxProcs(string) int        { return 8 }
func (uniqueHeavyApp) Verify(g, c []float64) bool { return apps.VerifyRel(g, c, 1e-12) }

func (uniqueHeavyApp) Run(fc *fpe.Ctx, comm *simmpi.Comm, class string) (apps.RankOutput, error) {
	s := 0.0
	for i := 0; i < 100; i++ {
		s = fc.Add(s, float64(i))
	}
	if comm.Size() > 1 {
		end := fc.Begin("unique-bulk", fpe.Unique)
		for i := 0; i < 900; i++ {
			s = fc.Add(s, 1.0/float64(i+1))
		}
		end()
	}
	return apps.RankOutput{State: []float64{s}, Check: []float64{s}}, nil
}

func TestAnyRegionMultiErrorCoversUniqueStream(t *testing.T) {
	// Regression: drawFor used to route AnyRegion plans with Errors > 1
	// through the CommonOnly drawer, so multi-error parallel deployments
	// on an app dominated by parallel-unique computation never injected
	// there.  The fixed drawer must hit the unique stream in roughly its
	// dynamic-op weight (~0.9 here).
	g, err := ComputeGolden(uniqueHeavyApp{}, "X", 2, apps.DefaultTimeout)
	if err != nil {
		t.Fatal(err)
	}
	c := Campaign{App: uniqueHeavyApp{}, Procs: 2, Trials: 1, Errors: 3, Seed: 6}
	c = c.Normalized()
	rng := stats.NewRNG(99)
	uniqueHits, draws := 0, 0
	for i := 0; i < 500; i++ {
		plan, err := drawFor(c, g, rng, i%2, c.Errors)
		if err != nil {
			t.Fatal(err)
		}
		if len(plan) != 3 {
			t.Fatalf("plan length %d, want 3", len(plan))
		}
		for _, inj := range plan {
			if inj.Class == fpe.Unique {
				uniqueHits++
			}
			draws++
		}
	}
	frac := float64(uniqueHits) / float64(draws)
	if frac < 0.8 {
		t.Fatalf("unique fraction %g, want ~0.9 (0 means the CommonOnly fallback is back)", frac)
	}

	// End-to-end: the same campaign shape must run, fire multiple errors
	// per trial, and classify every trial.
	sum, err := Run(Campaign{
		App: uniqueHeavyApp{}, Procs: 2, Trials: 30, Errors: 3, Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Rates.N != 30 {
		t.Fatalf("N = %d, want 30", sum.Rates.N)
	}
	if sum.AvgFired < 2 {
		t.Fatalf("AvgFired = %g, want ~3", sum.AvgFired)
	}
}

func TestContaminationSpreadsInCG(t *testing.T) {
	// In an 8-rank CG campaign a visible fraction of trials should
	// contaminate all 8 ranks (the allreduce channel) and another
	// fraction only 1 (masked locally) — the paper's Figure 1 shape.
	s, err := Run(Campaign{App: lookup(t, "CG"), Procs: 8, Trials: 30, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	probs := s.Hist.Probabilities()
	if probs[0]+probs[7] < 0.6 {
		t.Fatalf("CG propagation not bimodal: %v", probs)
	}
}

func TestSpreadByDistanceLUNeighbourly(t *testing.T) {
	// LU's pipeline spreads to ring neighbours: distance-1 contamination
	// should clearly exceed the far distances (excluding distance 0, the
	// injected rank itself).
	s, err := Run(Campaign{App: lookup(t, "LU"), Procs: 8, Trials: 40, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	sp := s.SpreadByDistance
	if len(sp) != 5 { // distances 0..4 on a ring of 8
		t.Fatalf("spread length %d", len(sp))
	}
	if sp[0] == 0 {
		t.Fatal("injected rank never contaminated")
	}
	var total uint64
	for _, c := range sp {
		total += c
	}
	if total == 0 {
		t.Fatal("no contamination recorded at all")
	}
}

func TestRingDistance(t *testing.T) {
	cases := []struct{ a, b, p, want int }{
		{0, 0, 8, 0}, {0, 1, 8, 1}, {0, 7, 8, 1}, {0, 4, 8, 4}, {2, 6, 8, 4}, {1, 6, 8, 3},
	}
	for _, c := range cases {
		if got := ringDistance(c.a, c.b, c.p); got != c.want {
			t.Fatalf("ringDistance(%d,%d,%d) = %d, want %d", c.a, c.b, c.p, got, c.want)
		}
	}
}

func TestSpreadErrorsAcrossRanks(t *testing.T) {
	// With SpreadErrors, 3 errors land in 3 distinct ranks: the average
	// fired count stays 3 and the minimum contamination is usually >= 3.
	s, err := Run(Campaign{
		App: lookup(t, "PENNANT"), Procs: 4, Trials: 20, Errors: 3,
		SpreadErrors: true, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.AvgFired < 2.5 || s.AvgFired > 3 {
		t.Fatalf("AvgFired = %g, want ~3", s.AvgFired)
	}
}

func TestSpreadErrorsTooMany(t *testing.T) {
	_, err := Run(Campaign{
		App: lookup(t, "PENNANT"), Procs: 2, Trials: 2, Errors: 3,
		SpreadErrors: true, Seed: 1,
	})
	if err == nil {
		t.Fatal("more errors than ranks accepted")
	}
}
