package faultsim

import (
	"context"
	"encoding/json"
	"testing"

	"resmod/internal/apps"
	_ "resmod/internal/apps/cg"
	_ "resmod/internal/apps/pennant"
)

// shardTestCampaign is a small campaign whose full run is cheap enough
// for -race yet large enough that shard cuts land mid-word in the bitmap.
func shardTestCampaign(t *testing.T) (Campaign, *Golden) {
	t.Helper()
	app, err := apps.Lookup("PENNANT")
	if err != nil {
		t.Fatal(err)
	}
	c := Campaign{App: app, Procs: 4, Trials: 90, Errors: 1,
		Region: AnyRegion, Seed: 20180707, Workers: 3}
	golden, err := ComputeGolden(app, app.DefaultClass(), c.Procs, 0)
	if err != nil {
		t.Fatal(err)
	}
	return c, golden
}

// recordJSON renders the summary's stable record with wall time zeroed.
func recordJSON(t *testing.T, sum *Summary, identity string) string {
	t.Helper()
	rec := sum.Record(identity)
	if rec == nil {
		t.Fatal("nil SummaryRecord (interrupted summary?)")
	}
	rec.ElapsedNS = 0
	b, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestShardMergeBitIdentical is the distributed determinism core: the
// same campaign run whole, as one shard, and as many unevenly-cut shards
// merged in a scrambled order must produce byte-identical SummaryRecords.
func TestShardMergeBitIdentical(t *testing.T) {
	c, golden := shardTestCampaign(t)
	identity := c.Normalized().Identity()

	local, err := RunAgainst(c, golden)
	if err != nil {
		t.Fatal(err)
	}
	want := recordJSON(t, local, identity)

	covers := [][][2]int{
		{{0, 90}},                             // one shard = one worker
		{{0, 30}, {30, 60}, {60, 90}},         // three even workers
		{{64, 90}, {0, 7}, {31, 64}, {7, 31}}, // uneven cuts, scrambled order
	}
	for _, cover := range covers {
		m := NewMerger(c, golden)
		for _, r := range cover {
			res, err := RunShardCtx(context.Background(), c, golden, r[0], r[1])
			if err != nil {
				t.Fatalf("shard %v: %v", r, err)
			}
			if err := m.Merge(res); err != nil {
				t.Fatalf("merge %v: %v", r, err)
			}
		}
		if !m.Complete() {
			t.Fatalf("cover %v: merger not complete after %d trials", cover, m.Done())
		}
		sum, err := m.Summary()
		if err != nil {
			t.Fatal(err)
		}
		if got := recordJSON(t, sum, identity); got != want {
			t.Errorf("cover %v diverged from local run:\n got %s\nwant %s", cover, got, want)
		}
	}
}

// TestShardResultJSONRoundTrip guards the wire contract: a ShardResult
// must survive JSON (the dist tier's transport) and still merge.
func TestShardResultJSONRoundTrip(t *testing.T) {
	c, golden := shardTestCampaign(t)
	res, err := RunShardCtx(context.Background(), c, golden, 10, 40)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back ShardResult
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	m := NewMerger(c, golden)
	if err := m.Merge(&back); err != nil {
		t.Fatal(err)
	}
	if got := m.Done(); got != 30 {
		t.Fatalf("merged %d trials, want 30", got)
	}
	if missing := m.Missing(0, c.Trials); len(missing) != 2 ||
		missing[0] != [2]int{0, 10} || missing[1] != [2]int{40, 90} {
		t.Fatalf("missing ranges %v, want [[0,10],[40,90]]", missing)
	}
}

// TestMergerRejectsOverlap: merging the same shard twice must fail loudly
// instead of double counting.
func TestMergerRejectsOverlap(t *testing.T) {
	c, golden := shardTestCampaign(t)
	res, err := RunShardCtx(context.Background(), c, golden, 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMerger(c, golden)
	if err := m.Merge(res); err != nil {
		t.Fatal(err)
	}
	if err := m.Merge(res); err == nil {
		t.Fatal("double merge of the same shard was accepted")
	}
	if got := m.Done(); got != 20 {
		t.Fatalf("overlap rejection left %d trials merged, want 20", got)
	}
}

// TestMergerRejectsForeignShard: a shard of a different campaign (other
// seed) must be rejected by identity.
func TestMergerRejectsForeignShard(t *testing.T) {
	c, golden := shardTestCampaign(t)
	other := c
	other.Seed++
	res, err := RunShardCtx(context.Background(), other, golden, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMerger(c, golden)
	if err := m.Merge(res); err == nil {
		t.Fatal("foreign-campaign shard was accepted")
	}
}

// TestShardInterruptedNotMergeable: a canceled shard returns an error,
// never a partial result the dispatcher could mistakenly merge.
func TestShardInterruptedNotMergeable(t *testing.T) {
	c, golden := shardTestCampaign(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if res, err := RunShardCtx(ctx, c, golden, 0, 30); err == nil {
		t.Fatalf("canceled shard returned result %+v, want error", res)
	}
}
