package faultsim

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"resmod/internal/fpe"
	"resmod/internal/stats"
)

// TestIdentityFormat pins the v2 identity format.  The identity keys
// checkpoints and the prediction service's durable result store, so any
// change here is a breaking schema change: bump IdentityVersion and update
// this test deliberately, never incidentally.
func TestIdentityFormat(t *testing.T) {
	app := lookup(t, "CG")
	c := Campaign{App: app, Procs: 8, Trials: 400, Errors: 2,
		Region: CommonOnly, Seed: 2018, Pattern: fpe.SingleBit}

	got := c.Normalized().Identity()
	want := "cid:v2/CG/S/p8/t400/e2/r1/s2018/pat0/tol1e-10"
	if got != want {
		t.Fatalf("Identity() = %q, want %q", got, want)
	}

	// The extension knobs append in a fixed order.
	bit := uint(51)
	c.SpreadErrors = true
	c.KindMask = 3
	c.FixedBit = &bit
	c.Window = &[2]float64{0.25, 0.75}
	c.ContaminationTol = 1e-6
	got = c.Normalized().Identity()
	want = "cid:v2/CG/S/p8/t400/e2/r1/s2018/pat0/spread/tol1e-06/k3/b51/w0.25-0.75"
	if got != want {
		t.Fatalf("Identity() with extensions = %q, want %q", got, want)
	}
}

// TestIdentityNormalization checks that the defaulted and the explicit
// spellings of the same deployment share one identity — the property that
// lets session callers, checkpoints and the result store agree on keys.
func TestIdentityNormalization(t *testing.T) {
	app := lookup(t, "CG")
	implicit := Campaign{App: app, Procs: 4, Trials: 10, Seed: 1}
	explicit := Campaign{App: app, Class: app.DefaultClass(), Procs: 4,
		Trials: 10, Errors: 1, Seed: 1, ContaminationTol: DefaultContaminationTol}
	if got, want := implicit.Normalized().Identity(), explicit.Identity(); got != want {
		t.Fatalf("normalized identity %q != explicit identity %q", got, want)
	}
	// Workers/Timeout/Budget and resilience knobs never enter the key.
	tuned := explicit
	tuned.Workers = 7
	tuned.Timeout = time.Minute
	tuned.Budget = time.Hour
	tuned.MaxAbnormal = 3
	if tuned.Identity() != explicit.Identity() {
		t.Fatal("non-outcome fields leaked into the identity")
	}
	if !strings.HasPrefix(explicit.Identity(), "cid:v2/") {
		t.Fatalf("identity %q lacks the version prefix", explicit.Identity())
	}
}

// TestSummaryRecordRoundTrip runs a tiny campaign and checks that its
// Summary survives Record -> JSON -> Restore with every model-facing field
// intact.
func TestSummaryRecordRoundTrip(t *testing.T) {
	c := Campaign{App: lookup(t, "PENNANT"), Procs: 2, Trials: 24, Seed: 7}
	sum, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	id := c.Normalized().Identity()
	rec := sum.Record(id)
	if rec == nil {
		t.Fatal("Record returned nil for a complete summary")
	}
	data, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	back := &SummaryRecord{}
	if err := json.Unmarshal(data, back); err != nil {
		t.Fatal(err)
	}
	got, err := back.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if got.Rates != sum.Rates || got.TrialsDone != sum.TrialsDone ||
		got.Abnormal != sum.Abnormal || got.AvgFired != sum.AvgFired ||
		got.Elapsed != sum.Elapsed {
		t.Fatalf("restored scalars differ:\n got %+v\nwant %+v", got, sum)
	}
	if !reflect.DeepEqual(got.Hist.Counts, sum.Hist.Counts) ||
		!reflect.DeepEqual(got.SpreadByDistance, sum.SpreadByDistance) {
		t.Fatal("restored histograms differ")
	}
	if len(got.ByContamination) != len(sum.ByContamination) {
		t.Fatalf("restored %d conditional counters, want %d",
			len(got.ByContamination), len(sum.ByContamination))
	}
	for x, want := range sum.ByContamination {
		if bc := got.ByContamination[x]; bc == nil || *bc != *want {
			t.Fatalf("conditional counter %d differs", x)
		}
	}
	if got.Golden != nil {
		t.Fatal("restored summary should not carry a golden run")
	}
}

// TestSummaryRecordRejectsCorruption checks that Restore turns damaged
// records into errors rather than wrong summaries.
func TestSummaryRecordRejectsCorruption(t *testing.T) {
	base := SummaryRecord{
		Version: SummaryRecordVersion, Identity: "cid:v2/x",
		Success: 3, SDC: 1, Failure: 1, TrialsDone: 5,
		Hist: []uint64{4}, ByContamination: map[int]stats.Counter{},
	}
	if _, err := base.Restore(); err != nil {
		t.Fatalf("consistent record rejected: %v", err)
	}
	wrongVersion := base
	wrongVersion.Version = SummaryRecordVersion + 1
	if _, err := wrongVersion.Restore(); err == nil {
		t.Fatal("future-version record accepted")
	}
	wrongCounts := base
	wrongCounts.TrialsDone = 7
	if _, err := wrongCounts.Restore(); err == nil {
		t.Fatal("inconsistent outcome tallies accepted")
	}
	wrongHist := base
	wrongHist.Hist = []uint64{9}
	if _, err := wrongHist.Restore(); err == nil {
		t.Fatal("inconsistent histogram accepted")
	}
}
