package faultsim

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/bits"
	"os"
	"path/filepath"

	"resmod/internal/stats"
)

// CheckpointVersion is the current snapshot schema version.
const CheckpointVersion = 1

// ErrCheckpointMismatch reports that a checkpoint does not belong to the
// campaign trying to resume from it (different Identity) or is internally
// inconsistent.
var ErrCheckpointMismatch = errors.New("faultsim: checkpoint does not match campaign")

// Checkpoint is the JSON snapshot of a partially executed campaign: the
// set of completed trials plus every tally the final Summary is built
// from.  All tallies are integer counts merged commutatively, so restoring
// a snapshot and running only the remaining trials produces a Summary
// bit-identical to an uninterrupted run — each trial's RNG stream depends
// only on (Seed, trial index), never on execution order.
//
// Abnormal trials are deliberately *not* in Done: a resumed campaign
// re-attempts them, giving transient harness faults a second chance.
type Checkpoint struct {
	// Version is the schema version (CheckpointVersion).
	Version int
	// Identity is the owning campaign's Campaign.Identity().
	Identity string
	// Trials is the campaign's configured trial count.
	Trials int
	// Done is the completed-trial bitmap: trial t is done iff
	// Done[t/64]>>(t%64)&1 == 1.
	Done []uint64
	// Completed is the number of set bits in Done.
	Completed uint64
	// Success, SDC and Failure are the outcome tallies over Done trials.
	Success uint64
	SDC     uint64
	Failure uint64
	// Hist is the contamination histogram counts (bin x-1 = x ranks).
	Hist []uint64
	// ByContamination holds the outcome counters conditioned on
	// contamination count.
	ByContamination map[int]stats.Counter
	// Spread is the SpreadByDistance tally.
	Spread []uint64
	// Fired is the total fired-injection count over Done trials.
	Fired uint64
}

// snapshot captures the aggregate as a Checkpoint under the lock.
func (a *aggregate) snapshot(identity string) *Checkpoint {
	a.mu.Lock()
	defer a.mu.Unlock()
	ck := &Checkpoint{
		Version:         CheckpointVersion,
		Identity:        identity,
		Trials:          a.trials,
		Done:            append([]uint64(nil), a.done...),
		Completed:       a.completed,
		Success:         a.counter.Success,
		SDC:             a.counter.SDC,
		Failure:         a.counter.Failure,
		Hist:            append([]uint64(nil), a.hist...),
		ByContamination: make(map[int]stats.Counter, len(a.byCont)),
		Spread:          append([]uint64(nil), a.spread...),
		Fired:           a.fired,
	}
	for x, bc := range a.byCont {
		ck.ByContamination[x] = *bc
	}
	return ck
}

// restore loads a Checkpoint into the (fresh) aggregate after validating
// that it belongs to the campaign with the given identity.
func (a *aggregate) restore(ck *Checkpoint, identity string) error {
	if ck.Version != CheckpointVersion {
		return fmt.Errorf("%w: snapshot version %d, want %d",
			ErrCheckpointMismatch, ck.Version, CheckpointVersion)
	}
	if ck.Identity != identity {
		return fmt.Errorf("%w: snapshot is of %q, campaign is %q",
			ErrCheckpointMismatch, ck.Identity, identity)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if ck.Trials != a.trials || len(ck.Done) != len(a.done) ||
		len(ck.Hist) != len(a.hist) || len(ck.Spread) != len(a.spread) {
		return fmt.Errorf("%w: snapshot shape does not fit the campaign",
			ErrCheckpointMismatch)
	}
	var pop uint64
	for _, w := range ck.Done {
		pop += uint64(bits.OnesCount64(w))
	}
	if pop != ck.Completed || ck.Success+ck.SDC+ck.Failure != ck.Completed {
		return fmt.Errorf("%w: snapshot tallies are inconsistent (%d done bits, %d completed)",
			ErrCheckpointMismatch, pop, ck.Completed)
	}
	copy(a.done, ck.Done)
	a.completed = ck.Completed
	a.counter = stats.Counter{Success: ck.Success, SDC: ck.SDC, Failure: ck.Failure}
	copy(a.hist, ck.Hist)
	copy(a.spread, ck.Spread)
	a.fired = ck.Fired
	for x, bc := range ck.ByContamination {
		cp := bc
		a.byCont[x] = &cp
	}
	return nil
}

// restoreFromFile loads the checkpoint at path into the aggregate.  A
// missing file is not an error — the campaign simply starts fresh, which
// makes `-resume` safe to pass unconditionally.
func (a *aggregate) restoreFromFile(path, identity string) error {
	ck, err := LoadCheckpoint(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	return a.restore(ck, identity)
}

// SaveCheckpoint atomically writes the snapshot to path: the JSON is
// written to a temporary file in the same directory and renamed into
// place, so a crash mid-write can never corrupt an existing snapshot.
func SaveCheckpoint(path string, ck *Checkpoint) error {
	data, err := json.MarshalIndent(ck, "", " ")
	if err != nil {
		return fmt.Errorf("faultsim: marshaling checkpoint: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("faultsim: creating checkpoint temp file: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr == nil {
			werr = cerr
		}
		return fmt.Errorf("faultsim: writing checkpoint: %w", werr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("faultsim: committing checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint reads a snapshot written by SaveCheckpoint.  A missing
// file returns an error wrapping os.ErrNotExist.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("faultsim: reading checkpoint: %w", err)
	}
	ck := &Checkpoint{}
	if err := json.Unmarshal(data, ck); err != nil {
		return nil, fmt.Errorf("faultsim: parsing checkpoint %s: %w", path, err)
	}
	return ck, nil
}
