package faultsim

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"resmod/internal/apps"
)

// equalResults asserts that two summaries carry bit-identical campaign
// results: Rates, Counts, Hist, ByContamination, SpreadByDistance and the
// derived AvgFired.
func equalResults(t *testing.T, want, got *Summary, label string) {
	t.Helper()
	if want.Rates != got.Rates {
		t.Fatalf("%s: Rates differ: %+v vs %+v", label, want.Rates, got.Rates)
	}
	if want.Counts != got.Counts {
		t.Fatalf("%s: Counts differ: %+v vs %+v", label, want.Counts, got.Counts)
	}
	if !reflect.DeepEqual(want.Hist.Counts, got.Hist.Counts) {
		t.Fatalf("%s: Hist differs: %v vs %v", label, want.Hist.Counts, got.Hist.Counts)
	}
	if !reflect.DeepEqual(want.SpreadByDistance, got.SpreadByDistance) {
		t.Fatalf("%s: SpreadByDistance differs: %v vs %v",
			label, want.SpreadByDistance, got.SpreadByDistance)
	}
	if !reflect.DeepEqual(want.ByContamination, got.ByContamination) {
		t.Fatalf("%s: ByContamination differs: %v vs %v",
			label, want.ByContamination, got.ByContamination)
	}
	if want.AvgFired != got.AvgFired {
		t.Fatalf("%s: AvgFired differs: %v vs %v", label, want.AvgFired, got.AvgFired)
	}
	if want.TrialsDone != got.TrialsDone {
		t.Fatalf("%s: TrialsDone differs: %d vs %d", label, want.TrialsDone, got.TrialsDone)
	}
}

func TestCheckpointFileRoundTrip(t *testing.T) {
	agg := newAggregate(4, 100)
	agg.record(3, TrialRecord{Outcome: Success, Contaminated: 1, Fired: 1, Distances: []int{0}})
	agg.record(17, TrialRecord{Outcome: SDC, Contaminated: 4, Fired: 2, Distances: []int{0, 1, 1, 2}})
	agg.record(64, TrialRecord{Outcome: Failure, Fired: 1})
	ck := agg.snapshot("app/X/p4/t100/e1/r0/s1/pat0")

	path := filepath.Join(t.TempDir(), "ck.json")
	if err := SaveCheckpoint(path, ck); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ck, got) {
		t.Fatalf("checkpoint round trip mismatch:\nwant %+v\ngot  %+v", ck, got)
	}

	// The loaded snapshot restores into a fresh aggregate and reproduces
	// an identical snapshot.
	agg2 := newAggregate(4, 100)
	if err := agg2.restore(got, ck.Identity); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(agg2.snapshot(ck.Identity), ck) {
		t.Fatal("restore does not reproduce the snapshot")
	}
}

func TestLoadCheckpointMissingFile(t *testing.T) {
	_, err := LoadCheckpoint(filepath.Join(t.TempDir(), "absent.json"))
	if err == nil {
		t.Fatal("missing checkpoint loaded")
	}
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("error does not wrap os.ErrNotExist: %v", err)
	}
}

// TestResumeDeterminism is the acceptance property: a campaign interrupted
// at an arbitrary trial boundary and resumed from its checkpoint produces
// a Summary bit-identical to the same campaign run uninterrupted — across
// several seeds.
func TestResumeDeterminism(t *testing.T) {
	app := lookup(t, "PENNANT")
	golden, err := ComputeGolden(app, "", 2, apps.DefaultTimeout)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []uint64{1, 2, 3} {
		base := Campaign{App: app, Procs: 2, Trials: 30, Seed: seed, Workers: 3}

		want, err := RunAgainst(base, golden)
		if err != nil {
			t.Fatalf("seed %d: uninterrupted run: %v", seed, err)
		}

		// Interrupt a checkpointing run once ~a third of the trials are
		// tallied; in-flight trials may still land, so the cut point is
		// arbitrary — exactly what resume must tolerate.
		path := filepath.Join(t.TempDir(), "ck.json")
		ctx, cancel := context.WithCancel(context.Background())
		interrupted := base
		interrupted.Checkpoint = path
		interrupted.hooks = &campaignHooks{trialDone: func(done uint64) {
			if done >= 10 {
				cancel()
			}
		}}
		partial, err := RunAgainstCtx(ctx, interrupted, golden)
		cancel()
		if err != nil {
			t.Fatalf("seed %d: interrupted run: %v", seed, err)
		}
		if !partial.Interrupted {
			t.Fatalf("seed %d: run not interrupted (TrialsDone=%d)", seed, partial.TrialsDone)
		}
		if partial.TrialsDone == 0 || partial.TrialsDone >= 30 {
			t.Fatalf("seed %d: TrialsDone = %d, want a strict partial", seed, partial.TrialsDone)
		}

		// Resume from the snapshot and finish the campaign.
		resumed := base
		resumed.Checkpoint = path
		resumed.Resume = true
		got, err := RunAgainst(resumed, golden)
		if err != nil {
			t.Fatalf("seed %d: resumed run: %v", seed, err)
		}
		if got.Interrupted {
			t.Fatalf("seed %d: resumed run still interrupted", seed)
		}
		equalResults(t, want, got, "resumed vs uninterrupted")

		// Resuming an already-complete campaign replays the tallies from
		// the snapshot without rerunning any trial and stays identical.
		again, err := RunAgainst(resumed, golden)
		if err != nil {
			t.Fatalf("seed %d: second resume: %v", seed, err)
		}
		equalResults(t, want, again, "re-resumed vs uninterrupted")
	}
}

func TestResumeRejectsForeignCheckpoint(t *testing.T) {
	app := lookup(t, "PENNANT")
	golden, err := ComputeGolden(app, "", 2, apps.DefaultTimeout)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ck.json")
	c := Campaign{App: app, Procs: 2, Trials: 8, Seed: 1, Checkpoint: path}
	if _, err := RunAgainst(c, golden); err != nil {
		t.Fatal(err)
	}
	// Same file, different seed: the identity no longer matches.
	c.Seed = 2
	c.Resume = true
	if _, err := RunAgainst(c, golden); err == nil {
		t.Fatal("checkpoint of a different campaign accepted")
	}
}

func TestResumeWithMissingCheckpointStartsFresh(t *testing.T) {
	app := lookup(t, "PENNANT")
	golden, err := ComputeGolden(app, "", 2, apps.DefaultTimeout)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "never-written.json")
	c := Campaign{App: app, Procs: 2, Trials: 8, Seed: 1, Checkpoint: path, Resume: true}
	sum, err := RunAgainst(c, golden)
	if err != nil {
		t.Fatal(err)
	}
	if sum.TrialsDone != 8 {
		t.Fatalf("TrialsDone = %d, want 8", sum.TrialsDone)
	}
}
