package faultsim

import (
	"context"
	"math"
	"path/filepath"
	"testing"

	"resmod/internal/apps"
	"resmod/internal/telemetry"
)

// TestCampaignFeedsSink runs a checkpointed campaign under a telemetry
// bundle and checks the sink tallies agree with the summary.
func TestCampaignFeedsSink(t *testing.T) {
	rec := telemetry.NewRecorder()
	tr := telemetry.NewTracer()
	ctx := telemetry.With(context.Background(),
		telemetry.New(nil, tr, rec))

	c := Campaign{
		App: lookup(t, "PENNANT"), Procs: 2, Trials: 20, Seed: 7, Workers: 2,
		Checkpoint: filepath.Join(t.TempDir(), "ckpt.json"),
	}
	sum, err := RunCtx(ctx, c)
	if err != nil {
		t.Fatal(err)
	}

	s := rec.Snapshot()
	if got := s.TrialsTotal(); got != sum.TrialsDone {
		t.Fatalf("sink trials %d != summary TrialsDone %d", got, sum.TrialsDone)
	}
	// Outcome split must reproduce the summary rates: counts are exact.
	if got, want := s.TrialSuccess, uint64(math.Round(sum.Rates.Success*float64(sum.Rates.N))); got != want {
		t.Fatalf("sink success %d != rates-derived %d", got, want)
	}
	if s.Campaigns != 1 {
		t.Fatalf("sink campaigns = %d, want 1", s.Campaigns)
	}
	if s.GoldenRuns != 1 {
		t.Fatalf("sink goldens = %d, want 1", s.GoldenRuns)
	}
	// The final flush of a checkpointed campaign always writes once.
	if s.CheckpointWrites == 0 {
		t.Fatal("sink recorded no checkpoint writes for a checkpointed campaign")
	}
	if s.TrialLatency.Count != sum.TrialsDone {
		t.Fatalf("trial latency count %d != TrialsDone %d", s.TrialLatency.Count, sum.TrialsDone)
	}
	if s.CampaignDuration.Count != 1 {
		t.Fatalf("campaign duration count = %d", s.CampaignDuration.Count)
	}

	// Spans: one golden, one campaign, one checkpoint at least, and a
	// trial-batch per worker that ran.
	names := map[string]int{}
	for _, v := range tr.Spans() {
		names[v.Name]++
	}
	if names["golden"] != 1 || names["campaign"] != 1 {
		t.Fatalf("span counts = %v", names)
	}
	if names["checkpoint"] == 0 || names["trial-batch"] == 0 {
		t.Fatalf("span counts = %v", names)
	}
}

// TestCampaignWithoutTelemetryUnchanged guards determinism: the same
// campaign with and without a telemetry bundle yields identical results.
func TestCampaignWithoutTelemetryUnchanged(t *testing.T) {
	c := Campaign{App: lookup(t, "PENNANT"), Procs: 2, Trials: 20, Seed: 7}
	bare, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	ctx := telemetry.With(context.Background(),
		telemetry.New(nil, telemetry.NewTracer(), telemetry.NewRecorder()))
	instrumented, err := RunCtx(ctx, c)
	if err != nil {
		t.Fatal(err)
	}
	if bare.Rates != instrumented.Rates {
		t.Fatalf("telemetry changed the result: %v vs %v", bare.Rates, instrumented.Rates)
	}
	if bare.Hist.Counts[0] != instrumented.Hist.Counts[0] {
		t.Fatalf("telemetry changed the histogram")
	}
}

// BenchmarkCampaignBare and BenchmarkCampaignInstrumented bound the
// telemetry overhead on the campaign hot path (compare ns/op; the
// acceptance budget is <3% wall time).
func BenchmarkCampaignBare(b *testing.B) {
	benchCampaign(b, context.Background())
}

func BenchmarkCampaignInstrumented(b *testing.B) {
	ctx := telemetry.With(context.Background(),
		telemetry.New(nil, telemetry.NewTracer(), telemetry.NewRecorder()))
	benchCampaign(b, ctx)
}

func benchCampaign(b *testing.B, ctx context.Context) {
	app, err := apps.Lookup("PENNANT")
	if err != nil {
		b.Fatal(err)
	}
	golden, err := ComputeGolden(app, "", 2, apps.DefaultTimeout)
	if err != nil {
		b.Fatal(err)
	}
	c := Campaign{App: app, Procs: 2, Trials: 50, Seed: 11, Workers: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunAgainstCtx(ctx, c, golden); err != nil {
			b.Fatal(err)
		}
	}
}
