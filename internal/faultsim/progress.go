package faultsim

import (
	"time"

	"resmod/internal/telemetry"
)

// DefaultProgressDivisor sets the default snapshot cadence: a campaign
// publishes roughly this many live-progress snapshots over its lifetime
// (Campaign.ProgressEvery overrides; minimum one trial between
// snapshots).
const DefaultProgressDivisor = 100

// progressEvery resolves the snapshot period in trials.
func progressEvery(c Campaign) uint64 {
	if c.ProgressEvery > 0 {
		return uint64(c.ProgressEvery)
	}
	every := c.Trials / DefaultProgressDivisor
	if every < 1 {
		every = 1
	}
	return uint64(every)
}

// campaignProgress publishes one campaign's live snapshots.  It is
// observation-only: it reads the aggregate's tallies and never touches
// RNG streams, trial scheduling, or the campaign identity, so results
// stay bit-identical whether or not anyone is listening.
type campaignProgress struct {
	prog     *telemetry.Progress
	identity string
	trials   int
	every    uint64
	start    time.Time
	// startDone is the trial count restored from a checkpoint before this
	// run began: throughput and ETA cover only trials executed *this*
	// run, so a 90%-restored campaign doesn't report a fantasy rate.
	startDone uint64
}

// newCampaignProgress builds a publisher, or nil when the bus is off —
// the hot path then pays a single nil check per recorded trial.
func newCampaignProgress(prog *telemetry.Progress, c Campaign, identity string, startDone uint64) *campaignProgress {
	if prog == nil {
		return nil
	}
	return &campaignProgress{
		prog:      prog,
		identity:  identity,
		trials:    c.Trials,
		every:     progressEvery(c),
		start:     time.Now(),
		startDone: startDone,
	}
}

// trialRecorded publishes a snapshot every `every` recorded trials.
func (p *campaignProgress) trialRecorded(done uint64, agg *aggregate) {
	if p == nil || done%p.every != 0 {
		return
	}
	p.publish(agg, telemetry.StateRunning)
}

// publish posts one snapshot in the given state.
func (p *campaignProgress) publish(agg *aggregate, state string) {
	if p == nil {
		return
	}
	st := statusOf(agg, 0, p.trials)
	var ran uint64
	if st.Done >= p.startDone {
		ran = st.Done - p.startDone
	}
	p.prog.Publish(BuildProgressEvent(p.identity, state, p.trials, st, time.Since(p.start), ran))
}

// finish publishes the terminal snapshot for a campaign that produced a
// summary (clean or interrupted).
func (p *campaignProgress) finish(agg *aggregate, interrupted bool) {
	if p == nil {
		return
	}
	state := telemetry.StateDone
	if interrupted {
		state = telemetry.StateInterrupted
	}
	p.publish(agg, state)
}

// progressCounts is a point-in-time copy of the aggregate's tallies for
// snapshot building.
type progressCounts struct {
	done     uint64
	success  uint64
	sdc      uint64
	failure  uint64
	abnormal uint64
	retried  uint64
}

// progressCounts snapshots the tallies under the aggregate lock.
func (a *aggregate) progressCounts() progressCounts {
	a.mu.Lock()
	defer a.mu.Unlock()
	return progressCounts{
		done:     a.completed,
		success:  a.counter.Success,
		sdc:      a.counter.SDC,
		failure:  a.counter.Failure,
		abnormal: uint64(len(a.abnormal)),
		retried:  a.retried,
	}
}

// noteRetried counts one abnormal-trial retry for live snapshots (the
// Sink counts the same event process-wide).
func (a *aggregate) noteRetried() {
	a.mu.Lock()
	a.retried++
	a.mu.Unlock()
}
