package faultsim

import (
	"context"
	"time"

	"resmod/internal/stats"
	"resmod/internal/telemetry"
)

// Shard observation: the hooks the distributed tier uses to watch a
// shard run without touching it.  A worker installs a ShardObserver on
// the context before RunShardCtx so it can stream live tallies back to
// the coordinator; the coordinator folds those into campaign-level
// progress events with BuildProgressEvent.  Everything here is
// observation-only — observers see copies of the aggregate's commutative
// counts and cannot perturb RNG streams, scheduling, or results.

// ShardStatus is a point-in-time tally snapshot of one shard (or, from
// Merger.Tallies, of everything merged so far).  It is JSON-serializable:
// the worker→coordinator progress report carries one verbatim.
type ShardStatus struct {
	// Start and End delimit the observed trial range [Start, End).
	Start int `json:"start"`
	End   int `json:"end"`
	// Done counts completed trials; Success+SDC+Failure == Done.
	Done     uint64 `json:"done"`
	Success  uint64 `json:"success"`
	SDC      uint64 `json:"sdc"`
	Failure  uint64 `json:"failure"`
	Abnormal uint64 `json:"abnormal"`
	Retried  uint64 `json:"retried"`
}

// ShardObserver receives periodic ShardStatus snapshots while a shard
// runs.  It is called from the trial-recording path (no more often than
// the campaign's progress cadence) and once more with the final tallies;
// implementations must not block.
type ShardObserver func(ShardStatus)

// shardObsKey carries the observer in a context.  Campaign must stay
// comparable (its identity hashing depends on it), so the hook travels on
// context rather than as a Campaign field.
type shardObsKey struct{}

// WithShardObserver returns a context that makes RunShardCtx report live
// tallies to obs.  A nil obs returns ctx unchanged.
func WithShardObserver(ctx context.Context, obs ShardObserver) context.Context {
	if obs == nil {
		return ctx
	}
	return context.WithValue(ctx, shardObsKey{}, obs)
}

// shardObserverFrom extracts the context's observer, or nil.
func shardObserverFrom(ctx context.Context) ShardObserver {
	if ctx == nil {
		return nil
	}
	obs, _ := ctx.Value(shardObsKey{}).(ShardObserver)
	return obs
}

// statusOf snapshots the aggregate tallies as a ShardStatus over
// [start, end).
func statusOf(agg *aggregate, start, end int) ShardStatus {
	pc := agg.progressCounts()
	return ShardStatus{
		Start: start, End: end,
		Done: pc.done, Success: pc.success, SDC: pc.sdc,
		Failure: pc.failure, Abnormal: pc.abnormal, Retried: pc.retried,
	}
}

// Tallies returns the tallies merged so far as a ShardStatus over the
// whole campaign range — what a dispatcher combines with in-flight shard
// reports to publish honest distributed progress.
func (m *Merger) Tallies() ShardStatus {
	return statusOf(m.agg, 0, m.trials)
}

// BuildProgressEvent assembles the campaign-kind progress event local
// runs and distributed dispatchers both publish: tallies from st, rate
// and ETA from ran trials over elapsed (ran excludes checkpoint-restored
// trials so a resumed campaign doesn't report a fantasy rate), and
// Wilson 95% intervals once any trial has an outcome.
func BuildProgressEvent(identity, state string, trials int, st ShardStatus, elapsed time.Duration, ran uint64) telemetry.ProgressEvent {
	ev := telemetry.ProgressEvent{
		Kind:     telemetry.KindCampaign,
		Key:      identity,
		State:    state,
		Done:     st.Done,
		Total:    uint64(trials),
		Success:  st.Success,
		SDC:      st.SDC,
		Failure:  st.Failure,
		Abnormal: st.Abnormal,
		Retried:  st.Retried,
	}
	ev.ElapsedSeconds = elapsed.Seconds()
	if ev.ElapsedSeconds > 0 && ran > 0 {
		ev.TrialsPerSec = float64(ran) / ev.ElapsedSeconds
		if remaining := uint64(trials) - st.Done; st.Done <= uint64(trials) {
			ev.ETASeconds = float64(remaining) / ev.TrialsPerSec
		}
	}
	if n := st.Success + st.SDC + st.Failure; n > 0 {
		counter := stats.Counter{Success: st.Success, SDC: st.SDC, Failure: st.Failure}
		iv := counter.Rates().Intervals95()
		ev.SuccessCI = &telemetry.CI{Lo: iv.Success.Lo, Hi: iv.Success.Hi}
		ev.SDCCI = &telemetry.CI{Lo: iv.SDC.Lo, Hi: iv.SDC.Hi}
		ev.FailureCI = &telemetry.CI{Lo: iv.Failure.Lo, Hi: iv.Failure.Hi}
	}
	return ev
}
