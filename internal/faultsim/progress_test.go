package faultsim

import (
	"context"
	"path/filepath"
	"testing"

	"resmod/internal/apps"
	"resmod/internal/telemetry"
)

// runWithProgress executes the campaign with a Progress bus on the
// context and returns the summary, the engine-metrics snapshot, and
// every campaign-kind event published, in order.
func runWithProgress(t *testing.T, c Campaign, golden *Golden) (*Summary, telemetry.Snapshot, []telemetry.ProgressEvent) {
	t.Helper()
	prog := telemetry.NewProgress()
	sub := prog.Subscribe(4096)
	defer sub.Close()
	rec := telemetry.NewRecorder()
	ctx := telemetry.With(context.Background(), telemetry.New(nil, nil, rec).WithProgress(prog))
	sum, err := RunAgainstCtx(ctx, c, golden)
	if err != nil {
		t.Fatal(err)
	}
	var evs []telemetry.ProgressEvent
	for {
		select {
		case ev := <-sub.Events():
			if ev.Kind == telemetry.KindCampaign {
				evs = append(evs, ev)
			}
			continue
		default:
		}
		break
	}
	return sum, rec.Snapshot(), evs
}

func TestCampaignProgressSnapshots(t *testing.T) {
	app := lookup(t, "PENNANT")
	golden, err := ComputeGolden(app, "", 2, apps.DefaultTimeout)
	if err != nil {
		t.Fatal(err)
	}
	c := Campaign{App: app, Procs: 2, Trials: 40, Seed: 7, Workers: 4, ProgressEvery: 5}
	sum, engine, evs := runWithProgress(t, c, golden)

	if len(evs) < 3 {
		t.Fatalf("got %d events, want at least opening + periodic + terminal", len(evs))
	}
	first, last := evs[0], evs[len(evs)-1]
	if first.State != telemetry.StateRunning || first.Done != 0 {
		t.Fatalf("opening snapshot = %+v, want running@0", first)
	}
	if last.State != telemetry.StateDone {
		t.Fatalf("terminal snapshot state = %q, want done", last.State)
	}
	if last.Done != uint64(c.Trials) || last.Total != uint64(c.Trials) {
		t.Fatalf("terminal snapshot %d/%d, want %d/%d", last.Done, last.Total, c.Trials, c.Trials)
	}
	// Progress accounting: the final snapshot's per-outcome tallies sum to
	// the trials the engine counted (the /metrics
	// resmod_campaign_trials_total contract) and match the Summary.
	if got := last.Success + last.SDC + last.Failure; got != engine.TrialsTotal() {
		t.Fatalf("tallies sum to %d, engine counted %d trials", got, engine.TrialsTotal())
	}
	if last.Success != sum.Counts.Success || last.SDC != sum.Counts.SDC || last.Failure != sum.Counts.Failure {
		t.Fatalf("terminal tallies %d/%d/%d differ from summary %+v",
			last.Success, last.SDC, last.Failure, sum.Counts)
	}
	// Done counts are monotone and snapshots carry convergence intervals
	// once trials are tallied.
	for i := 1; i < len(evs); i++ {
		if evs[i].Done < evs[i-1].Done {
			t.Fatalf("event %d: done went backwards (%d after %d)", i, evs[i].Done, evs[i-1].Done)
		}
	}
	if last.SuccessCI == nil || last.SDCCI == nil || last.FailureCI == nil {
		t.Fatalf("terminal snapshot missing convergence intervals: %+v", last)
	}
	if w := last.SuccessCI.Width(); w <= 0 || w > 1 {
		t.Fatalf("success CI width = %g", w)
	}
}

// TestCampaignProgressResume: a campaign resumed from a checkpoint opens
// its progress stream at the restored trial count, not zero.
func TestCampaignProgressResume(t *testing.T) {
	app := lookup(t, "PENNANT")
	golden, err := ComputeGolden(app, "", 2, apps.DefaultTimeout)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ck.json")
	base := Campaign{App: app, Procs: 2, Trials: 30, Seed: 3, Workers: 3, ProgressEvery: 1}

	// Interrupt a checkpointing run partway.
	ctx, cancel := context.WithCancel(context.Background())
	interrupted := base
	interrupted.Checkpoint = path
	interrupted.hooks = &campaignHooks{trialDone: func(done uint64) {
		if done >= 10 {
			cancel()
		}
	}}
	partial, err := RunAgainstCtx(ctx, interrupted, golden)
	cancel()
	if err != nil {
		t.Fatal(err)
	}
	if !partial.Interrupted || partial.TrialsDone == 0 {
		t.Fatalf("bad partial: interrupted=%v done=%d", partial.Interrupted, partial.TrialsDone)
	}

	resumed := base
	resumed.Checkpoint = path
	resumed.Resume = true
	sum, _, evs := runWithProgress(t, resumed, golden)
	if len(evs) == 0 {
		t.Fatal("no progress events from the resumed run")
	}
	if evs[0].Done != partial.TrialsDone {
		t.Fatalf("resumed run opened at %d trials, checkpoint restored %d",
			evs[0].Done, partial.TrialsDone)
	}
	last := evs[len(evs)-1]
	if last.State != telemetry.StateDone || last.Done != uint64(base.Trials) {
		t.Fatalf("terminal snapshot = %+v", last)
	}
	if sum.TrialsDone != uint64(base.Trials) {
		t.Fatalf("resumed summary TrialsDone = %d", sum.TrialsDone)
	}
}

// TestCampaignProgressInterrupted: an interrupted campaign's terminal
// snapshot carries the interrupted state and the partial count.
func TestCampaignProgressInterrupted(t *testing.T) {
	app := lookup(t, "PENNANT")
	golden, err := ComputeGolden(app, "", 2, apps.DefaultTimeout)
	if err != nil {
		t.Fatal(err)
	}
	prog := telemetry.NewProgress()
	sub := prog.Subscribe(4096)
	defer sub.Close()
	ctx, cancel := context.WithCancel(
		telemetry.With(context.Background(), telemetry.Nop().WithProgress(prog)))
	c := Campaign{App: app, Procs: 2, Trials: 30, Seed: 5, Workers: 2, ProgressEvery: 1}
	c.hooks = &campaignHooks{trialDone: func(done uint64) {
		if done >= 8 {
			cancel()
		}
	}}
	sum, err := RunAgainstCtx(ctx, c, golden)
	cancel()
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Interrupted {
		t.Fatalf("campaign not interrupted (done=%d)", sum.TrialsDone)
	}
	var last telemetry.ProgressEvent
	for {
		select {
		case last = <-sub.Events():
			continue
		default:
		}
		break
	}
	if last.State != telemetry.StateInterrupted {
		t.Fatalf("terminal state = %q, want interrupted", last.State)
	}
	if last.Done != sum.TrialsDone {
		t.Fatalf("terminal snapshot done=%d, summary %d", last.Done, sum.TrialsDone)
	}
}

// TestProgressObservationOnly: publishing snapshots never changes the
// campaign result, and the snapshot cadence never enters the identity.
func TestProgressObservationOnly(t *testing.T) {
	app := lookup(t, "PENNANT")
	golden, err := ComputeGolden(app, "", 2, apps.DefaultTimeout)
	if err != nil {
		t.Fatal(err)
	}
	c := Campaign{App: app, Procs: 2, Trials: 25, Seed: 11, Workers: 3}
	want, err := RunAgainst(c, golden)
	if err != nil {
		t.Fatal(err)
	}
	withBus := c
	withBus.ProgressEvery = 1
	got, _, _ := runWithProgress(t, withBus, golden)
	equalResults(t, want, got, "with-progress vs without")

	if c.Normalized().Identity() != withBus.Normalized().Identity() {
		t.Fatal("ProgressEvery leaked into the campaign identity")
	}
}

func TestProgressEveryDefaults(t *testing.T) {
	for _, tc := range []struct {
		trials, every int
		want          uint64
	}{
		{trials: 4000, every: 0, want: 40},
		{trials: 50, every: 0, want: 1}, // below the divisor: every trial
		{trials: 400, every: 7, want: 7},
	} {
		c := Campaign{Trials: tc.trials, ProgressEvery: tc.every}
		if got := progressEvery(c); got != tc.want {
			t.Errorf("progressEvery(trials=%d, every=%d) = %d, want %d",
				tc.trials, tc.every, got, tc.want)
		}
	}
}
