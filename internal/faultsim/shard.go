package faultsim

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"time"

	"resmod/internal/apps"
	"resmod/internal/stats"
	"resmod/internal/telemetry"
)

// Shard execution: the distributed tier's unit of work.  A shard is a
// contiguous trial range [Start, End) of one campaign, executed in
// isolation (typically on another process) and returned as partial
// tallies.  Because every trial's RNG stream is split from the campaign
// seed by the *global* trial index — never by shard index or worker
// identity — the union of any disjoint shard cover of [0, Trials) merges
// into a Summary bit-identical to a single-node run, whatever the worker
// count, dispatch order or re-shard history.  The partial-tally carrier
// is the PR 1 Checkpoint: the same bitmap-plus-commutative-counts
// snapshot that makes resume bit-identical makes shard merging
// bit-identical.

// AbnormalTrial is one trial a shard abandoned after exhausting its
// retries — reported alongside the tallies so the coordinator can apply
// the campaign-wide MaxAbnormal budget with the same lowest-trial-index
// error reporting as a local run.
type AbnormalTrial struct {
	// Trial is the global trial index.
	Trial int
	// Err is the rendered harness error (errors do not survive JSON).
	Err string
}

// ShardResult is one executed shard's outcome: the partial tallies as a
// Checkpoint (Done bits exactly the shard's completed trials) plus the
// abnormal trials the shard abandoned.  The type is JSON-serializable —
// it is the wire payload a remote worker streams back.
type ShardResult struct {
	// Start and End echo the executed range.
	Start int
	End   int
	// Checkpoint holds the shard's tallies over the full campaign's
	// bitmap width, so merging is a plain bitwise OR plus count sums.
	Checkpoint *Checkpoint
	// Abnormal lists the trials abandoned after retries, if any.
	Abnormal []AbnormalTrial `json:",omitempty"`
}

// RunShardCtx executes trials [start, end) of the campaign against a
// precomputed golden and returns the shard's partial tallies.  The
// campaign is normalized exactly like RunAgainstCtx, so the embedded
// identity matches the coordinator's; per-trial RNG streams are split
// from Campaign.Seed by global trial index, so the result is independent
// of how [0, Trials) was cut into shards.  Cancellation (or an exhausted
// Budget) aborts the shard with an error — a half-executed shard is the
// dispatcher's to retry, never to merge.
func RunShardCtx(ctx context.Context, c Campaign, golden *Golden, start, end int) (*ShardResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if c.App == nil {
		c.App = golden.App
	}
	if c.Class == "" {
		c.Class = golden.Class
	}
	if golden.Procs != c.Procs {
		return nil, fmt.Errorf("faultsim: golden has %d procs, shard campaign wants %d",
			golden.Procs, c.Procs)
	}
	if c.Trials < 1 {
		return nil, fmt.Errorf("faultsim: invalid Trials %d", c.Trials)
	}
	if start < 0 || end > c.Trials || start >= end {
		return nil, fmt.Errorf("faultsim: shard [%d,%d) outside campaign trials [0,%d)",
			start, end, c.Trials)
	}
	if c.Errors < 1 {
		c.Errors = 1
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Timeout <= 0 {
		c.Timeout = apps.DefaultTimeout
	}
	if c.ContaminationTol == 0 {
		c.ContaminationTol = DefaultContaminationTol
	}
	if c.AbnormalRetries == 0 {
		c.AbnormalRetries = DefaultAbnormalRetries
	}
	if c.Budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.Budget)
		defer cancel()
	}
	ctx, abort := context.WithCancel(ctx)
	defer abort()

	identity := c.Identity()
	tel := telemetry.From(ctx)
	ctx, span := tel.Tracer().Start(ctx, "shard",
		telemetry.String("id", identity),
		telemetry.Int("start", start), telemetry.Int("end", end),
		telemetry.Int("workers", c.Workers))
	defer span.End()

	// The aggregate spans the whole campaign's bitmap width so the
	// snapshot merges positionally; only [start, end) bits ever set.
	agg := newAggregate(c.Procs, c.Trials)
	base := stats.NewRNG(c.Seed)
	sink := tel.Sink()
	// Live tallies for the dispatcher, at the campaign's progress cadence.
	obs := shardObserverFrom(ctx)
	every := progressEvery(c)
	var wg sync.WaitGroup
	for w := 0; w < c.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// One arena per worker, exactly as in RunAgainstCtx: pooled
			// state never affects trial results, so shard execution stays
			// bit-identical to local execution.
			arena := apps.NewArena()
			for t := start + w; t < end; t += c.Workers {
				if ctx.Err() != nil {
					return
				}
				if err := c.Pool.Acquire(ctx); err != nil {
					return
				}
				t0 := time.Now()
				rec, err := runTrialResilient(ctx, c, golden, base, t, sink, agg, arena)
				c.Pool.Release()
				if err != nil {
					if isInterruption(err) {
						return
					}
					sink.TrialAbnormal()
					if agg.recordAbnormal(t, err) > c.MaxAbnormal {
						// The shard alone already blows the campaign-wide
						// budget; stop burning trials, let the coordinator
						// fail the campaign from the reported list.
						abort()
						return
					}
					continue
				}
				done := agg.record(t, rec)
				sink.TrialDone(rec.Outcome.String(), time.Since(t0))
				if obs != nil && done%every == 0 {
					obs(statusOf(agg, start, end))
				}
			}
		}(w)
	}
	wg.Wait()
	if obs != nil {
		obs(statusOf(agg, start, end))
	}

	res := &ShardResult{Start: start, End: end, Checkpoint: agg.snapshot(identity)}
	for _, te := range agg.abnormalTrials() {
		res.Abnormal = append(res.Abnormal, AbnormalTrial{Trial: te.trial, Err: te.err.Error()})
	}
	// A shard that blew the abnormal budget on its own returns its partial
	// result — the coordinator applies the campaign-wide budget and fails
	// the campaign with the same lowest-trial-index error a local run
	// reports.  Any other incompleteness is an interruption: the shard
	// must not be merged, only retried.
	if len(res.Abnormal) <= c.MaxAbnormal &&
		res.Checkpoint.Completed+uint64(len(res.Abnormal)) < uint64(end-start) {
		return nil, fmt.Errorf("faultsim: shard [%d,%d) interrupted after %d trials: %w",
			start, end, res.Checkpoint.Completed, context.Cause(ctx))
	}
	span.SetAttr(telemetry.Attr{Key: "trials_done", Value: res.Checkpoint.Completed})
	return res, nil
}

// abnormalTrials snapshots the abnormal-trial list in deterministic
// (ascending trial index) order.
func (a *aggregate) abnormalTrials() []trialError {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := append([]trialError(nil), a.abnormal...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].trial < out[j-1].trial; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// mergeDisjoint folds a shard snapshot into the aggregate after
// validating that it belongs to this campaign, is internally consistent,
// and covers no trial already merged.  All tallies are commutative
// integer counts, so merge order cannot affect the final Summary.
func (a *aggregate) mergeDisjoint(ck *Checkpoint, identity string) error {
	if ck == nil {
		return fmt.Errorf("%w: nil shard snapshot", ErrCheckpointMismatch)
	}
	if ck.Version != CheckpointVersion {
		return fmt.Errorf("%w: snapshot version %d, want %d",
			ErrCheckpointMismatch, ck.Version, CheckpointVersion)
	}
	if ck.Identity != identity {
		return fmt.Errorf("%w: snapshot is of %q, campaign is %q",
			ErrCheckpointMismatch, ck.Identity, identity)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if ck.Trials != a.trials || len(ck.Done) != len(a.done) ||
		len(ck.Hist) != len(a.hist) || len(ck.Spread) != len(a.spread) {
		return fmt.Errorf("%w: snapshot shape does not fit the campaign", ErrCheckpointMismatch)
	}
	var pop uint64
	for i, w := range ck.Done {
		if a.done[i]&w != 0 {
			return fmt.Errorf("%w: shard overlaps already-merged trials", ErrCheckpointMismatch)
		}
		pop += uint64(bits.OnesCount64(w))
	}
	if pop != ck.Completed || ck.Success+ck.SDC+ck.Failure != ck.Completed {
		return fmt.Errorf("%w: snapshot tallies are inconsistent (%d done bits, %d completed)",
			ErrCheckpointMismatch, pop, ck.Completed)
	}
	for i, w := range ck.Done {
		a.done[i] |= w
	}
	a.completed += ck.Completed
	a.counter.Success += ck.Success
	a.counter.SDC += ck.SDC
	a.counter.Failure += ck.Failure
	for i, n := range ck.Hist {
		a.hist[i] += n
	}
	for i, n := range ck.Spread {
		a.spread[i] += n
	}
	a.fired += ck.Fired
	for x, bc := range ck.ByContamination {
		dst := a.byCont[x]
		if dst == nil {
			dst = &stats.Counter{}
			a.byCont[x] = dst
		}
		dst.Success += bc.Success
		dst.SDC += bc.SDC
		dst.Failure += bc.Failure
	}
	return nil
}

// Merger accumulates disjoint shard results of one campaign into the
// Summary a single-node run would have produced.  It is safe for
// concurrent Merge calls (dispatchers merge as shards land).
type Merger struct {
	identity string
	trials   int
	maxAbn   int
	golden   *Golden
	start    time.Time

	mu  sync.Mutex
	agg *aggregate
	// accounted marks trials that need no further dispatch: completed
	// ones (the aggregate's done bits) plus abnormal ones, which a local
	// run likewise excludes from the tallies rather than re-running.
	accounted []uint64
}

// NewMerger prepares a merger for the campaign (normalized first, so the
// identity matches what RunShardCtx embeds in its snapshots).
func NewMerger(c Campaign, golden *Golden) *Merger {
	c = c.Normalized()
	return &Merger{
		identity:  c.Identity(),
		trials:    c.Trials,
		maxAbn:    c.MaxAbnormal,
		golden:    golden,
		start:     time.Now(),
		agg:       newAggregate(c.Procs, c.Trials),
		accounted: make([]uint64, (c.Trials+63)/64),
	}
}

// Identity returns the campaign identity shards must carry.
func (m *Merger) Identity() string { return m.identity }

// Merge folds one shard result in.  A shard whose tallies overlap an
// already-merged trial, or that belongs to a different campaign, is
// rejected — the dispatcher bug surfaces instead of corrupting counts.
func (m *Merger) Merge(res *ShardResult) error {
	if res == nil || res.Checkpoint == nil {
		return fmt.Errorf("%w: nil shard result", ErrCheckpointMismatch)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.agg.mergeDisjoint(res.Checkpoint, m.identity); err != nil {
		return err
	}
	for i, w := range res.Checkpoint.Done {
		m.accounted[i] |= w
	}
	for _, ab := range res.Abnormal {
		if ab.Trial < 0 || ab.Trial >= m.trials {
			return fmt.Errorf("%w: abnormal trial %d outside campaign", ErrCheckpointMismatch, ab.Trial)
		}
		m.agg.recordAbnormal(ab.Trial, errors.New(ab.Err))
		m.accounted[ab.Trial/64] |= 1 << (ab.Trial % 64)
	}
	return nil
}

// AbnormalExceeded reports whether the merged abnormal trials already
// blow the campaign's MaxAbnormal budget — the dispatcher's cue to stop
// dispatching and fail the campaign via Summary's deterministic error.
func (m *Merger) AbnormalExceeded() bool {
	m.agg.mu.Lock()
	defer m.agg.mu.Unlock()
	return len(m.agg.abnormal) > m.maxAbn
}

// Done returns how many trials are tallied so far.
func (m *Merger) Done() uint64 {
	return m.agg.doneCount()
}

// Complete reports whether every trial is accounted for (tallied or
// abandoned as abnormal).
func (m *Merger) Complete() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.completeLocked()
}

func (m *Merger) completeLocked() bool {
	for t := 0; t < m.trials; t += 64 {
		want := ^uint64(0)
		if m.trials-t < 64 {
			want = (uint64(1) << (m.trials - t)) - 1
		}
		if m.accounted[t/64]&want != want {
			return false
		}
	}
	return true
}

// Missing returns the maximal contiguous unaccounted trial ranges within
// [start, end) — the re-dispatch list after a shard is lost.
func (m *Merger) Missing(start, end int) [][2]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out [][2]int
	runStart := -1
	for t := start; t < end; t++ {
		if m.accounted[t/64]&(1<<(t%64)) == 0 {
			if runStart < 0 {
				runStart = t
			}
			continue
		}
		if runStart >= 0 {
			out = append(out, [2]int{runStart, t})
			runStart = -1
		}
	}
	if runStart >= 0 {
		out = append(out, [2]int{runStart, end})
	}
	return out
}

// Summary builds the merged campaign Summary.  Incomplete coverage or an
// exceeded abnormal budget is an error, with the same deterministic
// lowest-trial-index reporting as a local run; the result is otherwise
// bit-identical (Elapsed aside, which is wall time by definition) to
// RunAgainstCtx over the full range.
func (m *Merger) Summary() (*Summary, error) {
	m.mu.Lock()
	complete := m.completeLocked()
	m.mu.Unlock()
	if err := m.agg.fatalError(m.maxAbn); err != nil {
		return nil, err
	}
	if !complete {
		return nil, fmt.Errorf("faultsim: merged shards cover %d of %d trials",
			m.agg.doneCount(), m.trials)
	}
	sum := m.agg.summary(m.golden)
	sum.Elapsed = time.Since(m.start)
	return sum, nil
}
