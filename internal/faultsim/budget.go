package faultsim

import (
	"context"
	"runtime"
)

// WorkerBudget is a bounded pool of worker tokens shared by concurrently
// executing campaigns.  Each in-flight trial holds one token, so when N
// campaigns run at once their combined trial concurrency never exceeds
// the budget — campaign-level parallelism composes with per-campaign
// Workers without oversubscribing the machine.  A nil *WorkerBudget is
// valid and grants every request immediately (the single-campaign path
// pays nothing).
//
// Tokens are held only for the duration of one trial, never across
// blocking campaign-level waits, so budget acquisition cannot deadlock:
// every held token is always making progress toward release.
type WorkerBudget struct {
	tokens chan struct{}
}

// NewWorkerBudget creates a budget of n tokens; n <= 0 selects
// GOMAXPROCS.
func NewWorkerBudget(n int) *WorkerBudget {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &WorkerBudget{tokens: make(chan struct{}, n)}
}

// Size returns the token count (0 for a nil budget).
func (b *WorkerBudget) Size() int {
	if b == nil {
		return 0
	}
	return cap(b.tokens)
}

// Acquire blocks until a token is free or ctx is done.  It returns
// ctx.Err() on cancellation and nil once a token is held.  A nil budget
// grants immediately (after honoring an already-cancelled ctx, so callers
// observe cancellation uniformly).
func (b *WorkerBudget) Acquire(ctx context.Context) error {
	if b == nil {
		return ctx.Err()
	}
	select {
	case b.tokens <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release returns a token acquired with Acquire.  Releasing on a nil
// budget is a no-op.
func (b *WorkerBudget) Release() {
	if b == nil {
		return
	}
	<-b.tokens
}

// InUse returns the number of tokens currently held (0 for nil).  It is
// inherently racy under concurrency and intended for telemetry and tests.
func (b *WorkerBudget) InUse() int {
	if b == nil {
		return 0
	}
	return len(b.tokens)
}
