package faultsim

import (
	"context"
	"testing"

	"resmod/internal/apps"
	"resmod/internal/stats"

	_ "resmod/internal/apps/cg"
)

// benchGolden computes one golden run for the benchmark configuration.
func benchGolden(b *testing.B, name, class string, procs int) *Golden {
	b.Helper()
	app, err := apps.Lookup(name)
	if err != nil {
		b.Fatal(err)
	}
	g, err := ComputeGolden(app, class, procs, apps.DefaultTimeout)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkTrial measures one whole fault-injection trial — plan draw,
// world construction, application execution, contamination comparison —
// the unit the campaign engine repeats Trials times, without pooling.
func BenchmarkTrial(b *testing.B) {
	benchTrial(b, nil)
}

// BenchmarkTrialPooled is BenchmarkTrial on a worker arena, the
// campaign engine's steady-state configuration.
func BenchmarkTrialPooled(b *testing.B) {
	benchTrial(b, apps.NewArena())
}

func benchTrial(b *testing.B, arena *apps.Arena) {
	golden := benchGolden(b, "CG", "S", 4)
	c := Campaign{App: golden.App, Class: "S", Procs: 4, Trials: 1 << 30, Seed: 2018}
	c = c.Normalized()
	base := stats.NewRNG(c.Seed)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runTrial(ctx, c, golden, base.Split(uint64(i)), arena); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaign measures a small end-to-end campaign (sequential
// workers, no checkpointing), the engine's steady-state workload.
func BenchmarkCampaign(b *testing.B) {
	golden := benchGolden(b, "CG", "S", 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := Campaign{
			App: golden.App, Class: "S", Procs: 4,
			Trials: 32, Seed: 2018, Workers: 1,
		}
		if _, err := RunAgainst(c, golden); err != nil {
			b.Fatal(err)
		}
	}
}
