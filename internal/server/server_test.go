package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"resmod/internal/dist"
	"resmod/internal/store"

	_ "resmod/internal/apps/cg"
	_ "resmod/internal/apps/pennant"
)

// newTestServer boots a service with tiny statistics and the given store.
func newTestServer(t *testing.T, st *store.Store, workers, queue int) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(Config{Trials: 10, Seed: 42, Workers: workers, Queue: queue, Store: st})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Close(ctx)
	})
	return srv, hs
}

func postJSON(t *testing.T, url string, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, v
}

// postJSONHeader posts body with extra request headers and returns the
// status, response headers and decoded JSON body.
func postJSONHeader(t *testing.T, url, body string, hdr map[string]string) (int, http.Header, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, resp.Header, v
}

func getJSON(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, v
}

// pollDone polls the job until it reaches a terminal status.
func pollDone(t *testing.T, base, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		code, v := getJSON(t, base+"/v1/predictions/"+id)
		if code != http.StatusOK {
			t.Fatalf("poll returned %d: %v", code, v)
		}
		switch v["status"] {
		case StatusDone:
			return v
		case StatusFailed, StatusCanceled:
			t.Fatalf("job ended %v: %v", v["status"], v["error"])
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("job did not finish in time")
	return nil
}

// metricValue extracts one un-labeled metric value from Prometheus text.
func metricValue(t *testing.T, text, name string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` ([0-9.e+-]+)$`)
	m := re.FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("metric %s not found in:\n%s", name, text)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func scrape(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

const predBody = `{"app":"PENNANT","small":4,"large":8}`

// TestSubmitPollResult drives the cold path end to end, then asserts the
// warm path answers from the store without advancing the trial counters —
// the acceptance criterion of the service.
func TestSubmitPollResult(t *testing.T) {
	st, err := store.Open(store.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	_, hs := newTestServer(t, st, 2, 16)

	code, v := postJSON(t, hs.URL+"/v1/predictions", predBody)
	if code != http.StatusAccepted {
		t.Fatalf("cold submit returned %d: %v", code, v)
	}
	id, _ := v["id"].(string)
	if id == "" {
		t.Fatalf("no job id in %v", v)
	}
	done := pollDone(t, hs.URL, id)
	result, ok := done["result"].(map[string]any)
	if !ok {
		t.Fatalf("done job has no result: %v", done)
	}
	pred, ok := result["Predicted"].(map[string]any)
	if !ok {
		t.Fatalf("result has no Predicted rates: %v", result)
	}
	if s, _ := pred["Success"].(float64); s < 0 || s > 1 {
		t.Fatalf("predicted success rate %v out of range", pred["Success"])
	}

	text := scrape(t, hs.URL)
	trialsCold := metricValue(t, text, "resmod_campaign_trials_total")
	campaignsCold := metricValue(t, text, "resmod_campaigns_executed_total")
	if trialsCold == 0 || campaignsCold == 0 {
		t.Fatalf("cold run executed no campaigns? trials=%v campaigns=%v",
			trialsCold, campaignsCold)
	}
	if hits := metricValue(t, text, "resmod_prediction_cache_hits_total"); hits != 0 {
		t.Fatalf("cold run already counted %v cache hits", hits)
	}

	// Warm path: the identical submission is answered immediately from
	// the result store — same id, cached flag, no new campaign work.
	code, v = postJSON(t, hs.URL+"/v1/predictions", predBody)
	if code != http.StatusOK {
		t.Fatalf("warm submit returned %d: %v", code, v)
	}
	if v["id"] != id {
		t.Fatalf("warm submit got id %v, want %v (content addressing broken)", v["id"], id)
	}
	if v["status"] != StatusDone {
		t.Fatalf("warm submit not served as done: %v", v)
	}

	text = scrape(t, hs.URL)
	if got := metricValue(t, text, "resmod_campaign_trials_total"); got != trialsCold {
		t.Fatalf("warm submit advanced trial counter %v -> %v: a campaign re-ran", trialsCold, got)
	}
	if got := metricValue(t, text, "resmod_campaigns_executed_total"); got != campaignsCold {
		t.Fatalf("warm submit executed %v new campaigns", got-campaignsCold)
	}
}

// TestWarmAcrossRestart proves the durable half: a fresh server over the
// same store directory (a restarted process) serves the prediction as a
// cache hit and never re-runs a campaign.
func TestWarmAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	st1, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	_, hs1 := newTestServer(t, st1, 1, 8)
	code, v := postJSON(t, hs1.URL+"/v1/predictions", predBody)
	if code != http.StatusAccepted {
		t.Fatalf("submit returned %d: %v", code, v)
	}
	pollDone(t, hs1.URL, v["id"].(string))

	st2, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	_, hs2 := newTestServer(t, st2, 1, 8)
	code, v = postJSON(t, hs2.URL+"/v1/predictions", predBody)
	if code != http.StatusOK {
		t.Fatalf("restarted server returned %d: %v", code, v)
	}
	if v["status"] != StatusDone || v["cached"] != true {
		t.Fatalf("restarted server did not serve from store: %v", v)
	}
	text := scrape(t, hs2.URL)
	if got := metricValue(t, text, "resmod_campaign_trials_total"); got != 0 {
		t.Fatalf("restarted server executed %v trials, want 0", got)
	}
	if got := metricValue(t, text, "resmod_prediction_cache_hits_total"); got != 1 {
		t.Fatalf("cache hit not reported: %v", got)
	}
}

// TestConcurrentIdenticalSubmissions floods the server with identical
// submissions (run under -race in CI): all join one content-addressed
// job, and the underlying campaigns execute exactly once.
func TestConcurrentIdenticalSubmissions(t *testing.T) {
	st, err := store.Open(store.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	srv, hs := newTestServer(t, st, 4, 32)

	const n = 12
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, v := postJSON(t, hs.URL+"/v1/predictions", predBody)
			if code != http.StatusAccepted && code != http.StatusOK {
				t.Errorf("submit %d returned %d: %v", i, code, v)
				return
			}
			ids[i], _ = v["id"].(string)
		}(i)
	}
	wg.Wait()
	for _, id := range ids[1:] {
		if id != ids[0] {
			t.Fatalf("identical submissions produced different jobs: %v", ids)
		}
	}
	pollDone(t, hs.URL, ids[0])

	// Exactly one job computed; every campaign underneath ran once.  The
	// prediction needs one campaign per serial sampling point (small=4)
	// plus the small-scale, the measured-large and possibly the
	// parallel-unique deployment — the exact count varies by app, but a
	// duplicated job would double it.
	campaigns := srv.metrics.campaigns.Load()
	if campaigns == 0 || campaigns > 8 {
		t.Fatalf("campaigns executed = %d, want one pass (1..8)", campaigns)
	}
	if got := srv.metrics.submitted.Load(); got != 1 {
		t.Fatalf("%d jobs entered the queue, want 1", got)
	}
	if got := srv.metrics.joined.Load(); got != n-1 {
		t.Fatalf("joined = %d, want %d", got, n-1)
	}
}

// TestGracefulDrain submits a prediction and closes the server while it
// is in flight: Close must wait for the job, and the result must be in
// the store for the next incarnation.
func TestGracefulDrain(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Trials: 10, Seed: 42, Workers: 1, Queue: 8, Store: st})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	code, v := postJSON(t, hs.URL+"/v1/predictions", predBody)
	if code != http.StatusAccepted {
		t.Fatalf("submit returned %d: %v", code, v)
	}
	id := v["id"].(string)

	// Drain with no deadline pressure: must finish the in-flight job.
	if err := srv.Close(context.Background()); err != nil {
		t.Fatalf("graceful drain errored: %v", err)
	}
	_, v = getJSON(t, hs.URL+"/v1/predictions/"+id)
	if v["status"] != StatusDone {
		t.Fatalf("drained job status %v, want done", v["status"])
	}

	// The drained result survived: a fresh server serves it cached.
	st2, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	_, hs2 := newTestServer(t, st2, 1, 8)
	code, v = postJSON(t, hs2.URL+"/v1/predictions", predBody)
	if code != http.StatusOK || v["cached"] != true {
		t.Fatalf("drained result not served from store: %d %v", code, v)
	}
}

// TestQueueFull fills the bounded queue (workers all busy) and checks the
// overload answer is 429 with a JSON error and a Retry-After hint — shed,
// never silently dropped.
func TestQueueFull(t *testing.T) {
	// No store, one worker, queue of one: the first job occupies the
	// worker, the second waits, the third must be refused.
	srv := New(Config{Trials: 10, Seed: 42, Workers: 1, Queue: 1})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		_ = srv.Close(context.Background())
	})

	bodies := []string{
		`{"app":"PENNANT","small":4,"large":8}`,
		`{"app":"PENNANT","small":2,"large":8}`,
		`{"app":"PENNANT","small":2,"large":4}`,
		`{"app":"CG","small":4,"large":8}`,
	}
	full := 0
	for _, b := range bodies {
		code, hdr, v := postJSONHeader(t, hs.URL+"/v1/predictions", b, nil)
		switch code {
		case http.StatusAccepted:
		case http.StatusTooManyRequests:
			full++
			if _, ok := v["error"].(string); !ok {
				t.Fatalf("429 without error message: %v", v)
			}
			if ra, err := strconv.Atoi(hdr.Get("Retry-After")); err != nil || ra < 1 {
				t.Fatalf("429 Retry-After = %q, want a positive integer", hdr.Get("Retry-After"))
			}
		default:
			t.Fatalf("submit returned %d: %v", code, v)
		}
	}
	if full == 0 {
		t.Fatal("queue never filled")
	}
	if got := srv.metrics.rejected.Load(); got != uint64(full) {
		t.Fatalf("rejected metric %d, want %d", got, full)
	}
	if got := srv.metrics.tenant(AnonTenant).shedQueue.Load(); got != uint64(full) {
		t.Fatalf("anon shed-queue metric %d, want %d", got, full)
	}
}

// TestValidation checks the 400 paths.
func TestValidation(t *testing.T) {
	_, hs := newTestServer(t, nil, 1, 4)
	cases := []string{
		`not json`,
		`{"app":"NOPE","small":4,"large":8}`,
		`{"app":"PENNANT","small":8,"large":4}`,
		`{"app":"PENNANT","small":0,"large":8}`,
		`{"app":"PENNANT","small":3,"large":8}`,
		`{"app":"PENNANT","class":"bogus","small":4,"large":8}`,
		`{"app":"PENNANT","small":4,"large":8,"trials":9}`,
		`{"app":"PENNANT","small":4,"large":1024}`,
	}
	for _, body := range cases {
		code, v := postJSON(t, hs.URL+"/v1/predictions", body)
		if code != http.StatusBadRequest {
			t.Errorf("body %s returned %d (%v), want 400", body, code, v)
		}
	}
}

// TestAuxEndpoints covers /v1/apps, /healthz, list and the 404 path.
func TestAuxEndpoints(t *testing.T) {
	_, hs := newTestServer(t, nil, 1, 4)

	code, v := getJSON(t, hs.URL+"/v1/apps")
	if code != http.StatusOK {
		t.Fatalf("/v1/apps returned %d", code)
	}
	list, _ := v["apps"].([]any)
	found := false
	for _, e := range list {
		if m, ok := e.(map[string]any); ok && m["name"] == "PENNANT" {
			found = true
		}
	}
	if !found {
		t.Fatalf("/v1/apps missing PENNANT: %v", v)
	}

	code, v = getJSON(t, hs.URL+"/healthz")
	if code != http.StatusOK || v["status"] != "ok" {
		t.Fatalf("/healthz = %d %v", code, v)
	}

	code, _ = getJSON(t, hs.URL+"/v1/predictions/doesnotexist")
	if code != http.StatusNotFound {
		t.Fatalf("missing job returned %d, want 404", code)
	}

	code, v = getJSON(t, hs.URL+"/v1/predictions")
	if code != http.StatusOK {
		t.Fatalf("list returned %d", code)
	}
	if _, ok := v["predictions"]; !ok {
		t.Fatalf("list has no predictions field: %v", v)
	}

	text := scrape(t, hs.URL)
	for _, want := range []string{
		"resmod_http_requests_total", "resmod_queue_depth",
		"resmod_prediction_duration_seconds_bucket", "resmod_uptime_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %s:\n%s", want, text)
		}
	}
}

// TestForcedDrainCancelsInflight expires the drain deadline immediately:
// the in-flight job must land in a terminal canceled/failed state (never
// hang in "running") and Close must report the forced drain.
func TestForcedDrainCancelsInflight(t *testing.T) {
	srv := New(Config{Trials: 10, Seed: 42, Workers: 1, Queue: 4})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	code, v := postJSON(t, hs.URL+"/v1/predictions", predBody)
	if code != http.StatusAccepted {
		t.Fatalf("submit returned %d: %v", code, v)
	}
	id := v["id"].(string)
	// Forced drain: expire the context immediately so the in-flight job
	// is interrupted and lands in a terminal canceled/failed state.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := srv.Close(ctx); err == nil {
		t.Fatal("forced drain reported success")
	}
	_, v = getJSON(t, hs.URL+"/v1/predictions/"+id)
	if v["status"] != StatusCanceled && v["status"] != StatusFailed {
		t.Fatalf("interrupted job status %v", v["status"])
	}
}

// TestWorkersEndpoint: /v1/workers answers on every server —
// coordinator:false on a plain one, the registry view (register +
// heartbeat reflected) on a coordinator.  A distributed prediction run
// end-to-end lives in internal/dist and scripts/distcheck.sh.
func TestWorkersEndpoint(t *testing.T) {
	_, hs := newTestServer(t, nil, 1, 4)
	_, v := getJSON(t, hs.URL+"/v1/workers")
	if v["coordinator"] != false {
		t.Fatalf("plain server /v1/workers = %v, want coordinator:false", v)
	}

	pool := dist.NewPool(dist.PoolConfig{HeartbeatTimeout: time.Second})
	srv := New(Config{Trials: 10, Seed: 42, Workers: 1, Queue: 4, DistPool: pool})
	hs2 := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs2.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Close(ctx)
	})
	code, reg := postJSON(t, hs2.URL+"/v1/workers/register",
		`{"name":"w-test","url":"http://127.0.0.1:1"}`)
	if code != http.StatusOK || reg["id"] == "" {
		t.Fatalf("register = %d %v", code, reg)
	}
	code, _ = postJSON(t, hs2.URL+"/v1/workers/heartbeat",
		`{"id":"`+reg["id"].(string)+`"}`)
	if code != http.StatusOK {
		t.Fatalf("heartbeat = %d", code)
	}
	_, view := getJSON(t, hs2.URL+"/v1/workers")
	if view["coordinator"] != true || view["alive"] != float64(1) {
		t.Fatalf("coordinator /v1/workers = %v, want coordinator:true alive:1", view)
	}
	// The dist metric families appear on coordinators.
	resp, err := http.Get(hs2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	for _, family := range []string{
		"resmod_dist_workers_alive 1",
		"resmod_dist_heartbeats_total 1",
		"resmod_dist_shards_dispatched_total 0",
	} {
		if !strings.Contains(buf.String(), family) {
			t.Errorf("/metrics missing %q", family)
		}
	}
}

// TestClusterEndpointAndFleetMetrics: /v1/cluster answers on every
// server (coordinator:false on a plain one) and a coordinator's
// /metrics grows per-worker resmod_fleet_* series from heartbeat stats.
func TestClusterEndpointAndFleetMetrics(t *testing.T) {
	_, hs := newTestServer(t, nil, 1, 4)
	_, v := getJSON(t, hs.URL+"/v1/cluster")
	if v["coordinator"] != false {
		t.Fatalf("plain server /v1/cluster = %v, want coordinator:false", v)
	}

	pool := dist.NewPool(dist.PoolConfig{HeartbeatTimeout: time.Minute})
	srv := New(Config{Trials: 10, Seed: 42, Workers: 1, Queue: 4, DistPool: pool})
	hs2 := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs2.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Close(ctx)
	})
	code, reg := postJSON(t, hs2.URL+"/v1/workers/register",
		`{"name":"w-fleet","url":"http://127.0.0.1:1"}`)
	if code != http.StatusOK {
		t.Fatalf("register = %d %v", code, reg)
	}
	code, _ = postJSON(t, hs2.URL+"/v1/workers/heartbeat",
		`{"id":"`+reg["id"].(string)+`","stats":{"trials_done":42,"shards_done":3}}`)
	if code != http.StatusOK {
		t.Fatalf("heartbeat = %d", code)
	}

	_, view := getJSON(t, hs2.URL+"/v1/cluster")
	if view["coordinator"] != true || view["workers_alive"] != float64(1) {
		t.Fatalf("coordinator /v1/cluster = %v, want coordinator:true workers_alive:1", view)
	}
	workers, ok := view["workers"].([]any)
	if !ok || len(workers) != 1 {
		t.Fatalf("/v1/cluster workers = %v", view["workers"])
	}
	wk := workers[0].(map[string]any)
	if wk["name"] != "w-fleet" {
		t.Fatalf("cluster worker = %v", wk)
	}
	if stats, ok := wk["worker_stats"].(map[string]any); !ok || stats["trials_done"] != float64(42) {
		t.Fatalf("cluster worker stats = %v", wk["worker_stats"])
	}

	resp, err := http.Get(hs2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	for _, family := range []string{
		"resmod_fleet_workers_alive 1",
		"resmod_fleet_workers_known 1",
		"resmod_fleet_progress_reports_total 0",
		"resmod_fleet_progress_stale_total 0",
		`resmod_fleet_worker_up{worker="w-fleet"} 1`,
		`resmod_fleet_worker_trials_done_total{worker="w-fleet"} 42`,
		`resmod_fleet_worker_shards_done_total{worker="w-fleet"} 0`,
		`resmod_fleet_worker_heartbeat_age_seconds{worker="w-fleet"}`,
	} {
		if !strings.Contains(buf.String(), family) {
			t.Errorf("/metrics missing %q", family)
		}
	}

	// The shard-progress sink is mounted on coordinators: garbage is 400,
	// an unknown token is accepted-but-stale (ok:false).
	code, _ = postJSON(t, hs2.URL+"/v1/shards/progress", `{"token":""}`)
	if code != http.StatusBadRequest {
		t.Fatalf("empty-token progress report = %d, want 400", code)
	}
	code, pr := postJSON(t, hs2.URL+"/v1/shards/progress", `{"token":"t123"}`)
	if code != http.StatusOK || pr["ok"] != false {
		t.Fatalf("stale progress report = %d %v, want 200 ok:false", code, pr)
	}
	if !strings.Contains(metricsText(t, hs2.URL), "resmod_fleet_progress_stale_total 1") {
		t.Error("stale progress report not counted")
	}
}

// metricsText fetches /metrics as a string.
func metricsText(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}
