package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"resmod/internal/telemetry"
)

// promFamily is one parsed metric family from /metrics.
type promFamily struct {
	help    string
	typ     string
	samples map[string]float64 // label-set string ("" for unlabeled) -> value
}

// parseProm is a minimal Prometheus text-exposition parser: enough to
// verify HELP/TYPE metadata, labeled samples, and histogram series.
// Suffixed histogram samples (_bucket, _sum, _count) are attributed to
// their base family.
func parseProm(t *testing.T, text string) map[string]*promFamily {
	t.Helper()
	fams := make(map[string]*promFamily)
	family := func(name string) *promFamily {
		f := fams[name]
		if f == nil {
			f = &promFamily{samples: make(map[string]float64)}
			fams[name] = f
		}
		return f
	}
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, help, found := strings.Cut(rest, " ")
			if !found {
				t.Fatalf("line %d: malformed HELP: %q", ln+1, line)
			}
			family(name).help = help
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, found := strings.Cut(rest, " ")
			if !found {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			family(name).typ = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		// sample: name{labels} value | name value
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: malformed sample: %q", ln+1, line)
		}
		key, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("line %d: bad value in %q: %v", ln+1, line, err)
		}
		name, labels := key, ""
		if i := strings.IndexByte(key, '{'); i >= 0 {
			if !strings.HasSuffix(key, "}") {
				t.Fatalf("line %d: unbalanced labels: %q", ln+1, line)
			}
			name, labels = key[:i], key[i+1:len(key)-1]
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suffix)
			if trimmed != name && fams[trimmed] != nil && fams[trimmed].typ == "histogram" {
				base = trimmed
				labels = strings.TrimSuffix(suffix, "_")[1:] + "|" + labels
				break
			}
		}
		family(base).samples[labels] = val
	}
	return fams
}

// fetchMetrics GETs /metrics and parses it.
func fetchMetrics(t *testing.T, base string) (string, map[string]*promFamily) {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), parseProm(t, string(body))
}

func TestMetricsExpositionMetadata(t *testing.T) {
	_, hs := newTestServer(t, nil, 1, 4)
	text, fams := fetchMetrics(t, hs.URL)

	for _, name := range []string{
		"resmod_http_requests_total",
		"resmod_predictions_submitted_total",
		"resmod_campaigns_executed_total",
		"resmod_campaign_trials_total",
		"resmod_trial_total",
		"resmod_trial_abnormal_total",
		"resmod_trial_retried_total",
		"resmod_golden_runs_total",
		"resmod_checkpoint_writes_total",
		"resmod_queue_depth",
		"resmod_jobs_inflight",
		"resmod_uptime_seconds",
		"resmod_prediction_duration_seconds",
		"resmod_trial_duration_seconds",
		"resmod_campaign_duration_seconds",
	} {
		f := fams[name]
		if f == nil {
			t.Fatalf("family %s missing from exposition:\n%s", name, text)
		}
		if f.help == "" {
			t.Errorf("family %s has no HELP", name)
		}
		if f.typ == "" {
			t.Errorf("family %s has no TYPE", name)
		}
	}
	for _, histName := range []string{
		"resmod_prediction_duration_seconds",
		"resmod_trial_duration_seconds",
		"resmod_campaign_duration_seconds",
	} {
		if got := fams[histName].typ; got != "histogram" {
			t.Errorf("%s TYPE = %q, want histogram", histName, got)
		}
	}
}

// histBuckets returns a histogram family's (le, cumulative) pairs in
// ascending le order, plus its count and +Inf bucket.
func histBuckets(t *testing.T, f *promFamily) (les []float64, cums []float64, inf, count float64) {
	t.Helper()
	count = f.samples["count|"]
	for labels, v := range f.samples {
		rest, ok := strings.CutPrefix(labels, "bucket|")
		if !ok {
			continue
		}
		le := strings.TrimSuffix(strings.TrimPrefix(rest, `le="`), `"`)
		if le == "+Inf" {
			inf = v
			continue
		}
		b, err := strconv.ParseFloat(le, 64)
		if err != nil {
			t.Fatalf("bad le %q: %v", le, err)
		}
		les = append(les, b)
		cums = append(cums, v)
	}
	sort.Sort(&leSorter{les, cums})
	return les, cums, inf, count
}

type leSorter struct {
	les  []float64
	cums []float64
}

func (s *leSorter) Len() int           { return len(s.les) }
func (s *leSorter) Less(i, j int) bool { return s.les[i] < s.les[j] }
func (s *leSorter) Swap(i, j int) {
	s.les[i], s.les[j] = s.les[j], s.les[i]
	s.cums[i], s.cums[j] = s.cums[j], s.cums[i]
}

func TestTrialOutcomeSumMatchesTotalAndHistogramsMonotone(t *testing.T) {
	_, hs := newTestServer(t, nil, 1, 4)
	code, v := postJSON(t, hs.URL+"/v1/predictions", `{"app":"PENNANT","small":2,"large":4}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit returned %d: %v", code, v)
	}
	pollDone(t, hs.URL, v["id"].(string))

	text, fams := fetchMetrics(t, hs.URL)

	trialTotal := fams["resmod_trial_total"]
	var outcomeSum float64
	for _, outcome := range []string{"success", "sdc", "failure", "other"} {
		val, ok := trialTotal.samples[fmt.Sprintf("outcome=%q", outcome)]
		if !ok {
			t.Fatalf("resmod_trial_total missing outcome %q:\n%s", outcome, text)
		}
		outcomeSum += val
	}
	total := fams["resmod_campaign_trials_total"].samples[""]
	if total == 0 {
		t.Fatalf("resmod_campaign_trials_total is 0 after a computed prediction:\n%s", text)
	}
	if outcomeSum != total {
		t.Fatalf("outcome sum %g != resmod_campaign_trials_total %g:\n%s",
			outcomeSum, total, text)
	}
	if goldens := fams["resmod_golden_runs_total"].samples[""]; goldens == 0 {
		t.Fatalf("resmod_golden_runs_total is 0 after a computed prediction:\n%s", text)
	}

	for _, histName := range []string{
		"resmod_prediction_duration_seconds",
		"resmod_trial_duration_seconds",
		"resmod_campaign_duration_seconds",
	} {
		les, cums, inf, count := histBuckets(t, fams[histName])
		if len(les) == 0 {
			t.Fatalf("%s has no buckets:\n%s", histName, text)
		}
		for i := 1; i < len(cums); i++ {
			if cums[i] < cums[i-1] {
				t.Fatalf("%s buckets not monotone at le=%g: %v", histName, les[i], cums)
			}
		}
		if inf < cums[len(cums)-1] {
			t.Fatalf("%s +Inf bucket %g below last bound %g", histName, inf, cums[len(cums)-1])
		}
		if inf != count {
			t.Fatalf("%s +Inf bucket %g != count %g", histName, inf, count)
		}
	}
	// The trial-latency histogram must have observed every executed trial.
	if _, _, _, count := histBuckets(t, fams["resmod_trial_duration_seconds"]); count != total {
		t.Fatalf("resmod_trial_duration_seconds count %g != trials total %g", count, total)
	}
}

func TestHTTPRequestCounterLabels(t *testing.T) {
	_, hs := newTestServer(t, nil, 1, 4)
	if _, err := http.Get(hs.URL + "/healthz"); err != nil {
		t.Fatal(err)
	}
	text, fams := fetchMetrics(t, hs.URL)
	want := `code="200",method="GET",path="/healthz"`
	var found bool
	for labels := range fams["resmod_http_requests_total"].samples {
		parts := strings.Split(labels, ",")
		sort.Strings(parts)
		if strings.Join(parts, ",") == want {
			found = true
		}
	}
	if !found {
		t.Fatalf("no healthz request sample with labels %s:\n%s", want, text)
	}
}

func TestRequestIDEchoAndJobRecord(t *testing.T) {
	_, hs := newTestServer(t, nil, 1, 4)

	// Server-generated: a response always carries some X-Request-ID.
	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Request-ID") == "" {
		t.Fatal("no generated X-Request-ID on response")
	}

	// Client-supplied: echoed verbatim, and stamped on the job record.
	req, _ := http.NewRequest(http.MethodPost, hs.URL+"/v1/predictions",
		strings.NewReader(`{"app":"PENNANT","small":2,"large":4}`))
	req.Header.Set("X-Request-ID", "rid-12345")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "rid-12345" {
		t.Fatalf("echoed request ID = %q, want rid-12345", got)
	}
	var v map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if got := v["request_id"]; got != "rid-12345" {
		t.Fatalf("job record request_id = %v, want rid-12345", got)
	}
	done := pollDone(t, hs.URL, v["id"].(string))
	if got := done["request_id"]; got != "rid-12345" {
		t.Fatalf("finished job request_id = %v, want rid-12345", got)
	}
}

func TestAccessLog(t *testing.T) {
	var buf bytes.Buffer
	srv := New(Config{Trials: 10, Seed: 42, Workers: 1, Queue: 4,
		Logger: telemetry.NewLogger(&buf, slog.LevelInfo)})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Close(ctx)
	})
	req, _ := http.NewRequest(http.MethodGet, hs.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "rid-log")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	out := buf.String()
	for _, want := range []string{
		"http request", "method=GET", "route=/healthz", "status=200", "request_id=rid-log",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("access log missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "bytes=") || !strings.Contains(out, "dur=") {
		t.Fatalf("access log missing bytes/dur:\n%s", out)
	}
}

func TestTraceEndpoint(t *testing.T) {
	_, hs := newTestServer(t, nil, 1, 4)
	code, v := postJSON(t, hs.URL+"/v1/predictions", `{"app":"PENNANT","small":2,"large":4}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit returned %d: %v", code, v)
	}
	id := v["id"].(string)
	pollDone(t, hs.URL, id)

	resp, err := http.Get(hs.URL + "/v1/predictions/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace returned %d", resp.StatusCode)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event %s ph = %q", ev.Name, ev.Ph)
		}
		names[ev.Name] = true
	}
	for _, want := range []string{"job", "predict", "golden", "campaign"} {
		if !names[want] {
			t.Fatalf("trace missing %q span, got %v", want, names)
		}
	}

	resp, err = http.Get(hs.URL + "/v1/predictions/nope/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown-id trace returned %d, want 404", resp.StatusCode)
	}
}
