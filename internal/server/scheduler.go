package server

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"resmod/internal/exper"
	"resmod/internal/telemetry"
)

// Job statuses, as reported by the API.
const (
	StatusQueued   = "queued"
	StatusRunning  = "running"
	StatusDone     = "done"
	StatusFailed   = "failed"
	StatusCanceled = "canceled"
)

// PredictionRequest is the POST /v1/predictions body: one §4 prediction —
// model the large-scale deployment from a serial campaign plus a
// small-scale campaign.  Trials and seed are server configuration, not
// request fields: they are part of the statistical protocol the service
// guarantees, and keeping them server-side is what makes results
// shareable across clients.
type PredictionRequest struct {
	// App is the registered benchmark name ("CG", "FT", ...).
	App string `json:"app"`
	// Class is the problem class (empty = the app's default).
	Class string `json:"class,omitempty"`
	// Small is the small-scale rank count the model profiles at.
	Small int `json:"small"`
	// Large is the target scale being predicted.
	Large int `json:"large"`
	// Priority is the scheduling class: "low", "normal" (default) or
	// "high".  It orders the admission queue only — it is not part of
	// the content address, so the same prediction submitted at any
	// priority is still one job.
	Priority string `json:"priority,omitempty"`
}

// PredictionKeyVersion versions the prediction-store key schema.
const PredictionKeyVersion = 1

// key returns the request's content-address input: every model input that
// determines the result (the campaign identities underneath are functions
// of exactly these plus the server's trials/seed).  Class must already be
// resolved to its default.
func (r PredictionRequest) key(trials int, seed uint64) string {
	return fmt.Sprintf("pred:v%d/%s/%s/s%d/p%d/t%d/seed%d",
		PredictionKeyVersion, r.App, r.Class, r.Small, r.Large, trials, seed)
}

// jobID derives the externally visible job identifier from a prediction
// key: a 16-hex-digit prefix of its SHA-256.  Content addressing is what
// makes identical submissions — concurrent or days apart — share one job.
func jobID(key string) string {
	h := sha256.Sum256([]byte(key))
	return hex.EncodeToString(h[:8])
}

// Prediction is the API view of a prediction job.
type Prediction struct {
	ID      string            `json:"id"`
	Status  string            `json:"status"`
	Cached  bool              `json:"cached"`
	Request PredictionRequest `json:"request"`
	// Priority is the job's effective scheduling class.  Omitted for
	// default-priority submissions, so pre-hardening clients see
	// byte-identical responses; promotions by a later high-priority
	// duplicate are visible here.
	Priority string `json:"priority,omitempty"`
	// Result is present once Status is "done".
	Result *exper.PredictionRow `json:"result,omitempty"`
	// Error is present when Status is "failed" or "canceled".
	Error string `json:"error,omitempty"`
	// SubmittedAt is the submission time; ElapsedMS the compute wall time
	// once the job finished (0 for store-served answers).
	SubmittedAt time.Time `json:"submitted_at"`
	ElapsedMS   int64     `json:"elapsed_ms,omitempty"`
	// RequestID is the X-Request-ID of the submission that created the
	// job, for correlating job records with access-log lines.
	RequestID string `json:"request_id,omitempty"`
}

// job is one scheduled prediction with its own lock (the server's map
// lock must not be held while a job runs).
type job struct {
	id    string
	key   string
	req   PredictionRequest
	reqID string
	// tenant is the submitting tenant (quota slots and per-tenant
	// metrics are charged to it for the job's whole lifetime).
	tenant string
	// progress is the job-scoped live-progress bus (nil for store-served
	// jobs, which never compute).  It exists from submission — SSE clients
	// can subscribe while the job is still queued — and forwards every
	// event to the server-wide bus.  Under the session singleflight a
	// shared campaign's events land on the bus of the job that actually
	// ran it, like trace spans.
	progress *telemetry.Progress
	// done is closed exactly once when the job reaches a terminal status,
	// so event streams learn of completion without polling.
	done       chan struct{}
	finishOnce sync.Once

	mu        sync.Mutex
	status    string
	cached    bool
	prio      int // effective queue level (promotions raise it)
	row       *exper.PredictionRow
	err       string
	submitted time.Time
	started   time.Time // when a worker picked the job up
	elapsed   time.Duration
	tracer    *telemetry.Tracer // per-job spans, set when the job starts
}

// closedChan returns an already-closed channel, for jobs born terminal
// (store-served submissions).
func closedChan() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}

// view snapshots the job for JSON rendering.
func (j *job) view() Prediction {
	j.mu.Lock()
	defer j.mu.Unlock()
	prio := ""
	if j.prio != PrioNormal || j.req.Priority != "" {
		prio = priorityName(j.prio)
	}
	return Prediction{
		ID: j.id, Status: j.status, Cached: j.cached, Request: j.req,
		Priority: prio,
		Result:   j.row, Error: j.err, SubmittedAt: j.submitted,
		ElapsedMS: j.elapsed.Milliseconds(), RequestID: j.reqID,
	}
}

// setPriority records a promotion (the queue already moved the job).
func (j *job) setPriority(prio int) {
	j.mu.Lock()
	if prio > j.prio {
		j.prio = prio
	}
	j.mu.Unlock()
}

// startedAt returns when a worker picked the job up (zero while queued).
func (j *job) startedAt() time.Time {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.started
}

// traceTracer returns the job's span recorder (nil until it starts).
func (j *job) traceTracer() *telemetry.Tracer {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.tracer
}

// retryable reports whether a resubmission should replace this job
// (failed or canceled terminal states) instead of joining it.
func (j *job) retryable() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status == StatusFailed || j.status == StatusCanceled
}

func (j *job) complete(row *exper.PredictionRow, elapsed time.Duration) {
	j.mu.Lock()
	j.status = StatusDone
	j.row = row
	j.elapsed = elapsed
	j.mu.Unlock()
	j.finish()
}

func (j *job) fail(status string, err error, elapsed time.Duration) {
	j.mu.Lock()
	j.status = status
	j.err = err.Error()
	j.elapsed = elapsed
	j.mu.Unlock()
	j.finish()
}

// finish marks the terminal transition for event streams (idempotent —
// a drain-canceled job may be failed twice).
func (j *job) finish() {
	j.finishOnce.Do(func() {
		if j.done != nil {
			close(j.done)
		}
	})
}

// worker is one scheduler goroutine: it pops the priority queue until
// the server starts closing, finishing the job it already holds
// (graceful drain; pop returns ok=false the moment the queue closes,
// even with jobs still queued — Close cancels those).
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j, ok := s.queue.pop()
		if !ok {
			return
		}
		s.runJob(j)
	}
}

// runJob computes one prediction through the shared session (whose
// singleflight and durable cache dedupe the campaigns underneath) and
// persists the result.  Each job records its spans into its own tracer
// (served by GET /v1/predictions/{id}/trace); under the session
// singleflight a shared campaign's spans land in the tracer of the job
// that actually ran it.
func (s *Server) runJob(j *job) {
	tr := telemetry.NewTracer()
	now := time.Now()
	j.mu.Lock()
	j.status = StatusRunning
	j.started = now
	j.tracer = tr
	wait := now.Sub(j.submitted)
	j.mu.Unlock()
	tm := s.metrics.tenant(j.tenant)
	tm.queued.Add(-1)
	tm.queueWait.observe(wait.Seconds())
	defer s.tenants.release(j.tenant)
	s.metrics.inflight.Add(1)
	defer s.metrics.inflight.Add(-1)

	ctx := telemetry.With(s.baseCtx, s.tel.WithTracer(tr).WithProgress(j.progress))
	ctx = telemetry.WithRequestID(ctx, j.reqID)
	ctx, span := tr.Start(ctx, "job",
		telemetry.String("id", j.id), telemetry.String("app", j.req.App),
		telemetry.String("request_id", j.reqID))
	start := time.Now()
	row, err := exper.PredictOneCtx(ctx, s.session, j.req.App, j.req.Class, j.req.Small, j.req.Large)
	elapsed := time.Since(start)
	span.End()
	if s.cfg.Tracer != nil {
		s.cfg.Tracer.Merge(tr)
	}
	switch {
	case err == nil:
		j.complete(row, elapsed)
		s.metrics.jobsDone.Add(1)
		s.metrics.latency.observe(elapsed.Seconds())
		s.putPrediction(j.key, j.req, row)
	case s.interrupted(err):
		j.fail(StatusCanceled, fmt.Errorf("canceled by server shutdown: %w", err), elapsed)
		s.metrics.jobsCanceled.Add(1)
	default:
		j.fail(StatusFailed, err, elapsed)
		s.metrics.jobsFailed.Add(1)
	}
	s.tel.Logger().Info("job finished",
		"job", j.id, "app", j.req.App, "status", j.view().Status,
		"elapsed", elapsed, "request_id", j.reqID)
}

// interrupted reports whether a job error came from the forced-drain
// cancellation rather than the prediction itself.  Session campaign
// interruptions are reported as plain errors carrying partial progress,
// so once the base context is canceled every job error is an
// interruption, not a prediction failure.
func (s *Server) interrupted(err error) bool {
	return s.baseCtx.Err() != nil
}
