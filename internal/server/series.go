package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"resmod/internal/telemetry"
)

// Series names the server's sampler records.  Per-worker series append
// "/<worker name>" so wildcard alert rules ("worker_heartbeat_age_seconds/*")
// track each node independently.
const (
	seriesQueueDepth      = "queue_depth"
	seriesQueueSaturation = "queue_saturation"
	seriesJobsInflight    = "jobs_inflight"
	seriesCampaignsRun    = "campaigns_running"
	seriesCampaignsQueued = "campaigns_queued"
	seriesBudgetInUse     = "worker_budget_in_use"
	seriesCampaignsStall  = "campaigns_stalled"
	seriesTrialP50        = "trial_latency_p50_seconds"
	seriesTrialP99        = "trial_latency_p99_seconds"
	seriesFleetAlive      = "fleet_workers_alive"
	seriesFleetKnown      = "fleet_workers_known"
	seriesWorkerHBAge     = "worker_heartbeat_age_seconds/" // + worker name
	seriesWorkerFlaps     = "worker_flaps_total/"           // + worker name

	seriesTrials     = "trials_total"
	seriesSheds      = "sheds_total"
	series5xx        = "http_5xx_nondrain_total"
	seriesRequeues   = "dist_shards_requeued_total"
	seriesHeartbeats = "dist_heartbeats_total"
)

// http5xx sums the request counters with a 5xx status code.
func (m *metrics) http5xx() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n uint64
	for k, v := range m.httpRequests {
		if k.code >= 500 {
			n += v
		}
	}
	return n
}

// shedDrainTotal sums the drain-shed (503) counters across tenants.
func (m *metrics) shedDrainTotal() uint64 {
	m.tmu.Lock()
	defer m.tmu.Unlock()
	var n uint64
	for _, tm := range m.tenantsByN {
		n += tm.shedDrain.Load()
	}
	return n
}

// sampleSource builds the server's telemetry.SampleSource.  Beyond
// plain snapshot reads it derives two signals that need memory between
// ticks:
//
//   - campaigns_stalled: how many campaigns on the progress bus are
//     running with trials remaining but whose Done count did not advance
//     since the previous sample — the alert engine's For-duration turns
//     consecutive stalled samples into a campaign-stall alert.
//   - worker_flaps_total/<name>: a per-worker counter incremented on
//     every alive↔dead transition the coordinator observes, so a node
//     whose heartbeat keeps lapsing surfaces as a flap rate instead of a
//     series of isolated staleness blips.
type sampleSource struct {
	s *Server

	mu        sync.Mutex
	prevDone  map[string]uint64 // campaign key → Done at previous tick
	prevAlive map[string]bool   // worker name → alive at previous tick
	flaps     map[string]uint64 // worker name → transition count
}

func (s *Server) newSampleSource() telemetry.SampleSource {
	src := &sampleSource{
		s:         s,
		prevDone:  make(map[string]uint64),
		prevAlive: make(map[string]bool),
		flaps:     make(map[string]uint64),
	}
	return src.sample
}

func (ss *sampleSource) sample() telemetry.Samples {
	s := ss.s
	sched := s.session.SchedulerStats()
	engine := s.recorder.Snapshot()
	depth := s.queue.depth()
	saturation := 0.0
	if s.cfg.Queue > 0 {
		saturation = float64(depth) / float64(s.cfg.Queue)
	}
	fiveXX := s.metrics.http5xx()
	if drained := s.metrics.shedDrainTotal(); drained < fiveXX {
		fiveXX -= drained
	} else {
		fiveXX = 0
	}

	gauges := map[string]float64{
		seriesQueueDepth:      float64(depth),
		seriesQueueSaturation: saturation,
		seriesJobsInflight:    float64(s.metrics.inflight.Load()),
		seriesCampaignsRun:    float64(sched.CampaignsRunning),
		seriesCampaignsQueued: float64(sched.CampaignsQueued),
		seriesBudgetInUse:     float64(sched.WorkerBudgetInUse),
		seriesTrialP50:        engine.TrialLatency.Quantile(0.5),
		seriesTrialP99:        engine.TrialLatency.Quantile(0.99),
	}
	counters := map[string]float64{
		seriesTrials: float64(engine.TrialsTotal()),
		seriesSheds:  float64(s.metrics.rejected.Load()),
		series5xx:    float64(fiveXX),
	}

	ss.mu.Lock()
	defer ss.mu.Unlock()

	// Campaign stall: a running campaign whose Done froze between ticks.
	stalled := 0
	seen := make(map[string]bool)
	for _, ev := range s.progress.Latest() {
		if ev.Kind != telemetry.KindCampaign {
			continue
		}
		seen[ev.Key] = true
		if ev.State == telemetry.StateRunning && ev.Done < ev.Total {
			if prev, ok := ss.prevDone[ev.Key]; ok && prev == ev.Done {
				stalled++
			}
		}
		ss.prevDone[ev.Key] = ev.Done
	}
	for key := range ss.prevDone {
		if !seen[key] {
			delete(ss.prevDone, key)
		}
	}
	gauges[seriesCampaignsStall] = float64(stalled)

	if s.cfg.DistPool != nil {
		st := s.cfg.DistPool.Stats()
		gauges[seriesFleetAlive] = float64(st.WorkersAlive)
		gauges[seriesFleetKnown] = float64(st.WorkersKnown)
		counters[seriesRequeues] = float64(st.ShardsRequeued)
		counters[seriesHeartbeats] = float64(st.Heartbeats)
		roster := make(map[string]bool)
		for _, wi := range s.cfg.DistPool.Workers() {
			roster[wi.Name] = true
			gauges[seriesWorkerHBAge+wi.Name] = float64(wi.LastSeenMS) / 1000
			if prev, ok := ss.prevAlive[wi.Name]; ok && prev != wi.Alive {
				ss.flaps[wi.Name]++
			}
			ss.prevAlive[wi.Name] = wi.Alive
			counters[seriesWorkerFlaps+wi.Name] = float64(ss.flaps[wi.Name])
		}
		// Retired workers drop out of the derived series too.
		for name := range ss.prevAlive {
			if !roster[name] {
				delete(ss.prevAlive, name)
				delete(ss.flaps, name)
			}
		}
	}
	return telemetry.Samples{Gauges: gauges, Counters: counters}
}

// handleSeries is GET /v1/series: the retained time-series query
// surface (no name lists series and windows; with ?name=&since=&max=
// it returns downsampled points).
func (s *Server) handleSeries(w http.ResponseWriter, r *http.Request) {
	telemetry.ServeSeries(s.series, w, r)
}

// handleServerEvents is GET /v1/events: the server-wide progress bus as
// one Server-Sent Events stream — every campaign/prediction snapshot
// and every alert transition, replayed-then-live.  Unlike the per-job
// stream it has no terminal event; it runs until the client hangs up.
func (s *Server) handleServerEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	sub := s.progress.Subscribe(256)
	defer sub.Close()

	ticker := time.NewTicker(s.cfg.HeartbeatEvery)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.quit:
			return
		case <-ticker.C:
			if _, err := fmt.Fprint(w, ": heartbeat\n\n"); err != nil {
				return
			}
			fl.Flush()
		case ev := <-sub.Events():
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "event: progress\ndata: %s\n\n", data); err != nil {
				return
			}
			fl.Flush()
		}
	}
}
