package server

import (
	"fmt"
	"sync"
)

// Job priorities.  The queue dequeues strictly by priority (FIFO within
// one level), so a high-priority arrival preempts every *queued*
// lower-priority job — running jobs are never interrupted, preserving
// the determinism and cache contracts of the engine underneath.
const (
	PrioLow    = 0
	PrioNormal = 1
	PrioHigh   = 2
)

// priorityNames maps wire values ("priority" on POST /v1/predictions)
// to queue levels.  The empty string is normal: requests that never
// heard of priorities behave exactly as before.
var priorityNames = map[string]int{
	"":       PrioNormal,
	"low":    PrioLow,
	"normal": PrioNormal,
	"high":   PrioHigh,
}

// parsePriority maps the request field to a queue level.
func parsePriority(s string) (int, error) {
	p, ok := priorityNames[s]
	if !ok {
		return 0, fmt.Errorf(`unknown priority %q (want "low", "normal" or "high")`, s)
	}
	return p, nil
}

// priorityName renders a queue level back to its wire value.
func priorityName(p int) string {
	switch p {
	case PrioLow:
		return "low"
	case PrioHigh:
		return "high"
	default:
		return "normal"
	}
}

// tenantRing is one priority level's storage: a FIFO per tenant plus a
// round-robin ring over the tenants that currently have queued jobs.
// Dequeueing rotates across tenants, so one tenant's burst of N jobs
// can no longer monopolize a level — other tenants' work interleaves —
// while each tenant's own jobs still start in submission order.
type tenantRing struct {
	queues map[string][]*job
	order  []string // tenants with queued jobs, in ring order
	next   int      // ring cursor: the tenant whose turn is next
	size   int
}

// push appends the job to its tenant's FIFO, adding the tenant at the
// end of the ring when it had nothing queued (existing tenants keep
// their places, so a rejoining tenant waits a full rotation).
func (r *tenantRing) push(j *job) {
	if r.queues == nil {
		r.queues = make(map[string][]*job)
	}
	q := r.queues[j.tenant]
	if len(q) == 0 {
		r.order = append(r.order, j.tenant)
	}
	r.queues[j.tenant] = append(q, j)
	r.size++
}

// pop removes the head of the cursor tenant's FIFO and advances the
// ring.  Returns nil when the level is empty.
func (r *tenantRing) pop() *job {
	if r.size == 0 {
		return nil
	}
	if r.next >= len(r.order) {
		r.next = 0
	}
	t := r.order[r.next]
	q := r.queues[t]
	j := q[0]
	q[0] = nil
	q = q[1:]
	r.size--
	if len(q) == 0 {
		delete(r.queues, t)
		r.order = append(r.order[:r.next], r.order[r.next+1:]...)
	} else {
		r.queues[t] = q
		r.next++
	}
	if r.next >= len(r.order) {
		r.next = 0
	}
	return j
}

// remove unlinks a specific queued job (promotion), preserving the
// ring positions of everyone else.
func (r *tenantRing) remove(j *job) bool {
	q := r.queues[j.tenant]
	for i, x := range q {
		if x != j {
			continue
		}
		copy(q[i:], q[i+1:])
		q[len(q)-1] = nil
		q = q[:len(q)-1]
		r.size--
		if len(q) == 0 {
			delete(r.queues, j.tenant)
			for k, t := range r.order {
				if t == j.tenant {
					r.order = append(r.order[:k], r.order[k+1:]...)
					if r.next > k {
						r.next--
					}
					break
				}
			}
			if r.next >= len(r.order) {
				r.next = 0
			}
		} else {
			r.queues[j.tenant] = q
		}
		return true
	}
	return false
}

// jobQueue is the scheduler's bounded priority queue: three levels
// under one lock, with a condition variable waking idle workers.
// Dequeue order is strictly by priority; *within* a level, tenants
// round-robin (FIFO per tenant) so no tenant's burst starves another
// at the same priority.  A queued job can still be promoted in place
// when a duplicate submission arrives with a higher priority.
type jobQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	cap    int
	closed bool
	levels [3]tenantRing
}

func newJobQueue(capacity int) *jobQueue {
	q := &jobQueue{cap: capacity}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues a job at the given priority.  It fails when the queue is
// saturated (the caller sheds with 429) or closed (the caller answers
// 503: the server is draining).
func (q *jobQueue) push(j *job, prio int) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || q.depthLocked() >= q.cap {
		return false
	}
	q.levels[prio].push(j)
	q.cond.Signal()
	return true
}

// pop blocks until a job is available and returns one from the highest
// non-empty priority level (round-robin across tenants within it).  ok
// is false once the queue is closed — immediately, even with jobs still
// queued, because a draining server must stop starting new work (Close
// cancels the leftovers via drain).
func (q *jobQueue) pop() (j *job, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.closed {
			return nil, false
		}
		for lvl := PrioHigh; lvl >= PrioLow; lvl-- {
			if j := q.levels[lvl].pop(); j != nil {
				return j, true
			}
		}
		q.cond.Wait()
	}
}

// promote moves a queued job to a higher priority level, returning
// whether it was found still queued.  Already-running (or finished)
// jobs are left alone — preemption never touches running work.
func (q *jobQueue) promote(j *job, prio int) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for lvl := PrioLow; lvl < prio; lvl++ {
		if q.levels[lvl].remove(j) {
			q.levels[prio].push(j)
			return true
		}
	}
	return false
}

// close wakes every blocked pop with ok=false.  Queued jobs stay in
// place for drain to collect.
func (q *jobQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// drain removes and returns everything still queued (any priority), in
// the order pop would have served it.
func (q *jobQueue) drain() []*job {
	q.mu.Lock()
	defer q.mu.Unlock()
	var out []*job
	for lvl := PrioHigh; lvl >= PrioLow; lvl-- {
		for {
			j := q.levels[lvl].pop()
			if j == nil {
				break
			}
			out = append(out, j)
		}
	}
	return out
}

// depth is the number of queued jobs across all priorities.
func (q *jobQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.depthLocked()
}

func (q *jobQueue) depthLocked() int {
	return q.levels[PrioLow].size + q.levels[PrioNormal].size + q.levels[PrioHigh].size
}
