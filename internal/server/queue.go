package server

import (
	"fmt"
	"sync"
)

// Job priorities.  The queue dequeues strictly by priority (FIFO within
// one level), so a high-priority arrival preempts every *queued*
// lower-priority job — running jobs are never interrupted, preserving
// the determinism and cache contracts of the engine underneath.
const (
	PrioLow    = 0
	PrioNormal = 1
	PrioHigh   = 2
)

// priorityNames maps wire values ("priority" on POST /v1/predictions)
// to queue levels.  The empty string is normal: requests that never
// heard of priorities behave exactly as before.
var priorityNames = map[string]int{
	"":       PrioNormal,
	"low":    PrioLow,
	"normal": PrioNormal,
	"high":   PrioHigh,
}

// parsePriority maps the request field to a queue level.
func parsePriority(s string) (int, error) {
	p, ok := priorityNames[s]
	if !ok {
		return 0, fmt.Errorf(`unknown priority %q (want "low", "normal" or "high")`, s)
	}
	return p, nil
}

// priorityName renders a queue level back to its wire value.
func priorityName(p int) string {
	switch p {
	case PrioLow:
		return "low"
	case PrioHigh:
		return "high"
	default:
		return "normal"
	}
}

// jobQueue is the scheduler's bounded priority queue: three FIFO levels
// under one lock, with a condition variable waking idle workers.  It
// replaces the former plain channel so that (a) dequeue order honors
// priority and (b) a queued job can be promoted in place when a
// duplicate submission arrives with a higher priority.
type jobQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	cap    int
	closed bool
	levels [3][]*job
}

func newJobQueue(capacity int) *jobQueue {
	q := &jobQueue{cap: capacity}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues a job at the given priority.  It fails when the queue is
// saturated (the caller sheds with 429) or closed (the caller answers
// 503: the server is draining).
func (q *jobQueue) push(j *job, prio int) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || q.depthLocked() >= q.cap {
		return false
	}
	q.levels[prio] = append(q.levels[prio], j)
	q.cond.Signal()
	return true
}

// pop blocks until a job is available and returns the highest-priority
// one (FIFO within a level).  ok is false once the queue is closed —
// immediately, even with jobs still queued, because a draining server
// must stop starting new work (Close cancels the leftovers via drain).
func (q *jobQueue) pop() (j *job, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.closed {
			return nil, false
		}
		for lvl := PrioHigh; lvl >= PrioLow; lvl-- {
			if len(q.levels[lvl]) > 0 {
				j := q.levels[lvl][0]
				q.levels[lvl][0] = nil
				q.levels[lvl] = q.levels[lvl][1:]
				return j, true
			}
		}
		q.cond.Wait()
	}
}

// promote moves a queued job to a higher priority level, returning
// whether it was found still queued.  Already-running (or finished)
// jobs are left alone — preemption never touches running work.
func (q *jobQueue) promote(j *job, prio int) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for lvl := PrioLow; lvl < prio; lvl++ {
		for i, x := range q.levels[lvl] {
			if x == j {
				q.levels[lvl] = append(q.levels[lvl][:i], q.levels[lvl][i+1:]...)
				q.levels[prio] = append(q.levels[prio], j)
				return true
			}
		}
	}
	return false
}

// close wakes every blocked pop with ok=false.  Queued jobs stay in
// place for drain to collect.
func (q *jobQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// drain removes and returns everything still queued (any priority).
func (q *jobQueue) drain() []*job {
	q.mu.Lock()
	defer q.mu.Unlock()
	var out []*job
	for lvl := PrioHigh; lvl >= PrioLow; lvl-- {
		out = append(out, q.levels[lvl]...)
		q.levels[lvl] = nil
	}
	return out
}

// depth is the number of queued jobs across all priorities.
func (q *jobQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.depthLocked()
}

func (q *jobQueue) depthLocked() int {
	return len(q.levels[PrioLow]) + len(q.levels[PrioNormal]) + len(q.levels[PrioHigh])
}
