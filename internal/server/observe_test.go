package server

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"resmod/internal/dist"
	"resmod/internal/exper"
	"resmod/internal/telemetry"
)

// newObsServer boots a service sampling aggressively so retention and
// alerting tests run in milliseconds instead of the production 10s.
func newObsServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Trials == 0 {
		cfg.Trials = 5
	}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	if cfg.Workers == 0 {
		cfg.Workers = 1
	}
	if cfg.Queue == 0 {
		cfg.Queue = 8
	}
	srv := New(cfg)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Close(ctx)
	})
	return srv, hs
}

// getAlerts fetches and decodes /v1/alerts.
func getAlerts(t *testing.T, base string) alertsResponse {
	t.Helper()
	resp, err := http.Get(base + "/v1/alerts")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/alerts = %d", resp.StatusCode)
	}
	var ar alertsResponse
	if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
		t.Fatal(err)
	}
	return ar
}

// alertState finds one rule instance's state in /v1/alerts ("" if absent).
func alertState(ar alertsResponse, rule, instance string) string {
	for _, a := range ar.Alerts {
		if a.Rule == rule && a.Instance == instance {
			return a.State
		}
	}
	return ""
}

// TestObservabilitySurfaces: the retention query endpoint, the alert
// endpoint, the dashboard, and the alert metric families all answer on
// a freshly sampled server.
func TestObservabilitySurfaces(t *testing.T) {
	_, hs := newObsServer(t, Config{SampleEvery: 5 * time.Millisecond})

	// The sampler seeds immediately and ticks every 5ms; wait until the
	// queue-depth gauge has retained points.
	deadline := time.Now().Add(10 * time.Second)
	var sr telemetry.SeriesResponse
	for {
		resp, err := http.Get(hs.URL + "/v1/series?name=queue_depth")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/series?name= = %d", resp.StatusCode)
		}
		err = json.NewDecoder(resp.Body).Decode(&sr)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(sr.Points) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("queue_depth series never accumulated points")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if sr.Name != "queue_depth" {
		t.Fatalf("series name = %q", sr.Name)
	}

	// Bare endpoint: the index of names and windows.
	resp, err := http.Get(hs.URL + "/v1/series")
	if err != nil {
		t.Fatal(err)
	}
	var index telemetry.SeriesIndexResponse
	err = json.NewDecoder(resp.Body).Decode(&index)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(index.Series) == 0 || len(index.Windows) == 0 {
		t.Fatalf("series index = %+v", index)
	}

	// Bad query parameters are 400s, not empty 200s.
	for _, q := range []string{"?name=queue_depth&since=bogus", "?name=queue_depth&max=x"} {
		resp, err := http.Get(hs.URL + "/v1/series" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET /v1/series%s = %d, want 400", q, resp.StatusCode)
		}
	}

	// Alerts: the built-in rule set is visible and everything is quiet.
	ar := getAlerts(t, hs.URL)
	if len(ar.Rules) == 0 {
		t.Fatal("alerts response lists no rules")
	}
	if ar.Firing != 0 {
		t.Fatalf("idle server reports %d firing alerts: %+v", ar.Firing, ar.Alerts)
	}
	if st := alertState(ar, "queue-saturation", ""); st != telemetry.AlertInactive {
		t.Fatalf("queue-saturation on an idle server = %q, want inactive", st)
	}

	// Dashboard: one self-contained HTML page.
	resp, err = http.Get(hs.URL + "/debug/dash")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 1<<20)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/dash = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("dashboard Content-Type = %q", ct)
	}
	if !strings.Contains(string(body[:n]), "resmod dash") {
		t.Fatal("dashboard HTML missing its title")
	}

	// Metric families: always present, even with nothing firing.
	text := scrape(t, hs.URL)
	for _, want := range []string{"# TYPE resmod_alerts gauge", "resmod_alerts_firing 0"} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}

// TestCampaignStallAlert: a campaign whose Done count freezes trips the
// campaign-stall rule; when the campaign completes, the alert resolves.
// The campaign is synthetic — events published straight onto the
// server-wide bus — so the test controls exactly when progress freezes.
func TestCampaignStallAlert(t *testing.T) {
	srv, hs := newObsServer(t, Config{SampleEvery: 3 * time.Millisecond})

	srv.progress.Publish(telemetry.ProgressEvent{
		Kind: telemetry.KindCampaign, Key: "cid:v2/frozen",
		State: telemetry.StateRunning, Done: 10, Total: 100,
	})

	deadline := time.Now().Add(30 * time.Second)
	for alertState(getAlerts(t, hs.URL), "campaign-stall", "") != telemetry.AlertFiring {
		if time.Now().After(deadline) {
			t.Fatalf("campaign-stall never fired: %+v", getAlerts(t, hs.URL).Alerts)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Firing is visible on /metrics and as a KindAlert event on the bus.
	text := scrape(t, hs.URL)
	if !strings.Contains(text, `resmod_alerts{rule="campaign-stall",state="firing"} 2`) {
		t.Fatalf("/metrics missing the firing campaign-stall series:\n%s", text)
	}
	sawBusAlert := false
	for _, ev := range srv.progress.Latest() {
		if ev.Kind == telemetry.KindAlert && ev.Key == "campaign-stall" {
			sawBusAlert = true
		}
	}
	if !sawBusAlert {
		t.Fatal("no campaign-stall alert event on the progress bus")
	}

	// The campaign finishes: the stall gauge drops and the alert resolves.
	srv.progress.Publish(telemetry.ProgressEvent{
		Kind: telemetry.KindCampaign, Key: "cid:v2/frozen",
		State: telemetry.StateDone, Done: 100, Total: 100,
	})
	for alertState(getAlerts(t, hs.URL), "campaign-stall", "") != telemetry.AlertResolved {
		if time.Now().After(deadline) {
			t.Fatalf("campaign-stall never resolved: %+v", getAlerts(t, hs.URL).Alerts)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !strings.Contains(scrape(t, hs.URL), `resmod_alerts{rule="campaign-stall",state="resolved"} 3`) {
		t.Fatal("/metrics missing the resolved campaign-stall series")
	}
}

// TestWorkerStaleAlertEndToEnd drives a real firing→resolved incident
// through every surface at once: a registered worker goes silent, the
// per-instance worker-stale alert fires (visible on /v1/alerts, the
// /v1/events SSE stream, and /metrics), and resuming heartbeats
// resolves it.
func TestWorkerStaleAlertEndToEnd(t *testing.T) {
	// RetireAfter stays long so the silent worker remains rostered (and
	// alerting) instead of being retired out of the fleet mid-test.
	pool := dist.NewPool(dist.PoolConfig{
		HeartbeatTimeout: 20 * time.Millisecond,
		RetireAfter:      time.Minute,
	})
	rules := []telemetry.Rule{{
		Name: "worker-stale", Series: "worker_heartbeat_age_seconds/*",
		Threshold: 0.15, For: 20 * time.Millisecond,
		Help: "test-scaled stale-worker rule",
	}}
	srv, hs := newObsServer(t, Config{
		SampleEvery:    5 * time.Millisecond,
		HeartbeatEvery: 20 * time.Millisecond,
		DistPool:       pool,
		AlertRules:     rules,
	})
	_ = srv

	// Watch the server-wide SSE stream for alert transitions.
	sseCtx, sseCancel := context.WithCancel(context.Background())
	defer sseCancel()
	req, err := http.NewRequestWithContext(sseCtx, http.MethodGet, hs.URL+"/v1/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/events = %d", resp.StatusCode)
	}
	var sseMu sync.Mutex
	var sseData strings.Builder
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			sseMu.Lock()
			sseData.WriteString(sc.Text())
			sseData.WriteByte('\n')
			sseMu.Unlock()
		}
	}()
	sseSaw := func(substr string) bool {
		sseMu.Lock()
		defer sseMu.Unlock()
		return strings.Contains(sseData.String(), substr)
	}

	// A worker registers, heartbeats once, then goes silent.
	id := pool.Register("w1", "http://127.0.0.1:1")
	pool.Heartbeat(id, nil)

	deadline := time.Now().Add(30 * time.Second)
	for alertState(getAlerts(t, hs.URL), "worker-stale", "w1") != telemetry.AlertFiring {
		if time.Now().After(deadline) {
			t.Fatalf("worker-stale/w1 never fired: %+v", getAlerts(t, hs.URL).Alerts)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !strings.Contains(scrape(t, hs.URL),
		`resmod_alerts{rule="worker-stale",instance="w1",state="firing"} 2`) {
		t.Fatal("/metrics missing the firing worker-stale series")
	}

	// The worker comes back: heartbeats resume until the alert resolves.
	for alertState(getAlerts(t, hs.URL), "worker-stale", "w1") != telemetry.AlertResolved {
		pool.Heartbeat(id, nil)
		if time.Now().After(deadline) {
			t.Fatalf("worker-stale/w1 never resolved: %+v", getAlerts(t, hs.URL).Alerts)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The SSE stream carried both transitions as KindAlert events.
	for _, want := range []string{`"kind":"alert"`, `"key":"worker-stale/w1"`, `"state":"resolved"`} {
		for !sseSaw(want) {
			if time.Now().After(deadline) {
				sseMu.Lock()
				t.Fatalf("SSE stream missing %q:\n%s", want, sseData.String())
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// TestDeterminismWithObservability: a prediction computed under
// aggressive sampling, alerting, and dashboard polling is byte-identical
// to one computed by a bare session — the observability layer observes,
// it never steers.
func TestDeterminismWithObservability(t *testing.T) {
	_, hs := newObsServer(t, Config{
		Trials: 10, Seed: 42, Workers: 2, Queue: 8,
		SampleEvery: time.Millisecond, // ~1000 samples/s while computing
	})

	// Poll the operator surfaces concurrently, like an open dashboard.
	pollCtx, pollCancel := context.WithCancel(context.Background())
	defer pollCancel()
	go func() {
		for pollCtx.Err() == nil {
			for _, p := range []string{"/v1/alerts", "/v1/series?name=trials_total", "/debug/dash"} {
				if resp, err := http.Get(hs.URL + p); err == nil {
					resp.Body.Close()
				}
			}
		}
	}()

	code, v := postJSON(t, hs.URL+"/v1/predictions", predBody)
	if code != http.StatusAccepted {
		t.Fatalf("submit returned %d: %v", code, v)
	}
	done := pollDone(t, hs.URL, v["id"].(string))
	pollCancel()
	resJSON, err := json.Marshal(done["result"])
	if err != nil {
		t.Fatal(err)
	}
	var got exper.PredictionRow
	if err := json.Unmarshal(resJSON, &got); err != nil {
		t.Fatal(err)
	}

	bare := exper.NewSession(exper.Config{Trials: 10, Seed: 42})
	want, err := exper.PredictOne(bare, "PENNANT", "", 4, 8)
	if err != nil {
		t.Fatal(err)
	}

	// Wall times legitimately differ; everything else must not.
	got.SmallTime, got.SerialTime = 0, 0
	cmp := *want
	cmp.SmallTime, cmp.SerialTime = 0, 0
	if !reflect.DeepEqual(got, cmp) {
		t.Fatalf("observed run diverged from bare session:\n got %+v\nwant %+v", got, cmp)
	}
}
