package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// newHardenedServer boots a service with the given tenancy config.
func newHardenedServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Close(ctx)
	})
	return srv, hs
}

// ---- token bucket / quota unit tests --------------------------------------

// TestTokenBucket drives the rate limiter with a fake clock: burst
// admits, then refusal with an honest wait, then refill admits again.
func TestTokenBucket(t *testing.T) {
	tn := newTenants(nil, TenantLimits{}, TenantLimits{Rate: 2, Burst: 2})
	now := time.Unix(1000, 0)
	tn.now = func() time.Time { return now }

	for i := 0; i < 2; i++ {
		if ok, _ := tn.allow(AnonTenant); !ok {
			t.Fatalf("burst request %d refused", i)
		}
	}
	ok, wait := tn.allow(AnonTenant)
	if ok {
		t.Fatal("third request admitted past burst")
	}
	if wait <= 0 || wait > time.Second {
		t.Fatalf("retry hint %v, want (0, 500ms]-ish at rate 2/s", wait)
	}
	now = now.Add(time.Second) // refills 2 tokens
	if ok, _ := tn.allow(AnonTenant); !ok {
		t.Fatal("request refused after refill")
	}
}

// TestInflightQuotaUnit checks acquire/release bookkeeping.
func TestInflightQuotaUnit(t *testing.T) {
	tn := newTenants(map[string]string{"k": "alice"},
		TenantLimits{MaxInflight: 2}, TenantLimits{MaxInflight: 1})
	if !tn.acquire(AnonTenant) {
		t.Fatal("first anon acquire refused")
	}
	if tn.acquire(AnonTenant) {
		t.Fatal("anon quota of 1 admitted a second job")
	}
	// Tenants are isolated: alice's quota is untouched by anon pressure.
	if !tn.acquire("alice") || !tn.acquire("alice") {
		t.Fatal("alice refused within her quota")
	}
	if tn.acquire("alice") {
		t.Fatal("alice admitted past her quota")
	}
	tn.release(AnonTenant)
	if !tn.acquire(AnonTenant) {
		t.Fatal("anon refused after release")
	}
}

// TestResolveTenant covers key extraction and the 401 path.
func TestResolveTenant(t *testing.T) {
	tn := newTenants(map[string]string{"sekrit": "alice"}, TenantLimits{}, TenantLimits{})
	mk := func(hdr, val string) *http.Request {
		r := httptest.NewRequest(http.MethodPost, "/v1/predictions", nil)
		if hdr != "" {
			r.Header.Set(hdr, val)
		}
		return r
	}
	if got, ok := tn.resolve(mk("", "")); !ok || got != AnonTenant {
		t.Fatalf("keyless request resolved to %q/%v", got, ok)
	}
	if got, ok := tn.resolve(mk("X-API-Key", "sekrit")); !ok || got != "alice" {
		t.Fatalf("X-API-Key resolved to %q/%v", got, ok)
	}
	if got, ok := tn.resolve(mk("Authorization", "Bearer sekrit")); !ok || got != "alice" {
		t.Fatalf("Bearer resolved to %q/%v", got, ok)
	}
	if _, ok := tn.resolve(mk("X-API-Key", "wrong")); ok {
		t.Fatal("unknown key resolved instead of failing")
	}
}

// TestJitterBounds pins the Retry-After jitter window: 0.75x..1.25x the
// hint, never below one second.
func TestJitterBounds(t *testing.T) {
	tn := newTenants(nil, TenantLimits{}, TenantLimits{})
	for _, r := range []float64{0, 0.5, 0.999999} {
		tn.rng = func() float64 { return r }
		if got := tn.jitterSecs(8 * time.Second); got < 6 || got > 10 {
			t.Fatalf("jitter(8s) with rng=%v = %d, want within [6,10]", r, got)
		}
		if got := tn.jitterSecs(0); got < 1 {
			t.Fatalf("jitter(0) = %d, want >= 1", got)
		}
	}
}

// ---- priority queue unit tests --------------------------------------------

func testJob(id string) *job { return &job{id: id} }

// TestQueueOrdering: strict priority order out, FIFO within a level.
func TestQueueOrdering(t *testing.T) {
	q := newJobQueue(8)
	q.push(testJob("l1"), PrioLow)
	q.push(testJob("n1"), PrioNormal)
	q.push(testJob("h1"), PrioHigh)
	q.push(testJob("n2"), PrioNormal)
	q.push(testJob("h2"), PrioHigh)
	want := []string{"h1", "h2", "n1", "n2", "l1"}
	for _, w := range want {
		j, ok := q.pop()
		if !ok || j.id != w {
			t.Fatalf("pop = %v/%v, want %s", j, ok, w)
		}
	}
}

// TestQueuePromote moves a queued job up; running jobs are not found.
func TestQueuePromote(t *testing.T) {
	q := newJobQueue(8)
	l1, l2 := testJob("l1"), testJob("l2")
	q.push(l1, PrioLow)
	q.push(l2, PrioLow)
	if !q.promote(l2, PrioHigh) {
		t.Fatal("promote did not find the queued job")
	}
	if j, _ := q.pop(); j.id != "l2" {
		t.Fatalf("promoted job not first, got %s", j.id)
	}
	if q.promote(l2, PrioHigh) {
		t.Fatal("promote found a job already popped (running)")
	}
}

// TestQueueFullAndClose: saturation refuses, close wakes pops, drain
// returns leftovers.
func TestQueueFullAndClose(t *testing.T) {
	q := newJobQueue(2)
	if !q.push(testJob("a"), PrioNormal) || !q.push(testJob("b"), PrioLow) {
		t.Fatal("pushes within capacity refused")
	}
	if q.push(testJob("c"), PrioHigh) {
		t.Fatal("push beyond capacity admitted (priority must not bypass the bound)")
	}
	if d := q.depth(); d != 2 {
		t.Fatalf("depth = %d, want 2", d)
	}
	// Closing wins over queued work: a draining server must stop
	// starting jobs, so pop reports ok=false even with depth 2.
	q.close()
	if _, ok := q.pop(); ok {
		t.Error("pop on a closed queue returned a job")
	}
	if got := len(q.drain()); got != 2 {
		t.Fatalf("drain returned %d jobs, want 2", got)
	}
	if q.push(testJob("d"), PrioNormal) {
		t.Fatal("push after close admitted")
	}

	// A pop blocked on an empty queue is woken by close.
	q2 := newJobQueue(1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, ok := q2.pop(); ok {
			t.Error("blocked pop returned a job after close")
		}
	}()
	time.Sleep(10 * time.Millisecond) // let the pop block (best effort)
	q2.close()
	<-done
}

// ---- HTTP admission integration (run under -race in CI) -------------------

// TestRateLimit429 exhausts the anonymous burst and checks the shed
// answer: 429, Retry-After, the per-tenant counter — while a keyed
// tenant sails through untouched.
func TestRateLimit429(t *testing.T) {
	srv, hs := newHardenedServer(t, Config{
		Trials: 10, Seed: 42, Workers: 1, Queue: 8,
		APIKeys:    map[string]string{"sekrit": "alice"},
		AnonLimits: TenantLimits{Rate: 0.0001, Burst: 2},
	})

	bodies := []string{
		`{"app":"PENNANT","small":4,"large":8}`,
		`{"app":"PENNANT","small":2,"large":4}`,
		`{"app":"PENNANT","small":2,"large":8}`,
	}
	for i, b := range bodies[:2] {
		code, _, v := postJSONHeader(t, hs.URL+"/v1/predictions", b, nil)
		if code != http.StatusAccepted {
			t.Fatalf("burst request %d returned %d: %v", i, code, v)
		}
	}
	code, hdr, v := postJSONHeader(t, hs.URL+"/v1/predictions", bodies[2], nil)
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-rate request returned %d (%v), want 429", code, v)
	}
	if ra, err := strconv.Atoi(hdr.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("429 Retry-After = %q, want positive seconds", hdr.Get("Retry-After"))
	}
	if msg, _ := v["error"].(string); !strings.Contains(msg, "rate") {
		t.Fatalf("429 error %q does not mention the rate limit", msg)
	}
	if got := srv.metrics.tenant(AnonTenant).ratelimited.Load(); got != 1 {
		t.Fatalf("anon ratelimited counter = %d, want 1", got)
	}

	// The keyed tenant has its own (unlimited) bucket.
	code, _, v = postJSONHeader(t, hs.URL+"/v1/predictions", bodies[2],
		map[string]string{"X-API-Key": "sekrit"})
	if code != http.StatusAccepted {
		t.Fatalf("keyed request returned %d (%v), want 202", code, v)
	}

	// An unknown key fails loudly instead of demoting to anonymous.
	code, _, _ = postJSONHeader(t, hs.URL+"/v1/predictions", bodies[2],
		map[string]string{"X-API-Key": "wrong"})
	if code != http.StatusUnauthorized {
		t.Fatalf("unknown key returned %d, want 401", code)
	}
	if got := srv.metrics.authFailures.Load(); got != 1 {
		t.Fatalf("auth failure counter = %d, want 1", got)
	}
}

// TestInflightQuota429 pins a tenant at MaxInflight 1: the second
// submission is shed with 429 while the first still occupies the slot,
// and a keyed tenant is unaffected (quota isolation).
func TestInflightQuota429(t *testing.T) {
	srv, hs := newHardenedServer(t, Config{
		Trials: 100, Seed: 42, Workers: 1, Queue: 8,
		APIKeys:    map[string]string{"sekrit": "alice"},
		AnonLimits: TenantLimits{MaxInflight: 1},
	})

	code, _, v := postJSONHeader(t, hs.URL+"/v1/predictions",
		`{"app":"PENNANT","small":4,"large":8}`, nil)
	if code != http.StatusAccepted {
		t.Fatalf("first submit returned %d: %v", code, v)
	}
	id := v["id"].(string)

	code, hdr, v := postJSONHeader(t, hs.URL+"/v1/predictions",
		`{"app":"PENNANT","small":2,"large":8}`, nil)
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit returned %d (%v), want 429", code, v)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("quota 429 without Retry-After")
	}
	if got := srv.metrics.tenant(AnonTenant).shedQuota.Load(); got != 1 {
		t.Fatalf("anon shed-quota counter = %d, want 1", got)
	}

	// alice is not charged for anon's inflight job.
	code, _, v = postJSONHeader(t, hs.URL+"/v1/predictions",
		`{"app":"PENNANT","small":2,"large":4}`, map[string]string{"X-API-Key": "sekrit"})
	if code != http.StatusAccepted {
		t.Fatalf("keyed submit returned %d (%v), want 202", code, v)
	}

	// Once the first job finishes its slot is released and the tenant
	// can submit again.
	pollDone(t, hs.URL, id)
	deadline := time.Now().Add(time.Minute)
	for {
		code, _, v = postJSONHeader(t, hs.URL+"/v1/predictions",
			`{"app":"PENNANT","small":2,"large":8}`, nil)
		if code == http.StatusAccepted || code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("quota slot never released: still %d (%v)", code, v)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestPriorityPreemptsQueued submits (behind a blocker) two low jobs and
// one high job, and asserts the high job started first — queued work is
// preempted by priority, running work is untouched.
func TestPriorityPreemptsQueued(t *testing.T) {
	srv, hs := newHardenedServer(t, Config{Trials: 50, Seed: 42, Workers: 1, Queue: 8})

	submit := func(body string) string {
		code, _, v := postJSONHeader(t, hs.URL+"/v1/predictions", body, nil)
		if code != http.StatusAccepted {
			t.Fatalf("submit %s returned %d: %v", body, code, v)
		}
		return v["id"].(string)
	}
	blocker := submit(`{"app":"PENNANT","small":4,"large":8}`)
	low1 := submit(`{"app":"PENNANT","small":2,"large":8,"priority":"low"}`)
	low2 := submit(`{"app":"PENNANT","small":2,"large":4,"priority":"low"}`)
	high := submit(`{"app":"CG","small":4,"large":8,"priority":"high"}`)

	for _, id := range []string{blocker, low1, low2, high} {
		pollDone(t, hs.URL, id)
	}
	srv.mu.Lock()
	hStart := srv.jobs[high].startedAt()
	l1Start := srv.jobs[low1].startedAt()
	l2Start := srv.jobs[low2].startedAt()
	srv.mu.Unlock()
	if !hStart.Before(l1Start) || !hStart.Before(l2Start) {
		t.Fatalf("high-priority job started %v, after low jobs (%v, %v)",
			hStart, l1Start, l2Start)
	}

	// The response carries the effective priority; default submissions
	// stay unannotated (API compatibility).
	_, v := getJSON(t, hs.URL+"/v1/predictions/"+high)
	if v["priority"] != "high" {
		t.Fatalf("high job view priority = %v", v["priority"])
	}
	if _, present := getJSONField(t, hs.URL+"/v1/predictions/"+blocker, "priority"); present {
		t.Fatal("default-priority job grew a priority field")
	}
}

// getJSONField fetches url and reports whether the top-level field is
// present (and its value).
func getJSONField(t *testing.T, url, field string) (any, bool) {
	t.Helper()
	_, v := getJSON(t, url)
	val, ok := v[field]
	return val, ok
}

// TestJoinPromotesQueued: a high-priority duplicate of a queued low
// job joins it (content addressing) and promotes it past other waiters.
func TestJoinPromotesQueued(t *testing.T) {
	srv, hs := newHardenedServer(t, Config{Trials: 50, Seed: 42, Workers: 1, Queue: 8})

	submit := func(body string, wantCode int) string {
		code, _, v := postJSONHeader(t, hs.URL+"/v1/predictions", body, nil)
		if code != wantCode {
			t.Fatalf("submit %s returned %d (%v), want %d", body, code, v, wantCode)
		}
		return v["id"].(string)
	}
	blocker := submit(`{"app":"PENNANT","small":4,"large":8}`, http.StatusAccepted)
	low1 := submit(`{"app":"PENNANT","small":2,"large":8,"priority":"low"}`, http.StatusAccepted)
	low2 := submit(`{"app":"PENNANT","small":2,"large":4,"priority":"low"}`, http.StatusAccepted)
	// Duplicate of low2 at high priority: joins, does not double-create.
	joined := submit(`{"app":"PENNANT","small":2,"large":4,"priority":"high"}`, http.StatusOK)
	if joined != low2 {
		t.Fatalf("duplicate created a new job %s != %s", joined, low2)
	}
	if got := srv.metrics.submitted.Load(); got != 3 {
		t.Fatalf("submitted = %d, want 3 (join must not re-enqueue)", got)
	}

	for _, id := range []string{blocker, low1, low2} {
		pollDone(t, hs.URL, id)
	}
	srv.mu.Lock()
	l1Start := srv.jobs[low1].startedAt()
	l2Start := srv.jobs[low2].startedAt()
	srv.mu.Unlock()
	if !l2Start.Before(l1Start) {
		t.Fatalf("promoted job started %v, after unpromoted low job %v", l2Start, l1Start)
	}
	_, v := getJSON(t, hs.URL+"/v1/predictions/"+low2)
	if v["priority"] != "high" {
		t.Fatalf("promoted job view priority = %v, want high", v["priority"])
	}
}

// TestDrainSheds503 verifies the drain contract: while Close waits for
// in-flight work, new submissions get 503 (try another instance) — not
// the 429 used for per-tenant overload — with a Retry-After hint.
func TestDrainSheds503(t *testing.T) {
	srv := New(Config{Trials: 200, Seed: 42, Workers: 1, Queue: 8})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	code, _, v := postJSONHeader(t, hs.URL+"/v1/predictions",
		`{"app":"PENNANT","small":4,"large":8}`, nil)
	if code != http.StatusAccepted {
		t.Fatalf("submit returned %d: %v", code, v)
	}

	closed := make(chan error, 1)
	go func() { closed <- srv.Close(context.Background()) }()

	// Close flips the draining flag synchronously before waiting; poll
	// until a submission observes it.
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, hdr, v := postJSONHeader(t, hs.URL+"/v1/predictions",
			`{"app":"PENNANT","small":2,"large":8}`, nil)
		if code == http.StatusServiceUnavailable {
			if msg, _ := v["error"].(string); !strings.Contains(msg, "draining") {
				t.Fatalf("503 error %q does not say draining", msg)
			}
			if hdr.Get("Retry-After") == "" {
				t.Fatal("drain 503 without Retry-After")
			}
			break
		}
		if code == http.StatusTooManyRequests {
			t.Fatal("draining server shed with 429; drain must be 503")
		}
		if time.Now().After(deadline) {
			t.Fatalf("never saw a drain 503 (last code %d)", code)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := <-closed; err != nil {
		t.Fatalf("drain errored: %v", err)
	}
	if got := srv.metrics.tenant(AnonTenant).shedDrain.Load(); got == 0 {
		t.Fatal("shed-drain counter never advanced")
	}
}

// TestTenantMetricFamilies drives one admitted job and one shed request,
// then asserts every per-tenant family appears in /metrics with the
// right tenant labels.
func TestTenantMetricFamilies(t *testing.T) {
	_, hs := newHardenedServer(t, Config{
		Trials: 10, Seed: 42, Workers: 1, Queue: 8,
		AnonLimits: TenantLimits{Rate: 0.0001, Burst: 1},
	})
	code, _, v := postJSONHeader(t, hs.URL+"/v1/predictions",
		`{"app":"PENNANT","small":4,"large":8}`, nil)
	if code != http.StatusAccepted {
		t.Fatalf("submit returned %d: %v", code, v)
	}
	id := v["id"].(string)
	if code, _, _ = postJSONHeader(t, hs.URL+"/v1/predictions",
		`{"app":"PENNANT","small":2,"large":8}`, nil); code != http.StatusTooManyRequests {
		t.Fatalf("second submit returned %d, want 429", code)
	}
	pollDone(t, hs.URL, id)

	// The quota slot is released moments after the job turns done (the
	// worker's deferred release); scrape until the gauge settles.
	var text string
	deadline := time.Now().Add(10 * time.Second)
	for {
		text = scrape(t, hs.URL)
		if strings.Contains(text, `resmod_tenant_inflight{tenant="anon"} 0`) ||
			time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, want := range []string{
		`resmod_tenant_admitted_total{tenant="anon"} 1`,
		`resmod_tenant_ratelimited_total{tenant="anon"} 1`,
		`resmod_tenant_shed_total{tenant="anon",reason="quota"} 0`,
		`resmod_tenant_shed_total{tenant="anon",reason="queue"} 0`,
		`resmod_tenant_shed_total{tenant="anon",reason="drain"} 0`,
		`resmod_tenant_queued{tenant="anon"} 0`,
		`resmod_tenant_inflight{tenant="anon"} 0`,
		`resmod_queue_wait_seconds_count{tenant="anon"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("metrics:\n%s", text)
	}
}

// TestBadPriority is the 400 path for the new field.
func TestBadPriority(t *testing.T) {
	_, hs := newHardenedServer(t, Config{Trials: 10, Seed: 42, Workers: 1, Queue: 4})
	code, _, v := postJSONHeader(t, hs.URL+"/v1/predictions",
		`{"app":"PENNANT","small":4,"large":8,"priority":"urgent"}`, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("bad priority returned %d (%v), want 400", code, v)
	}
}

// ---- per-tenant fair scheduling within a level ----------------------------

func tenantJob(id, tenant string) *job { return &job{id: id, tenant: tenant} }

// TestQueueTenantFairness: within one priority level tenants round-robin,
// so a tenant's burst cannot monopolize the level; each tenant's own jobs
// still pop in submission order.
func TestQueueTenantFairness(t *testing.T) {
	q := newJobQueue(16)
	// Tenant a bursts four jobs before b and c submit two each.
	q.push(tenantJob("a1", "a"), PrioNormal)
	q.push(tenantJob("a2", "a"), PrioNormal)
	q.push(tenantJob("a3", "a"), PrioNormal)
	q.push(tenantJob("a4", "a"), PrioNormal)
	q.push(tenantJob("b1", "b"), PrioNormal)
	q.push(tenantJob("c1", "c"), PrioNormal)
	q.push(tenantJob("b2", "b"), PrioNormal)
	q.push(tenantJob("c2", "c"), PrioNormal)
	want := []string{"a1", "b1", "c1", "a2", "b2", "c2", "a3", "a4"}
	for _, w := range want {
		j, ok := q.pop()
		if !ok || j.id != w {
			t.Fatalf("pop = %v/%v, want %s", j, ok, w)
		}
	}
}

// TestQueueTenantFairnessAcrossLevels: priority still dominates; the
// ring only interleaves within one level, and promotion re-ranks a job
// into the target level's ring.
func TestQueueTenantFairnessAcrossLevels(t *testing.T) {
	q := newJobQueue(16)
	q.push(tenantJob("bl1", "b"), PrioLow)
	q.push(tenantJob("an1", "a"), PrioNormal)
	q.push(tenantJob("an2", "a"), PrioNormal)
	bl2 := tenantJob("bl2", "b")
	q.push(bl2, PrioLow)
	q.push(tenantJob("ah1", "a"), PrioHigh)
	if !q.promote(bl2, PrioHigh) {
		t.Fatal("promote did not find the queued low job")
	}
	// High: a then b (ring order of arrival into the level); normal next;
	// the remaining low job last.
	want := []string{"ah1", "bl2", "an1", "an2", "bl1"}
	for _, w := range want {
		j, ok := q.pop()
		if !ok || j.id != w {
			t.Fatalf("pop = %v/%v, want %s", j, ok, w)
		}
	}
	if d := q.depth(); d != 0 {
		t.Fatalf("depth = %d after draining pops, want 0", d)
	}
}
