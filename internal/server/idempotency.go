package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"

	"resmod/internal/store"
)

// IdempotencyKeyHeader is the client-supplied retry token on
// POST /v1/predictions.  A retried request carrying the same key replays
// the original response — status, body, job id — instead of being
// admitted again, which is the server-side half of the classic
// retry-with-backoff client pattern: clients may retry as hard as they
// like without ever duplicating work or observing a second job id.
//
// This composes with (rather than replaces) content-addressed job dedup:
// content addressing collapses *identical payloads* onto one job, while
// the idempotency key pins *one logical client request* — whatever its
// payload — to the exact response it first produced, even across a
// server restart (records persist in the result store).
const IdempotencyKeyHeader = "Idempotency-Key"

// IdempotencyReplayHeader marks a response served from an idempotency
// record rather than freshly computed admission.
const IdempotencyReplayHeader = "Idempotency-Replay"

// idemVersion versions the stored record schema.
const idemVersion = 1

// idemRecord is the durable memo of one keyed submission's original
// response.  Only successful admissions (2xx) are recorded: a shed (429)
// or draining (503) answer must stay retryable under the same key.
type idemRecord struct {
	Version     int               `json:"version"`
	Tenant      string            `json:"tenant"`
	Key         string            `json:"key"`
	RequestHash string            `json:"request_hash"`
	Request     PredictionRequest `json:"request"`
	Status      int               `json:"status"`
	Body        json.RawMessage   `json:"body"`
	JobID       string            `json:"job_id"`
}

// idemIndex answers Idempotency-Key lookups from memory first and the
// durable store second (so replays survive restarts).  Keys are scoped
// per tenant: two tenants reusing the same key string never collide.
type idemIndex struct {
	store *store.Store // nil: memory only

	mu  sync.Mutex
	mem map[string]idemRecord
}

func newIdemIndex(st *store.Store) *idemIndex {
	return &idemIndex{store: st, mem: make(map[string]idemRecord)}
}

// storeKey is the result-store address of one (tenant, key) record.  The
// client key is hashed so arbitrarily long or hostile keys cost O(1).
func idemStoreKey(tenant, key string) string {
	h := sha256.Sum256([]byte(key))
	return fmt.Sprintf("idem:v%d/%s/%s", idemVersion, tenant, hex.EncodeToString(h[:]))
}

// requestHash fingerprints the normalized request so a key reused with a
// different payload is detected as a conflict instead of replaying an
// unrelated response.
func requestHash(req PredictionRequest) string {
	b, err := json.Marshal(req)
	if err != nil {
		return "unhashable"
	}
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:])
}

// lookup finds a prior record for (tenant, key).
func (ix *idemIndex) lookup(tenant, key string) (idemRecord, bool) {
	memKey := tenant + "\x00" + key
	ix.mu.Lock()
	rec, ok := ix.mem[memKey]
	ix.mu.Unlock()
	if ok {
		return rec, true
	}
	if ix.store == nil {
		return idemRecord{}, false
	}
	if !ix.store.GetJSON(idemStoreKey(tenant, key), &rec) {
		return idemRecord{}, false
	}
	if rec.Version != idemVersion || rec.Tenant != tenant {
		return idemRecord{}, false
	}
	// The store round-trip compacts the embedded RawMessage; restore the
	// writeJSON indentation so a replay is byte-identical to the original
	// response even across a restart.
	var buf bytes.Buffer
	if json.Indent(&buf, rec.Body, "", "  ") == nil {
		buf.WriteByte('\n')
		rec.Body = buf.Bytes()
	}
	ix.mu.Lock()
	ix.mem[memKey] = rec
	ix.mu.Unlock()
	return rec, true
}

// record memoizes a successful admission's response (best effort on the
// durable half: a store write failure only costs replay-across-restart).
func (ix *idemIndex) record(rec idemRecord) {
	rec.Version = idemVersion
	ix.mu.Lock()
	ix.mem[rec.Tenant+"\x00"+rec.Key] = rec
	ix.mu.Unlock()
	if ix.store != nil {
		_ = ix.store.PutJSON(idemStoreKey(rec.Tenant, rec.Key), rec)
	}
}
