package server

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"resmod/internal/store"
)

const idemBody = `{"app":"PENNANT","small":4,"large":8}`

// postRaw POSTs body with headers and returns the raw response body.
func postRaw(t *testing.T, url, body string, hdr map[string]string) string {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestIdempotentReplay: a retried POST with the same Idempotency-Key
// replays the original response — status, body, job id — and never
// enqueues a second job.
func TestIdempotentReplay(t *testing.T) {
	st, err := store.Open(store.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	srv, hs := newTestServer(t, st, 1, 8)

	hdr := map[string]string{IdempotencyKeyHeader: "retry-abc"}
	code, _, v := postJSONHeader(t, hs.URL+"/v1/predictions", idemBody, hdr)
	if code != http.StatusAccepted {
		t.Fatalf("first submit returned %d: %v", code, v)
	}
	id := v["id"].(string)

	code, rh, v2 := postJSONHeader(t, hs.URL+"/v1/predictions", idemBody, hdr)
	if code != http.StatusAccepted {
		t.Fatalf("replay returned %d, want the original 202", code)
	}
	if rh.Get(IdempotencyReplayHeader) != "true" {
		t.Fatal("replay not flagged with Idempotency-Replay: true")
	}
	if v2["id"] != id {
		t.Fatalf("replay job id %v != original %v", v2["id"], id)
	}
	// The body is the original snapshot, even if the job advanced since.
	if v2["status"] != StatusQueued {
		t.Fatalf("replayed status %v, want the original %q", v2["status"], StatusQueued)
	}
	if got := srv.metrics.submitted.Load(); got != 1 {
		t.Fatalf("submitted = %d after replay, want 1", got)
	}
	if got := srv.metrics.idemReplays.Load(); got != 1 {
		t.Fatalf("idempotent replay counter = %d, want 1", got)
	}
	pollDone(t, hs.URL, id)
}

// TestIdempotencyConflict: reusing a key with a different payload is a
// client bug answered with 409, never a silent replay of the wrong job.
func TestIdempotencyConflict(t *testing.T) {
	srv, hs := newTestServer(t, nil, 1, 8)
	hdr := map[string]string{IdempotencyKeyHeader: "retry-abc"}
	code, _, v := postJSONHeader(t, hs.URL+"/v1/predictions", idemBody, hdr)
	if code != http.StatusAccepted {
		t.Fatalf("first submit returned %d: %v", code, v)
	}
	code, _, v = postJSONHeader(t, hs.URL+"/v1/predictions",
		`{"app":"PENNANT","small":2,"large":8}`, hdr)
	if code != http.StatusConflict {
		t.Fatalf("conflicting reuse returned %d (%v), want 409", code, v)
	}
	if got := srv.metrics.idemConflicts.Load(); got != 1 {
		t.Fatalf("conflict counter = %d, want 1", got)
	}
}

// TestIdempotencyAcrossRestart: the record persists in the store, so a
// retried POST against a freshly restarted process still replays the
// original response with the same job id — and the materialized job is
// pollable without recomputing anything.
func TestIdempotencyAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	st1, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	_, hs1 := newTestServer(t, st1, 1, 8)
	hdr := map[string]string{IdempotencyKeyHeader: "retry-restart"}
	code, _, v := postJSONHeader(t, hs1.URL+"/v1/predictions", idemBody, hdr)
	if code != http.StatusAccepted {
		t.Fatalf("submit returned %d: %v", code, v)
	}
	id := v["id"].(string)
	origBody := postRaw(t, hs1.URL+"/v1/predictions", idemBody, hdr)
	pollDone(t, hs1.URL, id)

	st2, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	srv2, hs2 := newTestServer(t, st2, 1, 8)
	var rh http.Header
	code, rh, v = postJSONHeader(t, hs2.URL+"/v1/predictions", idemBody, hdr)
	if code != http.StatusAccepted {
		t.Fatalf("post-restart replay returned %d (%v), want the original 202", code, v)
	}
	if rh.Get(IdempotencyReplayHeader) != "true" {
		t.Fatal("post-restart replay not flagged")
	}
	if v["id"] != id {
		t.Fatalf("post-restart replay id %v != original %v (duplicate job)", v["id"], id)
	}
	// The replay is the original response byte-for-byte, even though the
	// record round-tripped through the store (which compacts RawMessage).
	if got := postRaw(t, hs2.URL+"/v1/predictions", idemBody, hdr); got != origBody {
		t.Fatalf("post-restart replay body not byte-identical:\ngot:  %q\nwant: %q", got, origBody)
	}
	// The replayed job id resolves: the record materialized the finished
	// job from the store, without executing a single trial.
	_, got := getJSON(t, hs2.URL+"/v1/predictions/"+id)
	if got["status"] != StatusDone || got["cached"] != true {
		t.Fatalf("materialized job = %v, want done+cached", got)
	}
	text := scrape(t, hs2.URL)
	if trials := metricValue(t, text, "resmod_campaign_trials_total"); trials != 0 {
		t.Fatalf("restarted server executed %v trials on a replay", trials)
	}
	if got := srv2.metrics.submitted.Load(); got != 0 {
		t.Fatalf("replay enqueued %d jobs on the restarted server", got)
	}
}

// TestShedNotRecorded: a rate-limited (429) attempt must not burn the
// idempotency key — the client's retry with the same key must be able
// to succeed later.
func TestShedNotRecorded(t *testing.T) {
	srv, hs := newHardenedServer(t, Config{
		Trials: 10, Seed: 42, Workers: 1, Queue: 8,
		AnonLimits: TenantLimits{Rate: 0.0001, Burst: 1},
	})
	// Burn the only token without a key.
	code, _, _ := postJSONHeader(t, hs.URL+"/v1/predictions",
		`{"app":"PENNANT","small":2,"large":8}`, nil)
	if code != http.StatusAccepted {
		t.Fatalf("token-burning submit returned %d", code)
	}
	hdr := map[string]string{IdempotencyKeyHeader: "retry-shed"}
	code, _, _ = postJSONHeader(t, hs.URL+"/v1/predictions", idemBody, hdr)
	if code != http.StatusTooManyRequests {
		t.Fatalf("keyed submit returned %d, want 429", code)
	}
	if _, found := srv.idem.lookup(AnonTenant, "retry-shed"); found {
		t.Fatal("a shed (429) response was recorded under the idempotency key")
	}
}
