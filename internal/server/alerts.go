package server

import (
	"net/http"
	"time"

	"resmod/internal/telemetry"
)

// Built-in alert thresholds.  These are deliberately conservative
// defaults for a service whose jobs run minutes: they page on sustained
// operational damage (shedding, silent workers, frozen campaigns), not
// on single-sample noise — every rule carries a For duration and the
// rate-based ones a hysteresis clear level.
const (
	// shedRateThreshold is sustained shed responses per second before
	// the shed-rate alert trips (clear at half).
	shedRateThreshold = 1.0
	// errorBudget5xx is the allowed non-drain 5xx rate per second; the
	// http-5xx rule fires when the 5-minute mean burns it more than
	// burn5xxMultiple times too fast.
	errorBudget5xx  = 0.1
	burn5xxMultiple = 2.0
	// queueSaturationFire/Clear bound the queue-saturation hysteresis.
	queueSaturationFire  = 0.9
	queueSaturationClear = 0.7
	// workerStaleAgeSeconds is the heartbeat age that marks a worker
	// silently lost: 3× the default 5s coordinator heartbeat timeout.
	workerStaleAgeSeconds = 15.0
	// workerFlapRate is alive↔dead transitions per second that count as
	// flapping (≈ one flap per 20 s, sustained).
	workerFlapRate = 0.05
	// dispatchFailureRate is shard requeues per second before the
	// dist-dispatch-failures alert trips.
	dispatchFailureRate = 0.05
)

// BuiltinRules is the server's default alert rule set, scaled to the
// sampling period: For durations are expressed in samples so a test
// server sampling every 10ms fires in tens of milliseconds while a
// production server sampling every 10s fires in tens of seconds.
func BuiltinRules(sampleEvery time.Duration) []telemetry.Rule {
	if sampleEvery <= 0 {
		sampleEvery = 10 * time.Second
	}
	forSamples := func(n int) time.Duration { return time.Duration(n) * sampleEvery }
	half := shedRateThreshold / 2
	clearSat := queueSaturationClear
	return []telemetry.Rule{
		{
			Name: "shed-rate", Series: seriesSheds,
			Threshold: shedRateThreshold, For: forSamples(3),
			Clear: &half, ClearFor: forSamples(3),
			Help: "Admission control is shedding submissions (rate limit, quota, queue, or drain).",
		},
		{
			Name: "http-5xx", Series: series5xx,
			Threshold: burn5xxMultiple, Budget: errorBudget5xx,
			BurnWindow: forSamples(30), For: forSamples(3),
			Help: "Non-drain 5xx responses are burning the error budget too fast.",
		},
		{
			Name: "queue-saturation", Series: seriesQueueSaturation,
			Threshold: queueSaturationFire, For: forSamples(3),
			Clear: &clearSat, ClearFor: forSamples(3),
			Help: "The admission queue is nearly full; submissions will shed soon.",
		},
		{
			Name: "worker-stale", Series: seriesWorkerHBAge + "*",
			Threshold: workerStaleAgeSeconds, For: forSamples(2),
			Help: "A registered worker has stopped heartbeating.",
		},
		{
			Name: "worker-flap", Series: seriesWorkerFlaps + "*",
			Threshold: workerFlapRate, For: forSamples(3),
			Help: "A worker keeps oscillating between alive and dead.",
		},
		{
			Name: "dist-dispatch-failures", Series: seriesRequeues,
			Threshold: dispatchFailureRate, For: forSamples(3),
			Help: "Shard dispatches are failing and requeueing onto surviving workers.",
		},
		{
			Name: "campaign-stall", Series: seriesCampaignsStall,
			Threshold: 0.5, For: forSamples(3),
			Help: "A running campaign has trials remaining but its completed count is not advancing.",
		},
	}
}

// alertsResponse is the GET /v1/alerts document.
type alertsResponse struct {
	Alerts []telemetry.Alert `json:"alerts"`
	// Firing counts the alerts currently in the firing state — the
	// one-glance health number (0 is good).
	Firing int              `json:"firing"`
	Rules  []telemetry.Rule `json:"rules"`
}

// handleAlerts is GET /v1/alerts: every rule instance's current state
// plus the rule definitions, so an operator (or the dashboard) sees
// both what is watched and what is wrong.
func (s *Server) handleAlerts(w http.ResponseWriter, r *http.Request) {
	alerts := s.alerts.Alerts()
	if alerts == nil {
		alerts = []telemetry.Alert{}
	}
	firing := 0
	for _, a := range alerts {
		if a.State == telemetry.AlertFiring {
			firing++
		}
	}
	rules := s.alerts.Rules()
	if rules == nil {
		rules = []telemetry.Rule{}
	}
	writeJSON(w, http.StatusOK, alertsResponse{Alerts: alerts, Firing: firing, Rules: rules})
}
