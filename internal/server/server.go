// Package server implements the resmod prediction service: a long-running
// HTTP JSON API over the paper's §4 model.  Submissions are scheduled on a
// bounded worker pool; identical requests are content-addressed so
// concurrent duplicates join one job (and, one layer down, the shared
// exper.Session singleflights identical campaigns), while a durable
// internal/store result store answers repeats — across process restarts —
// without re-running any campaign.
//
// Endpoints:
//
//	POST /v1/predictions              submit {"app","class","small","large"}
//	GET  /v1/predictions/{id}         poll a job
//	GET  /v1/predictions/{id}/trace   the job's Chrome trace-event JSON
//	GET  /v1/predictions/{id}/events  live progress (Server-Sent Events)
//	GET  /v1/predictions              list known jobs
//	GET  /v1/status                   aggregate scheduler/progress snapshot
//	GET  /v1/apps                     registered benchmarks
//	GET  /v1/workers                  worker roster (coordinator: false off it)
//	GET  /v1/cluster                  fleet view (workers, stats, liveness)
//	GET  /healthz                     liveness + queue snapshot
//	GET  /metrics                     Prometheus text exposition
//
// Coordinators (serve -coordinator) additionally mount the worker-facing
// dist endpoints: POST /v1/workers/register, /v1/workers/heartbeat, and
// /v1/shards/progress.
package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"resmod/internal/apps"
	"resmod/internal/dist"
	"resmod/internal/exper"
	"resmod/internal/faultsim"
	"resmod/internal/store"
	"resmod/internal/telemetry"
)

// Config tunes a Server.
type Config struct {
	// Trials and Seed fix the statistical protocol every served
	// prediction uses (they are part of the result-store key).
	Trials int
	Seed   uint64
	// Workers is the scheduler pool size: how many predictions compute
	// concurrently (default 1).
	Workers int
	// Queue bounds the number of accepted-but-unstarted jobs; beyond it
	// submissions are refused with 503 (default 64).
	Queue int
	// CampaignWorkers is the per-campaign trial concurrency handed to the
	// session (default GOMAXPROCS).  It also sizes the session's shared
	// worker-token budget, so jobs saturating the campaign slots never
	// oversubscribe the machine.
	CampaignWorkers int
	// CampaignParallel is how many campaigns one prediction job may
	// execute concurrently (the session's deployment scheduler).
	// Non-positive selects GOMAXPROCS; 1 restores sequential campaign
	// execution per job.
	CampaignParallel int
	// Timeout is the per-trial hang budget (default apps.DefaultTimeout).
	Timeout time.Duration
	// HeartbeatEvery is the SSE keep-alive comment period on
	// /v1/predictions/{id}/events (default 15s); tests shrink it.
	HeartbeatEvery time.Duration
	// SampleEvery is the telemetry retention sampler period (default
	// 10s); tests shrink it.  Sampling is observation-only — it reads
	// atomic counters and published snapshots, never engine state.
	SampleEvery time.Duration
	// SeriesWindows overrides the retention tiers (default
	// telemetry.DefaultWindows: 10s×360 + 1m×720).
	SeriesWindows []telemetry.Window
	// AlertRules replaces the built-in alert rule set when non-empty
	// (BuiltinRules documents the defaults).
	AlertRules []telemetry.Rule
	// Store, when non-nil, persists campaign summaries and prediction
	// rows so identical work is computed once ever.
	Store *store.Store
	// DistPool, when non-nil, makes this server a coordinator: campaigns
	// are sharded across the pool's registered workers (falling back to
	// local execution while none are alive), and the worker control
	// plane (/v1/workers/register, /v1/workers/heartbeat) is mounted.
	// GET /v1/workers is served either way, answering coordinator:false
	// on plain servers.
	DistPool *dist.Pool
	// APIKeys maps API keys (sent as X-API-Key or Authorization: Bearer)
	// to tenant names.  Requests with no key run as the anonymous tier;
	// requests with an unknown key are refused with 401.
	APIKeys map[string]string
	// TenantLimits applies to every key-resolved tenant; AnonLimits to
	// the anonymous tier.  Zero-valued limits admit everything, so
	// servers that never configure tenancy behave exactly as before.
	TenantLimits TenantLimits
	AnonLimits   TenantLimits
	// Log, when non-nil, receives progress events through an info-level
	// structured logger.  Logger wins when both are set.
	Log io.Writer
	// Logger, when non-nil, receives every server event (access log, job
	// lifecycle, engine progress).
	Logger *slog.Logger
	// Tracer, when non-nil, accumulates every job's trace spans into one
	// process-wide trace (the serve -trace flag wires this).
	Tracer *telemetry.Tracer
}

func (c Config) withDefaults() Config {
	if c.Trials <= 0 {
		c.Trials = 400
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Queue <= 0 {
		c.Queue = 64
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 15 * time.Second
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 10 * time.Second
	}
	return c
}

// Server is the prediction service.
type Server struct {
	cfg      Config
	session  *exper.Session
	metrics  *metrics
	recorder *telemetry.Recorder
	tel      *telemetry.Telemetry
	progress *telemetry.Progress // server-wide bus; every job bus forwards here
	series   *telemetry.SeriesStore
	sampler  *telemetry.Sampler
	alerts   *telemetry.AlertEngine
	mux      *http.ServeMux

	baseCtx   context.Context
	cancel    context.CancelFunc
	quit      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
	queue     *jobQueue
	tenants   *tenants
	idem      *idemIndex

	mu   sync.Mutex
	jobs map[string]*job
}

// New builds the service and starts its worker pool.  Callers own the
// HTTP listener (Handler / ListenAndServe) and must Close to drain.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		metrics: newMetrics(),
		quit:    make(chan struct{}),
		queue:   newJobQueue(cfg.Queue),
		tenants: newTenants(cfg.APIKeys, cfg.TenantLimits, cfg.AnonLimits),
		idem:    newIdemIndex(cfg.Store),
		jobs:    make(map[string]*job),
	}
	s.baseCtx, s.cancel = context.WithCancel(context.Background())

	logger := cfg.Logger
	if logger == nil && cfg.Log != nil {
		logger = telemetry.NewLogger(cfg.Log, slog.LevelInfo)
	}
	s.recorder = telemetry.NewRecorder()
	s.tel = telemetry.New(logger, nil, s.recorder)
	s.progress = telemetry.NewProgress()

	// Retention + alerting: the sampler snapshots the counters above into
	// bounded ring windows every SampleEvery, and each tick drives one
	// alert evaluation so rules always judge fresh points.  All of it is
	// read-only over atomics and published snapshots — campaign results
	// stay byte-identical with the whole stack enabled.
	s.series = telemetry.NewSeriesStore(cfg.SeriesWindows...)
	s.sampler = telemetry.NewSampler(s.series, s.newSampleSource(), cfg.SampleEvery)
	rules := cfg.AlertRules
	if len(rules) == 0 {
		rules = BuiltinRules(cfg.SampleEvery)
	}
	s.alerts = telemetry.NewAlertEngine(s.series, s.progress, rules)
	s.sampler.OnSample(func(now time.Time) { s.alerts.Evaluate(now) })

	sessCfg := exper.Config{
		Trials: cfg.Trials, Seed: cfg.Seed, Workers: cfg.CampaignWorkers,
		CampaignParallel: cfg.CampaignParallel,
		Timeout:          cfg.Timeout, Ctx: telemetry.With(s.baseCtx, s.tel),
		OnCampaign: func(identity string, sum *faultsim.Summary) {
			s.metrics.campaigns.Add(1)
		},
	}
	if cfg.Store != nil {
		sessCfg.Cache = store.CampaignCache{Store: cfg.Store}
	}
	if cfg.DistPool != nil {
		sessCfg.Distribute = cfg.DistPool.Distribute
	}
	s.session = exper.NewSession(sessCfg)

	mux := http.NewServeMux()
	mux.Handle("POST /v1/predictions", s.instrument("/v1/predictions", s.handleSubmit))
	mux.Handle("GET /v1/predictions/{id}", s.instrument("/v1/predictions/{id}", s.handleGet))
	mux.Handle("GET /v1/predictions/{id}/trace", s.instrument("/v1/predictions/{id}/trace", s.handleTrace))
	mux.Handle("GET /v1/predictions/{id}/events", s.instrument("/v1/predictions/{id}/events", s.handleEvents))
	mux.Handle("GET /v1/predictions", s.instrument("/v1/predictions", s.handleList))
	mux.Handle("GET /v1/status", s.instrument("/v1/status", s.handleStatus))
	mux.Handle("GET /v1/series", s.instrument("/v1/series", s.handleSeries))
	mux.Handle("GET /v1/alerts", s.instrument("/v1/alerts", s.handleAlerts))
	mux.Handle("GET /v1/events", s.instrument("/v1/events", s.handleServerEvents))
	mux.Handle("GET /debug/dash", s.instrument("/debug/dash", s.handleDash))
	mux.Handle("GET /v1/apps", s.instrument("/v1/apps", s.handleApps))
	mux.Handle("GET /v1/workers", s.instrument("/v1/workers", s.handleWorkers))
	mux.Handle("GET /v1/cluster", s.instrument("/v1/cluster", s.handleCluster))
	if cfg.DistPool != nil {
		mux.Handle("POST /v1/workers/register",
			s.instrument("/v1/workers/register", cfg.DistPool.HandleRegister))
		mux.Handle("POST /v1/workers/heartbeat",
			s.instrument("/v1/workers/heartbeat", cfg.DistPool.HandleHeartbeat))
		mux.Handle("POST /v1/shards/progress",
			s.instrument("/v1/shards/progress", cfg.DistPool.HandleShardProgress))
	}
	mux.Handle("GET /healthz", s.instrument("/healthz", s.handleHealthz))
	mux.Handle("GET /metrics", s.instrument("/metrics", s.handleMetrics))
	s.mux = mux

	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.sampler.Run(s.quit)
	}()
	return s
}

// Handler returns the service's HTTP handler (for httptest and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// ListenAndServe binds addr and serves until ctx is canceled, then shuts
// the listener down and drains: in-flight predictions finish (bounded by
// drain), queued ones are canceled.  This is the serve subcommand's whole
// lifecycle — ctx is the CLI's SIGINT/SIGTERM context.
func (s *Server) ListenAndServe(ctx context.Context, addr string, drain time.Duration) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	hs := &http.Server{Handler: s.mux}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	s.tel.Logger().Info(fmt.Sprintf("serving on http://%s", ln.Addr()),
		"workers", s.cfg.Workers, "queue", s.cfg.Queue,
		"trials", s.cfg.Trials, "seed", s.cfg.Seed)

	select {
	case err := <-errc:
		s.cancel()
		_ = s.Close(context.Background())
		return err
	case <-ctx.Done():
	}
	s.tel.Logger().Info("draining", "timeout", drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	_ = hs.Shutdown(drainCtx)
	if err := s.Close(drainCtx); err != nil {
		return fmt.Errorf("server: drain: %w", err)
	}
	s.tel.Logger().Info("drained cleanly")
	return nil
}

// Close drains the scheduler: workers finish the job they hold, queued
// jobs are canceled.  If ctx expires first the in-flight campaigns are
// interrupted through the session context (finishing promptly with
// partial summaries that are never cached) and an error is returned.
func (s *Server) Close(ctx context.Context) error {
	s.closeOnce.Do(func() {
		close(s.quit)
		s.queue.close() // wake idle workers; they exit without new work
	})
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		s.cancel() // force: interrupt in-flight campaigns
		<-done
		err = fmt.Errorf("forced drain after %w", ctx.Err())
	}
	// Whatever is still queued never started; mark it canceled so polling
	// clients get a terminal status, and hand its quota slot back.
	for _, j := range s.queue.drain() {
		j.fail(StatusCanceled, errors.New("canceled: server shut down before the job started"), 0)
		s.metrics.jobsCanceled.Add(1)
		s.metrics.tenant(j.tenant).queued.Add(-1)
		s.tenants.release(j.tenant)
	}
	s.cancel()
	return err
}

// ---- handlers -------------------------------------------------------------

// requestIDHeader carries the per-request correlation ID.  Clients may
// supply one; the server generates one otherwise, and always echoes it
// on the response.
const requestIDHeader = "X-Request-ID"

// newRequestID returns a fresh 16-hex-digit request ID.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "unknown"
	}
	return hex.EncodeToString(b[:])
}

// statusRecorder captures the response code and body size for the
// request counter and the access log.
type statusRecorder struct {
	http.ResponseWriter
	code  int
	bytes int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	n, err := r.ResponseWriter.Write(b)
	r.bytes += n
	return n, err
}

// Flush forwards to the wrapped writer so streaming handlers (the SSE
// events endpoint) work through the instrumentation wrapper.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a handler with request-ID plumbing, per-route request
// counting, and one access-log event per request.
func (s *Server) instrument(route string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqID := r.Header.Get(requestIDHeader)
		if reqID == "" {
			reqID = newRequestID()
			// Stash the generated ID on the inbound headers too, so
			// handlers (e.g. handleSubmit's job records) see one value
			// regardless of who minted it.
			r.Header.Set(requestIDHeader, reqID)
		}
		w.Header().Set(requestIDHeader, reqID)
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		h(rec, r)
		s.metrics.request(r.Method, route, rec.code)
		s.tel.Logger().Info("http request",
			"method", r.Method, "route", route, "status", rec.code,
			"bytes", rec.bytes, "dur", time.Since(start), "request_id", reqID)
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// marshalBody renders v exactly as writeJSON would (indented, trailing
// newline), for paths that must both send and memoize the bytes.
func marshalBody(v any) []byte {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return []byte("{}\n")
	}
	return append(b, '\n')
}

// writeJSONRaw sends pre-marshaled JSON bytes.
func writeJSONRaw(w http.ResponseWriter, code int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_, _ = w.Write(body)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// validate resolves and checks a submission, returning the normalized
// request (class defaulted) or a client-facing error.
func (s *Server) validate(req PredictionRequest) (PredictionRequest, error) {
	a, err := apps.Lookup(req.App)
	if err != nil {
		return req, fmt.Errorf("unknown app %q (GET /v1/apps lists the registered benchmarks)", req.App)
	}
	req.App = a.Name()
	if req.Class == "" {
		req.Class = a.DefaultClass()
	}
	classOK := false
	for _, c := range a.Classes() {
		if c == req.Class {
			classOK = true
			break
		}
	}
	if !classOK {
		return req, fmt.Errorf("app %s has no class %q (classes: %v)", req.App, req.Class, a.Classes())
	}
	if req.Small < 1 || req.Large < 2 || req.Small >= req.Large {
		return req, fmt.Errorf("want 1 <= small < large, got small=%d large=%d", req.Small, req.Large)
	}
	if req.Large%req.Small != 0 {
		return req, fmt.Errorf("small must divide large (the paper's sampling map), got %d and %d",
			req.Small, req.Large)
	}
	if err := apps.CheckProcs(a, req.Class, req.Large); err != nil {
		return req, err
	}
	if err := apps.CheckProcs(a, req.Class, req.Small); err != nil {
		return req, err
	}
	return req, nil
}

// handleSubmit is POST /v1/predictions: tenant resolution, token-bucket
// rate limiting, validation, idempotency replay, content-addressed
// dedup, inflight quota, then priority-queue admission — in that order,
// so overload is shed as early and as cheaply as possible.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	tenant, authOK := s.tenants.resolve(r)
	if !authOK {
		s.metrics.authFailures.Add(1)
		writeError(w, http.StatusUnauthorized, "unknown API key")
		return
	}
	tm := s.metrics.tenant(tenant)

	// Rate limit first: a tenant over its sustained rate is shed before
	// the server spends anything decoding or validating its payload.
	if ok, wait := s.tenants.allow(tenant); !ok {
		tm.ratelimited.Add(1)
		s.metrics.rejected.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(s.tenants.jitterSecs(wait)))
		writeError(w, http.StatusTooManyRequests,
			"tenant %q over its request rate; retry after the indicated delay", tenant)
		return
	}

	var req PredictionRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request body: %v", err)
		return
	}
	req, err := s.validate(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid prediction request: %v", err)
		return
	}
	prio, err := parsePriority(req.Priority)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid prediction request: %v", err)
		return
	}

	// Idempotency replay: a retried request (same tenant, same key)
	// answers with the original response verbatim — same status, body and
	// job id — no matter what the queue looks like now.
	idemKey := r.Header.Get(IdempotencyKeyHeader)
	reqHash := ""
	if idemKey != "" {
		reqHash = requestHash(req)
		if rec, found := s.idem.lookup(tenant, idemKey); found {
			if rec.RequestHash != reqHash {
				s.metrics.idemConflicts.Add(1)
				writeError(w, http.StatusConflict,
					"Idempotency-Key %q was already used with a different request", idemKey)
				return
			}
			s.materializeReplayed(rec)
			s.metrics.idemReplays.Add(1)
			w.Header().Set(IdempotencyReplayHeader, "true")
			writeJSONRaw(w, rec.Status, rec.Body)
			return
		}
	}

	key := req.key(s.cfg.Trials, s.cfg.Seed)
	id := jobID(key)

	// memoize records the response under the idempotency key (successful
	// admissions only — shed answers must stay retryable).
	memoize := func(status int, body []byte) {
		if idemKey == "" {
			return
		}
		s.idem.record(idemRecord{Tenant: tenant, Key: idemKey, RequestHash: reqHash,
			Request: req, Status: status, Body: body, JobID: id})
	}

	// The whole submit decision is one critical section so concurrent
	// identical submissions cannot double-create a job.
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok && !j.retryable() {
		// Joining an existing job: a higher-priority duplicate promotes
		// the queued original (running work is never touched).
		if s.queue.promote(j, prio) {
			j.setPriority(prio)
		}
		s.metrics.joined.Add(1)
		body := marshalBody(j.view())
		memoize(http.StatusOK, body)
		writeJSONRaw(w, http.StatusOK, body)
		return
	}
	if row, ok := s.getPrediction(key); ok {
		j := &job{id: id, key: key, req: req, reqID: r.Header.Get(requestIDHeader),
			tenant: tenant, prio: prio,
			status: StatusDone, cached: true, row: row, submitted: time.Now(),
			done: closedChan()}
		s.jobs[id] = j
		s.metrics.cacheHits.Add(1)
		body := marshalBody(j.view())
		memoize(http.StatusOK, body)
		writeJSONRaw(w, http.StatusOK, body)
		return
	}
	s.metrics.cacheMisses.Add(1)
	select {
	case <-s.quit:
		// Draining is terminal for this process: 503 (not 429) tells
		// well-behaved clients to try another instance, not this one.
		tm.shedDrain.Add(1)
		s.metrics.rejected.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(s.tenants.jitterSecs(5*time.Second)))
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	default:
	}
	if !s.tenants.acquire(tenant) {
		tm.shedQuota.Add(1)
		s.metrics.rejected.Add(1)
		w.Header().Set("Retry-After",
			strconv.Itoa(s.tenants.shedRetryAfter(s.queue.depth(), s.cfg.Queue)))
		writeError(w, http.StatusTooManyRequests,
			"tenant %q is at its max-inflight quota; retry after the indicated delay", tenant)
		return
	}
	// The job bus exists from submission (SSE clients can subscribe while
	// the job is still queued) and forwards every event to the server-wide
	// bus, which backs /metrics and /v1/status.
	prog := telemetry.NewProgress()
	prog.ForwardTo(s.progress)
	j := &job{id: id, key: key, req: req, reqID: r.Header.Get(requestIDHeader),
		tenant: tenant, prio: prio,
		status: StatusQueued, submitted: time.Now(),
		progress: prog, done: make(chan struct{})}
	if s.queue.push(j, prio) {
		s.jobs[id] = j
		s.metrics.submitted.Add(1)
		tm.admitted.Add(1)
		tm.queued.Add(1)
		body := marshalBody(j.view())
		memoize(http.StatusAccepted, body)
		writeJSONRaw(w, http.StatusAccepted, body)
		return
	}
	s.tenants.release(tenant)
	tm.shedQueue.Add(1)
	s.metrics.rejected.Add(1)
	w.Header().Set("Retry-After",
		strconv.Itoa(s.tenants.shedRetryAfter(s.queue.depth(), s.cfg.Queue)))
	writeError(w, http.StatusTooManyRequests,
		"queue full (%d jobs waiting); retry after the indicated delay", s.cfg.Queue)
}

// materializeReplayed rebuilds the jobs-map entry behind a replayed
// response when the process restarted since the original admission: if
// the prediction finished and persisted, GET /v1/predictions/{id} works
// again immediately.  Nothing to do when the job is still known.
func (s *Server) materializeReplayed(rec idemRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.jobs[rec.JobID]; ok {
		return
	}
	key := rec.Request.key(s.cfg.Trials, s.cfg.Seed)
	row, ok := s.getPrediction(key)
	if !ok {
		return
	}
	s.jobs[rec.JobID] = &job{id: rec.JobID, key: key, req: rec.Request,
		tenant: rec.Tenant, prio: PrioNormal,
		status: StatusDone, cached: true, row: row, submitted: time.Now(),
		done: closedChan()}
}

// handleGet is GET /v1/predictions/{id}.
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "no prediction %q", id)
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}

// handleTrace is GET /v1/predictions/{id}/trace: the job's recorded
// spans as Chrome trace-event JSON (load in chrome://tracing or
// Perfetto).  A running job returns the spans finished so far.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "no prediction %q", id)
		return
	}
	tr := j.traceTracer()
	if tr == nil {
		writeError(w, http.StatusNotFound,
			"no trace for prediction %q (cache-served or not started)", id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = tr.WriteChromeTrace(w)
}

// handleList is GET /v1/predictions.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	views := make([]Prediction, 0, len(s.jobs))
	for _, j := range s.jobs {
		views = append(views, j.view())
	}
	s.mu.Unlock()
	sort.Slice(views, func(i, k int) bool {
		if !views[i].SubmittedAt.Equal(views[k].SubmittedAt) {
			return views[i].SubmittedAt.Before(views[k].SubmittedAt)
		}
		return views[i].ID < views[k].ID
	})
	writeJSON(w, http.StatusOK, map[string]any{"predictions": views})
}

// appInfo is one GET /v1/apps entry.
type appInfo struct {
	Name         string         `json:"name"`
	Classes      []string       `json:"classes"`
	DefaultClass string         `json:"default_class"`
	MaxProcs     map[string]int `json:"max_procs"`
}

// handleApps is GET /v1/apps.
func (s *Server) handleApps(w http.ResponseWriter, r *http.Request) {
	var infos []appInfo
	for _, name := range apps.Names() {
		a, err := apps.Lookup(name)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		info := appInfo{
			Name: a.Name(), Classes: a.Classes(), DefaultClass: a.DefaultClass(),
			MaxProcs: make(map[string]int, len(a.Classes())),
		}
		for _, c := range a.Classes() {
			info.MaxProcs[c] = a.MaxProcs(c)
		}
		infos = append(infos, info)
	}
	writeJSON(w, http.StatusOK, map[string]any{"apps": infos})
}

// handleWorkers is GET /v1/workers: the distributed-execution registry
// view.  On a non-coordinator server it answers coordinator:false with
// an empty worker list, so load harnesses can probe any instance.
func (s *Server) handleWorkers(w http.ResponseWriter, r *http.Request) {
	if s.cfg.DistPool == nil {
		writeJSON(w, http.StatusOK, map[string]any{
			"coordinator": false,
			"alive":       0,
			"workers":     []dist.WorkerInfo{},
		})
		return
	}
	s.cfg.DistPool.HandleWorkers(w, r)
}

// handleCluster is GET /v1/cluster: the fleet view — pool counters plus
// per-worker detail (self-reported stats, trials/sec, heartbeat age).
// On a non-coordinator server it answers coordinator:false, so
// operators can point the same dashboard at any instance.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	if s.cfg.DistPool == nil {
		writeJSON(w, http.StatusOK, map[string]any{
			"coordinator":   false,
			"workers_known": 0,
			"workers_alive": 0,
			"workers":       []dist.WorkerInfo{},
		})
		return
	}
	s.cfg.DistPool.HandleCluster(w, r)
}

// handleHealthz is GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := len(s.jobs)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.metrics.start).Seconds(),
		"queue_depth":    s.queue.depth(),
		"jobs":           jobs,
		"workers":        s.cfg.Workers,
	})
}

// handleMetrics is GET /metrics (Prometheus text exposition format).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var storeStats *store.Stats
	if s.cfg.Store != nil {
		st := s.cfg.Store.Stats()
		storeStats = &st
	}
	var distStats *dist.PoolStats
	var fleet []dist.WorkerInfo
	if s.cfg.DistPool != nil {
		ds := s.cfg.DistPool.Stats()
		distStats = &ds
		fleet = s.cfg.DistPool.Workers()
	}
	s.metrics.write(w, s.queue.depth(), storeStats, s.recorder.Snapshot(),
		s.session.SchedulerStats(), s.progress.Latest(), s.tenants.inflightSnapshot(),
		distStats, fleet, s.alerts.Alerts())
}

// ---- prediction store ------------------------------------------------------

// storedPrediction is the result-store document for one prediction.
type storedPrediction struct {
	Version int                 `json:"version"`
	Key     string              `json:"key"`
	Request PredictionRequest   `json:"request"`
	Row     exper.PredictionRow `json:"row"`
}

// getPrediction probes the store for a finished prediction.
func (s *Server) getPrediction(key string) (*exper.PredictionRow, bool) {
	if s.cfg.Store == nil {
		return nil, false
	}
	var sp storedPrediction
	if !s.cfg.Store.GetJSON(key, &sp) {
		return nil, false
	}
	if sp.Version != PredictionKeyVersion || sp.Key != key {
		return nil, false
	}
	row := sp.Row
	return &row, true
}

// putPrediction persists a finished prediction (best effort).
func (s *Server) putPrediction(key string, req PredictionRequest, row *exper.PredictionRow) {
	if s.cfg.Store == nil || row == nil {
		return
	}
	err := s.cfg.Store.PutJSON(key, storedPrediction{
		Version: PredictionKeyVersion, Key: key, Request: req, Row: *row,
	})
	if err != nil {
		s.tel.Logger().Warn("storing prediction failed", "key", key, "err", err)
	}
}
