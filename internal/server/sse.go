package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"resmod/internal/telemetry"
)

// handleEvents is GET /v1/predictions/{id}/events: the job's live
// progress as a Server-Sent Events stream.
//
// Each snapshot arrives as `event: progress` with a
// telemetry.ProgressEvent JSON body; the stream ends with one
// `event: done` carrying the job's final API view, after which the
// server closes the connection.  A client connecting mid-job first
// receives the latest snapshot of every campaign/prediction the job has
// touched (bus replay), so it starts from current state; a client
// connecting after completion receives the replay and the terminal event
// immediately.  Comment-line heartbeats (Config.HeartbeatEvery) keep
// idle proxies from timing the stream out.  Disconnecting never cancels
// or fails the job — the subscription is read-only and drops its oldest
// buffered events if the client stalls.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "no prediction %q", id)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	// Subscribe before checking for completion so no event can fall
	// between the replay and the live stream.  A store-served job has no
	// bus; its nil subscription yields a nil channel (never ready) and the
	// already-closed done channel ends the stream at once.
	sub := j.progress.Subscribe(256)
	defer sub.Close()

	emit := func(event string, v any) bool {
		data, err := json.Marshal(v)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); err != nil {
			return false
		}
		fl.Flush()
		return true
	}

	heartbeat := time.NewTicker(s.cfg.HeartbeatEvery)
	defer heartbeat.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-heartbeat.C:
			if _, err := fmt.Fprint(w, ": heartbeat\n\n"); err != nil {
				return
			}
			fl.Flush()
		case ev := <-sub.Events():
			if !emit("progress", ev) {
				return
			}
		case <-j.done:
			// Terminal: flush whatever snapshots are still buffered, then
			// close the stream with the job's final view.
			for {
				select {
				case ev := <-sub.Events():
					if !emit("progress", ev) {
						return
					}
					continue
				default:
				}
				break
			}
			emit("done", j.view())
			return
		}
	}
}

// statusView is the GET /v1/status document.
type statusView struct {
	Status        string         `json:"status"`
	UptimeSeconds float64        `json:"uptime_seconds"`
	Workers       int            `json:"workers"`
	QueueDepth    int            `json:"queue_depth"`
	QueueCapacity int            `json:"queue_capacity"`
	Jobs          map[string]int `json:"jobs"`
	JobsTotal     int            `json:"jobs_total"`
	// Scheduler samples the shared campaign scheduler: campaigns
	// running/queued against the slot capacity, and the trial-worker
	// budget's occupancy.
	Scheduler schedulerView `json:"scheduler"`
	// CampaignsTracked is the number of campaigns with a live progress
	// snapshot on the server-wide bus (running or finished).
	CampaignsTracked int `json:"campaigns_tracked"`
}

// schedulerView mirrors exper.SchedulerStats for the API.
type schedulerView struct {
	CampaignsRunning  int `json:"campaigns_running"`
	CampaignsQueued   int `json:"campaigns_queued"`
	CampaignSlots     int `json:"campaign_slots"`
	WorkerBudgetInUse int `json:"worker_budget_in_use"`
	WorkerBudgetSize  int `json:"worker_budget_size"`
}

// handleStatus is GET /v1/status: one aggregate JSON snapshot of the
// whole service — queue depth, per-state job counts, campaign-scheduler
// and worker-budget occupancy.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	counts := map[string]int{}
	s.mu.Lock()
	total := len(s.jobs)
	for _, j := range s.jobs {
		counts[j.view().Status]++
	}
	s.mu.Unlock()
	st := s.session.SchedulerStats()
	tracked := 0
	for _, ev := range s.progress.Latest() {
		if ev.Kind == telemetry.KindCampaign {
			tracked++
		}
	}
	writeJSON(w, http.StatusOK, statusView{
		Status:        "ok",
		UptimeSeconds: time.Since(s.metrics.start).Seconds(),
		Workers:       s.cfg.Workers,
		QueueDepth:    s.queue.depth(),
		QueueCapacity: s.cfg.Queue,
		Jobs:          counts,
		JobsTotal:     total,
		Scheduler: schedulerView{
			CampaignsRunning:  st.CampaignsRunning,
			CampaignsQueued:   st.CampaignsQueued,
			CampaignSlots:     st.CampaignSlots,
			WorkerBudgetInUse: st.WorkerBudgetInUse,
			WorkerBudgetSize:  st.WorkerBudgetSize,
		},
		CampaignsTracked: tracked,
	})
}
