package server

import "net/http"

// handleDash is GET /debug/dash: a zero-dependency operator dashboard.
// One embedded HTML page, no external assets, no build step — the page
// polls the JSON surfaces this server already exposes (/v1/status,
// /v1/series, /v1/alerts, /v1/cluster) and renders inline-SVG
// sparklines client-side.  Everything it shows can also be read with
// curl; the page is presentation only.
func (s *Server) handleDash(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(dashHTML))
}

const dashHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>resmod dash</title>
<style>
  body { font: 13px/1.5 ui-monospace, SFMono-Regular, Menlo, monospace;
         margin: 1.2em; background: #101418; color: #d8dee4; }
  h1 { font-size: 15px; margin: 0 0 .6em; }
  h1 small { color: #7b8794; font-weight: normal; }
  .banner { padding: .5em .8em; border-radius: 4px; margin-bottom: 1em; }
  .banner.ok { background: #11301c; color: #7ee2a8; }
  .banner.bad { background: #3a1418; color: #ff8d8d; }
  .grid { display: flex; flex-wrap: wrap; gap: 1em; }
  .card { background: #171d24; border: 1px solid #232b35; border-radius: 6px;
          padding: .7em .9em; min-width: 240px; }
  .card b { color: #9fb3c8; font-weight: normal; font-size: 11px;
            text-transform: uppercase; letter-spacing: .05em; }
  .val { font-size: 20px; margin: .15em 0; }
  svg { display: block; margin-top: .3em; }
  .spark { stroke: #58a6ff; stroke-width: 1.5; fill: none; }
  .sparkfill { fill: #58a6ff22; stroke: none; }
  table { border-collapse: collapse; margin-top: .4em; width: 100%; }
  th, td { text-align: left; padding: .15em .7em .15em 0; }
  th { color: #7b8794; font-weight: normal; }
  .up { color: #7ee2a8; } .down { color: #ff8d8d; }
  .firing { color: #ff8d8d; } .pending { color: #e8c35c; }
  .resolved { color: #7ee2a8; } .inactive { color: #7b8794; }
  #err { color: #ff8d8d; }
</style>
</head>
<body>
<h1>resmod <small id="meta">connecting…</small></h1>
<div id="alerts" class="banner ok">no alerts</div>
<div class="grid" id="cards"></div>
<div class="card" style="margin-top:1em">
  <b>fleet</b>
  <div id="fleet">not a coordinator</div>
</div>
<div class="card" style="margin-top:1em">
  <b>alert rules</b>
  <div id="rules"></div>
</div>
<div id="err"></div>
<script>
"use strict";
const SPARKS = [
  ["trials_total", "trials/sec"],
  ["queue_depth", "queue depth"],
  ["jobs_inflight", "jobs inflight"],
  ["sheds_total", "sheds/sec"],
  ["campaigns_running", "campaigns running"],
  ["trial_latency_p99_seconds", "trial p99 (s)"],
];
const fmt = v => v == null ? "–" :
  (Math.abs(v) >= 100 ? v.toFixed(0) : Math.abs(v) >= 1 ? v.toFixed(1) : v.toPrecision(2));
function spark(points, w, h) {
  if (!points || points.length < 2) {
    return '<svg width="'+w+'" height="'+h+'"></svg>';
  }
  const vs = points.map(p => p.v);
  const lo = Math.min(...vs), hi = Math.max(...vs), span = (hi - lo) || 1;
  const xy = points.map((p, i) => [
    (i / (points.length - 1)) * (w - 2) + 1,
    h - 2 - ((p.v - lo) / span) * (h - 6),
  ]);
  const line = xy.map(c => c[0].toFixed(1) + "," + c[1].toFixed(1)).join(" ");
  const area = "1," + (h - 1) + " " + line + " " + (w - 1) + "," + (h - 1);
  return '<svg width="'+w+'" height="'+h+'">' +
    '<polygon class="sparkfill" points="'+area+'"/>' +
    '<polyline class="spark" points="'+line+'"/></svg>';
}
async function j(url) { const r = await fetch(url); if (!r.ok) throw new Error(url + ": " + r.status); return r.json(); }
async function tick() {
  try {
    const [status, alerts] = await Promise.all([j("/v1/status"), j("/v1/alerts")]);
    document.getElementById("meta").textContent =
      "up " + fmt(status.uptime_seconds) + "s · queue " + status.queue_depth + "/" +
      status.queue_capacity + " · jobs " + status.jobs_total +
      " · campaigns running " + status.scheduler.campaigns_running;

    const firing = alerts.alerts.filter(a => a.state === "firing");
    const pending = alerts.alerts.filter(a => a.state === "pending");
    const banner = document.getElementById("alerts");
    if (firing.length) {
      banner.className = "banner bad";
      banner.textContent = "FIRING: " + firing.map(a =>
        a.rule + (a.instance ? "/" + a.instance : "") + " (" + fmt(a.value) + ")").join(", ");
    } else if (pending.length) {
      banner.className = "banner bad";
      banner.textContent = "pending: " + pending.map(a =>
        a.rule + (a.instance ? "/" + a.instance : "")).join(", ");
    } else {
      banner.className = "banner ok";
      banner.textContent = "no alerts";
    }
    document.getElementById("rules").innerHTML =
      "<table><tr><th>rule</th><th>state</th><th>value</th><th>help</th></tr>" +
      alerts.alerts.map(a =>
        "<tr><td>" + a.rule + (a.instance ? "/" + a.instance : "") + "</td><td class=\"" +
        a.state + "\">" + a.state + "</td><td>" + fmt(a.value) + "</td><td>" +
        (a.help || "") + "</td></tr>").join("") + "</table>";

    const cards = await Promise.all(SPARKS.map(async ([name, label]) => {
      const res = await j("/v1/series?name=" + encodeURIComponent(name) + "&since=30m&max=60");
      const pts = res.points;
      const last = pts.length ? pts[pts.length - 1].v : null;
      return '<div class="card"><b>' + label + '</b><div class="val">' + fmt(last) +
        "</div>" + spark(pts, 220, 40) + "</div>";
    }));
    document.getElementById("cards").innerHTML = cards.join("");

    const cl = await j("/v1/cluster");
    const fleet = document.getElementById("fleet");
    if (!cl.coordinator) {
      fleet.textContent = "not a coordinator";
    } else if (!cl.workers.length) {
      fleet.textContent = "coordinator · no workers registered";
    } else {
      fleet.innerHTML =
        "<table><tr><th>worker</th><th>state</th><th>hb age</th><th>trials/s</th>" +
        "<th>shards done</th><th>inflight</th></tr>" +
        cl.workers.map(w =>
          "<tr><td>" + w.name + "</td><td class=\"" + (w.alive ? "up\">up" : "down\">down") +
          "</td><td>" + fmt(w.last_seen_ms / 1000) + "s</td><td>" + fmt(w.trials_per_sec) +
          "</td><td>" + w.shards_done + "</td><td>" +
          (w.worker_stats ? w.worker_stats.shards_inflight : "–") + "</td></tr>").join("") +
        "</table>";
    }
    document.getElementById("err").textContent = "";
  } catch (e) {
    document.getElementById("err").textContent = "refresh failed: " + e.message;
  }
}
tick();
setInterval(tick, 3000);
</script>
</body>
</html>
`
