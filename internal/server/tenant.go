package server

import (
	"math"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// AnonTenant is the tenant name of requests carrying no API key.  The
// anonymous tier is a real tenant — it gets its own rate limit, quota
// and metric series — so an unauthenticated burst can never starve
// keyed tenants.
const AnonTenant = "anon"

// TenantLimits bounds one tenant's submission traffic.  Zero values mean
// "unlimited", which keeps servers configured without limits (every
// pre-hardening deployment and test) byte-for-byte compatible.
type TenantLimits struct {
	// Rate is the sustained POST /v1/predictions admission rate in
	// requests per second (token-bucket refill).  0 disables rate
	// limiting for the tenant.
	Rate float64
	// Burst is the token-bucket capacity: how many requests may arrive
	// back-to-back before the sustained rate applies.  Defaults to
	// ceil(Rate) (minimum 1) when Rate is set.
	Burst int
	// MaxInflight caps the tenant's queued-plus-running jobs.  Submissions
	// beyond it are shed with 429 before touching the queue.  0 = no cap.
	MaxInflight int
}

func (l TenantLimits) withDefaults() TenantLimits {
	if l.Rate > 0 && l.Burst <= 0 {
		l.Burst = int(math.Ceil(l.Rate))
		if l.Burst < 1 {
			l.Burst = 1
		}
	}
	return l
}

// tenantState is one tenant's live admission state: a token bucket plus
// the inflight (queued + running) job count.
type tenantState struct {
	limits   TenantLimits
	tokens   float64
	last     time.Time
	inflight int
}

// tenants is the admission-control registry: API-key resolution plus
// per-tenant token buckets and inflight quotas.  A nil *tenants is
// valid and admits everything (servers without tenancy configured).
type tenants struct {
	keys  map[string]string // API key -> tenant name
	keyed TenantLimits      // limits for key-resolved tenants
	anon  TenantLimits      // limits for the anonymous tier
	now   func() time.Time  // injectable clock for tests
	rng   func() float64    // injectable jitter source for tests

	mu     sync.Mutex
	states map[string]*tenantState
}

// newTenants builds the registry.  keys maps API key -> tenant name.
func newTenants(keys map[string]string, keyed, anon TenantLimits) *tenants {
	return &tenants{
		keys:   keys,
		keyed:  keyed.withDefaults(),
		anon:   anon.withDefaults(),
		now:    time.Now,
		rng:    rand.Float64,
		states: make(map[string]*tenantState),
	}
}

// apiKey extracts the client's API key from X-API-Key or an
// "Authorization: Bearer <key>" header (empty when absent).
func apiKey(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return k
	}
	auth := r.Header.Get("Authorization")
	if rest, ok := strings.CutPrefix(auth, "Bearer "); ok {
		return strings.TrimSpace(rest)
	}
	return ""
}

// resolve maps a request to its tenant.  ok is false for a present but
// unknown API key (the 401 path: a typo'd key must fail loudly, not
// silently demote the caller to the anonymous tier).
func (t *tenants) resolve(r *http.Request) (tenant string, ok bool) {
	key := apiKey(r)
	if key == "" {
		return AnonTenant, true
	}
	if t == nil {
		// No tenancy configured: any presented key is unknown, but
		// rejecting it would break clients that always send a key against
		// an unhardened server.  Treat it as anonymous.
		return AnonTenant, true
	}
	name, found := t.keys[key]
	if !found {
		return "", false
	}
	return name, true
}

// limitsFor returns the limit set a tenant runs under.
func (t *tenants) limitsFor(tenant string) TenantLimits {
	if tenant == AnonTenant {
		return t.anon
	}
	return t.keyed
}

// state returns (creating if needed) the tenant's live state.  Callers
// hold t.mu.
func (t *tenants) state(tenant string) *tenantState {
	st, ok := t.states[tenant]
	if !ok {
		lim := t.limitsFor(tenant)
		st = &tenantState{limits: lim, tokens: float64(lim.Burst), last: t.now()}
		t.states[tenant] = st
	}
	return st
}

// allow runs the tenant's token bucket: it admits the request (consuming
// a token) or returns the duration until the next token so the 429 can
// carry an honest Retry-After.  A nil registry admits everything.
func (t *tenants) allow(tenant string) (ok bool, retryAfter time.Duration) {
	if t == nil {
		return true, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.state(tenant)
	if st.limits.Rate <= 0 {
		return true, 0
	}
	now := t.now()
	st.tokens += now.Sub(st.last).Seconds() * st.limits.Rate
	if max := float64(st.limits.Burst); st.tokens > max {
		st.tokens = max
	}
	st.last = now
	if st.tokens >= 1 {
		st.tokens--
		return true, 0
	}
	wait := time.Duration((1 - st.tokens) / st.limits.Rate * float64(time.Second))
	return false, wait
}

// acquire claims one inflight slot for the tenant, failing when its
// MaxInflight quota is already saturated.
func (t *tenants) acquire(tenant string) bool {
	if t == nil {
		return true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.state(tenant)
	if st.limits.MaxInflight > 0 && st.inflight >= st.limits.MaxInflight {
		return false
	}
	st.inflight++
	return true
}

// release returns an inflight slot when a job reaches a terminal state.
func (t *tenants) release(tenant string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if st, ok := t.states[tenant]; ok && st.inflight > 0 {
		st.inflight--
	}
}

// inflightSnapshot returns every known tenant's current inflight count,
// sorted by tenant name, for the /metrics gauges.
func (t *tenants) inflightSnapshot() []tenantGauge {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]tenantGauge, 0, len(t.states))
	for name, st := range t.states {
		out = append(out, tenantGauge{tenant: name, value: float64(st.inflight)})
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].tenant < out[j].tenant })
	return out
}

// tenantGauge is one labeled gauge sample.
type tenantGauge struct {
	tenant string
	value  float64
}

// jitterSecs converts a backoff hint into whole Retry-After seconds with
// ±25% jitter (minimum 1s), so a synchronized fleet of shed clients does
// not return as one thundering herd.
func (t *tenants) jitterSecs(d time.Duration) int {
	rng := rand.Float64
	if t != nil && t.rng != nil {
		rng = t.rng
	}
	secs := d.Seconds()
	if secs < 1 {
		secs = 1
	}
	secs *= 0.75 + 0.5*rng()
	n := int(math.Ceil(secs))
	if n < 1 {
		n = 1
	}
	return n
}

// shedRetryAfter is the Retry-After hint for queue/quota sheds: grows
// with queue fullness so clients back off harder the deeper the overload,
// then jittered.
func (t *tenants) shedRetryAfter(depth, capacity int) int {
	base := time.Second
	if capacity > 0 {
		base += time.Duration(float64(4*time.Second) * float64(depth) / float64(capacity))
	}
	return t.jitterSecs(base)
}
