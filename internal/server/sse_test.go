package server

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"resmod/internal/store"
)

// sseEvent is one parsed Server-Sent Event.
type sseEvent struct {
	name string
	data string
}

// readSSE consumes the stream until the terminal "done" event, an error,
// or EOF, returning every named event in order (heartbeat comments are
// counted, not returned).
func readSSE(t *testing.T, body *bufio.Scanner) (events []sseEvent, heartbeats int) {
	t.Helper()
	var cur sseEvent
	for body.Scan() {
		line := body.Text()
		switch {
		case line == "":
			if cur.name != "" {
				events = append(events, cur)
				if cur.name == "done" {
					return events, heartbeats
				}
			}
			cur = sseEvent{}
		case strings.HasPrefix(line, ": "):
			heartbeats++
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		}
	}
	return events, heartbeats
}

// openSSE connects to the job's event stream and hands back the response
// plus a line scanner over it.
func openSSE(t *testing.T, ctx context.Context, base, id string) (*http.Response, *bufio.Scanner) {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		base+"/v1/predictions/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("events stream returned %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		resp.Body.Close()
		t.Fatalf("Content-Type = %q", ct)
	}
	return resp, bufio.NewScanner(resp.Body)
}

// TestSSEMidJobStream is the acceptance criterion: a client connecting
// while the job runs receives at least two progress snapshots and then
// exactly one terminal done event carrying the finished job view.
func TestSSEMidJobStream(t *testing.T) {
	st, err := store.Open(store.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	_, hs := newTestServer(t, st, 2, 16)

	code, v := postJSON(t, hs.URL+"/v1/predictions", predBody)
	if code != http.StatusAccepted {
		t.Fatalf("submit returned %d: %v", code, v)
	}
	id := v["id"].(string)

	resp, sc := openSSE(t, context.Background(), hs.URL, id)
	defer resp.Body.Close()
	events, _ := readSSE(t, sc)

	progress := 0
	for _, ev := range events[:len(events)-1] {
		if ev.name != "progress" {
			t.Fatalf("unexpected event %q before terminal", ev.name)
		}
		var pe map[string]any
		if err := json.Unmarshal([]byte(ev.data), &pe); err != nil {
			t.Fatalf("progress event not JSON: %v\n%s", err, ev.data)
		}
		if k, _ := pe["kind"].(string); k != "campaign" && k != "prediction" {
			t.Fatalf("progress event with kind %q: %s", k, ev.data)
		}
		progress++
	}
	if progress < 2 {
		t.Fatalf("got %d progress snapshots, want at least 2", progress)
	}
	last := events[len(events)-1]
	if last.name != "done" {
		t.Fatalf("stream ended with %q, want done", last.name)
	}
	var view map[string]any
	if err := json.Unmarshal([]byte(last.data), &view); err != nil {
		t.Fatalf("done event not JSON: %v", err)
	}
	if view["status"] != StatusDone || view["id"] != id {
		t.Fatalf("terminal view = %v", view)
	}
	if _, ok := view["result"].(map[string]any); !ok {
		t.Fatalf("terminal view has no result: %v", view)
	}
}

// TestSSEAfterCompletion: connecting to a finished job replays the last
// snapshots and ends with the done event immediately — no hang.
func TestSSEAfterCompletion(t *testing.T) {
	st, err := store.Open(store.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	_, hs := newTestServer(t, st, 2, 16)
	code, v := postJSON(t, hs.URL+"/v1/predictions", predBody)
	if code != http.StatusAccepted {
		t.Fatalf("submit returned %d: %v", code, v)
	}
	id := v["id"].(string)
	pollDone(t, hs.URL, id)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	resp, sc := openSSE(t, ctx, hs.URL, id)
	defer resp.Body.Close()
	events, _ := readSSE(t, sc)
	if len(events) == 0 || events[len(events)-1].name != "done" {
		t.Fatalf("finished job stream = %+v, want replay then done", events)
	}
}

// TestSSEClientDisconnect: dropping the stream mid-job must not cancel or
// fail the job — the subscription is observation-only, and other clients
// keep streaming.
func TestSSEClientDisconnect(t *testing.T) {
	st, err := store.Open(store.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	_, hs := newTestServer(t, st, 2, 16)
	code, v := postJSON(t, hs.URL+"/v1/predictions", predBody)
	if code != http.StatusAccepted {
		t.Fatalf("submit returned %d: %v", code, v)
	}
	id := v["id"].(string)

	// First client connects and hangs up after the first event (or at
	// once, if nothing arrived yet).
	ctx, cancel := context.WithCancel(context.Background())
	resp, sc := openSSE(t, ctx, hs.URL, id)
	if sc.Scan() {
		_ = sc.Text()
	}
	cancel()
	resp.Body.Close()

	// The job still completes (pollDone fails the test on canceled/failed)
	// and a second client still gets the full stream end.
	pollDone(t, hs.URL, id)
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	resp2, sc2 := openSSE(t, ctx2, hs.URL, id)
	defer resp2.Body.Close()
	events, _ := readSSE(t, sc2)
	if len(events) == 0 || events[len(events)-1].name != "done" {
		t.Fatalf("second client stream = %+v, want done", events)
	}
}

// TestSSEHeartbeat: an idle stream carries comment heartbeats so proxies
// keep the connection alive.
func TestSSEHeartbeat(t *testing.T) {
	srv := New(Config{Trials: 10, Seed: 42, Workers: 1, Queue: 4,
		HeartbeatEvery: 5 * time.Millisecond})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Close(ctx)
	})

	code, v := postJSON(t, hs.URL+"/v1/predictions", predBody)
	if code != http.StatusAccepted {
		t.Fatalf("submit returned %d: %v", code, v)
	}
	resp, sc := openSSE(t, context.Background(), hs.URL, v["id"].(string))
	defer resp.Body.Close()
	if _, heartbeats := readSSE(t, sc); heartbeats == 0 {
		t.Fatal("no heartbeat comments on the stream")
	}
}

// TestSSEUnknownJob: the events endpoint 404s like the job endpoint.
func TestSSEUnknownJob(t *testing.T) {
	_, hs := newTestServer(t, nil, 1, 4)
	resp, err := http.Get(hs.URL + "/v1/predictions/doesnotexist/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job events = %d, want 404", resp.StatusCode)
	}
}

// TestStatusEndpoint: /v1/status reports per-state job counts and the
// scheduler occupancy document.
func TestStatusEndpoint(t *testing.T) {
	st, err := store.Open(store.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	_, hs := newTestServer(t, st, 2, 16)

	code, v := getJSON(t, hs.URL+"/v1/status")
	if code != http.StatusOK || v["status"] != "ok" {
		t.Fatalf("/v1/status = %d %v", code, v)
	}
	if v["jobs_total"].(float64) != 0 {
		t.Fatalf("fresh server reports %v jobs", v["jobs_total"])
	}

	code, sub := postJSON(t, hs.URL+"/v1/predictions", predBody)
	if code != http.StatusAccepted {
		t.Fatalf("submit returned %d: %v", code, sub)
	}
	pollDone(t, hs.URL, sub["id"].(string))

	_, v = getJSON(t, hs.URL+"/v1/status")
	jobs, _ := v["jobs"].(map[string]any)
	if jobs[StatusDone].(float64) != 1 {
		t.Fatalf("status jobs = %v, want one done", jobs)
	}
	sched, _ := v["scheduler"].(map[string]any)
	if sched == nil || sched["worker_budget_size"].(float64) <= 0 {
		t.Fatalf("status scheduler view = %v", sched)
	}
	if v["campaigns_tracked"].(float64) == 0 {
		t.Fatal("no campaigns tracked on the progress bus after a job")
	}
}
