package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"resmod/internal/dist"
	"resmod/internal/exper"
	"resmod/internal/store"
	"resmod/internal/telemetry"
)

// latencyBuckets are the prediction-latency histogram bounds in seconds.
// Campaign work ranges from milliseconds (tiny test configs, warm golden
// caches) to minutes (paper-scale trial counts), so the buckets span both.
var latencyBuckets = []float64{0.005, 0.025, 0.1, 0.5, 1, 5, 15, 60, 300}

// queueWaitBuckets bound the admission-to-start wait histogram: an idle
// server starts jobs in microseconds, a saturated one in minutes.
var queueWaitBuckets = []float64{0.0005, 0.005, 0.025, 0.1, 0.5, 1, 5, 30, 120}

// histogram is a Prometheus-style cumulative histogram.
type histogram struct {
	bounds []float64

	mu      sync.Mutex
	buckets []uint64 // one per bound, plus +Inf at the end
	sum     float64
	count   uint64
}

func newHistogram() *histogram {
	return newBucketHistogram(latencyBuckets)
}

// newBucketHistogram builds a histogram over custom ascending bounds.
func newBucketHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, buckets: make([]uint64, len(bounds)+1)}
}

// observe records one sample.
func (h *histogram) observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i]++
	h.sum += v
	h.count++
}

// write emits the histogram in Prometheus text exposition format.
func (h *histogram) write(w io.Writer, name string) {
	h.writeLabeled(w, name, "")
}

// writeLabeled emits the histogram with an optional fixed label set
// (e.g. `tenant="anon"`) merged into every series.
func (h *histogram) writeLabeled(w io.Writer, name, labels string) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	var cum uint64
	for i, le := range h.bounds {
		cum += h.buckets[i]
		fmt.Fprintf(w, "%s_bucket{%s%sle=\"%g\"} %d\n", name, labels, sep, le, cum)
	}
	cum += h.buckets[len(h.bounds)]
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %g\n", name, h.sum)
		fmt.Fprintf(w, "%s_count %d\n", name, h.count)
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labels, h.sum)
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, h.count)
	}
}

// requestKey labels one HTTP request counter series.  A comparable
// struct key keeps the hot-path increment allocation-free (the old
// fmt.Sprintf key built a string under the lock on every request);
// label formatting happens once, at exposition.
type requestKey struct {
	method string
	route  string
	code   int
}

// metrics is the service's hand-rolled metric registry (the repo is
// stdlib-only, so there is no client_golang; /metrics emits the
// Prometheus text format directly).
type metrics struct {
	start time.Time

	mu           sync.Mutex
	httpRequests map[requestKey]uint64

	submitted   atomic.Uint64 // jobs accepted into the queue
	joined      atomic.Uint64 // submissions that joined an existing job
	cacheHits   atomic.Uint64 // submissions answered from the result store
	cacheMisses atomic.Uint64 // submissions that had to compute
	rejected    atomic.Uint64 // submissions refused (queue full / draining)

	jobsDone     atomic.Uint64
	jobsFailed   atomic.Uint64
	jobsCanceled atomic.Uint64
	inflight     atomic.Int64

	campaigns atomic.Uint64 // campaigns actually executed (not cached)

	authFailures  atomic.Uint64 // submissions with an unknown API key
	idemReplays   atomic.Uint64 // responses replayed from an idempotency record
	idemConflicts atomic.Uint64 // idempotency keys reused with a different payload

	latency *histogram

	tmu        sync.Mutex
	tenantsByN map[string]*tenantMetrics
}

// tenantMetrics is one tenant's admission-control series: how much got
// in, how much was shed and why, and how long admitted work queued.
type tenantMetrics struct {
	admitted    atomic.Uint64 // jobs accepted into the queue
	ratelimited atomic.Uint64 // requests shed by the token bucket (429)
	shedQuota   atomic.Uint64 // submissions shed at the inflight quota (429)
	shedQueue   atomic.Uint64 // submissions shed at queue saturation (429)
	shedDrain   atomic.Uint64 // submissions refused while draining (503)
	queued      atomic.Int64  // jobs currently waiting in the queue
	queueWait   *histogram    // admission-to-start wait, seconds
}

func newMetrics() *metrics {
	return &metrics{
		start:        time.Now(),
		httpRequests: make(map[requestKey]uint64),
		latency:      newHistogram(),
		tenantsByN:   make(map[string]*tenantMetrics),
	}
}

// tenant returns (creating on first touch) the named tenant's series.
func (m *metrics) tenant(name string) *tenantMetrics {
	if name == "" {
		name = AnonTenant
	}
	m.tmu.Lock()
	defer m.tmu.Unlock()
	tm, ok := m.tenantsByN[name]
	if !ok {
		tm = &tenantMetrics{queueWait: newBucketHistogram(queueWaitBuckets)}
		m.tenantsByN[name] = tm
	}
	return tm
}

// tenantNames returns the known tenants in stable order.
func (m *metrics) tenantNames() []string {
	m.tmu.Lock()
	names := make([]string, 0, len(m.tenantsByN))
	for n := range m.tenantsByN {
		names = append(names, n)
	}
	m.tmu.Unlock()
	sort.Strings(names)
	return names
}

// request records one served HTTP request.
func (m *metrics) request(method, route string, code int) {
	k := requestKey{method: method, route: route, code: code}
	m.mu.Lock()
	m.httpRequests[k]++
	m.mu.Unlock()
}

// write emits every metric in Prometheus text exposition format.
// queueDepth is sampled by the caller; storeStats is nil when the server
// runs without a store; engine is the process-wide engine-telemetry
// snapshot (trial outcomes, golden runs, checkpoint writes, duration
// histograms); sched samples the campaign scheduler and progress is the
// server-wide bus's latest snapshot per key (campaign-kind entries
// become per-campaign gauge series).
func (m *metrics) write(w io.Writer, queueDepth int, storeStats *store.Stats, engine telemetry.Snapshot,
	sched exper.SchedulerStats, progress []telemetry.ProgressEvent, tenantInflight []tenantGauge,
	distStats *dist.PoolStats, fleet []dist.WorkerInfo, alerts []telemetry.Alert) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}

	fmt.Fprintf(w, "# HELP resmod_http_requests_total Served HTTP requests.\n")
	fmt.Fprintf(w, "# TYPE resmod_http_requests_total counter\n")
	m.mu.Lock()
	keys := make([]requestKey, 0, len(m.httpRequests))
	for k := range m.httpRequests {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.method != b.method {
			return a.method < b.method
		}
		if a.route != b.route {
			return a.route < b.route
		}
		return a.code < b.code
	})
	for _, k := range keys {
		fmt.Fprintf(w, "resmod_http_requests_total{method=%q,path=%q,code=\"%d\"} %d\n",
			k.method, k.route, k.code, m.httpRequests[k])
	}
	m.mu.Unlock()

	counter("resmod_predictions_submitted_total",
		"Prediction jobs accepted into the queue.", m.submitted.Load())
	counter("resmod_predictions_joined_total",
		"Submissions deduplicated onto an already-known job.", m.joined.Load())
	counter("resmod_prediction_cache_hits_total",
		"Submissions answered from the durable result store.", m.cacheHits.Load())
	counter("resmod_prediction_cache_misses_total",
		"Submissions that required computation.", m.cacheMisses.Load())
	counter("resmod_predictions_rejected_total",
		"Submissions refused because the queue was full or the server was draining.",
		m.rejected.Load())
	counter("resmod_auth_failures_total",
		"Submissions refused for carrying an unknown API key.", m.authFailures.Load())
	counter("resmod_idempotent_replays_total",
		"POST responses replayed verbatim from an idempotency record.",
		m.idemReplays.Load())
	counter("resmod_idempotent_conflicts_total",
		"Idempotency keys reused with a different request payload (409).",
		m.idemConflicts.Load())
	counter("resmod_jobs_done_total", "Prediction jobs completed successfully.",
		m.jobsDone.Load())
	counter("resmod_jobs_failed_total", "Prediction jobs that ended in an error.",
		m.jobsFailed.Load())
	counter("resmod_jobs_canceled_total", "Prediction jobs canceled by shutdown.",
		m.jobsCanceled.Load())
	counter("resmod_campaigns_executed_total",
		"Fault-injection campaigns actually executed (cache hits excluded).",
		m.campaigns.Load())
	// resmod_campaign_trials_total is the sum of the outcome-labeled
	// resmod_trial_total counters by construction (both derive from the
	// same engine snapshot), so the two families always agree — even with
	// campaigns in flight or interrupted.
	counter("resmod_campaign_trials_total",
		"Fault-injection trials actually executed (cache hits excluded).",
		engine.TrialsTotal())

	fmt.Fprintf(w, "# HELP resmod_trial_total Fault-injection trials executed, by outcome.\n")
	fmt.Fprintf(w, "# TYPE resmod_trial_total counter\n")
	for _, oc := range []struct {
		label string
		v     uint64
	}{
		{"success", engine.TrialSuccess},
		{"sdc", engine.TrialSDC},
		{"failure", engine.TrialFailure},
		{"other", engine.TrialOther},
	} {
		fmt.Fprintf(w, "resmod_trial_total{outcome=%q} %d\n", oc.label, oc.v)
	}
	counter("resmod_trial_abnormal_total",
		"Trials abandoned after repeated harness errors.", engine.TrialsAbnormal)
	counter("resmod_trial_retried_total",
		"Retries of abnormal trials.", engine.TrialsRetried)
	counter("resmod_golden_runs_total",
		"Fault-free reference executions computed.", engine.GoldenRuns)
	counter("resmod_checkpoint_writes_total",
		"Campaign checkpoint snapshots written.", engine.CheckpointWrites)

	gauge("resmod_queue_depth", "Jobs waiting in the scheduler queue.",
		float64(queueDepth))
	gauge("resmod_jobs_inflight", "Jobs currently being computed.",
		float64(m.inflight.Load()))
	gauge("resmod_uptime_seconds", "Seconds since the server started.",
		time.Since(m.start).Seconds())
	gauge("resmod_worker_budget_in_use",
		"Trial-worker tokens currently held by in-flight trials.",
		float64(sched.WorkerBudgetInUse))
	gauge("resmod_worker_budget_size",
		"Trial-worker token pool capacity shared by all campaigns.",
		float64(sched.WorkerBudgetSize))
	gauge("resmod_campaigns_running",
		"Campaigns currently holding an execution slot.",
		float64(sched.CampaignsRunning))
	gauge("resmod_campaigns_queued",
		"Campaigns blocked waiting for an execution slot.",
		float64(sched.CampaignsQueued))

	// Per-campaign live-progress gauges from the server-wide bus.  HELP
	// and TYPE lines are emitted even with no tracked campaigns, so the
	// families are always discoverable.
	fmt.Fprintf(w, "# HELP resmod_campaign_progress_ratio Completed fraction of each tracked campaign.\n")
	fmt.Fprintf(w, "# TYPE resmod_campaign_progress_ratio gauge\n")
	for _, ev := range progress {
		if ev.Kind != telemetry.KindCampaign {
			continue
		}
		fmt.Fprintf(w, "resmod_campaign_progress_ratio{campaign=%q} %g\n", ev.Key, ev.Ratio())
	}
	fmt.Fprintf(w, "# HELP resmod_trials_per_second Trial throughput of each tracked campaign (this run).\n")
	fmt.Fprintf(w, "# TYPE resmod_trials_per_second gauge\n")
	for _, ev := range progress {
		if ev.Kind != telemetry.KindCampaign {
			continue
		}
		fmt.Fprintf(w, "resmod_trials_per_second{campaign=%q} %g\n", ev.Key, ev.TrialsPerSec)
	}

	// Per-tenant admission-control families.  HELP and TYPE lines are
	// always emitted so the families are discoverable before any traffic;
	// series appear as tenants first touch the service.
	names := m.tenantNames()
	fmt.Fprintf(w, "# HELP resmod_tenant_admitted_total Jobs admitted into the queue, by tenant.\n")
	fmt.Fprintf(w, "# TYPE resmod_tenant_admitted_total counter\n")
	for _, n := range names {
		fmt.Fprintf(w, "resmod_tenant_admitted_total{tenant=%q} %d\n", n, m.tenant(n).admitted.Load())
	}
	fmt.Fprintf(w, "# HELP resmod_tenant_ratelimited_total Requests shed by the tenant's token bucket (429).\n")
	fmt.Fprintf(w, "# TYPE resmod_tenant_ratelimited_total counter\n")
	for _, n := range names {
		fmt.Fprintf(w, "resmod_tenant_ratelimited_total{tenant=%q} %d\n", n, m.tenant(n).ratelimited.Load())
	}
	fmt.Fprintf(w, "# HELP resmod_tenant_shed_total Submissions shed before admission, by tenant and reason (quota/queue are 429, drain is 503).\n")
	fmt.Fprintf(w, "# TYPE resmod_tenant_shed_total counter\n")
	for _, n := range names {
		tm := m.tenant(n)
		for _, rc := range []struct {
			reason string
			v      uint64
		}{
			{"quota", tm.shedQuota.Load()},
			{"queue", tm.shedQueue.Load()},
			{"drain", tm.shedDrain.Load()},
		} {
			fmt.Fprintf(w, "resmod_tenant_shed_total{tenant=%q,reason=%q} %d\n", n, rc.reason, rc.v)
		}
	}
	fmt.Fprintf(w, "# HELP resmod_tenant_queued Jobs currently waiting in the queue, by tenant.\n")
	fmt.Fprintf(w, "# TYPE resmod_tenant_queued gauge\n")
	for _, n := range names {
		fmt.Fprintf(w, "resmod_tenant_queued{tenant=%q} %d\n", n, m.tenant(n).queued.Load())
	}
	fmt.Fprintf(w, "# HELP resmod_tenant_inflight Queued-plus-running jobs charged to each tenant's quota.\n")
	fmt.Fprintf(w, "# TYPE resmod_tenant_inflight gauge\n")
	for _, g := range tenantInflight {
		fmt.Fprintf(w, "resmod_tenant_inflight{tenant=%q} %g\n", g.tenant, g.value)
	}
	fmt.Fprintf(w, "# HELP resmod_queue_wait_seconds Admission-to-start wait of executed jobs, by tenant.\n")
	fmt.Fprintf(w, "# TYPE resmod_queue_wait_seconds histogram\n")
	for _, n := range names {
		m.tenant(n).queueWait.writeLabeled(w, "resmod_queue_wait_seconds", fmt.Sprintf("tenant=%q", n))
	}

	// Coordinator (distributed execution) families; absent on plain
	// servers, like the store families.
	if distStats != nil {
		gauge("resmod_dist_workers_known",
			"Workers ever registered with this coordinator.",
			float64(distStats.WorkersKnown))
		gauge("resmod_dist_workers_alive",
			"Registered workers with a fresh heartbeat.",
			float64(distStats.WorkersAlive))
		counter("resmod_dist_heartbeats_total",
			"Worker heartbeats accepted.", distStats.Heartbeats)
		counter("resmod_dist_campaigns_total",
			"Campaigns routed through the distributed pool.", distStats.Campaigns)
		counter("resmod_dist_shards_dispatched_total",
			"Shard dispatches attempted (includes re-dispatches).",
			distStats.ShardsDispatched)
		counter("resmod_dist_shards_completed_total",
			"Shards completed by workers and merged.", distStats.ShardsCompleted)
		counter("resmod_dist_shards_requeued_total",
			"Shards requeued after a worker died or answered garbage.",
			distStats.ShardsRequeued)
		counter("resmod_dist_shards_local_total",
			"Shards the coordinator finished locally after worker loss.",
			distStats.ShardsLocal)

		// Fleet aggregation: the coordinator's view of every worker, one
		// labeled series per worker keyed by its registered name.  HELP and
		// TYPE lines are emitted even with zero workers so the families are
		// discoverable the moment a coordinator starts.
		gauge("resmod_fleet_workers_known",
			"Workers ever registered with this coordinator (fleet view).",
			float64(distStats.WorkersKnown))
		gauge("resmod_fleet_workers_alive",
			"Registered workers with a fresh heartbeat (fleet view).",
			float64(distStats.WorkersAlive))
		counter("resmod_fleet_progress_reports_total",
			"In-flight shard progress reports accepted from workers.",
			distStats.ProgressReports)
		counter("resmod_fleet_progress_stale_total",
			"Shard progress reports dropped for carrying a retired token.",
			distStats.ProgressStale)
		type fleetSeries struct {
			name, help, typ string
			value           func(wi dist.WorkerInfo) (float64, bool)
		}
		for _, fs := range []fleetSeries{
			{"resmod_fleet_worker_up", "Whether the worker's heartbeat is fresh (1) or stale (0).", "gauge",
				func(wi dist.WorkerInfo) (float64, bool) {
					if wi.Alive {
						return 1, true
					}
					return 0, true
				}},
			{"resmod_fleet_worker_heartbeat_age_seconds", "Seconds since the worker's last heartbeat.", "gauge",
				func(wi dist.WorkerInfo) (float64, bool) {
					// LastSeenMS is already an age (milliseconds since the
					// last heartbeat), sampled when the list was built.
					return float64(wi.LastSeenMS) / 1000, true
				}},
			{"resmod_fleet_worker_trials_per_second", "Trial throughput derived from consecutive heartbeat snapshots.", "gauge",
				func(wi dist.WorkerInfo) (float64, bool) { return wi.TrialsPerSec, true }},
			{"resmod_fleet_worker_shards_done_total", "Shards this worker completed (coordinator's count).", "counter",
				func(wi dist.WorkerInfo) (float64, bool) { return float64(wi.ShardsDone), true }},
			{"resmod_fleet_worker_shards_failed_total", "Shard dispatches to this worker that errored (coordinator's count).", "counter",
				func(wi dist.WorkerInfo) (float64, bool) { return float64(wi.ShardsFailed), true }},
			{"resmod_fleet_worker_trials_done_total", "Trials the worker reports having executed.", "counter",
				func(wi dist.WorkerInfo) (float64, bool) {
					if wi.Stats == nil {
						return 0, false
					}
					return float64(wi.Stats.TrialsDone), true
				}},
			{"resmod_fleet_worker_shards_inflight", "Shards the worker reports currently executing.", "gauge",
				func(wi dist.WorkerInfo) (float64, bool) {
					if wi.Stats == nil {
						return 0, false
					}
					return float64(wi.Stats.ShardsInflight), true
				}},
			{"resmod_fleet_worker_golden_cache_hits_total", "Golden-run cache hits the worker reports.", "counter",
				func(wi dist.WorkerInfo) (float64, bool) {
					if wi.Stats == nil {
						return 0, false
					}
					return float64(wi.Stats.GoldenHits), true
				}},
			{"resmod_fleet_worker_golden_cache_misses_total", "Golden-run cache misses the worker reports.", "counter",
				func(wi dist.WorkerInfo) (float64, bool) {
					if wi.Stats == nil {
						return 0, false
					}
					return float64(wi.Stats.GoldenMisses), true
				}},
		} {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", fs.name, fs.help, fs.name, fs.typ)
			for _, wi := range fleet {
				v, ok := fs.value(wi)
				if !ok {
					continue
				}
				fmt.Fprintf(w, "%s{worker=%q} %g\n", fs.name, wi.Name, v)
			}
		}
	}

	if storeStats != nil {
		counter("resmod_store_hits_total", "Result-store lookups that found an entry.",
			storeStats.Hits)
		counter("resmod_store_misses_total", "Result-store lookups that found nothing.",
			storeStats.Misses)
		counter("resmod_store_puts_total", "Result-store writes.", storeStats.Puts)
		counter("resmod_store_evictions_total", "Result-store LRU evictions.",
			storeStats.Evictions)
		counter("resmod_store_corrupt_total",
			"Corrupt or partial store files skipped.", storeStats.Corrupt)
	}

	// Alert-state exposition: one series per rule instance, value encoding
	// the state machine (0 inactive, 1 pending, 2 firing, 3 resolved), so
	// an external scraper can alert on the alerts.  HELP/TYPE are always
	// emitted for discoverability; the firing gauge gives the one-number
	// health signal.
	fmt.Fprintf(w, "# HELP resmod_alerts Alert rule states (0 inactive, 1 pending, 2 firing, 3 resolved).\n")
	fmt.Fprintf(w, "# TYPE resmod_alerts gauge\n")
	firing := 0
	for _, a := range alerts {
		v := 0
		switch a.State {
		case telemetry.AlertPending:
			v = 1
		case telemetry.AlertFiring:
			v = 2
			firing++
		case telemetry.AlertResolved:
			v = 3
		}
		if a.Instance != "" {
			fmt.Fprintf(w, "resmod_alerts{rule=%q,instance=%q,state=%q} %d\n",
				a.Rule, a.Instance, a.State, v)
		} else {
			fmt.Fprintf(w, "resmod_alerts{rule=%q,state=%q} %d\n", a.Rule, a.State, v)
		}
	}
	gauge("resmod_alerts_firing", "Alert rule instances currently firing.", float64(firing))

	fmt.Fprintf(w, "# HELP resmod_prediction_duration_seconds Wall time of computed predictions.\n")
	fmt.Fprintf(w, "# TYPE resmod_prediction_duration_seconds histogram\n")
	m.latency.write(w, "resmod_prediction_duration_seconds")

	writeHistSnapshot(w, "resmod_trial_duration_seconds",
		"Wall time of individual fault-injection trials.", engine.TrialLatency)
	writeHistSnapshot(w, "resmod_campaign_duration_seconds",
		"Wall time of executed campaigns.", engine.CampaignDuration)
}

// writeHistSnapshot emits a telemetry histogram snapshot (per-bucket
// counts) as a Prometheus cumulative histogram.
func writeHistSnapshot(w io.Writer, name, help string, s telemetry.HistSnapshot) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum uint64
	for i, le := range s.Bounds {
		if i < len(s.Counts) {
			cum += s.Counts[i]
		}
		fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, le, cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, s.Count)
	fmt.Fprintf(w, "%s_sum %g\n", name, s.Sum)
	fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
}
