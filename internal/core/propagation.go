package core

import (
	"fmt"

	"resmod/internal/stats"
)

// GroupProfile aggregates a large-scale contamination histogram (p bins)
// into s groups and returns the grouped probability vector — the paper's
// Figure 1b -> 1c transformation used to compare against a small-scale
// profile.
func GroupProfile(large *stats.Hist, s int) ([]float64, error) {
	return large.Group(s)
}

// PropagationSimilarity computes the paper's Table 2 metric: the cosine
// similarity between a small-scale propagation profile (s bins) and the
// large-scale profile grouped into s bins.
func PropagationSimilarity(small, large *stats.Hist) (float64, error) {
	s := small.P()
	grouped, err := large.Group(s)
	if err != nil {
		return 0, fmt.Errorf("core: cannot group %d-rank histogram into %d bins: %w",
			large.P(), s, err)
	}
	return stats.Cosine(small.Probabilities(), grouped)
}

// PredictionError returns |measured - predicted| of the success rate — the
// per-benchmark quantity behind the paper's Figures 5–7.
func PredictionError(measured, predicted stats.Rates) float64 {
	d := measured.Success - predicted.Success
	if d < 0 {
		d = -d
	}
	return d
}
