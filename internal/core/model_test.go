package core

import (
	"math"
	"testing"
	"testing/quick"

	"resmod/internal/stats"
)

func r(success, sdc, failure float64) stats.Rates {
	return stats.Rates{Success: success, SDC: sdc, Failure: failure, N: 1000}
}

func TestSampleXsPaperExample(t *testing.T) {
	// Paper §4.2: p=64, S=4 -> measure FI_ser at 1, 32, 48, 64.
	xs, err := SampleXs(64, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 32, 48, 64}
	for i := range want {
		if xs[i] != want[i] {
			t.Fatalf("SampleXs(64,4) = %v, want %v", xs, want)
		}
	}
}

func TestSampleXsMore(t *testing.T) {
	xs, err := SampleXs(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 16, 24, 32, 40, 48, 56, 64}
	for i := range want {
		if xs[i] != want[i] {
			t.Fatalf("SampleXs(64,8) = %v, want %v", xs, want)
		}
	}
	if _, err := SampleXs(64, 5); err == nil {
		t.Fatal("S=5 does not divide 64 but was accepted")
	}
	if _, err := SampleXs(0, 1); err == nil {
		t.Fatal("p=0 accepted")
	}
}

func TestBucketPaperExample(t *testing.T) {
	// Paper: FI_ser_2..FI_ser_16 approximated by sample 1 (bucket 1),
	// FI_ser_17..FI_ser_32 by sample 2 (FI_ser_32).
	cases := []struct{ x, want int }{
		{1, 1}, {2, 1}, {16, 1}, {17, 2}, {32, 2}, {33, 3}, {48, 3}, {49, 4}, {64, 4},
	}
	for _, c := range cases {
		if got := Bucket(c.x, 64, 4); got != c.want {
			t.Fatalf("Bucket(%d, 64, 4) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestBucketCoversAllSamples(t *testing.T) {
	f := func(pRaw, sRaw uint8) bool {
		s := int(sRaw%6) + 1
		p := s * (int(pRaw%10) + 1)
		seen := make(map[int]bool)
		for x := 1; x <= p; x++ {
			b := Bucket(x, p, s)
			if b < 1 || b > s {
				return false
			}
			seen[b] = true
		}
		return len(seen) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func mustCurve(t *testing.T, p int, rates []stats.Rates) *SerialCurve {
	t.Helper()
	xs, err := SampleXs(p, len(rates))
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewSerialCurve(p, xs, rates)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPredictPaperExampleEq8(t *testing.T) {
	// Eq. 8: FI_par_common = FI_ser_1*r'_1 + FI_ser_32*r'_2 +
	//        FI_ser_48*r'_3 + FI_ser_64*r'_4 (p=64, S=4, no tuning,
	//        no parallel-unique computation).
	serial := mustCurve(t, 64, []stats.Rates{
		r(0.9, 0.1, 0), r(0.6, 0.4, 0), r(0.5, 0.5, 0), r(0.4, 0.6, 0),
	})
	profile := []float64{0.7, 0.1, 0.1, 0.1}
	pred, err := Predict(Inputs{
		P: 64, Serial: serial, SmallProfile: profile,
		SmallConditional: map[int]stats.Rates{},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.7*0.9 + 0.1*0.6 + 0.1*0.5 + 0.1*0.4
	if math.Abs(pred.Rates.Success-want) > 1e-12 {
		t.Fatalf("predicted success = %g, want %g", pred.Rates.Success, want)
	}
	if pred.Tuned {
		t.Fatal("tuned without small-scale data")
	}
}

func TestPredictConvexity(t *testing.T) {
	// The prediction must lie within [min, max] of the inputs' success
	// rates (it is a convex combination when untuned and prob2=0).
	f := func(raw [4]uint8, rawProf [4]uint8) bool {
		rates := make([]stats.Rates, 4)
		lo, hi := 1.0, 0.0
		for i := range rates {
			s := float64(raw[i]) / 255
			rates[i] = r(s, 1-s, 0)
			if s < lo {
				lo = s
			}
			if s > hi {
				hi = s
			}
		}
		var total float64
		prof := make([]float64, 4)
		for i := range prof {
			prof[i] = float64(rawProf[i]) + 1
			total += prof[i]
		}
		for i := range prof {
			prof[i] /= total
		}
		xs, _ := SampleXs(64, 4)
		curve, err := NewSerialCurve(64, xs, rates)
		if err != nil {
			return false
		}
		pred, err := Predict(Inputs{P: 64, Serial: curve, SmallProfile: prof,
			SmallConditional: map[int]stats.Rates{}})
		if err != nil {
			return false
		}
		return pred.Rates.Success >= lo-1e-12 && pred.Rates.Success <= hi+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPredictRatesSumToOne(t *testing.T) {
	// With rate vectors summing to 1 and prob2 mixing, the prediction sums
	// to 1 (untuned).
	serial := mustCurve(t, 8, []stats.Rates{r(0.8, 0.15, 0.05), r(0.5, 0.4, 0.1)})
	pred, err := Predict(Inputs{
		P: 8, Serial: serial, SmallProfile: []float64{0.6, 0.4},
		SmallConditional: map[int]stats.Rates{},
		Prob2:            0.1, Unique: r(0.3, 0.6, 0.1),
	})
	if err != nil {
		t.Fatal(err)
	}
	sum := pred.Rates.Success + pred.Rates.SDC + pred.Rates.Failure
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("prediction sums to %g", sum)
	}
}

func TestTuningDecisionAndAlpha(t *testing.T) {
	// Serial says success=0.9 at x=1 but the small scale measured 0.5 for
	// one contaminated rank: 44% disagreement -> tuning kicks in, and the
	// x=1 sample is replaced by exactly the small-scale value
	// (alpha_1 = small_1/ser_1).
	serial := mustCurve(t, 8, []stats.Rates{r(0.9, 0.1, 0), r(0.6, 0.4, 0)})
	cond := map[int]stats.Rates{
		1: r(0.5, 0.5, 0),
		2: r(0.45, 0.55, 0),
	}
	pred, err := Predict(Inputs{
		P: 8, Serial: serial, SmallProfile: []float64{1, 0},
		SmallConditional: cond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !pred.Tuned {
		t.Fatalf("not tuned despite %.0f%% disagreement", 100*pred.Disagreement)
	}
	if math.Abs(pred.Rates.Success-0.5) > 1e-12 {
		t.Fatalf("tuned prediction = %g, want 0.5", pred.Rates.Success)
	}
}

func TestTuningSkippedWhenClose(t *testing.T) {
	serial := mustCurve(t, 8, []stats.Rates{r(0.9, 0.1, 0), r(0.6, 0.4, 0)})
	cond := map[int]stats.Rates{1: r(0.85, 0.15, 0)}
	pred, err := Predict(Inputs{
		P: 8, Serial: serial, SmallProfile: []float64{0.5, 0.5},
		SmallConditional: cond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pred.Tuned {
		t.Fatalf("tuned at %.0f%% disagreement (threshold 20%%)", 100*pred.Disagreement)
	}
}

func TestForceTuneOverride(t *testing.T) {
	serial := mustCurve(t, 8, []stats.Rates{r(0.9, 0.1, 0), r(0.6, 0.4, 0)})
	cond := map[int]stats.Rates{1: r(0.85, 0.15, 0)}
	force := true
	pred, err := Predict(Inputs{
		P: 8, Serial: serial, SmallProfile: []float64{1, 0},
		SmallConditional: cond, ForceTune: &force,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !pred.Tuned || math.Abs(pred.Rates.Success-0.85) > 1e-12 {
		t.Fatalf("forced tuning: %+v", pred)
	}
}

func TestAlphaBeyondSUsesAlphaS(t *testing.T) {
	// S=2: sample x=1 uses alpha_1, sample x=8 (>S) uses alpha_2 = alpha_S.
	serial := mustCurve(t, 8, []stats.Rates{r(0.8, 0.2, 0), r(0.4, 0.6, 0)})
	cond := map[int]stats.Rates{
		1: r(0.4, 0.6, 0), // alpha_1 success = 0.5
		2: r(0.2, 0.8, 0), // alpha_S: based on FI_ser at x=2 -> bucket 1 (0.8): 0.25
	}
	pred, err := Predict(Inputs{
		P: 8, Serial: serial, SmallProfile: []float64{0, 1},
		SmallConditional: cond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Bucket 2's sample is x=8: alpha_S = small_2/ser@2 = 0.2/0.8 = 0.25
	// componentwise (0.25, 4, 1), so the scaled sample is
	// (0.4*0.25, 0.6*4, 0) = (0.1, 2.4, 0) — mass 2.5 — which
	// renormalizes to success 0.1/2.5 = 0.04.
	if !pred.Tuned {
		t.Fatal("expected tuning")
	}
	if math.Abs(pred.Rates.Success-0.04) > 1e-12 {
		t.Fatalf("success = %g, want 0.04", pred.Rates.Success)
	}
	assertDistribution(t, pred.Rates)
}

// assertDistribution checks that a predicted FI result is a probability
// distribution over {Success, SDC, Failure}.
func assertDistribution(t *testing.T, r stats.Rates) {
	t.Helper()
	sum := r.Success + r.SDC + r.Failure
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("rates sum to %g, want 1: %+v", sum, r)
	}
}

func TestTunedPredictionRatesSumToOne(t *testing.T) {
	// Componentwise alpha scaling distorts sample mass (here alpha =
	// (0.25, 4, 1) on a sample summing to 1); the tuned prediction must
	// still be a distribution, including under prob2 mixing.
	serial := mustCurve(t, 8, []stats.Rates{r(0.8, 0.2, 0), r(0.4, 0.6, 0)})
	cond := map[int]stats.Rates{
		1: r(0.4, 0.6, 0),
		2: r(0.2, 0.8, 0),
	}
	for _, prob2 := range []float64{0, 0.15, 0.5} {
		pred, err := Predict(Inputs{
			P: 8, Serial: serial, SmallProfile: []float64{0.3, 0.7},
			SmallConditional: cond,
			Prob2:            prob2, Unique: r(0.3, 0.6, 0.1),
		})
		if err != nil {
			t.Fatal(err)
		}
		if !pred.Tuned {
			t.Fatal("expected tuning")
		}
		assertDistribution(t, pred.Rates)
		assertDistribution(t, pred.Common)
	}
}

func TestPredictValidation(t *testing.T) {
	serial := mustCurve(t, 8, []stats.Rates{r(1, 0, 0), r(1, 0, 0)})
	cases := []Inputs{
		{},
		{P: 4, Serial: serial, SmallProfile: []float64{1, 0}},
		{P: 8, Serial: serial, SmallProfile: nil},
		{P: 8, Serial: serial, SmallProfile: []float64{0.5, 0.2}}, // mass != 1
		{P: 8, Serial: serial, SmallProfile: []float64{1.5, -0.5}},
		{P: 8, Serial: serial, SmallProfile: []float64{1, 0}, Prob2: 2},
		{P: 8, Serial: serial, SmallProfile: []float64{0.5, 0.25, 0.25}}, // bucket mismatch
	}
	for i, in := range cases {
		if _, err := Predict(in); err == nil {
			t.Fatalf("case %d accepted: %+v", i, in)
		}
	}
}

func TestNewSerialCurveValidation(t *testing.T) {
	if _, err := NewSerialCurve(8, []int{1, 3}, []stats.Rates{r(1, 0, 0), r(1, 0, 0)}); err == nil {
		t.Fatal("wrong sample points accepted")
	}
	if _, err := NewSerialCurve(8, nil, nil); err == nil {
		t.Fatal("empty curve accepted")
	}
}

func TestPropagationSimilarityIdentical(t *testing.T) {
	small := stats.NewHist(8)
	large := stats.NewHist(64)
	// 77% one-rank, 22% all-ranks, 1% three ranks — scaled consistently.
	for i := 0; i < 77; i++ {
		small.Add(1)
		large.Add(1)
	}
	for i := 0; i < 22; i++ {
		small.Add(8)
		large.Add(64)
	}
	small.Add(3)
	large.Add(17) // group 3 of 8 covers bins 17..24
	sim, err := PropagationSimilarity(small, large)
	if err != nil {
		t.Fatal(err)
	}
	if sim < 0.999 {
		t.Fatalf("similarity = %g, want ~1", sim)
	}
}

func TestPropagationSimilarityDissimilar(t *testing.T) {
	small := stats.NewHist(4)
	large := stats.NewHist(64)
	// Small scale: everything propagates everywhere; large: nothing does.
	for i := 0; i < 100; i++ {
		small.Add(4)
		large.Add(1)
	}
	sim, err := PropagationSimilarity(small, large)
	if err != nil {
		t.Fatal(err)
	}
	if sim > 0.1 {
		t.Fatalf("similarity = %g, want ~0", sim)
	}
}

func TestPredictionError(t *testing.T) {
	if got := PredictionError(r(0.8, 0.2, 0), r(0.7, 0.3, 0)); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("PredictionError = %g", got)
	}
}
