// Package core implements the paper's primary contribution: the empirical
// model that predicts the fault injection result of a large-scale parallel
// execution (p ranks) from (a) serial fault injection campaigns with
// multiple simultaneous errors and (b) a small-scale parallel campaign
// (S ranks) used to profile error propagation and optionally fine-tune the
// serial results.
//
// Paper equations implemented here (§4.2):
//
//	FI_par        = prob1*FI_par_common + prob2*FI_par_unique        (Eq. 1)
//	FI_par_common = sum_x r_x * FI_ser_x                             (Eq. 4)
//	r_x           = r'_bucket(x)  via the sampling map                (Eq. 5)
//	alpha_x       = FI_small_par_x / FI_ser_x  (x <= S), alpha_S above
//	FI'_ser_x     = alpha_x * FI_ser_x   (fine-tuning, when the serial
//	                and small-scale results differ by more than 20%)
//
// The worked example of Eqs. 6–8 (p=64, S=4) is covered by the tests.
package core

import (
	"errors"
	"fmt"

	"resmod/internal/stats"
)

// SampleXs returns the paper's serial sampling points for predicting scale
// p with S samples: x_1 = 1 and x_i = i*p/S for i = 2..S (for p=64, S=4:
// 1, 32, 48, 64).  It requires S to divide p.
func SampleXs(p, s int) ([]int, error) {
	if s < 1 || p < 1 || s > p || p%s != 0 {
		return nil, fmt.Errorf("core: invalid sampling %d of %d (S must divide p)", s, p)
	}
	xs := make([]int, s)
	xs[0] = 1
	for i := 2; i <= s; i++ {
		xs[i-1] = i * p / s
	}
	return xs, nil
}

// Bucket returns the 1-based sample bucket of error count x under the
// paper's sampling map: x in ((i-1)*p/S, i*p/S] belongs to bucket i, so
// FI_ser_x is approximated by the bucket's sample (for p=64, S=4:
// x=1..16 -> bucket 1, x=17..32 -> bucket 2, ...).
func Bucket(x, p, s int) int {
	b := (x*s + p - 1) / p // ceil(x*S/p)
	if b < 1 {
		b = 1
	}
	if b > s {
		b = s
	}
	return b
}

// SerialCurve holds the sampled serial fault injection results FI_ser_x:
// Rates[i] is the result of the deployment that injected Xs[i]
// simultaneous errors into the common computation of the serial execution.
type SerialCurve struct {
	P     int
	Xs    []int
	Rates []stats.Rates
}

// NewSerialCurve validates and builds a curve.  Xs must be the SampleXs of
// (p, len(rates)).
func NewSerialCurve(p int, xs []int, rates []stats.Rates) (*SerialCurve, error) {
	if len(xs) == 0 || len(xs) != len(rates) {
		return nil, errors.New("core: serial curve needs equal, non-empty Xs and Rates")
	}
	want, err := SampleXs(p, len(xs))
	if err != nil {
		return nil, err
	}
	for i := range xs {
		if xs[i] != want[i] {
			return nil, fmt.Errorf("core: serial sample points %v do not match paper sampling %v", xs, want)
		}
	}
	return &SerialCurve{P: p, Xs: xs, Rates: rates}, nil
}

// S returns the number of samples.
func (c *SerialCurve) S() int { return len(c.Xs) }

// At approximates FI_ser_x for any x in [1, p] by the sampled bucket
// (paper's sampling-based approach).
func (c *SerialCurve) At(x int) stats.Rates {
	return c.Rates[Bucket(x, c.P, c.S())-1]
}

// times scales rates componentwise by alpha (also componentwise).
func times(r stats.Rates, alpha [3]float64) stats.Rates {
	return stats.Rates{
		Success: r.Success * alpha[0],
		SDC:     r.SDC * alpha[1],
		Failure: r.Failure * alpha[2],
		N:       r.N,
	}
}

// renormalize rescales a rate triple so the components again sum to 1.
// Componentwise alpha scaling distorts the total mass, but FI results are
// distributions over {Success, SDC, Failure}; a tuned sample that summed
// to anything else would leak that distortion into FI_par via Eqs. 4 and
// 1.  Rates with no mass are returned unchanged.
func renormalize(r stats.Rates) stats.Rates {
	sum := r.Success + r.SDC + r.Failure
	if sum <= 0 {
		return r
	}
	r.Success /= sum
	r.SDC /= sum
	r.Failure /= sum
	return r
}

// alphaOf computes the componentwise fine-tuning factor
// alpha = small / serial with a guard: components with no serial mass get
// factor 1 (nothing to scale).
func alphaOf(small, serial stats.Rates) [3]float64 {
	ratio := func(s, g float64) float64 {
		const eps = 1e-9
		if g < eps {
			return 1
		}
		return s / g
	}
	return [3]float64{
		ratio(small.Success, serial.Success),
		ratio(small.SDC, serial.SDC),
		ratio(small.Failure, serial.Failure),
	}
}

// Inputs gathers everything the model consumes.
type Inputs struct {
	// P is the target (large) scale.
	P int
	// Serial is the sampled serial multi-error curve (FI_ser_x).
	Serial *SerialCurve
	// SmallProfile is r'_x for x = 1..S, the error-propagation profile
	// measured in the small-scale campaign (paper Observation 3); it must
	// sum to ~1.
	SmallProfile []float64
	// SmallConditional holds FI_small_par_x — the small-scale fault
	// injection result conditioned on x ranks contaminated — used both for
	// the 20% tuning decision and for the alpha factors.  Missing x values
	// are tolerated (alpha defaults to 1).
	SmallConditional map[int]stats.Rates
	// Prob2 is the probability an error strikes the parallel-unique
	// computation at the target scale (Eq. 1's second weight); Prob1 is
	// 1 - Prob2.
	Prob2 float64
	// Unique is FI_par_unique, measured by a small-scale deployment
	// restricted to the parallel-unique computation.  Ignored when Prob2
	// is 0.
	Unique stats.Rates
	// ForceTune, when non-nil, overrides the automatic tuning decision:
	// true always applies alpha fine-tuning, false never does.  Nil (the
	// default) lets the measured disagreement against TuneThreshold
	// decide.
	ForceTune *bool
	// TuneThreshold is the serial-vs-small disagreement (relative, on the
	// success rate) above which fine-tuning activates.  Non-positive
	// selects the paper's 0.2.
	TuneThreshold float64
}

// Prediction is the model's output.
type Prediction struct {
	// Rates is the predicted fault injection result FI_par.
	Rates stats.Rates
	// Common is the predicted FI_par_common component (Eq. 4).
	Common stats.Rates
	// Tuned reports whether alpha fine-tuning was applied.
	Tuned bool
	// Disagreement is the measured serial-vs-small relative difference
	// that drove the tuning decision.
	Disagreement float64
}

// Predict evaluates the model.
func Predict(in Inputs) (*Prediction, error) {
	if in.Serial == nil {
		return nil, errors.New("core: Inputs.Serial is nil")
	}
	if in.P != in.Serial.P {
		return nil, fmt.Errorf("core: target scale %d does not match serial curve scale %d",
			in.P, in.Serial.P)
	}
	s := len(in.SmallProfile)
	if s == 0 {
		return nil, errors.New("core: empty SmallProfile")
	}
	if in.Serial.S() != s {
		return nil, fmt.Errorf("core: serial curve has %d samples but profile has %d buckets — the paper pairs them 1:1",
			in.Serial.S(), s)
	}
	var mass float64
	for _, r := range in.SmallProfile {
		if r < 0 {
			return nil, fmt.Errorf("core: negative propagation probability %g", r)
		}
		mass += r
	}
	if mass < 0.999 || mass > 1.001 {
		return nil, fmt.Errorf("core: propagation profile sums to %g, want 1", mass)
	}
	if in.Prob2 < 0 || in.Prob2 > 1 {
		return nil, fmt.Errorf("core: Prob2 %g out of [0,1]", in.Prob2)
	}
	threshold := in.TuneThreshold
	if threshold <= 0 {
		threshold = 0.2
	}

	// Tuning decision: compare FI_ser_x against FI_small_par_x for
	// x = 1..S (paper §4.2: "larger than 20% difference").
	disagreement := 0.0
	for x := 1; x <= s; x++ {
		small, ok := in.SmallConditional[x]
		if !ok || small.N == 0 {
			continue
		}
		ser := in.Serial.At(x)
		d := relDiff(small.Success, ser.Success)
		if d > disagreement {
			disagreement = d
		}
	}
	tune := disagreement > threshold
	if in.ForceTune != nil {
		tune = *in.ForceTune
	}

	// Fine-tuned serial samples: alpha_x for x <= S from the small scale;
	// alpha_x = alpha_S beyond (paper §4.2).
	samples := make([]stats.Rates, s)
	copy(samples, in.Serial.Rates)
	if tune {
		alphaS := [3]float64{1, 1, 1}
		if small, ok := in.SmallConditional[s]; ok && small.N > 0 {
			alphaS = alphaOf(small, in.Serial.At(s))
		}
		for i, x := range in.Serial.Xs {
			a := alphaS
			if x <= s {
				if small, ok := in.SmallConditional[x]; ok && small.N > 0 {
					a = alphaOf(small, in.Serial.Rates[i])
				}
			}
			samples[i] = renormalize(times(samples[i], a))
		}
	}

	// Eq. 4 under the sampling map (Eqs. 7–8): bucket i of the
	// propagation profile pairs with serial sample i.
	var common stats.Rates
	for i := 0; i < s; i++ {
		common = common.Plus(samples[i].Scale(in.SmallProfile[i]))
	}

	// Eq. 1.
	rates := common.Scale(1 - in.Prob2)
	if in.Prob2 > 0 {
		rates = rates.Plus(in.Unique.Scale(in.Prob2))
	}
	return &Prediction{
		Rates:        rates,
		Common:       common,
		Tuned:        tune,
		Disagreement: disagreement,
	}, nil
}

// relDiff returns |a-b| / max(|b|, eps).
func relDiff(a, b float64) float64 {
	const eps = 1e-9
	d := a - b
	if d < 0 {
		d = -d
	}
	m := b
	if m < 0 {
		m = -m
	}
	if m < eps {
		m = eps
	}
	return d / m
}
