// Package analysis implements the sensitivity characterizations the paper
// builds its fault model on (§2): how the fault injection result depends
// on which bit is struck, which instruction kind is selected, when in the
// execution the fault lands, and what the fault pattern is.  These are the
// ablation studies behind the paper's design choices — e.g. its finding
// that "the fault injection result is sensitive to what type of
// instruction is randomly selected" and its use of single-bit flips as the
// dominant fault mode.
package analysis

import (
	"fmt"
	"time"

	"resmod/internal/apps"
	"resmod/internal/faultsim"
	"resmod/internal/fpe"
	"resmod/internal/stats"
)

// Config shapes a sensitivity study.
type Config struct {
	App     apps.App
	Class   string
	Procs   int
	Trials  int // per point
	Seed    uint64
	Timeout time.Duration
	Workers int
}

func (c Config) campaign() faultsim.Campaign {
	return faultsim.Campaign{
		App: c.App, Class: c.Class, Procs: c.Procs, Trials: c.Trials,
		Seed: c.Seed, Timeout: c.Timeout, Workers: c.Workers,
	}
}

// golden computes the shared reference run.
func (c Config) golden() (*faultsim.Golden, error) {
	if c.App == nil {
		return nil, fmt.Errorf("analysis: Config.App is nil")
	}
	class := c.Class
	if class == "" {
		class = c.App.DefaultClass()
	}
	timeout := c.Timeout
	if timeout <= 0 {
		timeout = apps.DefaultTimeout
	}
	return faultsim.ComputeGolden(c.App, class, c.Procs, timeout)
}

// BitBand is a contiguous range of IEEE-754 bit positions.
type BitBand struct {
	Name   string
	Lo, Hi uint // inclusive
}

// DefaultBitBands partitions the double-precision word the way resilience
// studies usually discuss it.
func DefaultBitBands() []BitBand {
	return []BitBand{
		{Name: "mantissa-low", Lo: 0, Hi: 25},
		{Name: "mantissa-high", Lo: 26, Hi: 51},
		{Name: "exponent", Lo: 52, Hi: 62},
		{Name: "sign", Lo: 63, Hi: 63},
	}
}

// BitPoint is one bit band's fault injection result.
type BitPoint struct {
	Band  BitBand
	Rates stats.Rates
}

// BitSweep measures the fault injection result with the struck bit pinned
// to representative positions of each band (the band's midpoint and
// endpoints, averaged).
func BitSweep(cfg Config, bands []BitBand) ([]BitPoint, error) {
	if len(bands) == 0 {
		bands = DefaultBitBands()
	}
	golden, err := cfg.golden()
	if err != nil {
		return nil, err
	}
	out := make([]BitPoint, 0, len(bands))
	for bi, band := range bands {
		if band.Hi < band.Lo || band.Hi > 63 {
			return nil, fmt.Errorf("analysis: invalid bit band %+v", band)
		}
		var counter stats.Counter
		probe := bandProbes(band)
		for pi, bit := range probe {
			c := cfg.campaign()
			c.Trials = cfg.Trials / len(probe)
			if c.Trials == 0 {
				c.Trials = 1
			}
			c.Seed = cfg.Seed + uint64(bi*97+pi)
			b := bit
			c.FixedBit = &b
			sum, err := faultsim.RunAgainst(c, golden)
			if err != nil {
				return nil, err
			}
			counter.Merge(sum.Counts)
		}
		out = append(out, BitPoint{Band: band, Rates: counter.Rates()})
	}
	return out, nil
}

// bandProbes picks the probe bits for a band: lo, mid, hi (deduplicated).
func bandProbes(b BitBand) []uint {
	mid := (b.Lo + b.Hi) / 2
	probes := []uint{b.Lo}
	if mid != b.Lo {
		probes = append(probes, mid)
	}
	if b.Hi != mid && b.Hi != b.Lo {
		probes = append(probes, b.Hi)
	}
	return probes
}

// KindPoint is one instruction-kind restriction's result.
type KindPoint struct {
	Name  string
	Mask  uint8
	Rates stats.Rates
}

// KindSweep measures the fault injection result when injections are
// restricted to additions (add+sub, the same adder datapath) versus
// multiplications — the paper's instruction-type sensitivity.
func KindSweep(cfg Config) ([]KindPoint, error) {
	golden, err := cfg.golden()
	if err != nil {
		return nil, err
	}
	points := []KindPoint{
		{Name: "any", Mask: 0},
		{Name: "add", Mask: 1<<uint(fpe.OpAdd) | 1<<uint(fpe.OpSub)},
		{Name: "mul", Mask: 1 << uint(fpe.OpMul)},
	}
	for i := range points {
		c := cfg.campaign()
		c.KindMask = points[i].Mask
		c.Seed = cfg.Seed + uint64(i)*131
		sum, err := faultsim.RunAgainst(c, golden)
		if err != nil {
			return nil, err
		}
		points[i].Rates = sum.Rates
	}
	return points, nil
}

// PhasePoint is one execution-window restriction's result.
type PhasePoint struct {
	Window [2]float64
	Rates  stats.Rates
}

// PhaseSweep splits the dynamic operation stream into n equal windows and
// measures the fault injection result of each — when in the execution a
// fault lands matters because late errors have fewer operations left to
// propagate (or be masked) through.
func PhaseSweep(cfg Config, n int) ([]PhasePoint, error) {
	if n < 1 {
		return nil, fmt.Errorf("analysis: need at least one phase window")
	}
	golden, err := cfg.golden()
	if err != nil {
		return nil, err
	}
	out := make([]PhasePoint, 0, n)
	for i := 0; i < n; i++ {
		win := [2]float64{float64(i) / float64(n), float64(i+1) / float64(n)}
		c := cfg.campaign()
		c.Window = &win
		c.Seed = cfg.Seed + uint64(i)*173
		sum, err := faultsim.RunAgainst(c, golden)
		if err != nil {
			return nil, err
		}
		out = append(out, PhasePoint{Window: win, Rates: sum.Rates})
	}
	return out, nil
}

// PatternPoint is one fault pattern's result.
type PatternPoint struct {
	Pattern fpe.Pattern
	Rates   stats.Rates
}

// PatternSweep compares fault patterns (single-bit, double-bit, 4-bit
// burst, random word) under otherwise identical deployments — the paper
// claims its model is pattern-agnostic; this measures how the raw rates
// shift.
func PatternSweep(cfg Config) ([]PatternPoint, error) {
	golden, err := cfg.golden()
	if err != nil {
		return nil, err
	}
	patterns := []fpe.Pattern{fpe.SingleBit, fpe.DoubleBit, fpe.Burst4, fpe.WordRandom}
	out := make([]PatternPoint, 0, len(patterns))
	for i, p := range patterns {
		c := cfg.campaign()
		c.Pattern = p
		c.Seed = cfg.Seed + uint64(i)*211
		sum, err := faultsim.RunAgainst(c, golden)
		if err != nil {
			return nil, err
		}
		out = append(out, PatternPoint{Pattern: p, Rates: sum.Rates})
	}
	return out, nil
}
