package analysis

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"resmod/internal/apps"
	"resmod/internal/fpe"

	_ "resmod/internal/apps/lu"
	_ "resmod/internal/apps/pennant"
)

func cfg(t *testing.T, name string, trials int) Config {
	t.Helper()
	a, err := apps.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return Config{App: a, Procs: 1, Trials: trials, Seed: 77}
}

func TestDefaultBitBandsCoverWord(t *testing.T) {
	bands := DefaultBitBands()
	covered := make([]bool, 64)
	for _, b := range bands {
		for bit := b.Lo; bit <= b.Hi; bit++ {
			if covered[bit] {
				t.Fatalf("bit %d covered twice", bit)
			}
			covered[bit] = true
		}
	}
	for bit, ok := range covered {
		if !ok {
			t.Fatalf("bit %d uncovered", bit)
		}
	}
}

func TestBitSweepMonotonicSeverity(t *testing.T) {
	// Low mantissa bits must be masked far more often than exponent bits —
	// the fundamental severity gradient of IEEE-754 bit flips.
	points, err := BitSweep(cfg(t, "PENNANT", 60), nil)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for _, p := range points {
		byName[p.Band.Name] = p.Rates.Success
	}
	if byName["mantissa-low"] <= byName["exponent"] {
		t.Fatalf("mantissa-low success %.2f <= exponent success %.2f",
			byName["mantissa-low"], byName["exponent"])
	}
	if byName["mantissa-low"] < 0.5 {
		t.Fatalf("mantissa-low success %.2f suspiciously low", byName["mantissa-low"])
	}
}

func TestBitSweepRejectsBadBand(t *testing.T) {
	_, err := BitSweep(cfg(t, "PENNANT", 4), []BitBand{{Name: "bad", Lo: 10, Hi: 90}})
	if err == nil {
		t.Fatal("invalid band accepted")
	}
}

func TestKindSweepRuns(t *testing.T) {
	points, err := KindSweep(cfg(t, "LU", 30))
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("%d points", len(points))
	}
	for _, p := range points {
		if p.Rates.N == 0 {
			t.Fatalf("%s: empty rates", p.Name)
		}
		if math.Abs(p.Rates.Success+p.Rates.SDC+p.Rates.Failure-1) > 1e-12 {
			t.Fatalf("%s: rates don't sum to 1", p.Name)
		}
	}
}

func TestPhaseSweepLateInjectionsMoreMasked(t *testing.T) {
	// For iterative solvers, errors injected into the final window have
	// fewer chances to corrupt the verified output's history... but also
	// less time to be damped.  At minimum the sweep must produce n valid
	// windows with sane rates.
	points, err := PhaseSweep(cfg(t, "LU", 40), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("%d points", len(points))
	}
	for i, p := range points {
		if p.Window[0] != float64(i)/3 {
			t.Fatalf("window %d = %+v", i, p.Window)
		}
		if p.Rates.N == 0 {
			t.Fatal("empty rates")
		}
	}
	if _, err := PhaseSweep(cfg(t, "LU", 4), 0); err == nil {
		t.Fatal("zero windows accepted")
	}
}

func TestPatternSweepSeverityOrdering(t *testing.T) {
	points, err := PatternSweep(cfg(t, "PENNANT", 80))
	if err != nil {
		t.Fatal(err)
	}
	rates := map[fpe.Pattern]float64{}
	for _, p := range points {
		rates[p.Pattern] = p.Rates.Success
	}
	// A random 64-bit corruption is at least as severe (no more likely to
	// be masked) than a single-bit flip, with slack for sampling noise.
	if rates[fpe.WordRandom] > rates[fpe.SingleBit]+0.1 {
		t.Fatalf("word-random success %.2f exceeds single-bit %.2f",
			rates[fpe.WordRandom], rates[fpe.SingleBit])
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := KindSweep(Config{}); err == nil {
		t.Fatal("nil app accepted")
	}
}

func TestTolSweepMonotoneContamination(t *testing.T) {
	// Looser tolerance -> fewer ranks count as contaminated; bit-exact is
	// the upper bound.
	c := cfg(t, "PENNANT", 40)
	c.Procs = 4
	points, err := TolSweep(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("%d points", len(points))
	}
	for i := 1; i < len(points); i++ {
		if points[i].MeanContaminated > points[i-1].MeanContaminated+1e-9 {
			t.Fatalf("contamination not monotone in tolerance: %+v", points)
		}
	}
	if points[0].Tol >= 0 {
		t.Fatal("first point should be bit-exact")
	}
}

func TestAdviseRanksTargets(t *testing.T) {
	adv, err := Advise(cfg(t, "LU", 60), 3)
	if err != nil {
		t.Fatal(err)
	}
	if adv.BaseSDC < 0 || adv.BaseSDC > 1 {
		t.Fatalf("base SDC = %g", adv.BaseSDC)
	}
	// 3 phases + add + mul slices.
	if len(adv.Targets) != 5 {
		t.Fatalf("%d targets", len(adv.Targets))
	}
	var contributionSum float64
	for i, tg := range adv.Targets {
		if tg.Share <= 0 || tg.Share > 1 {
			t.Fatalf("share = %+v", tg)
		}
		if tg.Residual > adv.BaseSDC+1e-12 {
			t.Fatalf("residual above base: %+v", tg)
		}
		if i > 0 && tg.Leverage > adv.Targets[i-1].Leverage+1e-12 {
			t.Fatal("targets not sorted by leverage")
		}
		if len(tg.Name) == 0 {
			t.Fatal("unnamed target")
		}
		_ = contributionSum
	}
	var buf bytes.Buffer
	adv.Render(&buf)
	if !strings.Contains(buf.String(), "leverage") {
		t.Fatal("render missing leverage column")
	}
	if _, err := Advise(cfg(t, "LU", 4), 0); err == nil {
		t.Fatal("zero phases accepted")
	}
}
