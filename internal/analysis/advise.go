package analysis

import (
	"fmt"
	"io"
	"sort"

	"resmod/internal/fpe"
)

// ProtectionTarget is one candidate slice of the computation for selective
// protection (duplication, checksumming, ...), with its projected payoff.
type ProtectionTarget struct {
	// Name describes the slice ("phase [0.50,0.75)", "mul operations").
	Name string
	// Share is the fraction of injectable operations the slice covers —
	// the first-order cost of protecting it.
	Share float64
	// SDC is the conditional SDC rate of faults landing in the slice.
	SDC float64
	// Contribution is the slice's share of the overall SDC rate
	// (Share * SDC / overall).
	Contribution float64
	// Residual is the projected overall SDC rate if the slice were
	// perfectly protected.
	Residual float64
	// Leverage is Contribution / Share: how much better than uniform
	// protection this slice is.
	Leverage float64
}

// Advice ranks protection targets for one application configuration.
type Advice struct {
	// BaseSDC is the unprotected overall SDC rate.
	BaseSDC float64
	// Targets are the candidate slices sorted by descending leverage.
	Targets []ProtectionTarget
}

// Advise measures where selective protection buys the most: it sweeps the
// execution phases and the instruction kinds, decomposes the overall SDC
// rate into each slice's contribution, and ranks slices by leverage.
// This is the decision the paper's introduction motivates — using
// application-resilience knowledge to "design efficient fault tolerance
// mechanisms" — made concrete.
func Advise(cfg Config, phases int) (*Advice, error) {
	if phases < 1 {
		return nil, fmt.Errorf("analysis: need at least one phase")
	}
	golden, err := cfg.golden()
	if err != nil {
		return nil, err
	}

	// Kind shares from the golden run's dynamic counts.
	var kc fpe.KindCounts
	for _, k := range golden.KindCounts {
		for cl := range k.ByClassKind {
			for kind := range k.ByClassKind[cl] {
				kc.ByClassKind[cl][kind] += k.ByClassKind[cl][kind]
			}
		}
	}
	total := float64(kc.Of(fpe.Common, 0) + kc.Of(fpe.Unique, 0))
	if total == 0 {
		return nil, fmt.Errorf("analysis: golden run has no injectable ops")
	}
	addMask := uint8(1<<uint(fpe.OpAdd) | 1<<uint(fpe.OpSub))
	mulMask := uint8(1 << uint(fpe.OpMul))
	addShare := float64(kc.Of(fpe.Common, addMask)+kc.Of(fpe.Unique, addMask)) / total
	mulShare := float64(kc.Of(fpe.Common, mulMask)+kc.Of(fpe.Unique, mulMask)) / total

	var targets []ProtectionTarget

	// Phase slices (equal op shares by construction).
	phasePoints, err := PhaseSweep(cfg, phases)
	if err != nil {
		return nil, err
	}
	for _, p := range phasePoints {
		targets = append(targets, ProtectionTarget{
			Name:  fmt.Sprintf("phase [%.2f,%.2f)", p.Window[0], p.Window[1]),
			Share: 1 / float64(phases),
			SDC:   p.Rates.SDC,
		})
	}

	// Kind slices.
	kindPoints, err := KindSweep(cfg)
	if err != nil {
		return nil, err
	}
	for _, k := range kindPoints {
		switch k.Name {
		case "add":
			targets = append(targets, ProtectionTarget{
				Name: "add/sub operations", Share: addShare, SDC: k.Rates.SDC,
			})
		case "mul":
			targets = append(targets, ProtectionTarget{
				Name: "mul operations", Share: mulShare, SDC: k.Rates.SDC,
			})
		}
	}

	// Overall SDC as the op-share-weighted mean of the phase slices (the
	// phases partition the stream exactly).
	var base float64
	for _, p := range phasePoints {
		base += p.Rates.SDC / float64(phases)
	}
	adv := &Advice{BaseSDC: base}
	for _, t := range targets {
		t.Contribution = 0
		if base > 0 {
			t.Contribution = t.Share * t.SDC / base
		}
		t.Residual = base - t.Share*t.SDC
		if t.Residual < 0 {
			t.Residual = 0
		}
		if t.Share > 0 {
			t.Leverage = t.Contribution / t.Share
		}
		adv.Targets = append(adv.Targets, t)
	}
	sort.Slice(adv.Targets, func(i, j int) bool {
		return adv.Targets[i].Leverage > adv.Targets[j].Leverage
	})
	return adv, nil
}

// Render prints the advice as a ranked table.
func (a *Advice) Render(w io.Writer) {
	fmt.Fprintf(w, "unprotected SDC rate: %.1f%%\n", 100*a.BaseSDC)
	fmt.Fprintf(w, "%-22s %-8s %-10s %-14s %-12s %s\n",
		"slice", "cost", "slice SDC", "contribution", "residual", "leverage")
	for _, t := range a.Targets {
		fmt.Fprintf(w, "%-22s %-8.2f %-10.3f %-14.3f %-12.3f %.2f\n",
			t.Name, t.Share, t.SDC, t.Contribution, t.Residual, t.Leverage)
	}
}
