package analysis

import (
	"resmod/internal/faultsim"
	"resmod/internal/stats"
)

// TolPoint is one contamination-tolerance setting's propagation summary.
type TolPoint struct {
	// Tol is the contamination tolerance (negative = bit-exact).
	Tol float64
	// Rates is the overall fault injection result (independent of Tol by
	// construction — included as a sanity anchor).
	Rates stats.Rates
	// MeanContaminated is the average number of contaminated ranks per
	// completed test.
	MeanContaminated float64
	// FullFraction is the fraction of completed tests contaminating every
	// rank.
	FullFraction float64
}

// TolSweep measures how the error-propagation profile depends on the
// contamination significance threshold — the calibration knob that aligns
// resmod's deterministic substrate with the paper's real-MPI testbed,
// where reduction-order noise makes only above-noise divergence observable
// (DESIGN.md §4).  Bit-exact comparison counts every ULP of dilution as
// contamination and badly overstates how often "all ranks" are meaningfully
// corrupted; the checker-scale default restores the paper's Observation 4.
func TolSweep(cfg Config, tols []float64) ([]TolPoint, error) {
	if len(tols) == 0 {
		tols = []float64{-1, 1e-13, 1e-10, 1e-7}
	}
	golden, err := cfg.golden()
	if err != nil {
		return nil, err
	}
	out := make([]TolPoint, 0, len(tols))
	for _, tol := range tols {
		c := cfg.campaign()
		c.ContaminationTol = tol
		sum, err := faultsim.RunAgainst(c, golden)
		if err != nil {
			return nil, err
		}
		pt := TolPoint{Tol: tol, Rates: sum.Rates}
		total := sum.Hist.Total()
		if total > 0 {
			var mean float64
			for x, cnt := range sum.Hist.Counts {
				mean += float64(x+1) * float64(cnt)
			}
			pt.MeanContaminated = mean / float64(total)
			pt.FullFraction = float64(sum.Hist.Counts[cfg.Procs-1]) / float64(total)
		}
		out = append(out, pt)
	}
	return out, nil
}
