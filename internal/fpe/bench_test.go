package fpe

import (
	"testing"

	"resmod/internal/race"
)

// opSequence drives a fixed mixed workload through the datapath: the
// shape every benchmark and the disarm regression test share.
func opSequence(c *Ctx, n int) float64 {
	s := 1.0
	for i := 0; i < n; i++ {
		s = c.Add(s, 1.25)
		s = c.Mul(s, 0.5)
		s = c.Sub(s, 0.125)
	}
	return s
}

// BenchmarkCtxClean measures the uninstrumented-equivalent fast path: a
// context with no plan, the golden-run datapath.
func BenchmarkCtxClean(b *testing.B) {
	c := New()
	b.ReportAllocs()
	var s float64
	for i := 0; i < b.N; i++ {
		s = c.Add(s, 1.0)
	}
	sinkFloat = s
}

// BenchmarkCtxArmed measures the datapath while a planned injection is
// still pending (the pre-fire head of an injected trial): the class
// trigger reduces the armed check to one index comparison, so this must
// cost the same as the clean path.
func BenchmarkCtxArmed(b *testing.B) {
	c := NewWithPlan([]Injection{{Class: Common, Index: 1 << 62, Bit: 1}})
	b.ReportAllocs()
	var s float64
	for i := 0; i < b.N; i++ {
		s = c.Add(s, 1.0)
	}
	sinkFloat = s
}

// BenchmarkCtxExhausted measures the post-fire tail of an injected
// trial: the plan has fully fired, so the disarmed datapath must cost
// the same as the clean one (the exhausted-stream fix).
func BenchmarkCtxExhausted(b *testing.B) {
	c := NewWithPlan([]Injection{{Class: Common, Index: 0, Bit: 1}})
	c.Add(1, 2) // fires the one planned injection
	if c.Pending() != 0 {
		b.Fatal("plan did not fire")
	}
	b.ReportAllocs()
	var s float64
	for i := 0; i < b.N; i++ {
		s = c.Add(s, 1.0)
	}
	sinkFloat = s
}

// BenchmarkCtxReset measures the pooled per-trial reset + plan reload.
func BenchmarkCtxReset(b *testing.B) {
	c := New()
	plan := []Injection{{Class: Common, Index: 3, Bit: 7}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.ResetPlan(plan)
	}
}

var sinkFloat float64

// TestCleanDatapathAllocFree pins the fast path's allocation behavior:
// a reused context executing a region-free clean run allocates nothing,
// and RegionCounts of a region-free run returns without allocating.
func TestCleanDatapathAllocFree(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are not exact under -race")
	}
	c := New()
	if n := testing.AllocsPerRun(100, func() {
		c.Reset()
		opSequence(c, 50)
		if c.Counts().Total() != 150 {
			t.Fatal("datapath miscounted")
		}
		if len(c.RegionCounts()) != 0 {
			t.Fatal("unexpected regions")
		}
	}); n != 0 {
		t.Fatalf("clean reused datapath allocates %v allocs/run, want 0", n)
	}
}

// TestResetPlanAllocFree pins the pooled armed path: reloading a
// same-shaped plan into a reused context and firing it allocates
// nothing in steady state.
func TestResetPlanAllocFree(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are not exact under -race")
	}
	c := New()
	plan := []Injection{{Class: Common, Index: 10, Bit: 3}}
	// Warm the capacity (group slot, record storage) once.
	c.ResetPlan(plan)
	opSequence(c, 20)
	if n := testing.AllocsPerRun(100, func() {
		c.ResetPlan(plan)
		opSequence(c, 20)
		if c.Fired() != 1 {
			t.Fatal("plan did not fire")
		}
	}); n != 0 {
		t.Fatalf("pooled armed datapath allocates %v allocs/run, want 0", n)
	}
}
