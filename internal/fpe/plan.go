package fpe

import (
	"fmt"

	"resmod/internal/stats"
)

// PlanError is returned when a plan cannot be drawn because the target
// operation stream is too small.
type PlanError struct {
	Class  RegionClass
	Want   int
	Have   uint64
	Reason string
}

func (e *PlanError) Error() string {
	return fmt.Sprintf("fpe: cannot plan %d injection(s) in %s stream of %d ops: %s",
		e.Want, e.Class, e.Have, e.Reason)
}

// Pattern selects the fault shape of each injection.  The paper's
// experiments use single-bit flips (the dominant DRAM/SRAM fault mode it
// cites) but state the methodology is pattern-agnostic; the other patterns
// exist to exercise that generality.
type Pattern int

// The supported fault patterns.
const (
	// SingleBit flips one uniformly chosen bit.
	SingleBit Pattern = iota
	// DoubleBit flips two distinct uniformly chosen bits.
	DoubleBit
	// Burst4 flips four contiguous bits at a uniform offset.
	Burst4
	// WordRandom XORs the operand with a uniform non-zero 64-bit mask.
	WordRandom
)

// String returns the pattern name.
func (p Pattern) String() string {
	switch p {
	case SingleBit:
		return "single-bit"
	case DoubleBit:
		return "double-bit"
	case Burst4:
		return "burst4"
	case WordRandom:
		return "word-random"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// DrawOpts refines how injections are drawn.
type DrawOpts struct {
	// Pattern is the fault shape (default SingleBit).
	Pattern Pattern
	// KindMask restricts the target stream to the given operation kinds
	// (bitmask of 1<<OpAdd | 1<<OpSub | 1<<OpMul); zero means any
	// injectable kind.
	KindMask uint8
	// FixedBit pins the flipped bit (SingleBit pattern only); nil draws it
	// uniformly.  Used for bit-position sensitivity sweeps.
	FixedBit *uint
	// Window restricts the dynamic-index range to [lo, hi) as fractions of
	// the stream; nil means the whole stream.  Used for injection-time
	// sensitivity sweeps.
	Window *[2]float64
}

// windowRange maps opts.Window onto a stream of n ops.
func (o DrawOpts) windowRange(n uint64) (lo, hi uint64, err error) {
	if o.Window == nil {
		return 0, n, nil
	}
	wl, wh := o.Window[0], o.Window[1]
	if wl < 0 || wh > 1 || wl >= wh {
		return 0, 0, fmt.Errorf("fpe: invalid window [%g, %g)", wl, wh)
	}
	lo = uint64(wl * float64(n))
	hi = uint64(wh * float64(n))
	if hi > n {
		hi = n
	}
	return lo, hi, nil
}

// fault draws the pattern's corruption parameters.
func (o DrawOpts) fault(rng *stats.RNG) (bit uint, mask uint64) {
	switch o.Pattern {
	case DoubleBit:
		b1 := uint(rng.Intn(64))
		b2 := uint(rng.Intn(63))
		if b2 >= b1 {
			b2++
		}
		return 0, 1<<b1 | 1<<b2
	case Burst4:
		b := uint(rng.Intn(61))
		return 0, 0xF << b
	case WordRandom:
		for {
			if m := rng.Uint64(); m != 0 {
				return 0, m
			}
		}
	default: // SingleBit
		if o.FixedBit != nil {
			return *o.FixedBit % 64, 0
		}
		return uint(rng.Intn(64)), 0
	}
}

// DrawWith draws k independent injections uniformly over the selected
// dynamic operation stream of the given region class, with distinct
// operation indices (the paper's k-errors-per-test serial deployments).
func DrawWith(rng *stats.RNG, kc KindCounts, class RegionClass, k int, opts DrawOpts) ([]Injection, error) {
	n := kc.Of(class, opts.KindMask)
	if k < 0 {
		return nil, &PlanError{Class: class, Want: k, Have: n, Reason: "negative error count"}
	}
	lo, hi, err := opts.windowRange(n)
	if err != nil {
		return nil, err
	}
	if uint64(k) > hi-lo {
		return nil, &PlanError{Class: class, Want: k, Have: hi - lo,
			Reason: "stream window shorter than error count"}
	}
	idx := rng.SampleDistinct(k, hi-lo)
	plan := make([]Injection, k)
	for i, ix := range idx {
		bit, mask := opts.fault(rng)
		plan[i] = Injection{
			Class:    class,
			KindMask: opts.KindMask,
			Index:    lo + ix,
			Bit:      bit,
			Mask:     mask,
			Operand:  rng.Intn(2),
		}
	}
	return plan, nil
}

// DrawAnyRegionWith draws one injection uniformly over the union of the
// common and unique streams, weighting each class by its (kind-filtered)
// dynamic operation count — the paper's parallel fault injection tests.
func DrawAnyRegionWith(rng *stats.RNG, kc KindCounts, opts DrawOpts) ([]Injection, error) {
	return DrawAnyRegionKWith(rng, kc, 1, opts)
}

// DrawAnyRegionKWith draws k independent injections with distinct
// operation indices uniformly over the union of the common and unique
// streams, weighting each class by its (kind-filtered) dynamic operation
// count.  It is the multi-error generalization of DrawAnyRegionWith:
// each error independently lands in the common or the parallel-unique
// computation in proportion to the dynamic op counts, so multi-error
// parallel deployments sample the same flattened stream single-error
// ones do.  For k=1 it consumes the identical RNG sequence as the
// single-error draw, keeping existing campaign results stable.
func DrawAnyRegionKWith(rng *stats.RNG, kc KindCounts, k int, opts DrawOpts) ([]Injection, error) {
	nCommon := kc.Of(Common, opts.KindMask)
	nUnique := kc.Of(Unique, opts.KindMask)
	total := nCommon + nUnique
	if k < 0 {
		return nil, &PlanError{Class: Common, Want: k, Have: total, Reason: "negative error count"}
	}
	if total == 0 {
		return nil, &PlanError{Class: Common, Want: k, Have: 0, Reason: "empty operation stream"}
	}
	// The window applies within each class stream proportionally.
	loC, hiC, err := opts.windowRange(nCommon)
	if err != nil {
		return nil, err
	}
	loU, hiU, _ := opts.windowRange(nUnique)
	span := (hiC - loC) + (hiU - loU)
	if uint64(k) > span {
		return nil, &PlanError{Class: Common, Want: k, Have: span,
			Reason: "stream window shorter than error count"}
	}
	if span == 0 {
		return nil, &PlanError{Class: Common, Want: k, Have: 0, Reason: "empty window"}
	}
	// Distinct flat indices over [common window][unique window] map to
	// distinct (class, index) injection sites.
	idx := rng.SampleDistinct(k, span)
	plan := make([]Injection, k)
	for i, flat := range idx {
		bit, mask := opts.fault(rng)
		inj := Injection{KindMask: opts.KindMask, Bit: bit, Mask: mask, Operand: rng.Intn(2)}
		if flat < hiC-loC {
			inj.Class = Common
			inj.Index = loC + flat
		} else {
			inj.Class = Unique
			inj.Index = loU + (flat - (hiC - loC))
		}
		plan[i] = inj
	}
	return plan, nil
}

// DrawPlan draws k single-bit injections over the whole class stream
// (the paper's default configuration).
func DrawPlan(rng *stats.RNG, counts Counts, class RegionClass, k int) ([]Injection, error) {
	return DrawWith(rng, countsAsKinds(counts), class, k, DrawOpts{})
}

// DrawPlanAnyRegion draws one single-bit injection weighted across both
// region classes.
func DrawPlanAnyRegion(rng *stats.RNG, counts Counts) ([]Injection, error) {
	return DrawAnyRegionWith(rng, countsAsKinds(counts), DrawOpts{})
}

// countsAsKinds lifts class totals into a KindCounts with everything
// attributed to OpAdd — only the class totals matter when KindMask is 0.
func countsAsKinds(c Counts) KindCounts {
	var kc KindCounts
	kc.ByClassKind[Common][OpAdd] = c.Common
	kc.ByClassKind[Unique][OpAdd] = c.Unique
	return kc
}
