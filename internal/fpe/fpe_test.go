package fpe

import (
	"math"
	"testing"
	"testing/quick"

	"resmod/internal/stats"
)

func TestArithmeticWithoutInjection(t *testing.T) {
	c := New()
	if got := c.Add(2, 3); got != 5 {
		t.Fatalf("Add = %g", got)
	}
	if got := c.Sub(2, 3); got != -1 {
		t.Fatalf("Sub = %g", got)
	}
	if got := c.Mul(2, 3); got != 6 {
		t.Fatalf("Mul = %g", got)
	}
	if got := c.Div(6, 3); got != 2 {
		t.Fatalf("Div = %g", got)
	}
	if got := c.FMA(2, 3, 4); got != 10 {
		t.Fatalf("FMA = %g", got)
	}
	counts := c.Counts()
	// Add+Sub+Mul+FMA(mul+add) = 5 injectable ops, all common.
	if counts.Common != 5 || counts.Unique != 0 {
		t.Fatalf("counts = %+v", counts)
	}
	if c.Divs() != 1 {
		t.Fatalf("divs = %d", c.Divs())
	}
}

func TestFlipBitInvolution(t *testing.T) {
	f := func(v float64, bitRaw uint8) bool {
		bit := uint(bitRaw % 64)
		flipped := FlipBit(v, bit)
		back := FlipBit(flipped, bit)
		return math.Float64bits(back) == math.Float64bits(v) &&
			math.Float64bits(flipped) != math.Float64bits(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFlipBitKnown(t *testing.T) {
	// Flipping the sign bit of 1.0 gives -1.0.
	if got := FlipBit(1.0, 63); got != -1.0 {
		t.Fatalf("sign flip = %g", got)
	}
	// Flipping mantissa bit 51 of 1.0 gives 1.5.
	if got := FlipBit(1.0, 51); got != 1.5 {
		t.Fatalf("mantissa flip = %g", got)
	}
}

func TestFlipBitPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FlipBit(.., 64) did not panic")
		}
	}()
	FlipBit(1, 64)
}

func TestInjectionFires(t *testing.T) {
	// Third injectable op (index 2), operand 0, sign bit.
	c := NewWithPlan([]Injection{{Class: Common, Index: 2, Bit: 63, Operand: 0}})
	c.Add(1, 1) // index 0
	c.Mul(2, 2) // index 1
	got := c.Add(10, 1)
	if got != -9 { // (-10) + 1
		t.Fatalf("injected Add = %g, want -9", got)
	}
	if c.Fired() != 1 || c.Pending() != 0 {
		t.Fatalf("fired=%d pending=%d", c.Fired(), c.Pending())
	}
	rec := c.Records()[0]
	if rec.Before != 10 || rec.After != -10 || rec.Op != OpAdd {
		t.Fatalf("record = %+v", rec)
	}
}

func TestInjectionOperandB(t *testing.T) {
	c := NewWithPlan([]Injection{{Class: Common, Index: 0, Bit: 63, Operand: 1}})
	if got := c.Add(10, 1); got != 9 { // 10 + (-1)
		t.Fatalf("injected = %g, want 9", got)
	}
}

func TestInjectionRespectsRegionClass(t *testing.T) {
	// An injection planned for the Unique stream must not fire in Common
	// computation even at the same dynamic index.
	c := NewWithPlan([]Injection{{Class: Unique, Index: 0, Bit: 63, Operand: 0}})
	c.Add(1, 1) // common index 0: no fire
	if c.Fired() != 0 {
		t.Fatal("injection fired in wrong region class")
	}
	end := c.Begin("pack", Unique)
	got := c.Add(5, 0)
	end()
	if got != -5 {
		t.Fatalf("unique injection = %g, want -5", got)
	}
	if c.Fired() != 1 {
		t.Fatal("unique injection did not fire")
	}
	if c.Records()[0].Region != "pack" {
		t.Fatalf("region = %q", c.Records()[0].Region)
	}
}

func TestMultipleInjectionsSorted(t *testing.T) {
	// Plan given out of order; both must fire at the right indices.
	c := NewWithPlan([]Injection{
		{Class: Common, Index: 3, Bit: 63, Operand: 0},
		{Class: Common, Index: 1, Bit: 63, Operand: 0},
	})
	vals := []float64{1, 2, 3, 4, 5}
	var out []float64
	for _, v := range vals {
		out = append(out, c.Add(v, 0))
	}
	want := []float64{1, -2, 3, -4, 5}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out = %v, want %v", out, want)
		}
	}
}

func TestTwoInjectionsSameIndex(t *testing.T) {
	// Two flips at the same dynamic op (different bits) both fire.
	c := NewWithPlan([]Injection{
		{Class: Common, Index: 0, Bit: 63, Operand: 0},
		{Class: Common, Index: 0, Bit: 51, Operand: 0},
	})
	got := c.Add(1, 0)
	if got != -1.5 {
		t.Fatalf("double flip = %g, want -1.5", got)
	}
	if c.Fired() != 2 {
		t.Fatalf("fired = %d", c.Fired())
	}
}

func TestRegionNestingAndCounts(t *testing.T) {
	c := New()
	c.Add(1, 1) // common
	endOuter := c.Begin("outer", Unique)
	c.Add(1, 1) // unique
	endInner := c.Begin("inner", Common)
	c.Add(1, 1) // common again (nested override)
	c.Mul(1, 1)
	endInner()
	c.Add(1, 1) // unique
	endOuter()
	c.Add(1, 1) // common

	counts := c.Counts()
	if counts.Common != 4 || counts.Unique != 2 {
		t.Fatalf("counts = %+v", counts)
	}
	rc := c.RegionCounts()
	if rc["inner"].Common != 2 || rc["inner"].Unique != 0 {
		t.Fatalf("inner = %+v", rc["inner"])
	}
	if rc["outer"].Unique != 2 || rc["outer"].Common != 2 {
		t.Fatalf("outer = %+v", rc["outer"])
	}
}

func TestEndWithoutBeginPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unbalanced End did not panic")
		}
	}()
	New().End()
}

func TestUniqueFraction(t *testing.T) {
	c := Counts{Common: 90, Unique: 10}
	if f := c.UniqueFraction(); math.Abs(f-0.1) > 1e-12 {
		t.Fatalf("UniqueFraction = %g", f)
	}
	if (Counts{}).UniqueFraction() != 0 {
		t.Fatal("empty counts fraction not 0")
	}
}

func TestDotAxpy(t *testing.T) {
	c := New()
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	if got := c.Dot(x, y); got != 32 {
		t.Fatalf("Dot = %g", got)
	}
	c.Axpy(2, x, y)
	want := []float64{6, 9, 12}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("Axpy y = %v", y)
		}
	}
}

func TestDrawPlanProperties(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		counts := Counts{Common: 1000, Unique: 50}
		k := int(kRaw % 16)
		rng := stats.NewRNG(seed)
		plan, err := DrawPlan(rng, counts, Common, k)
		if err != nil || len(plan) != k {
			return false
		}
		seen := map[uint64]bool{}
		for _, inj := range plan {
			if inj.Class != Common || inj.Index >= counts.Common || inj.Bit > 63 ||
				(inj.Operand != 0 && inj.Operand != 1) || seen[inj.Index] {
				return false
			}
			seen[inj.Index] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDrawPlanErrors(t *testing.T) {
	rng := stats.NewRNG(1)
	if _, err := DrawPlan(rng, Counts{Common: 2}, Common, 3); err == nil {
		t.Fatal("overlong plan accepted")
	}
	if _, err := DrawPlan(rng, Counts{Common: 2}, Common, -1); err == nil {
		t.Fatal("negative plan accepted")
	}
	if _, err := DrawPlanAnyRegion(rng, Counts{}); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestDrawPlanAnyRegionWeighting(t *testing.T) {
	// With 90% of ops in common, ~90% of single-error plans land there.
	rng := stats.NewRNG(42)
	counts := Counts{Common: 900, Unique: 100}
	common := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		plan, err := DrawPlanAnyRegion(rng, counts)
		if err != nil {
			t.Fatal(err)
		}
		inj := plan[0]
		switch inj.Class {
		case Common:
			if inj.Index >= counts.Common {
				t.Fatal("common index out of range")
			}
			common++
		case Unique:
			if inj.Index >= counts.Unique {
				t.Fatal("unique index out of range")
			}
		}
	}
	frac := float64(common) / trials
	if math.Abs(frac-0.9) > 0.02 {
		t.Fatalf("common fraction = %g, want ~0.9", frac)
	}
}

// Property: a full run with a plan and the same run without a plan execute
// the same number of operations (injection corrupts values, not control
// counts at the fpe level).
func TestInjectionPreservesOpCount(t *testing.T) {
	run := func(c *Ctx) {
		s := 0.0
		for i := 0; i < 100; i++ {
			s = c.Add(s, c.Mul(float64(i), 1.5))
		}
	}
	clean := New()
	run(clean)
	injected := NewWithPlan([]Injection{{Class: Common, Index: 50, Bit: 40, Operand: 0}})
	run(injected)
	if clean.Counts() != injected.Counts() {
		t.Fatalf("op counts differ: %+v vs %+v", clean.Counts(), injected.Counts())
	}
}

func TestStringMethods(t *testing.T) {
	if Common.String() != "common" || Unique.String() != "unique" {
		t.Fatal("RegionClass strings wrong")
	}
	if RegionClass(9).String() == "" {
		t.Fatal("unknown region class has empty string")
	}
	kinds := map[OpKind]string{OpAdd: "fadd", OpSub: "fsub", OpMul: "fmul", OpDiv: "fdiv"}
	for k, want := range kinds {
		if k.String() != want {
			t.Fatalf("%v", k)
		}
	}
	if OpKind(9).String() == "" {
		t.Fatal("unknown op kind has empty string")
	}
	pats := map[Pattern]string{SingleBit: "single-bit", DoubleBit: "double-bit",
		Burst4: "burst4", WordRandom: "word-random"}
	for p, want := range pats {
		if p.String() != want {
			t.Fatalf("%v", p)
		}
	}
	if Pattern(9).String() == "" {
		t.Fatal("unknown pattern has empty string")
	}
}

func TestNewWithPlanRejectsBadClass(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid region class accepted")
		}
	}()
	NewWithPlan([]Injection{{Class: RegionClass(7)}})
}

func TestPlanErrorMessage(t *testing.T) {
	e := &PlanError{Class: Unique, Want: 3, Have: 1, Reason: "too short"}
	if e.Error() == "" || e.Class != Unique {
		t.Fatal("PlanError malformed")
	}
}
