package fpe

import (
	"math"
	"math/bits"
	"testing"
	"testing/quick"

	"resmod/internal/stats"
)

func TestKindCountsAccumulate(t *testing.T) {
	c := New()
	c.Add(1, 1)
	c.Add(1, 1)
	c.Sub(1, 1)
	c.Mul(1, 1)
	end := c.Begin("u", Unique)
	c.Mul(2, 2)
	end()
	kc := c.KindCounts()
	if kc.ByClassKind[Common][OpAdd] != 2 || kc.ByClassKind[Common][OpSub] != 1 ||
		kc.ByClassKind[Common][OpMul] != 1 || kc.ByClassKind[Unique][OpMul] != 1 {
		t.Fatalf("kind counts = %+v", kc)
	}
	if kc.Of(Common, 0) != 4 {
		t.Fatalf("Of(Common, 0) = %d", kc.Of(Common, 0))
	}
	if kc.Of(Common, 1<<OpMul) != 1 {
		t.Fatalf("Of(Common, mul) = %d", kc.Of(Common, 1<<OpMul))
	}
	if kc.Counts() != (Counts{Common: 4, Unique: 1}) {
		t.Fatalf("Counts() = %+v", kc.Counts())
	}
}

func TestKindRestrictedInjectionTargetsKindStream(t *testing.T) {
	// Plan: corrupt the 2nd dynamic MUL (index 1 in the mul stream), sign
	// bit.  Adds in between must not advance the mul stream.
	c := NewWithPlan([]Injection{{
		Class: Common, KindMask: 1 << OpMul, Index: 1, Bit: 63, Operand: 0,
	}})
	c.Mul(3, 1) // mul stream index 0
	c.Add(1, 1) // not counted in the mul stream
	c.Add(2, 2)
	got := c.Mul(5, 1) // mul stream index 1: corrupt first operand
	if got != -5 {
		t.Fatalf("kind-restricted injection = %g, want -5", got)
	}
	if c.Fired() != 1 {
		t.Fatalf("fired = %d", c.Fired())
	}
}

func TestMaskCorruption(t *testing.T) {
	// XOR mask flipping sign and mantissa bit 51 of 1.0 -> -1.5.
	c := NewWithPlan([]Injection{{
		Class: Common, Index: 0, Mask: 1<<63 | 1<<51, Operand: 0,
	}})
	if got := c.Add(1, 0); got != -1.5 {
		t.Fatalf("mask corruption = %g, want -1.5", got)
	}
}

func TestMixedStreamsFireIndependently(t *testing.T) {
	// One any-kind injection and one mul-only injection, both at stream
	// index 1 of their respective streams.
	c := NewWithPlan([]Injection{
		{Class: Common, Index: 1, Bit: 63, Operand: 0},
		{Class: Common, KindMask: 1 << OpMul, Index: 1, Bit: 63, Operand: 0},
	})
	c.Add(1, 0)         // any stream 0
	got1 := c.Add(2, 0) // any stream 1 -> fires: -2
	c.Mul(1, 1)         // mul stream 0 (any stream 2)
	got2 := c.Mul(3, 1) // mul stream 1 -> fires: -3
	if got1 != -2 || got2 != -3 {
		t.Fatalf("got %g, %g; want -2, -3", got1, got2)
	}
	if c.Fired() != 2 || c.Pending() != 0 {
		t.Fatalf("fired=%d pending=%d", c.Fired(), c.Pending())
	}
}

func TestDrawWithPatterns(t *testing.T) {
	rng := stats.NewRNG(1)
	var kc KindCounts
	kc.ByClassKind[Common][OpAdd] = 1000
	cases := []struct {
		pattern  Pattern
		wantBits func(mask uint64) bool
	}{
		{SingleBit, func(m uint64) bool { return m == 0 }},
		{DoubleBit, func(m uint64) bool { return bits.OnesCount64(m) == 2 }},
		{Burst4, func(m uint64) bool {
			return bits.OnesCount64(m) == 4 && m>>bits.TrailingZeros64(m) == 0xF
		}},
		{WordRandom, func(m uint64) bool { return m != 0 }},
	}
	for _, cse := range cases {
		for i := 0; i < 50; i++ {
			plan, err := DrawWith(rng, kc, Common, 1, DrawOpts{Pattern: cse.pattern})
			if err != nil {
				t.Fatal(err)
			}
			if !cse.wantBits(plan[0].Mask) {
				t.Fatalf("%v: bad mask %#x", cse.pattern, plan[0].Mask)
			}
		}
	}
}

func TestDrawWithFixedBit(t *testing.T) {
	rng := stats.NewRNG(2)
	var kc KindCounts
	kc.ByClassKind[Common][OpAdd] = 100
	bit := uint(62)
	for i := 0; i < 20; i++ {
		plan, err := DrawWith(rng, kc, Common, 1, DrawOpts{FixedBit: &bit})
		if err != nil {
			t.Fatal(err)
		}
		if plan[0].Bit != 62 || plan[0].Mask != 0 {
			t.Fatalf("fixed bit not honored: %+v", plan[0])
		}
	}
}

func TestDrawWithWindow(t *testing.T) {
	rng := stats.NewRNG(3)
	var kc KindCounts
	kc.ByClassKind[Common][OpAdd] = 1000
	win := [2]float64{0.5, 0.75}
	for i := 0; i < 100; i++ {
		plan, err := DrawWith(rng, kc, Common, 1, DrawOpts{Window: &win})
		if err != nil {
			t.Fatal(err)
		}
		if plan[0].Index < 500 || plan[0].Index >= 750 {
			t.Fatalf("index %d outside window [500, 750)", plan[0].Index)
		}
	}
	bad := [2]float64{0.9, 0.1}
	if _, err := DrawWith(rng, kc, Common, 1, DrawOpts{Window: &bad}); err == nil {
		t.Fatal("inverted window accepted")
	}
}

func TestDrawWithKindMaskIndexRange(t *testing.T) {
	rng := stats.NewRNG(4)
	var kc KindCounts
	kc.ByClassKind[Common][OpAdd] = 1000
	kc.ByClassKind[Common][OpMul] = 10
	for i := 0; i < 50; i++ {
		plan, err := DrawWith(rng, kc, Common, 1, DrawOpts{KindMask: 1 << OpMul})
		if err != nil {
			t.Fatal(err)
		}
		if plan[0].Index >= 10 || plan[0].KindMask != 1<<OpMul {
			t.Fatalf("mul-stream index out of range: %+v", plan[0])
		}
	}
}

func TestDrawAnyRegionWithWindowAndKinds(t *testing.T) {
	rng := stats.NewRNG(5)
	var kc KindCounts
	kc.ByClassKind[Common][OpMul] = 800
	kc.ByClassKind[Unique][OpMul] = 200
	kc.ByClassKind[Common][OpAdd] = 5000 // excluded by the mask
	win := [2]float64{0, 0.5}
	uniqueHits := 0
	const trials = 4000
	for i := 0; i < trials; i++ {
		plan, err := DrawAnyRegionWith(rng, kc, DrawOpts{KindMask: 1 << OpMul, Window: &win})
		if err != nil {
			t.Fatal(err)
		}
		inj := plan[0]
		switch inj.Class {
		case Common:
			if inj.Index >= 400 {
				t.Fatalf("common index %d outside windowed mul stream", inj.Index)
			}
		case Unique:
			if inj.Index >= 100 {
				t.Fatalf("unique index %d outside windowed mul stream", inj.Index)
			}
			uniqueHits++
		}
	}
	frac := float64(uniqueHits) / trials
	if math.Abs(frac-0.2) > 0.03 {
		t.Fatalf("unique fraction %g, want ~0.2 (mask must exclude adds)", frac)
	}
}

func TestDrawAnyRegionKMatchesSingleDraw(t *testing.T) {
	// The k=1 path of the generalized draw must consume the identical RNG
	// sequence as the historical single-error draw: cached campaign
	// summaries and checkpoints depend on the draw stream staying stable.
	var kc KindCounts
	kc.ByClassKind[Common][OpAdd] = 700
	kc.ByClassKind[Unique][OpAdd] = 300
	for seed := uint64(0); seed < 50; seed++ {
		a, err := DrawAnyRegionWith(stats.NewRNG(seed), kc, DrawOpts{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := DrawAnyRegionKWith(stats.NewRNG(seed), kc, 1, DrawOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if len(b) != 1 || a[0] != b[0] {
			t.Fatalf("seed %d: single draw %+v != k=1 draw %+v", seed, a[0], b[0])
		}
	}
}

func TestDrawAnyRegionKSpansBothClasses(t *testing.T) {
	// A unique-heavy stream: k=3 errors drawn over the union must strike
	// the parallel-unique computation in roughly its weight, and indices
	// must be distinct within each class stream.
	rng := stats.NewRNG(7)
	var kc KindCounts
	kc.ByClassKind[Common][OpAdd] = 100
	kc.ByClassKind[Unique][OpAdd] = 900
	uniqueHits, draws := 0, 0
	for i := 0; i < 1000; i++ {
		plan, err := DrawAnyRegionKWith(rng, kc, 3, DrawOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if len(plan) != 3 {
			t.Fatalf("got %d injections, want 3", len(plan))
		}
		seen := map[[2]uint64]bool{}
		for _, inj := range plan {
			key := [2]uint64{uint64(inj.Class), inj.Index}
			if seen[key] {
				t.Fatalf("duplicate injection site %+v in plan %+v", inj, plan)
			}
			seen[key] = true
			switch inj.Class {
			case Common:
				if inj.Index >= 100 {
					t.Fatalf("common index %d out of stream", inj.Index)
				}
			case Unique:
				if inj.Index >= 900 {
					t.Fatalf("unique index %d out of stream", inj.Index)
				}
				uniqueHits++
			}
			draws++
		}
	}
	frac := float64(uniqueHits) / float64(draws)
	if math.Abs(frac-0.9) > 0.03 {
		t.Fatalf("unique fraction %g, want ~0.9", frac)
	}
}

func TestDrawAnyRegionKValidation(t *testing.T) {
	rng := stats.NewRNG(1)
	var kc KindCounts
	kc.ByClassKind[Common][OpAdd] = 3
	kc.ByClassKind[Unique][OpAdd] = 2
	if _, err := DrawAnyRegionKWith(rng, kc, 6, DrawOpts{}); err == nil {
		t.Fatal("k larger than the union stream accepted")
	}
	if _, err := DrawAnyRegionKWith(rng, kc, -1, DrawOpts{}); err == nil {
		t.Fatal("negative k accepted")
	}
	if _, err := DrawAnyRegionKWith(rng, KindCounts{}, 1, DrawOpts{}); err == nil {
		t.Fatal("empty stream accepted")
	}
	// k equal to the whole union stream is legal and covers every site.
	plan, err := DrawAnyRegionKWith(rng, kc, 5, DrawOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 5 {
		t.Fatalf("got %d injections, want 5", len(plan))
	}
}

// Property: every drawn plan, when executed against a long enough op
// stream, fires exactly k times.
func TestDrawnPlansAlwaysFire(t *testing.T) {
	f := func(seed uint64, kRaw, patRaw uint8) bool {
		k := int(kRaw%5) + 1
		pattern := Pattern(int(patRaw) % 4)
		rng := stats.NewRNG(seed)
		var kc KindCounts
		kc.ByClassKind[Common][OpAdd] = 200
		plan, err := DrawWith(rng, kc, Common, k, DrawOpts{Pattern: pattern})
		if err != nil {
			return false
		}
		c := NewWithPlan(plan)
		for i := 0; i < 200; i++ {
			c.Add(float64(i), 1)
		}
		return c.Fired() == k && c.Pending() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
