package fpe

import (
	"math"
	"reflect"
	"testing"

	"resmod/internal/stats"
)

// refCtx is a reference oracle for the instrumented datapath: the
// original (pre-disarm) semantics, scanning every planned stream on
// every operation with no exhausted-group skipping and no fast path.
// The disarm optimization must be observationally identical to it.
type refCtx struct {
	class    RegionClass
	counters [numClasses]uint64
	kinds    [numClasses][4]uint64
	groups   []injGroup
	records  []Record
	region   string
}

func newRefCtx(plan []Injection) *refCtx {
	r := &refCtx{}
	for _, inj := range plan {
		gi := -1
		for i := range r.groups {
			if r.groups[i].class == inj.Class && r.groups[i].kindMask == inj.KindMask {
				gi = i
				break
			}
		}
		if gi < 0 {
			r.groups = append(r.groups, injGroup{class: inj.Class, kindMask: inj.KindMask})
			gi = len(r.groups) - 1
		}
		r.groups[gi].queue = append(r.groups[gi].queue, inj)
	}
	for i := range r.groups {
		sortInjections(r.groups[i].queue)
	}
	return r
}

func (r *refCtx) op(op OpKind, a, b float64) (float64, float64) {
	cl := r.class
	r.counters[cl]++
	r.kinds[cl][op]++
	for gi := range r.groups {
		g := &r.groups[gi]
		if g.class != cl || (g.kindMask != 0 && g.kindMask&(1<<uint(op)) == 0) {
			continue
		}
		idx := g.ctr
		g.ctr = idx + 1
		for g.pos < len(g.queue) && g.queue[g.pos].Index == idx {
			inj := g.queue[g.pos]
			g.pos++
			var before, after float64
			if inj.Operand == 0 {
				before, a = a, inj.corrupt(a)
				after = a
			} else {
				before, b = b, inj.corrupt(b)
				after = b
			}
			r.records = append(r.records, Record{
				Injection: inj, Op: op, Region: r.region, Before: before, After: after,
			})
		}
	}
	return a, b
}

// recordsEqual compares record lists bit-exactly (reflect.DeepEqual
// would treat an injected NaN as unequal to itself).
func recordsEqual(a, b []Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Injection != y.Injection || x.Op != y.Op || x.Region != y.Region ||
			math.Float64bits(x.Before) != math.Float64bits(y.Before) ||
			math.Float64bits(x.After) != math.Float64bits(y.After) {
			return false
		}
	}
	return true
}

// driveBoth replays one pseudo-random operation sequence through the
// real context and the oracle, returning the two running sums.
func driveBoth(c *Ctx, r *refCtx, rng *stats.RNG, n int) (float64, float64) {
	sc, sr := 1.0, 1.0
	for i := 0; i < n; i++ {
		// Occasionally flip between region classes so both class streams
		// advance (named region on the real ctx, bare class on the oracle).
		if rng.Intn(7) == 0 {
			if c.Class() == Common {
				end := c.Begin("u", Unique)
				r.class, r.region = Unique, "u"
				defer func() { end(); r.class, r.region = Common, "" }()
			}
		}
		x := float64(rng.Intn(9) + 1)
		switch rng.Intn(3) {
		case 0:
			a, b := r.op(OpAdd, sr, x)
			sr = a + b
			sc = c.Add(sc, x)
		case 1:
			a, b := r.op(OpSub, sr, x)
			sr = a - b
			sc = c.Sub(sc, x)
		default:
			a, b := r.op(OpMul, sr, 1+x/16)
			sr = a * b
			sc = c.Mul(sc, 1+x/16)
		}
	}
	return sc, sr
}

func sameObservations(t *testing.T, c *Ctx, r *refCtx, sc, sr float64) {
	t.Helper()
	if math.Float64bits(sc) != math.Float64bits(sr) {
		t.Fatalf("running sums diverged: %g vs oracle %g", sc, sr)
	}
	if c.Counts() != (Counts{Common: r.counters[Common], Unique: r.counters[Unique]}) {
		t.Fatalf("Counts = %+v, oracle %+v", c.Counts(), r.counters)
	}
	if c.KindCounts() != (KindCounts{ByClassKind: r.kinds}) {
		t.Fatalf("KindCounts = %+v, oracle %+v", c.KindCounts(), r.kinds)
	}
	if !recordsEqual(c.Records(), r.records) {
		t.Fatalf("Records = %+v, oracle %+v", c.Records(), r.records)
	}
}

// TestDisarmMatchesFullScanSemantics is the exhausted-stream regression
// test: across randomized plans (multiple streams, kind masks, shared
// indices) and operation sequences running far past the last planned
// index, the disarmed datapath's Counts, KindCounts and Records are
// bit-identical to the always-scan reference semantics.
func TestDisarmMatchesFullScanSemantics(t *testing.T) {
	rng := stats.NewRNG(41)
	for trial := 0; trial < 200; trial++ {
		k := rng.Intn(4)
		plan := make([]Injection, 0, k+1)
		for i := 0; i <= k; i++ {
			inj := Injection{
				Class:   RegionClass(rng.Intn(2)),
				Index:   uint64(rng.Intn(40)), // indices may collide: multi-fire
				Bit:     uint(rng.Intn(64)),
				Operand: rng.Intn(2),
			}
			if rng.Intn(2) == 0 {
				inj.KindMask = uint8(rng.Intn(7) + 1)
			}
			plan = append(plan, inj)
		}
		c := NewWithPlan(plan)
		r := newRefCtx(plan)
		seq := stats.NewRNG(uint64(1000 + trial))
		// 400 ops per class stream upper-bounds index 40: every stream
		// runs well past its last planned injection, exercising the
		// disarmed tail.
		sc, sr := driveBoth(c, r, seq, 400)
		sameObservations(t, c, r, sc, sr)
		if c.Pending() != 0 && c.Fired()+c.Pending() != len(plan) {
			t.Fatalf("fired %d + pending %d != planned %d", c.Fired(), c.Pending(), len(plan))
		}
	}
}

// TestPooledCtxMatchesFresh asserts a reused (ResetPlan) context is
// observationally identical to a freshly constructed one over the same
// plan and operation sequence — the pooling determinism contract.
func TestPooledCtxMatchesFresh(t *testing.T) {
	pooled := New()
	rng := stats.NewRNG(97)
	for trial := 0; trial < 100; trial++ {
		plan := []Injection{
			{Class: Common, Index: uint64(rng.Intn(30)), Bit: uint(rng.Intn(64))},
			{Class: Unique, Index: uint64(rng.Intn(30)), Bit: 5, KindMask: 1 << OpMul},
		}
		fresh := NewWithPlan(plan)
		pooled.ResetPlan(plan)
		run := func(c *Ctx, seed uint64) float64 {
			seq := stats.NewRNG(seed)
			s := 1.0
			end := func() {}
			for i := 0; i < 200; i++ {
				if i == 50 {
					end = c.Begin("halo", Unique)
				}
				if i == 150 {
					end()
				}
				x := 1 + float64(seq.Intn(5))
				switch seq.Intn(3) {
				case 0:
					s = c.Add(s, x)
				case 1:
					s = c.Sub(s, x)
				default:
					s = c.Mul(s, 1+x/8)
				}
			}
			return s
		}
		seed := uint64(trial)
		sf, sp := run(fresh, seed), run(pooled, seed)
		if math.Float64bits(sf) != math.Float64bits(sp) {
			t.Fatalf("trial %d: pooled sum %g != fresh %g", trial, sp, sf)
		}
		if fresh.Counts() != pooled.Counts() {
			t.Fatalf("trial %d: pooled Counts %+v != fresh %+v", trial, pooled.Counts(), fresh.Counts())
		}
		if fresh.KindCounts() != pooled.KindCounts() {
			t.Fatalf("trial %d: pooled KindCounts differ", trial)
		}
		if !recordsEqual(fresh.Records(), pooled.Records()) {
			t.Fatalf("trial %d: pooled Records %+v != fresh %+v", trial, pooled.Records(), fresh.Records())
		}
		if !reflect.DeepEqual(fresh.RegionCounts(), pooled.RegionCounts()) {
			t.Fatalf("trial %d: pooled RegionCounts %+v != fresh %+v",
				trial, pooled.RegionCounts(), fresh.RegionCounts())
		}
		if fresh.Divs() != pooled.Divs() {
			t.Fatalf("trial %d: Divs differ", trial)
		}
	}
}
