// Package fpe implements resmod's instrumented floating-point engine — the
// stand-in for the paper's F-SEFI/QEMU instruction-level fault injector.
//
// Every floating-point addition, subtraction, multiplication and division in
// the benchmark applications flows through a per-rank Ctx.  The Ctx counts
// dynamic injectable operations (adds/subs/muls, matching the paper's choice
// of floating-point addition and multiplication instructions) separately for
// the "common computation" and "parallel-unique computation" region classes
// (paper Observations 1–2), and executes an injection Plan: at a chosen
// dynamic operation index it flips one bit of one input operand, exactly the
// paper's single-bit-flip fault model.
//
// A Ctx is owned by a single rank goroutine and is not safe for concurrent
// use; each rank in a simulated parallel execution gets its own Ctx.
package fpe

import (
	"fmt"
	"math"
)

// RegionClass classifies computation as common (present in serial execution)
// or parallel-unique (only present in parallel execution), per the paper's
// Observation 1.
type RegionClass int

const (
	// Common computation happens in serial and in parallel execution.
	Common RegionClass = iota
	// Unique computation happens only in parallel execution (halo packing,
	// transpose staging, ...).
	Unique

	numClasses
)

// String returns "common" or "unique".
func (c RegionClass) String() string {
	switch c {
	case Common:
		return "common"
	case Unique:
		return "unique"
	default:
		return fmt.Sprintf("RegionClass(%d)", int(c))
	}
}

// OpKind identifies the kind of floating point operation an injection hit.
type OpKind int

// The instrumented operation kinds.  Add, Sub and Mul are injectable
// (the paper injects into floating point addition and multiplication;
// subtraction compiles to the same adder datapath).  Div is instrumented
// for accounting but not injectable.
const (
	OpAdd OpKind = iota
	OpSub
	OpMul
	OpDiv
)

// String returns the operation mnemonic.
func (k OpKind) String() string {
	switch k {
	case OpAdd:
		return "fadd"
	case OpSub:
		return "fsub"
	case OpMul:
		return "fmul"
	case OpDiv:
		return "fdiv"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Injection describes one planned fault: at the Index-th dynamic
// injectable operation within its stream, corrupt input operand Operand
// (0 or 1).
//
// The stream an Index counts over is selected by (Class, KindMask): all
// injectable operations of the region class when KindMask is zero, or only
// the operation kinds whose bits are set (1<<OpAdd | ... ) otherwise.
//
// The corruption is a single-bit flip of Bit (0 = least significant) when
// Mask is zero, or an XOR with Mask (multi-bit faults) otherwise.
type Injection struct {
	Class    RegionClass
	KindMask uint8
	Index    uint64
	Bit      uint
	Mask     uint64
	Operand  int
}

// corrupt applies the injection's fault to v.
func (inj Injection) corrupt(v float64) float64 {
	if inj.Mask != 0 {
		return math.Float64frombits(math.Float64bits(v) ^ inj.Mask)
	}
	return FlipBit(v, inj.Bit)
}

// matchesKind reports whether the injection's stream includes ops of kind k.
func (inj Injection) matchesKind(k OpKind) bool {
	return inj.KindMask == 0 || inj.KindMask&(1<<uint(k)) != 0
}

// Record describes an injection that actually fired, for logging and
// mapping the error back to the application level (the paper uses F-SEFI's
// ability to do the same via pyelftools).
type Record struct {
	Injection
	Op     OpKind
	Region string
	Before float64
	After  float64
}

// Counts holds dynamic injectable-operation counts per region class.
type Counts struct {
	Common uint64
	Unique uint64
}

// KindCounts holds dynamic injectable-operation counts broken down by
// region class and operation kind, for planning kind-restricted
// injections.
type KindCounts struct {
	// ByClassKind[class][kind] counts injectable ops of that kind executed
	// in that region class (kinds: OpAdd, OpSub, OpMul; OpDiv is not
	// injectable and stays zero).
	ByClassKind [numClasses][4]uint64
}

// Of returns the stream length for (class, kindMask): the total injectable
// ops of the class when kindMask is zero, else the sum over the selected
// kinds.
func (k KindCounts) Of(class RegionClass, kindMask uint8) uint64 {
	var n uint64
	for kind := 0; kind < 4; kind++ {
		if kindMask == 0 || kindMask&(1<<uint(kind)) != 0 {
			n += k.ByClassKind[class][kind]
		}
	}
	return n
}

// Counts collapses the kind breakdown into per-class totals.
func (k KindCounts) Counts() Counts {
	return Counts{Common: k.Of(Common, 0), Unique: k.Of(Unique, 0)}
}

// Total returns the total injectable operation count.
func (c Counts) Total() uint64 { return c.Common + c.Unique }

// Of returns the count for one class.
func (c Counts) Of(cl RegionClass) uint64 {
	if cl == Unique {
		return c.Unique
	}
	return c.Common
}

// UniqueFraction returns the fraction of injectable operations in
// parallel-unique regions — resmod's analog of the paper's Table 1
// "percentage of the parallel-unique computation", and the prob2 weight of
// Eq. 1.  Returns 0 for an empty count.
func (c Counts) UniqueFraction() float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	return float64(c.Unique) / float64(t)
}

// regionFrame is one entry of the named-region stack.
type regionFrame struct {
	name  string
	class RegionClass
	// prev is the class that was active before this frame.
	prev RegionClass
	// snapshot of injectable counters at region entry, for per-region totals.
	snap [numClasses]uint64
}

// injGroup is the pending-injection state for one (class, kindMask)
// stream appearing in the plan.
type injGroup struct {
	class    RegionClass
	kindMask uint8
	ctr      uint64 // dynamic index within this stream
	queue    []Injection
	pos      int
}

// Ctx is the per-rank instrumented floating point context.
type Ctx struct {
	class    RegionClass
	counters [numClasses]uint64    // injectable ops executed per class
	kinds    [numClasses][4]uint64 // injectable ops per class and kind
	divs     uint64                // non-injectable ops (accounting only)

	// armed counts the plan groups that still hold unfired injections.
	armed int

	// trigger[class] is the dynamic index within that class's injectable
	// stream at which the next unmasked (KindMask==0) injection fires, or
	// noTrigger when none is pending.  Because an unmasked group's stream
	// index IS the class counter, the datapath reduces the whole armed
	// check to one integer comparison per op: clean runs, clean ranks,
	// the pre-fire window, and the post-fire tail all pay the same
	// counter-increment fast path.
	trigger [numClasses]uint64

	// scanArmed is nonzero only for plans containing kind-masked
	// (KindMask!=0) groups, whose stream indexes depend on the op-kind
	// mix and cannot be predicted by a class trigger.  Such plans fall
	// back to the legacy per-op group scan until every group is
	// exhausted.  Real campaigns draw unmasked plans, so this path is
	// cold.
	scanArmed int

	// groups holds the plan's injections grouped by stream; empty for
	// clean runs, so the hot path pays only the counter increments.
	groups []injGroup

	records []Record

	stack []regionFrame
	// regionTotals is allocated lazily on the first closed named region,
	// so region-free executions never pay for the map.
	regionTotals map[string]Counts
}

// noTrigger marks a class stream with no pending unmasked injection.
const noTrigger = math.MaxUint64

// New returns a context with no planned injections and the Common class
// active.
func New() *Ctx {
	return &Ctx{trigger: [numClasses]uint64{noTrigger, noTrigger}}
}

// NewWithPlan returns a context that will execute the given injections.
// The plan slice is copied, grouped by stream, and sorted internally.
func NewWithPlan(plan []Injection) *Ctx {
	c := New()
	c.loadPlan(plan)
	return c
}

// Reset returns the context to its freshly-constructed clean state (no
// plan, Common class active, all counters zero) while keeping the
// allocated capacity — group slots, record storage, the region map — so
// steady-state reuse across many executions allocates nothing.  The
// slices previously returned by Records must not be retained across a
// Reset.
func (c *Ctx) Reset() { c.ResetPlan(nil) }

// ResetPlan is Reset followed by loading a new injection plan, the pooled
// equivalent of NewWithPlan.
func (c *Ctx) ResetPlan(plan []Injection) {
	c.class = Common
	c.counters = [numClasses]uint64{}
	c.kinds = [numClasses][4]uint64{}
	c.divs = 0
	c.armed = 0
	c.trigger = [numClasses]uint64{noTrigger, noTrigger}
	c.scanArmed = 0
	c.groups = c.groups[:0]
	c.records = c.records[:0]
	c.stack = c.stack[:0]
	clear(c.regionTotals)
	c.loadPlan(plan)
}

// loadPlan groups the plan by (class, kindMask) stream and arms the
// context.  Group slots retired by a ResetPlan keep their queue storage,
// so reloading a same-shaped plan allocates nothing.
func (c *Ctx) loadPlan(plan []Injection) {
	for _, inj := range plan {
		cl := inj.Class
		if cl != Common && cl != Unique {
			panic(fmt.Sprintf("fpe: invalid region class %d in plan", int(cl)))
		}
		gi := -1
		for i := range c.groups {
			if c.groups[i].class == cl && c.groups[i].kindMask == inj.KindMask {
				gi = i
				break
			}
		}
		if gi < 0 {
			gi = c.grabGroup(cl, inj.KindMask)
		}
		c.groups[gi].queue = append(c.groups[gi].queue, inj)
	}
	for i := range c.groups {
		sortInjections(c.groups[i].queue)
	}
	c.armed = len(c.groups)
	masked := false
	for i := range c.groups {
		if c.groups[i].kindMask != 0 {
			masked = true
			break
		}
	}
	if masked {
		c.scanArmed = len(c.groups)
		return
	}
	// Unmasked plans (at most one group per class after grouping): arm
	// the per-class triggers so the datapath fires by index comparison.
	for i := range c.groups {
		g := &c.groups[i]
		c.trigger[g.class] = g.queue[0].Index
	}
}

// grabGroup appends a fresh group slot, reusing the backing array (and
// the retired slot's queue capacity) left behind by a ResetPlan.
func (c *Ctx) grabGroup(cl RegionClass, kindMask uint8) int {
	n := len(c.groups)
	if n < cap(c.groups) {
		c.groups = c.groups[:n+1]
		g := &c.groups[n]
		g.class, g.kindMask, g.ctr, g.pos = cl, kindMask, 0, 0
		g.queue = g.queue[:0]
	} else {
		c.groups = append(c.groups, injGroup{class: cl, kindMask: kindMask})
	}
	return n
}

// sortInjections sorts by Index ascending (insertion sort; plans are tiny).
func sortInjections(q []Injection) {
	for i := 1; i < len(q); i++ {
		for j := i; j > 0 && q[j].Index < q[j-1].Index; j-- {
			q[j], q[j-1] = q[j-1], q[j]
		}
	}
}

// Begin enters a named region of the given class.  Regions nest; End
// restores the enclosing region's class.  The returned function is the
// matching End, enabling `defer ctx.Begin("halo", fpe.Unique)()`.
func (c *Ctx) Begin(name string, class RegionClass) func() {
	c.stack = append(c.stack, regionFrame{
		name:  name,
		class: class,
		prev:  c.class,
		snap:  c.counters,
	})
	c.class = class
	return c.End
}

// End leaves the innermost region.  It panics on unbalanced calls.
func (c *Ctx) End() {
	n := len(c.stack)
	if n == 0 {
		panic("fpe: End without matching Begin")
	}
	f := c.stack[n-1]
	c.stack = c.stack[:n-1]
	c.class = f.prev
	if c.regionTotals == nil {
		c.regionTotals = make(map[string]Counts, 4)
	}
	t := c.regionTotals[f.name]
	t.Common += c.counters[Common] - f.snap[Common]
	t.Unique += c.counters[Unique] - f.snap[Unique]
	c.regionTotals[f.name] = t
}

// Class returns the currently active region class.
func (c *Ctx) Class() RegionClass { return c.class }

// Counts returns the injectable operation counts accumulated so far.
func (c *Ctx) Counts() Counts {
	return Counts{Common: c.counters[Common], Unique: c.counters[Unique]}
}

// KindCounts returns the per-kind operation breakdown accumulated so far.
func (c *Ctx) KindCounts() KindCounts {
	return KindCounts{ByClassKind: c.kinds}
}

// Divs returns the count of instrumented non-injectable operations.
func (c *Ctx) Divs() uint64 { return c.divs }

// emptyRegions is the shared result for region-free executions, so
// RegionCounts never allocates for them.  Callers treat RegionCounts
// results as read-only.
var emptyRegions = map[string]Counts{}

// RegionCounts returns per-named-region injectable operation counts.
// Only fully closed region instances are included.  The result must be
// treated as read-only: region-free executions share one empty map.
func (c *Ctx) RegionCounts() map[string]Counts {
	if len(c.regionTotals) == 0 {
		return emptyRegions
	}
	out := make(map[string]Counts, len(c.regionTotals))
	for k, v := range c.regionTotals {
		out[k] = v
	}
	return out
}

// Records returns the injections that fired during execution.
func (c *Ctx) Records() []Record { return c.records }

// Fired reports how many planned injections have fired so far.
func (c *Ctx) Fired() int { return len(c.records) }

// Pending reports how many planned injections have not fired yet.
func (c *Ctx) Pending() int {
	n := 0
	for i := range c.groups {
		n += len(c.groups[i].queue) - c.groups[i].pos
	}
	return n
}

// inject fires the injections due at the current op and corrupts the
// operands.  It is the slow path, reached in exactly two cases: the
// class trigger matched idx (an unmasked injection is due on THIS op),
// or scanArmed > 0 (a kind-masked plan needs the legacy per-op group
// scan).  idx is the op's pre-increment dynamic index within the active
// class's stream, which for unmasked groups IS the group's stream index.
func (c *Ctx) inject(op OpKind, idx uint64, a, b float64) (float64, float64) {
	cl := c.class
	scan := c.scanArmed != 0
	for gi := range c.groups {
		g := &c.groups[gi]
		if g.pos >= len(g.queue) {
			continue // exhausted stream: nothing left to fire
		}
		if g.class != cl || (g.kindMask != 0 && g.kindMask&(1<<uint(op)) == 0) {
			continue
		}
		gidx := idx
		if scan {
			// Legacy mode: a masked group's stream counts only matching
			// ops, so its index advances here, per call.
			gidx = g.ctr
			g.ctr = gidx + 1
		}
		// Multiple injections may share an index (distinct faults); fire
		// them all.
		for g.pos < len(g.queue) && g.queue[g.pos].Index == gidx {
			inj := g.queue[g.pos]
			g.pos++
			var before, after float64
			if inj.Operand == 0 {
				before = a
				a = inj.corrupt(a)
				after = a
			} else {
				before = b
				b = inj.corrupt(b)
				after = b
			}
			name := ""
			if len(c.stack) > 0 {
				name = c.stack[len(c.stack)-1].name
			}
			c.records = append(c.records, Record{
				Injection: inj, Op: op, Region: name, Before: before, After: after,
			})
		}
		if g.pos == len(g.queue) {
			c.armed--
			if scan {
				c.scanArmed--
			}
		}
	}
	if !scan {
		// Re-arm this class's trigger at the next pending head (strictly
		// beyond idx: everything due at idx just fired).
		c.trigger[cl] = noTrigger
		for gi := range c.groups {
			g := &c.groups[gi]
			if g.class == cl && g.pos < len(g.queue) {
				c.trigger[cl] = g.queue[g.pos].Index
			}
		}
	}
	return a, b
}

// Add computes a+b through the instrumented datapath.
func (c *Ctx) Add(a, b float64) float64 {
	cl := c.class
	idx := c.counters[cl]
	c.counters[cl] = idx + 1
	c.kinds[cl][OpAdd]++
	if idx == c.trigger[cl] || c.scanArmed != 0 {
		a, b = c.inject(OpAdd, idx, a, b)
	}
	return a + b
}

// Sub computes a-b through the instrumented datapath.
func (c *Ctx) Sub(a, b float64) float64 {
	cl := c.class
	idx := c.counters[cl]
	c.counters[cl] = idx + 1
	c.kinds[cl][OpSub]++
	if idx == c.trigger[cl] || c.scanArmed != 0 {
		a, b = c.inject(OpSub, idx, a, b)
	}
	return a - b
}

// Mul computes a*b through the instrumented datapath.
func (c *Ctx) Mul(a, b float64) float64 {
	cl := c.class
	idx := c.counters[cl]
	c.counters[cl] = idx + 1
	c.kinds[cl][OpMul]++
	if idx == c.trigger[cl] || c.scanArmed != 0 {
		a, b = c.inject(OpMul, idx, a, b)
	}
	return a * b
}

// Div computes a/b.  Division is instrumented for accounting but is not an
// injection target (the paper injects into adds and muls only).
func (c *Ctx) Div(a, b float64) float64 {
	c.divs++
	return a / b
}

// FMA computes a*b+x as one mul and one add through the datapath.
func (c *Ctx) FMA(a, b, x float64) float64 {
	return c.Add(c.Mul(a, b), x)
}

// Dot accumulates the instrumented dot product of x and y.
// It panics if the lengths differ.
func (c *Ctx) Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("fpe: Dot length mismatch")
	}
	var s float64
	for i := range x {
		s = c.Add(s, c.Mul(x[i], y[i]))
	}
	return s
}

// Axpy computes y += alpha*x element-wise through the datapath.
func (c *Ctx) Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("fpe: Axpy length mismatch")
	}
	for i := range x {
		y[i] = c.Add(y[i], c.Mul(alpha, x[i]))
	}
}

// FlipBit returns f with bit `bit` (0..63) of its IEEE-754 representation
// inverted.
func FlipBit(f float64, bit uint) float64 {
	if bit > 63 {
		panic(fmt.Sprintf("fpe: bit %d out of range", bit))
	}
	return math.Float64frombits(math.Float64bits(f) ^ (1 << bit))
}
