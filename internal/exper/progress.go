package exper

import (
	"sync"

	"resmod/internal/telemetry"
)

// SchedulerStats is a point-in-time sample of the session's campaign
// scheduler: how many campaigns hold an execution slot, how many are
// waiting for one, and the shared trial-worker budget's occupancy.  The
// prediction service exposes it on /v1/status and stamps it into every
// prediction-kind progress event.
type SchedulerStats struct {
	// CampaignsRunning is the number of campaign-parallel slots in use
	// (campaigns actually executing trials or their golden runs).
	CampaignsRunning int `json:"campaigns_running"`
	// CampaignsQueued is the number of campaigns blocked waiting for a
	// slot.
	CampaignsQueued int `json:"campaigns_queued"`
	// CampaignSlots is the slot capacity (Config.CampaignParallel).
	CampaignSlots int `json:"campaign_slots"`
	// WorkerBudgetInUse/Size sample the shared trial-worker token pool.
	WorkerBudgetInUse int `json:"worker_budget_in_use"`
	WorkerBudgetSize  int `json:"worker_budget_size"`
}

// SchedulerStats samples the session's scheduler occupancy.  The numbers
// are instantaneous and unsynchronized with each other — an observation
// surface, not a scheduling input.
func (s *Session) SchedulerStats() SchedulerStats {
	return SchedulerStats{
		CampaignsRunning:  len(s.slots),
		CampaignsQueued:   int(s.waiting.Load()),
		CampaignSlots:     cap(s.slots),
		WorkerBudgetInUse: s.pool.InUse(),
		WorkerBudgetSize:  s.pool.Size(),
	}
}

// predictionProgress aggregates one prediction's campaign DAG into
// prediction-kind progress events: Done/Total count the DAG's stages
// (serial curve points, the small profile, the unique-region branch, the
// measured large run) and each event samples the session scheduler, so a
// subscriber sees both how far this prediction is and how busy the
// machine is.  nil (bus off) is valid and inert, like campaignProgress.
type predictionProgress struct {
	prog  *telemetry.Progress
	s     *Session
	key   string
	total int

	mu   sync.Mutex
	done int
}

// newPredictionProgress builds the aggregator and publishes the opening
// snapshot, or returns nil when the context carries no Progress bus.
func newPredictionProgress(prog *telemetry.Progress, s *Session, key string, total int) *predictionProgress {
	if prog == nil {
		return nil
	}
	pp := &predictionProgress{prog: prog, s: s, key: key, total: total}
	pp.publish(telemetry.StateRunning)
	return pp
}

// stageDone records one completed DAG stage and publishes.
func (pp *predictionProgress) stageDone() {
	if pp == nil {
		return
	}
	pp.mu.Lock()
	pp.done++
	pp.mu.Unlock()
	pp.publish(telemetry.StateRunning)
}

// finish publishes the terminal snapshot: done when the whole DAG
// completed, failed when any stage errored (including cancellation).
func (pp *predictionProgress) finish(err error) {
	if pp == nil {
		return
	}
	if err != nil {
		pp.publish(telemetry.StateFailed)
		return
	}
	pp.publish(telemetry.StateDone)
}

// publish posts one prediction-kind event in the given state.
func (pp *predictionProgress) publish(state string) {
	if pp == nil {
		return
	}
	st := pp.s.SchedulerStats()
	pp.mu.Lock()
	done := pp.done
	pp.mu.Unlock()
	pp.prog.Publish(telemetry.ProgressEvent{
		Kind:              telemetry.KindPrediction,
		Key:               pp.key,
		State:             state,
		Done:              uint64(done),
		Total:             uint64(pp.total),
		CampaignsRunning:  st.CampaignsRunning,
		CampaignsQueued:   st.CampaignsQueued,
		WorkerBudgetInUse: st.WorkerBudgetInUse,
		WorkerBudgetSize:  st.WorkerBudgetSize,
	})
}
