package exper

import (
	"fmt"
	"io"

	"resmod/internal/core"
	"resmod/internal/faultsim"
)

// Table2Row is one entry of the paper's Table 2: the cosine similarity of
// error propagation between a small-scale and the large-scale execution.
type Table2Row struct {
	Bench  string
	Class  string
	Small  int // small-scale rank count (4 or 8)
	Large  int // large-scale rank count (64)
	Cosine float64
}

// Table2 profiles error propagation (one error per test) at 4, 8 and 64
// ranks for the given benchmarks and reports the 4V64 and 8V64 cosine
// similarities.
func Table2(s *Session, names []string) ([]Table2Row, error) {
	list, err := resolveApps(names)
	if err != nil {
		return nil, err
	}
	var rows []Table2Row
	for _, a := range list {
		class := a.DefaultClass()
		large, err := s.Campaign(a, class, 64, 1, faultsim.AnyRegion)
		if err != nil {
			return nil, err
		}
		for _, small := range []int{4, 8} {
			sc, err := s.Campaign(a, class, small, 1, faultsim.AnyRegion)
			if err != nil {
				return nil, err
			}
			sim, err := core.PropagationSimilarity(sc.Hist, large.Hist)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Table2Row{
				Bench: a.Name(), Class: class, Small: small, Large: 64, Cosine: sim,
			})
		}
	}
	return rows, nil
}

// RenderTable2 prints the rows in the paper's table format.
func RenderTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintf(w, "%-30s %s\n", "Benchmark", "Cosine similarity value")
	for _, r := range rows {
		fmt.Fprintf(w, "%-30s %.3f\n",
			fmt.Sprintf("%s (%s, %dV%d)", r.Bench, r.Class, r.Small, r.Large), r.Cosine)
	}
}
