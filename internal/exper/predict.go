package exper

import (
	"context"
	"fmt"
	"io"
	"time"

	"resmod/internal/apps"
	"resmod/internal/core"
	"resmod/internal/faultsim"
	"resmod/internal/stats"
	"resmod/internal/telemetry"
)

// PredictionRow is one benchmark's measured-vs-predicted entry of the
// paper's Figures 5, 6 and 7.
type PredictionRow struct {
	Bench     string
	Class     string
	Large     int // target scale p
	Small     int // small-scale size S used for profiling/tuning
	Measured  stats.Rates
	Predicted stats.Rates
	Tuned     bool
	// Error is |measured - predicted| success rate.
	Error float64
	// SmallTime is the wall time of the small-scale deployment and
	// SerialTime the *average* serial campaign time (the total over the
	// sampled serial deployments divided by the number of sample points),
	// for the Figure 8 cost axis.  Both are per-campaign elapsed times,
	// independent of how many campaigns ran concurrently.
	SmallTime  time.Duration
	SerialTime time.Duration
}

// gatherModelInputs runs the deployments of §4 for one benchmark and
// assembles the model inputs, the measured large-scale ground truth, and
// the campaign wall times.
func gatherModelInputs(s *Session, a apps.App, class string, small, large int) (*core.Inputs, stats.Rates, error) {
	in, _, _, measured, err := gatherModelInputsTimed(s.Context(), s, a, class, small, large)
	return in, measured, err
}

func gatherModelInputsTimed(ctx context.Context, s *Session, a apps.App, class string, small, large int) (
	*core.Inputs, time.Duration, time.Duration, stats.Rates, error) {
	xs, err := core.SampleXs(large, small)
	if err != nil {
		return nil, 0, 0, stats.Rates{}, err
	}

	// The prediction's campaign DAG: every serial curve point, the
	// small-scale profile deployment and the measured large run are
	// mutually independent; the unique-region deployment depends only on
	// the large golden (whose UniqueFraction decides whether it runs at
	// all).  All stages are submitted at once and execute under the
	// session's campaign-parallel slots and shared worker budget;
	// timings are per-campaign Elapsed sums, so SmallTime/SerialTime are
	// identical however many stages overlap.
	var (
		rates       = make([]stats.Rates, len(xs))
		serialTimes = make([]time.Duration, len(xs))
		smallSum    *faultsim.Summary
		prob2       float64
		unique      stats.Rates
		measured    stats.Rates
	)
	// Prediction-kind progress: one event per completed DAG stage, each
	// sampling the session scheduler.  Inert when the context carries no
	// Progress bus.
	pp := newPredictionProgress(telemetry.From(ctx).Progress(), s,
		fmt.Sprintf("%s/%s s%d p%d", a.Name(), class, small, large), len(xs)+3)
	stage := func(fn func(ctx context.Context) error) func(ctx context.Context) error {
		return func(ctx context.Context) error {
			if err := fn(ctx); err != nil {
				return err
			}
			pp.stageDone()
			return nil
		}
	}
	g := newGroup(ctx)
	for i, x := range xs {
		i, x := i, x
		g.Go(stage(func(ctx context.Context) error {
			sum, err := s.CampaignCtx(ctx, a, class, 1, x, faultsim.CommonOnly)
			if err != nil {
				return err
			}
			rates[i] = sum.Rates
			serialTimes[i] = sum.Elapsed
			return nil
		}))
	}
	g.Go(stage(func(ctx context.Context) error {
		// Small-scale deployment: propagation profile, conditional rates.
		sum, err := s.CampaignCtx(ctx, a, class, small, 1, faultsim.AnyRegion)
		if err != nil {
			return err
		}
		smallSum = sum
		return nil
	}))
	g.Go(stage(func(ctx context.Context) error {
		// Parallel-unique weight from the large-scale golden run (one
		// clean run — cheap; the expensive part the model avoids is the
		// large-scale deployment's thousands of injected runs), then the
		// unique-region deployment it gates.
		golden, err := s.GoldenCtx(ctx, a, class, large)
		if err != nil {
			return err
		}
		prob2 = golden.UniqueFraction()
		if prob2 > 0 {
			uc, err := s.CampaignCtx(ctx, a, class, small, 1, faultsim.UniqueOnly)
			if err != nil {
				return err
			}
			unique = uc.Rates
		}
		return nil
	}))
	g.Go(stage(func(ctx context.Context) error {
		// Ground truth: the measured large-scale deployment.
		sum, err := s.CampaignCtx(ctx, a, class, large, 1, faultsim.AnyRegion)
		if err != nil {
			return err
		}
		measured = sum.Rates
		return nil
	}))
	if err := g.Wait(); err != nil {
		pp.finish(err)
		return nil, 0, 0, stats.Rates{}, err
	}
	pp.finish(nil)

	curve, err := core.NewSerialCurve(large, xs, rates)
	if err != nil {
		return nil, 0, 0, stats.Rates{}, err
	}
	var serialTime time.Duration
	for _, d := range serialTimes {
		serialTime += d
	}
	serialTime /= time.Duration(len(xs))
	cond := make(map[int]stats.Rates)
	for x := 1; x <= small; x++ {
		if r, ok := smallSum.ConditionalRates(x); ok {
			cond[x] = r
		}
	}

	in := &core.Inputs{
		P:                large,
		Serial:           curve,
		SmallProfile:     smallSum.Hist.Probabilities(),
		SmallConditional: cond,
		Prob2:            prob2,
		Unique:           unique,
	}
	return in, smallSum.Elapsed, serialTime, measured, nil
}

// PredictOne runs the full modeling pipeline of §4 for one benchmark:
// serial sampled multi-error deployments, a small-scale deployment for the
// propagation profile / tuning factors / parallel-unique rates, and the
// measured large-scale deployment for ground truth.
func PredictOne(s *Session, name, class string, small, large int) (*PredictionRow, error) {
	return PredictOneCtx(s.Context(), s, name, class, small, large)
}

// PredictOneCtx is PredictOne under a caller-supplied context, so a
// caller (e.g. the prediction service) can scope the pipeline's trace
// spans and cancellation to one job.
func PredictOneCtx(ctx context.Context, s *Session, name, class string, small, large int) (*PredictionRow, error) {
	list, err := resolveApps([]string{name})
	if err != nil {
		return nil, err
	}
	a := list[0]
	if class == "" {
		class = a.DefaultClass()
	}
	tel := telemetry.From(ctx)
	ctx, span := tel.Tracer().Start(ctx, "predict",
		telemetry.String("bench", a.Name()),
		telemetry.String("class", class),
		telemetry.Int("small", small),
		telemetry.Int("large", large))
	defer span.End()
	inputs, smallTime, serialTime, measured, err := gatherModelInputsTimed(ctx, s, a, class, small, large)
	if err != nil {
		return nil, err
	}
	pred, err := core.Predict(*inputs)
	if err != nil {
		return nil, err
	}
	predRates := pred.Rates
	return &PredictionRow{
		Bench: a.Name(), Class: class, Large: large, Small: small,
		Measured:  measured,
		Predicted: predRates,
		Tuned:     pred.Tuned,
		Error:     core.PredictionError(measured, predRates),
		SmallTime: smallTime, SerialTime: serialTime,
	}, nil
}

// PredictAll runs PredictOne for every named benchmark (all registered
// when names is empty) — one of the paper's Figure 5/6 panels.  All
// benchmarks' campaign DAGs are submitted concurrently (the session's
// scheduler bounds actual execution); row order follows the name order
// regardless of completion order.
func PredictAll(s *Session, names []string, small, large int) ([]PredictionRow, error) {
	list, err := resolveApps(names)
	if err != nil {
		return nil, err
	}
	rows := make([]PredictionRow, len(list))
	g := newGroup(s.Context())
	for i, a := range list {
		i, a := i, a
		g.Go(func(ctx context.Context) error {
			row, err := PredictOneCtx(ctx, s, a.Name(), "", small, large)
			if err != nil {
				return err
			}
			rows[i] = *row
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	return rows, nil
}

// SummarizeErrors returns the average and maximum success-rate prediction
// error over the rows (the paper's headline numbers).
func SummarizeErrors(rows []PredictionRow) (avg, max float64) {
	if len(rows) == 0 {
		return 0, 0
	}
	for _, r := range rows {
		avg += r.Error
		if r.Error > max {
			max = r.Error
		}
	}
	return avg / float64(len(rows)), max
}

// RMSEOf returns the paper's Eq. 9 over the rows' success rates.
func RMSEOf(rows []PredictionRow) float64 {
	measured := make([]float64, len(rows))
	predicted := make([]float64, len(rows))
	for i, r := range rows {
		measured[i] = r.Measured.Success
		predicted[i] = r.Predicted.Success
	}
	rmse, err := stats.RMSE(measured, predicted)
	if err != nil {
		return 0
	}
	return rmse
}

// RenderPredictions prints a Figure 5/6/7 style table.
func RenderPredictions(w io.Writer, rows []PredictionRow) {
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "prediction for %d ranks from serial + %d ranks\n",
		rows[0].Large, rows[0].Small)
	fmt.Fprintf(w, "  %-14s %-10s %-10s %-8s %s\n",
		"benchmark", "measured", "predicted", "error", "tuned")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-14s %-10s %-10s %-8s %v\n",
			fmt.Sprintf("%s (%s)", r.Bench, r.Class),
			fmtPct(r.Measured.Success), fmtPct(r.Predicted.Success),
			fmtPct(r.Error), r.Tuned)
	}
	avg, max := SummarizeErrors(rows)
	fmt.Fprintf(w, "  average error %s, max %s, RMSE %.4f\n",
		fmtPct(avg), fmtPct(max), RMSEOf(rows))
}
