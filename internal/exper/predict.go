package exper

import (
	"context"
	"fmt"
	"io"
	"time"

	"resmod/internal/apps"
	"resmod/internal/core"
	"resmod/internal/faultsim"
	"resmod/internal/stats"
	"resmod/internal/telemetry"
)

// PredictionRow is one benchmark's measured-vs-predicted entry of the
// paper's Figures 5, 6 and 7.
type PredictionRow struct {
	Bench     string
	Class     string
	Large     int // target scale p
	Small     int // small-scale size S used for profiling/tuning
	Measured  stats.Rates
	Predicted stats.Rates
	Tuned     bool
	// Error is |measured - predicted| success rate.
	Error float64
	// SmallTime is the wall time of the small-scale deployment and
	// SerialTime of one serial deployment, for the Figure 8 cost axis.
	SmallTime  time.Duration
	SerialTime time.Duration
}

// gatherModelInputs runs the deployments of §4 for one benchmark and
// assembles the model inputs, the measured large-scale ground truth, and
// the campaign wall times.
func gatherModelInputs(s *Session, a apps.App, class string, small, large int) (*core.Inputs, stats.Rates, error) {
	in, _, _, measured, err := gatherModelInputsTimed(s.Context(), s, a, class, small, large)
	return in, measured, err
}

func gatherModelInputsTimed(ctx context.Context, s *Session, a apps.App, class string, small, large int) (
	*core.Inputs, time.Duration, time.Duration, stats.Rates, error) {
	// Serial curve at the paper's sampling points.
	xs, err := core.SampleXs(large, small)
	if err != nil {
		return nil, 0, 0, stats.Rates{}, err
	}
	rates := make([]stats.Rates, len(xs))
	var serialTime time.Duration
	for i, x := range xs {
		sum, err := s.CampaignCtx(ctx, a, class, 1, x, faultsim.CommonOnly)
		if err != nil {
			return nil, 0, 0, stats.Rates{}, err
		}
		rates[i] = sum.Rates
		serialTime += sum.Elapsed
	}
	curve, err := core.NewSerialCurve(large, xs, rates)
	if err != nil {
		return nil, 0, 0, stats.Rates{}, err
	}
	serialTime /= time.Duration(len(xs))

	// Small-scale deployment: propagation profile, conditional rates.
	smallSum, err := s.CampaignCtx(ctx, a, class, small, 1, faultsim.AnyRegion)
	if err != nil {
		return nil, 0, 0, stats.Rates{}, err
	}
	cond := make(map[int]stats.Rates)
	for x := 1; x <= small; x++ {
		if r, ok := smallSum.ConditionalRates(x); ok {
			cond[x] = r
		}
	}

	// Parallel-unique weight from the large-scale golden run (one clean
	// run — cheap; the expensive part the model avoids is the large-scale
	// deployment's thousands of injected runs).
	golden, err := s.GoldenCtx(ctx, a, class, large)
	if err != nil {
		return nil, 0, 0, stats.Rates{}, err
	}
	prob2 := golden.UniqueFraction()
	var unique stats.Rates
	if prob2 > 0 {
		uc, err := s.CampaignCtx(ctx, a, class, small, 1, faultsim.UniqueOnly)
		if err != nil {
			return nil, 0, 0, stats.Rates{}, err
		}
		unique = uc.Rates
	}

	// Ground truth: the measured large-scale deployment.
	measured, err := s.CampaignCtx(ctx, a, class, large, 1, faultsim.AnyRegion)
	if err != nil {
		return nil, 0, 0, stats.Rates{}, err
	}

	in := &core.Inputs{
		P:                large,
		Serial:           curve,
		SmallProfile:     smallSum.Hist.Probabilities(),
		SmallConditional: cond,
		Prob2:            prob2,
		Unique:           unique,
	}
	return in, smallSum.Elapsed, serialTime, measured.Rates, nil
}

// PredictOne runs the full modeling pipeline of §4 for one benchmark:
// serial sampled multi-error deployments, a small-scale deployment for the
// propagation profile / tuning factors / parallel-unique rates, and the
// measured large-scale deployment for ground truth.
func PredictOne(s *Session, name, class string, small, large int) (*PredictionRow, error) {
	return PredictOneCtx(s.Context(), s, name, class, small, large)
}

// PredictOneCtx is PredictOne under a caller-supplied context, so a
// caller (e.g. the prediction service) can scope the pipeline's trace
// spans and cancellation to one job.
func PredictOneCtx(ctx context.Context, s *Session, name, class string, small, large int) (*PredictionRow, error) {
	list, err := resolveApps([]string{name})
	if err != nil {
		return nil, err
	}
	a := list[0]
	if class == "" {
		class = a.DefaultClass()
	}
	tel := telemetry.From(ctx)
	ctx, span := tel.Tracer().Start(ctx, "predict",
		telemetry.String("bench", a.Name()),
		telemetry.String("class", class),
		telemetry.Int("small", small),
		telemetry.Int("large", large))
	defer span.End()
	inputs, smallTime, serialTime, measured, err := gatherModelInputsTimed(ctx, s, a, class, small, large)
	if err != nil {
		return nil, err
	}
	pred, err := core.Predict(*inputs)
	if err != nil {
		return nil, err
	}
	predRates := pred.Rates
	return &PredictionRow{
		Bench: a.Name(), Class: class, Large: large, Small: small,
		Measured:  measured,
		Predicted: predRates,
		Tuned:     pred.Tuned,
		Error:     core.PredictionError(measured, predRates),
		SmallTime: smallTime, SerialTime: serialTime,
	}, nil
}

// PredictAll runs PredictOne for every named benchmark (all registered
// when names is empty) — one of the paper's Figure 5/6 panels.
func PredictAll(s *Session, names []string, small, large int) ([]PredictionRow, error) {
	list, err := resolveApps(names)
	if err != nil {
		return nil, err
	}
	rows := make([]PredictionRow, 0, len(list))
	for _, a := range list {
		row, err := PredictOne(s, a.Name(), "", small, large)
		if err != nil {
			return nil, err
		}
		rows = append(rows, *row)
	}
	return rows, nil
}

// SummarizeErrors returns the average and maximum success-rate prediction
// error over the rows (the paper's headline numbers).
func SummarizeErrors(rows []PredictionRow) (avg, max float64) {
	if len(rows) == 0 {
		return 0, 0
	}
	for _, r := range rows {
		avg += r.Error
		if r.Error > max {
			max = r.Error
		}
	}
	return avg / float64(len(rows)), max
}

// RMSEOf returns the paper's Eq. 9 over the rows' success rates.
func RMSEOf(rows []PredictionRow) float64 {
	measured := make([]float64, len(rows))
	predicted := make([]float64, len(rows))
	for i, r := range rows {
		measured[i] = r.Measured.Success
		predicted[i] = r.Predicted.Success
	}
	rmse, err := stats.RMSE(measured, predicted)
	if err != nil {
		return 0
	}
	return rmse
}

// RenderPredictions prints a Figure 5/6/7 style table.
func RenderPredictions(w io.Writer, rows []PredictionRow) {
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "prediction for %d ranks from serial + %d ranks\n",
		rows[0].Large, rows[0].Small)
	fmt.Fprintf(w, "  %-14s %-10s %-10s %-8s %s\n",
		"benchmark", "measured", "predicted", "error", "tuned")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-14s %-10s %-10s %-8s %v\n",
			fmt.Sprintf("%s (%s)", r.Bench, r.Class),
			fmtPct(r.Measured.Success), fmtPct(r.Predicted.Success),
			fmtPct(r.Error), r.Tuned)
	}
	avg, max := SummarizeErrors(rows)
	fmt.Fprintf(w, "  average error %s, max %s, RMSE %.4f\n",
		fmtPct(avg), fmtPct(max), RMSEOf(rows))
}
