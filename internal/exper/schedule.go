package exper

import (
	"context"
	"sync"
)

// group runs the independent stages of a campaign DAG concurrently.  It
// is a minimal errgroup: tasks receive a context cancelled as soon as
// any task fails, Wait returns the first error, and every task has
// finished by the time Wait returns.
//
// Actual campaign concurrency is bounded by the Session (campaign slots
// and the shared worker budget), not here: a group may submit every
// stage at once, and stages queue on the session's scheduler.  With
// Config.CampaignParallel = 1 the stages still execute strictly one at a
// time, which is what makes `-campaign-parallel 1` restore sequential
// behavior without a second code path.
type group struct {
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	mu     sync.Mutex
	err    error
}

func newGroup(ctx context.Context) *group {
	ctx, cancel := context.WithCancel(ctx)
	return &group{ctx: ctx, cancel: cancel}
}

// Go submits one stage.
func (g *group) Go(f func(ctx context.Context) error) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		if err := f(g.ctx); err != nil {
			g.mu.Lock()
			if g.err == nil {
				g.err = err
				g.cancel()
			}
			g.mu.Unlock()
		}
	}()
}

// Wait blocks until every submitted stage has finished and returns the
// first error (sibling cancellations are suppressed in its favor).
func (g *group) Wait() error {
	g.wg.Wait()
	g.cancel()
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.err
}
