package exper

import (
	"fmt"
	"io"
	"time"
)

// Fig8Point is one x-axis point of the paper's Figure 8: the model's
// accuracy (RMSE over all benchmarks) and the fault injection cost of the
// small-scale deployment, as the small-scale size grows.
type Fig8Point struct {
	Small int
	// RMSE is Eq. 9 over the benchmarks' success rates.
	RMSE float64
	// AvgSmallTime is the mean wall time of the small-scale deployments.
	AvgSmallTime time.Duration
	// AvgSerialTime is the mean wall time of one serial deployment, the
	// normalization baseline of the paper's right axis.
	AvgSerialTime time.Duration
	Rows          []PredictionRow
}

// NormalizedTime returns the small-scale fault injection time normalized
// by the serial fault injection time (the paper's Figure 8 right axis).
func (p Fig8Point) NormalizedTime() float64 {
	if p.AvgSerialTime <= 0 {
		return 0
	}
	return float64(p.AvgSmallTime) / float64(p.AvgSerialTime)
}

// Fig8 sweeps the small-scale size over smalls (the paper uses 4, 8, 16,
// 32) predicting the large scale for every named benchmark.
func Fig8(s *Session, names []string, smalls []int, large int) ([]Fig8Point, error) {
	if len(smalls) == 0 {
		smalls = []int{4, 8, 16, 32}
	}
	points := make([]Fig8Point, 0, len(smalls))
	for _, small := range smalls {
		rows, err := PredictAll(s, names, small, large)
		if err != nil {
			return nil, err
		}
		pt := Fig8Point{Small: small, RMSE: RMSEOf(rows), Rows: rows}
		for _, r := range rows {
			pt.AvgSmallTime += r.SmallTime
			pt.AvgSerialTime += r.SerialTime
		}
		pt.AvgSmallTime /= time.Duration(len(rows))
		pt.AvgSerialTime /= time.Duration(len(rows))
		points = append(points, pt)
	}
	return points, nil
}

// RenderFig8 prints the sweep.
func RenderFig8(w io.Writer, points []Fig8Point) {
	fmt.Fprintf(w, "accuracy vs fault-injection cost (prediction target: %d ranks)\n",
		points[0].Rows[0].Large)
	fmt.Fprintf(w, "  %-8s %-10s %-14s %s\n", "small", "RMSE", "time/serial", "avg campaign time")
	for _, p := range points {
		fmt.Fprintf(w, "  %-8d %-10.4f %-14.2f %v\n",
			p.Small, p.RMSE, p.NormalizedTime(), p.AvgSmallTime.Round(time.Millisecond))
	}
}
