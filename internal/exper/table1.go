package exper

import (
	"fmt"
	"io"
)

// Table1Row is one benchmark/class entry of the paper's Table 1.
type Table1Row struct {
	Bench          string
	Class          string
	UniqueFraction float64 // dynamic-op fraction of parallel-unique computation
	HasUnique      bool
}

// Table1 measures the percentage of parallel-unique computation of every
// benchmark at four ranks (the configuration of the paper's Table 1),
// using the dynamic injectable-operation fraction as the proxy for
// execution time (see DESIGN.md §2 for the substitution rationale).
func Table1(s *Session) ([]Table1Row, error) {
	// The paper reports both input sizes for CG, FT and MiniFE.
	configs := []struct{ app, class string }{
		{"CG", "S"}, {"CG", "B"},
		{"FT", "S"}, {"FT", "B"},
		{"MG", "S"},
		{"LU", "W"},
		{"MiniFE", "30"}, {"MiniFE", "300"},
		{"PENNANT", "leblanc"},
	}
	rows := make([]Table1Row, 0, len(configs))
	for _, c := range configs {
		a, err := resolveApps([]string{c.app})
		if err != nil {
			return nil, err
		}
		g, err := s.Golden(a[0], c.class, 4)
		if err != nil {
			return nil, err
		}
		f := g.UniqueFraction()
		rows = append(rows, Table1Row{
			Bench: c.app, Class: c.class,
			UniqueFraction: f, HasUnique: f > 0,
		})
	}
	return rows, nil
}

// RenderTable1 prints the rows in the paper's table format.
func RenderTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "%-22s %s\n", "Benchmark", "Parallel-unique computation")
	for _, r := range rows {
		val := "No parallel-unique comp"
		if r.HasUnique {
			val = fmt.Sprintf("%.2f%%", 100*r.UniqueFraction)
		}
		fmt.Fprintf(w, "%-22s %s\n", r.Bench+" ("+r.Class+")", val)
	}
}
