package exper

import (
	"bytes"
	"strings"
	"testing"

	_ "resmod/internal/apps/cg"
	_ "resmod/internal/apps/ft"
	_ "resmod/internal/apps/lu"
	_ "resmod/internal/apps/mg"
	_ "resmod/internal/apps/minife"
	_ "resmod/internal/apps/pennant"
)

// tiny returns a session sized for unit testing (statistics are noisy but
// the pipelines are exercised end-to-end).
func tiny(t *testing.T) *Session {
	t.Helper()
	return NewSession(Config{Trials: 12, Seed: 42})
}

func TestTable1(t *testing.T) {
	rows, err := Table1(tiny(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("got %d rows", len(rows))
	}
	byBench := map[string]Table1Row{}
	for _, r := range rows {
		byBench[r.Bench+"/"+r.Class] = r
	}
	// Shape of the paper's Table 1: FT large, CG/MiniFE small but present,
	// MG/LU/PENNANT absent.
	if !byBench["FT/S"].HasUnique || byBench["FT/S"].UniqueFraction < 0.05 {
		t.Fatalf("FT/S unique = %+v", byBench["FT/S"])
	}
	if !byBench["CG/S"].HasUnique || byBench["CG/S"].UniqueFraction > 0.10 {
		t.Fatalf("CG/S unique = %+v", byBench["CG/S"])
	}
	for _, b := range []string{"MG/S", "LU/W", "PENNANT/leblanc"} {
		if byBench[b].HasUnique {
			t.Fatalf("%s should have no unique computation", b)
		}
	}
	// Bigger inputs shrink the fraction for CG and MiniFE (paper trend).
	if byBench["MiniFE/300"].UniqueFraction >= byBench["MiniFE/30"].UniqueFraction {
		t.Fatalf("MiniFE fraction did not shrink: %v vs %v",
			byBench["MiniFE/300"].UniqueFraction, byBench["MiniFE/30"].UniqueFraction)
	}
	var buf bytes.Buffer
	RenderTable1(&buf, rows)
	if !strings.Contains(buf.String(), "No parallel-unique comp") {
		t.Fatalf("render output:\n%s", buf.String())
	}
}

func TestPropagationPipeline(t *testing.T) {
	s := tiny(t)
	r, err := Propagation(s, "PENNANT", 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.SmallProfile) != 4 || len(r.LargeProfile) != 8 || len(r.Grouped) != 4 {
		t.Fatalf("profile shapes wrong: %+v", r)
	}
	if r.Cosine < 0 || r.Cosine > 1.0001 {
		t.Fatalf("cosine = %g", r.Cosine)
	}
	var buf bytes.Buffer
	RenderPropagation(&buf, r)
	if !strings.Contains(buf.String(), "grouped") {
		t.Fatal("render missing grouped panel")
	}
}

func TestFig3Pipeline(t *testing.T) {
	s := tiny(t)
	r, err := Fig3(s, "PENNANT", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.SerialSuccess) != 4 {
		t.Fatalf("serial series length %d", len(r.SerialSuccess))
	}
	for x, v := range r.SerialSuccess {
		if v < 0 || v > 1 {
			t.Fatalf("serial success[%d] = %g", x, v)
		}
	}
	var buf bytes.Buffer
	RenderFig3(&buf, r)
	if !strings.Contains(buf.String(), "variance") {
		t.Fatal("render missing variance line")
	}
}

func TestPredictPipeline(t *testing.T) {
	s := tiny(t)
	// Predict 8 ranks from serial + 4 ranks (scaled-down Figure 5).
	row, err := PredictOne(s, "PENNANT", "", 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if row.Error < 0 || row.Error > 1 {
		t.Fatalf("error = %g", row.Error)
	}
	if row.Measured.N == 0 || row.Predicted.Success < 0 {
		t.Fatalf("row = %+v", row)
	}
}

func TestPredictAllAndRender(t *testing.T) {
	s := tiny(t)
	rows, err := PredictAll(s, []string{"PENNANT", "LU"}, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	avg, max := SummarizeErrors(rows)
	if avg > max || max > 1 {
		t.Fatalf("avg %g max %g", avg, max)
	}
	var buf bytes.Buffer
	RenderPredictions(&buf, rows)
	if !strings.Contains(buf.String(), "average error") {
		t.Fatal("render missing summary")
	}
}

func TestFig8Pipeline(t *testing.T) {
	s := tiny(t)
	points, err := Fig8(s, []string{"PENNANT"}, []int{2, 4}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("%d points", len(points))
	}
	for _, p := range points {
		if p.RMSE < 0 || p.RMSE > 1 {
			t.Fatalf("RMSE = %g", p.RMSE)
		}
		if p.NormalizedTime() <= 0 {
			t.Fatalf("normalized time = %g", p.NormalizedTime())
		}
	}
	var buf bytes.Buffer
	RenderFig8(&buf, points)
	if !strings.Contains(buf.String(), "RMSE") {
		t.Fatal("render missing RMSE column")
	}
}

func TestSessionCaching(t *testing.T) {
	s := tiny(t)
	a, err := Propagation(s, "PENNANT", 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Re-running must hit the cache and return identical values.
	b, err := Propagation(s, "PENNANT", 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.SmallProfile {
		if a.SmallProfile[i] != b.SmallProfile[i] {
			t.Fatal("cache returned different results")
		}
	}
	if len(s.camps) == 0 || len(s.goldens) == 0 {
		t.Fatal("session caches empty")
	}
}

func TestPropagationGroupingErrors(t *testing.T) {
	s := tiny(t)
	// 3 does not divide 8: grouping must fail cleanly.
	if _, err := Propagation(s, "PENNANT", 3, 8); err == nil {
		t.Fatal("indivisible grouping accepted")
	}
	if _, err := Propagation(s, "not-an-app", 4, 8); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestPredictOneUnknownApp(t *testing.T) {
	if _, err := PredictOne(tiny(t), "nope", "", 4, 8); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestFig3UnknownApp(t *testing.T) {
	if _, err := Fig3(tiny(t), "nope", 4); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestScaleSweep(t *testing.T) {
	s := tiny(t)
	rows, err := ScaleSweep(s, "PENNANT", "", 2, []int{4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Large != 4 || rows[1].Large != 8 {
		t.Fatalf("rows = %+v", rows)
	}
	var buf bytes.Buffer
	RenderScaleSweep(&buf, rows)
	if !strings.Contains(buf.String(), "extrapolation depth") {
		t.Fatal("render missing header")
	}
	if _, err := ScaleSweep(s, "PENNANT", "", 3, []int{4}); err == nil {
		t.Fatal("non-multiple target accepted")
	}
}
