package exper

import (
	"fmt"
	"io"
)

// ScaleSweep predicts a series of growing target scales from one fixed
// small scale — the extrapolation-depth study the paper's Figure 7 samples
// at a single point (128 ranks).  It answers: how far can the same
// serial + small-scale inputs carry before accuracy degrades?
func ScaleSweep(s *Session, name, class string, small int, larges []int) ([]PredictionRow, error) {
	if len(larges) == 0 {
		larges = []int{16, 32, 64}
	}
	rows := make([]PredictionRow, 0, len(larges))
	for _, large := range larges {
		if large%small != 0 {
			return nil, fmt.Errorf("exper: scale sweep target %d not a multiple of small %d",
				large, small)
		}
		row, err := PredictOne(s, name, class, small, large)
		if err != nil {
			return nil, err
		}
		rows = append(rows, *row)
	}
	return rows, nil
}

// RenderScaleSweep prints the sweep.
func RenderScaleSweep(w io.Writer, rows []PredictionRow) {
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "%s: extrapolation depth from serial + %d ranks\n",
		rows[0].Bench, rows[0].Small)
	fmt.Fprintf(w, "  %-8s %-10s %-10s %s\n", "target", "measured", "predicted", "error")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-8d %-10s %-10s %s\n",
			r.Large, fmtPct(r.Measured.Success), fmtPct(r.Predicted.Success), fmtPct(r.Error))
	}
}
