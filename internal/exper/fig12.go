package exper

import (
	"fmt"
	"io"
	"strings"

	"resmod/internal/faultsim"
	"resmod/internal/stats"
)

// PropagationResult reproduces one of the paper's Figure 1/2 panels: the
// error-propagation histograms of one benchmark at the small and large
// scale, plus the grouped large-scale histogram.
type PropagationResult struct {
	Bench string
	Class string
	Small int
	Large int
	// SmallProfile[x-1] is the fraction of tests contaminating x ranks in
	// the small-scale execution (Figure 1a).
	SmallProfile []float64
	// LargeProfile is the same for the large scale (Figure 1b).
	LargeProfile []float64
	// Grouped is the large-scale profile aggregated into len(SmallProfile)
	// groups (Figure 1c).
	Grouped []float64
	// Cosine is the similarity between SmallProfile and Grouped.
	Cosine float64
}

// Propagation profiles error propagation for one benchmark (Figure 1 is
// CG with small=8, Figure 2 is FT with small=8).
func Propagation(s *Session, name string, small, large int) (*PropagationResult, error) {
	list, err := resolveApps([]string{name})
	if err != nil {
		return nil, err
	}
	a := list[0]
	class := a.DefaultClass()
	sc, err := s.Campaign(a, class, small, 1, faultsim.AnyRegion)
	if err != nil {
		return nil, err
	}
	lc, err := s.Campaign(a, class, large, 1, faultsim.AnyRegion)
	if err != nil {
		return nil, err
	}
	grouped, err := lc.Hist.Group(small)
	if err != nil {
		return nil, err
	}
	smallProf := sc.Hist.Probabilities()
	cos, err := stats.Cosine(smallProf, grouped)
	if err != nil {
		return nil, err
	}
	return &PropagationResult{
		Bench: a.Name(), Class: class, Small: small, Large: large,
		SmallProfile: smallProf,
		LargeProfile: lc.Hist.Probabilities(),
		Grouped:      grouped,
		Cosine:       cos,
	}, nil
}

// RenderPropagation prints the three panels as text bar charts.
func RenderPropagation(w io.Writer, r *PropagationResult) {
	fmt.Fprintf(w, "%s (%s): error propagation, %d vs %d ranks (cosine %.3f)\n",
		r.Bench, r.Class, r.Small, r.Large, r.Cosine)
	fmt.Fprintf(w, "(a) small scale (%d ranks):\n", r.Small)
	renderBars(w, r.SmallProfile, 1)
	fmt.Fprintf(w, "(b) large scale (%d ranks), non-zero bins:\n", r.Large)
	renderBars(w, r.LargeProfile, 1)
	fmt.Fprintf(w, "(c) large scale grouped into %d groups:\n", r.Small)
	renderBars(w, r.Grouped, r.Large/r.Small)
}

// renderBars prints a sparse textual bar chart; width is the number of
// propagation cases each bin aggregates.
func renderBars(w io.Writer, probs []float64, width int) {
	for i, p := range probs {
		if p == 0 {
			continue
		}
		label := fmt.Sprintf("%d", i+1)
		if width > 1 {
			label = fmt.Sprintf("%d-%d", i*width+1, (i+1)*width)
		}
		fmt.Fprintf(w, "  %8s | %-50s %s\n", label,
			strings.Repeat("#", int(p*50+0.5)), fmtPct(p))
	}
}
