// Package exper contains the evaluation drivers that regenerate every
// table and figure of the paper: Table 1 (parallel-unique computation),
// Table 2 (propagation cosine similarity), Figures 1–2 (propagation
// histograms), Figure 3 (serial-vs-parallel resilience characterization),
// Figures 5–7 (prediction accuracy at 64 and 128 ranks) and Figure 8
// (accuracy/cost sensitivity).  The drivers are shared by the resmod CLI
// and the benchmark harness.
package exper

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"resmod/internal/apps"
	"resmod/internal/faultsim"
	"resmod/internal/telemetry"
)

// Config tunes an evaluation session.
type Config struct {
	// Trials per fault injection deployment (the paper uses 4000; smaller
	// values trade statistical tightness for speed).
	Trials int
	// Seed drives every campaign deterministically.
	Seed uint64
	// Timeout is the per-test hang budget.
	Timeout time.Duration
	// Workers is the per-campaign trial concurrency.  It also sizes the
	// session's shared worker-token budget: no matter how many campaigns
	// execute concurrently (see CampaignParallel), their combined
	// in-flight trials never exceed this many (GOMAXPROCS when zero), so
	// campaign-level parallelism composes with trial-level parallelism
	// without oversubscribing the machine.
	Workers int
	// CampaignParallel is the number of campaigns the session may execute
	// concurrently.  Non-positive selects GOMAXPROCS; 1 restores strictly
	// sequential campaign execution.  Each campaign is deterministic in
	// (Campaign, Seed) and the shared worker budget only throttles
	// scheduling, so results are bit-identical at every setting.
	CampaignParallel int
	// Log, when non-nil, receives progress events.  It is a compatibility
	// bridge: when Ctx carries no telemetry bundle, the session builds an
	// info-level structured logger writing here.  A telemetry bundle on
	// Ctx (see internal/telemetry.With) always wins, and is the richer
	// interface — events, trace spans, and engine metrics.
	Log io.Writer
	// Ctx, when non-nil, cancels in-flight campaigns and golden runs —
	// the CLI passes its SIGINT/SIGTERM context here so experiments stop
	// promptly instead of running their remaining deployments to
	// completion.
	Ctx context.Context
	// Budget bounds each campaign's wall time (zero = none).  A campaign
	// that exhausts it is treated as interrupted and fails the
	// experiment.
	Budget time.Duration
	// Cache, when non-nil, is a durable campaign-summary cache consulted
	// before a campaign runs and updated after every clean, complete run
	// (interrupted or failed campaigns are never cached).  Entries are
	// keyed by the campaign's versioned Identity, so a summary restored
	// from the cache is bit-identical to re-running the deployment.  The
	// prediction service wires internal/store here, making identical
	// campaigns compute once ever rather than once per process.
	Cache SummaryCache
	// Distribute, when non-nil, is the distributed-execution hook: given
	// a campaign (cache-missed, slot-held) and its golden, it may execute
	// the campaign elsewhere — e.g. sharded across the dist pool's worker
	// nodes — and return (summary, true, err).  Returning handled=false
	// (no workers registered) falls back to plain local execution.  The
	// hook must preserve the engine's determinism contract: the summary
	// for a campaign identity is bit-identical however it was executed,
	// which is what lets distributed results share the durable Cache and
	// checkpoint keyspace with local runs.
	Distribute func(ctx context.Context, c faultsim.Campaign, golden *faultsim.Golden) (*faultsim.Summary, bool, error)
	// OnCampaign, when non-nil, is called once for every campaign the
	// session actually executes, with its identity key and summary.
	// Cache hits — the in-process singleflight or the durable Cache —
	// do not invoke it, which is exactly what lets the serve metrics
	// count real fault-injection work (executed campaigns and trials)
	// separately from cached answers.
	OnCampaign func(identity string, sum *faultsim.Summary)
}

// SummaryCache is a durable store of campaign summaries keyed by
// faultsim.Campaign.Identity().  Implementations must be safe for
// concurrent use and treat corrupt or mismatched entries as misses.
type SummaryCache interface {
	// GetSummary returns the cached summary for the identity, if any.
	GetSummary(identity string) (*faultsim.Summary, bool)
	// PutSummary stores a complete summary under the identity.
	// Implementations may drop entries (bounded caches, write errors);
	// the cache is an accelerator, never the source of truth.
	PutSummary(identity string, sum *faultsim.Summary)
}

func (c Config) withDefaults() Config {
	if c.Trials <= 0 {
		c.Trials = 400
	}
	if c.Timeout <= 0 {
		c.Timeout = apps.DefaultTimeout
	}
	if c.CampaignParallel <= 0 {
		c.CampaignParallel = runtime.GOMAXPROCS(0)
	}
	return c
}

// Session caches golden runs and campaign summaries so that experiments
// sharing deployments (e.g. the serial curves of Figures 5, 6 and 8) run
// them once.  Concurrent callers asking for the same golden or campaign
// share a single in-flight computation (per-key singleflight) instead of
// computing it twice.
//
// Campaign executions are additionally scheduled through two bounds:
// slots caps how many campaigns execute at once (Config.CampaignParallel)
// and pool is the worker-token budget shared by their trial loops
// (Config.Workers tokens), so saturating the campaign slots cannot
// oversubscribe the machine.
type Session struct {
	cfg   Config
	tel   *telemetry.Telemetry
	slots chan struct{}
	pool  *faultsim.WorkerBudget
	// waiting counts campaigns blocked on a slot, for SchedulerStats.
	waiting atomic.Int64

	mu      sync.Mutex
	goldens map[string]*flight[*faultsim.Golden]
	camps   map[string]*flight[*faultsim.Summary]
}

// flight is one singleflight slot.  The computation runs in its own
// goroutine under a context detached from any single caller: it derives
// from the session's base context (so session shutdown still cancels it)
// and is cancelled only when the last interested waiter gives up.  This
// is what lets a later caller that deduped onto an in-flight computation
// survive the first caller's cancellation.
type flight[T any] struct {
	done    chan struct{} // closed after val/err are set
	val     T
	err     error
	waiters int // guarded by Session.mu
	cancel  context.CancelFunc
}

// join is the singleflight entry: it attaches to the in-flight
// computation for key, starting one (under run) if none exists.  Each
// caller waits on its own ctx; the last waiter to abandon the flight
// cancels the shared computation and clears the slot so a later caller
// can retry.
func join[T any](s *Session, ctx context.Context, m map[string]*flight[T], key string,
	run func(ctx context.Context) (T, error)) (T, error) {
	s.mu.Lock()
	f := m[key]
	if f == nil {
		f = &flight[T]{done: make(chan struct{}), waiters: 1}
		// The shared computation keeps the first caller's telemetry
		// bundle (its tracer owns the campaign spans) and request ID
		// (dispatch headers carry it to workers) but not its
		// cancellation: it must outlive any individual waiter.
		runCtx, cancel := context.WithCancel(telemetry.WithRequestID(
			telemetry.With(s.baseCtx(), telemetry.From(ctx)), telemetry.RequestID(ctx)))
		f.cancel = cancel
		m[key] = f
		go func() {
			defer cancel()
			f.val, f.err = run(runCtx)
			if f.err != nil {
				// Drop the failed slot so a later caller can retry
				// (e.g. after a transient cancellation).  Waiters
				// already attached still observe the error.
				s.mu.Lock()
				if m[key] == f {
					delete(m, key)
				}
				s.mu.Unlock()
			}
			close(f.done)
		}()
	} else {
		f.waiters++
	}
	s.mu.Unlock()

	select {
	case <-f.done:
		s.mu.Lock()
		f.waiters--
		s.mu.Unlock()
		return f.val, f.err
	case <-ctx.Done():
		s.mu.Lock()
		f.waiters--
		abandoned := f.waiters == 0
		if abandoned && m[key] == f {
			// Clear the slot immediately so callers arriving between
			// this cancellation and the computation's exit start a
			// fresh flight instead of inheriting a doomed one.
			delete(m, key)
		}
		s.mu.Unlock()
		if abandoned {
			f.cancel()
		}
		var zero T
		return zero, ctx.Err()
	}
}

// NewSession creates a session.  Its telemetry bundle comes from
// Config.Ctx when present, falling back to an info-level logger over
// Config.Log (the legacy progress-writer interface), else to the nop
// bundle.
func NewSession(cfg Config) *Session {
	cfg = cfg.withDefaults()
	tel, ok := telemetry.FromContext(cfg.Ctx)
	if !ok {
		if cfg.Log != nil {
			tel = telemetry.New(telemetry.NewLogger(cfg.Log, slog.LevelInfo), nil, nil)
		} else {
			tel = telemetry.Nop()
		}
	}
	return &Session{
		cfg:     cfg,
		tel:     tel,
		slots:   make(chan struct{}, cfg.CampaignParallel),
		pool:    faultsim.NewWorkerBudget(cfg.Workers),
		goldens: make(map[string]*flight[*faultsim.Golden]),
		camps:   make(map[string]*flight[*faultsim.Summary]),
	}
}

// Config returns the session's effective configuration.
func (s *Session) Config() Config { return s.cfg }

// Context returns the session's cancellation context, guaranteed to
// carry the session's telemetry bundle.
func (s *Session) Context() context.Context {
	return telemetry.With(s.baseCtx(), s.tel)
}

// baseCtx returns the configured cancellation context without forcing
// the session's telemetry onto it (ctx-variant entry points keep the
// caller's bundle).
func (s *Session) baseCtx() context.Context {
	if s.cfg.Ctx != nil {
		return s.cfg.Ctx
	}
	return context.Background()
}

// telemetryCtx ensures ctx carries a telemetry bundle: the caller's own
// when present, the session's otherwise.
func (s *Session) telemetryCtx(ctx context.Context) context.Context {
	if _, ok := telemetry.FromContext(ctx); ok {
		return ctx
	}
	return telemetry.With(ctx, s.tel)
}

// Golden returns (computing and caching on first use) the fault-free run.
func (s *Session) Golden(app apps.App, class string, procs int) (*faultsim.Golden, error) {
	return s.GoldenCtx(s.Context(), app, class, procs)
}

// GoldenCtx is Golden under a caller-supplied context: cancellation and
// telemetry (spans, events, metrics) follow ctx.  Under the per-key
// singleflight the shared computation carries the first caller's
// telemetry but stays alive while any waiter's context is.
func (s *Session) GoldenCtx(ctx context.Context, app apps.App, class string, procs int) (*faultsim.Golden, error) {
	ctx = s.telemetryCtx(ctx)
	if class == "" {
		class = app.DefaultClass()
	}
	key := fmt.Sprintf("%s/%s/p%d", app.Name(), class, procs)
	return join(s, ctx, s.goldens, key, func(runCtx context.Context) (*faultsim.Golden, error) {
		// A golden run occupies the machine like one in-flight trial;
		// under campaign-level concurrency it draws from the same
		// worker budget so N campaigns warming up don't oversubscribe.
		if err := s.pool.Acquire(runCtx); err != nil {
			return nil, err
		}
		defer s.pool.Release()
		return faultsim.ComputeGoldenCtx(runCtx, app, class, procs, s.cfg.Timeout)
	})
}

// Campaign returns (running and caching on first use) a deployment summary.
// An interrupted campaign (session context canceled, or per-campaign
// Budget exhausted) is not cached and is reported as an error carrying the
// partial progress, so experiment drivers stop promptly.
func (s *Session) Campaign(app apps.App, class string, procs, errors int, region faultsim.RegionMode) (*faultsim.Summary, error) {
	return s.CampaignCtx(s.Context(), app, class, procs, errors, region)
}

// CampaignCtx is Campaign under a caller-supplied context: cancellation
// and telemetry follow ctx.  Under the singleflight the shared run
// carries the first caller's telemetry but stays alive while any
// waiter's context is, so cancelling one deduped caller never spuriously
// fails the others.
func (s *Session) CampaignCtx(ctx context.Context, app apps.App, class string, procs, errors int, region faultsim.RegionMode) (*faultsim.Summary, error) {
	ctx = s.telemetryCtx(ctx)
	c := faultsim.Campaign{
		App: app, Class: class, Procs: procs, Trials: s.cfg.Trials,
		Errors: errors, Region: region, Seed: s.cfg.Seed,
		Timeout: s.cfg.Timeout, Workers: s.cfg.Workers,
		Budget: s.cfg.Budget, Pool: s.pool,
	}.Normalized()
	// The singleflight key is the campaign's durable identity, so the
	// in-process cache, checkpoints and Config.Cache all share one
	// keyspace.
	key := c.Identity()
	return join(s, ctx, s.camps, key, func(runCtx context.Context) (*faultsim.Summary, error) {
		return s.runCampaign(runCtx, key, c)
	})
}

// runCampaign executes one deployment for Campaign's singleflight slot:
// durable-cache probe first, then — holding one of the session's
// campaign-parallel slots — the real fault-injection run.  Cache hits
// bypass the slot entirely; only real executions occupy it.
func (s *Session) runCampaign(ctx context.Context, key string, c faultsim.Campaign) (*faultsim.Summary, error) {
	tel := telemetry.From(ctx)
	if s.cfg.Cache != nil {
		if sum, ok := s.cfg.Cache.GetSummary(key); ok {
			tel.Logger().Info("campaign cache hit",
				"campaign", key, "rates", sum.Rates.String())
			return sum, nil
		}
	}
	s.waiting.Add(1)
	select {
	case s.slots <- struct{}{}:
		s.waiting.Add(-1)
	case <-ctx.Done():
		s.waiting.Add(-1)
		return nil, ctx.Err()
	}
	defer func() { <-s.slots }()
	golden, err := s.GoldenCtx(ctx, c.App, c.Class, c.Procs)
	if err != nil {
		return nil, err
	}
	var sum *faultsim.Summary
	if s.cfg.Distribute != nil {
		dsum, handled, derr := s.cfg.Distribute(ctx, c, golden)
		if handled {
			if derr != nil {
				return nil, fmt.Errorf("exper: campaign %s: %w", key, derr)
			}
			sum = dsum
		}
	}
	if sum == nil {
		sum, err = faultsim.RunAgainstCtx(ctx, c, golden)
		if err != nil {
			return nil, fmt.Errorf("exper: campaign %s: %w", key, err)
		}
		if sum.Interrupted {
			return sum, fmt.Errorf("exper: campaign %s interrupted after %d/%d trials",
				key, sum.TrialsDone, s.cfg.Trials)
		}
	}
	if s.cfg.OnCampaign != nil {
		s.cfg.OnCampaign(key, sum)
	}
	if s.cfg.Cache != nil {
		s.cfg.Cache.PutSummary(key, sum)
	}
	return sum, nil
}

// PaperBenchmarks are the six applications the paper evaluates, in its
// presentation order.  Experiments default to them; extension benchmarks
// (e.g. EP) participate only when named explicitly.
var PaperBenchmarks = []string{"CG", "FT", "MG", "LU", "MiniFE", "PENNANT"}

// resolveApps maps names to registered apps (the paper's six when empty).
func resolveApps(names []string) ([]apps.App, error) {
	if len(names) == 0 {
		names = PaperBenchmarks
	}
	out := make([]apps.App, len(names))
	for i, n := range names {
		a, err := apps.Lookup(n)
		if err != nil {
			return nil, err
		}
		out[i] = a
	}
	return out, nil
}

// fmtPct renders a probability as the paper's percentage style.
func fmtPct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
