// Package exper contains the evaluation drivers that regenerate every
// table and figure of the paper: Table 1 (parallel-unique computation),
// Table 2 (propagation cosine similarity), Figures 1–2 (propagation
// histograms), Figure 3 (serial-vs-parallel resilience characterization),
// Figures 5–7 (prediction accuracy at 64 and 128 ranks) and Figure 8
// (accuracy/cost sensitivity).  The drivers are shared by the resmod CLI
// and the benchmark harness.
package exper

import (
	"fmt"
	"io"
	"sync"
	"time"

	"resmod/internal/apps"
	"resmod/internal/faultsim"
)

// Config tunes an evaluation session.
type Config struct {
	// Trials per fault injection deployment (the paper uses 4000; smaller
	// values trade statistical tightness for speed).
	Trials int
	// Seed drives every campaign deterministically.
	Seed uint64
	// Timeout is the per-test hang budget.
	Timeout time.Duration
	// Workers is the per-campaign trial concurrency.
	Workers int
	// Log, when non-nil, receives progress lines.
	Log io.Writer
}

func (c Config) withDefaults() Config {
	if c.Trials <= 0 {
		c.Trials = 400
	}
	if c.Timeout <= 0 {
		c.Timeout = apps.DefaultTimeout
	}
	return c
}

// Session caches golden runs and campaign summaries so that experiments
// sharing deployments (e.g. the serial curves of Figures 5, 6 and 8) run
// them once.
type Session struct {
	cfg Config

	mu      sync.Mutex
	goldens map[string]*faultsim.Golden
	camps   map[string]*faultsim.Summary
}

// NewSession creates a session.
func NewSession(cfg Config) *Session {
	return &Session{
		cfg:     cfg.withDefaults(),
		goldens: make(map[string]*faultsim.Golden),
		camps:   make(map[string]*faultsim.Summary),
	}
}

// Config returns the session's effective configuration.
func (s *Session) Config() Config { return s.cfg }

func (s *Session) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		fmt.Fprintf(s.cfg.Log, format+"\n", args...)
	}
}

// Golden returns (computing and caching on first use) the fault-free run.
func (s *Session) Golden(app apps.App, class string, procs int) (*faultsim.Golden, error) {
	if class == "" {
		class = app.DefaultClass()
	}
	key := fmt.Sprintf("%s/%s/p%d", app.Name(), class, procs)
	s.mu.Lock()
	g, ok := s.goldens[key]
	s.mu.Unlock()
	if ok {
		return g, nil
	}
	g, err := faultsim.ComputeGolden(app, class, procs, s.cfg.Timeout)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.goldens[key] = g
	s.mu.Unlock()
	return g, nil
}

// Campaign returns (running and caching on first use) a deployment summary.
func (s *Session) Campaign(app apps.App, class string, procs, errors int, region faultsim.RegionMode) (*faultsim.Summary, error) {
	if class == "" {
		class = app.DefaultClass()
	}
	key := fmt.Sprintf("%s/%s/p%d/e%d/r%d/t%d", app.Name(), class, procs, errors,
		int(region), s.cfg.Trials)
	s.mu.Lock()
	sum, ok := s.camps[key]
	s.mu.Unlock()
	if ok {
		return sum, nil
	}
	golden, err := s.Golden(app, class, procs)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	sum, err = faultsim.RunAgainst(faultsim.Campaign{
		App: app, Class: class, Procs: procs, Trials: s.cfg.Trials,
		Errors: errors, Region: region, Seed: s.cfg.Seed,
		Timeout: s.cfg.Timeout, Workers: s.cfg.Workers,
	}, golden)
	if err != nil {
		return nil, fmt.Errorf("exper: campaign %s: %w", key, err)
	}
	s.logf("campaign %-28s %s  [%v]", key, sum.Rates, time.Since(start).Round(time.Millisecond))
	s.mu.Lock()
	s.camps[key] = sum
	s.mu.Unlock()
	return sum, nil
}

// PaperBenchmarks are the six applications the paper evaluates, in its
// presentation order.  Experiments default to them; extension benchmarks
// (e.g. EP) participate only when named explicitly.
var PaperBenchmarks = []string{"CG", "FT", "MG", "LU", "MiniFE", "PENNANT"}

// resolveApps maps names to registered apps (the paper's six when empty).
func resolveApps(names []string) ([]apps.App, error) {
	if len(names) == 0 {
		names = PaperBenchmarks
	}
	out := make([]apps.App, len(names))
	for i, n := range names {
		a, err := apps.Lookup(n)
		if err != nil {
			return nil, err
		}
		out[i] = a
	}
	return out, nil
}

// fmtPct renders a probability as the paper's percentage style.
func fmtPct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
