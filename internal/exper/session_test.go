package exper

import (
	"sync"
	"sync/atomic"
	"testing"

	"resmod/internal/apps"
	"resmod/internal/fpe"
	"resmod/internal/simmpi"
)

// countingApp counts rank executions so tests can assert how many times the
// session actually ran the application.
type countingApp struct{ runs *atomic.Int64 }

func (countingApp) Name() string               { return "session-counting-test" }
func (countingApp) Classes() []string          { return []string{"X"} }
func (countingApp) DefaultClass() string       { return "X" }
func (countingApp) MaxProcs(string) int        { return 8 }
func (countingApp) Verify(g, c []float64) bool { return apps.VerifyRel(g, c, 1e-12) }

func (a countingApp) Run(fc *fpe.Ctx, comm *simmpi.Comm, class string) (apps.RankOutput, error) {
	a.runs.Add(1)
	s := 0.0
	for i := 0; i < 200; i++ {
		s = fc.Add(s, float64(i))
	}
	return apps.RankOutput{State: []float64{s}, Check: []float64{s}}, nil
}

func TestGoldenSingleflight(t *testing.T) {
	var runs atomic.Int64
	app := countingApp{runs: &runs}
	s := NewSession(Config{Trials: 4, Seed: 1})

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Golden(app, "", 1); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	// Eight concurrent requests for the same golden share one execution.
	if got := runs.Load(); got != 1 {
		t.Fatalf("golden executed %d times, want 1", got)
	}
}

func TestCampaignSingleflight(t *testing.T) {
	var runs atomic.Int64
	app := countingApp{runs: &runs}
	s := NewSession(Config{Trials: 5, Seed: 1})

	var wg sync.WaitGroup
	sums := make([]any, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sum, err := s.Campaign(app, "", 1, 1, 0)
			if err != nil {
				t.Error(err)
				return
			}
			sums[i] = sum
		}(i)
	}
	wg.Wait()
	// One golden + five trials, once — not twice.
	if got := runs.Load(); got != 6 {
		t.Fatalf("app executed %d times, want 6 (1 golden + 5 trials, shared)", got)
	}
	if sums[0] != sums[1] {
		t.Fatal("concurrent callers did not share the cached summary")
	}
}
