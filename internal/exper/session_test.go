package exper

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"resmod/internal/apps"
	"resmod/internal/faultsim"
	"resmod/internal/fpe"
	"resmod/internal/simmpi"
)

// countingApp counts rank executions so tests can assert how many times the
// session actually ran the application.
type countingApp struct{ runs *atomic.Int64 }

func (countingApp) Name() string               { return "session-counting-test" }
func (countingApp) Classes() []string          { return []string{"X"} }
func (countingApp) DefaultClass() string       { return "X" }
func (countingApp) MaxProcs(string) int        { return 8 }
func (countingApp) Verify(g, c []float64) bool { return apps.VerifyRel(g, c, 1e-12) }

func (a countingApp) Run(fc *fpe.Ctx, comm *simmpi.Comm, class string) (apps.RankOutput, error) {
	a.runs.Add(1)
	s := 0.0
	for i := 0; i < 200; i++ {
		s = fc.Add(s, float64(i))
	}
	return apps.RankOutput{State: []float64{s}, Check: []float64{s}}, nil
}

func TestGoldenSingleflight(t *testing.T) {
	var runs atomic.Int64
	app := countingApp{runs: &runs}
	s := NewSession(Config{Trials: 4, Seed: 1})

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Golden(app, "", 1); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	// Eight concurrent requests for the same golden share one execution.
	if got := runs.Load(); got != 1 {
		t.Fatalf("golden executed %d times, want 1", got)
	}
}

// memCache is a trivial SummaryCache for tests.
type memCache struct {
	mu   sync.Mutex
	m    map[string]*faultsim.Summary
	puts int
	gets int
}

func newMemCache() *memCache { return &memCache{m: map[string]*faultsim.Summary{}} }

func (c *memCache) GetSummary(id string) (*faultsim.Summary, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gets++
	s, ok := c.m[id]
	return s, ok
}

func (c *memCache) PutSummary(id string, s *faultsim.Summary) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.puts++
	c.m[id] = s
}

// TestCampaignDurableCache checks the Config.Cache seam: a second session
// sharing the cache answers from it (no application executions, no
// OnCampaign callback), and the identity-keyed entry round-trips the same
// summary.
func TestCampaignDurableCache(t *testing.T) {
	var runs atomic.Int64
	app := countingApp{runs: &runs}
	cache := newMemCache()

	var executed atomic.Int64
	cold := NewSession(Config{Trials: 5, Seed: 1, Cache: cache,
		OnCampaign: func(id string, sum *faultsim.Summary) {
			if sum.TrialsDone != 5 {
				t.Errorf("OnCampaign saw %d trials, want 5", sum.TrialsDone)
			}
			executed.Add(1)
		}})
	first, err := cold.Campaign(app, "", 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if executed.Load() != 1 || cache.puts != 1 {
		t.Fatalf("cold run: executed=%d puts=%d, want 1/1", executed.Load(), cache.puts)
	}
	coldRuns := runs.Load()

	// A fresh session (new process, same durable cache) must not re-run
	// anything and must not report an executed campaign.
	warm := NewSession(Config{Trials: 5, Seed: 1, Cache: cache,
		OnCampaign: func(string, *faultsim.Summary) { executed.Add(1) }})
	second, err := warm.Campaign(app, "", 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if executed.Load() != 1 {
		t.Fatal("cache hit still invoked OnCampaign")
	}
	if runs.Load() != coldRuns {
		t.Fatalf("cache hit re-ran the application (%d -> %d executions)",
			coldRuns, runs.Load())
	}
	if second.Rates != first.Rates || second.TrialsDone != first.TrialsDone {
		t.Fatalf("cached summary differs: %+v vs %+v", second.Rates, first.Rates)
	}
}

// TestCampaignConcurrentSubmissions proves (under -race) that N identical
// concurrent campaign requests execute the deployment exactly once and
// write the durable cache exactly once.
func TestCampaignConcurrentSubmissions(t *testing.T) {
	var runs, executed atomic.Int64
	app := countingApp{runs: &runs}
	cache := newMemCache()
	s := NewSession(Config{Trials: 5, Seed: 1, Cache: cache,
		OnCampaign: func(string, *faultsim.Summary) { executed.Add(1) }})

	const n = 16
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Campaign(app, "", 1, 1, 0); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if executed.Load() != 1 {
		t.Fatalf("%d identical submissions executed %d campaigns, want exactly 1",
			n, executed.Load())
	}
	if cache.puts != 1 {
		t.Fatalf("cache written %d times, want 1", cache.puts)
	}
	// 1 golden + 5 trials, shared by all 16 submissions.
	if got := runs.Load(); got != 6 {
		t.Fatalf("app executed %d times, want 6", got)
	}
}

// gatedApp blocks its first execution (the golden run) until gate is
// closed, signalling started, so tests can interleave callers with a
// campaign that is reliably in flight.
type gatedApp struct {
	runs    *atomic.Int64
	once    *sync.Once
	started chan struct{}
	gate    chan struct{}
}

func newGatedApp() gatedApp {
	return gatedApp{
		runs: &atomic.Int64{}, once: &sync.Once{},
		started: make(chan struct{}), gate: make(chan struct{}),
	}
}

func (gatedApp) Name() string               { return "session-gated-test" }
func (gatedApp) Classes() []string          { return []string{"X"} }
func (gatedApp) DefaultClass() string       { return "X" }
func (gatedApp) MaxProcs(string) int        { return 8 }
func (gatedApp) Verify(g, c []float64) bool { return apps.VerifyRel(g, c, 1e-12) }

func (a gatedApp) Run(fc *fpe.Ctx, comm *simmpi.Comm, class string) (apps.RankOutput, error) {
	a.runs.Add(1)
	first := false
	a.once.Do(func() { first = true })
	if first {
		close(a.started)
		<-a.gate
	}
	s := 0.0
	for i := 0; i < 200; i++ {
		s = fc.Add(s, float64(i))
	}
	return apps.RankOutput{State: []float64{s}, Check: []float64{s}}, nil
}

// TestSingleflightSurvivesFirstCallerCancel is the satellite-2 regression:
// the shared computation used to run under the first caller's context, so
// cancelling that caller spuriously failed every deduped waiter.  Now the
// flight must stay alive while any waiter remains.
func TestSingleflightSurvivesFirstCallerCancel(t *testing.T) {
	app := newGatedApp()
	var executed atomic.Int64
	s := NewSession(Config{Trials: 5, Seed: 1,
		OnCampaign: func(string, *faultsim.Summary) { executed.Add(1) }})

	ctxA, cancelA := context.WithCancel(context.Background())
	defer cancelA()
	errA := make(chan error, 1)
	go func() {
		_, err := s.CampaignCtx(ctxA, app, "", 1, 1, 0)
		errA <- err
	}()
	<-app.started // A's flight is now executing the golden run

	type res struct {
		sum *faultsim.Summary
		err error
	}
	resB := make(chan res, 1)
	go func() {
		sum, err := s.CampaignCtx(context.Background(), app, "", 1, 1, 0)
		resB <- res{sum, err}
	}()
	// Wait until B has actually joined the flight (2 waiters) so the
	// cancellation below reliably leaves a surviving waiter behind.
	joined := false
	for i := 0; i < 2000 && !joined; i++ {
		s.mu.Lock()
		for _, f := range s.camps {
			joined = f.waiters >= 2
		}
		s.mu.Unlock()
		if !joined {
			time.Sleep(time.Millisecond)
		}
	}
	if !joined {
		t.Fatal("second caller never joined the in-flight campaign")
	}

	cancelA()
	if err := <-errA; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled caller got %v, want context.Canceled", err)
	}
	select {
	case r := <-resB:
		t.Fatalf("waiter returned before the computation finished: %+v, %v", r.sum, r.err)
	case <-time.After(20 * time.Millisecond):
	}

	close(app.gate)
	r := <-resB
	if r.err != nil {
		t.Fatalf("surviving waiter failed: %v", r.err)
	}
	if r.sum == nil || r.sum.TrialsDone != 5 {
		t.Fatalf("surviving waiter got %+v", r.sum)
	}
	if executed.Load() != 1 {
		t.Fatalf("campaign executed %d times, want 1", executed.Load())
	}
}

// TestSingleflightAbandonedThenRetried: when every waiter cancels, the
// shared computation is cancelled and the slot cleared, so a later caller
// starts fresh and succeeds.
func TestSingleflightAbandonedThenRetried(t *testing.T) {
	app := newGatedApp()
	s := NewSession(Config{Trials: 5, Seed: 1})

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := s.CampaignCtx(ctx, app, "", 1, 1, 0)
		errc <- err
	}()
	<-app.started
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	// Release the abandoned golden run; the cancelled flight drains.
	close(app.gate)

	// A fresh caller must get a clean, complete summary.
	sum, err := s.Campaign(app, "", 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sum.TrialsDone != 5 || sum.Interrupted {
		t.Fatalf("retried campaign returned %+v", sum)
	}
}

func TestCampaignSingleflight(t *testing.T) {
	var runs atomic.Int64
	app := countingApp{runs: &runs}
	s := NewSession(Config{Trials: 5, Seed: 1})

	var wg sync.WaitGroup
	sums := make([]any, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sum, err := s.Campaign(app, "", 1, 1, 0)
			if err != nil {
				t.Error(err)
				return
			}
			sums[i] = sum
		}(i)
	}
	wg.Wait()
	// One golden + five trials, once — not twice.
	if got := runs.Load(); got != 6 {
		t.Fatalf("app executed %d times, want 6 (1 golden + 5 trials, shared)", got)
	}
	if sums[0] != sums[1] {
		t.Fatal("concurrent callers did not share the cached summary")
	}
}
