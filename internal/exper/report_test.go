package exper

import (
	"bytes"
	"strings"
	"testing"
)

func TestReportEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full report (includes 128-rank deployments) skipped in -short mode")
	}
	s := NewSession(Config{Trials: 5, Seed: 99})
	var buf bytes.Buffer
	if err := Report(s, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"## Table 1", "## Table 2", "## Figures 1–2", "## Figure 3",
		"## Figure 5", "## Figure 6", "## Figure 7", "## Figure 8",
		"paper", "measured",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out[:min(2000, len(out))])
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
