package exper

import (
	"bytes"
	"strings"
	"testing"
)

func TestBaselinesPipeline(t *testing.T) {
	s := tiny(t)
	rows, err := Baselines(s, []string{"PENNANT", "LU"}, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		em, es, eo := r.Errors()
		for _, e := range []float64{em, es, eo} {
			if e < 0 || e > 1 {
				t.Fatalf("error out of range: %+v", r)
			}
		}
	}
	sum := SummarizeBaselines(rows)
	if sum.Model < 0 || sum.Model > 1 {
		t.Fatalf("summary = %+v", sum)
	}
	var buf bytes.Buffer
	RenderBaselines(&buf, rows)
	if !strings.Contains(buf.String(), "serial-only") {
		t.Fatalf("render:\n%s", buf.String())
	}
	if SummarizeBaselines(nil) != (BaselineSummary{}) {
		t.Fatal("empty summary not zero")
	}
}

func TestAblateModelPipeline(t *testing.T) {
	s := tiny(t)
	// CG has a parallel-unique term, so the NoUnique variant can differ.
	ab, err := AblateModel(s, "CG", "", 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{ab.Measured, ab.Full, ab.NoTuning, ab.NoUnique} {
		if v < 0 || v > 1 {
			t.Fatalf("ablation out of range: %+v", ab)
		}
	}
	if ab.Bench != "CG" {
		t.Fatalf("bench = %q", ab.Bench)
	}
}
