package exper

import (
	"context"
	"fmt"
	"io"
	"math"

	"resmod/internal/core"
	"resmod/internal/faultsim"
)

// BaselineRow compares the paper's model against the two naive baselines a
// practitioner would otherwise use for a benchmark's large-scale success
// rate:
//
//   - SerialOnly: the serial single-error fault injection result, i.e.
//     assuming scale does not matter (what pre-paper practice did when a
//     large allocation was unavailable);
//   - SmallOnly: the small-scale deployment's overall result, i.e.
//     assuming the small scale is already representative.
//
// The paper's contribution is precisely the claim that combining the two
// through the propagation profile beats either alone.
type BaselineRow struct {
	Bench      string
	Class      string
	Small      int
	Large      int
	Measured   float64 // measured large-scale success rate
	Model      float64 // the paper's model
	SerialOnly float64
	SmallOnly  float64
}

// Errors returns the absolute errors of the three predictors.
func (r BaselineRow) Errors() (model, serialOnly, smallOnly float64) {
	abs := func(x float64) float64 {
		if x < 0 {
			return -x
		}
		return x
	}
	return abs(r.Model - r.Measured), abs(r.SerialOnly - r.Measured), abs(r.SmallOnly - r.Measured)
}

// Baselines evaluates the model against the naive predictors for every
// named benchmark.
func Baselines(s *Session, names []string, small, large int) ([]BaselineRow, error) {
	list, err := resolveApps(names)
	if err != nil {
		return nil, err
	}
	// One concurrent task per benchmark; within a task the baseline
	// campaigns follow the prediction, whose DAG already ran them (the
	// serial single-error point and the small-scale deployment), so they
	// resolve from the session's singleflight cache.
	rows := make([]BaselineRow, len(list))
	g := newGroup(s.Context())
	for i, a := range list {
		i, a := i, a
		g.Go(func(ctx context.Context) error {
			row, err := PredictOneCtx(ctx, s, a.Name(), "", small, large)
			if err != nil {
				return err
			}
			serial1, err := s.CampaignCtx(ctx, a, "", 1, 1, faultsim.CommonOnly)
			if err != nil {
				return err
			}
			smallSum, err := s.CampaignCtx(ctx, a, "", small, 1, faultsim.AnyRegion)
			if err != nil {
				return err
			}
			rows[i] = BaselineRow{
				Bench: a.Name(), Class: row.Class, Small: small, Large: large,
				Measured:   row.Measured.Success,
				Model:      row.Predicted.Success,
				SerialOnly: serial1.Rates.Success,
				SmallOnly:  smallSum.Rates.Success,
			}
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	return rows, nil
}

// BaselineSummary aggregates RMSE per predictor.
type BaselineSummary struct {
	Model, SerialOnly, SmallOnly float64
}

// SummarizeBaselines computes each predictor's RMSE over the rows (Eq. 9).
func SummarizeBaselines(rows []BaselineRow) BaselineSummary {
	n := len(rows)
	if n == 0 {
		return BaselineSummary{}
	}
	var sm, ss, so float64
	for _, r := range rows {
		em, es, eo := r.Errors()
		sm += em * em
		ss += es * es
		so += eo * eo
	}
	inv := 1 / float64(n)
	return BaselineSummary{
		Model:      math.Sqrt(sm * inv),
		SerialOnly: math.Sqrt(ss * inv),
		SmallOnly:  math.Sqrt(so * inv),
	}
}

// RenderBaselines prints the comparison table.
func RenderBaselines(w io.Writer, rows []BaselineRow) {
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "model vs naive baselines, predicting %d ranks (small scale %d)\n",
		rows[0].Large, rows[0].Small)
	fmt.Fprintf(w, "  %-14s %-10s %-16s %-16s %s\n",
		"benchmark", "measured", "model", "serial-only", "small-only")
	for _, r := range rows {
		em, es, eo := r.Errors()
		fmt.Fprintf(w, "  %-14s %-10s %-16s %-16s %s\n",
			fmt.Sprintf("%s (%s)", r.Bench, r.Class),
			fmtPct(r.Measured),
			fmt.Sprintf("%s (err %s)", fmtPct(r.Model), fmtPct(em)),
			fmt.Sprintf("%s (err %s)", fmtPct(r.SerialOnly), fmtPct(es)),
			fmt.Sprintf("%s (err %s)", fmtPct(r.SmallOnly), fmtPct(eo)))
	}
	sum := SummarizeBaselines(rows)
	fmt.Fprintf(w, "  RMSE: model %.4f, serial-only %.4f, small-only %.4f\n",
		sum.Model, sum.SerialOnly, sum.SmallOnly)
}

// ModelAblation measures what each model ingredient contributes: the full
// model, the model without alpha fine-tuning, and the model without the
// parallel-unique term, for one benchmark.
type ModelAblation struct {
	Bench    string
	Measured float64
	Full     float64
	NoTuning float64
	NoUnique float64
	Tuned    bool // whether the full model chose to tune
}

// AblateModel recomputes the prediction with individual ingredients
// disabled.
func AblateModel(s *Session, name, class string, small, large int) (*ModelAblation, error) {
	list, err := resolveApps([]string{name})
	if err != nil {
		return nil, err
	}
	a := list[0]
	if class == "" {
		class = a.DefaultClass()
	}
	inputs, measured, err := gatherModelInputs(s, a, class, small, large)
	if err != nil {
		return nil, err
	}
	full, err := core.Predict(*inputs)
	if err != nil {
		return nil, err
	}
	noTune := *inputs
	forceOff := false
	noTune.ForceTune = &forceOff
	nt, err := core.Predict(noTune)
	if err != nil {
		return nil, err
	}
	noUnique := *inputs
	noUnique.Prob2 = 0
	nu, err := core.Predict(noUnique)
	if err != nil {
		return nil, err
	}
	return &ModelAblation{
		Bench:    a.Name(),
		Measured: measured.Success,
		Full:     full.Rates.Success,
		NoTuning: nt.Rates.Success,
		NoUnique: nu.Rates.Success,
		Tuned:    full.Tuned,
	}, nil
}
