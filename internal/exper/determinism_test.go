package exper

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"

	"resmod/internal/faultsim"
	"resmod/internal/telemetry"
)

// recordCampaigns wires an OnCampaign hook that serializes every executed
// campaign's SummaryRecord with the wall-clock field zeroed (Elapsed is
// the only nondeterministic summary field; rates, histograms and spreads
// are aggregation-order independent).
func recordCampaigns(t *testing.T) (map[string][]byte, func(string, *faultsim.Summary)) {
	t.Helper()
	recs := make(map[string][]byte)
	var mu sync.Mutex
	return recs, func(id string, sum *faultsim.Summary) {
		rec := sum.Record(id)
		rec.ElapsedNS = 0
		b, err := json.Marshal(rec)
		if err != nil {
			t.Errorf("marshal %s: %v", id, err)
			return
		}
		mu.Lock()
		defer mu.Unlock()
		if prev, ok := recs[id]; ok && !bytes.Equal(prev, b) {
			t.Errorf("campaign %s executed twice with different records", id)
		}
		recs[id] = b
	}
}

// stripWallClock zeroes a row's wall-clock cost fields (per-campaign
// elapsed times vary run to run); everything else must be exactly equal.
func stripWallClock(rows []PredictionRow) []PredictionRow {
	out := make([]PredictionRow, len(rows))
	copy(out, rows)
	for i := range out {
		out[i].SmallTime = 0
		out[i].SerialTime = 0
	}
	return out
}

// TestPredictAllDeterministicAcrossCampaignParallel is the satellite-5
// acceptance test: the same Config.Seed with campaign-parallel 1
// (sequential) versus N must produce byte-identical SummaryRecords for
// every executed campaign and identical PredictionRows for every paper
// benchmark at small scale.
func TestPredictAllDeterministicAcrossCampaignParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every paper benchmark twice")
	}
	const (
		trials = 12
		seed   = 42
		small  = 2
		large  = 4
	)
	run := func(parallel int) ([]PredictionRow, map[string][]byte) {
		recs, hook := recordCampaigns(t)
		// Progress publishing is observation-only: run both passes with a
		// live bus and a deliberately unread minimum-size subscriber, so
		// snapshots flow (and overflow into the drop-oldest path) while
		// results must stay byte-identical.
		prog := telemetry.NewProgress()
		sub := prog.Subscribe(1)
		defer sub.Close()
		s := NewSession(Config{
			Trials: trials, Seed: seed,
			CampaignParallel: parallel, Workers: 2,
			OnCampaign: hook,
			Ctx: telemetry.With(context.Background(),
				telemetry.Nop().WithProgress(prog)),
		})
		rows, err := PredictAll(s, nil, small, large)
		if err != nil {
			t.Fatalf("campaign-parallel %d: %v", parallel, err)
		}
		return stripWallClock(rows), recs
	}

	seqRows, seqRecs := run(1)
	parRows, parRecs := run(8)

	if len(seqRecs) == 0 {
		t.Fatal("no campaigns recorded")
	}
	if len(seqRecs) != len(parRecs) {
		t.Fatalf("sequential executed %d campaigns, parallel %d", len(seqRecs), len(parRecs))
	}
	for id, want := range seqRecs {
		got, ok := parRecs[id]
		if !ok {
			t.Errorf("campaign %s executed sequentially but not in parallel", id)
			continue
		}
		if !bytes.Equal(want, got) {
			t.Errorf("campaign %s record differs:\nseq: %s\npar: %s", id, want, got)
		}
	}

	if len(seqRows) != len(parRows) {
		t.Fatalf("row counts differ: %d vs %d", len(seqRows), len(parRows))
	}
	for i := range seqRows {
		if seqRows[i] != parRows[i] {
			t.Errorf("row %d differs:\nseq: %+v\npar: %+v", i, seqRows[i], parRows[i])
		}
	}
}
