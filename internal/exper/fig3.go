package exper

import (
	"context"
	"fmt"
	"io"

	"resmod/internal/faultsim"
	"resmod/internal/stats"
)

// Fig3Result reproduces one benchmark's panel of the paper's Figure 3:
// success rate of the serial execution with x errors injected versus the
// parallel execution (8 ranks) with x ranks contaminated.
type Fig3Result struct {
	Bench string
	Class string
	Procs int
	// SerialSuccess[x-1] is the success rate with x errors injected into
	// the serial common computation.
	SerialSuccess []float64
	// ParallelSuccess[x-1] is the success rate over parallel tests that
	// contaminated exactly x ranks; HasParallel marks x values observed.
	ParallelSuccess []float64
	HasParallel     []bool
}

// Fig3 characterizes one benchmark (the paper uses 8 ranks).
func Fig3(s *Session, name string, procs int) (*Fig3Result, error) {
	list, err := resolveApps([]string{name})
	if err != nil {
		return nil, err
	}
	a := list[0]
	class := a.DefaultClass()
	res := &Fig3Result{
		Bench: a.Name(), Class: class, Procs: procs,
		SerialSuccess:   make([]float64, procs),
		ParallelSuccess: make([]float64, procs),
		HasParallel:     make([]bool, procs),
	}
	// Every serial curve point and the parallel deployment are
	// independent campaigns; submit them all and let the session's
	// scheduler bound execution.
	var par *faultsim.Summary
	g := newGroup(s.Context())
	for x := 1; x <= procs; x++ {
		x := x
		g.Go(func(ctx context.Context) error {
			ser, err := s.CampaignCtx(ctx, a, class, 1, x, faultsim.CommonOnly)
			if err != nil {
				return err
			}
			res.SerialSuccess[x-1] = ser.Rates.Success
			return nil
		})
	}
	g.Go(func(ctx context.Context) error {
		sum, err := s.CampaignCtx(ctx, a, class, procs, 1, faultsim.AnyRegion)
		if err != nil {
			return err
		}
		par = sum
		return nil
	})
	if err := g.Wait(); err != nil {
		return nil, err
	}
	for x := 1; x <= procs; x++ {
		if r, ok := par.ConditionalRates(x); ok {
			res.ParallelSuccess[x-1] = r.Success
			res.HasParallel[x-1] = true
		}
	}
	return res, nil
}

// Variances returns the success-rate variances of the two series (the
// paper's Observation 4 compares them).  Parallel variance is over the
// observed x values only.
func (r *Fig3Result) Variances() (serial, parallel float64) {
	serial = stats.Variance(r.SerialSuccess)
	var obs []float64
	for i, ok := range r.HasParallel {
		if ok {
			obs = append(obs, r.ParallelSuccess[i])
		}
	}
	parallel = stats.Variance(obs)
	return serial, parallel
}

// RenderFig3 prints one panel.
func RenderFig3(w io.Writer, r *Fig3Result) {
	fmt.Fprintf(w, "%s (%s), parallel scale %d ranks\n", r.Bench, r.Class, r.Procs)
	fmt.Fprintf(w, "  %-4s %-22s %s\n", "x", "serial (x errors)", "parallel (x contaminated)")
	for x := 1; x <= r.Procs; x++ {
		par := "-"
		if r.HasParallel[x-1] {
			par = fmtPct(r.ParallelSuccess[x-1])
		}
		fmt.Fprintf(w, "  %-4d %-22s %s\n", x, fmtPct(r.SerialSuccess[x-1]), par)
	}
	sv, pv := r.Variances()
	fmt.Fprintf(w, "  variance: serial %.4f, parallel %.4f\n", sv, pv)
}
