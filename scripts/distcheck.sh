#!/usr/bin/env bash
# Distributed-execution check for `resmod serve -coordinator` + `resmod
# worker`: boots a coordinator with two worker processes, runs a
# prediction through the sharded HTTP path, SIGKILLs one worker while
# shards are in flight, and asserts the job still completes with a
# result byte-identical (wall-time fields excluded) to a plain
# single-node run.  Also checks the worker roster and cluster endpoints,
# the resmod_dist_* / resmod_fleet_* metric families, the merged
# cross-fleet job trace (spans from both workers), and the SSE progress
# stream (monotone campaign progress while shards run elsewhere).  The
# JSON report lands in DISTCHECK_OUT (default distcheck.json) and the
# merged trace in DISTCHECK_TRACE (default distcheck_trace.json) so CI
# can archive both.
set -euo pipefail

cd "$(dirname "$0")/.."
out=${DISTCHECK_OUT:-distcheck.json}
trace_out=${DISTCHECK_TRACE:-distcheck_trace.json}
trials=${DISTCHECK_TRIALS:-120}
workdir=$(mktemp -d)
pid=
w1pid=
w2pid=
log=
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null
    [ -n "$w1pid" ] && kill "$w1pid" 2>/dev/null
    [ -n "$w2pid" ] && kill "$w2pid" 2>/dev/null
    rm -rf "$workdir"
}
trap cleanup EXIT

fail() {
    echo "distcheck: FAIL: $*" >&2
    for f in "$workdir"/*.log; do
        echo "--- $f ---" >&2
        cat "$f" >&2 || true
    done
    exit 1
}

# boot NAME [extra serve flags...]: start the service on an ephemeral
# port and wait for /healthz; sets $pid, $log, $addr.
boot() {
    log="$workdir/$1.log"
    store="$workdir/store-$1"
    shift
    "$workdir/resmod" serve -listen 127.0.0.1:0 -store "$store" \
        -trials "$trials" -workers 1 -drain 30s "$@" 2>"$log" &
    pid=$!
    addr=
    for _ in $(seq 1 100); do
        addr=$(sed -n 's#.*serving on http://\([^ ]*\).*#\1#p' "$log" | head -n1)
        [ -n "$addr" ] && break
        kill -0 "$pid" 2>/dev/null || fail "server exited before binding"
        sleep 0.1
    done
    [ -n "$addr" ] || fail "server never logged its address"
    curl -fsS "http://$addr/healthz" >/dev/null || fail "/healthz"
}

shutdown() {
    kill -TERM "$pid"
    wait "$pid" || fail "non-zero exit after SIGTERM"
    pid=
}

# predict ADDR OUTFILE: submit the fixed prediction and poll it to done,
# writing the final job JSON to OUTFILE.
body='{"app":"PENNANT","small":4,"large":8}'
predict() {
    local a=$1 file=$2 id status
    id=$(curl -fsS -X POST "http://$a/v1/predictions" -d "$body" |
        sed -n 's/.*"id": "\([0-9a-f]*\)".*/\1/p') || true
    [ -n "$id" ] || fail "submit returned no job id"
    echo "$id" >"$workdir/last-job-id"
    status=
    for _ in $(seq 1 1200); do
        curl -fsS "http://$a/v1/predictions/$id" >"$file" || true
        status=$(sed -n 's/.*"status": "\([a-z]*\)".*/\1/p' "$file" | head -n1)
        [ "$status" = done ] && return 0
        { [ "$status" = failed ] || [ "$status" = canceled ]; } &&
            fail "job ended $status: $(cat "$file")"
        sleep 0.2
    done
    fail "job stuck in '$status'"
}

go build -o "$workdir/resmod" ./cmd/resmod

# --- baseline: plain single-node run -------------------------------------
boot local
# Plain servers must still answer the roster endpoint, as a non-coordinator.
curl -fsS "http://$addr/v1/workers" | grep -q '"coordinator": \?false' ||
    fail "plain server /v1/workers did not report coordinator: false"
predict "$addr" "$workdir/job-local.json"
shutdown

# --- distributed: coordinator + two workers, one killed mid-run ----------
boot coord -coordinator -heartbeat-timeout 2s
coord_addr=$addr

"$workdir/resmod" worker -coordinator "http://$coord_addr" \
    -name w-alpha -heartbeat 250ms 2>"$workdir/w1.log" &
w1pid=$!
disown "$w1pid"
"$workdir/resmod" worker -coordinator "http://$coord_addr" \
    -name w-beta -heartbeat 250ms 2>"$workdir/w2.log" &
w2pid=$!
disown "$w2pid"
for _ in $(seq 1 100); do
    curl -fsS "http://$coord_addr/v1/workers" | grep -q '"alive": \?2\b' && break
    kill -0 "$w1pid" 2>/dev/null || fail "worker 1 exited before registering"
    kill -0 "$w2pid" 2>/dev/null || fail "worker 2 exited before registering"
    sleep 0.1
done
curl -fsS "http://$coord_addr/v1/workers" | grep -q '"coordinator": \?true' ||
    fail "coordinator /v1/workers did not report coordinator: true"
curl -fsS "http://$coord_addr/v1/workers" | grep -q '"alive": \?2\b' ||
    fail "two workers never became alive"
# The cluster view and fleet families see both workers before any loss.
# (Capture bodies instead of piping into grep -q: an early grep exit
# would SIGPIPE curl mid-body and trip pipefail.)
cluster=$(curl -fsS "http://$coord_addr/v1/cluster")
echo "$cluster" | grep -q '"workers_alive": \?2\b' ||
    fail "/v1/cluster did not report workers_alive: 2"
m=$(curl -fsS "http://$coord_addr/metrics")
echo "$m" | grep -q '^resmod_fleet_workers_alive 2$' ||
    fail "resmod_fleet_workers_alive != 2 with both workers up"

# Capture the distributed job's SSE stream from submission: the stream
# must show live campaign progress while the trials run on the workers.
rm -f "$workdir/last-job-id"
(
    for _ in $(seq 1 300); do
        [ -s "$workdir/last-job-id" ] && break
        sleep 0.1
    done
    [ -s "$workdir/last-job-id" ] || exit 1
    curl -NsS --max-time 300 \
        "http://$coord_addr/v1/predictions/$(cat "$workdir/last-job-id")/events" \
        >"$workdir/sse.log"
) &
ssepid=$!

# Kill one worker once BOTH workers have completed at least one shard —
# the merged trace must contain spans from each, and the coordinator
# must requeue the casualty's unfinished ranges onto the survivor (or
# run them locally) with the job still completing.
(
    for _ in $(seq 1 1200); do
        m=$(curl -fsS "http://$coord_addr/metrics")
        a=$(echo "$m" | awk -F' ' '/^resmod_fleet_worker_shards_done_total\{worker="w-alpha"\} / {print $2}')
        b=$(echo "$m" | awk -F' ' '/^resmod_fleet_worker_shards_done_total\{worker="w-beta"\} / {print $2}')
        if [ -n "$a" ] && [ -n "$b" ] && [ "$a" -ge 1 ] && [ "$b" -ge 1 ]; then
            kill -KILL "$w1pid" 2>/dev/null
            exit 0
        fi
        sleep 0.1
    done
    exit 1
) &
killer=$!
predict "$coord_addr" "$workdir/job-dist.json"
wait "$killer" || fail "both workers never completed a shard — distributed path unused"
wait "$ssepid" || fail "SSE capture never got the job id"

# The killed worker's heartbeats stop: fleet liveness must drop to 1
# within the heartbeat timeout.
alive=
for _ in $(seq 1 100); do
    alive=$(curl -fsS "http://$coord_addr/metrics" |
        awk '/^resmod_fleet_workers_alive / {print $2}')
    [ "$alive" = 1 ] && break
    sleep 0.1
done
[ "$alive" = 1 ] || fail "resmod_fleet_workers_alive stuck at '$alive' after SIGKILL, want 1"

# The merged job trace shows the cross-fleet timeline: dispatch spans
# plus grafted worker shard spans tagged with both worker names.
job_id=$(cat "$workdir/last-job-id")
curl -fsS "http://$coord_addr/v1/predictions/$job_id/trace" >"$trace_out" ||
    fail "no job trace for $job_id"
grep -q '"dispatch"' "$trace_out" || fail "job trace has no dispatch spans"
grep -q '"worker_name":"w-alpha"' "$trace_out" ||
    fail "job trace has no grafted spans from w-alpha"
grep -q '"worker_name":"w-beta"' "$trace_out" ||
    fail "job trace has no grafted spans from w-beta"

# The SSE stream carried live campaign progress, monotone per campaign.
python3 - "$workdir/sse.log" <<'EOF' || fail "SSE progress stream check failed"
import json, sys
events = []
for line in open(sys.argv[1]):
    if line.startswith("data: "):
        events.append(json.loads(line[len("data: "):]))
campaigns = [e for e in events if e.get("kind") == "campaign"]
if not campaigns:
    print("no campaign progress events on the SSE stream", file=sys.stderr)
    sys.exit(1)
high = {}
for e in campaigns:
    key, done = e["key"], e.get("done", 0)
    if done < high.get(key, 0):
        print(f"campaign {key} progress regressed: {done} after {high[key]}",
              file=sys.stderr)
        sys.exit(1)
    high[key] = done
if not any(e.get("state") == "running" for e in campaigns):
    print("no in-flight (running) campaign snapshot ever streamed", file=sys.stderr)
    sys.exit(1)
EOF

metrics=$(curl -fsS "http://$coord_addr/metrics")
dispatched=$(echo "$metrics" | awk '/^resmod_dist_shards_dispatched_total / {print $2}')
completed=$(echo "$metrics" | awk '/^resmod_dist_shards_completed_total / {print $2}')
requeued=$(echo "$metrics" | awk '/^resmod_dist_shards_requeued_total / {print $2}')
localn=$(echo "$metrics" | awk '/^resmod_dist_shards_local_total / {print $2}')
[ -n "$dispatched" ] && [ "$dispatched" -ge 1 ] ||
    fail "resmod_dist_shards_dispatched_total missing or zero"
[ -n "$completed" ] && [ "$completed" -ge 1 ] ||
    fail "no shard completed over the distributed path"
echo "$metrics" | grep -q '^resmod_dist_workers_known 2$' ||
    fail "coordinator does not know 2 workers"

# The distributed result (after losing a worker mid-run) must match the
# single-node baseline exactly, wall-time fields aside.
python3 - "$workdir/job-local.json" "$workdir/job-dist.json" <<'EOF' ||
import json, sys

def result(path):
    with open(path) as f:
        job = json.load(f)
    row = job["result"]
    for k in ("SmallTime", "SerialTime"):
        row.pop(k, None)
    return row

a, b = result(sys.argv[1]), result(sys.argv[2])
if a != b:
    print("distributed result differs from local baseline:", file=sys.stderr)
    print("local: " + json.dumps(a, sort_keys=True), file=sys.stderr)
    print("dist:  " + json.dumps(b, sort_keys=True), file=sys.stderr)
    sys.exit(1)
EOF
    fail "distributed result != local baseline"

python3 - "$workdir/job-local.json" "$workdir/job-dist.json" \
    "${dispatched:-0}" "${completed:-0}" "${requeued:-0}" "${localn:-0}" >"$out" <<'EOF'
import json, sys
local = json.load(open(sys.argv[1]))
dist = json.load(open(sys.argv[2]))
print(json.dumps({
    "check": "distcheck",
    "identical": True,
    "local_elapsed_ms": local.get("elapsed_ms", 0),
    "dist_elapsed_ms": dist.get("elapsed_ms", 0),
    "shards_dispatched": int(float(sys.argv[3])),
    "shards_completed": int(float(sys.argv[4])),
    "shards_requeued": int(float(sys.argv[5])),
    "shards_local": int(float(sys.argv[6])),
}, indent=2))
EOF

shutdown
kill "$w2pid" 2>/dev/null || true
w1pid=
w2pid=

echo "distcheck: OK (2 workers, 1 killed mid-run: $dispatched dispatched," \
    "$completed completed, ${requeued:-0} requeued, ${localn:-0} local;" \
    "result identical to single-node; report in $out)"
