#!/usr/bin/env bash
# Trace smoke test: run a tiny campaign with -trace and validate the
# emitted file is well-formed Chrome trace-event JSON containing at
# least one complete ("ph":"X") campaign span.  The validator is a
# standalone Go file so the check needs nothing beyond the toolchain.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/resmod" ./cmd/resmod
"$workdir/resmod" campaign -app PENNANT -procs 2 -trials 4 -quiet \
    -trace "$workdir/trace.json"

cat >"$workdir/validate.go" <<'EOF'
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

func main() {
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck: invalid JSON:", err)
		os.Exit(1)
	}
	campaigns := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			fmt.Fprintf(os.Stderr, "tracecheck: span %q has ph %q, want X\n", ev.Name, ev.Ph)
			os.Exit(1)
		}
		if ev.Name == "campaign" {
			campaigns++
		}
	}
	if campaigns == 0 {
		fmt.Fprintf(os.Stderr, "tracecheck: no campaign span in %d events\n", len(doc.TraceEvents))
		os.Exit(1)
	}
	fmt.Printf("tracecheck: OK (%d spans, %d campaign)\n", len(doc.TraceEvents), campaigns)
}
EOF
go run "$workdir/validate.go" "$workdir/trace.json"
