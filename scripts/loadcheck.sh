#!/usr/bin/env bash
# Load check for `resmod serve`: boots a deliberately quota-constrained
# instance (tiny queue, anonymous rate limit, one keyed tenant) and runs
# a short `resmod loadgen` burst against it with -fail-on-5xx.  The
# generator exits non-zero if the server ever answers a 5xx other than a
# drain 503 — overload must surface as 429 + Retry-After, never as an
# internal error.  The JSON report lands in LOADCHECK_OUT (default
# loadcheck.json) so CI can archive the latency/shedding numbers.
set -euo pipefail

cd "$(dirname "$0")/.."
out=${LOADCHECK_OUT:-loadcheck.json}
duration=${LOADCHECK_DURATION:-5s}
clients=${LOADCHECK_CLIENTS:-8}
workdir=$(mktemp -d)
pid=
log="$workdir/serve.log"
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null
    rm -rf "$workdir"
}
trap cleanup EXIT

fail() {
    echo "loadcheck: FAIL: $*" >&2
    echo "--- $log ---" >&2
    cat "$log" >&2 || true
    exit 1
}

go build -o "$workdir/resmod" ./cmd/resmod

# Constrain everything: 2 workers, an 8-deep queue, a rate-limited
# anonymous tier, and a keyed tenant with a small inflight quota — so a
# few concurrent clients genuinely trip the shedding paths.
"$workdir/resmod" serve -listen 127.0.0.1:0 -store "$workdir/store" \
    -trials 10 -workers 2 -queue 8 -drain 30s \
    -anon-rate 20 -anon-burst 10 \
    -api-keys loadkey-a:team-a,loadkey-b:team-b \
    -tenant-rate 20 -tenant-inflight 4 2>"$log" &
pid=$!
addr=
for _ in $(seq 1 100); do
    addr=$(sed -n 's#.*serving on http://\([^ ]*\).*#\1#p' "$log" | head -n1)
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || fail "server exited before binding"
    sleep 0.1
done
[ -n "$addr" ] || fail "server never logged its address"

"$workdir/resmod" loadgen -target "http://$addr" \
    -clients "$clients" -duration "$duration" \
    -mix 'predict=60,get=25,status=10,metrics=5' \
    -keys anon,loadkey-a,loadkey-b \
    -retries 2 -max-backoff 1s \
    -out "$out" -fail-on-5xx || fail "loadgen reported a failure"

# The report must exist and record real traffic.
[ -s "$out" ] || fail "no report written to $out"
grep -q '"ok": 0,' "$out" && fail "report shows zero successes"
grep -q '"other_5xx": 0,' "$out" || fail "report shows non-drain 5xx responses"

# The wall-time window must be stamped so the run can be correlated
# against the server's /v1/series retention.
grep -Eq '"started_at": "[0-9]{4}-' "$out" || fail "report missing started_at"
grep -Eq '"start_unix": [1-9][0-9]*' "$out" || fail "report missing start_unix"
grep -Eq '"end_unix": [1-9][0-9]*' "$out" || fail "report missing end_unix"

kill -TERM "$pid"
wait "$pid" || fail "non-zero exit after SIGTERM"
grep -q "drained cleanly" "$log" || fail "no clean-drain log line"
pid=

echo "loadcheck: OK ($(grep -o '"requests": [0-9]*' "$out" | head -n1) over $duration, report in $out)"
