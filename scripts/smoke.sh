#!/usr/bin/env bash
# Smoke test for `resmod serve`: boots the real binary with a throwaway
# store, computes one prediction, restarts the server over the same
# store, and checks the identical POST is answered from disk (flagged
# cached, reported in /metrics) — with a clean SIGTERM drain both times.
# Along the way it asserts the engine-telemetry metric families
# (resmod_trial_total by outcome, duration histograms) reach /metrics,
# that the outcome-labeled sum matches resmod_campaign_trials_total, that
# /v1/status reports the aggregate service state, and that a live job's
# SSE stream (/v1/predictions/{id}/events) delivers progress snapshots
# and a terminal done event.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
pid=
log=
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null
    rm -rf "$workdir"
}
trap cleanup EXIT

fail() {
    echo "smoke: FAIL: $*" >&2
    echo "--- $log ---" >&2
    cat "$log" >&2 || true
    exit 1
}

# boot NAME [extra serve flags...]: start the service, wait for its
# ephemeral address (read off the startup log line) and a passing
# /healthz; sets $pid, $log, $addr.
boot() {
    log="$workdir/$1.log"
    store="$workdir/store"
    shift
    "$workdir/resmod" serve -listen 127.0.0.1:0 -store "$store" \
        -trials 10 -workers 1 -drain 30s "$@" 2>"$log" &
    pid=$!
    addr=
    for _ in $(seq 1 100); do
        addr=$(sed -n 's#.*serving on http://\([^ ]*\).*#\1#p' "$log" | head -n1)
        [ -n "$addr" ] && break
        kill -0 "$pid" 2>/dev/null || fail "server exited before binding"
        sleep 0.1
    done
    [ -n "$addr" ] || fail "server never logged its address"
    curl -fsS "http://$addr/healthz" | grep -q '"status": "ok"' || fail "/healthz"
}

# shutdown: SIGTERM must drain cleanly and exit 0.
shutdown() {
    kill -TERM "$pid"
    wait "$pid" || fail "non-zero exit after SIGTERM"
    grep -q "drained cleanly" "$log" || fail "no clean-drain log line"
    pid=
}

go build -o "$workdir/resmod" ./cmd/resmod
body='{"app":"PENNANT","small":4,"large":8}'

# --- cold run: compute one prediction, then stop -------------------------
# -sample-every 100ms makes the retention/alerting surfaces populate
# within the run instead of on the production 10s cadence.
boot cold -sample-every 100ms
id=$(curl -fsS -X POST "http://$addr/v1/predictions" -d "$body" |
    sed -n 's/.*"id": "\([0-9a-f]*\)".*/\1/p') || true
[ -n "$id" ] || fail "submit returned no job id"

status=
for _ in $(seq 1 300); do
    status=$(curl -fsS "http://$addr/v1/predictions/$id" |
        sed -n 's/.*"status": "\([a-z]*\)".*/\1/p') || true
    [ "$status" = done ] && break
    { [ "$status" = failed ] || [ "$status" = canceled ]; } && fail "job ended $status"
    sleep 0.1
done
[ "$status" = done ] || fail "job stuck in '$status'"

# Engine telemetry must have reached /metrics: outcome-labeled trial
# counters whose sum equals the campaign-trials total, plus the new
# duration histograms.
metrics=$(curl -fsS "http://$addr/metrics")
echo "$metrics" | grep -q '^resmod_trial_total{outcome="success"} ' ||
    fail "resmod_trial_total{outcome=...} missing from /metrics"
echo "$metrics" | grep -q '^resmod_trial_duration_seconds_count ' ||
    fail "resmod_trial_duration_seconds missing from /metrics"
echo "$metrics" | grep -q '^resmod_campaign_duration_seconds_count ' ||
    fail "resmod_campaign_duration_seconds missing from /metrics"
outcome_sum=$(echo "$metrics" | awk -F' ' '/^resmod_trial_total{/ {s += $2} END {print s}')
trials_total=$(echo "$metrics" | awk '/^resmod_campaign_trials_total / {print $2}')
[ "$outcome_sum" = "$trials_total" ] ||
    fail "outcome sum $outcome_sum != resmod_campaign_trials_total $trials_total"
[ "$trials_total" -gt 0 ] || fail "cold run executed no trials"

# Live-progress metric families (PR 5): worker-budget occupancy gauges
# plus the per-campaign progress ratio and trial-rate series retained by
# the server-wide progress bus.
echo "$metrics" | grep -q '^resmod_worker_budget_in_use ' ||
    fail "resmod_worker_budget_in_use missing from /metrics"
echo "$metrics" | grep -q '^resmod_campaign_progress_ratio{campaign=' ||
    fail "resmod_campaign_progress_ratio series missing from /metrics"
echo "$metrics" | grep -q '^# TYPE resmod_trials_per_second gauge' ||
    fail "resmod_trials_per_second family missing from /metrics"

# Live progress over SSE: submit a second prediction and stream its
# events while it runs — the stream must carry at least one progress
# snapshot and end with the terminal done event (the server closes the
# connection after it, so curl exits on its own).
id2=$(curl -fsS -X POST "http://$addr/v1/predictions" \
    -d '{"app":"CG","small":4,"large":8}' |
    sed -n 's/.*"id": "\([0-9a-f]*\)".*/\1/p') || true
[ -n "$id2" ] || fail "second submit returned no job id"
curl -sN --max-time 120 "http://$addr/v1/predictions/$id2/events" \
    >"$workdir/sse.out" || fail "SSE stream did not end cleanly"
grep -q '^event: progress$' "$workdir/sse.out" ||
    fail "no progress event on the SSE stream"
grep -q '^event: done$' "$workdir/sse.out" ||
    fail "no terminal done event on the SSE stream"

# Aggregate service state: /v1/status reports both finished jobs and the
# campaigns tracked on the progress bus.
status_doc=$(curl -fsS "http://$addr/v1/status")
echo "$status_doc" | grep -q '"status": "ok"' || fail "/v1/status not ok"
echo "$status_doc" | grep -q '"jobs_total": 2' ||
    fail "/v1/status jobs_total != 2: $status_doc"
echo "$status_doc" | grep -q '"done": 2' ||
    fail "/v1/status does not report 2 done jobs: $status_doc"
echo "$status_doc" | grep -Eq '"campaigns_tracked": [1-9]' ||
    fail "/v1/status tracked no campaigns: $status_doc"

# Retention, alerting, and the dashboard (PR 10): sampled series are
# queryable, the alert engine answers with its built-in rule set (and
# nothing fires on a healthy run), the embedded dashboard serves, and
# the alert metric families reach /metrics.
curl -fsS "http://$addr/v1/series" | grep -q '"trials_total"' ||
    fail "/v1/series index missing the trials_total series"
curl -fsS "http://$addr/v1/series?name=queue_depth&since=10m&max=50" |
    grep -q '"name": "queue_depth"' || fail "/v1/series query failed"
alerts_doc=$(curl -fsS "http://$addr/v1/alerts")
echo "$alerts_doc" | grep -q '"name": "queue-saturation"' ||
    fail "/v1/alerts missing the built-in rules: $alerts_doc"
echo "$alerts_doc" | grep -q '"firing": 0' ||
    fail "healthy smoke run has firing alerts: $alerts_doc"
curl -fsS "http://$addr/debug/dash" | grep -q 'resmod dash' ||
    fail "/debug/dash did not serve the dashboard"
metrics=$(curl -fsS "http://$addr/metrics")
echo "$metrics" | grep -q '^# TYPE resmod_alerts gauge' ||
    fail "resmod_alerts family missing from /metrics"
echo "$metrics" | grep -q '^resmod_alerts_firing 0$' ||
    fail "resmod_alerts_firing missing or non-zero"

# The terminal dashboard renders one frame off the same surfaces.
"$workdir/resmod" top -target "http://$addr" -once >"$workdir/top.out" ||
    fail "resmod top -once failed"
grep -q 'resmod top' "$workdir/top.out" || fail "top frame missing header"
grep -q 'alerts: none' "$workdir/top.out" || fail "top frame shows alerts on a healthy run"
shutdown

# --- warm run: a fresh process over the same store answers from disk -----
boot warm
curl -fsS -X POST "http://$addr/v1/predictions" -d "$body" |
    grep -q '"cached": true' || fail "warm POST not served from the store"
# Capture the body before grepping: grep -q quitting early would
# otherwise SIGPIPE curl and trip pipefail on a match.
metrics=$(curl -fsS "http://$addr/metrics")
echo "$metrics" | grep -q '^resmod_prediction_cache_hits_total 1$' ||
    fail "cache hit missing from /metrics"
echo "$metrics" | grep -q '^resmod_campaign_trials_total 0$' ||
    fail "warm server re-ran campaign trials"
shutdown

# --- hardened run: tenancy, rate limits, idempotent replay ---------------
# A tiny anonymous budget (burst 3, ~zero refill) plus one keyed tenant,
# over a fresh store so admissions actually enqueue.
boot hardened -store "$workdir/store-hardened" \
    -anon-rate 0.02 -anon-burst 3 -api-keys smokekey:smoketeam
hbody='{"app":"PENNANT","small":2,"large":4}'

# Idempotent replay: same key + same payload answers with the original
# job id and is flagged as a replay.
idem_id=$(curl -fsS -X POST "http://$addr/v1/predictions" \
    -H 'Idempotency-Key: smoke-idem' -d "$hbody" |
    sed -n 's/.*"id": "\([0-9a-f]*\)".*/\1/p') || true
[ -n "$idem_id" ] || fail "idempotent submit returned no job id"
hdr="$workdir/replay.hdr"
idem_id2=$(curl -fsS -D "$hdr" -X POST "http://$addr/v1/predictions" \
    -H 'Idempotency-Key: smoke-idem' -d "$hbody" |
    sed -n 's/.*"id": "\([0-9a-f]*\)".*/\1/p') || true
[ "$idem_id2" = "$idem_id" ] || fail "replay job id '$idem_id2' != original '$idem_id'"
grep -qi '^Idempotency-Replay: true' "$hdr" || fail "replay not flagged via header"

# Anonymous tier: burst 3 is now spent by a third POST; the fourth is
# shed with 429 and a positive Retry-After.
curl -fsS -o /dev/null -X POST "http://$addr/v1/predictions" -d "$hbody" ||
    fail "third anonymous POST (within burst) rejected"
shed_hdr="$workdir/shed.hdr"
code=$(curl -s -D "$shed_hdr" -o "$workdir/shed.body" -w '%{http_code}' \
    -X POST "http://$addr/v1/predictions" -d "$hbody")
[ "$code" = 429 ] || fail "over-limit anonymous POST returned $code, want 429"
grep -Eqi '^Retry-After: [1-9][0-9]*' "$shed_hdr" ||
    fail "429 carried no positive Retry-After"

# A keyed tenant rides above the anonymous storm.
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$addr/v1/predictions" \
    -H 'X-API-Key: smokekey' -d '{"app":"CG","small":2,"large":8}')
case "$code" in 200|202) ;; *) fail "keyed POST returned $code while anon was shed";; esac

# Per-tenant metric families.
metrics=$(curl -fsS "http://$addr/metrics")
echo "$metrics" | grep -q '^resmod_tenant_admitted_total{tenant="anon"} 1$' ||
    fail "anon admitted counter != 1"
echo "$metrics" | grep -q '^resmod_tenant_admitted_total{tenant="smoketeam"} 1$' ||
    fail "smoketeam admitted counter != 1"
echo "$metrics" | grep -q '^resmod_tenant_ratelimited_total{tenant="anon"} 1$' ||
    fail "anon ratelimited counter != 1"
echo "$metrics" | grep -q '^resmod_idempotent_replays_total 1$' ||
    fail "idempotent replay counter != 1"
echo "$metrics" | grep -q '^# TYPE resmod_tenant_shed_total counter' ||
    fail "tenant shed family missing"
echo "$metrics" | grep -q '^# TYPE resmod_queue_wait_seconds histogram' ||
    fail "queue-wait histogram family missing"
shutdown

echo "smoke: OK (cold compute, live SSE progress, status + metrics, series retention + alerts + dashboard + top, warm store hit across restart, tenancy + idempotent replay + 429 shedding, clean drains)"
