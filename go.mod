module resmod

go 1.22
