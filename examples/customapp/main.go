// customapp shows how to study the resilience of your own application with
// resmod: implement the resmod.App interface (routing floating-point math
// through the instrumented context and communicating through the simulated
// MPI runtime), register it, and run the same campaigns and scale
// predictions the built-in NPB benchmarks use.
//
// The application here is a 1-D explicit heat-diffusion solver with halo
// exchange and a global energy reduction — a miniature of the stencil codes
// the paper targets.
//
//	go run ./examples/customapp
package main

import (
	"fmt"
	"log"
	"os"

	"resmod"
)

// heatApp solves du/dt = k d2u/dx2 with fixed time steps on [0, 1],
// Dirichlet zero boundaries, and a hot bump in the middle.
type heatApp struct{}

func (heatApp) Name() string         { return "Heat1D" }
func (heatApp) Classes() []string    { return []string{"default"} }
func (heatApp) DefaultClass() string { return "default" }
func (heatApp) MaxProcs(string) int  { return 64 }

// Verify accepts runs whose final energy and mid-point temperature match
// the fault-free values to 1e-9 relative.
func (heatApp) Verify(golden, check []float64) bool {
	return resmod.VerifyRel(golden, check, 1e-9)
}

const (
	cells = 512
	steps = 200
	kappa = 0.2 // stable for the explicit scheme (k <= 0.5)
)

func (heatApp) Run(fc *resmod.FPCtx, comm *resmod.Comm, class string) (resmod.RankOutput, error) {
	p, rank := comm.Size(), comm.Rank()
	if cells%p != 0 {
		return resmod.RankOutput{}, fmt.Errorf("heat1d: %d ranks do not divide %d cells", p, cells)
	}
	n := cells / p
	lo := rank * n

	u := make([]float64, n)
	for i := range u {
		x := (float64(lo+i) + 0.5) / cells
		if x > 0.4 && x < 0.6 {
			u[i] = 1 // the initial hot bump
		}
	}

	next := make([]float64, n)
	for step := 0; step < steps; step++ {
		// Halo exchange: first cell leftward, last cell rightward.
		var ghLo, ghHi float64 // Dirichlet zero outside the domain
		if rank > 0 {
			comm.SendValue(rank-1, 1, u[0])
		}
		if rank < p-1 {
			comm.SendValue(rank+1, 2, u[n-1])
		}
		if rank > 0 {
			ghLo = comm.RecvValue(rank-1, 2)
		}
		if rank < p-1 {
			ghHi = comm.RecvValue(rank+1, 1)
		}
		// Explicit update through the instrumented FP context, so faults
		// can strike any operand of any dynamic operation.
		for i := 0; i < n; i++ {
			left, right := ghLo, ghHi
			if i > 0 {
				left = u[i-1]
			}
			if i < n-1 {
				right = u[i+1]
			}
			lap := fc.Sub(fc.Add(left, right), fc.Mul(2, u[i]))
			next[i] = fc.Add(u[i], fc.Mul(kappa, lap))
		}
		u, next = next, u
	}

	// Verification values: total energy (a conserved-ish global) and the
	// domain-centre temperature.
	var local float64
	for _, v := range u {
		local = fc.Add(local, v)
	}
	energy := comm.AllreduceValue(resmod.OpSum, local)
	var mid float64
	if lo <= cells/2 && cells/2 < lo+n {
		mid = u[cells/2-lo]
	}
	mid = comm.AllreduceValue(resmod.OpSum, mid)

	state := make([]float64, n)
	copy(state, u)
	return resmod.RankOutput{State: state, Check: []float64{energy, mid}}, nil
}

func main() {
	resmod.RegisterApp(heatApp{})

	// A small-scale campaign...
	summary, err := resmod.RunCampaign(resmod.Campaign{
		App: heatApp{}, Procs: 4, Trials: 300, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Heat1D, 4 ranks:", summary.Rates)
	fmt.Println("propagation profile:", summary.Hist.Probabilities())

	// ...and a full scale prediction: 32 ranks from serial + 4 ranks.
	session := resmod.NewSession(resmod.SessionConfig{Trials: 200, Seed: 3, Log: os.Stderr})
	row, err := resmod.PredictScale(session, "Heat1D", "", 4, 32)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("predicted success at 32 ranks: %.1f%% (measured %.1f%%, error %.1f%%)\n",
		100*row.Predicted.Success, 100*row.Measured.Success, 100*row.Error)
}
