// predict64 demonstrates the paper's headline workflow (Figures 5–6):
// predict the fault injection result of a 64-rank execution from fault
// injection in serial and small-scale executions only, then compare
// against the measured 64-rank deployment.
//
//	go run ./examples/predict64 [-app CG] [-small 8] [-trials 200]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"resmod"
)

func main() {
	appName := flag.String("app", "CG", "benchmark: CG, FT, MG, LU, MiniFE, PENNANT")
	small := flag.Int("small", 8, "small-scale rank count (must divide 64)")
	trials := flag.Int("trials", 200, "fault injection tests per deployment")
	seed := flag.Uint64("seed", 7, "campaign seed")
	flag.Parse()

	session := resmod.NewSession(resmod.SessionConfig{
		Trials: *trials,
		Seed:   *seed,
		Log:    os.Stderr, // watch the deployments as they run
	})

	row, err := resmod.PredictScale(session, *appName, "", *small, 64)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%s: predicting 64 ranks from serial + %d ranks\n", *appName, *small)
	fmt.Printf("  measured  success rate: %.1f%%\n", 100*row.Measured.Success)
	fmt.Printf("  predicted success rate: %.1f%%\n", 100*row.Predicted.Success)
	fmt.Printf("  prediction error:       %.1f%%\n", 100*row.Error)
	fmt.Printf("  alpha fine-tuning used: %v\n", row.Tuned)
	fmt.Printf("  small-scale deployment time: %v (vs %v serial)\n",
		row.SmallTime.Round(1e6), row.SerialTime.Round(1e6))
}
