// sensitivity reproduces the tradeoff of the paper's Figure 8 at laptop
// scale: growing the small-scale execution improves prediction accuracy
// but costs more fault injection time.
//
//	go run ./examples/sensitivity [-trials 150] [-large 32]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"resmod"
)

func main() {
	trials := flag.Int("trials", 150, "fault injection tests per deployment")
	large := flag.Int("large", 32, "prediction target scale")
	seed := flag.Uint64("seed", 11, "campaign seed")
	flag.Parse()

	session := resmod.NewSession(resmod.SessionConfig{
		Trials: *trials, Seed: *seed, Log: os.Stderr,
	})

	benchmarks := []string{"CG", "LU", "PENNANT"}
	fmt.Printf("predicting %d ranks; benchmarks: %v\n\n", *large, benchmarks)
	fmt.Printf("%-8s %-12s %-12s %s\n", "small", "avg error", "max error", "avg small-scale time")

	for _, small := range []int{2, 4, 8, 16} {
		if *large%small != 0 {
			continue
		}
		var sumErr, maxErr float64
		var sumTime int64
		for _, b := range benchmarks {
			row, err := resmod.PredictScale(session, b, "", small, *large)
			if err != nil {
				log.Fatal(err)
			}
			sumErr += row.Error
			if row.Error > maxErr {
				maxErr = row.Error
			}
			sumTime += int64(row.SmallTime)
		}
		n := float64(len(benchmarks))
		fmt.Printf("%-8d %-12.1f %-12.1f %v\n",
			small, 100*sumErr/n, 100*maxErr,
			(time.Duration(sumTime) / time.Duration(len(benchmarks))).Round(time.Millisecond))
	}
}
