// Quickstart: run a small fault-injection campaign against the NPB CG
// benchmark and inspect the fault injection result and the
// error-propagation histogram.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"resmod"
)

func main() {
	app, err := resmod.LookupApp("CG")
	if err != nil {
		log.Fatal(err)
	}

	// One fault injection deployment (paper §2): 300 tests, each flipping
	// one random bit of an input operand of one random floating-point
	// add/mul in one random rank of an 8-rank execution.
	summary, err := resmod.RunCampaign(resmod.Campaign{
		App:    app,
		Procs:  8,
		Trials: 300,
		Seed:   1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("CG, 8 ranks, 300 fault injection tests")
	fmt.Println("fault injection result:", summary.Rates)
	fmt.Println()
	fmt.Println("error propagation (contaminated ranks per test):")
	probs := summary.Hist.Probabilities()
	for x, p := range probs {
		if p == 0 {
			continue
		}
		fmt.Printf("  %d rank(s): %-40s %.1f%%\n",
			x+1, strings.Repeat("#", int(p*40+0.5)), 100*p)
	}

	// The parallel-unique fraction (paper Table 1) comes from the golden
	// profiling run the campaign made internally.
	fmt.Printf("\nparallel-unique computation: %.2f%% of dynamic FP ops\n",
		100*summary.Golden.UniqueFraction())
}
