// emulation demonstrates the paper's core idea (its Figure 4): a parallel
// execution in which an error has contaminated x ranks behaves like a
// serial execution with x simultaneous errors injected into the common
// computation.
//
// The program measures both sides of the correspondence for one benchmark
// at 8 ranks: the success rate of parallel tests grouped by how many ranks
// they contaminated, next to the success rate of serial deployments with
// the matching number of injected errors (the paper's Figure 3 panels).
//
//	go run ./examples/emulation [-app CG] [-trials 300]
package main

import (
	"flag"
	"fmt"
	"log"

	"resmod"
)

func main() {
	appName := flag.String("app", "CG", "benchmark")
	trials := flag.Int("trials", 300, "fault injection tests per deployment")
	seed := flag.Uint64("seed", 5, "campaign seed")
	flag.Parse()

	app, err := resmod.LookupApp(*appName)
	if err != nil {
		log.Fatal(err)
	}
	const procs = 8

	// Parallel side: one error per test, grouped by contamination.
	par, err := resmod.RunCampaign(resmod.Campaign{
		App: app, Procs: procs, Trials: *trials, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s: serial x-error emulation vs parallel x-contaminated (8 ranks)\n\n", *appName)
	fmt.Printf("%-4s %-24s %s\n", "x", "serial, x errors", "parallel, x ranks contaminated")
	for x := 1; x <= procs; x++ {
		// Serial side: x simultaneous errors in the common computation.
		ser, err := resmod.RunCampaign(resmod.Campaign{
			App: app, Procs: 1, Trials: *trials, Errors: x,
			Region: resmod.CommonOnly, Seed: *seed + uint64(x),
		})
		if err != nil {
			log.Fatal(err)
		}
		parCell := "(not observed)"
		if r, ok := par.ConditionalRates(x); ok {
			parCell = fmt.Sprintf("%.1f%% success over %d tests", 100*r.Success, r.N)
		}
		fmt.Printf("%-4d %-24s %s\n", x,
			fmt.Sprintf("%.1f%% success", 100*ser.Rates.Success), parCell)
	}
	fmt.Println("\nObservation 4: where both columns are populated they track each",
		"other;\nthe model glues them together with the propagation profile r'_x:")
	for x, p := range par.Hist.Probabilities() {
		if p > 0 {
			fmt.Printf("  r'_%d = %.3f\n", x+1, p)
		}
	}
}
