package resmod_test

import (
	"fmt"
	"log"

	"resmod"
)

// ExampleRunCampaign runs a small deterministic fault injection deployment
// and prints its outcome counts.
func ExampleRunCampaign() {
	app, err := resmod.LookupApp("PENNANT")
	if err != nil {
		log.Fatal(err)
	}
	sum, err := resmod.RunCampaign(resmod.Campaign{
		App: app, Procs: 2, Trials: 25, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("tests:", sum.Rates.N)
	fmt.Println("all outcomes accounted:",
		sum.Counts.Success+sum.Counts.SDC+sum.Counts.Failure == 25)
	// Output:
	// tests: 25
	// all outcomes accounted: true
}

// ExamplePredict evaluates the paper's model on hand-built inputs (the
// worked example of the paper's Eq. 8 with p=64, S=4).
func ExamplePredict() {
	xs, _ := resmod.SampleXs(64, 4)
	fmt.Println("serial sampling points:", xs)

	rates := []resmod.Rates{
		{Success: 0.9, SDC: 0.1, N: 1000},
		{Success: 0.6, SDC: 0.4, N: 1000},
		{Success: 0.5, SDC: 0.5, N: 1000},
		{Success: 0.4, SDC: 0.6, N: 1000},
	}
	curve, _ := resmod.NewSerialCurve(64, xs, rates)
	pred, _ := resmod.Predict(resmod.ModelInputs{
		P:                64,
		Serial:           curve,
		SmallProfile:     []float64{0.7, 0.1, 0.1, 0.1},
		SmallConditional: map[int]resmod.Rates{},
	})
	fmt.Printf("predicted success: %.0f%%\n", 100*pred.Rates.Success)
	// Output:
	// serial sampling points: [1 32 48 64]
	// predicted success: 78%
}

// ExampleFlipBit shows the fault model's primitive.
func ExampleFlipBit() {
	fmt.Println(resmod.FlipBit(1.0, 63)) // sign bit
	fmt.Println(resmod.FlipBit(1.0, 51)) // top mantissa bit
	// Output:
	// -1
	// 1.5
}
