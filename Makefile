# resmod build/test/experiment entry points (stdlib-only Go module).

GO ?= go

.PHONY: all build fmt vet test test-short race cover bench gobench microbench experiments report serve smoke trace distcheck clean

all: build test

build:
	$(GO) build ./...

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...

test:
	$(GO) vet ./...
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# Measure PredictAll wall time sequential-vs-concurrent over the six
# paper benchmarks and record it (with a bit-identical-results check)
# in BENCH_OUT.  The speedup tracks the core count; on one core the two
# runs tie.  BENCH_TRIALS/BENCH_SMALL/BENCH_LARGE shrink the workload
# for CI.
BENCH_TRIALS ?= 100
BENCH_SMALL  ?= 4
BENCH_LARGE  ?= 16
BENCH_PR     ?= 10
BENCH_OUT    ?= BENCH_pr$(BENCH_PR).json
bench:
	$(GO) run ./cmd/resmod bench -trials $(BENCH_TRIALS) \
		-small $(BENCH_SMALL) -large $(BENCH_LARGE) -out $(BENCH_OUT)

# Go micro-benchmarks (testing.B), kept separate from the wall-clock
# scheduler bench above.
gobench:
	$(GO) test -bench=. -benchmem ./...

# Hot-path micro-benchmark smoke: one iteration each over the trial
# engine's hot packages, so CI verifies the benchmarks compile and run
# without paying for stable timings.
microbench:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem \
		./internal/fpe/ ./internal/simmpi/ ./internal/faultsim/ \
		./internal/telemetry/

# Regenerate every table and figure (console form).
experiments:
	$(GO) run ./cmd/resmod all -trials 400

# Regenerate EXPERIMENTS.md (markdown, paper-vs-measured).  The paper's
# statistical protocol is -trials 4000; 400 keeps a laptop run ~35 minutes.
report:
	$(GO) run ./cmd/resmod report -trials 400 > EXPERIMENTS.md

# Run the prediction service (HTTP JSON API; see README "Running as a
# service").  Results persist under ./results across restarts.
serve:
	$(GO) run ./cmd/resmod serve -listen 127.0.0.1:8080 -store ./results

# Boot a throwaway service instance and exercise the cold->warm
# prediction path end-to-end (also run in CI).
smoke:
	./scripts/smoke.sh

# Boot a coordinator plus two worker processes, run a prediction
# through the sharded HTTP path while killing one worker mid-run, and
# assert the merged result is identical to a single-node run (also run
# in CI; report in DISTCHECK_OUT, default distcheck.json).
distcheck:
	./scripts/distcheck.sh

# Capture a Chrome trace of a small campaign into trace.json (open it
# in chrome://tracing or https://ui.perfetto.dev).  CI runs the same
# path via scripts/tracecheck.sh, which also validates the JSON.
trace:
	$(GO) run ./cmd/resmod campaign -app PENNANT -procs 4 -trials 200 -trace trace.json

clean:
	$(GO) clean ./...
