// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, each driving the same experiment pipeline the resmod CLI
// uses, at a reduced trial count (the paper's 4000-test deployments are
// regenerated with `go run ./cmd/resmod all -trials 4000`).  A fresh
// session per iteration keeps the caching layer from hiding the real cost.
//
// Micro-benchmarks for the substrates (instrumented FP ops, collectives,
// whole-application runs) follow the figure benchmarks.
package resmod_test

import (
	"testing"

	"resmod"
	"resmod/internal/analysis"
	"resmod/internal/apps"
	"resmod/internal/exper"
	"resmod/internal/faultsim"
	"resmod/internal/fpe"
	"resmod/internal/simmpi"
)

// benchTrials keeps figure regeneration affordable under `go test -bench`.
const benchTrials = 25

func benchSession(seed uint64) *exper.Session {
	return exper.NewSession(exper.Config{Trials: benchTrials, Seed: seed})
}

func BenchmarkTable1ParallelUnique(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exper.Table1(benchSession(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2CosineSimilarity(b *testing.B) {
	// One benchmark's 4V64 + 8V64 similarity per iteration (PENNANT is the
	// cheapest per run); the full table is `resmod table2`.
	for i := 0; i < b.N; i++ {
		if _, err := exper.Table2(benchSession(uint64(i)), []string{"PENNANT"}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1PropagationCG(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exper.Propagation(benchSession(uint64(i)), "CG", 8, 64); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2PropagationFT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exper.Propagation(benchSession(uint64(i)), "FT", 8, 64); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3Characterization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exper.Fig3(benchSession(uint64(i)), "PENNANT", 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5PredictFromFour(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exper.PredictOne(benchSession(uint64(i)), "CG", "", 4, 64); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6PredictFromEight(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exper.PredictOne(benchSession(uint64(i)), "CG", "", 8, 64); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7Predict128(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exper.PredictOne(benchSession(uint64(i)), "CG", "S", 8, 128); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8SensitivitySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exper.Fig8(benchSession(uint64(i)), []string{"PENNANT"},
			[]int{4, 8}, 64); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- substrate micro-benchmarks -------------------------------------------

func BenchmarkFPEInstrumentedOp(b *testing.B) {
	fc := fpe.New()
	s := 0.0
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s = fc.Add(s, fc.Mul(1.0000001, 0.999999))
	}
	_ = s
}

func BenchmarkFPEWithPendingPlan(b *testing.B) {
	// The common case during campaigns: a plan exists but has not fired.
	fc := fpe.NewWithPlan([]fpe.Injection{{Index: 1 << 62}})
	s := 0.0
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s = fc.Add(s, 1)
	}
	_ = s
}

func BenchmarkAllreduce8(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := simmpi.Run(simmpi.Config{Procs: 8}, func(c *simmpi.Comm) error {
			for k := 0; k < 10; k++ {
				c.AllreduceValue(simmpi.OpSum, float64(c.Rank()))
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlltoall8(b *testing.B) {
	payload := make([]float64, 64)
	for i := 0; i < b.N; i++ {
		_, err := simmpi.Run(simmpi.Config{Procs: 8}, func(c *simmpi.Comm) error {
			send := make([][]float64, 8)
			for r := range send {
				send[r] = payload
			}
			c.Alltoall(send)
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func benchmarkApp(b *testing.B, name string, procs int) {
	b.Helper()
	app, err := apps.Lookup(name)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res := apps.Execute(app, app.DefaultClass(), procs, nil, apps.DefaultTimeout)
		if res.Err != nil {
			b.Fatal(res.Err)
		}
	}
}

func BenchmarkAppCGSerial(b *testing.B)      { benchmarkApp(b, "CG", 1) }
func BenchmarkAppCG8(b *testing.B)           { benchmarkApp(b, "CG", 8) }
func BenchmarkAppFTSerial(b *testing.B)      { benchmarkApp(b, "FT", 1) }
func BenchmarkAppMGSerial(b *testing.B)      { benchmarkApp(b, "MG", 1) }
func BenchmarkAppLUSerial(b *testing.B)      { benchmarkApp(b, "LU", 1) }
func BenchmarkAppMiniFESerial(b *testing.B)  { benchmarkApp(b, "MiniFE", 1) }
func BenchmarkAppPENNANTSerial(b *testing.B) { benchmarkApp(b, "PENNANT", 1) }

func BenchmarkCampaignTrial(b *testing.B) {
	// Cost of one fault injection test (golden precomputed) on the
	// cheapest app.
	app, err := apps.Lookup("PENNANT")
	if err != nil {
		b.Fatal(err)
	}
	golden, err := faultsim.ComputeGolden(app, "leblanc", 1, apps.DefaultTimeout)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := faultsim.RunAgainst(faultsim.Campaign{
			App: app, Class: "leblanc", Procs: 1, Trials: 1, Seed: uint64(i),
		}, golden)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// ---- ablation benchmarks (DESIGN.md design-choice studies) ----------------

func BenchmarkAblationBitSweep(b *testing.B) {
	app, err := apps.Lookup("PENNANT")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		_, err := analysis.BitSweep(analysis.Config{
			App: app, Procs: 1, Trials: benchTrials, Seed: uint64(i),
		}, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationKindSweep(b *testing.B) {
	app, err := apps.Lookup("PENNANT")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := analysis.KindSweep(analysis.Config{
			App: app, Procs: 1, Trials: benchTrials, Seed: uint64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPatternSweep(b *testing.B) {
	app, err := apps.Lookup("PENNANT")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := analysis.PatternSweep(analysis.Config{
			App: app, Procs: 1, Trials: benchTrials, Seed: uint64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPhaseSweep(b *testing.B) {
	app, err := apps.Lookup("PENNANT")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := analysis.PhaseSweep(analysis.Config{
			App: app, Procs: 1, Trials: benchTrials, Seed: uint64(i),
		}, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkModelPredict(b *testing.B) {
	xs, _ := resmod.SampleXs(64, 8)
	rates := make([]resmod.Rates, len(xs))
	for i := range rates {
		rates[i] = resmod.Rates{Success: 0.9 - float64(i)*0.05, SDC: 0.1 + float64(i)*0.05, N: 1000}
	}
	curve, err := resmod.NewSerialCurve(64, xs, rates)
	if err != nil {
		b.Fatal(err)
	}
	profile := []float64{0.7, 0.05, 0.05, 0.05, 0.05, 0.03, 0.02, 0.05}
	cond := map[int]resmod.Rates{1: {Success: 0.88, SDC: 0.12, N: 100}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := resmod.Predict(resmod.ModelInputs{
			P: 64, Serial: curve, SmallProfile: profile, SmallConditional: cond,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
