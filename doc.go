// Package resmod is a library for modeling application resilience in
// large-scale parallel execution.  It reproduces the methodology of
// Wu, Dong, Guan, DeBardeleben and Li, "Modeling Application Resilience in
// Large-scale Parallel Execution", ICPP 2018: instead of running expensive
// fault-injection campaigns at large scale, resmod injects single-bit
// floating-point faults into serial and small-scale executions and predicts
// the large-scale fault injection result from them.
//
// The package is a facade over the implementation packages:
//
//   - the instrumented floating-point fault injector (internal/fpe), an
//     F-SEFI analog that flips one bit of an input operand of a randomly
//     selected dynamic floating-point instruction;
//   - an in-process deterministic message-passing runtime (internal/simmpi)
//     standing in for MPI, with ranks as goroutines;
//   - the benchmark applications (internal/apps/...): the paper's six —
//     NPB CG, FT, MG and LU plus the MiniFE and PENNANT proxy apps — and
//     the EP, CG2D and SP extensions, rebuilt at laptop scale with their
//     original communication structure;
//   - the fault-injection campaign machinery (internal/faultsim);
//   - the paper's prediction model (internal/core); and
//   - the evaluation drivers regenerating every table and figure
//     (internal/exper).
//
// # Quick start
//
//	app, _ := resmod.LookupApp("CG")
//	small, _ := resmod.RunCampaign(resmod.Campaign{
//		App: app, Procs: 8, Trials: 1000, Seed: 1,
//	})
//	fmt.Println("small-scale result:", small.Rates)
//
// See examples/ for complete programs and cmd/resmod for the experiment
// command-line interface.
package resmod
