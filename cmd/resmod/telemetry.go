package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"resmod/internal/telemetry"
)

// telFlags are the unified observability flags every subcommand shares:
// -quiet caps events at warnings, -v opens debug, -trace writes the
// run's spans as Chrome trace-event JSON.
type telFlags struct {
	quiet   bool
	verbose bool
	trace   string
}

// register installs the flags on a subcommand's FlagSet.
func (t *telFlags) register(fs *flag.FlagSet) {
	fs.BoolVar(&t.quiet, "quiet", false, "log only warnings and errors")
	fs.BoolVar(&t.verbose, "v", false, "log debug events")
	fs.StringVar(&t.trace, "trace", "", "write spans as Chrome trace-event JSON to `file`")
}

// runTelemetry is one CLI invocation's live telemetry: the bundle its
// context carries, plus the recorder, tracer and progress renderer that
// finish winds down.
type runTelemetry struct {
	flags  telFlags
	tel    *telemetry.Telemetry
	tracer *telemetry.Tracer
	rec    *telemetry.Recorder
	render *progressRenderer
}

// setup builds the invocation's telemetry from the parsed flags: events
// to errw at the selected level, a tracer only when -trace asked for
// one, a metrics recorder for the end-of-run summary, and — unless
// -quiet silenced everything below warnings — a live-progress renderer
// (in-place bars on a TTY, rate-limited plain lines otherwise).  With a
// renderer active, log events are routed through it so a log line first
// erases the in-place block instead of shearing it.
func (t telFlags) setup(errw io.Writer) *runTelemetry {
	var tr *telemetry.Tracer
	if t.trace != "" {
		tr = telemetry.NewTracer()
	}
	rec := telemetry.NewRecorder()
	rt := &runTelemetry{flags: t, tracer: tr, rec: rec}
	logw := errw
	var prog *telemetry.Progress
	if !t.quiet {
		prog = telemetry.NewProgress()
		rt.render = startProgressRenderer(errw, prog)
		logw = rt.render
	}
	logger := telemetry.NewLogger(logw, telemetry.Level(t.quiet, t.verbose))
	rt.tel = telemetry.New(logger, tr, rec)
	if prog != nil {
		rt.tel = rt.tel.WithProgress(prog)
	}
	return rt
}

// context attaches the bundle and opens the root span; end the returned
// span before calling finish.
func (r *runTelemetry) context(ctx context.Context, name string) (context.Context, *telemetry.Span) {
	ctx = telemetry.With(ctx, r.tel)
	return r.tel.Tracer().Start(ctx, name)
}

// finish stops the progress renderer, writes the -trace file (when
// requested) and renders the telemetry summary block to errw.  Call it
// after the root span ended; it returns the first error that would lose
// data (a trace that could not be written).
func (r *runTelemetry) finish(errw io.Writer) error {
	r.render.stop()
	if r.flags.trace != "" {
		f, err := os.Create(r.flags.trace)
		if err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		if err := r.tracer.WriteChromeTrace(f); err != nil {
			f.Close()
			return fmt.Errorf("trace: writing %s: %w", r.flags.trace, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("trace: closing %s: %w", r.flags.trace, err)
		}
		r.tel.Logger().Info("trace written", "path", r.flags.trace,
			"spans", len(r.tracer.Spans()))
	}
	if s := r.rec.Snapshot(); !r.flags.quiet && !s.Empty() {
		telemetry.WriteSummary(errw, s)
	}
	return nil
}
